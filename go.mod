module sparseapsp

go 1.22
