package etree

// The elimination of level l updates the region R_l, split into the
// four subsets of Section 5.2:
//
//	R_l^1 = ∪_{k∈Q_l} (k, k)                                 diagonal update
//	R_l^2 = ∪_{k∈Q_l} (𝒜(k)∪𝒟(k), k) ∪ (k, 𝒜(k)∪𝒟(k))        panel update
//	R_l^3 = ∪_{k∈Q_l} (𝒜(k)∪𝒟(k), 𝒟(k)) ∪ (𝒟(k), 𝒜(k))       single-unit outer product
//	R_l^4 = ∪_{k∈Q_l} (𝒜(k), 𝒜(k))                           multi-unit outer product
//
// Block (i, j) ∈ R_l^3 has exactly one computing unit (Section 5.2.1),
// while blocks in R_l^4 need |Q_l ∩ 𝒟(i) ∩ 𝒟(j)| > 1 units and use the
// Corollary 5.5 mapping.

// Block is a block index pair of the distance matrix (supernode labels).
type Block struct {
	I, J int
}

// PivotBlock is a block of R_l^3 together with its unique pivot
// supernode K: the update is A(I,J) ⊕= A(I,K) ⊗ A(K,J).
type PivotBlock struct {
	I, J, K int
}

// R1 returns the diagonal blocks of level l.
func (t *Tree) R1(l int) []Block {
	nodes := t.LevelNodes(l)
	out := make([]Block, len(nodes))
	for i, k := range nodes {
		out[i] = Block{I: k, J: k}
	}
	return out
}

// R2 returns the panel blocks of level l: for each k ∈ Q_l, the column
// panel (i, k) and row panel (k, j) for i, j ∈ 𝒜(k) ∪ 𝒟(k).
func (t *Tree) R2(l int) []Block {
	var out []Block
	for _, k := range t.LevelNodes(l) {
		for _, i := range t.RelatedSet(k) {
			if i == k {
				continue
			}
			out = append(out, Block{I: i, J: k}, Block{I: k, J: i})
		}
	}
	return out
}

// R3 returns the single-unit blocks of level l with their pivots:
// (i, j) pairs with i ∈ 𝒜(k)∪𝒟(k), j ∈ 𝒟(k) or i ∈ 𝒟(k), j ∈ 𝒜(k).
// Each block appears exactly once because its pivot is unique
// (Section 5.2.1).
func (t *Tree) R3(l int) []PivotBlock {
	var out []PivotBlock
	for _, k := range t.LevelNodes(l) {
		anc := t.Ancestors(k)
		desc := t.Descendants(k)
		related := t.RelatedSet(k)
		for _, j := range desc {
			for _, i := range related {
				if i == k {
					continue
				}
				out = append(out, PivotBlock{I: i, J: j, K: k})
			}
		}
		for _, i := range desc {
			for _, j := range anc {
				out = append(out, PivotBlock{I: i, J: j, K: k})
			}
		}
	}
	return out
}

// R4 returns the multi-unit blocks of level l: (i, j) with both i and j
// proper ancestors of some k ∈ Q_l — equivalently, i and j related with
// min(level(i), level(j)) > l. Each block is listed once.
func (t *Tree) R4(l int) []Block {
	var out []Block
	for a := l + 1; a <= t.H; a++ {
		for _, i := range t.LevelNodes(a) {
			// Partner j is i itself or any ancestor (level(j) ≥ a); the
			// symmetric partner (level(j) < level(i)) is listed when the
			// roles are swapped below.
			out = append(out, Block{I: i, J: i})
			for _, j := range t.Ancestors(i) {
				out = append(out, Block{I: i, J: j}, Block{I: j, J: i})
			}
		}
	}
	return out
}

// R4Lower returns the blocks of R_l^4 with level(I) ≤ level(J): the half
// that Algorithm 1 computes directly (the other half arrives by the
// transpose send of line 25).
func (t *Tree) R4Lower(l int) []Block {
	var out []Block
	for a := l + 1; a <= t.H; a++ {
		for _, i := range t.LevelNodes(a) {
			out = append(out, Block{I: i, J: i})
			for _, j := range t.Ancestors(i) {
				out = append(out, Block{I: i, J: j})
			}
		}
	}
	return out
}

// UnitsFor returns Q_l ∩ 𝒟(i) ∩ 𝒟(j), the pivots of the computing
// units updating block (i, j) during the elimination of level l. For
// (i, j) ∈ R_l^4 with related i, j this is the level-l descendant run
// of the lower of the two.
func (t *Tree) UnitsFor(l, i, j int) []int {
	if !t.Related(i, j) {
		return nil
	}
	lower := i
	if t.Level(j) < t.Level(i) {
		lower = j
	}
	if t.Level(lower) <= l {
		return nil
	}
	return t.DescendantsAtLevel(lower, l)
}

// RegionOf classifies block (i, j) for the elimination of level l:
// 1..4 for R_l^1..R_l^4, or 0 if the block is not updated at level l.
func (t *Tree) RegionOf(l, i, j int) int {
	li, lj := t.Level(i), t.Level(j)
	switch {
	case i == j && li == l:
		return 1
	case li == l || lj == l:
		if t.Related(i, j) {
			return 2
		}
		return 0
	case li > l && lj > l:
		if !t.Related(i, j) {
			return 0
		}
		// Both strictly above l on a common root path: R_l^4.
		return 4
	default:
		// At least one of i, j is below level l. The block is updated
		// iff a level-l pivot exists relating both: the level-l ancestor
		// of the lower one must be related to the other.
		lower, other := i, j
		if lj < li {
			lower, other = j, i
		}
		// other == k is impossible here: level(other) == l is handled by
		// the panel case above.
		k := t.AncestorAtLevel(lower, l)
		if !t.Related(other, k) {
			return 0
		}
		// other is related to pivot k. If other also sits below level l
		// it must be a descendant of the same pivot, i.e. share the
		// level-l ancestor.
		if t.Level(other) < l && t.AncestorAtLevel(other, l) != k {
			return 0
		}
		return 3
	}
}
