package etree

import (
	"reflect"
	"sort"
	"testing"
)

// Equation (1) / Lemma 6.3: over the whole elimination, block (i, j)
// must be updated through exactly the pivots
// S_ij = (i ∪ 𝒜(i) ∪ 𝒟(i)) ∩ (j ∪ 𝒜(j) ∪ 𝒟(j)) — never a cousin of
// either index, never a missing related pivot, and each pivot exactly
// once. This is the semantic check that the four-region schedule
// computes the same updates as SuperFW's restricted Floyd–Warshall.
func TestEquation1PivotCoverage(t *testing.T) {
	for h := 1; h <= 6; h++ {
		tr := New(h)
		for i := 1; i <= tr.N; i++ {
			ri := tr.RelatedSet(i)
			for j := 1; j <= tr.N; j++ {
				rj := tr.RelatedSet(j)
				want := intersect(ri, rj)
				got := tr.AllPivots(i, j)
				sort.Ints(got)
				if !tr.Related(i, j) {
					// Cousin blocks are updated only through common
					// ancestors.
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("h=%d cousin block (%d,%d): pivots %v, want %v", h, i, j, got, want)
					}
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("h=%d block (%d,%d): pivots %v, want %v", h, i, j, got, want)
				}
			}
		}
	}
}

// Each pivot is applied at exactly one level (no duplicates): a pivot
// applied twice would double-relax, which is harmless for min-plus but
// would break the cost analysis.
func TestPivotsAppliedOnce(t *testing.T) {
	for h := 1; h <= 6; h++ {
		tr := New(h)
		for i := 1; i <= tr.N; i++ {
			for j := 1; j <= tr.N; j++ {
				seen := map[int]int{}
				for l := 1; l <= h; l++ {
					for _, k := range tr.PivotsAt(l, i, j) {
						seen[k]++
						if tr.Level(k) != l {
							t.Fatalf("h=%d block (%d,%d): pivot %d applied at level %d, lives at %d",
								h, i, j, k, l, tr.Level(k))
						}
					}
				}
				for k, c := range seen {
					if c != 1 {
						t.Fatalf("h=%d block (%d,%d): pivot %d applied %d times", h, i, j, k, c)
					}
				}
			}
		}
	}
}

func intersect(a, b []int) []int {
	inB := map[int]bool{}
	for _, x := range b {
		inB[x] = true
	}
	var out []int
	for _, x := range a {
		if inB[x] {
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}
