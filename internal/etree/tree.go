// Package etree implements the elimination tree of Section 4.2 and the
// scheduling machinery of Section 5.2: supernode labels, levels,
// ancestor/descendant/cousin sets, the four update regions R_l^1..R_l^4,
// and the one-to-one computing-unit-to-processor mapping of Corollary
// 5.5 with the row formula f = Σ_{b=h+a−c}^{h−1} 2^b + (a−l) and column
// formula g = k − Σ_{b=h−l+1}^{h−1} 2^b.
//
// The tree is the complete binary tree produced by recursive nested
// dissection with N = 2^h − 1 supernodes, labelled level by level from
// the bottom (Fig. 3a): level 1 holds the leaves 1..2^{h−1}, level l
// holds labels LevelOffset(l)+1 .. LevelOffset(l)+2^{h−l}, and the root
// separator is N. All labels and levels are 1-based, exactly as in the
// paper.
package etree

import "fmt"

// Tree is a complete binary elimination tree of height H.
type Tree struct {
	H int // number of levels
	N int // number of supernodes, 2^H − 1
}

// New returns the elimination tree with h levels. h must be ≥ 1.
func New(h int) *Tree {
	if h < 1 {
		panic(fmt.Sprintf("etree: height %d < 1", h))
	}
	return &Tree{H: h, N: (1 << h) - 1}
}

// HeightForGrid returns the tree height h with 2^h − 1 = s supernodes,
// or an error if s is not of that form. The block layout of Section 5.1
// requires the number of supernodes to equal the grid side √p.
func HeightForGrid(s int) (int, error) {
	h := 0
	for (1<<(h+1))-1 <= s {
		h++
	}
	if (1<<h)-1 != s {
		return 0, fmt.Errorf("etree: grid side %d is not 2^h-1 (valid: 1, 3, 7, 15, 31, ...)", s)
	}
	return h, nil
}

// LevelOffset returns the number of supernodes at levels below l.
func (t *Tree) LevelOffset(l int) int {
	return (1 << t.H) - (1 << (t.H - l + 1))
}

// LevelSize returns |Q_l| = 2^{H−l}.
func (t *Tree) LevelSize(l int) int { return 1 << (t.H - l) }

// Level returns the level of supernode k.
func (t *Tree) Level(k int) int {
	if k < 1 || k > t.N {
		panic(fmt.Sprintf("etree: supernode %d outside [1,%d]", k, t.N))
	}
	for l := 1; l <= t.H; l++ {
		if k <= t.LevelOffset(l)+t.LevelSize(l) {
			return l
		}
	}
	panic("etree: unreachable")
}

// IndexInLevel returns the 1-based position of k within its level.
func (t *Tree) IndexInLevel(k int) int { return k - t.LevelOffset(t.Level(k)) }

// LevelNodes returns Q_l, the supernodes of level l in label order.
func (t *Tree) LevelNodes(l int) []int {
	off := t.LevelOffset(l)
	out := make([]int, t.LevelSize(l))
	for i := range out {
		out[i] = off + i + 1
	}
	return out
}

// Parent returns the parent label of k, or 0 for the root.
func (t *Tree) Parent(k int) int {
	l := t.Level(k)
	if l == t.H {
		return 0
	}
	i := t.IndexInLevel(k)
	return t.LevelOffset(l+1) + (i+1)/2
}

// Children returns the two children of k, or nil for leaves.
func (t *Tree) Children(k int) []int {
	l := t.Level(k)
	if l == 1 {
		return nil
	}
	i := t.IndexInLevel(k)
	off := t.LevelOffset(l - 1)
	return []int{off + 2*i - 1, off + 2*i}
}

// AncestorAtLevel returns the ancestor of k at level a ≥ level(k)
// (k itself when a == level(k)).
func (t *Tree) AncestorAtLevel(k, a int) int {
	l := t.Level(k)
	if a < l || a > t.H {
		panic(fmt.Sprintf("etree: no ancestor of node %d (level %d) at level %d", k, l, a))
	}
	i := t.IndexInLevel(k)
	// Each step up halves the index (1-based ceil division).
	i = (i + (1 << (a - l)) - 1) >> (a - l)
	return t.LevelOffset(a) + i
}

// Ancestors returns 𝒜(k): the proper ancestors of k, bottom-up.
func (t *Tree) Ancestors(k int) []int {
	l := t.Level(k)
	out := make([]int, 0, t.H-l)
	for a := l + 1; a <= t.H; a++ {
		out = append(out, t.AncestorAtLevel(k, a))
	}
	return out
}

// IsAncestor reports whether a is a proper ancestor of k.
func (t *Tree) IsAncestor(a, k int) bool {
	la, lk := t.Level(a), t.Level(k)
	if la <= lk {
		return false
	}
	return t.AncestorAtLevel(k, la) == a
}

// Related reports whether i and j lie on a common root path (equal, or
// one is an ancestor of the other) — the opposite of cousins.
func (t *Tree) Related(i, j int) bool {
	if i == j {
		return true
	}
	return t.IsAncestor(i, j) || t.IsAncestor(j, i)
}

// Descendants returns 𝒟(k): all proper descendants, in label order.
func (t *Tree) Descendants(k int) []int {
	l := t.Level(k)
	i := t.IndexInLevel(k)
	out := make([]int, 0, (1<<l)-2)
	for d := 1; d < l; d++ {
		off := t.LevelOffset(d)
		width := 1 << (l - d) // descendants of k at level d
		first := (i-1)*width + 1
		for x := 0; x < width; x++ {
			out = append(out, off+first+x)
		}
	}
	return out
}

// DescendantsAtLevel returns Q_d ∩ 𝒟(k) for d < level(k): a contiguous
// run of labels, which is what makes the reduce groups of R_l^4
// contiguous processor columns.
func (t *Tree) DescendantsAtLevel(k, d int) []int {
	l := t.Level(k)
	if d >= l || d < 1 {
		return nil
	}
	i := t.IndexInLevel(k)
	off := t.LevelOffset(d)
	width := 1 << (l - d)
	first := (i-1)*width + 1
	out := make([]int, width)
	for x := range out {
		out[x] = off + first + x
	}
	return out
}

// Cousins returns 𝒞(k): every supernode that is neither an ancestor
// nor a descendant of k (nor k itself), in label order.
func (t *Tree) Cousins(k int) []int {
	out := make([]int, 0, t.N)
	for j := 1; j <= t.N; j++ {
		if j != k && !t.Related(j, k) {
			out = append(out, j)
		}
	}
	return out
}

// RelatedSet returns k ∪ 𝒜(k) ∪ 𝒟(k) in label order: the row/column
// index set touched when eliminating supernode k.
func (t *Tree) RelatedSet(k int) []int {
	desc := t.Descendants(k)
	anc := t.Ancestors(k)
	out := make([]int, 0, len(desc)+1+len(anc))
	out = append(out, desc...)
	out = append(out, k)
	out = append(out, anc...)
	return out
}
