package etree

// PivotsAt lists the pivot supernodes that the elimination of level l
// applies to block (i, j) — the per-level slice of Equation (1):
// pivots k ∈ (i ∪ 𝒜(i) ∪ 𝒟(i)) ∩ (j ∪ 𝒜(j) ∪ 𝒟(j)) ∩ Q_l, realized by
// the four regions as
//
//	R_l^1: the block's own supernode (the ClassicalFW diagonal update);
//	R_l^2: the level-l index of the panel (the A(k,k) panel update);
//	R_l^3: the unique related level-l pivot;
//	R_l^4: Q_l ∩ 𝒟(lower(i,j)), one pivot per computing unit.
//
// Union over all levels equals S_ij of Lemma 6.3 restricted to
// supernodes (see TestEquation1PivotCoverage), which is the semantic
// correctness of the whole schedule.
func (t *Tree) PivotsAt(l, i, j int) []int {
	switch t.RegionOf(l, i, j) {
	case 1:
		return []int{i}
	case 2:
		if t.Level(i) == l {
			return []int{i}
		}
		return []int{j}
	case 3:
		lower := i
		if t.Level(j) < t.Level(lower) {
			lower = j
		}
		return []int{t.AncestorAtLevel(lower, l)}
	case 4:
		return t.UnitsFor(l, i, j)
	default:
		return nil
	}
}

// AllPivots unions PivotsAt over every level: the complete pivot set
// the schedule applies to block (i, j).
func (t *Tree) AllPivots(i, j int) []int {
	var out []int
	for l := 1; l <= t.H; l++ {
		out = append(out, t.PivotsAt(l, i, j)...)
	}
	return out
}
