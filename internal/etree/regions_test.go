package etree

import (
	"fmt"
	"testing"
)

// Figure 3b: the regions R_2^1..R_2^4 of the 4-level tree. Spot-check
// representative members of each subset against the definitions.
func TestFigure3Regions(t *testing.T) {
	tr := New(4)
	const l = 2

	r1 := tr.R1(l)
	wantR1 := map[Block]bool{{9, 9}: true, {10, 10}: true, {11, 11}: true, {12, 12}: true}
	if len(r1) != 4 {
		t.Fatalf("|R_2^1| = %d, want 4", len(r1))
	}
	for _, b := range r1 {
		if !wantR1[b] {
			t.Errorf("unexpected R_2^1 block %v", b)
		}
	}

	r2set := map[Block]bool{}
	for _, b := range tr.R2(l) {
		r2set[b] = true
	}
	// k=9: related set minus self is {1, 2, 13, 15}.
	for _, b := range []Block{{1, 9}, {9, 1}, {2, 9}, {13, 9}, {9, 15}} {
		if !r2set[b] {
			t.Errorf("R_2^2 missing %v", b)
		}
	}
	if r2set[Block{3, 9}] || r2set[Block{9, 10}] {
		t.Error("R_2^2 contains cousin panels")
	}

	r3set := map[Block]int{}
	for _, pb := range tr.R3(l) {
		if _, dup := r3set[Block{pb.I, pb.J}]; dup {
			t.Errorf("R_2^3 lists block (%d,%d) twice", pb.I, pb.J)
		}
		r3set[Block{pb.I, pb.J}] = pb.K
	}
	// Descendant-descendant through pivot 9: (1,2) with pivot 9.
	if k := r3set[Block{1, 2}]; k != 9 {
		t.Errorf("R_2^3 pivot of (1,2) = %d, want 9", k)
	}
	// Ancestor-descendant: (13,1) and (1,13) via pivot 9.
	if k := r3set[Block{13, 1}]; k != 9 {
		t.Errorf("R_2^3 pivot of (13,1) = %d, want 9", k)
	}
	if k := r3set[Block{1, 13}]; k != 9 {
		t.Errorf("R_2^3 pivot of (1,13) = %d, want 9", k)
	}
	// Cousin leaves with no level-2 pivot relating them must be absent:
	// 1 (under 9) and 3 (under 10) share no level-2 pivot.
	if _, ok := r3set[Block{1, 3}]; ok {
		t.Error("R_2^3 contains (1,3) whose pivots are disjoint at level 2")
	}

	r4set := map[Block]bool{}
	for _, b := range tr.R4(l) {
		r4set[b] = true
	}
	for _, b := range []Block{{13, 13}, {13, 15}, {15, 13}, {15, 15}, {14, 15}, {13, 14}} {
		if b.I == 13 && b.J == 14 {
			// 13 and 14 are cousins: must NOT be in R_2^4.
			if r4set[b] {
				t.Errorf("R_2^4 contains cousin block %v", b)
			}
			continue
		}
		if !r4set[b] {
			t.Errorf("R_2^4 missing %v", b)
		}
	}
}

// The region lists must agree with the RegionOf classifier for every
// block and level on trees up to height 5.
func TestRegionListsMatchClassifier(t *testing.T) {
	for h := 1; h <= 5; h++ {
		tr := New(h)
		for l := 1; l <= h; l++ {
			region := make(map[Block]int)
			for _, b := range tr.R1(l) {
				region[b] = 1
			}
			for _, b := range tr.R2(l) {
				region[b] = 2
			}
			for _, pb := range tr.R3(l) {
				region[Block{pb.I, pb.J}] = 3
			}
			for _, b := range tr.R4(l) {
				region[b] = 4
			}
			for i := 1; i <= tr.N; i++ {
				for j := 1; j <= tr.N; j++ {
					want := region[Block{i, j}]
					if got := tr.RegionOf(l, i, j); got != want {
						t.Fatalf("h=%d l=%d block (%d,%d): RegionOf = %d, lists say %d",
							h, l, i, j, got, want)
					}
				}
			}
		}
	}
}

// Lemma 5.2's intermediate counts: |R_l^4(a)| = (2(h−a)+1)·2^{h−a}
// blocks, each needing 2^{a−l} units.
func TestLemma52BlockCounts(t *testing.T) {
	for h := 2; h <= 6; h++ {
		tr := New(h)
		for l := 1; l < h; l++ {
			byA := map[int]int{}
			for _, b := range tr.R4(l) {
				a := tr.Level(b.I)
				if lj := tr.Level(b.J); lj < a {
					a = lj
				}
				byA[a]++
			}
			for a := l + 1; a <= h; a++ {
				want := (2*(h-a) + 1) * (1 << (h - a))
				if byA[a] != want {
					t.Errorf("h=%d l=%d: |R4(%d)| = %d, want %d", h, l, a, byA[a], want)
				}
			}
			// Units per block: |Q_l ∩ D(i) ∩ D(j)| = 2^{a−l}.
			for _, b := range tr.R4(l) {
				a := tr.Level(b.I)
				if lj := tr.Level(b.J); lj < a {
					a = lj
				}
				units := tr.UnitsFor(l, b.I, b.J)
				if len(units) != 1<<(a-l) {
					t.Errorf("h=%d l=%d block %v: %d units, want %d",
						h, l, b, len(units), 1<<(a-l))
				}
			}
		}
	}
}

// Lemma 5.2: the total number of computing units for R_l^4 never
// exceeds p = (2^h − 1)², so a one-to-one mapping exists.
func TestLemma52TotalUnitsAtMostP(t *testing.T) {
	for h := 1; h <= 7; h++ {
		tr := New(h)
		p := tr.N * tr.N
		for l := 1; l <= h; l++ {
			units := tr.UnitsForLevel(l)
			if len(units) > p {
				t.Errorf("h=%d l=%d: %d units > p=%d", h, l, len(units), p)
			}
		}
	}
}

// Lemma 5.3: each subset R_l^4(a,c) needs exactly 2^{h−l} units (one
// per pivot k ∈ Q_l), which is < √p, and the number of subsets is < √p.
func TestLemma53SubsetCounts(t *testing.T) {
	for h := 2; h <= 7; h++ {
		tr := New(h)
		sqrtP := tr.N
		for l := 1; l < h; l++ {
			bySubset := map[[2]int]int{}
			for _, u := range tr.UnitsForLevel(l) {
				a, c := tr.Level(u.I), tr.Level(u.J)
				bySubset[[2]int{a, c}]++
			}
			if len(bySubset) >= sqrtP {
				t.Errorf("h=%d l=%d: %d subsets ≥ √p=%d", h, l, len(bySubset), sqrtP)
			}
			for ac, cnt := range bySubset {
				if cnt != 1<<(h-l) {
					t.Errorf("h=%d l=%d subset %v: %d units, want %d", h, l, ac, cnt, 1<<(h-l))
				}
				if cnt >= sqrtP && h > 1 {
					t.Errorf("h=%d l=%d subset %v: %d units ≥ √p", h, l, ac, cnt)
				}
			}
		}
	}
}

// Lemma 5.4: the row map f is injective over subsets (a, c) and always
// lands in [1, √p].
func TestLemma54RowMapInjective(t *testing.T) {
	for h := 2; h <= 8; h++ {
		tr := New(h)
		sqrtP := tr.N
		for l := 1; l < h; l++ {
			seen := map[int][2]int{}
			for a := l + 1; a <= h; a++ {
				for c := a; c <= h; c++ {
					f := tr.Row(l, a, c)
					if f < 1 || f > sqrtP {
						t.Errorf("h=%d l=%d f(%d,%d) = %d outside [1,%d]", h, l, a, c, f, sqrtP)
					}
					if prev, dup := seen[f]; dup {
						t.Errorf("h=%d l=%d: f collision between %v and (%d,%d) at %d",
							h, l, prev, a, c, f)
					}
					seen[f] = [2]int{a, c}
				}
			}
		}
	}
}

// Corollary 5.5: the full (F, G) unit map is one-to-one into the grid.
func TestCorollary55OneToOne(t *testing.T) {
	for h := 1; h <= 7; h++ {
		tr := New(h)
		sqrtP := tr.N
		for l := 1; l <= h; l++ {
			seen := map[[2]int]Unit{}
			for _, u := range tr.UnitsForLevel(l) {
				if u.F < 1 || u.F > sqrtP || u.G < 1 || u.G > sqrtP {
					t.Errorf("h=%d l=%d unit %+v outside grid", h, l, u)
				}
				key := [2]int{u.F, u.G}
				if prev, dup := seen[key]; dup {
					t.Errorf("h=%d l=%d: units %+v and %+v share processor", h, l, prev, u)
				}
				seen[key] = u
			}
		}
	}
}

// The reduce groups (UnitProcessorsFor) partition the units of the
// level: every unit belongs to exactly one block's group, and the
// group's row/column coordinates match the unit enumeration.
func TestReduceGroupsConsistentWithUnits(t *testing.T) {
	for h := 2; h <= 6; h++ {
		tr := New(h)
		for l := 1; l < h; l++ {
			unitAt := map[[2]int]Unit{}
			for _, u := range tr.UnitsForLevel(l) {
				unitAt[[2]int{u.F, u.G}] = u
			}
			covered := map[[2]int]bool{}
			for _, b := range tr.R4Lower(l) {
				row, cols := tr.UnitProcessorsFor(l, b.I, b.J)
				pivots := tr.UnitsFor(l, b.I, b.J)
				if len(cols) != len(pivots) {
					t.Fatalf("h=%d l=%d block %v: %d cols vs %d pivots", h, l, b, len(cols), len(pivots))
				}
				for x, g := range cols {
					u, ok := unitAt[[2]int{row, g}]
					if !ok {
						t.Fatalf("h=%d l=%d block %v: no unit at (%d,%d)", h, l, b, row, g)
					}
					if u.I != b.I || u.J != b.J || u.K != pivots[x] {
						t.Fatalf("h=%d l=%d block %v: unit %+v does not match pivot %d", h, l, b, u, pivots[x])
					}
					if covered[[2]int{row, g}] {
						t.Fatalf("h=%d l=%d: processor (%d,%d) claimed twice", h, l, row, g)
					}
					covered[[2]int{row, g}] = true
				}
				// Columns must be contiguous (binomial reduce over a run).
				for x := 1; x < len(cols); x++ {
					if cols[x] != cols[x-1]+1 {
						t.Errorf("h=%d l=%d block %v: non-contiguous columns %v", h, l, b, cols)
					}
				}
			}
			if len(covered) != len(unitAt) {
				t.Errorf("h=%d l=%d: groups cover %d of %d units", h, l, len(covered), len(unitAt))
			}
		}
	}
}

// The R4 broadcast target lists (Algorithm 1 lines 14 and 17) must hit
// exactly the unit processors that consume each panel.
func TestR4BroadcastTargets(t *testing.T) {
	for h := 2; h <= 5; h++ {
		tr := New(h)
		for l := 1; l < h; l++ {
			units := tr.UnitsForLevel(l)
			// For each unit, its column panel A(i,k) and row panel A(k,j)
			// must appear in the respective broadcast target lists.
			for _, u := range units {
				foundCol := false
				for _, v := range tr.R4BroadcastTargetsColPanel(l, u.I, u.K) {
					if v.F == u.F && v.G == u.G {
						foundCol = true
					}
				}
				if !foundCol {
					t.Errorf("h=%d l=%d: col-panel broadcast misses unit %+v", h, l, u)
				}
				foundRow := false
				for _, v := range tr.R4BroadcastTargetsRowPanel(l, u.K, u.J) {
					if v.F == u.F && v.G == u.G {
						foundRow = true
					}
				}
				if !foundRow {
					t.Errorf("h=%d l=%d: row-panel broadcast misses unit %+v", h, l, u)
				}
			}
		}
	}
}

// The paper's motivating count: at the top level (l = h) there is no
// R_h^3 or R_h^4 (the root has no ancestors), and R_h^2 spans every
// other supernode.
func TestTopLevelRegions(t *testing.T) {
	tr := New(4)
	if got := len(tr.R4(4)); got != 0 {
		t.Errorf("|R_4^4| = %d, want 0", got)
	}
	if got := len(tr.R2(4)); got != 2*(tr.N-1) {
		t.Errorf("|R_4^2| = %d, want %d", got, 2*(tr.N-1))
	}
	// R_h^3 = (related set, descendants) pairs: (N-1) descendants times
	// (N-1) non-self related rows, plus descendant×ancestor = 0.
	if got := len(tr.R3(4)); got != (tr.N-1)*(tr.N-1) {
		t.Errorf("|R_4^3| = %d, want %d", got, (tr.N-1)*(tr.N-1))
	}
}

func ExampleTree_UnitsForLevel() {
	tr := New(3)
	for _, u := range tr.UnitsForLevel(2) {
		fmt.Printf("P(%d,%d): A(%d,%d)⊗A(%d,%d)\n", u.F, u.G, u.I, u.K, u.K, u.J)
	}
	// Output:
	// P(1,1): A(7,5)⊗A(5,7)
	// P(1,2): A(7,6)⊗A(6,7)
}
