package etree

import (
	"reflect"
	"testing"
)

func TestHeightForGrid(t *testing.T) {
	ok := map[int]int{1: 1, 3: 2, 7: 3, 15: 4, 31: 5}
	for s, wantH := range ok {
		h, err := HeightForGrid(s)
		if err != nil || h != wantH {
			t.Errorf("HeightForGrid(%d) = %d, %v; want %d", s, h, err, wantH)
		}
	}
	for _, s := range []int{2, 4, 5, 6, 8, 16} {
		if _, err := HeightForGrid(s); err == nil {
			t.Errorf("HeightForGrid(%d) succeeded, want error", s)
		}
	}
}

// Figure 3a: the 4-level tree labelled from the bottom. Level 1 holds
// 1..8, level 2 holds 9..12, level 3 holds 13..14, the root is 15.
func TestFigure3aLabeling(t *testing.T) {
	tr := New(4)
	if tr.N != 15 {
		t.Fatalf("N = %d", tr.N)
	}
	wantLevels := map[int][]int{
		1: {1, 2, 3, 4, 5, 6, 7, 8},
		2: {9, 10, 11, 12},
		3: {13, 14},
		4: {15},
	}
	for l, want := range wantLevels {
		if got := tr.LevelNodes(l); !reflect.DeepEqual(got, want) {
			t.Errorf("Q_%d = %v, want %v", l, got, want)
		}
	}
	// Parent structure: 1,2 -> 9; 3,4 -> 10; ... 9,10 -> 13; 13,14 -> 15.
	wantParent := map[int]int{1: 9, 2: 9, 3: 10, 4: 10, 5: 11, 6: 11, 7: 12, 8: 12,
		9: 13, 10: 13, 11: 14, 12: 14, 13: 15, 14: 15, 15: 0}
	for k, want := range wantParent {
		if got := tr.Parent(k); got != want {
			t.Errorf("Parent(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestChildrenInverseOfParent(t *testing.T) {
	for h := 1; h <= 6; h++ {
		tr := New(h)
		for k := 1; k <= tr.N; k++ {
			for _, ch := range tr.Children(k) {
				if tr.Parent(ch) != k {
					t.Errorf("h=%d: Parent(Children(%d)) mismatch at child %d", h, k, ch)
				}
			}
			if tr.Level(k) == 1 && tr.Children(k) != nil {
				t.Errorf("leaf %d has children", k)
			}
		}
	}
}

// Figure 2b structurally (the paper's pre-relabel figure has A(3)={7},
// D(3)={1,2}, C(3)={4,5,6}; under the Section 5.2 bottom-up labels the
// corresponding level-2 node is 5): ancestors/descendants/cousins of a
// 3-level tree.
func TestFigure2bSets(t *testing.T) {
	tr := New(3)
	if got := tr.Ancestors(5); !reflect.DeepEqual(got, []int{7}) {
		t.Errorf("A(5) = %v, want [7]", got)
	}
	if got := tr.Descendants(5); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("D(5) = %v, want [1 2]", got)
	}
	if got := tr.Cousins(5); !reflect.DeepEqual(got, []int{3, 4, 6}) {
		t.Errorf("C(5) = %v, want [3 4 6]", got)
	}
}

func TestAncestorAtLevel(t *testing.T) {
	tr := New(4)
	cases := []struct{ k, a, want int }{
		{1, 1, 1}, {1, 2, 9}, {1, 3, 13}, {1, 4, 15},
		{8, 2, 12}, {8, 3, 14}, {8, 4, 15},
		{5, 2, 11}, {11, 3, 14},
	}
	for _, c := range cases {
		if got := tr.AncestorAtLevel(c.k, c.a); got != c.want {
			t.Errorf("AncestorAtLevel(%d, %d) = %d, want %d", c.k, c.a, got, c.want)
		}
	}
}

func TestSetSizesMatchPaperFormulas(t *testing.T) {
	// |𝒜(k)| = h − l and |𝒟(k)| = 2^l − 2 (used in Lemma 5.6's proof).
	for h := 1; h <= 6; h++ {
		tr := New(h)
		for k := 1; k <= tr.N; k++ {
			l := tr.Level(k)
			if got := len(tr.Ancestors(k)); got != h-l {
				t.Errorf("h=%d k=%d: |A| = %d, want %d", h, k, got, h-l)
			}
			if got := len(tr.Descendants(k)); got != (1<<l)-2 {
				t.Errorf("h=%d k=%d: |D| = %d, want %d", h, k, got, (1<<l)-2)
			}
			// Ancestors + descendants + cousins + self = N.
			if got := len(tr.Cousins(k)); got != tr.N-1-(h-l)-((1<<l)-2) {
				t.Errorf("h=%d k=%d: |C| = %d", h, k, got)
			}
		}
	}
}

func TestIsAncestorAndRelated(t *testing.T) {
	tr := New(4)
	if !tr.IsAncestor(15, 1) || !tr.IsAncestor(9, 2) || !tr.IsAncestor(13, 10) {
		t.Error("missing ancestor relations")
	}
	if tr.IsAncestor(1, 9) || tr.IsAncestor(9, 9) || tr.IsAncestor(10, 1) {
		t.Error("spurious ancestor relations")
	}
	if !tr.Related(1, 1) || !tr.Related(1, 13) || !tr.Related(13, 1) {
		t.Error("missing related")
	}
	if tr.Related(1, 2) || tr.Related(9, 11) || tr.Related(1, 10) {
		t.Error("cousins reported related")
	}
}

func TestDescendantsAtLevelContiguous(t *testing.T) {
	tr := New(4)
	if got := tr.DescendantsAtLevel(13, 1); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Errorf("D(13) ∩ Q_1 = %v", got)
	}
	if got := tr.DescendantsAtLevel(15, 2); !reflect.DeepEqual(got, []int{9, 10, 11, 12}) {
		t.Errorf("D(15) ∩ Q_2 = %v", got)
	}
	if got := tr.DescendantsAtLevel(14, 1); !reflect.DeepEqual(got, []int{5, 6, 7, 8}) {
		t.Errorf("D(14) ∩ Q_1 = %v", got)
	}
	if got := tr.DescendantsAtLevel(9, 2); got != nil {
		t.Errorf("D(9) ∩ Q_2 = %v, want nil", got)
	}
}

func TestRelatedSetOrdered(t *testing.T) {
	tr := New(3)
	if got := tr.RelatedSet(5); !reflect.DeepEqual(got, []int{1, 2, 5, 7}) {
		t.Errorf("RelatedSet(5) = %v", got)
	}
	if got := tr.RelatedSet(7); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5, 6, 7}) {
		t.Errorf("RelatedSet(7) = %v", got)
	}
}

func TestTreePanics(t *testing.T) {
	cases := []func(){
		func() { New(0) },
		func() { New(3).Level(0) },
		func() { New(3).Level(8) },
		func() { New(3).AncestorAtLevel(7, 2) },
		func() { New(3).Col(1, 5) },
		func() { New(3).Row(2, 2, 3) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkUnitsForLevel(b *testing.B) {
	tr := New(6)
	for i := 0; i < b.N; i++ {
		for l := 1; l <= tr.H; l++ {
			tr.UnitsForLevel(l)
		}
	}
}

func BenchmarkRegionOf(b *testing.B) {
	tr := New(5)
	for i := 0; i < b.N; i++ {
		for l := 1; l <= tr.H; l++ {
			for x := 1; x <= tr.N; x++ {
				for j := 1; j <= tr.N; j++ {
					tr.RegionOf(l, x, j)
				}
			}
		}
	}
}
