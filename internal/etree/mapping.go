package etree

import "fmt"

// The one-to-one computing-unit mapping of Section 5.2.2. Updating a
// block A(i,j) ∈ R_l^4 (level(i) = a ≤ c = level(j), j ∈ i ∪ 𝒜(i))
// needs the units A(i,k) ⊗ A(k,j) for every k ∈ Q_l ∩ 𝒟(i). Corollary
// 5.5 places the unit of pivot k on processor P_{f,g} with
//
//	f = Σ_{b=h+a−c}^{h−1} 2^b + (a − l)   (rows are per (a,c) subset, Lemma 5.4)
//	g = k − Σ_{b=h−l+1}^{h−1} 2^b         (columns are per pivot, Lemma 5.3)
//
// Both coordinates are 1-based grid positions on the √p × √p grid with
// √p = 2^h − 1.

// Row returns the processor row f for the subset R_l^4(a, c). Levels
// must satisfy l < a ≤ c ≤ H.
func (t *Tree) Row(l, a, c int) int {
	if !(l < a && a <= c && c <= t.H) {
		panic(fmt.Sprintf("etree: Row(l=%d, a=%d, c=%d) outside l < a ≤ c ≤ %d", l, a, c, t.H))
	}
	// Σ_{b=h+a-c}^{h-1} 2^b = 2^h − 2^{h+a−c}, empty (0) when c == a.
	sum := 0
	if c > a {
		sum = (1 << t.H) - (1 << (t.H + a - c))
	}
	return sum + (a - l)
}

// Col returns the processor column g for pivot k ∈ Q_l.
func (t *Tree) Col(l, k int) int {
	// Σ_{b=h-l+1}^{h-1} 2^b = 2^h − 2^{h−l+1} = LevelOffset(l).
	g := k - t.LevelOffset(l)
	if g < 1 || g > t.LevelSize(l) {
		panic(fmt.Sprintf("etree: Col(l=%d, k=%d): k not in Q_%d", l, k, l))
	}
	return g
}

// Unit is one computing unit of the elimination of level l: processor
// P_{F,G} (1-based grid coordinates) computes A(I,K) ⊗ A(K,J) and the
// result is reduced into block (I, J). level(I) ≤ level(J) always; the
// transposed block is produced by the final symmetric send.
type Unit struct {
	I, K, J int
	F, G    int
}

// UnitsForLevel enumerates every computing unit of R_l^4 in
// deterministic order: for each pivot k ∈ Q_l and each ancestor pair
// (a, c), the unit (i, k, j) with i, j the level-a and level-c
// ancestors of k. By Lemmas 5.2–5.4 the (F, G) coordinates are distinct
// across all returned units and within the √p × √p grid.
func (t *Tree) UnitsForLevel(l int) []Unit {
	if l < 1 || l > t.H {
		panic(fmt.Sprintf("etree: level %d outside [1,%d]", l, t.H))
	}
	var out []Unit
	for _, k := range t.LevelNodes(l) {
		g := t.Col(l, k)
		for a := l + 1; a <= t.H; a++ {
			i := t.AncestorAtLevel(k, a)
			for c := a; c <= t.H; c++ {
				j := t.AncestorAtLevel(k, c)
				out = append(out, Unit{I: i, K: k, J: j, F: t.Row(l, a, c), G: g})
			}
		}
	}
	return out
}

// UnitProcessorsFor returns the (F, G) coordinates of the units that
// update block (i, j) ∈ R_l^4 with level(i) ≤ level(j): one processor
// per pivot k ∈ Q_l ∩ 𝒟(i), all in the same row F, in contiguous
// columns — the reduce group of Algorithm 1 line 23.
func (t *Tree) UnitProcessorsFor(l, i, j int) (row int, cols []int) {
	a, c := t.Level(i), t.Level(j)
	if a > c {
		panic(fmt.Sprintf("etree: UnitProcessorsFor wants level(i) ≤ level(j), got %d > %d", a, c))
	}
	row = t.Row(l, a, c)
	for _, k := range t.DescendantsAtLevel(i, l) {
		cols = append(cols, t.Col(l, k))
	}
	return row, cols
}

// R4BroadcastTargetsColPanel returns, for the column panel block (i, k)
// with k ∈ Q_l and i ∈ 𝒜(k) at level a, the (F, G) processors that
// need A(i,k): rows f(a,c) for c ∈ {a..H}, column g(k) — Algorithm 1
// line 14.
func (t *Tree) R4BroadcastTargetsColPanel(l, i, k int) []Unit {
	a := t.Level(i)
	g := t.Col(l, k)
	var out []Unit
	for c := a; c <= t.H; c++ {
		out = append(out, Unit{I: i, K: k, J: t.AncestorAtLevel(k, c), F: t.Row(l, a, c), G: g})
	}
	return out
}

// R4BroadcastTargetsRowPanel returns, for the row panel block (k, j)
// with k ∈ Q_l and j ∈ 𝒜(k) at level c, the (F, G) processors that
// need A(k,j): rows f(a,c) for a ∈ {l+1..c}, column g(k) — Algorithm 1
// line 17.
func (t *Tree) R4BroadcastTargetsRowPanel(l, k, j int) []Unit {
	c := t.Level(j)
	g := t.Col(l, k)
	var out []Unit
	for a := l + 1; a <= c; a++ {
		out = append(out, Unit{I: t.AncestorAtLevel(k, a), K: k, J: j, F: t.Row(l, a, c), G: g})
	}
	return out
}
