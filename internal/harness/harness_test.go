package harness

import (
	"fmt"
	"strings"
	"testing"
)

// smallConfig keeps unit tests fast; the real sweeps run in the
// benchmark suite and cmd/apspbench.
func smallConfig() Config {
	return Config{GridSides: []int{8, 12}, Ps: []int{9, 49}, Seed: 7, CyclicFactor: 2}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tb.Add(1, 2.5)
	tb.Add("xyz", 3)
	tb.Note("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"X: demo", "a", "bb", "xyz", "2.5", "hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestSuiteTables(t *testing.T) {
	s, err := NewSuite(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(s.Points))
	}
	for _, tb := range []*Table{
		s.Table2Memory(), s.Table2Bandwidth(), s.Table2Latency(),
		s.ReductionFactors(), s.LowerBounds(),
	} {
		if len(tb.Rows) != 4 {
			t.Errorf("%s: %d rows, want 4", tb.ID, len(tb.Rows))
		}
		if tb.String() == "" {
			t.Errorf("%s renders empty", tb.ID)
		}
	}
}

// The Table 2 shape assertions on the measured sweep: these are the
// reproduction's headline checks in executable form.
func TestSuiteShapeClaims(t *testing.T) {
	s, err := NewSuite(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	byNP := map[[2]int]point{}
	for _, pt := range s.Points {
		byNP[[2]int{pt.N, pt.P}] = pt
	}
	// Latency: sparse at p=49 stays below dense at p=49 for both sizes,
	// and sparse latency does not grow with n.
	for _, n := range []int{64, 144} {
		pt := byNP[[2]int{n, 49}]
		if pt.Sparse.Critical.Latency >= pt.Dense2D.Critical.Latency {
			t.Errorf("n=%d: sparse latency %d ≥ 2dfw %d", n,
				pt.Sparse.Critical.Latency, pt.Dense2D.Critical.Latency)
		}
		if pt.Sparse.Critical.Latency >= pt.DenseDC.Critical.Latency {
			t.Errorf("n=%d: sparse latency %d ≥ dc %d", n,
				pt.Sparse.Critical.Latency, pt.DenseDC.Critical.Latency)
		}
	}
	if byNP[[2]int{64, 49}].Sparse.Critical.Latency != byNP[[2]int{144, 49}].Sparse.Critical.Latency {
		t.Error("sparse latency varies with n")
	}
}

func TestSeparatorCostTable(t *testing.T) {
	tb, err := SeparatorCost(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestCrossoverTable(t *testing.T) {
	tb, err := Crossover(smallConfig(), 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 workloads", len(tb.Rows))
	}
}

func TestOperationCountsTable(t *testing.T) {
	tb, err := OperationCounts(Config{GridSides: []int{10}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 heights", len(tb.Rows))
	}
}

func TestFigure1Table(t *testing.T) {
	tb, err := Figure1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 supernodes", len(tb.Rows))
	}
	if !strings.Contains(tb.String(), "o") {
		t.Error("missing adjacency pattern")
	}
}

func TestPerLevelTable(t *testing.T) {
	tb, err := PerLevel(smallConfig(), 12, 49)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 levels for p=49", len(tb.Rows))
	}
}

// Lemma 5.6 in executable form: every level's latency is O(log p) —
// within a small constant of log2(p), at every level.
func TestPerLevelLatencyIsLogP(t *testing.T) {
	tb, err := PerLevel(smallConfig(), 16, 225)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		// column 1 is L_l as a string; parse loosely
		var ll int
		if _, err := fmt.Sscanf(row[1], "%d", &ll); err != nil {
			t.Fatalf("bad L_l cell %q", row[1])
		}
		// log2(225) ≈ 7.8; allow constant ~4x for the multi-broadcast phases
		if ll > 32 {
			t.Errorf("level %s latency %d not O(log p)", row[0], ll)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Columns: []string{"a", "b,c"}}
	tb.Add(1, `say "hi"`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,\"b,c\"\n1,\"say \"\"hi\"\"\"\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

func TestLoadBalanceTable(t *testing.T) {
	tb, err := LoadBalance(smallConfig(), 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 algorithms", len(tb.Rows))
	}
	// All p ranks do work in every algorithm on a connected grid.
	for _, row := range tb.Rows {
		if row[3] != "9" {
			t.Errorf("%s: active ranks = %s, want 9", row[0], row[3])
		}
	}
}

func TestWeakScalingTable(t *testing.T) {
	tb, err := WeakScaling(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestStrongScalingTable(t *testing.T) {
	tb, err := StrongScaling(smallConfig(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestServeBenchSmoke(t *testing.T) {
	// Tiny dimensions: the point is that the fleet spins up, every
	// identity gate passes (router bit-identical to direct, including
	// through a reweight swap) and the table has one row per topology.
	cfg := ServeConfig{
		N:                49,
		Graphs:           2,
		Fleet:            []int{1, 2},
		Replicas:         2,
		Clients:          4,
		Batches:          6,
		BatchPairs:       8,
		PairPool:         64,
		ZipfS:            1.2,
		Seed:             42,
		CachePairs:       1 << 12,
		ShardConcurrency: 2,
		ShardServiceMs:   0.2,
	}
	tb, err := ServeBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "E21" {
		t.Fatalf("table id = %s", tb.ID)
	}
	// direct + fleet B=1 + fleet B=2 + fleet+cache.
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
}
