package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// PerfRow is one machine-readable benchmark measurement, the row format
// behind apspbench's -bench-out flag. Two kinds of rows appear in a
// sweep: distributed solver rows (P > 0; Words is the run's total wire
// traffic, Flops its total charged semiring operations) and local
// min-plus panel rows (P = 0, family "panel-d<density>"; Words is 0).
// NsPerOp is wall clock, so it varies run to run — the simulated Words
// and Flops columns are exact and reproducible.
type PerfRow struct {
	Family  string `json:"family"`
	N       int    `json:"n"`
	P       int    `json:"p"`
	Kernel  string `json:"kernel"`
	Wire    string `json:"wire,omitempty"`
	NsPerOp int64  `json:"ns_per_op"`
	Words   int64  `json:"words"`
	Flops   int64  `json:"flops"`
}

// perfPanelN and perfPanelDensities fix the local kernel micro-rows:
// one n×n min-plus panel product per density, timed with the sweep's
// kernel. The densities bracket SparseDensityThreshold from below so
// the CSR path, not the tiled fallback, is what gets measured.
const perfPanelN = 512

var perfPanelDensities = []float64{0.01, 0.05, 0.25}

// PerfSweep runs the solver benchmark grid (graph families × machine
// sizes, all with cfg.Kernel and cfg.Wire) plus the local panel
// micro-benchmarks, and returns the rows. Families cover the regimes
// the block engine distinguishes: 2D grids (the paper's target, blocks
// fill dense), random trees (tiny separators, mask skips bite) and
// stars (whole panels provably empty).
func PerfSweep(cfg Config) ([]PerfRow, error) {
	var rows []PerfRow
	for _, side := range cfg.GridSides {
		n := side * side
		rng := rand.New(rand.NewSource(cfg.Seed))
		w := graph.RandomWeights(rng, 1, 10)
		families := []struct {
			name string
			g    *graph.Graph
		}{
			{"grid2d", graph.Grid2D(side, side, w)},
			{"tree", graph.RandomTree(n, w, rng)},
			{"star", graph.Star(n, w)},
		}
		for _, fam := range families {
			for _, p := range cfg.Ps {
				start := time.Now()
				res, err := apsp.SparseAPSPWith(fam.g, p, cfg.sparseOpts())
				if err != nil {
					return nil, fmt.Errorf("perf %s n=%d p=%d: %w", fam.name, n, p, err)
				}
				ns := time.Since(start).Nanoseconds()
				var flops int64
				for _, f := range res.Report.LocalFlops {
					flops += f
				}
				rows = append(rows, PerfRow{
					Family: fam.name, N: fam.g.N(), P: p,
					Kernel: cfg.Kernel.String(), Wire: cfg.Wire.String(),
					NsPerOp: ns, Words: res.Report.TotalWords, Flops: flops,
				})
			}
		}
	}
	rows = append(rows, panelRows(cfg)...)
	return rows, nil
}

// panelRows times one min-plus panel product per density with the
// sweep's kernel: C = C ⊕ A ⊗ B on perfPanelN-sized blocks where A has
// the given fraction of finite entries. Best of three runs, since wall
// clock is the one noisy column.
func panelRows(cfg Config) []PerfRow {
	var rows []PerfRow
	for _, d := range perfPanelDensities {
		rng := rand.New(rand.NewSource(cfg.Seed))
		a := randomPanel(perfPanelN, d, rng)
		b := randomPanel(perfPanelN, 1, rng)
		var best int64
		var ops int64
		for rep := 0; rep < 3; rep++ {
			c := randomPanel(perfPanelN, 1, rng)
			start := time.Now()
			ops = cfg.Kernel.MulAddInto(c, a, b)
			if ns := time.Since(start).Nanoseconds(); rep == 0 || ns < best {
				best = ns
			}
		}
		rows = append(rows, PerfRow{
			Family: fmt.Sprintf("panel-d%g", d), N: perfPanelN,
			Kernel: cfg.Kernel.String(), NsPerOp: best, Flops: ops,
		})
	}
	return rows
}

// randomPanel builds an n×n block with the given fraction of finite
// entries.
func randomPanel(n int, density float64, rng *rand.Rand) *semiring.Matrix {
	m := semiring.NewMatrix(n, n)
	for i := range m.V {
		if rng.Float64() < density {
			m.V[i] = 1 + rng.Float64()*9
		}
	}
	return m
}

// WritePerfJSON writes the rows as indented JSON, one object per row.
func WritePerfJSON(w io.Writer, rows []PerfRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
