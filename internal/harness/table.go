// Package harness runs the reproduction experiments of DESIGN.md
// (E1–E12): it sweeps workloads and machine sizes, runs the solvers on
// the simulated machine, and renders the measured costs next to the
// paper's Table 2 formulas. cmd/apspbench and the benchmark suite are
// thin wrappers around this package.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // experiment id, e.g. "E2"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row, formatting each cell with %v (floats get %.3g).
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form footnote.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	dashes := make([]string, len(t.Columns))
	for i := range dashes {
		dashes[i] = strings.Repeat("-", widths[i])
	}
	line(dashes)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// jsonTable is the machine-readable form of a Table: rows become
// column-keyed objects so downstream tooling (the BENCH_*.json perf
// trajectory, plotting scripts) can index cells by name.
type jsonTable struct {
	ID    string              `json:"id"`
	Title string              `json:"title"`
	Cols  []string            `json:"columns"`
	Rows  []map[string]string `json:"rows"`
	Notes []string            `json:"notes,omitempty"`
}

// WriteJSON renders tables as a JSON array, each row an object keyed
// by column name. Extra cells beyond the declared columns are dropped;
// missing cells are omitted from the row object.
func WriteJSON(w io.Writer, tables []*Table) error {
	out := make([]jsonTable, 0, len(tables))
	for _, t := range tables {
		jt := jsonTable{ID: t.ID, Title: t.Title, Cols: t.Columns, Notes: t.Notes,
			Rows: make([]map[string]string, 0, len(t.Rows))}
		for _, row := range t.Rows {
			obj := make(map[string]string, len(t.Columns))
			for i, c := range t.Columns {
				if i < len(row) {
					obj[c] = row[i]
				}
			}
			jt.Rows = append(jt.Rows, obj)
		}
		out = append(out, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV renders the table as CSV (header + rows, no notes) for
// plotting the figure-style series with external tools.
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
