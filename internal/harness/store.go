package harness

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/oracle"
)

// StoreBench runs experiment E23: the tiered oracle memory story,
// end to end.
//
// Memory axis — for each integer-weight workload, compare the hot-tier
// footprint of a solved oracle (float64 distances + int32 successors,
// 12 bytes/pair) against its compressed-tier blob (losslessly
// quantized distances, 2 bytes/pair when the distances fit uint16).
// The decode is verified bit-identical before any row is emitted, and
// the run fails unless the integer workloads retain at least 4x more
// graphs per GB in the compressed tier — the acceptance gate.
//
// Latency axis — each workload is solved twice against the same
// persistent plan store directory through two fresh caches, simulating
// a process restart: the cold solve pays the full symbolic phase (and
// writes the plan to disk), the warm-restart solve must reload it with
// ZERO symbolic builds (gated) and pay only the numeric phase.
//
// order selects the vertex labeling fed to the solver: "nd" (natural
// input order, the default) or "rcm" (graph.RCM relabeling first).
// RCM does not change the dense blob sizes — only which distances land
// where — but it does change the nested-dissection separators and with
// them the words moved and solve time, which is what the order column
// surfaces.
func StoreBench(cfg Config, n, p int, order string) (*Table, error) {
	t := &Table{
		ID: "E23",
		Title: fmt.Sprintf("tiered oracle memory at n=%d, p=%d, order=%s (compressed tier + persistent plan store)",
			n, p, order),
		Columns: []string{"workload", "kind", "hot_bytes", "comp_bytes", "ratio",
			"per_gb_hot", "per_gb_comp", "cold_ms", "warm_ms", "cold/warm", "words_moved"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := func(u, v int) float64 { return float64(rng.Intn(9) + 1) }
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"star", graph.Star(n, w)},
		{"tree", graph.RandomTree(n, w, rng)},
		{"grid", gridOfN(n, w)},
		{"gnp-avg4", graph.RandomGNP(n, 4/float64(n), w, rng)},
	}
	for _, wl := range workloads {
		g := wl.g
		switch order {
		case "", "nd":
			// natural input order
		case "rcm":
			g = g.Permute(g.RCM())
		default:
			return nil, fmt.Errorf("store: unknown order %q (valid: nd, rcm)", order)
		}

		dir, err := os.MkdirTemp("", "apsp-store-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		// Cold: full symbolic build, persisted to disk on the way out.
		cold, err := apsp.NewPlanCacheAt(dir)
		if err != nil {
			return nil, err
		}
		opts := cfg.sparseOpts()
		opts.Plans = cold
		start := time.Now()
		coldRes, err := apsp.SparseAPSPWith(g, p, opts)
		if err != nil {
			return nil, err
		}
		coldMs := float64(time.Since(start).Nanoseconds()) / 1e6
		if st := cold.Stats(); st.Builds != 1 || st.DiskWrites != 1 {
			return nil, fmt.Errorf("store %s: cold cache stats %+v, want 1 build / 1 disk write", wl.name, st)
		}

		// Warm restart: a FRESH cache over the same directory is all a
		// new process would have. Zero symbolic builds is the contract.
		warm, err := apsp.NewPlanCacheAt(dir)
		if err != nil {
			return nil, err
		}
		opts.Plans = warm
		start = time.Now()
		warmRes, err := apsp.SparseAPSPWith(g, p, opts)
		if err != nil {
			return nil, err
		}
		warmMs := float64(time.Since(start).Nanoseconds()) / 1e6
		if st := warm.Stats(); st.Builds != 0 || st.DiskHits != 1 {
			return nil, fmt.Errorf("store %s: warm restart ran %d symbolic builds (stats %+v), want 0",
				wl.name, st.Builds, st)
		}
		if !sameDistBits(coldRes.Dist, warmRes.Dist) {
			return nil, fmt.Errorf("store %s: persisted plan solved to different distances", wl.name)
		}

		// Tier footprints: the hot oracle versus its compressed blob,
		// decode-verified bit-identical before the ratio means anything.
		res, err := apsp.SuccessorsFromDist(g, coldRes.Dist)
		if err != nil {
			return nil, err
		}
		hotBytes := res.MemoryBytes()
		blob := oracle.CompressDist(coldRes.Dist)
		kind, _, err := oracle.CompressedInfo(blob)
		if err != nil {
			return nil, err
		}
		dec, err := oracle.DecompressDist(blob)
		if err != nil {
			return nil, err
		}
		if !sameDistBits(coldRes.Dist, dec) {
			return nil, fmt.Errorf("store %s: compressed tier is not bit-lossless", wl.name)
		}
		ratio := float64(hotBytes) / float64(len(blob))
		if ratio < 4 {
			return nil, fmt.Errorf("store %s: compressed tier retains only %.2fx more per GB, want >= 4x",
				wl.name, ratio)
		}
		const gb = 1 << 30
		t.Add(wl.name, kind, hotBytes, len(blob), ratio,
			gb/hotBytes, gb/int64(len(blob)),
			coldMs, warmMs, coldMs/warmMs, coldRes.Report.TotalWords)
	}
	t.Note("hot tier: float64 distances + int32 successors (12 B/pair); compressed tier:")
	t.Note("losslessly quantized distances (u16 = 2 B/pair for integer weights, verified")
	t.Note("bit-identical on decode) — per_gb_* is how many such graphs fit in one GB")
	t.Note("warm_ms is a fresh process over the same -plan-dir: the plan loads from disk")
	t.Note("hash-verified with zero symbolic builds, so only the numeric phase remains")
	return t, nil
}
