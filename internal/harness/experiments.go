package harness

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"time"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/bounds"
	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/partition"
	"sparseapsp/internal/semiring"
)

// Config sets the sweep dimensions. The defaults finish in a couple of
// minutes on a laptop; cmd/apspbench exposes flags to enlarge them.
type Config struct {
	GridSides    []int // 2D grid workloads with n = side²
	Ps           []int // machine sizes; must be (2^h−1)² for the sparse algorithm
	Seed         int64
	CyclicFactor int             // DC-APSP block-cyclic factor
	Kernel       semiring.Kernel // min-plus kernel for local block arithmetic
	Wire         apsp.WireFormat // sparse-solver payload encoding (packed or dense)
	Executor     apsp.Executor   // plan executor (machine or dataflow; costs are identical)
	Schedule     apsp.Schedule   // dataflow scheduling policy (critical or fifo; costs are identical)
	Fuse         apsp.Fuse       // dataflow node fusion (on or off; costs are identical)
	ExecWorkers  int             // dataflow worker count; 0 = auto
}

// sparseOpts builds the SparseOptions every experiment shares.
func (c Config) sparseOpts() apsp.SparseOptions {
	return apsp.SparseOptions{Seed: c.Seed, Kernel: c.Kernel, Wire: c.Wire,
		Executor: c.Executor, Schedule: c.Schedule, Fuse: c.Fuse, ExecWorkers: c.ExecWorkers}
}

// DefaultConfig returns the sweep used by the benchmark suite.
func DefaultConfig() Config {
	return Config{
		GridSides:    []int{16, 24, 32},
		Ps:           []int{9, 49, 225, 961},
		Seed:         42,
		CyclicFactor: 4,
	}
}

// point is one (workload, machine) measurement.
type point struct {
	Side, N, P, Sep int
	Sparse          comm.Report
	DenseDC         comm.Report
	Dense2D         comm.Report
}

// Suite runs the shared sweep once and renders the Table 2 experiments
// from it.
type Suite struct {
	Cfg    Config
	Points []point
}

// NewSuite runs every solver on every (grid, p) combination. Workloads
// are random-weight 2D grids — the canonical |S| = Θ(√n) family the
// paper targets.
func NewSuite(cfg Config) (*Suite, error) {
	s := &Suite{Cfg: cfg}
	for _, side := range cfg.GridSides {
		rng := rand.New(rand.NewSource(cfg.Seed))
		g := graph.Grid2D(side, side, graph.RandomWeights(rng, 1, 10))
		for _, p := range cfg.Ps {
			pt := point{Side: side, N: g.N(), P: p}
			sp, err := apsp.SparseAPSPWith(g, p, cfg.sparseOpts())
			if err != nil {
				return nil, fmt.Errorf("sparse side=%d p=%d: %w", side, p, err)
			}
			pt.Sparse = sp.Report
			pt.Sep = sp.Layout.ND.SeparatorSize()
			dc, err := apsp.DCAPSPKernel(g, p, cfg.CyclicFactor, cfg.Kernel)
			if err != nil {
				return nil, fmt.Errorf("dc side=%d p=%d: %w", side, p, err)
			}
			pt.DenseDC = dc.Report
			fw, err := apsp.Dist2DFWKernel(g, p, cfg.Kernel)
			if err != nil {
				return nil, fmt.Errorf("2dfw side=%d p=%d: %w", side, p, err)
			}
			pt.Dense2D = fw.Report
			s.Points = append(s.Points, pt)
		}
	}
	return s, nil
}

// Table2Memory renders experiment E1: measured per-process peak memory
// against the O(n²/p + |S|²) (sparse) and O(n²/p) (dense) columns of
// Table 2 and the Ω(n²/p) lower bound.
func (s *Suite) Table2Memory() *Table {
	t := &Table{
		ID:    "E1",
		Title: "Table 2 row 1 — per-process memory (words) on 2D grids",
		Columns: []string{"n", "p", "|S|", "M_sparse", "M_dc", "O(n²/p+|S|²)",
			"O(n²/p)", "Ω(n²/p)", "sparse/bound"},
	}
	for _, pt := range s.Points {
		ub := bounds.SparseMemory(pt.N, pt.P, pt.Sep)
		t.Add(pt.N, pt.P, pt.Sep, pt.Sparse.MaxMemory, pt.DenseDC.MaxMemory,
			ub, bounds.DenseMemory(pt.N, pt.P), bounds.MemoryLower(pt.N, pt.P),
			float64(pt.Sparse.MaxMemory)/ub)
	}
	t.Note("sparse/bound should stay O(1) across the sweep (memory matches the bound's shape)")
	return t
}

// Table2Bandwidth renders experiment E2: measured critical-path words.
func (s *Suite) Table2Bandwidth() *Table {
	t := &Table{
		ID:    "E2",
		Title: "Table 2 row 2 — critical-path bandwidth (words) on 2D grids",
		Columns: []string{"n", "p", "|S|", "B_sparse", "B_dc", "B_2dfw",
			"O(n²log²p/p+|S|²log²p)", "Ω(n²/p+|S|²)", "dc/sparse"},
	}
	for _, pt := range s.Points {
		t.Add(pt.N, pt.P, pt.Sep,
			pt.Sparse.Critical.Bandwidth, pt.DenseDC.Critical.Bandwidth, pt.Dense2D.Critical.Bandwidth,
			bounds.SparseBandwidthUpper(pt.N, pt.P, pt.Sep),
			bounds.BandwidthLowerSparse(pt.N, pt.P, pt.Sep),
			float64(pt.DenseDC.Critical.Bandwidth)/float64(pt.Sparse.Critical.Bandwidth))
	}
	t.Note("dc/sparse should grow with p at fixed n (the paper's √p/log²p factor)")
	return t
}

// Table2Latency renders experiment E3: measured critical-path messages.
func (s *Suite) Table2Latency() *Table {
	t := &Table{
		ID:    "E3",
		Title: "Table 2 row 3 — critical-path latency (messages) on 2D grids",
		Columns: []string{"n", "p", "L_sparse", "L_dc", "L_2dfw",
			"O(log²p)", "O(√p log²p)", "Ω(log²p)", "dc/sparse"},
	}
	for _, pt := range s.Points {
		t.Add(pt.N, pt.P,
			pt.Sparse.Critical.Latency, pt.DenseDC.Critical.Latency, pt.Dense2D.Critical.Latency,
			bounds.SparseLatencyUpper(pt.P), bounds.DenseLatencyUpper(pt.P),
			bounds.LatencyLowerSparse(pt.P),
			float64(pt.DenseDC.Critical.Latency)/float64(pt.Sparse.Critical.Latency))
	}
	t.Note("L_sparse must be independent of n and polylogarithmic in p; L_dc grows like √p")
	return t
}

// ReductionFactors renders experiment E8: the measured advantage of the
// sparse algorithm against the Section 5.5 predictions.
func (s *Suite) ReductionFactors() *Table {
	t := &Table{
		ID:    "E8",
		Title: "Section 5.5 — measured vs predicted reduction factors (2D grids)",
		Columns: []string{"n", "p", "|S|", "L_dc/L_sp", "√p/log p",
			"B_dc/B_sp", "min(√p/log²p, n²/(|S|²√p log³p))"},
	}
	for _, pt := range s.Points {
		t.Add(pt.N, pt.P, pt.Sep,
			float64(pt.DenseDC.Critical.Latency)/float64(pt.Sparse.Critical.Latency),
			bounds.LatencyReductionFactor(pt.P),
			float64(pt.DenseDC.Critical.Bandwidth)/float64(pt.Sparse.Critical.Bandwidth),
			bounds.BandwidthReductionFactor(pt.N, pt.P, pt.Sep))
	}
	t.Note("measured and predicted factors should move together as p grows (shape, not constants)")
	return t
}

// LowerBounds renders experiment E10: measured costs against the
// Section 6 lower bounds — ratios must stay ≥ O(1) and should shrink
// toward the bound as the algorithm is nearly optimal.
func (s *Suite) LowerBounds() *Table {
	t := &Table{
		ID:    "E10",
		Title: "Section 6 — measured sparse costs over the lower bounds",
		Columns: []string{"n", "p", "|S|", "B_sparse/Ω(B)", "L_sparse/Ω(L)",
			"M_sparse/Ω(M)"},
	}
	for _, pt := range s.Points {
		t.Add(pt.N, pt.P, pt.Sep,
			float64(pt.Sparse.Critical.Bandwidth)/bounds.BandwidthLowerSparse(pt.N, pt.P, pt.Sep),
			float64(pt.Sparse.Critical.Latency)/bounds.LatencyLowerSparse(pt.P),
			float64(pt.Sparse.MaxMemory)/bounds.MemoryLower(pt.N, pt.P))
	}
	t.Note("bandwidth ratio is bounded by O(log²p); latency ratio by O(1): near-optimality")
	return t
}

// SeparatorCost runs experiment E9: the distributed nested-dissection
// preprocessing cost next to the APSP cost it must be subsumed by.
// Two preprocessing measurements appear: the *real* distributed
// partitioner (partition.DistributedND) and the Karypis–Kumar
// communication *replay* that matches the paper's cited bound exactly.
func SeparatorCost(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Section 5.4.4 — preprocessing (ND) cost vs APSP cost on 2D grids",
		Columns: []string{"n", "p", "B_nd", "B_replay", "B_apsp", "L_nd", "L_replay", "L_apsp",
			"O(n log²p/√p)", "nd/apsp B"},
	}
	for _, side := range cfg.GridSides {
		rng := rand.New(rand.NewSource(cfg.Seed))
		g := graph.Grid2D(side, side, graph.RandomWeights(rng, 1, 10))
		for _, p := range cfg.Ps {
			h, err := apsp.HeightForP(p)
			if err != nil {
				return nil, err
			}
			_, ndRep, err := partition.DistributedND(g, p, h, cfg.Seed)
			if err != nil {
				return nil, err
			}
			replay, err := partition.DistributedNDCost(g, p, cfg.Seed)
			if err != nil {
				return nil, err
			}
			sp, err := apsp.SparseAPSPWith(g, p, cfg.sparseOpts())
			if err != nil {
				return nil, err
			}
			t.Add(g.N(), p,
				ndRep.Critical.Bandwidth, replay.Critical.Bandwidth, sp.Report.Critical.Bandwidth,
				ndRep.Critical.Latency, replay.Critical.Latency, sp.Report.Critical.Latency,
				bounds.SeparatorBandwidth(g.N(), p),
				float64(ndRep.Critical.Bandwidth)/float64(sp.Report.Critical.Bandwidth))
		}
	}
	t.Note("B_nd is the real (simplified) distributed partitioner, B_replay the cited")
	t.Note("Karypis–Kumar communication pattern. The replay is always subsumed (≪ B_apsp);")
	t.Note("the simplified real partitioner is subsumed once n²/p is large enough (its")
	t.Note("allgather-based boundary exchanges cost O(boundary·log q) vs the cited O(n/√q))")
	return t, nil
}

// Crossover runs experiment E11: sweep workloads from tiny to huge
// separators at fixed n and p and watch the sparse algorithm's
// bandwidth advantage disappear (Section 5.5's discussion).
func Crossover(cfg Config, n, p int) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: fmt.Sprintf("Section 5.5 — sparsity crossover at n=%d, p=%d", n, p),
		Columns: []string{"workload", "m", "|S|", "B_sparse", "B_dc", "dc/sparse",
			"L_sparse", "L_dc"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := graph.RandomWeights(rng, 1, 10)
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"star", graph.Star(n, w)},
		{"tree", graph.RandomTree(n, w, rng)},
		{"grid", gridOfN(n, w)},
		{"rgg", graph.RandomGeometric(n, 1.8/math.Sqrt(float64(n)), rng)},
		{"gnp-avg4", graph.RandomGNP(n, 4/float64(n), w, rng)},
		{"gnp-avg16", graph.RandomGNP(n, 16/float64(n), w, rng)},
		{"gnp-dense", graph.RandomGNP(n, 0.3, w, rng)},
		{"complete", graph.Complete(n, w)},
	}
	for _, wl := range workloads {
		sp, err := apsp.SparseAPSPWith(wl.g, p, cfg.sparseOpts())
		if err != nil {
			return nil, err
		}
		dc, err := apsp.DCAPSPKernel(wl.g, p, cfg.CyclicFactor, cfg.Kernel)
		if err != nil {
			return nil, err
		}
		t.Add(wl.name, wl.g.M(), sp.Layout.ND.SeparatorSize(),
			sp.Report.Critical.Bandwidth, dc.Report.Critical.Bandwidth,
			float64(dc.Report.Critical.Bandwidth)/float64(sp.Report.Critical.Bandwidth),
			sp.Report.Critical.Latency, dc.Report.Critical.Latency)
	}
	t.Note("dc/sparse shrinks toward (or below) 1 as |S| grows toward n: the advantage needs small separators")
	return t, nil
}

// WireComparison runs experiment E17: the packed-vs-dense wire
// ablation. Each workload is solved twice — dense payloads with
// nothing skipped, then the structure-aware engine (packed encodings
// plus mask-based skipping) — and the wire traffic is compared.
// Distances are bit-identical by construction (wire_test.go pins it);
// this table quantifies what the engine saves per family.
func WireComparison(cfg Config, n, p int) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: fmt.Sprintf("packed vs dense wire format at n=%d, p=%d", n, p),
		Columns: []string{"workload", "|S|", "W_dense", "W_packed", "dense/packed",
			"B_dense", "B_packed", "msg_dense", "msg_packed"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := graph.RandomWeights(rng, 1, 10)
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"star", graph.Star(n, w)},
		{"tree", graph.RandomTree(n, w, rng)},
		{"path", graph.Path(n, w)},
		{"grid", gridOfN(n, w)},
		{"rgg", graph.RandomGeometric(n, 1.8/math.Sqrt(float64(n)), rng)},
		{"gnp-avg4", graph.RandomGNP(n, 4/float64(n), w, rng)},
	}
	for _, wl := range workloads {
		opts := cfg.sparseOpts()
		opts.Wire = apsp.WireDense
		dense, err := apsp.SparseAPSPWith(wl.g, p, opts)
		if err != nil {
			return nil, err
		}
		opts.Wire = apsp.WirePacked
		packed, err := apsp.SparseAPSPWith(wl.g, p, opts)
		if err != nil {
			return nil, err
		}
		t.Add(wl.name, packed.Layout.ND.SeparatorSize(),
			dense.Report.TotalWords, packed.Report.TotalWords,
			float64(dense.Report.TotalWords)/float64(packed.Report.TotalWords),
			dense.Report.Critical.Bandwidth, packed.Report.Critical.Bandwidth,
			dense.Report.TotalMessages, packed.Report.TotalMessages)
	}
	t.Note("the win tracks how much of the closure stays empty: dramatic on stars (whole")
	t.Note("panels provably all-Inf), solid on trees, and ~1%% on connected grids where every")
	t.Note("block fills dense and payloads are incompressible (tag adds one word/message)")
	return t, nil
}

// CommBreakdown runs experiment E22: the demand-pruned wire ablation
// with a per-phase words-moved breakdown. Each workload is solved three
// times — dense, packed (the E17 winner) and pruned (demand keep-lists
// plus the R2 zero-diagonal drop) — and the table splits every wire's
// traffic across the schedule phases (R2 pivots, R3 panels, R4 panel
// broadcasts, R4 reduces, R4-sequential sends, transposes). Distances
// are bit-identical across all three wires by construction
// (prune_test.go pins it); message counts are identical between packed
// and pruned because pruning shrinks payloads, never the schedule.
//
// The run fails (returns an error) if pruned ever moves more words
// than packed on any workload — the chooser falls back to the classic
// encodings whenever the keep-lists don't pay, so a regression here
// means the chooser is broken. CI leans on this as the words-moved
// smoke check.
func CommBreakdown(cfg Config, n, p int) (*Table, error) {
	t := &Table{
		ID:    "E22",
		Title: fmt.Sprintf("per-phase words moved by wire format at n=%d, p=%d", n, p),
		Columns: []string{"workload", "wire", "W_total", "W_r2", "W_r3", "W_r4panel",
			"W_r4reduce", "W_r4seq", "W_trans", "msgs", "packed/this"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := graph.RandomWeights(rng, 1, 10)
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"star", graph.Star(n, w)},
		{"tree", graph.RandomTree(n, w, rng)},
		{"path", graph.Path(n, w)},
		{"grid", gridOfN(n, w)},
		{"gnp-avg4", graph.RandomGNP(n, 4/float64(n), w, rng)},
	}
	wires := []apsp.WireFormat{apsp.WireDense, apsp.WirePacked, apsp.WirePruned}
	for _, wl := range workloads {
		reports := make([]comm.Report, len(wires))
		for i, wf := range wires {
			opts := cfg.sparseOpts()
			opts.Wire = wf
			res, err := apsp.SparseAPSPWith(wl.g, p, opts)
			if err != nil {
				return nil, err
			}
			reports[i] = res.Report
		}
		packed, pruned := reports[1], reports[2]
		if pruned.TotalWords > packed.TotalWords {
			return nil, fmt.Errorf("comm: %s: pruned wire moved %d words > packed %d — chooser regression",
				wl.name, pruned.TotalWords, packed.TotalWords)
		}
		for i, wf := range wires {
			r := reports[i]
			t.Add(wl.name, wf.String(), r.TotalWords,
				r.WordsByClass[comm.SendR2], r.WordsByClass[comm.SendR3],
				r.WordsByClass[comm.SendR4Panel], r.WordsByClass[comm.SendR4Reduce],
				r.WordsByClass[comm.SendR4Seq], r.WordsByClass[comm.SendTrans],
				r.TotalMessages,
				float64(packed.TotalWords)/float64(r.TotalWords))
		}
	}
	t.Note("pruned wins where the demand sweep proves receivers fold only a slice of each")
	t.Note("payload (paths/trees) or where pivots are identity blocks the zero-diag drop")
	t.Note("collapses to one word (stars); dense-filling grids keep packed's byte counts")
	return t, nil
}

// gridOfN builds the largest square grid with at most n vertices.
func gridOfN(n int, w graph.WeightFn) *graph.Graph {
	side := int(math.Sqrt(float64(n)))
	return graph.Grid2D(side, side, w)
}

// PlanReuse runs experiment E18: the symbolic plan-cache ablation.
// Each workload is solved cold (empty cache: nested dissection, eTree,
// fill mask and op-schedule enumeration all run), then warm on the
// SAME structure with fresh weights — the serving/weight-update
// pattern — which must hit the plan cache and perform zero symbolic
// work. The table reports cold vs warm wall-clock, the symbolic share
// the warm path skipped, and the cache counters proving the skip.
func PlanReuse(cfg Config, n, p int) (*Table, error) {
	t := &Table{
		ID: "E18",
		Title: fmt.Sprintf("symbolic plan reuse at n=%d, p=%d (cold vs warm solve, warm = best of %d)",
			n, p, planReuseWarmRuns),
		Columns: []string{"workload", "plan_ops", "cold_ms", "warm_ms", "cold/warm",
			"symbolic_ms", "builds", "hits"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := graph.RandomWeights(rng, 1, 10)
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"star", graph.Star(n, w)},
		{"tree", graph.RandomTree(n, w, rng)},
		{"grid", gridOfN(n, w)},
		{"gnp-avg4", graph.RandomGNP(n, 4/float64(n), w, rng)},
	}
	for _, wl := range workloads {
		cache := apsp.NewPlanCache()
		opts := cfg.sparseOpts()
		opts.Plans = cache

		start := time.Now()
		cold, err := apsp.SparseAPSPWith(wl.g, p, opts)
		if err != nil {
			return nil, err
		}
		coldMs := float64(time.Since(start).Nanoseconds()) / 1e6

		// Warm solves: identical structure, fresh weights, so each one
		// must reuse the cached plan.
		warmMs := math.Inf(1)
		for i := 0; i < planReuseWarmRuns; i++ {
			wg := reweight(wl.g, rng)
			start = time.Now()
			warm, err := apsp.SparseAPSPWith(wg, p, opts)
			if err != nil {
				return nil, err
			}
			if ms := float64(time.Since(start).Nanoseconds()) / 1e6; ms < warmMs {
				warmMs = ms
			}
			if warm.Dist.Rows != cold.Dist.Rows {
				return nil, fmt.Errorf("plan-reuse: warm solve shape mismatch")
			}
		}

		stats := cache.Stats()
		if stats.Builds != 1 || stats.Hits != int64(planReuseWarmRuns) {
			return nil, fmt.Errorf("plan-reuse %s: cache stats %+v, want 1 build / %d hits",
				wl.name, stats, planReuseWarmRuns)
		}
		var planOps int
		if pl := cachedPlan(cache, wl.g, p, opts); pl != nil {
			planOps = pl.OpCount()
		}
		t.Add(wl.name, planOps, coldMs, warmMs, coldMs/warmMs,
			float64(stats.BuildNanos)/1e6, stats.Builds, stats.Hits)
	}
	t.Note("warm solves fetch the frozen op schedule by StructureFingerprint: no nested")
	t.Note("dissection, no eTree, no fill mask — only the O(n+m) weight permutation plus the")
	t.Note("numeric replay; symbolic_ms is exactly the work each warm solve skipped")
	return t, nil
}

// planReuseWarmRuns is the number of warm (plan-hit) solves E18 times.
const planReuseWarmRuns = 3

// reweight copies g's structure with fresh random weights — the
// weight-update serving workload, which shares the graph's
// StructureFingerprint by construction.
func reweight(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	out := graph.New(g.N())
	for _, e := range g.Edges() {
		out.AddEdge(e.U, e.V, float64(rng.Intn(10)+1))
	}
	return out
}

// cachedPlan pulls the plan E18 just built back out of the cache with
// a stats-neutral Peek; it runs no solve and touches no weights.
func cachedPlan(cache *apsp.PlanCache, g *graph.Graph, p int, opts apsp.SparseOptions) *apsp.Plan {
	pl, _ := cache.Peek(apsp.StructureFingerprintOf(g, p, opts.Seed, opts.Wire, opts.R4Strategy))
	return pl
}

// ExecutorComparison runs experiment E19: the machine executor (one
// goroutine per rank, real blocking receives) against the dataflow
// executor (frozen Plan lowered to a dependency graph, run on a bounded
// worker pool with replayed cost accounting) on warm plans — the
// serving-path hot loop. Both executors produce bit-identical distances
// and cost reports (asserted here and pinned by the golden cost test);
// the table measures wall-clock only. The p=961 rows are where the
// machine path drowns in goroutine scheduling: p blocked goroutines for
// a few hundred vertices of actual numeric work.
func ExecutorComparison(cfg Config, reps int) (*Table, error) {
	t := &Table{
		ID: "E19",
		Title: fmt.Sprintf("machine vs dataflow executor on warm plans (wall-clock, best of %d)",
			reps),
		Columns: []string{"workload", "n", "p", "wire", "plan_ops",
			"machine_ms", "dataflow_ms", "speedup"},
	}
	w := func(seed int64) *rand.Rand { return rand.New(rand.NewSource(cfg.Seed + seed)) }
	workloads := []struct {
		name string
		g    *graph.Graph
		p    int
		wire apsp.WireFormat
	}{
		// Small machines: the scheduling overhead is modest, the two
		// executors should be close.
		{"grid20", graph.Grid2D(20, 20, graph.RandomWeights(w(1), 1, 10)), 49, apsp.WirePacked},
		{"grid30", graph.Grid2D(30, 30, graph.RandomWeights(w(2), 1, 10)), 225, apsp.WirePacked},
		// Serving scale: p = 961 ranks on path-like and tree graphs,
		// where blocks are tiny and scheduling dominates the solve.
		{"path600", graph.Path(600, graph.UnitWeights), 961, apsp.WireDense},
		{"cycle800", graph.Cycle(800, graph.UnitWeights), 961, apsp.WirePacked},
		{"tree600", graph.RandomTree(600, graph.UnitWeights, w(3)), 961, apsp.WireDense},
	}
	for _, wl := range workloads {
		h, err := apsp.HeightForP(wl.p)
		if err != nil {
			return nil, err
		}
		ly, err := apsp.NewLayout(wl.g, h, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pl, err := apsp.BuildPlan(ly, wl.p, wl.wire, apsp.R4Mapped)
		if err != nil {
			return nil, err
		}
		best := func(ex apsp.Executor) (float64, *apsp.DistResult, error) {
			var keep *apsp.DistResult
			ms := math.Inf(1)
			for i := 0; i <= reps; i++ { // one extra warm-up rep, not timed
				start := time.Now()
				res, err := pl.ExecuteWith(ly, cfg.Kernel, ex)
				if err != nil {
					return 0, nil, err
				}
				if d := float64(time.Since(start).Nanoseconds()) / 1e6; i > 0 && d < ms {
					ms = d
				}
				keep = res
			}
			return ms, keep, nil
		}
		machMs, mach, err := best(apsp.ExecMachine)
		if err != nil {
			return nil, fmt.Errorf("exec %s machine: %w", wl.name, err)
		}
		flowMs, flow, err := best(apsp.ExecDataflow)
		if err != nil {
			return nil, fmt.Errorf("exec %s dataflow: %w", wl.name, err)
		}
		if !reflect.DeepEqual(flow.Report, mach.Report) {
			return nil, fmt.Errorf("exec %s: executors disagree on the cost report", wl.name)
		}
		t.Add(wl.name, wl.g.N(), wl.p, wl.wire.String(), pl.OpCount(),
			machMs, flowMs, machMs/flowMs)
	}
	t.Note("identical charged costs by construction (dataflow replays the machine's clock")
	t.Note("updates in plan order); speedup is pure scheduling: a bounded worker pool walking")
	t.Note("the ready frontier vs p goroutines parked in blocking receives")
	return t, nil
}

// SchedulerAblation runs experiment E24: the cost-aware dataflow
// scheduler against its own ablations on warm plans. Three variants run
// per workload — fifo (unordered ready queue, unfused; the E19
// scheduler), crit (critical-path priorities on per-worker heaps with
// stealing, unfused) and critfuse (priorities plus fused panel chains
// and coalesced relay runs; the default) — all three must produce
// bit-identical distances and cost reports (asserted before timing).
// The rcm_dw column reports the RCM ordering ablation: total charged
// words of an Order=rcm solve over the natural-order solve on the same
// graph (distances are equal by construction; only measured costs and
// kernel time move).
func SchedulerAblation(cfg Config, reps int) (*Table, error) {
	t := &Table{
		ID: "E24",
		Title: fmt.Sprintf("dataflow scheduler ablation on warm plans (wall-clock, best of %d)",
			reps),
		Columns: []string{"workload", "n", "p", "wire", "nodes", "nodes_fused",
			"fifo_ms", "crit_ms", "critfuse_ms", "speedup", "rcm_dw"},
	}
	w := func(seed int64) *rand.Rand { return rand.New(rand.NewSource(cfg.Seed + seed)) }
	// Integer weights keep path sums float64-exact, so the rcm column's
	// bit-identity assert holds across orderings (real-valued weights
	// would drift by ULPs when a different elimination order
	// re-associates the additions).
	intw := func(r *rand.Rand) graph.WeightFn {
		return func(u, v int) float64 { return float64(r.Intn(10) + 1) }
	}
	workloads := []struct {
		name string
		g    *graph.Graph
		p    int
		wire apsp.WireFormat
	}{
		// Mid-size machine: modest scheduling pressure.
		{"grid30", graph.Grid2D(30, 30, intw(w(2))), 225, apsp.WirePacked},
		// Serving scale: p = 961 ranks over a few hundred vertices,
		// where the ready frontier is wide and per-node overhead is the
		// whole cost. Same families as E19 plus the star, whose single
		// hub separator maximises relay-chain depth.
		{"path600", graph.Path(600, graph.UnitWeights), 961, apsp.WireDense},
		{"cycle800", graph.Cycle(800, graph.UnitWeights), 961, apsp.WirePacked},
		{"tree600", graph.RandomTree(600, graph.UnitWeights, w(3)), 961, apsp.WireDense},
		{"star600", graph.Star(600, graph.UnitWeights), 961, apsp.WirePacked},
	}
	variants := []struct {
		name  string
		sched apsp.Schedule
		fuse  apsp.Fuse
	}{
		{"fifo", apsp.ScheduleFIFO, apsp.FuseOff},
		{"crit", apsp.ScheduleCritical, apsp.FuseOff},
		{"critfuse", apsp.ScheduleCritical, apsp.FuseOn},
	}
	for _, wl := range workloads {
		h, err := apsp.HeightForP(wl.p)
		if err != nil {
			return nil, err
		}
		ly, err := apsp.NewLayout(wl.g, h, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pl, err := apsp.BuildPlan(ly, wl.p, wl.wire, apsp.R4Mapped)
		if err != nil {
			return nil, err
		}
		// Interleaved best-of timing: each repetition round times every
		// variant once, so ambient host load hits all three equally
		// instead of skewing whichever variant's phase it overlapped.
		// Round 0 is an untimed warm-up that also feeds the bit-identity
		// gate: every variant must replay the same plan-order charge
		// sequence and min-plus accumulation order.
		ms := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
		var ref *apsp.DistResult
		for rep := 0; rep <= reps; rep++ {
			for i, v := range variants {
				o := apsp.ExecOpts{Kernel: cfg.Kernel, Executor: apsp.ExecDataflow,
					Schedule: v.sched, Fuse: v.fuse, Workers: cfg.ExecWorkers}
				start := time.Now()
				res, err := pl.ExecuteOpts(ly, o)
				if err != nil {
					return nil, fmt.Errorf("sched %s %s: %w", wl.name, v.name, err)
				}
				if d := float64(time.Since(start).Nanoseconds()) / 1e6; rep > 0 && d < ms[i] {
					ms[i] = d
				}
				if rep > 0 {
					continue
				}
				if ref == nil {
					ref = res
					continue
				}
				if !reflect.DeepEqual(res.Report, ref.Report) {
					return nil, fmt.Errorf("sched %s: %s cost report differs from fifo", wl.name, v.name)
				}
				if !reflect.DeepEqual(res.Dist.V, ref.Dist.V) {
					return nil, fmt.Errorf("sched %s: %s distances differ from fifo", wl.name, v.name)
				}
			}
		}
		// The scheduler exists to not lose: on the star's deep relay
		// chains the fused critical-path schedule must never regress
		// materially against the unordered queue.
		if wl.name == "star600" && ms[2] > ms[0]*1.25 {
			return nil, fmt.Errorf("sched star600: critfuse %.2fms is >25%% slower than fifo %.2fms", ms[2], ms[0])
		}
		// RCM ordering ablation: full solves (the permutation changes
		// the nested dissection, so no plan is shared), words ratio.
		nat, err := apsp.SparseAPSPWith(wl.g, wl.p, apsp.SparseOptions{
			Seed: cfg.Seed, Kernel: cfg.Kernel, Wire: wl.wire, Schedule: cfg.Schedule, Fuse: cfg.Fuse})
		if err != nil {
			return nil, fmt.Errorf("sched %s natural: %w", wl.name, err)
		}
		rcm, err := apsp.SparseAPSPWith(wl.g, wl.p, apsp.SparseOptions{
			Seed: cfg.Seed, Kernel: cfg.Kernel, Wire: wl.wire, Schedule: cfg.Schedule, Fuse: cfg.Fuse,
			Order: apsp.OrderRCM})
		if err != nil {
			return nil, fmt.Errorf("sched %s rcm: %w", wl.name, err)
		}
		if !reflect.DeepEqual(rcm.Dist.V, nat.Dist.V) {
			return nil, fmt.Errorf("sched %s: rcm distances differ from natural order", wl.name)
		}
		rcmDW := float64(rcm.Report.TotalWords) / float64(nat.Report.TotalWords)
		t.Add(wl.name, wl.g.N(), wl.p, wl.wire.String(),
			pl.DataflowNodes(apsp.FuseOff), pl.DataflowNodes(apsp.FuseOn),
			ms[0], ms[1], ms[2], ms[0]/ms[2], rcmDW)
	}
	t.Note("identical charged costs across all three variants by construction; speedup is")
	t.Note("fifo_ms/critfuse_ms — pure scheduling and per-node overhead. nodes vs nodes_fused")
	t.Note("counts scheduler nodes before/after coalescing rank-local relay runs and panel")
	t.Note("chains. rcm_dw is total charged words of an Order=rcm solve over natural order:")
	t.Note("a different labeling changes the nested dissection, so words move while the")
	t.Note("distances stay bit-identical (mapped back to input order). on a host with a")
	t.Note("single hardware thread both policies run the serial driver (LIFO stack vs")
	t.Note("priority bitmap) and speedup sits near 1.0; the per-worker heaps + stealing")
	t.Note("only separate the variants when GOMAXPROCS gives the pool real parallelism")
	return t, nil
}

// ReweightAblation runs experiment E20: incremental repair against the
// warm re-solve it replaces. Each family is solved once (populating the
// plan cache), then a fraction of its edges is reweighted and the same
// PathResult is produced two ways: Plan.Repair (decrease propagation +
// increase resets + dirty-column successor rebuild) and the warm
// serving path it shortcuts (Plan.LayoutFor + ExecuteWith + full
// SuccessorsFromDist). Weights are integers, so path sums are
// float64-exact and the two results must match bit-for-bit — asserted
// before anything is timed.
func ReweightAblation(cfg Config, n, p, reps int) (*Table, error) {
	t := &Table{
		ID: "E20",
		Title: fmt.Sprintf("incremental reweight repair vs warm re-solve at n=%d, p=%d (best of %d)",
			n, p, reps),
		Columns: []string{"workload", "n", "m", "edits", "edit_%", "reset_pairs",
			"damage", "repair_ms", "resolve_ms", "speedup"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	iw := func(u, v int) float64 { return float64(rng.Intn(9) + 1) }
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"star", graph.Star(n, iw)},
		{"tree", graph.RandomTree(n, iw, rng)},
		{"grid", gridOfN(n, iw)},
	}
	fractions := []float64{0.001, 0.01, 0.10}
	for _, wl := range workloads {
		cache := apsp.NewPlanCache()
		opts := cfg.sparseOpts()
		opts.Plans = cache
		sp, err := apsp.SparseAPSPWith(wl.g, p, opts)
		if err != nil {
			return nil, fmt.Errorf("reweight %s: cold solve: %w", wl.name, err)
		}
		prev, err := apsp.SuccessorsFromDist(wl.g, sp.Dist)
		if err != nil {
			return nil, fmt.Errorf("reweight %s: successors: %w", wl.name, err)
		}
		pl := cachedPlan(cache, wl.g, p, opts)
		if pl == nil {
			return nil, fmt.Errorf("reweight %s: cold solve did not cache its plan", wl.name)
		}
		ropts := apsp.RepairOptions{
			DamageThreshold: apsp.DefaultDamageThreshold,
			Kernel:          cfg.Kernel,
			Executor:        cfg.Executor,
		}
		for _, frac := range fractions {
			m := wl.g.M()
			k := int(frac*float64(m) + 0.5)
			if k < 1 {
				k = 1
			}
			edits := reweightEdits(wl.g, rng, k)
			g2, err := apsp.ApplyEdits(wl.g, edits)
			if err != nil {
				return nil, fmt.Errorf("reweight %s: %w", wl.name, err)
			}

			// Correctness gate before any timing: the repaired result
			// must be bit-identical to the warm re-solve and its
			// successor chains must replay every distance.
			repaired, _, stats, err := pl.Repair(wl.g, prev, edits, ropts)
			if err != nil {
				return nil, fmt.Errorf("reweight %s: repair: %w", wl.name, err)
			}
			ref, err := pl.ExecuteWith(pl.LayoutFor(g2), cfg.Kernel, cfg.Executor)
			if err != nil {
				return nil, fmt.Errorf("reweight %s: re-solve: %w", wl.name, err)
			}
			if !sameDistBits(repaired.Dist, ref.Dist) {
				return nil, fmt.Errorf("reweight %s k=%d: repair diverges from warm re-solve", wl.name, k)
			}
			if err := apsp.VerifyPaths(g2, repaired); err != nil {
				return nil, fmt.Errorf("reweight %s k=%d: repaired successors: %w", wl.name, k, err)
			}

			repairMs := math.Inf(1)
			for i := 0; i <= reps; i++ { // one extra warm-up rep, not timed
				start := time.Now()
				if _, _, _, err := pl.Repair(wl.g, prev, edits, ropts); err != nil {
					return nil, err
				}
				if d := float64(time.Since(start).Nanoseconds()) / 1e6; i > 0 && d < repairMs {
					repairMs = d
				}
			}
			resolveMs := math.Inf(1)
			for i := 0; i <= reps; i++ {
				start := time.Now()
				res, err := pl.ExecuteWith(pl.LayoutFor(g2), cfg.Kernel, cfg.Executor)
				if err != nil {
					return nil, err
				}
				if _, err := apsp.SuccessorsFromDist(g2, res.Dist); err != nil {
					return nil, err
				}
				if d := float64(time.Since(start).Nanoseconds()) / 1e6; i > 0 && d < resolveMs {
					resolveMs = d
				}
			}
			damage := fmt.Sprintf("%.4f", stats.DamageFraction)
			if stats.FellBack {
				damage += "*"
			}
			t.Add(wl.name, wl.g.N(), m, k, 100*float64(k)/float64(m), stats.ResetPairs,
				damage, repairMs, resolveMs, resolveMs/repairMs)
		}
	}
	t.Note("every row is bit-identical to the warm re-solve before timing (integer weights,")
	t.Note("float64-exact sums); damage is the seeded share of the n² pairs, * = the repair")
	t.Note("crossed a threshold and fell back to the warm path it is measured against")
	return t, nil
}

// reweightEdits picks k distinct edges of g and gives each a fresh
// integer weight different from its current one — a mixed
// increase/decrease reweighting workload.
func reweightEdits(g *graph.Graph, rng *rand.Rand, k int) []apsp.EdgeEdit {
	es := g.Edges()
	if k > len(es) {
		k = len(es)
	}
	edits := make([]apsp.EdgeEdit, 0, k)
	for _, i := range rng.Perm(len(es))[:k] {
		e := es[i]
		w := float64(rng.Intn(9) + 1)
		for w == e.W {
			w = float64(rng.Intn(9) + 1)
		}
		edits = append(edits, apsp.EdgeEdit{U: e.U, V: e.V, W: w})
	}
	return edits
}

// sameDistBits compares two distance matrices bit-for-bit.
func sameDistBits(a, b *semiring.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.V {
		if math.Float64bits(v) != math.Float64bits(b.V[i]) {
			return false
		}
	}
	return true
}

// OperationCounts runs experiment E12 plus the Lemma 6.4 check:
// SuperFW's computation-avoiding operation count against classical n³
// and the Ω(n²|S|) lower bound.
func OperationCounts(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "SuperFW operation reduction (PPoPP'20 claim + Lemma 6.4)",
		Columns: []string{"n", "h", "|S|", "ops_superfw", "n³", "n³/ops",
			"n/|S|", "Ω(n²|S|)", "ops/Ω"},
	}
	for _, side := range cfg.GridSides {
		rng := rand.New(rand.NewSource(cfg.Seed))
		g := graph.Grid2D(side, side, graph.RandomWeights(rng, 1, 10))
		n := g.N()
		for _, h := range []int{2, 3, 4} {
			res, err := apsp.SuperFWKernel(g, h, cfg.Seed, cfg.Kernel)
			if err != nil {
				return nil, err
			}
			sep := res.Layout.ND.SeparatorSize()
			full := int64(n) * int64(n) * int64(n)
			lower := bounds.OperationsLower(n, sep)
			t.Add(n, h, sep, res.Ops, full,
				float64(full)/float64(res.Ops),
				float64(n)/float64(sep),
				lower, float64(res.Ops)/lower)
		}
	}
	t.Note("n³/ops grows with n/|S| (deeper trees help until separators dominate); ops/Ω stays ≥ 1")
	return t, nil
}

// Figure1 renders experiment E4: the paper's Fig. 1 reordering demo on
// its example graph — the reordered adjacency matrix with the empty
// cousin blocks visible.
func Figure1(seed int64) (*Table, error) {
	g := graph.Figure1Graph()
	nd, err := partition.NestedDissection(g, 2, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E4",
		Title:   "Figure 1 — nested-dissection reordering of the example graph",
		Columns: []string{"supernode", "level", "vertices (original ids)"},
	}
	tr := [3]int{1, 1, 2}
	for lbl := 1; lbl <= nd.N; lbl++ {
		t.Add(lbl, tr[lbl-1], fmt.Sprintf("%v", nd.Super[lbl]))
	}
	pg := g.Permute(nd.Perm)
	// Render the reordered adjacency pattern.
	var pattern string
	for i := 0; i < pg.N(); i++ {
		for j := 0; j < pg.N(); j++ {
			if i == j {
				pattern += "o"
			} else if _, ok := pg.HasEdge(i, j); ok {
				pattern += "o"
			} else {
				pattern += "."
			}
		}
		pattern += "\n"
	}
	t.Note("reordered adjacency pattern (o = finite, . = empty):\n%s", pattern)
	t.Note("blocks A(1,2)/A(2,1) (V1×V2) are empty — the Fig. 1d structure")
	return t, nil
}

// PerLevel runs experiment E13: the per-eTree-level cost decomposition
// of Lemmas 5.6, 5.8 and 5.9 — L_l = O(log p) at every level, and the
// level-1 bandwidth carrying the O(n²log p/p) leaf-block term while
// higher levels carry only separator-sized traffic.
func PerLevel(cfg Config, side, p int) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.Grid2D(side, side, graph.RandomWeights(rng, 1, 10))
	res, err := apsp.SparseAPSPWith(g, p, cfg.sparseOpts())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E13",
		Title:   fmt.Sprintf("Lemmas 5.6/5.8/5.9 — per-level costs, grid n=%d, p=%d", g.N(), p),
		Columns: []string{"level", "L_l", "O(log p)", "B_l", "flops_l"},
	}
	logp := math.Log2(float64(p))
	if logp < 1 {
		logp = 1
	}
	for _, ph := range res.Phases {
		t.Add(ph.ID, ph.Critical.Latency, logp, ph.Critical.Bandwidth, ph.Critical.Flops)
	}
	t.Note("L_l stays O(log p) at every level (Lemma 5.6); level 1 carries the n²/p-sized")
	t.Note("leaf traffic of Lemma 5.8 while levels ≥ 2 carry only separator-sized panels (Lemma 5.9)")
	return t, nil
}

// LoadBalance runs experiment E14: Section 5.1 argues the block layout
// suits Floyd–Warshall-structured algorithms because all processors
// stay active, unlike right-looking schemes. We measure per-rank flop
// and traffic imbalance (max/mean over ranks) for each solver.
func LoadBalance(cfg Config, side, p int) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.Grid2D(side, side, graph.RandomWeights(rng, 1, 10))
	t := &Table{
		ID:    "E14",
		Title: fmt.Sprintf("Section 5.1 — per-rank load balance, grid n=%d, p=%d", g.N(), p),
		Columns: []string{"algorithm", "flops max/mean", "words max/mean",
			"active ranks"},
	}
	add := func(name string, rep comm.Report) {
		var flopSum, flopMax, bwSum, bwMax float64
		active := 0
		for r := range rep.PerRank {
			f := float64(rep.LocalFlops[r])
			b := float64(rep.LocalSent[r])
			flopSum += f
			bwSum += b
			if f > flopMax {
				flopMax = f
			}
			if b > bwMax {
				bwMax = b
			}
			if f > 0 {
				active++
			}
		}
		n := float64(len(rep.PerRank))
		fr, br := 0.0, 0.0
		if flopSum > 0 {
			fr = flopMax / (flopSum / n)
		}
		if bwSum > 0 {
			br = bwMax / (bwSum / n)
		}
		t.Add(name, fr, br, active)
	}
	sp, err := apsp.SparseAPSPWith(g, p, cfg.sparseOpts())
	if err != nil {
		return nil, err
	}
	add("2d-sparse-apsp", sp.Report)
	dc, err := apsp.DCAPSPKernel(g, p, cfg.CyclicFactor, cfg.Kernel)
	if err != nil {
		return nil, err
	}
	add("2d-dc-apsp", dc.Report)
	fw, err := apsp.Dist2DFWKernel(g, p, cfg.Kernel)
	if err != nil {
		return nil, err
	}
	add("2d-blocked-fw", fw.Report)
	t.Note("ratios use each rank's own work and sent-word counters (no clock merging);")
	t.Note("the sparse layout concentrates flops on leaf-block rows (bigger blocks), but")
	t.Note("every rank stays active — the qualitative §5.1 claim")
	return t, nil
}

// WeakScaling runs experiment E15: grow n with p so that n²/p stays
// constant, the regime where the sparse algorithm's bandwidth should
// stay flat while the dense algorithm's grows like √p.
func WeakScaling(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "weak scaling — n²/p held ≈ constant",
		Columns: []string{"n", "p", "n²/p", "B_sparse", "B_dc",
			"L_sparse", "L_dc", "dc/sparse B"},
	}
	// side ≈ base·p^{1/4} keeps n²/p constant.
	cases := []struct{ side, p int }{{12, 9}, {18, 49}, {28, 225}}
	for _, c := range cases {
		rng := rand.New(rand.NewSource(cfg.Seed))
		g := graph.Grid2D(c.side, c.side, graph.RandomWeights(rng, 1, 10))
		sp, err := apsp.SparseAPSPWith(g, c.p, cfg.sparseOpts())
		if err != nil {
			return nil, err
		}
		dc, err := apsp.DCAPSPKernel(g, c.p, cfg.CyclicFactor, cfg.Kernel)
		if err != nil {
			return nil, err
		}
		n := g.N()
		t.Add(n, c.p, float64(n)*float64(n)/float64(c.p),
			sp.Report.Critical.Bandwidth, dc.Report.Critical.Bandwidth,
			sp.Report.Critical.Latency, dc.Report.Critical.Latency,
			float64(dc.Report.Critical.Bandwidth)/float64(sp.Report.Critical.Bandwidth))
	}
	t.Note("with n²/p fixed, the sparse bandwidth stays near-flat (log² growth) while the dense")
	t.Note("bandwidth grows like √p — the dc/sparse column widens")
	return t, nil
}

// StrongScaling runs experiment E16: fixed problem, growing machine.
// Critical-path flops are the simulator's proxy for computation time;
// speedup = total work / critical work, efficiency = speedup / p. This
// quantifies how much of the eTree parallelism the schedule actually
// realizes (deeper trees expose more level-1 parallelism but add
// sequential separator levels).
func StrongScaling(cfg Config, side int) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.Grid2D(side, side, graph.RandomWeights(rng, 1, 10))
	t := &Table{
		ID:      "E16",
		Title:   fmt.Sprintf("strong scaling — grid n=%d, critical-path computation", g.N()),
		Columns: []string{"p", "total_flops", "critical_flops", "speedup", "efficiency"},
	}
	for _, p := range cfg.Ps {
		sp, err := apsp.SparseAPSPWith(g, p, cfg.sparseOpts())
		if err != nil {
			return nil, err
		}
		var total int64
		for _, f := range sp.Report.LocalFlops {
			total += f
		}
		crit := sp.Report.Critical.Flops
		speedup := float64(total) / float64(crit)
		t.Add(p, total, crit, speedup, speedup/float64(p))
	}
	t.Note("speedup is bounded by the sequential top-separator levels (Amdahl) and the")
	t.Note("leaf-block work skew of E14; it grows with p but efficiency decays, as expected")
	t.Note("for a fixed-size problem under the block layout")
	return t, nil
}
