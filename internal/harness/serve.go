package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/fleet"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/oracle"
	"sparseapsp/internal/server"
)

// ServeConfig sets the dimensions of the fleet serving benchmark
// (E21): a family of 2D grid workloads sharded over apspd backends
// behind the fleet router, under a Zipf-distributed hot-pair query
// load.
type ServeConfig struct {
	N          int   // grid workload size per graph (n = side², like the solver sweeps)
	Graphs     int   // distinct graphs in the working set (what sharding spreads)
	Fleet      []int // backend counts to sweep, e.g. [1, 2, 4]
	Replicas   int   // replication factor R for the fleet rows
	Clients    int   // concurrent load-generator clients
	Batches    int   // query batches per client
	BatchPairs int   // pairs per /query batch (one graph per batch)
	PairPool   int   // distinct (src, dst) pairs per graph the workload draws from
	ZipfS      float64
	Seed       int64
	CachePairs int // router hot-pair cache capacity for the cached row
	// ShardConcurrency caps concurrent requests inside each in-process
	// shard, modeling fixed-capacity backends: every shard in this
	// benchmark shares one process (and one machine), so without a cap
	// a single shard would already absorb every core and adding
	// backends could not show up as throughput. The cap is what makes
	// the 1 -> N scaling signal honest: it measures the router's
	// ability to spread the sharded working set over shards of fixed
	// capacity, not the machine's total core count.
	ShardConcurrency int
	// ShardServiceMs adds a fixed service time to every request a
	// shard handles, while it holds one of the ShardConcurrency slots.
	// Together they set each shard's capacity at Concurrency/Service
	// requests per second — without this, an in-process shard serving
	// microsecond map lookups is effectively infinite capacity and no
	// backend count could ever be the bottleneck. Cache hits at the
	// router skip this cost entirely, which is exactly the effect the
	// cached row measures.
	ShardServiceMs float64
}

// DefaultServeConfig returns the committed BENCH_serve.json dimensions.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		N:                256,
		Graphs:           8,
		Fleet:            []int{1, 2, 4},
		Replicas:         2,
		Clients:          16,
		Batches:          150,
		BatchPairs:       16,
		PairPool:         512,
		ZipfS:            1.2,
		Seed:             42,
		CachePairs:       1 << 16,
		ShardConcurrency: 2,
		ShardServiceMs:   2,
	}
}

// serveRegistry builds a backend oracle registry equivalent to apspd's
// (sequential Floyd-Warshall solver keeps every shard bit-identical and
// the benchmark deterministic; incremental repair enabled).
func serveRegistry(seed int64) *oracle.Registry {
	sopts := apsp.SparseOptions{Seed: seed}
	return oracle.NewRegistry(oracle.Config{
		Solve: func(g *graph.Graph) (*apsp.PathResult, error) {
			return apsp.FloydWarshallPaths(g), nil
		},
		Repair: func(g *graph.Graph, prev *apsp.PathResult, edits []apsp.EdgeEdit) (*apsp.PathResult, *graph.Graph, apsp.RepairStats, error) {
			// p=49 matches the root package's repair default.
			return apsp.RepairWithOptions(g, prev, edits, 49, sopts, 0)
		},
	})
}

// limitConcurrency caps in-flight requests through h at k, each
// costing serviceMs while it holds a slot — together they model a
// fixed-capacity shard of k/serviceMs requests per millisecond (see
// ServeConfig.ShardConcurrency / ShardServiceMs).
func limitConcurrency(h http.Handler, k int, serviceMs float64) http.Handler {
	if k <= 0 && serviceMs <= 0 {
		return h
	}
	var sem chan struct{}
	if k > 0 {
		sem = make(chan struct{}, k)
	}
	delay := time.Duration(serviceMs * float64(time.Millisecond))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sem != nil {
			sem <- struct{}{}
			defer func() { <-sem }()
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		h.ServeHTTP(w, r)
	})
}

// serveClient is the load generator's HTTP client: keep-alive reuse
// sized for the client count, plus a bounded retry loop on 429
// backpressure.
type serveClient struct {
	c         *http.Client
	retry429s atomic.Int64
}

func newServeClient(clients int) *serveClient {
	tr := &http.Transport{MaxIdleConns: 4 * clients, MaxIdleConnsPerHost: 2 * clients}
	return &serveClient{c: &http.Client{Transport: tr, Timeout: 60 * time.Second}}
}

func (sc *serveClient) postJSON(url, path string, body interface{}) (int, []byte, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	for attempt := 0; ; attempt++ {
		resp, err := sc.c.Post(url+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return 0, nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 200 {
			// Honor the router's backpressure: back off and retry.
			sc.retry429s.Add(1)
			time.Sleep(2 * time.Millisecond)
			continue
		}
		return resp.StatusCode, data, nil
	}
}

// serveGraph is one member of the sharded working set.
type serveGraph struct {
	g     *graph.Graph
	load  server.LoadRequest
	pool  [][2]int           // this graph's hot-pair pool
	want  map[[2]int]float64 // reference distances for the pool
	edits [][3]float64       // reweight edits for the identity gate
}

// serveWorkload is the shared query workload: Graphs grids of the same
// family (different weight seeds, so different fingerprints — the unit
// the ring shards) with a hot-pair pool each.
type serveWorkload struct {
	graphs []serveGraph
}

func buildServeWorkload(cfg ServeConfig) serveWorkload {
	side := 1
	for (side+1)*(side+1) <= cfg.N {
		side++
	}
	var w serveWorkload
	for gi := 0; gi < cfg.Graphs; gi++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(gi)))
		g := graph.Grid2D(side, side, graph.RandomWeights(rng, 1, 10))
		sg := serveGraph{g: g, load: server.LoadRequest{N: g.N()}}
		for _, e := range g.Edges() {
			sg.load.Edges = append(sg.load.Edges, [3]float64{float64(e.U), float64(e.V), e.W})
		}
		sg.pool = make([][2]int, cfg.PairPool)
		for i := range sg.pool {
			sg.pool[i] = [2]int{rng.Intn(g.N()), rng.Intn(g.N())}
		}
		// Reference distances, solved locally once: every timed
		// response is checked against these, so the reported numbers
		// can only ever describe correct serving.
		ref := apsp.FloydWarshallPaths(g)
		sg.want = make(map[[2]int]float64, len(sg.pool))
		for _, p := range sg.pool {
			sg.want[p] = ref.Dist.At(p[0], p[1]) // grids are connected: no Inf mapping
		}
		for i, e := range g.Edges() {
			if i >= 4 {
				break
			}
			sg.edits = append(sg.edits, [3]float64{float64(e.U), float64(e.V), e.W * 2})
		}
		w.graphs = append(w.graphs, sg)
	}
	return w
}

// serveRow is one measured topology.
type serveRow struct {
	setup    string
	backends int
	queries  int64
	elapsed  time.Duration
	hitRate  float64
	retries  int64
}

// runServeLoad drives the Zipf workload against url: each batch picks a
// graph uniformly (spreading load over the sharded working set) and
// draws its pairs from that graph's pool Zipf-distributed (hot head).
func runServeLoad(cfg ServeConfig, sc *serveClient, url string, fps []string, w serveWorkload) (int64, time.Duration, error) {
	var wg sync.WaitGroup
	var queries int64
	errc := make(chan error, cfg.Clients)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.PairPool-1))
			for b := 0; b < cfg.Batches; b++ {
				gi := rng.Intn(len(fps))
				sg := &w.graphs[gi]
				req := server.QueryRequest{Graph: fps[gi], Pairs: make([][2]int, cfg.BatchPairs)}
				for i := range req.Pairs {
					req.Pairs[i] = sg.pool[zipf.Uint64()]
				}
				status, data, err := sc.postJSON(url, "/query", req)
				if err != nil {
					errc <- err
					return
				}
				if status != http.StatusOK {
					errc <- fmt.Errorf("query status %d: %s", status, data)
					return
				}
				var resp server.QueryResponse
				if err := json.Unmarshal(data, &resp); err != nil || len(resp.Dists) != len(req.Pairs) {
					errc <- fmt.Errorf("malformed query response: %s", data)
					return
				}
				for i, p := range req.Pairs {
					if resp.Dists[i] != sg.want[p] {
						errc <- fmt.Errorf("graph %d: wrong distance for %v: got %g want %g",
							gi, p, resp.Dists[i], sg.want[p])
						return
					}
				}
				atomic.AddInt64(&queries, 1)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return 0, 0, err
	default:
	}
	return queries, elapsed, nil
}

// identityGate asserts that the router answers every graph's pool
// byte-for-byte like the direct reference server, then — when rw is set
// — that a /reweight through the router swaps fingerprints exactly like
// the reference: old fingerprint 404s, new fingerprint answers
// bit-identically. The gate runs before any number is reported; a fleet
// that is fast but wrong fails the benchmark.
func identityGate(sc *serveClient, routerURL, refURL string, fps []string, w serveWorkload, rw bool) error {
	for gi, fp := range fps {
		req := server.QueryRequest{Graph: fp, Pairs: w.graphs[gi].pool}
		_, want, err := sc.postJSON(refURL, "/query", req)
		if err != nil {
			return err
		}
		for pass := 0; pass < 2; pass++ { // pass 2 hits the router cache, if any
			status, got, err := sc.postJSON(routerURL, "/query", req)
			if err != nil {
				return err
			}
			if status != http.StatusOK || !bytes.Equal(got, want) {
				return fmt.Errorf("identity gate: graph %d diverges from direct (pass %d, status %d)", gi, pass, status)
			}
		}
	}
	if !rw {
		return nil
	}
	// Reweight graph 0 through both sides and re-compare.
	fp, sg := fps[0], w.graphs[0]
	req := server.QueryRequest{Graph: fp, Pairs: sg.pool}
	rwReq := server.ReweightRequest{Graph: fp, Edits: sg.edits}
	status, body, err := sc.postJSON(routerURL, "/reweight", rwReq)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("identity gate: router reweight failed: %v status %d %s", err, status, body)
	}
	var rresp server.ReweightResponse
	if err := json.Unmarshal(body, &rresp); err != nil {
		return err
	}
	if status, _, err := sc.postJSON(routerURL, "/query", req); err != nil || status != http.StatusNotFound {
		return fmt.Errorf("identity gate: old fingerprint still answers after reweight (err %v, status %d)", err, status)
	}
	if status, _, err := sc.postJSON(refURL, "/reweight", rwReq); err != nil || status != http.StatusOK {
		return fmt.Errorf("identity gate: reference reweight failed: %v status %d", err, status)
	}
	newReq := server.QueryRequest{Graph: rresp.Graph, Pairs: sg.pool}
	_, wantNew, err := sc.postJSON(refURL, "/query", newReq)
	if err != nil {
		return err
	}
	status, gotNew, err := sc.postJSON(routerURL, "/query", newReq)
	if err != nil || status != http.StatusOK || !bytes.Equal(gotNew, wantNew) {
		return fmt.Errorf("identity gate: post-reweight answer diverges (err %v, status %d)", err, status)
	}
	return nil
}

// ServeBench measures fleet serving throughput (E21): a direct
// single-process baseline, the router over 1..N fixed-capacity shards
// without caching (the sharding + replication scaling signal), and the
// router with the hot-pair cache on a Zipf workload (the cache
// signal). Every topology passes a bit-identity gate — including
// through a /reweight fingerprint swap — before it is timed.
func ServeBench(cfg ServeConfig) (*Table, error) {
	if cfg.N <= 0 || cfg.Graphs <= 0 || cfg.Clients <= 0 || cfg.Batches <= 0 ||
		cfg.BatchPairs <= 0 || cfg.PairPool <= 1 || len(cfg.Fleet) == 0 {
		return nil, fmt.Errorf("serve: empty benchmark dimensions")
	}
	w := buildServeWorkload(cfg)
	sc := newServeClient(cfg.Clients)

	// startShard spins one fixed-capacity in-process backend.
	startShard := func() *httptest.Server {
		reg := serveRegistry(cfg.Seed)
		return httptest.NewServer(limitConcurrency(server.New(reg), cfg.ShardConcurrency, cfg.ShardServiceMs))
	}
	loadAll := func(url string) ([]string, error) {
		fps := make([]string, len(w.graphs))
		for gi := range w.graphs {
			status, data, err := sc.postJSON(url, "/load", w.graphs[gi].load)
			if err != nil {
				return nil, err
			}
			if status != http.StatusOK {
				return nil, fmt.Errorf("load graph %d: status %d: %s", gi, status, data)
			}
			var info server.GraphInfo
			if err := json.Unmarshal(data, &info); err != nil {
				return nil, err
			}
			fps[gi] = info.Graph
		}
		return fps, nil
	}

	var rows []serveRow

	// Row 1: direct — clients straight at one shard, no router.
	{
		shard := startShard()
		fps, err := loadAll(shard.URL)
		if err == nil {
			var q int64
			var el time.Duration
			q, el, err = runServeLoad(cfg, sc, shard.URL, fps, w)
			if err == nil {
				rows = append(rows, serveRow{setup: "direct", backends: 1, queries: q, elapsed: el})
			}
		}
		shard.Close()
		if err != nil {
			return nil, fmt.Errorf("direct: %w", err)
		}
	}

	// Fleet rows: router over B shards, cache off, then the largest B
	// again with the hot-pair cache on.
	type fleetCase struct {
		label  string
		b      int
		cache  int
		gateRW bool
	}
	var cases []fleetCase
	for _, b := range cfg.Fleet {
		cases = append(cases, fleetCase{label: "fleet", b: b, cache: -1})
	}
	maxB := cfg.Fleet[len(cfg.Fleet)-1]
	cases = append(cases, fleetCase{label: "fleet+cache", b: maxB, cache: cfg.CachePairs, gateRW: true})

	for _, fc := range cases {
		var shards []*httptest.Server
		var urls []string
		for i := 0; i < fc.b; i++ {
			s := startShard()
			shards = append(shards, s)
			urls = append(urls, s.URL)
		}
		refSrv := startShard() // direct reference for the identity gate
		rt, err := fleet.NewRouter(fleet.Config{
			Backends:      urls,
			Replicas:      cfg.Replicas,
			CachePairs:    fc.cache,
			ProbeInterval: time.Hour, // static topology: probing is noise here
		})
		if err == nil {
			front := httptest.NewServer(rt)
			var fps, fpsRef []string
			if fps, err = loadAll(front.URL); err == nil {
				if fpsRef, err = loadAll(refSrv.URL); err == nil {
					for gi := range fps {
						if fps[gi] != fpsRef[gi] {
							err = fmt.Errorf("graph %d: fingerprint diverges between router and direct load", gi)
							break
						}
					}
				}
			}
			if err == nil {
				err = identityGate(sc, front.URL, refSrv.URL, fps, w, false)
			}
			var q int64
			var el time.Duration
			var rowRetries int64
			var rowHitRate float64
			if err == nil {
				// The gate warmed the cache; cool it so the timed run
				// measures the Zipf workload's own locality, then count
				// only the run's traffic.
				for _, fp := range fps {
					rt.Cache().Invalidate(fp)
				}
				sc.retry429s.Store(0)
				pre := rt.Cache().Stats()
				q, el, err = runServeLoad(cfg, sc, front.URL, fps, w)
				rowRetries = sc.retry429s.Load()
				post := rt.Cache().Stats()
				rowHitRate = fleet.PairCacheStats{Hits: post.Hits - pre.Hits, Misses: post.Misses - pre.Misses}.HitRate()
			}
			if err == nil && fc.gateRW {
				// The reweight identity gate runs after timing: it
				// retires graph 0's benchmark fingerprint.
				err = identityGate(sc, front.URL, refSrv.URL, fps, w, true)
			}
			if err == nil {
				rows = append(rows, serveRow{
					setup:    fc.label,
					backends: fc.b,
					queries:  q,
					elapsed:  el,
					hitRate:  rowHitRate,
					retries:  rowRetries,
				})
			}
			front.Close()
			rt.Close()
		}
		refSrv.Close()
		for _, s := range shards {
			s.Close()
		}
		if err != nil {
			return nil, fmt.Errorf("%s B=%d: %w", fc.label, fc.b, err)
		}
	}

	t := &Table{
		ID:    "E21",
		Title: "fleet serving throughput (consistent-hash sharding, replication, hot-pair cache)",
		Columns: []string{"setup", "backends", "R", "clients", "queries", "elapsed_s",
			"qps", "mean_ms", "cache_hit_rate", "retried_429s"},
	}
	for _, r := range rows {
		reps := cfg.Replicas
		hit := "-"
		if r.setup == "direct" {
			reps = 1
		}
		if r.setup == "fleet+cache" {
			hit = fmt.Sprintf("%.3f", r.hitRate)
		}
		qps := float64(r.queries) / r.elapsed.Seconds()
		meanMs := r.elapsed.Seconds() * 1e3 * float64(cfg.Clients) / float64(r.queries)
		t.Add(r.setup, r.backends, reps, cfg.Clients, r.queries, r.elapsed.Seconds(), qps, meanMs, hit, r.retries)
	}
	t.Note("%d grid graphs of n=%d sharded with R=%d; %d clients x %d batches x %d pairs, "+
		"Zipf(s=%.2f) over %d hot pairs per graph, seed %d",
		cfg.Graphs, w.graphs[0].g.N(), cfg.Replicas, cfg.Clients, cfg.Batches, cfg.BatchPairs,
		cfg.ZipfS, cfg.PairPool, cfg.Seed)
	t.Note("shards run in-process, modeled as fixed-capacity backends: concurrency %d x %.1fms "+
		"service time = %.0f qps per shard; qps scaling across B measures the router's load "+
		"spreading over that capacity, cache hits skip it entirely",
		cfg.ShardConcurrency, cfg.ShardServiceMs,
		float64(cfg.ShardConcurrency)/(cfg.ShardServiceMs/1e3))
	t.Note("every row passed a bit-identity gate against a direct single-process server before timing " +
		"(cache cooled again afterwards); the cached row's gate also covers a /reweight fingerprint " +
		"swap (old fp 404s, new fp identical)")
	return t, nil
}
