package partition

import (
	"math/rand"
	"testing"

	"sparseapsp/internal/graph"
)

func TestDistributedNDGridInvariants(t *testing.T) {
	g := graph.Grid2D(12, 12, graph.UnitWeights)
	for _, tc := range []struct{ p, h int }{
		{1, 1}, {1, 2}, {2, 2}, {4, 2}, {4, 3}, {8, 3}, {9, 3}, {16, 4}, {7, 3},
	} {
		res, rep, err := DistributedND(g, tc.p, tc.h, 21)
		if err != nil {
			t.Fatalf("p=%d h=%d: %v", tc.p, tc.h, err)
		}
		checkResultInvariants(t, g, res)
		if tc.p > 1 && rep.Critical.Latency == 0 {
			t.Errorf("p=%d h=%d: no communication measured", tc.p, tc.h)
		}
		if tc.h >= 2 {
			if s := res.SeparatorSize(); s == 0 || s > 36 {
				t.Errorf("p=%d h=%d: |S| = %d, want within (0, 36]", tc.p, tc.h, s)
			}
		}
	}
}

func TestDistributedNDVariousGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cases := map[string]*graph.Graph{
		"path":     graph.Path(40, graph.UnitWeights),
		"cycle":    graph.Cycle(33, graph.UnitWeights),
		"tree":     graph.RandomTree(50, graph.UnitWeights, rng),
		"gnp":      graph.RandomGNP(60, 0.1, graph.UnitWeights, rng),
		"complete": graph.Complete(20, graph.UnitWeights),
		"star":     graph.Star(30, graph.UnitWeights),
		"disconn": func() *graph.Graph {
			g := graph.New(20)
			for v := 0; v+1 < 10; v++ {
				g.AddEdge(v, v+1, 1)
			}
			for v := 10; v+1 < 20; v++ {
				g.AddEdge(v, v+1, 1)
			}
			return g
		}(),
		"empty":  graph.New(10),
		"single": graph.New(1),
		"tiny":   graph.Path(3, graph.UnitWeights),
	}
	for name, g := range cases {
		for _, tc := range []struct{ p, h int }{{4, 2}, {4, 3}, {8, 3}} {
			res, _, err := DistributedND(g, tc.p, tc.h, 5)
			if err != nil {
				t.Errorf("%s p=%d h=%d: %v", name, tc.p, tc.h, err)
				continue
			}
			checkResultInvariants(t, g, res)
		}
	}
}

// The distributed ordering's separators stay within a small factor of
// the sequential partitioner's on grids (distributed refinement brings
// it to parity in practice; allow 2x slack for robustness to seeds).
func TestDistributedNDQualityVsSequential(t *testing.T) {
	for _, side := range []int{16, 20, 24} {
		g := graph.Grid2D(side, side, graph.UnitWeights)
		seq, err := NestedDissection(g, 3, 9)
		if err != nil {
			t.Fatal(err)
		}
		dist, _, err := DistributedND(g, 8, 3, 9)
		if err != nil {
			t.Fatal(err)
		}
		if dist.SeparatorSize() > 2*seq.SeparatorSize() {
			t.Errorf("side=%d: distributed |S| = %d above 2x sequential %d",
				side, dist.SeparatorSize(), seq.SeparatorSize())
		}
		if dist.MaxSeparatorSize() > 2*seq.MaxSeparatorSize()+4 {
			t.Errorf("side=%d: distributed max separator %d above 2x sequential %d",
				side, dist.MaxSeparatorSize(), seq.MaxSeparatorSize())
		}
	}
}

func TestDistributedNDRejectsBadArgs(t *testing.T) {
	g := graph.Path(8, graph.UnitWeights)
	if _, _, err := DistributedND(g, 0, 2, 1); err == nil {
		t.Error("expected error for p=0")
	}
	if _, _, err := DistributedND(g, 4, 0, 1); err == nil {
		t.Error("expected error for h=0")
	}
	// p smaller than the leaf count is fine: single-rank groups fall
	// back to local recursion.
	if _, _, err := DistributedND(g, 2, 4, 1); err != nil {
		t.Errorf("p=2 h=4 should fall back to local recursion: %v", err)
	}
}

// Determinism: same inputs, same seed, same ordering.
func TestDistributedNDDeterministic(t *testing.T) {
	g := graph.Grid2D(10, 10, graph.UnitWeights)
	a, _, err := DistributedND(g, 4, 3, 31)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := DistributedND(g, 4, 3, 31)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Perm {
		if a.Perm[v] != b.Perm[v] {
			t.Fatalf("nondeterministic permutation at vertex %d", v)
		}
	}
}
