package partition

import "sparseapsp/internal/graph"

// redistribute ships one side's vertices (with their same-side-filtered
// adjacency) to the target half of the group, balanced contiguously by
// global position, and returns this rank's new chunk (empty when the
// rank is not in the target group). All members of the full group call
// it for both sides, keeping the collective schedule aligned.
func (w *dndWorker) redistribute(group []int, chunk *dndChunk, side []int,
	part map[int]int8, sep map[int]bool, remotePart map[int]int, wantSide int8,
	targetGroup []int, depth, idx, phaseBase int) *dndChunk {

	counts := w.allGatherInts(group, []int{len(side)}, w.tag(depth, idx, phaseBase, 0))
	myPos := groupIndex(group, w.ctx.Rank())
	offset, total := 0, 0
	offsets := make([]int, len(group))
	for pos := range group {
		offsets[pos] = total
		if pos < myPos {
			offset += counts[pos][0]
		}
		total += counts[pos][0]
	}
	out := newChunk()
	if total == 0 {
		return out
	}
	targetOf := func(globalPos int) int { return globalPos * len(targetGroup) / total }

	// sideValue reports whether neighbour u survives into the side's
	// induced subgraph.
	keepNbr := func(u int) bool {
		if sep[u] {
			return false
		}
		if p, ok := part[u]; ok {
			return p == wantSide
		}
		if p, ok := remotePart[u]; ok {
			return int8(p) == wantSide
		}
		return false // outside the node's subgraph
	}

	myTarget := -1
	for ti, r := range targetGroup {
		if r == w.ctx.Rank() {
			myTarget = ti
		}
	}

	// Build per-target payloads.
	payloads := make([][]float64, len(targetGroup))
	for i, v := range side {
		t := targetOf(offset + i)
		var edges []graph.Edge
		for _, e := range chunk.adj[v] {
			if keepNbr(e.To) {
				edges = append(edges, e)
			}
		}
		if t == myTarget {
			out.verts = append(out.verts, v)
			out.weight[v] = chunk.weight[v]
			out.adj[v] = edges
			continue
		}
		payloads[t] = append(payloads[t], float64(v), float64(chunk.weight[v]), float64(len(edges)))
		for _, e := range edges {
			payloads[t] = append(payloads[t], float64(e.To), e.W)
		}
	}
	for t, pl := range payloads {
		if len(pl) > 0 {
			w.ctx.Send(targetGroup[t], w.tag(depth, idx, phaseBase+1, 0), pl)
		}
	}

	// Receive from every source whose global range contains a position
	// mapping to my target slot (skipping myself — handled locally
	// above). Positions mapping to slot t form the half-open interval
	// [⌈t·total/T⌉, ⌈(t+1)·total/T⌉).
	if myTarget >= 0 {
		T := len(targetGroup)
		mt0 := (myTarget*total + T - 1) / T
		mt1 := ((myTarget+1)*total + T - 1) / T
		for pos, r := range group {
			if r == w.ctx.Rank() || counts[pos][0] == 0 {
				continue
			}
			lo, hi := offsets[pos], offsets[pos]+counts[pos][0]
			if lo < mt0 {
				lo = mt0
			}
			if hi > mt1 {
				hi = mt1
			}
			if lo >= hi {
				continue
			}
			pl := w.ctx.Recv(r, w.tag(depth, idx, phaseBase+1, 0))
			for i := 0; i < len(pl); {
				v := int(pl[i])
				wgt := int(pl[i+1])
				deg := int(pl[i+2])
				i += 3
				edges := make([]graph.Edge, 0, deg)
				for d := 0; d < deg; d++ {
					edges = append(edges, graph.Edge{To: int(pl[i]), W: pl[i+1]})
					i += 2
				}
				out.verts = append(out.verts, v)
				out.weight[v] = wgt
				out.adj[v] = edges
			}
		}
	}
	return out
}
