package partition

import (
	"fmt"
	"sort"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
)

// DistributedND is a genuinely distributed nested dissection running
// as an SPMD program on the simulated machine — the Karypis–Kumar
// parallel multilevel scheme the paper cites in Section 5.4.4,
// simplified where noted:
//
//   - the subgraph at each tree node is distributed in contiguous
//     vertex chunks over the node's processor group;
//   - coarsening rounds match heavy edges *locally* (no cross-rank
//     matching) and exchange only boundary coarsening maps, with
//     O(log q)-latency collectives per round;
//   - the coarsest graph is gathered to the group leader, bisected
//     with the sequential multilevel code, and the coarse partition is
//     broadcast back and projected down the (local) matching chains;
//   - the cut edges are gathered to the leader, which extracts the
//     minimum vertex separator by König's theorem and broadcasts it;
//   - both halves are redistributed to the two halves of the group,
//     shipping each vertex's adjacency to its new owner, and the
//     recursion continues in parallel on the disjoint halves.
//
// Deviations from [18] and their cost impact are documented in
// DESIGN.md: local-only matching can coarsen slightly slower, there is
// no distributed FM refinement after projection (the coarse-level
// refinement inside the leader's bisect still applies), and the
// redistribution is a direct point-to-point exchange. The returned
// Result satisfies the same invariants as NestedDissection
// (CheckSeparation etc.), and the comm.Report carries the measured
// preprocessing cost used by experiment E9.
func DistributedND(g *graph.Graph, p, h int, seed int64) (*Result, comm.Report, error) {
	if h < 1 {
		return nil, comm.Report{}, fmt.Errorf("partition: tree height %d < 1", h)
	}
	if p < 1 {
		return nil, comm.Report{}, fmt.Errorf("partition: p=%d < 1", p)
	}
	n := g.N()
	res := &Result{
		H:       h,
		N:       (1 << h) - 1,
		Perm:    make([]int, n),
		InvPerm: make([]int, n),
	}
	res.Super = make([][]int, res.N+1)
	res.Sizes = make([]int, res.N+1)
	res.Starts = make([]int, res.N+1)

	machine := comm.NewMachine(p)
	err := machine.Run(func(ctx *comm.Ctx) {
		w := &dndWorker{ctx: ctx, res: res, h: h, seed: seed}
		group := make([]int, p)
		for i := range group {
			group[i] = i
		}
		// Initial contiguous chunk of the whole vertex set.
		pos := ctx.Rank()
		lo, hi := pos*n/p, (pos+1)*n/p
		chunk := newChunk()
		for v := lo; v < hi; v++ {
			chunk.verts = append(chunk.verts, v)
			chunk.weight[v] = 1
			chunk.adj[v] = append([]graph.Edge(nil), g.Adj(v)...)
		}
		w.node(group, chunk, 0, 1)
	})
	if err != nil {
		return nil, comm.Report{}, err
	}

	// Finalize exactly like the sequential path.
	next := 0
	for t := 1; t <= res.N; t++ {
		sort.Ints(res.Super[t])
		res.Starts[t] = next
		res.Sizes[t] = len(res.Super[t])
		for _, v := range res.Super[t] {
			res.Perm[v] = next
			res.InvPerm[next] = v
			next++
		}
	}
	if next != n {
		return nil, comm.Report{}, fmt.Errorf("partition: distributed ND assigned %d of %d vertices", next, n)
	}
	return res, machine.Report(), nil
}

// dndChunk is one rank's share of the current subgraph: global vertex
// ids, their collapsed weights, and adjacency over global ids.
type dndChunk struct {
	verts  []int
	weight map[int]int
	adj    map[int][]graph.Edge
}

func newChunk() *dndChunk {
	return &dndChunk{weight: map[int]int{}, adj: map[int][]graph.Edge{}}
}

type dndWorker struct {
	ctx  *comm.Ctx
	res  *Result
	h    int
	seed int64
}

// tag derives a collision-free tag from the tree position and phase.
func (w *dndWorker) tag(depth, idx, phase, round int) int {
	return (((depth*128+idx)*24 + phase) * 64) + round
}

// node processes the dissection-tree node at (depth, idx); group is the
// processor subset responsible and chunk is this rank's share of the
// node's subgraph.
func (w *dndWorker) node(group []int, chunk *dndChunk, depth, idx int) {
	level := w.h - depth
	label := w.res.LevelOffset(level) + idx
	leader := group[0]

	if depth == w.h-1 {
		// Leaf: leader collects the vertex ids.
		ids := make([]float64, len(chunk.verts))
		for i, v := range chunk.verts {
			ids[i] = float64(v)
		}
		parts := w.ctx.Gather(group, leader, w.tag(depth, idx, 0, 0), ids)
		if w.ctx.Rank() == leader {
			var all []int
			for _, part := range parts {
				for _, f := range part {
					all = append(all, int(f))
				}
			}
			w.res.Super[label] = all
		}
		return
	}

	part, sep, remotePart := w.bisectNode(group, chunk, depth, idx)

	// Record the separator at the leader.
	if w.ctx.Rank() == leader {
		var sepList []int
		for v := range sep {
			sepList = append(sepList, v)
		}
		w.res.Super[label] = sepList
	}

	// Split vertices into sides, dropping separator vertices.
	var left, right []int
	for _, v := range chunk.verts {
		if sep[v] {
			continue
		}
		if part[v] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}

	// Redistribute each side to its half of the group and recurse.
	half := (len(group) + 1) / 2
	leftGroup, rightGroup := group[:half], group[half:]
	if len(rightGroup) == 0 {
		// Group of one rank: process both children locally.
		leftChunk := w.filterChunk(chunk, left, part, sep, 0)
		rightChunk := w.filterChunk(chunk, right, part, sep, 1)
		w.node(group, leftChunk, depth+1, 2*idx-1)
		w.node(group, rightChunk, depth+1, 2*idx)
		return
	}
	leftChunk := w.redistribute(group, chunk, left, part, sep, remotePart, 0, leftGroup, depth, idx, 10)
	rightChunk := w.redistribute(group, chunk, right, part, sep, remotePart, 1, rightGroup, depth, idx, 14)
	myPos := groupIndex(group, w.ctx.Rank())
	if myPos < half {
		w.node(leftGroup, leftChunk, depth+1, 2*idx-1)
	} else {
		w.node(rightGroup, rightChunk, depth+1, 2*idx)
	}
}

// filterChunk locally induces the side's subgraph (single-rank path).
func (w *dndWorker) filterChunk(chunk *dndChunk, side []int, part map[int]int8, sep map[int]bool, wantSide int8) *dndChunk {
	out := newChunk()
	keep := map[int]bool{}
	for _, v := range side {
		keep[v] = true
	}
	for _, v := range side {
		out.verts = append(out.verts, v)
		out.weight[v] = chunk.weight[v]
		var edges []graph.Edge
		for _, e := range chunk.adj[v] {
			if keep[e.To] {
				edges = append(edges, e)
			}
		}
		out.adj[v] = edges
	}
	return out
}

// groupIndex returns rank's position in group.
func groupIndex(group []int, rank int) int {
	for i, r := range group {
		if r == rank {
			return i
		}
	}
	panic("partition: rank not in group")
}
