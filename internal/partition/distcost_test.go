package partition

import (
	"testing"

	"sparseapsp/internal/graph"
)

func TestDistributedNDCostCompletes(t *testing.T) {
	g := graph.Grid2D(16, 16, graph.UnitWeights)
	for _, p := range []int{1, 4, 9, 49} {
		rep, err := DistributedNDCost(g, p, 1)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if p > 1 && rep.Critical.Latency == 0 {
			t.Errorf("p=%d: no communication replayed", p)
		}
	}
}

// The replayed latency must be polylogarithmic in p: O(log²p), the
// Section 5.4.4 claim.
func TestDistributedNDCostLatencyPolylog(t *testing.T) {
	g := graph.Grid2D(32, 32, graph.UnitWeights)
	l9 := ndLatency(t, g, 9)
	l961 := ndLatency(t, g, 961)
	// log²(961) / log²(9) ≈ 98/10 ≈ 10; √p scaling would give ~10x too,
	// so compare against p-linear growth instead: 961/9 ≈ 107.
	if l961 > 30*l9 {
		t.Errorf("ND replay latency grew too fast: %d at p=9 vs %d at p=961", l9, l961)
	}
}

func ndLatency(t *testing.T, g *graph.Graph, p int) int64 {
	t.Helper()
	rep, err := DistributedNDCost(g, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Critical.Latency
}

func TestDistributedNDCostRejectsBadP(t *testing.T) {
	if _, err := DistributedNDCost(graph.New(4), 0, 1); err == nil {
		t.Error("expected error for p=0")
	}
}
