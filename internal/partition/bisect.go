package partition

import "math/rand"

// bisectOptions tunes the multilevel bisector.
type bisectOptions struct {
	coarseTarget int     // stop coarsening at this many vertices
	imbalance    float64 // allowed deviation from perfect balance
	fmPasses     int     // FM refinement passes per level
	growTries    int     // initial-partition attempts on the coarsest graph
}

func defaultBisectOptions() bisectOptions {
	return bisectOptions{coarseTarget: 48, imbalance: 0.15, fmPasses: 6, growTries: 6}
}

// bisect computes a balanced 2-way partition of w, returning the side
// (0 or 1) of each vertex. It is the coarsen → initial partition →
// uncoarsen-and-refine pipeline of Karypis–Kumar.
func bisect(w *wgraph, opts bisectOptions, rng *rand.Rand) []int8 {
	if w.n == 0 {
		return nil
	}
	if w.n == 1 {
		return []int8{0}
	}
	// Coarsening phase.
	levels := []*wgraph{w}
	var cmaps [][]int
	cur := w
	for cur.n > opts.coarseTarget {
		cg, cmap := coarsen(cur, rng)
		if cg == nil {
			break
		}
		levels = append(levels, cg)
		cmaps = append(cmaps, cmap)
		cur = cg
	}
	// Initial partition on the coarsest graph.
	coarsest := levels[len(levels)-1]
	part := growInitial(coarsest, opts, rng)
	fmRefine(coarsest, part, opts)
	// Uncoarsening: project and refine.
	for lvl := len(levels) - 2; lvl >= 0; lvl-- {
		fine := levels[lvl]
		cmap := cmaps[lvl]
		finePart := make([]int8, fine.n)
		for v := 0; v < fine.n; v++ {
			finePart[v] = part[cmap[v]]
		}
		part = finePart
		fmRefine(fine, part, opts)
	}
	return part
}

// growInitial produces a starting bipartition of the coarsest graph by
// greedy graph growing: BFS from a random start accumulating vertex
// weight until half the total, repeated growTries times keeping the
// partition with the smallest cut. Unreached vertices (other
// components) are assigned to whichever side is lighter.
func growInitial(w *wgraph, opts bisectOptions, rng *rand.Rand) []int8 {
	best := make([]int8, w.n)
	bestCut := -1
	half := w.tot / 2
	for try := 0; try < opts.growTries; try++ {
		part := make([]int8, w.n)
		for i := range part {
			part[i] = 1
		}
		start := rng.Intn(w.n)
		grown := 0
		queue := []int{start}
		seen := make([]bool, w.n)
		seen[start] = true
		for len(queue) > 0 && grown < half {
			v := queue[0]
			queue = queue[1:]
			part[v] = 0
			grown += w.vwgt[v]
			nbr, _ := w.neighbors(v)
			for _, u := range nbr {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		// Other components: balance greedily.
		w0, w1 := w.sideWeights(part)
		for v := 0; v < w.n; v++ {
			if !seen[v] {
				if w0 <= w1 {
					part[v] = 0
					w0 += w.vwgt[v]
				} else {
					part[v] = 1
					w1 += w.vwgt[v]
				}
			}
		}
		cut := w.cutWeight(part)
		if bestCut == -1 || cut < bestCut {
			bestCut = cut
			copy(best, part)
		}
	}
	return best
}
