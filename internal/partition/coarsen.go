package partition

import "math/rand"

// coarsen contracts a heavy-edge matching of w: unmatched vertices are
// visited in random order and matched with the unmatched neighbour whose
// connecting edge is heaviest (Karypis–Kumar HEM). It returns the coarse
// graph and the fine→coarse vertex map, or nil if the matching shrinks
// the graph by less than 10% (coarsening has stalled).
func coarsen(w *wgraph, rng *rand.Rand) (*wgraph, []int) {
	match := make([]int, w.n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(w.n)
	coarseN := 0
	cmap := make([]int, w.n)
	for i := range cmap {
		cmap[i] = -1
	}
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		bestU, bestW := -1, -1
		nbr, ew := w.neighbors(v)
		for i, u := range nbr {
			if match[u] == -1 && u != v && ew[i] > bestW {
				bestU, bestW = u, ew[i]
			}
		}
		if bestU == -1 {
			match[v] = v
			cmap[v] = coarseN
			coarseN++
		} else {
			match[v] = bestU
			match[bestU] = v
			cmap[v] = coarseN
			cmap[bestU] = coarseN
			coarseN++
		}
	}
	if coarseN > w.n*9/10 {
		return nil, nil
	}

	// Build the coarse graph: sum vertex weights of merged pairs and
	// collapse parallel edges by summing their weights.
	cg := &wgraph{
		n:    coarseN,
		vwgt: make([]int, coarseN),
		xadj: make([]int, coarseN+1),
		tot:  w.tot,
	}
	for v := 0; v < w.n; v++ {
		cg.vwgt[cmap[v]] += w.vwgt[v]
	}
	// Per-coarse-vertex accumulation using a scratch map-by-stamp.
	stamp := make([]int, coarseN)
	slot := make([]int, coarseN)
	for i := range stamp {
		stamp[i] = -1
	}
	fineOf := make([][2]int, coarseN)
	for i := range fineOf {
		fineOf[i] = [2]int{-1, -1}
	}
	for v := 0; v < w.n; v++ {
		c := cmap[v]
		if fineOf[c][0] == -1 {
			fineOf[c][0] = v
		} else {
			fineOf[c][1] = v
		}
	}
	var adj []int
	var ewgt []int
	for c := 0; c < coarseN; c++ {
		cg.xadj[c] = len(adj)
		for _, v := range fineOf[c] {
			if v == -1 {
				continue
			}
			nbr, ew := w.neighbors(v)
			for i, u := range nbr {
				cu := cmap[u]
				if cu == c {
					continue
				}
				if stamp[cu] == c {
					ewgt[slot[cu]] += ew[i]
				} else {
					stamp[cu] = c
					slot[cu] = len(adj)
					adj = append(adj, cu)
					ewgt = append(ewgt, ew[i])
				}
			}
		}
	}
	cg.xadj[coarseN] = len(adj)
	cg.adj = adj
	cg.ewgt = ewgt
	return cg, cmap
}
