// Package partition implements the fill-in reducing ordering of
// Section 4.1: a from-scratch multilevel graph bisector in the style of
// Karypis–Kumar (coarsening by heavy-edge matching, greedy graph-growing
// initial partition, Fiduccia–Mattheyses refinement), vertex separators
// extracted from edge cuts via König's theorem, and the recursive
// nested-dissection driver that produces the supernode structure the
// elimination tree and the 2D-SPARSE-APSP data layout are built from.
package partition

import (
	"sparseapsp/internal/graph"
)

// wgraph is a CSR graph with integer vertex and edge weights, the
// internal representation of the multilevel partitioner. Vertex weights
// carry the number of original vertices collapsed into a coarse vertex;
// edge weights carry the number of original edges.
type wgraph struct {
	n    int
	xadj []int // length n+1
	adj  []int
	ewgt []int
	vwgt []int
	tot  int // total vertex weight
}

// fromGraph builds a unit-weight wgraph from g.
func fromGraph(g *graph.Graph) *wgraph {
	n := g.N()
	w := &wgraph{
		n:    n,
		xadj: make([]int, n+1),
		vwgt: make([]int, n),
		tot:  n,
	}
	deg := 0
	for v := 0; v < n; v++ {
		w.vwgt[v] = 1
		deg += g.Degree(v)
	}
	w.adj = make([]int, 0, deg)
	w.ewgt = make([]int, 0, deg)
	for v := 0; v < n; v++ {
		w.xadj[v] = len(w.adj)
		for _, e := range g.Adj(v) {
			w.adj = append(w.adj, e.To)
			w.ewgt = append(w.ewgt, 1)
		}
	}
	w.xadj[n] = len(w.adj)
	return w
}

// neighbors iterates the CSR row of v.
func (w *wgraph) neighbors(v int) ([]int, []int) {
	return w.adj[w.xadj[v]:w.xadj[v+1]], w.ewgt[w.xadj[v]:w.xadj[v+1]]
}

// cutWeight returns the total weight of edges crossing the bipartition.
func (w *wgraph) cutWeight(part []int8) int {
	cut := 0
	for v := 0; v < w.n; v++ {
		nbr, ew := w.neighbors(v)
		for i, u := range nbr {
			if u > v && part[u] != part[v] {
				cut += ew[i]
			}
		}
	}
	return cut
}

// sideWeights returns the vertex weight on each side of part.
func (w *wgraph) sideWeights(part []int8) (w0, w1 int) {
	for v := 0; v < w.n; v++ {
		if part[v] == 0 {
			w0 += w.vwgt[v]
		} else {
			w1 += w.vwgt[v]
		}
	}
	return
}
