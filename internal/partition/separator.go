package partition

import "sparseapsp/internal/graph"

// VertexSeparator converts an edge cut into a vertex separator: the cut
// edges form a bipartite graph between the two sides' boundary
// vertices, and by König's theorem a minimum vertex cover of it — which
// is exactly a minimal set of vertices whose removal disconnects the
// sides — has the size of a maximum matching. Returns sep[v] = true for
// separator vertices. After removal, no edge joins side 0 to side 1.
func VertexSeparator(g *graph.Graph, part []int8) []bool {
	n := g.N()
	// Collect boundary vertices per side and the cut edges.
	lIndex := make(map[int]int) // side-0 boundary vertex -> L index
	rIndex := make(map[int]int) // side-1 boundary vertex -> R index
	var lVerts, rVerts []int
	var cutL, cutR []int // parallel arrays of cut edges as (L index, R index)
	for v := 0; v < n; v++ {
		if part[v] != 0 {
			continue
		}
		for _, e := range g.Adj(v) {
			if part[e.To] != 1 {
				continue
			}
			li, ok := lIndex[v]
			if !ok {
				li = len(lVerts)
				lIndex[v] = li
				lVerts = append(lVerts, v)
			}
			ri, ok := rIndex[e.To]
			if !ok {
				ri = len(rVerts)
				rIndex[e.To] = ri
				rVerts = append(rVerts, e.To)
			}
			cutL = append(cutL, li)
			cutR = append(cutR, ri)
		}
	}
	sep := make([]bool, n)
	if len(cutL) == 0 {
		return sep
	}

	// Bipartite adjacency L -> R.
	ladj := make([][]int, len(lVerts))
	for i := range cutL {
		ladj[cutL[i]] = append(ladj[cutL[i]], cutR[i])
	}

	// Kuhn's augmenting-path maximum matching.
	matchL := make([]int, len(lVerts)) // L index -> R index or -1
	matchR := make([]int, len(rVerts)) // R index -> L index or -1
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	var visited []bool
	var try func(l int) bool
	try = func(l int) bool {
		for _, r := range ladj[l] {
			if visited[r] {
				continue
			}
			visited[r] = true
			if matchR[r] == -1 || try(matchR[r]) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		return false
	}
	for l := range ladj {
		visited = make([]bool, len(rVerts))
		try(l)
	}

	// König: Z = vertices reachable from unmatched L vertices along
	// alternating paths (unmatched L→R edges, matched R→L edges).
	// Minimum vertex cover = (L \ Z) ∪ (R ∩ Z).
	zL := make([]bool, len(lVerts))
	zR := make([]bool, len(rVerts))
	var stack []int
	for l := range ladj {
		if matchL[l] == -1 {
			zL[l] = true
			stack = append(stack, l)
		}
	}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range ladj[l] {
			if zR[r] || matchL[l] == r {
				continue
			}
			zR[r] = true
			if ml := matchR[r]; ml != -1 && !zL[ml] {
				zL[ml] = true
				stack = append(stack, ml)
			}
		}
	}
	for l, v := range lVerts {
		if !zL[l] {
			sep[v] = true
		}
	}
	for r, v := range rVerts {
		if zR[r] {
			sep[v] = true
		}
	}
	return sep
}
