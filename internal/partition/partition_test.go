package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparseapsp/internal/graph"
)

func TestFromGraphCSR(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights)
	w := fromGraph(g)
	if w.n != 4 || w.tot != 4 {
		t.Fatalf("n=%d tot=%d", w.n, w.tot)
	}
	nbr, ew := w.neighbors(1)
	if len(nbr) != 2 || ew[0] != 1 {
		t.Errorf("neighbors(1) = %v %v", nbr, ew)
	}
}

func TestCoarsenHalvesGraph(t *testing.T) {
	g := graph.Grid2D(10, 10, graph.UnitWeights)
	w := fromGraph(g)
	rng := rand.New(rand.NewSource(1))
	cg, cmap := coarsen(w, rng)
	if cg == nil {
		t.Fatal("coarsening stalled on a grid")
	}
	if cg.n >= w.n {
		t.Errorf("coarse n = %d, want < %d", cg.n, w.n)
	}
	// Total vertex weight is conserved.
	sum := 0
	for _, vw := range cg.vwgt {
		sum += vw
	}
	if sum != 100 {
		t.Errorf("coarse total vertex weight = %d, want 100", sum)
	}
	for v, c := range cmap {
		if c < 0 || c >= cg.n {
			t.Fatalf("cmap[%d] = %d out of range", v, c)
		}
	}
	// Edge weight is conserved: sum over coarse edges of weight plus
	// weights swallowed inside merged pairs equals fine edge weight.
	fineEdges := 0
	for _, ew := range w.ewgt {
		fineEdges += ew
	}
	coarseEdges := 0
	for _, ew := range cg.ewgt {
		coarseEdges += ew
	}
	if coarseEdges > fineEdges {
		t.Errorf("coarse edge weight %d exceeds fine %d", coarseEdges, fineEdges)
	}
}

func TestBisectBalancedOnGrid(t *testing.T) {
	g := graph.Grid2D(16, 16, graph.UnitWeights)
	w := fromGraph(g)
	part := bisect(w, defaultBisectOptions(), rand.New(rand.NewSource(2)))
	w0, w1 := w.sideWeights(part)
	if w0+w1 != 256 {
		t.Fatalf("side weights %d+%d != 256", w0, w1)
	}
	lo, hi := w0, w1
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo < 256*35/100 {
		t.Errorf("imbalanced: %d vs %d", w0, w1)
	}
	cut := w.cutWeight(part)
	// A 16x16 grid has a width-16 line cut; the partitioner should get
	// within a small factor of it.
	if cut > 48 {
		t.Errorf("cut = %d, want near 16", cut)
	}
}

func TestBisectTinyGraphs(t *testing.T) {
	for n := 0; n <= 3; n++ {
		g := graph.Path(n, graph.UnitWeights)
		w := fromGraph(g)
		part := bisect(w, defaultBisectOptions(), rand.New(rand.NewSource(3)))
		if len(part) != n {
			t.Errorf("n=%d: part length %d", n, len(part))
		}
	}
}

func TestVertexSeparatorSeparates(t *testing.T) {
	g := graph.Grid2D(8, 8, graph.UnitWeights)
	w := fromGraph(g)
	part := bisect(w, defaultBisectOptions(), rand.New(rand.NewSource(4)))
	sep := VertexSeparator(g, part)
	// After removing separator vertices, no side-0 vertex may touch a
	// side-1 vertex.
	for _, e := range g.Edges() {
		if sep[e.U] || sep[e.V] {
			continue
		}
		if part[e.U] != part[e.V] {
			t.Fatalf("edge {%d,%d} still crosses after separator removal", e.U, e.V)
		}
	}
	// König: separator size equals maximum matching size ≤ cut size,
	// and for an 8-wide grid line cut it should be about 8.
	size := 0
	for _, s := range sep {
		if s {
			size++
		}
	}
	if size == 0 || size > 16 {
		t.Errorf("separator size = %d, want within (0,16]", size)
	}
}

func TestVertexSeparatorEmptyCut(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	part := []int8{0, 0, 1, 1}
	sep := VertexSeparator(g, part)
	for v, s := range sep {
		if s {
			t.Errorf("vertex %d in separator of empty cut", v)
		}
	}
}

func TestVertexSeparatorStar(t *testing.T) {
	// A star cut anywhere is covered by the single center vertex.
	g := graph.Star(9, graph.UnitWeights)
	part := make([]int8, 9)
	for v := 5; v < 9; v++ {
		part[v] = 1
	}
	// center (0) on side 0, leaves split
	sep := VertexSeparator(g, part)
	size := 0
	for _, s := range sep {
		if s {
			size++
		}
	}
	if size != 1 || !sep[0] {
		t.Errorf("star separator = %v, want just the center", sep)
	}
}

func checkResultInvariants(t *testing.T, g *graph.Graph, r *Result) {
	t.Helper()
	if r.N != (1<<r.H)-1 {
		t.Fatalf("N = %d, want %d", r.N, (1<<r.H)-1)
	}
	// Every vertex appears in exactly one supernode.
	seen := make([]int, g.N())
	total := 0
	for lbl := 1; lbl <= r.N; lbl++ {
		total += len(r.Super[lbl])
		for _, v := range r.Super[lbl] {
			seen[v]++
		}
	}
	if total != g.N() {
		t.Fatalf("supernodes cover %d of %d vertices", total, g.N())
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("vertex %d appears %d times", v, c)
		}
	}
	// Perm is a permutation and inverse matches.
	for v := 0; v < g.N(); v++ {
		if r.InvPerm[r.Perm[v]] != v {
			t.Fatalf("perm/invperm mismatch at %d", v)
		}
	}
	// Starts are consistent with sizes.
	next := 0
	for lbl := 1; lbl <= r.N; lbl++ {
		if r.Starts[lbl] != next {
			t.Fatalf("supernode %d starts at %d, want %d", lbl, r.Starts[lbl], next)
		}
		next += r.Sizes[lbl]
	}
	// The key invariant: cousins are separated.
	if err := CheckSeparation(g, r); err != nil {
		t.Fatal(err)
	}
}

func TestNestedDissectionGrid(t *testing.T) {
	g := graph.Grid2D(12, 12, graph.UnitWeights)
	for h := 1; h <= 4; h++ {
		r, err := NestedDissection(g, h, 42)
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		checkResultInvariants(t, g, r)
		if h >= 2 {
			if s := r.SeparatorSize(); s == 0 || s > 24 {
				t.Errorf("h=%d: top separator size %d, want within (0,24] for a 12-grid", h, s)
			}
		}
	}
}

func TestNestedDissectionFigure1(t *testing.T) {
	g := graph.Figure1Graph()
	r, err := NestedDissection(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkResultInvariants(t, g, r)
	// The paper's example has a singleton separator (it shows {6}; {2}
	// and {5} are equally minimal — any cut vertex of size 1 with
	// balanced sides reproduces Figure 1's structure).
	if r.Sizes[3] != 1 {
		t.Errorf("separator size = %d, want 1", r.Sizes[3])
	}
	if r.Sizes[1] < 2 || r.Sizes[2] < 2 {
		t.Errorf("side sizes = %d, %d, want both ≥ 2", r.Sizes[1], r.Sizes[2])
	}
	// The reordered matrix must have empty off-diagonal V1/V2 blocks,
	// which CheckSeparation (run above) certifies: no V1–V2 edge.
}

func TestNestedDissectionVariousGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cases := map[string]*graph.Graph{
		"path":     graph.Path(40, graph.UnitWeights),
		"cycle":    graph.Cycle(33, graph.UnitWeights),
		"tree":     graph.RandomTree(50, graph.UnitWeights, rng),
		"gnp":      graph.RandomGNP(60, 0.1, graph.UnitWeights, rng),
		"complete": graph.Complete(20, graph.UnitWeights),
		"star":     graph.Star(30, graph.UnitWeights),
		"disconn": func() *graph.Graph {
			g := graph.New(20)
			for v := 0; v+1 < 10; v++ {
				g.AddEdge(v, v+1, 1)
			}
			for v := 10; v+1 < 20; v++ {
				g.AddEdge(v, v+1, 1)
			}
			return g
		}(),
		"empty":  graph.New(10),
		"single": graph.New(1),
	}
	for name, g := range cases {
		for _, h := range []int{1, 2, 3} {
			r, err := NestedDissection(g, h, 5)
			if err != nil {
				t.Errorf("%s h=%d: %v", name, h, err)
				continue
			}
			checkResultInvariants(t, g, r)
		}
	}
}

func TestNestedDissectionRejectsBadHeight(t *testing.T) {
	if _, err := NestedDissection(graph.New(3), 0, 1); err == nil {
		t.Error("expected error for h=0")
	}
}

func TestLevelOffsetsAndLabels(t *testing.T) {
	r := &Result{H: 4}
	// Figure 3a: level 1 holds 1..8, level 2 holds 9..12, level 3 holds
	// 13..14, level 4 holds 15.
	wantOff := map[int]int{1: 0, 2: 8, 3: 12, 4: 14}
	for l, off := range wantOff {
		if got := r.LevelOffset(l); got != off {
			t.Errorf("LevelOffset(%d) = %d, want %d", l, got, off)
		}
	}
	if r.Label(2, 3) != 11 {
		t.Errorf("Label(2,3) = %d, want 11", r.Label(2, 3))
	}
}

func TestSupernodeOf(t *testing.T) {
	g := graph.Grid2D(8, 8, graph.UnitWeights)
	r, err := NestedDissection(g, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for lbl := 1; lbl <= r.N; lbl++ {
		for k := 0; k < r.Sizes[lbl]; k++ {
			idx := r.Starts[lbl] + k
			if got := r.SupernodeOf(idx); got != lbl {
				t.Errorf("SupernodeOf(%d) = %d, want %d", idx, got, lbl)
			}
		}
	}
}

func TestGridSeparatorScaling(t *testing.T) {
	// |S| for a k×k grid should scale like k, not k². This is the
	// workload property the whole paper leans on.
	s8 := sepSize(t, 8)
	s16 := sepSize(t, 16)
	s32 := sepSize(t, 32)
	if s16 > 3*s8+4 || s32 > 3*s16+4 {
		t.Errorf("separator growth too fast: s8=%d s16=%d s32=%d", s8, s16, s32)
	}
	if s32 >= 32*4 {
		t.Errorf("s32 = %d, want O(32)", s32)
	}
}

func sepSize(t *testing.T, k int) int {
	t.Helper()
	g := graph.Grid2D(k, k, graph.UnitWeights)
	r, err := NestedDissection(g, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	return r.SeparatorSize()
}

// Property: for random graphs, nested dissection always yields a valid
// cover of the vertices with separated cousins.
func TestQuickNestedDissectionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		g := graph.RandomGNP(n, 3.0/float64(n), graph.UnitWeights, rng)
		h := 1 + rng.Intn(3)
		r, err := NestedDissection(g, h, seed)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for lbl := 1; lbl <= r.N; lbl++ {
			for _, v := range r.Super[lbl] {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return CheckSeparation(g, r) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFMImprovesBadPartition(t *testing.T) {
	// Start a 1D path with an alternating partition (terrible cut) and
	// verify FM improves it drastically.
	g := graph.Path(40, graph.UnitWeights)
	w := fromGraph(g)
	part := make([]int8, 40)
	for v := range part {
		part[v] = int8(v % 2)
	}
	before := w.cutWeight(part)
	fmRefine(w, part, defaultBisectOptions())
	after := w.cutWeight(part)
	if after >= before {
		t.Errorf("FM did not improve cut: %d -> %d", before, after)
	}
	if after > 6 {
		t.Errorf("FM cut = %d, want small on a path", after)
	}
	// Balance must be maintained.
	w0, w1 := w.sideWeights(part)
	if w0 < 12 || w1 < 12 {
		t.Errorf("FM destroyed balance: %d vs %d", w0, w1)
	}
}

func TestComputeStats(t *testing.T) {
	g := graph.Grid2D(10, 10, graph.UnitWeights)
	r, err := NestedDissection(g, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g, r)
	if s.H != 3 || s.N != 7 {
		t.Errorf("h=%d N=%d", s.H, s.N)
	}
	if s.TopSeparator != r.SeparatorSize() {
		t.Error("top separator mismatch")
	}
	if s.MinLeaf < 0 || s.MaxLeaf < s.MinLeaf {
		t.Errorf("leaf sizes min=%d max=%d", s.MinLeaf, s.MaxLeaf)
	}
	total := s.SumSeparators
	for i := 1; i <= 4; i++ {
		total += r.Sizes[i]
	}
	if total != 100 {
		t.Errorf("stats vertices = %d, want 100", total)
	}
	if s.LeafImbalance < 1 {
		t.Errorf("imbalance = %v, want ≥ 1", s.LeafImbalance)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestComputeStatsEmptyGraph(t *testing.T) {
	g := graph.New(0)
	r, err := NestedDissection(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g, r)
	if s.EmptySupernodes != 3 {
		t.Errorf("empty supernodes = %d, want 3", s.EmptySupernodes)
	}
}

func BenchmarkNestedDissectionSequential(b *testing.B) {
	g := graph.Grid2D(32, 32, graph.UnitWeights)
	for i := 0; i < b.N; i++ {
		if _, err := NestedDissection(g, 4, 11); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBisect(b *testing.B) {
	g := graph.Grid2D(48, 48, graph.UnitWeights)
	w := fromGraph(g)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < b.N; i++ {
		bisect(w, defaultBisectOptions(), rng)
	}
}

func BenchmarkVertexSeparator(b *testing.B) {
	g := graph.Grid2D(32, 32, graph.UnitWeights)
	w := fromGraph(g)
	part := bisect(w, defaultBisectOptions(), rand.New(rand.NewSource(8)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VertexSeparator(g, part)
	}
}
