package partition

import (
	"fmt"
	"strings"

	"sparseapsp/internal/graph"
)

// Stats summarizes the quality of a nested-dissection ordering — the
// quantities that determine the constants in the paper's bounds.
type Stats struct {
	H               int
	N               int     // supernode count
	TopSeparator    int     // |S| of the root
	MaxSeparator    int     // largest separator anywhere in the tree
	SumSeparators   int     // total vertices in non-leaf supernodes
	MaxLeaf         int     // largest leaf supernode
	MinLeaf         int     // smallest leaf supernode
	LeafImbalance   float64 // max leaf / ideal leaf size
	EmptySupernodes int
	FillEdges       int // edges the elimination will create between related supernodes
}

// ComputeStats inspects an ordering of g.
func ComputeStats(g *graph.Graph, r *Result) Stats {
	s := Stats{H: r.H, N: r.N, TopSeparator: r.SeparatorSize(), MaxSeparator: r.MaxSeparatorSize()}
	leaves := r.H - 1
	_ = leaves
	s.MinLeaf = -1
	leafCount := 1 << (r.H - 1)
	for i := 1; i <= leafCount; i++ {
		sz := r.Sizes[i]
		if sz > s.MaxLeaf {
			s.MaxLeaf = sz
		}
		if s.MinLeaf == -1 || sz < s.MinLeaf {
			s.MinLeaf = sz
		}
	}
	for t := leafCount + 1; t <= r.N; t++ {
		s.SumSeparators += r.Sizes[t]
	}
	for t := 1; t <= r.N; t++ {
		if r.Sizes[t] == 0 {
			s.EmptySupernodes++
		}
	}
	ideal := float64(g.N()-s.SumSeparators) / float64(leafCount)
	if ideal > 0 {
		s.LeafImbalance = float64(s.MaxLeaf) / ideal
	}
	// Fill: a block (i, j) of related supernodes that holds no edge now
	// will still be computed on; count the graph edges in related
	// off-diagonal blocks as the "structural" edges and report the
	// complement as fill potential, per pair of related supernodes.
	owner := make([]int, g.N())
	for t := 1; t <= r.N; t++ {
		for _, v := range r.Super[t] {
			owner[v] = t
		}
	}
	type pair struct{ a, b int }
	hasEdge := map[pair]bool{}
	for _, e := range g.Edges() {
		tu, tv := owner[e.U], owner[e.V]
		if tu != tv {
			if tu > tv {
				tu, tv = tv, tu
			}
			hasEdge[pair{tu, tv}] = true
		}
	}
	tr := treeOf(r)
	for i := 1; i <= r.N; i++ {
		for j := i + 1; j <= r.N; j++ {
			if r.Sizes[i] == 0 || r.Sizes[j] == 0 {
				continue
			}
			if tr.related(i, j) && !hasEdge[pair{i, j}] {
				s.FillEdges += r.Sizes[i] * r.Sizes[j]
			}
		}
	}
	return s
}

// treeOf provides ancestor arithmetic over a Result's label scheme
// without importing the etree package (which would be a cycle of
// responsibility, not of imports — partition stays ordering-only).
type miniTree struct{ r *Result }

func treeOf(r *Result) miniTree { return miniTree{r: r} }

func (t miniTree) levelOf(k int) (int, int) {
	for l := 1; l <= t.r.H; l++ {
		off := t.r.LevelOffset(l)
		if k > off && k <= off+(1<<(t.r.H-l)) {
			return l, k - off
		}
	}
	panic("partition: bad label")
}

func (t miniTree) related(a, b int) bool {
	la, ia := t.levelOf(a)
	lb, ib := t.levelOf(b)
	if la > lb {
		la, ia, lb, ib = lb, ib, la, ia
	}
	for l := la; l < lb; l++ {
		ia = (ia + 1) / 2
	}
	return ia == ib
}

func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "h=%d supernodes=%d |S|=%d maxSep=%d sepTotal=%d ",
		s.H, s.N, s.TopSeparator, s.MaxSeparator, s.SumSeparators)
	fmt.Fprintf(&sb, "leaves[min=%d max=%d imbalance=%.2f] empty=%d fillCells=%d",
		s.MinLeaf, s.MaxLeaf, s.LeafImbalance, s.EmptySupernodes, s.FillEdges)
	return sb.String()
}
