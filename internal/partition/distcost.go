package partition

import (
	"fmt"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
)

// DistributedNDCost replays the communication pattern of the parallel
// multilevel partitioner of Karypis and Kumar (the algorithm the paper
// cites for its separator costs, Section 5.4.4) on the simulated
// machine, to measure the preprocessing cost of 2D-SPARSE-APSP.
//
// This is a cost *replay*, not a distributed reimplementation of the
// partitioner: the dissection itself runs sequentially (NestedDissection),
// while the machine executes the cited communication schedule — for a
// separator of an m-vertex subgraph on q processors, O(log q) rounds of
// pairwise exchanges of O(m/√q) words (coarsening, partitioning and
// uncoarsening each move the distributed boundary once per level),
// giving the O(m·log q/√q) bandwidth and O(log q) latency of [18].
// Subgraph groups then split in half and recurse in parallel, which
// yields the total O(n·log²p/√p) bandwidth and O(log²p) latency the
// paper states — the quantities this replay lets the experiments
// verify as "subsumed by the APSP cost".
func DistributedNDCost(g *graph.Graph, p int, seed int64) (comm.Report, error) {
	if p < 1 {
		return comm.Report{}, fmt.Errorf("partition: p=%d < 1", p)
	}
	machine := comm.NewMachine(p)
	n := g.N()
	err := machine.Run(func(ctx *comm.Ctx) {
		replaySeparator(ctx, allRanks(p), n, 0)
	})
	if err != nil {
		return comm.Report{}, err
	}
	return machine.Report(), nil
}

func allRanks(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}

// replaySeparator models one separator computation on the group, then
// recurses on the two halves with half the vertices each. depth feeds
// the tag space.
func replaySeparator(ctx *comm.Ctx, group []int, m int, depth int) {
	q := len(group)
	if q <= 1 || m <= 1 {
		return
	}
	pos := -1
	for i, r := range group {
		if r == ctx.Rank() {
			pos = i
		}
	}
	if pos == -1 {
		return
	}
	// O(log q) rounds of pairwise exchange of O(m/√q) words.
	words := m / isqrt(q)
	if words < 1 {
		words = 1
	}
	for round := 0; 1<<round < q; round++ {
		partner := pos ^ (1 << round)
		if partner >= q {
			continue
		}
		tag := depth*64 + round
		if pos < partner {
			ctx.Send(group[partner], tag, make([]float64, words))
			ctx.Recv(group[partner], tag)
		} else {
			ctx.Recv(group[pos^(1<<round)], tag)
			ctx.Send(group[partner], tag, make([]float64, words))
		}
	}
	// Split and recurse in parallel on the halves.
	half := q / 2
	if half == 0 {
		return
	}
	if pos < half {
		replaySeparator(ctx, group[:half], m/2, depth+1)
	} else {
		replaySeparator(ctx, group[half:], m/2, depth+1)
	}
}

func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}
