package partition

// fmRefine improves the bipartition part in place with a simplified
// Fiduccia–Mattheyses scheme: each pass repeatedly moves the unlocked
// boundary vertex with the best gain whose move keeps the partition
// within the balance tolerance, locks it, and finally rolls back to the
// best prefix of moves seen during the pass. Only boundary vertices
// (those with a neighbour across the cut) are candidates, so a pass
// costs O(|boundary|² + moved·degree) — cheap on the small-separator
// graphs this repository targets — and the number of moves per pass is
// capped to keep worst-case graphs in check.
func fmRefine(w *wgraph, part []int8, opts bisectOptions) {
	if w.n < 2 {
		return
	}
	maxSide := int(float64(w.tot) * (0.5 + opts.imbalance))
	if maxSide >= w.tot {
		maxSide = w.tot - 1
	}

	gain := make([]int, w.n)
	locked := make([]bool, w.n)
	inCand := make([]bool, w.n)

	computeGain := func(v int) int {
		g := 0
		nbr, ew := w.neighbors(v)
		for i, u := range nbr {
			if part[u] == part[v] {
				g -= ew[i]
			} else {
				g += ew[i]
			}
		}
		return g
	}
	isBoundary := func(v int) bool {
		nbr, _ := w.neighbors(v)
		for _, u := range nbr {
			if part[u] != part[v] {
				return true
			}
		}
		return false
	}

	for pass := 0; pass < opts.fmPasses; pass++ {
		var cand []int
		for v := 0; v < w.n; v++ {
			locked[v] = false
			inCand[v] = false
		}
		for v := 0; v < w.n; v++ {
			if isBoundary(v) {
				gain[v] = computeGain(v)
				cand = append(cand, v)
				inCand[v] = true
			}
		}
		w0, w1 := w.sideWeights(part)
		var moved []int
		cumGain, bestGain, bestIdx := 0, 0, -1
		maxMoves := 4*len(cand) + 64
		if maxMoves > w.n {
			maxMoves = w.n
		}

		for step := 0; step < maxMoves; step++ {
			bestV, bestG := -1, 0
			for _, v := range cand {
				if locked[v] {
					continue
				}
				var dstW int
				if part[v] == 0 {
					dstW = w1 + w.vwgt[v]
				} else {
					dstW = w0 + w.vwgt[v]
				}
				if dstW > maxSide {
					continue
				}
				if bestV == -1 || gain[v] > bestG {
					bestV, bestG = v, gain[v]
				}
			}
			if bestV == -1 {
				break
			}
			v := bestV
			if part[v] == 0 {
				part[v] = 1
				w0 -= w.vwgt[v]
				w1 += w.vwgt[v]
			} else {
				part[v] = 0
				w1 -= w.vwgt[v]
				w0 += w.vwgt[v]
			}
			locked[v] = true
			cumGain += bestG
			moved = append(moved, v)
			if cumGain > bestGain {
				bestGain = cumGain
				bestIdx = len(moved) - 1
			}
			// Moving v flips the contribution of each incident edge in
			// its neighbours' gains, and may promote new boundary
			// vertices into the candidate set.
			nbr, ew := w.neighbors(v)
			for i, u := range nbr {
				if locked[u] {
					continue
				}
				if !inCand[u] {
					gain[u] = computeGain(u)
					cand = append(cand, u)
					inCand[u] = true
					continue
				}
				if part[u] == part[v] {
					gain[u] -= 2 * ew[i]
				} else {
					gain[u] += 2 * ew[i]
				}
			}
		}

		// Roll back moves after the best prefix.
		for i := len(moved) - 1; i > bestIdx; i-- {
			part[moved[i]] ^= 1
		}
		if bestGain <= 0 {
			break
		}
	}
}
