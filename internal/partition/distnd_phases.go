package partition

import (
	"math/rand"
	"sort"

	"sparseapsp/internal/graph"
)

// Coarsening / bisection / separator phases of DistributedND. All
// collectives run over the node's group; every member executes the
// same sequence, so tags derived from (depth, idx, phase, round) match
// up. Group size 1 degenerates gracefully (collectives over singleton
// groups move no messages).

const dndMaxCoarsenRounds = 40

// bisectNode partitions the node's distributed subgraph, returning the
// side of every owned vertex, the (globally known) separator set, and
// the published parts of remote boundary vertices (needed later to
// filter adjacency during redistribution).
func (w *dndWorker) bisectNode(group []int, chunk *dndChunk, depth, idx int) (map[int]int8, map[int]bool, map[int]int) {
	leader := group[0]

	// --- Coarsening rounds with local matching. ---
	type levelMap struct{ cmap map[int]int }
	var chain []levelMap
	cur := chunk
	globalN := w.allSum(group, len(cur.verts), w.tag(depth, idx, 1, 0))
	threshold := 32
	if 2*len(group) > threshold {
		threshold = 2 * len(group)
	}
	for round := 1; round <= dndMaxCoarsenRounds && globalN > threshold; round++ {
		coarse, cmap, localCount := w.coarsenLocal(cur)
		// Prefix-sum the coarse counts to assign global coarse ids.
		counts := w.allGatherInts(group, []int{localCount}, w.tag(depth, idx, 2, round))
		base := 0
		myPos := groupIndex(group, w.ctx.Rank())
		total := 0
		for pos, c := range counts {
			if pos < myPos {
				base += c[0]
			}
			total += c[0]
		}
		// Shift local coarse ids by base.
		shifted := newChunk()
		idShift := func(id int) int { return id + base }
		for fine, c := range cmap {
			cmap[fine] = idShift(c)
		}
		for _, v := range coarse.verts {
			shifted.verts = append(shifted.verts, idShift(v))
			shifted.weight[idShift(v)] = coarse.weight[v]
		}
		// Publish boundary cmap entries and translate edges.
		remoteCmap := w.exchangeBoundary(group, cur, cmap, w.tag(depth, idx, 3, round))
		for _, v := range cur.verts {
			cv := cmap[v]
			for _, e := range cur.adj[v] {
				var cu int
				if c, ok := cmap[e.To]; ok {
					cu = c
				} else if c, ok := remoteCmap[e.To]; ok {
					cu = c
				} else {
					continue // neighbour outside the node's subgraph
				}
				if cu == cv {
					continue
				}
				addEdgeWeight(shifted, cv, cu, e.W)
			}
		}
		chain = append(chain, levelMap{cmap: cmap})
		prev := globalN
		globalN = total
		cur = shifted
		if globalN > prev*9/10 {
			break // coarsening stalled
		}
	}

	// --- Gather coarsest graph to the leader and bisect. ---
	payload := serializeChunk(cur)
	parts := w.ctx.Gather(group, leader, w.tag(depth, idx, 4, 0), payload)
	var pairs []float64 // broadcast as (coarse id, side) pairs
	if w.ctx.Rank() == leader {
		wg, ids := deserializeToWgraph(parts)
		rng := rand.New(rand.NewSource(w.seed + int64(depth*1009+idx)))
		p8 := bisect(wg, defaultBisectOptions(), rng)
		pairs = make([]float64, 0, 2*len(ids))
		for local, id := range ids {
			pairs = append(pairs, float64(id), float64(p8[local]))
		}
	}
	pairs = w.ctx.Bcast(group, leader, w.tag(depth, idx, 5, 0), pairs)
	coarsePart := make(map[int]int8, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		coarsePart[int(pairs[i])] = int8(pairs[i+1])
	}

	// --- Project the partition down the local matching chains. ---
	part := make(map[int]int8, len(chunk.verts))
	for _, v := range chunk.verts {
		id := v
		for _, lv := range chain {
			id = lv.cmap[id]
		}
		part[v] = coarsePart[id]
	}

	// --- Distributed boundary refinement (simplified parallel FM):
	// a few rounds of one-directional greedy moves of positive-gain
	// boundary vertices from the heavier side, with a per-rank move
	// budget that preserves balance. ---
	w.refineDistributed(group, chunk, part, depth, idx)

	// --- Extract the minimum vertex separator at the leader. ---
	remotePart := w.exchangeBoundary(group, chunk, toIntMap(part), w.tag(depth, idx, 6, 0))
	var cut []float64 // tuples (v, partV, u, partU), v owned and v < u
	for _, v := range chunk.verts {
		pv := part[v]
		for _, e := range chunk.adj[v] {
			if e.To < v {
				continue
			}
			var pu int8
			if p, ok := part[e.To]; ok {
				pu = p
			} else if p, ok := remotePart[e.To]; ok {
				pu = int8(p)
			} else {
				continue
			}
			if pu != pv {
				cut = append(cut, float64(v), float64(pv), float64(e.To), float64(pu))
			}
		}
	}
	cutParts := w.ctx.Gather(group, leader, w.tag(depth, idx, 7, 0), cut)
	var sepList []float64
	if w.ctx.Rank() == leader {
		sepList = leaderSeparator(cutParts)
	}
	sepList = w.ctx.Bcast(group, leader, w.tag(depth, idx, 8, 0), sepList)
	sep := make(map[int]bool, len(sepList))
	for _, f := range sepList {
		sep[int(f)] = true
	}
	return part, sep, remotePart
}

// coarsenLocal matches heavy edges among owned vertices and returns
// the (locally numbered) coarse chunk, the fine→local-coarse map and
// the coarse count.
func (w *dndWorker) coarsenLocal(c *dndChunk) (*dndChunk, map[int]int, int) {
	sort.Ints(c.verts)
	cmap := make(map[int]int, len(c.verts))
	matched := make(map[int]bool, len(c.verts))
	next := 0
	for _, v := range c.verts {
		if matched[v] {
			continue
		}
		bestU, bestW := -1, -1.0
		for _, e := range c.adj[v] {
			if _, owned := c.weight[e.To]; owned && !matched[e.To] && e.To != v && e.W > bestW {
				bestU, bestW = e.To, e.W
			}
		}
		matched[v] = true
		cmap[v] = next
		if bestU != -1 {
			matched[bestU] = true
			cmap[bestU] = next
		}
		next++
	}
	coarse := newChunk()
	for i := 0; i < next; i++ {
		coarse.verts = append(coarse.verts, i)
	}
	for fine, cid := range cmap {
		coarse.weight[cid] += c.weight[fine]
	}
	return coarse, cmap, next
}

// addEdgeWeight accumulates weight on the (possibly new) coarse edge.
func addEdgeWeight(c *dndChunk, v, u int, wgt float64) {
	edges := c.adj[v]
	for i := range edges {
		if edges[i].To == u {
			edges[i].W += wgt
			return
		}
	}
	c.adj[v] = append(edges, graph.Edge{To: u, W: wgt})
}

// exchangeBoundary publishes (vertex, value) pairs for owned vertices
// that have at least one neighbour outside the chunk and returns the
// values received for remote vertices.
func (w *dndWorker) exchangeBoundary(group []int, c *dndChunk, values map[int]int, tag int) map[int]int {
	var out []float64
	for _, v := range c.verts {
		boundary := false
		for _, e := range c.adj[v] {
			if _, owned := c.weight[e.To]; !owned {
				boundary = true
				break
			}
		}
		if boundary {
			out = append(out, float64(v), float64(values[v]))
		}
	}
	parts := w.ctx.Allgather(group, tag, out)
	remote := map[int]int{}
	for pos, part := range parts {
		if group[pos] == w.ctx.Rank() {
			continue
		}
		for i := 0; i+1 < len(part); i += 2 {
			remote[int(part[i])] = int(part[i+1])
		}
	}
	return remote
}

// allSum all-reduces a single integer over the group.
func (w *dndWorker) allSum(group []int, v, tag int) int {
	res := w.ctx.Allreduce(group, tag, []float64{float64(v)}, func(acc, in []float64) {
		acc[0] += in[0]
	})
	return int(res[0])
}

// allGatherInts gathers small integer vectors from every member.
func (w *dndWorker) allGatherInts(group []int, v []int, tag int) [][]int {
	data := make([]float64, len(v))
	for i, x := range v {
		data[i] = float64(x)
	}
	parts := w.ctx.Allgather(group, tag, data)
	out := make([][]int, len(parts))
	for p, part := range parts {
		out[p] = make([]int, len(part))
		for i, f := range part {
			out[p][i] = int(f)
		}
	}
	return out
}

// serializeChunk flattens a chunk as
// [v, weight, deg, (to, w)*deg, ...] for gathering.
func serializeChunk(c *dndChunk) []float64 {
	var out []float64
	for _, v := range c.verts {
		out = append(out, float64(v), float64(c.weight[v]), float64(len(c.adj[v])))
		for _, e := range c.adj[v] {
			out = append(out, float64(e.To), e.W)
		}
	}
	return out
}

// deserializeToWgraph rebuilds the gathered coarse graph as a wgraph
// for the sequential bisector; ids maps local wgraph index → global
// coarse id.
func deserializeToWgraph(parts [][]float64) (*wgraph, []int) {
	type vrec struct {
		id, weight int
		edges      []graph.Edge
	}
	var recs []vrec
	for _, part := range parts {
		for i := 0; i < len(part); {
			v := int(part[i])
			wgt := int(part[i+1])
			deg := int(part[i+2])
			i += 3
			edges := make([]graph.Edge, 0, deg)
			for d := 0; d < deg; d++ {
				edges = append(edges, graph.Edge{To: int(part[i]), W: part[i+1]})
				i += 2
			}
			recs = append(recs, vrec{id: v, weight: wgt, edges: edges})
		}
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].id < recs[b].id })
	wg := &wgraph{n: len(recs), xadj: make([]int, len(recs)+1), vwgt: make([]int, len(recs))}
	ids := make([]int, len(recs))
	local := map[int]int{}
	for i, r := range recs {
		ids[i] = r.id
		local[r.id] = i
		wg.vwgt[i] = r.weight
		wg.tot += r.weight
	}
	for i, r := range recs {
		wg.xadj[i] = len(wg.adj)
		for _, e := range r.edges {
			if li, ok := local[e.To]; ok {
				wg.adj = append(wg.adj, li)
				wg.ewgt = append(wg.ewgt, int(e.W))
			}
		}
		_ = i
	}
	wg.xadj[len(recs)] = len(wg.adj)
	return wg, ids
}

// leaderSeparator runs König's minimum vertex cover on the gathered
// cut edges and returns the separator's global vertex ids.
func leaderSeparator(cutParts [][]float64) []float64 {
	local := map[int]int{}
	var ids []int
	var partArr []int8
	intern := func(v int, p int8) int {
		if li, ok := local[v]; ok {
			return li
		}
		li := len(ids)
		local[v] = li
		ids = append(ids, v)
		partArr = append(partArr, p)
		return li
	}
	type edge struct{ a, b int }
	var edges []edge
	for _, part := range cutParts {
		for i := 0; i+3 < len(part); i += 4 {
			v, pv := int(part[i]), int8(part[i+1])
			u, pu := int(part[i+2]), int8(part[i+3])
			edges = append(edges, edge{a: intern(v, pv), b: intern(u, pu)})
		}
	}
	if len(edges) == 0 {
		return nil
	}
	mini := graph.New(len(ids))
	for _, e := range edges {
		mini.AddEdge(e.a, e.b, 1)
	}
	sep := VertexSeparator(mini, partArr)
	var out []float64
	for li, s := range sep {
		if s {
			out = append(out, float64(ids[li]))
		}
	}
	return out
}

// toIntMap widens an int8-valued map for the generic boundary exchange.
func toIntMap(m map[int]int8) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = int(v)
	}
	return out
}

// refineDistributed improves the projected partition with a few rounds
// of greedy one-directional moves: each round, positive-gain boundary
// vertices on the heavier side flip, bounded by a per-rank weight
// budget so balance is preserved without global coordination beyond
// one all-reduce per round. Gains use the previous round's published
// neighbour sides, so the scheme is a conservative, deterministic
// approximation of parallel FM.
func (w *dndWorker) refineDistributed(group []int, chunk *dndChunk, part map[int]int8, depth, idx int) {
	const rounds = 3
	for r := 0; r < rounds; r++ {
		remote := w.exchangeBoundary(group, chunk, toIntMap(part), w.tag(depth, idx, 9, 2*r))
		// Global side weights.
		var w0, w1 int
		for _, v := range chunk.verts {
			if part[v] == 0 {
				w0 += chunk.weight[v]
			} else {
				w1 += chunk.weight[v]
			}
		}
		tot := w.ctx.Allreduce(group, w.tag(depth, idx, 9, 2*r+1),
			[]float64{float64(w0), float64(w1)}, func(acc, in []float64) {
				acc[0] += in[0]
				acc[1] += in[1]
			})
		heavy := int8(0)
		gap := int(tot[0] - tot[1])
		if gap < 0 {
			heavy = 1
			gap = -gap
		}
		if gap <= 1 {
			continue
		}
		budget := gap / (2 * len(group))
		if budget < 1 {
			budget = 1
		}
		sideOf := func(u int) (int8, bool) {
			if p, ok := part[u]; ok {
				return p, true
			}
			if p, ok := remote[u]; ok {
				return int8(p), true
			}
			return 0, false
		}
		moved := 0
		for _, v := range chunk.verts {
			if moved >= budget || part[v] != heavy {
				continue
			}
			gain := 0.0
			for _, e := range chunk.adj[v] {
				pu, ok := sideOf(e.To)
				if !ok {
					continue
				}
				if pu == part[v] {
					gain -= e.W
				} else {
					gain += e.W
				}
			}
			if gain > 0 {
				part[v] = 1 - heavy
				moved += chunk.weight[v]
			}
		}
	}
}
