package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"sparseapsp/internal/graph"
)

// Result is a nested-dissection ordering: a complete binary supernode
// tree of height H with N = 2^H − 1 supernodes, labelled level by level
// from the bottom as in Section 5.2 (leaves are 1..2^{H−1}, the root
// separator is N), and the vertex permutation that makes each
// supernode's vertices consecutive in label order.
type Result struct {
	H       int     // tree height (number of levels)
	N       int     // number of supernodes, 2^H − 1
	Super   [][]int // 1-based: Super[t] lists the original vertices of supernode t
	Sizes   []int   // 1-based: Sizes[t] = len(Super[t])
	Starts  []int   // 1-based: first new index of supernode t
	Perm    []int   // old vertex id -> new vertex id
	InvPerm []int   // new vertex id -> old vertex id
}

// LevelOffset returns the number of supernodes below level l, so level
// l holds labels LevelOffset(l)+1 .. LevelOffset(l)+2^{H−l}.
func (r *Result) LevelOffset(l int) int {
	return (1 << r.H) - (1 << (r.H - l + 1))
}

// Label returns the supernode label of the i-th node (1-based) of level l.
func (r *Result) Label(l, i int) int { return r.LevelOffset(l) + i }

// SeparatorSize returns |S|, the size of the top-level separator (the
// root supernode) — the quantity the paper's bounds are stated in.
func (r *Result) SeparatorSize() int {
	if r.H == 1 {
		return 0 // no dissection happened
	}
	return r.Sizes[r.N]
}

// MaxSeparatorSize returns the largest separator size over all
// non-leaf supernodes.
func (r *Result) MaxSeparatorSize() int {
	m := 0
	for l := 2; l <= r.H; l++ {
		for i := 1; i <= 1<<(r.H-l); i++ {
			if s := r.Sizes[r.Label(l, i)]; s > m {
				m = s
			}
		}
	}
	return m
}

// NestedDissection orders g with h levels of recursive dissection:
// h−1 rounds of (bisect, extract vertex separator) followed by leaf
// supernodes holding whatever remains. Supernodes may be empty on
// small or lopsided graphs; all algorithms tolerate empty blocks.
// The seed makes the randomized partitioner deterministic.
func NestedDissection(g *graph.Graph, h int, seed int64) (*Result, error) {
	if h < 1 {
		return nil, fmt.Errorf("partition: tree height %d < 1", h)
	}
	n := g.N()
	res := &Result{
		H:       h,
		N:       (1 << h) - 1,
		Perm:    make([]int, n),
		InvPerm: make([]int, n),
	}
	res.Super = make([][]int, res.N+1)
	res.Sizes = make([]int, res.N+1)
	res.Starts = make([]int, res.N+1)
	rng := rand.New(rand.NewSource(seed))
	opts := defaultBisectOptions()

	all := make([]int, n)
	for v := range all {
		all[v] = v
	}

	// assign walks the dissection tree. depth 0 is the root (eTree level
	// h); idx is the 1-based position of the node within its level.
	var assign func(vertices []int, depth, idx int)
	assign = func(vertices []int, depth, idx int) {
		level := h - depth
		label := res.LevelOffset(level) + idx
		if depth == h-1 {
			res.Super[label] = vertices
			return
		}
		if len(vertices) == 0 {
			res.Super[label] = nil
			assign(nil, depth+1, 2*idx-1)
			assign(nil, depth+1, 2*idx)
			return
		}
		sub := g.Subgraph(vertices)
		w := fromGraph(sub)
		part := bisect(w, opts, rng)
		sep := VertexSeparator(sub, part)
		var sepVerts, left, right []int
		for i, v := range vertices {
			switch {
			case sep[i]:
				sepVerts = append(sepVerts, v)
			case part[i] == 0:
				left = append(left, v)
			default:
				right = append(right, v)
			}
		}
		res.Super[label] = sepVerts
		assign(left, depth+1, 2*idx-1)
		assign(right, depth+1, 2*idx)
	}
	assign(all, 0, 1)

	// Build the permutation: supernodes in label order, vertices inside
	// a supernode in ascending original id for determinism.
	next := 0
	for t := 1; t <= res.N; t++ {
		sort.Ints(res.Super[t])
		res.Starts[t] = next
		res.Sizes[t] = len(res.Super[t])
		for _, v := range res.Super[t] {
			res.Perm[v] = next
			res.InvPerm[next] = v
			next++
		}
	}
	if next != n {
		return nil, fmt.Errorf("partition: assigned %d of %d vertices", next, n)
	}
	return res, nil
}

// SupernodeOf returns the supernode label owning new vertex index idx.
func (r *Result) SupernodeOf(idx int) int {
	// Starts is nondecreasing; binary search for the containing range.
	lo, hi := 1, r.N
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.Starts[mid] <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	// Skip back over empty supernodes that share the same start.
	for lo < r.N && r.Sizes[lo] == 0 {
		lo++
	}
	return lo
}

// CheckSeparation verifies the structural invariant the whole algorithm
// rests on: the *reordered* graph has no edge between supernodes that
// are cousins in the elimination tree (Section 4.2). It returns an
// error naming the first offending edge.
func CheckSeparation(g *graph.Graph, r *Result) error {
	// ancestor-or-self test via tree positions: convert label -> (level,
	// index); t1 is an ancestor of t2 iff walking t2 up to t1's level
	// lands on t1.
	levelOf := func(t int) (level, idx int) {
		for l := 1; l <= r.H; l++ {
			off := r.LevelOffset(l)
			if t > off && t <= off+(1<<(r.H-l)) {
				return l, t - off
			}
		}
		panic("partition: bad supernode label")
	}
	related := func(t1, t2 int) bool {
		l1, i1 := levelOf(t1)
		l2, i2 := levelOf(t2)
		if l1 > l2 {
			l1, i1, l2, i2 = l2, i2, l1, i1
		}
		// Raise (l1, i1) to level l2.
		for l := l1; l < l2; l++ {
			i1 = (i1 + 1) / 2
		}
		return i1 == i2
	}
	owner := make([]int, g.N())
	for t := 1; t <= r.N; t++ {
		for _, v := range r.Super[t] {
			owner[v] = t
		}
	}
	for _, e := range g.Edges() {
		tu, tv := owner[e.U], owner[e.V]
		if tu != tv && !related(tu, tv) {
			return fmt.Errorf("partition: edge {%d,%d} joins cousin supernodes %d and %d", e.U, e.V, tu, tv)
		}
	}
	return nil
}
