package apsp

import (
	"fmt"
	"math"

	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// PathResult is a distance matrix plus the successor structure needed
// to reconstruct actual shortest paths — what a downstream user of an
// APSP library typically wants on top of the distances.
type PathResult struct {
	Dist *semiring.Matrix
	n    int
	next []int32 // next[u*n+v]: vertex after u on a shortest u→v path, -1 if none
}

// FloydWarshallPaths runs the classical algorithm while maintaining
// successors, so Path can extract any shortest path in O(path length).
func FloydWarshallPaths(g *graph.Graph) *PathResult {
	n := g.N()
	d := semiring.FromSlice(n, n, g.AdjacencyMatrix())
	next := make([]int32, n*n)
	for i := range next {
		next[i] = -1
	}
	for u := 0; u < n; u++ {
		next[u*n+u] = int32(u)
		for _, e := range g.Adj(u) {
			if float64(e.W) <= d.At(u, e.To) {
				next[u*n+e.To] = int32(e.To)
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d.At(i, k)
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if s := dik + d.At(k, j); s < d.At(i, j) {
					d.Set(i, j, s)
					next[i*n+j] = next[i*n+k]
				}
			}
		}
	}
	return &PathResult{Dist: d, n: n, next: next}
}

// Path returns the vertices of a shortest u→v path, inclusive of both
// endpoints, or nil if v is unreachable from u. For u == v it returns
// [u].
func (p *PathResult) Path(u, v int) []int {
	if u < 0 || u >= p.n || v < 0 || v >= p.n {
		panic(fmt.Sprintf("apsp: path query (%d,%d) outside [0,%d)", u, v, p.n))
	}
	if u == v {
		return []int{u}
	}
	if p.next[u*p.n+v] == -1 {
		return nil
	}
	path := []int{u}
	cur := u
	for cur != v {
		cur = int(p.next[cur*p.n+v])
		path = append(path, cur)
		if len(path) > p.n {
			panic("apsp: successor structure is cyclic (corrupted)")
		}
	}
	return path
}

// PathWeight sums the edge weights of path in g, returning Inf for an
// invalid (edge-missing) or empty path. Useful for verifying returned
// paths against the distance matrix.
func PathWeight(g *graph.Graph, path []int) float64 {
	if len(path) == 0 {
		return semiring.Inf
	}
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		w, ok := g.HasEdge(path[i], path[i+1])
		if !ok {
			return semiring.Inf
		}
		total += w
	}
	return total
}
