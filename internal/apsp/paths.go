package apsp

import (
	"fmt"
	"math"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// PathResult is a distance matrix plus the successor structure needed
// to reconstruct actual shortest paths — what a downstream user of an
// APSP library typically wants on top of the distances.
type PathResult struct {
	Dist *semiring.Matrix
	// Report carries the simulated cost report of the solve (or warm
	// re-solve) that produced Dist — including the per-phase
	// words-moved breakdown the serving layer aggregates into /statsz.
	// Zero for purely sequential solvers and for incrementally
	// repaired results, which move no simulated words.
	Report comm.Report
	n      int
	next   []int32 // next[u*n+v]: vertex after u on a shortest u→v path, -1 if none
}

// FloydWarshallPaths runs the classical algorithm while maintaining
// successors, so Path can extract any shortest path in O(path length).
func FloydWarshallPaths(g *graph.Graph) *PathResult {
	n := g.N()
	d := semiring.FromSlice(n, n, g.AdjacencyMatrix())
	next := make([]int32, n*n)
	for i := range next {
		next[i] = -1
	}
	for u := 0; u < n; u++ {
		next[u*n+u] = int32(u)
		for _, e := range g.Adj(u) {
			if float64(e.W) <= d.At(u, e.To) {
				next[u*n+e.To] = int32(e.To)
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d.At(i, k)
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if s := dik + d.At(k, j); s < d.At(i, j) {
					d.Set(i, j, s)
					next[i*n+j] = next[i*n+k]
				}
			}
		}
	}
	return &PathResult{Dist: d, n: n, next: next}
}

// SuccessorsFromDist reconstructs the successor structure from a
// finished distance matrix, so shortest paths can be served from the
// output of *any* solver (blocked, supernodal, or the distributed
// 2D-SPARSE-APSP), not just the classical FloydWarshallPaths loop.
//
// For each target v it walks the "tight" edges — edges {u, w} with
// d(u,v) = w(u,w) + d(w,v) — backwards from v in breadth-first order,
// so the resulting successor pointers form a tree rooted at v: path
// extraction always terminates, even through zero-weight edges that
// make the tight-edge graph cyclic. Equality is checked with a small
// relative tolerance because different solvers may sum the same path
// in different orders. Cost is O(n·m) time and O(n²) space.
//
// The graph must have non-negative weights (in an undirected graph a
// negative edge is a negative cycle, under which shortest paths are
// undefined), and d must be a correct distance matrix for g; an
// inconsistency (a reachable pair whose distance no edge sequence
// explains) is reported as an error rather than producing a broken
// oracle.
func SuccessorsFromDist(g *graph.Graph, d *semiring.Matrix) (*PathResult, error) {
	if g == nil {
		return nil, fmt.Errorf("apsp: SuccessorsFromDist: nil graph")
	}
	n := g.N()
	if d == nil || d.Rows != n || d.Cols != n {
		return nil, fmt.Errorf("apsp: SuccessorsFromDist: distance matrix is not %d×%d", n, n)
	}
	for u := 0; u < n; u++ {
		for _, e := range g.Adj(u) {
			if e.W < 0 {
				return nil, fmt.Errorf("apsp: negative edge {%d,%d} weight %g is a negative cycle in an undirected graph", u, e.To, e.W)
			}
		}
	}
	next := make([]int32, n*n)
	for i := range next {
		next[i] = -1
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if err := successorColumn(g, d, v, next, queue); err != nil {
			return nil, err
		}
	}
	return &PathResult{Dist: d, n: n, next: next}, nil
}

// tightSum reports whether sum explains dist: exact equality, or — for
// finite values — equality within a small relative tolerance, because
// different solvers may sum the same path in different orders.
func tightSum(sum, dist float64) bool {
	if sum == dist {
		return true
	}
	if math.IsInf(sum, 1) || math.IsInf(dist, 1) {
		return false
	}
	tol := 1e-9
	if a := math.Abs(dist); a > 1 {
		tol *= a
	}
	return math.Abs(sum-dist) <= tol
}

// successorColumn rebuilds column v of the successor table from the
// distance matrix: the backward breadth-first walk of the tight-edge
// graph rooted at v described on SuccessorsFromDist. Entries
// next[u*n+v] for all u are overwritten; queue is scratch (may be nil).
// The incremental repair path calls this for exactly the columns whose
// distances or tight edges changed, leaving the rest of the table as
// the original solve built it.
func successorColumn(g *graph.Graph, d *semiring.Matrix, v int, next []int32, queue []int) error {
	n := g.N()
	for u := 0; u < n; u++ {
		next[u*n+v] = -1
	}
	next[v*n+v] = int32(v)
	queue = append(queue[:0], v)
	for head := 0; head < len(queue); head++ {
		w := queue[head]
		dwv := d.At(w, v)
		for _, e := range g.Adj(w) {
			u := e.To
			if u == v || next[u*n+v] != -1 {
				continue
			}
			if tightSum(e.W+dwv, d.At(u, v)) {
				next[u*n+v] = int32(w)
				queue = append(queue, u)
			}
		}
	}
	for u := 0; u < n; u++ {
		if next[u*n+v] == -1 && !math.IsInf(d.At(u, v), 1) {
			return fmt.Errorf("apsp: SuccessorsFromDist: d(%d,%d)=%g is not explained by any edge of the graph (inconsistent distances)", u, v, d.At(u, v))
		}
	}
	return nil
}

// N returns the number of vertices the result covers; valid query
// endpoints are [0, N).
func (p *PathResult) N() int { return p.n }

// MemoryBytes estimates the retained size of the result: the distance
// matrix plus the successor table. Registries use it for cache
// accounting.
func (p *PathResult) MemoryBytes() int64 {
	return int64(len(p.Dist.V))*8 + int64(len(p.next))*4
}

// Path returns the vertices of a shortest u→v path, inclusive of both
// endpoints, or nil if v is unreachable from u. For u == v it returns
// [u].
func (p *PathResult) Path(u, v int) []int {
	if u < 0 || u >= p.n || v < 0 || v >= p.n {
		panic(fmt.Sprintf("apsp: path query (%d,%d) outside [0,%d)", u, v, p.n))
	}
	if u == v {
		return []int{u}
	}
	if p.next[u*p.n+v] == -1 {
		return nil
	}
	path := []int{u}
	cur := u
	for cur != v {
		cur = int(p.next[cur*p.n+v])
		path = append(path, cur)
		if len(path) > p.n {
			panic("apsp: successor structure is cyclic (corrupted)")
		}
	}
	return path
}

// PathWeight sums the edge weights of path in g, returning Inf for an
// invalid (edge-missing) or empty path. Useful for verifying returned
// paths against the distance matrix.
func PathWeight(g *graph.Graph, path []int) float64 {
	if len(path) == 0 {
		return semiring.Inf
	}
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		w, ok := g.HasEdge(path[i], path[i+1])
		if !ok {
			return semiring.Inf
		}
		total += w
	}
	return total
}
