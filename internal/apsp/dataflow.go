package apsp

import (
	"context"
	"fmt"
	"math/bits"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/semiring"
)

// The dataflow executor. A Plan freezes the entire communication
// schedule — every collective's group order, root and tag — so nothing
// about an Execute needs discovering at run time: the machine
// executor's p free-running goroutines, cond-var mailboxes and
// linear-scan message matching only re-derive, expensively, a partial
// order that is already known. This file lowers the per-rank step
// lists into that partial order explicitly — a static dependency graph
// whose micro-nodes are (rank, op) participations and whose edges are
// each rank's program order plus one edge per point-to-point message
// hidden inside the collectives — and runs ready nodes on a bounded
// worker pool (semiring.Pool, GOMAXPROCS-ish workers) instead of p
// rank goroutines. Message payloads move by direct buffer handoff
// through preallocated slots; cost accounting becomes deterministic
// replay on a comm.Replay ledger, advancing each rank's clock in the
// rank's plan order as its nodes retire.
//
// Scheduler v2 (see DESIGN.md) adds three lowering/executing upgrades,
// each ablatable and default-on:
//
//   - Coalescing + fusion (SparseOptions.Fuse): consecutive micro-nodes
//     of one rank are merged into super-nodes whenever the merge
//     provably cannot create a dependency cycle, shrinking the
//     scheduled graph (fewer enqueues, atomics and panic fences) while
//     executing the exact same micro sequence — charged costs and
//     message counts are untouched. Runs of R2 panel updates inside a
//     super-node execute through the fused
//     semiring.Kernel.PanelUpdateMultiScratch, which keeps the
//     destination block hot across the accumulations.
//   - Critical-path priorities (SparseOptions.Schedule): every
//     super-node carries the longest cost path from itself to any sink
//     (comm.PriorityCost over the same per-op quantities the ledger
//     charges), computed by a reverse topological sweep at lowering.
//     The critical schedule replaces the unordered ready channel with
//     per-worker max-heaps plus stealing, so the most critical ready
//     node runs first; the fifo schedule keeps the original channel as
//     the ablation baseline.
//
// The result is bit-identical to the machine executor in distances and
// in every charged cost, for every schedule × fuse combination. The
// argument (spelled out in DESIGN.md): both executors issue, per rank,
// the same sequence of charge operations in the same order — program
// order is enforced by the next edge (micro order inside a super-node,
// the next link across them), each receive is wired to the unique
// (src, tag) message the machine's matching would have picked, and
// ChargeSend/ChargeRecv reproduce Ctx.Send/Ctx.Recv's
// snapshot-then-charge and merge-then-charge rules verbatim. Merging
// only concatenates one rank's adjacent charge runs without reordering
// them, so clocks — a deterministic fold over those sequences — agree
// by induction over plan order; the numeric kernels see the same
// operand bytes in the same order, so distances agree bit for bit.

// Node kinds. One micro-node is one rank's participation in one plan
// op, or a local glue step (init, the R3 combine, the R4 release, a
// phase mark) that the machine executor ran inline between
// collectives.
const (
	dfInit   uint8 = iota // SetMemory(len(A)) — each rank's first node
	dfDiag                // R1: ClassicalFW on the owned diagonal block
	dfR2                  // R2 pivot broadcast + panel update
	dfR3                  // R3 panel broadcast + capture
	dfR3Mul               // R3 combine: multiply captured panels, release
	dfR4Col               // R4 column-panel broadcast + left-operand capture
	dfR4Row               // R4 row-panel broadcast + right-operand capture
	dfUnit                // R4 unit product
	dfReduce              // R4 binomial reduce participation
	dfR4Done              // R4 release of unit and captured operands
	dfSeq                 // R4 sequential-ablation exchange
	dfTrans               // transpose send/receive
	dfMark                // per-level phase mark
	dfNumKinds
)

// dfKindNames and dfPhaseNames back the runtime/pprof labels: op_kind
// is the micro-node kind, phase the paper region it belongs to.
var dfKindNames = [dfNumKinds]string{
	"init", "diag", "r2", "r3", "r3mul", "r4col", "r4row",
	"unit", "reduce", "r4done", "seq", "trans", "mark",
}

var dfPhaseNames = [dfNumKinds]string{
	"init", "r1", "r2", "r3", "r3", "r4", "r4",
	"r4", "r4-reduce", "r4", "r4-seq", "trans", "mark",
}

// dfNode is one micro-node of the lowered graph. recvs and sends list
// the node's message slots in charge order — the exact order the
// machine executor would have charged them on this rank.
type dfNode struct {
	rank  int32
	kind  uint8
	level int32 // index into Plan.Levels, -1 for dfInit
	op    int32 // index into the level's phase list (kind-dependent)
	next  int32 // same-rank successor in program order, -1 if last
	recvs []int32
	sends []int32
}

// dfSuper is one scheduled node: a run of count consecutive micro-nodes
// of one rank (micro ids [first, first+count), contiguous because
// lowering emits each rank's program in one block). With fusion off
// every super-node holds exactly one micro-node.
type dfSuper struct {
	first int32
	count int32
	next  int32 // same-rank successor super-node, -1 if last
	deps  int32 // initial dependency count: program pred + member recvs
	prio  int64 // longest cost path to a sink (critical-path priority)
}

// dfProgram is the complete lowered graph: immutable once built,
// shared by every concurrent Execute of the plan.
type dfProgram struct {
	micros      []dfNode
	supers      []dfSuper
	superOf     []int32  // micro id -> owning super-node
	msgConsumer []int32  // message slot -> consuming micro-node
	seeds       []int32  // super-nodes with deps == 0 (each rank's head)
	levelNames  []string // "level-1".. precomputed mark ids
	maxScratch  int      // max ScratchWords over ranks: per-worker arena size

	// Static priority rank: prioIdx[sid] is the super-node's position
	// in (prio desc, id asc) order and prioSid is its inverse.
	// Priorities are pure functions of the symbolic schedule, so the
	// total order is frozen at lowering — the runtime schedulers compare
	// dense int32 positions (parallel heaps) or index a ready bitmap by
	// them (serial mode) instead of chasing prio through the supers.
	prioIdx []int32
	prioSid []int32
}

// dataflow returns the plan's lowered graph for the requested fuse
// mode, built once per mode and cached. Both lowerings are pure
// functions of the symbolic schedule, so like the plan itself they are
// weights-independent and immutable once built.
func (pl *Plan) dataflow(fuse Fuse) *dfProgram {
	i := 0
	if fuse == FuseOff {
		i = 1
	}
	pl.dfOnce[i].Do(func() { pl.df[i] = lowerPlan(pl, fuse == FuseOn) })
	return pl.df[i]
}

// DataflowNodes reports the scheduled node count of the plan's lowered
// graph under the given fuse mode (super-nodes; with fusion off this
// equals the micro-node count). Exposed for the E24 ablation table.
func (pl *Plan) DataflowNodes(fuse Fuse) int {
	return len(pl.dataflow(fuse).supers)
}

// dfOpKey identifies one rank's node for one op during lowering, so
// the wiring pass can find both endpoints of every message.
type dfOpKey struct {
	level int32
	phase uint8
	op    int32
	rank  int32
}

// lowerPlan builds the dependency graph. Pass 1 emits each rank's
// micro-nodes in the rank's program order (the machine executor's
// order in exec.go, exactly); pass 2 wires one message slot per
// point-to-point send by replaying the binomial-tree arithmetic of
// comm's Bcast, Reduce and ReduceTo; pass 3 computes a topological
// order; pass 4 merges micro-nodes into super-nodes (fusion +
// coalescing); pass 5 assigns critical-path priorities.
func lowerPlan(pl *Plan, fuse bool) *dfProgram {
	prog := &dfProgram{}
	lookup := make(map[dfOpKey]int32)
	last := make([]int32, pl.P)
	heads := make([]int32, 0, pl.P)
	for i := range last {
		last[i] = -1
	}
	emit := func(rank int, kind uint8, level, op int32) int32 {
		id := int32(len(prog.micros))
		prog.micros = append(prog.micros, dfNode{rank: int32(rank), kind: kind, level: level, op: op, next: -1})
		if last[rank] >= 0 {
			prog.micros[last[rank]].next = id
		} else {
			heads = append(heads, id)
		}
		last[rank] = id
		return id
	}
	for li := range pl.Levels {
		prog.levelNames = append(prog.levelNames, fmt.Sprintf("level-%d", li+1))
	}

	// Pass 1: per-rank program order, mirroring planExec.run/level.
	// Each rank's micro-nodes occupy one contiguous id range — the
	// super-node pass depends on that.
	for rank := 0; rank < pl.P; rank++ {
		if w := pl.ScratchWords(rank); w > prog.maxScratch {
			prog.maxScratch = w
		}
		emit(rank, dfInit, -1, -1)
		for li := range pl.Levels {
			lv := &pl.Levels[li]
			st := &pl.ranks[rank][li]
			l := int32(li)
			if st.Diag {
				emit(rank, dfDiag, l, -1)
			}
			for _, x := range st.R2 {
				lookup[dfOpKey{l, dfR2, x, int32(rank)}] = emit(rank, dfR2, l, x)
			}
			captures := false
			for _, x := range st.R3 {
				lookup[dfOpKey{l, dfR3, x, int32(rank)}] = emit(rank, dfR3, l, x)
				captures = captures || contains(lv.R3[x].Consumers, rank)
			}
			if captures {
				emit(rank, dfR3Mul, l, -1)
			}
			r4held := false
			for _, x := range st.R4Col {
				lookup[dfOpKey{l, dfR4Col, x, int32(rank)}] = emit(rank, dfR4Col, l, x)
				r4held = r4held || contains(lv.R4Col[x].Consumers, rank)
			}
			for _, x := range st.R4Row {
				lookup[dfOpKey{l, dfR4Row, x, int32(rank)}] = emit(rank, dfR4Row, l, x)
				r4held = r4held || contains(lv.R4Row[x].Consumers, rank)
			}
			if st.Unit >= 0 {
				emit(rank, dfUnit, l, st.Unit)
				r4held = true
			}
			for _, x := range st.Reduce {
				lookup[dfOpKey{l, dfReduce, x, int32(rank)}] = emit(rank, dfReduce, l, x)
			}
			if r4held {
				emit(rank, dfR4Done, l, -1)
			}
			for _, x := range st.Seq {
				lookup[dfOpKey{l, dfSeq, x, int32(rank)}] = emit(rank, dfSeq, l, x)
			}
			for _, x := range st.Trans {
				lookup[dfOpKey{l, dfTrans, x, int32(rank)}] = emit(rank, dfTrans, l, x)
			}
			emit(rank, dfMark, l, -1)
		}
	}

	// Pass 2: message wiring. msgProducer (transient, merge legality
	// only) records the sending micro-node of every slot.
	var msgProducer []int32
	get := func(level int32, phase uint8, op int32, rank int) int32 {
		id, ok := lookup[dfOpKey{level, phase, op, int32(rank)}]
		if !ok {
			panic(fmt.Sprintf("apsp: dataflow lowering: no node for rank %d in op %d of phase %d, level %d", rank, op, phase, level+1))
		}
		return id
	}
	link := func(from, to int32) {
		msg := int32(len(prog.msgConsumer))
		prog.msgConsumer = append(prog.msgConsumer, to)
		msgProducer = append(msgProducer, from)
		prog.micros[from].sends = append(prog.micros[from].sends, msg)
		prog.micros[to].recvs = append(prog.micros[to].recvs, msg)
	}
	// wireBcast replays comm.Ctx.bcast: a non-root member receives once
	// from the rank differing in its lowest relative-position bit, then
	// forwards at decreasing bit distances. Iterating every member and
	// wiring its sends in that decreasing-mask order reproduces the
	// machine's per-rank send order; each receiver has exactly one recv.
	wireBcast := func(level int32, phase uint8, ops []BcastOp) {
		for x := range ops {
			op := &ops[x]
			q := len(op.Group)
			rootPos := 0
			for i, r := range op.Group {
				if r == op.Root {
					rootPos = i
					break
				}
			}
			for pos, rank := range op.Group {
				rel := (pos - rootPos + q) % q
				node := get(level, phase, int32(x), rank)
				mask := 1
				for mask < q && rel&mask == 0 {
					mask <<= 1
				}
				for m := mask >> 1; m > 0; m >>= 1 {
					if rel+m < q {
						link(node, get(level, phase, int32(x), op.Group[(rel+m+rootPos)%q]))
					}
				}
			}
		}
	}
	for li := range pl.Levels {
		lv := &pl.Levels[li]
		l := int32(li)
		wireBcast(l, dfR2, lv.R2)
		wireBcast(l, dfR3, lv.R3)
		wireBcast(l, dfR4Col, lv.R4Col)
		wireBcast(l, dfR4Row, lv.R4Row)
		// Reduce trees, replaying comm.Ctx.ReduceTo: reduce to the root
		// if it is a member, else to group[0] which forwards one extra
		// message to the external root. Receives are wired from the
		// receiver side in increasing-mask order (the machine's charge
		// order); each non-root member's unique send is the matching
		// endpoint, appended exactly once.
		for x := range lv.R4Reduce {
			op := &lv.R4Reduce[x]
			q := len(op.Group)
			rootInGroup := contains(op.Group, op.Root)
			effRoot := op.Root
			if !rootInGroup {
				effRoot = op.Group[0]
			}
			rootPos := 0
			for i, r := range op.Group {
				if r == effRoot {
					rootPos = i
					break
				}
			}
			for pos, rank := range op.Group {
				rel := (pos - rootPos + q) % q
				node := get(l, dfReduce, int32(x), rank)
				for mask := 1; mask < q; mask <<= 1 {
					if rel&mask != 0 {
						break // this member's send is wired by its parent
					}
					if srcRel := rel | mask; srcRel < q {
						link(get(l, dfReduce, int32(x), op.Group[(srcRel+rootPos)%q]), node)
					}
				}
			}
			if !rootInGroup {
				link(get(l, dfReduce, int32(x), op.Group[0]), get(l, dfReduce, int32(x), op.Root))
			}
		}
		for x := range lv.R4Seq {
			op := &lv.R4Seq[x]
			owner := get(l, dfSeq, int32(x), op.Owner)
			if op.AikOwner != op.Owner {
				link(get(l, dfSeq, int32(x), op.AikOwner), owner) // aik first: the owner receives TagA before TagB
			}
			if op.AkjOwner != op.Owner {
				link(get(l, dfSeq, int32(x), op.AkjOwner), owner)
			}
		}
		for x := range lv.Trans {
			op := &lv.Trans[x]
			link(get(l, dfTrans, int32(x), op.Src), get(l, dfTrans, int32(x), op.Dst))
		}
	}

	// Pass 3: topological order of the micro graph (Kahn, FIFO). pos is
	// a linear extension of the dependency partial order; the merge
	// legality rule and the priority sweep both lean on it.
	pend := make([]int32, len(prog.micros))
	for id := range prog.micros {
		pend[id] = int32(len(prog.micros[id].recvs)) + 1
	}
	for _, id := range heads {
		pend[id]--
	}
	order := make([]int32, 0, len(prog.micros))
	pos := make([]int32, len(prog.micros))
	for id := range pend {
		if pend[id] == 0 {
			order = append(order, int32(id))
		}
	}
	for qi := 0; qi < len(order); qi++ {
		u := order[qi]
		pos[u] = int32(qi)
		release := func(v int32) {
			pend[v]--
			if pend[v] == 0 {
				order = append(order, v)
			}
		}
		if nx := prog.micros[u].next; nx >= 0 {
			release(nx)
		}
		for _, m := range prog.micros[u].sends {
			release(prog.msgConsumer[m])
		}
	}
	// A cycle in the micro graph is a lowering bug; the executor's
	// stall detector reports it. Merging on top of a broken order could
	// only make diagnosis harder, so fall back to 1:1 super-nodes.
	if len(order) != len(prog.micros) {
		fuse = false
	}

	// Pass 4: super-nodes. Walk each rank's contiguous micro run and
	// greedily extend the current super-node while the merge is legal:
	// micro v may join the run headed by h iff every message v receives
	// is produced at a position before pos[h]. Legality argument (the
	// coalescing invariant, spelled out in DESIGN.md): order every
	// super-node by ψ = pos of its head. A program edge strictly
	// increases ψ; a message edge into a head strictly increases ψ
	// (producer precedes consumer in any linear extension); a message
	// edge into a non-head member has producer position < ψ of the
	// member's head by the rule, and the producer's own head is at or
	// before it — so every edge of the merged graph strictly increases
	// ψ, and the merged graph is acyclic (no new deadlocks). Strictness
	// matters: allowing producers *at* ψ admits two ranks whose runs
	// wait on each other's heads.
	prog.superOf = make([]int32, len(prog.micros))
	for mi := 0; mi < len(prog.micros); {
		rank := prog.micros[mi].rank
		sid := int32(len(prog.supers))
		prog.supers = append(prog.supers, dfSuper{first: int32(mi), count: 1, next: -1})
		prog.superOf[mi] = sid
		headPos := pos[mi]
		deps := int32(len(prog.micros[mi].recvs)) // rank head: no program pred
		for mi++; mi < len(prog.micros) && prog.micros[mi].rank == rank; mi++ {
			v := &prog.micros[mi]
			legal := fuse
			for _, m := range v.recvs {
				if pos[msgProducer[m]] >= headPos {
					legal = false
					break
				}
			}
			if legal {
				s := &prog.supers[sid]
				s.count++
				prog.superOf[mi] = sid
				deps += int32(len(v.recvs))
			} else {
				prog.supers[sid].deps = deps
				sid = int32(len(prog.supers))
				prog.supers = append(prog.supers, dfSuper{first: int32(mi), count: 1, next: -1})
				prog.supers[sid-1].next = sid
				prog.superOf[mi] = sid
				headPos = pos[mi]
				deps = int32(len(v.recvs)) + 1 // program pred
			}
		}
		prog.supers[sid].deps = deps
	}
	for sid := range prog.supers {
		if prog.supers[sid].deps == 0 {
			prog.seeds = append(prog.seeds, int32(sid))
		}
	}

	// Pass 5: critical-path priorities. Per-micro scheduling weights
	// come from the same quantities the ledger charges
	// (comm.PriorityCost); a super-node's priority is its members' cost
	// plus the max successor priority — the longest cost path to a
	// sink. Iterating super-nodes by descending ψ is a reverse
	// topological sweep (every edge increases ψ, shown above).
	costs := make([]int64, len(prog.micros))
	for id := range prog.micros {
		costs[id] = microCost(pl, &prog.micros[id])
	}
	for qi := len(order) - 1; qi >= 0; qi-- {
		mi := order[qi]
		sid := prog.superOf[mi]
		s := &prog.supers[sid]
		if s.first != mi {
			continue // priorities are assigned when the head is reached
		}
		best := int64(0)
		if s.next >= 0 {
			best = prog.supers[s.next].prio
		}
		var c int64
		for m := s.first; m < s.first+s.count; m++ {
			c += costs[m]
			for _, msg := range prog.micros[m].sends {
				if p := prog.supers[prog.superOf[prog.msgConsumer[msg]]].prio; p > best {
					best = p
				}
			}
		}
		s.prio = c + best
	}

	// Freeze the priority total order (prio desc, id asc): the runtime
	// schedulers work with these dense positions.
	prog.prioSid = make([]int32, len(prog.supers))
	for i := range prog.prioSid {
		prog.prioSid[i] = int32(i)
	}
	sort.Slice(prog.prioSid, func(a, b int) bool {
		sa, sb := prog.prioSid[a], prog.prioSid[b]
		pa, pb := prog.supers[sa].prio, prog.supers[sb].prio
		return pa > pb || (pa == pb && sa < sb)
	})
	prog.prioIdx = make([]int32, len(prog.supers))
	for pos, sid := range prog.prioSid {
		prog.prioIdx[sid] = int32(pos)
	}
	return prog
}

// microCost estimates one micro-node's scheduling weight using the
// dense block dimensions of its op — the same message, word and flop
// quantities the replay ledger charges, collapsed by
// comm.PriorityCost. Payload words use the dense upper bound (the
// packed/pruned encodings shrink data-dependently; priorities must be
// a pure function of the symbolic schedule). Estimates only order
// execution — they never feed the ledger.
func microCost(pl *Plan, n *dfNode) int64 {
	sizes := pl.ND.Sizes
	bi := int64(sizes[int(n.rank)/pl.NSup+1])
	bj := int64(sizes[int(n.rank)%pl.NSup+1])
	msgs := int64(len(n.recvs) + len(n.sends))
	var words, flops int64
	block := func(i, j int) int64 { return int64(sizes[i]) * int64(sizes[j]) }
	switch n.kind {
	case dfDiag:
		flops = bi * bi * bi
	case dfR2:
		op := &pl.Levels[n.level].R2[n.op]
		words = block(op.BI, op.BJ) * msgs
		if contains(op.Consumers, int(n.rank)) {
			if op.Kind == opR2Left {
				flops = bi * bj * bj
			} else {
				flops = bi * bi * bj
			}
		}
	case dfR3:
		op := &pl.Levels[n.level].R3[n.op]
		words = block(op.BI, op.BJ) * msgs
	case dfR3Mul:
		// A(i,j) ⊕= rowPanel(i,k) ⊗ colPanel(k,j): the pivot width is
		// the column count of the captured row panel.
		for _, x := range pl.ranks[n.rank][n.level].R3 {
			op := &pl.Levels[n.level].R3[x]
			if op.Kind == opR3Row && contains(op.Consumers, int(n.rank)) {
				flops = bi * int64(sizes[op.BJ]) * bj
				break
			}
		}
	case dfR4Col:
		op := &pl.Levels[n.level].R4Col[n.op]
		words = block(op.BI, op.BJ) * msgs
	case dfR4Row:
		op := &pl.Levels[n.level].R4Row[n.op]
		words = block(op.BI, op.BJ) * msgs
	case dfUnit:
		u := &pl.Levels[n.level].R4Units[n.op]
		flops = int64(sizes[u.I]) * int64(sizes[u.K]) * int64(sizes[u.J])
	case dfReduce:
		op := &pl.Levels[n.level].R4Reduce[n.op]
		words = block(op.BI, op.BJ) * msgs
		if int(n.rank) == op.Root {
			flops = block(op.BI, op.BJ)
		}
	case dfSeq:
		op := &pl.Levels[n.level].R4Seq[n.op]
		words = (block(op.BI, op.K) + block(op.K, op.BJ)) / 2 * msgs
		if int(n.rank) == op.Owner {
			flops = int64(sizes[op.BI]) * int64(sizes[op.K]) * int64(sizes[op.BJ])
		}
	case dfTrans:
		op := &pl.Levels[n.level].Trans[n.op]
		words = block(op.BI, op.BJ) * msgs
	}
	return comm.PriorityCost(msgs, words, flops)
}

// dfProfileLabels gates the runtime/pprof labels around micro-node
// execution. Off by default: labeling costs a goroutine-label swap per
// node, which the hot serving path must not pay.
var dfProfileLabels atomic.Bool

// EnableProfileLabels toggles pprof labels (op_kind, phase, level) on
// dataflow node execution, so CPU profiles attribute time per op
// class. cmd/apspbench enables it under -cpuprofile and cmd/apspd
// under -pprof.
func EnableProfileLabels(on bool) { dfProfileLabels.Store(on) }

// buildLabelTable precomputes one pprof.LabelSet per (kind, level), so
// the per-node cost under profiling is a table lookup, not a label
// allocation.
func buildLabelTable(prog *dfProgram) [][]pprof.LabelSet {
	table := make([][]pprof.LabelSet, dfNumKinds)
	for k := range table {
		table[k] = make([]pprof.LabelSet, len(prog.levelNames)+1)
		for l := range table[k] {
			level := "-"
			if l > 0 {
				level = prog.levelNames[l-1]
			}
			table[k][l] = pprof.Labels(
				"op_kind", dfKindNames[k],
				"phase", dfPhaseNames[k],
				"level", level,
			)
		}
	}
	return table
}

// dfSlot carries one message: the payload (zero-copy handoff, exactly
// like the machine's mailboxes) and the sender's pre-send clock
// snapshot for the receiver's max-merge.
type dfSlot struct {
	data  []float64
	clock comm.Cost
}

const dfStop = int32(-1) // fifo ready-queue sentinel: worker shutdown

// dfRankState is one rank's mutable numeric state during a run: the
// owned block plus the captured panels/operands that planExec held in
// level-scoped locals. The combine/release nodes clear them, so state
// never leaks across levels. Only the rank's own nodes touch it, and
// those are serialized by the program-order edge.
type dfRankState struct {
	A                      *semiring.Matrix
	rowPanel, colPanel     *semiring.Matrix
	unit, unitAik, unitAkj *semiring.Matrix
}

// dfHeap is one worker's ready heap under the critical schedule: a
// mutex-guarded binary max-heap on super-node priority, ties broken
// toward the lower id (earlier plan position). Sharding the ready set
// per worker keeps push/pop contention near zero; idle workers steal.
type dfHeap struct {
	mu  sync.Mutex
	ids []int32
}

// dfRun is the per-Execute runtime state of the dataflow executor.
type dfRun struct {
	pl      *Plan
	prog    *dfProgram
	kern    semiring.Kernel
	sizes   []int
	led     *comm.Replay
	ranks   []dfRankState
	slots   []dfSlot
	pending []int32 // per-super remaining deps, decremented atomically
	workers int
	retired atomic.Int32
	live    atomic.Int32 // super-nodes enqueued but not yet retired
	done    atomic.Bool
	err     error // written once by the shutdown winner, read after join

	// fifo schedule: the unordered buffered channel (the v1 executor,
	// kept verbatim as the ablation baseline).
	ready chan int32

	// critical schedule: per-worker heaps with stealing, plus a parking
	// lot for workers that found every heap empty. queued counts
	// pushed-but-not-popped nodes so a parking worker cannot miss a
	// push that raced its empty scan.
	critical bool
	heaps    []dfHeap
	parkMu   sync.Mutex
	parkCond *sync.Cond
	sleepers atomic.Int32
	queued   atomic.Int64

	// Serial mode (one worker, e.g. GOMAXPROCS=1): one goroutine
	// executes everything, so channels, heap locks and atomic counters
	// are pure overhead — a plain stack (fifo) or a ready bitmap over
	// the frozen priority order (critical) replaces them. The bitmap
	// makes the priority queue O(1)-ish: push sets the super-node's
	// position bit, pop finds the lowest set position (= highest
	// priority) through a two-level summary with find-first-set.
	serial    bool
	queue     []int32
	bmWords   []uint64
	bmSummary []uint64
	bmHint    int // lowest summary word that can hold a set bit

	// labels is the (kind, level) pprof label table, nil unless
	// EnableProfileLabels(true) was called before this Execute.
	labels [][]pprof.LabelSet
}

// executeDataflow is the dataflow counterpart of executeMachine.
func (pl *Plan) executeDataflow(ly *Layout, o ExecOpts) (*DistResult, error) {
	prog := pl.dataflow(o.Fuse)
	blocks, release := ly.BlocksPooled()
	pool := semiring.DefaultPool
	workers := o.Workers
	if workers <= 0 {
		workers = pool.Size()
	}
	if workers > pl.P {
		workers = pl.P
	}
	if workers < 1 {
		workers = 1
	}
	x := &dfRun{
		pl:       pl,
		prog:     prog,
		kern:     o.Kernel,
		sizes:    pl.ND.Sizes,
		led:      comm.NewReplay(pl.P),
		ranks:    make([]dfRankState, pl.P),
		slots:    make([]dfSlot, len(prog.msgConsumer)),
		pending:  make([]int32, len(prog.supers)),
		workers:  workers,
		critical: o.Schedule == ScheduleCritical,
		serial:   workers == 1,
	}
	if dfProfileLabels.Load() {
		x.labels = buildLabelTable(prog)
	}
	for r := 0; r < pl.P; r++ {
		x.ranks[r].A = blocks[r/pl.NSup+1][r%pl.NSup+1]
	}
	for sid := range prog.supers {
		x.pending[sid] = prog.supers[sid].deps
	}
	if x.serial {
		if x.critical {
			x.bmWords = make([]uint64, (len(prog.supers)+63)/64)
			x.bmSummary = make([]uint64, (len(x.bmWords)+63)/64)
			for _, sid := range prog.seeds {
				x.pushBitmap(sid)
			}
		} else {
			x.queue = append(make([]int32, 0, 64), prog.seeds...)
		}
		x.runSerial(semiring.NewArena(prog.maxScratch))
	} else {
		// One scratch arena per worker, reused across every op the
		// worker executes — w arenas total instead of the machine
		// path's p.
		arenas := make([]*semiring.Arena, workers)
		for i := range arenas {
			arenas[i] = semiring.NewArena(prog.maxScratch)
		}
		if x.critical {
			x.parkCond = sync.NewCond(&x.parkMu)
			x.heaps = make([]dfHeap, workers)
			for i, sid := range prog.seeds {
				x.live.Add(1)
				x.queued.Add(1)
				h := &x.heaps[i%workers]
				h.ids = append(h.ids, sid)
				x.siftUp(h, len(h.ids)-1)
			}
			pool.Drive(workers, func(i int) { x.drainCritical(i, arenas[i]) })
		} else {
			// Capacity for every node plus every sentinel: enqueues never block.
			x.ready = make(chan int32, len(prog.supers)+workers)
			for _, sid := range prog.seeds {
				x.live.Add(1)
				x.ready <- sid
			}
			pool.Drive(workers, func(i int) { x.drain(i, arenas[i]) })
		}
	}
	if x.err != nil {
		return nil, fmt.Errorf("apsp: sparse solver failed: %w", x.err)
	}
	phases, err := x.led.PhaseCosts()
	if err != nil {
		return nil, fmt.Errorf("apsp: phase accounting failed: %w", err)
	}
	dist := ly.AssembleOriginal(blocks)
	release()
	return &DistResult{
		Dist:    dist,
		Report:  x.led.Report(),
		Layout:  ly,
		P:       pl.P,
		Phases:  phases,
		Traffic: x.led.Traffic(),
	}, nil
}

// runSerial is the single-worker loop: pop, execute, repeat. The
// dependency counts make the queue a topological traversal, so an
// empty queue before every node ran is the same lowering-cycle
// condition the concurrent path's live counter detects. Under the
// critical schedule the ready set is the priority bitmap, so even one
// worker follows the exact priority order.
func (x *dfRun) runSerial(a *semiring.Arena) {
	defer func() {
		if rec := recover(); rec != nil {
			x.err = fmt.Errorf("dataflow op panicked: %v", rec)
		}
	}()
	done := 0
	if x.critical {
		for {
			sid, ok := x.popBitmap()
			if !ok {
				break
			}
			x.execSuper(sid, 0, a)
			done++
		}
	} else {
		for len(x.queue) > 0 {
			sid := x.queue[len(x.queue)-1]
			x.queue = x.queue[:len(x.queue)-1]
			x.execSuper(sid, 0, a)
			done++
		}
	}
	if done < len(x.prog.supers) {
		x.err = fmt.Errorf("dataflow executor stalled after %d of %d ops (dependency cycle in lowering)", done, len(x.prog.supers))
	}
}

// drain executes ready super-nodes until a shutdown sentinel arrives
// (fifo schedule).
func (x *dfRun) drain(w int, a *semiring.Arena) {
	for {
		sid := <-x.ready
		if sid < 0 {
			return
		}
		x.execSuperNode(sid, w, a)
	}
}

// drainCritical executes ready super-nodes in priority order until
// shutdown: pop the own heap, steal from the others, park when every
// heap is empty.
func (x *dfRun) drainCritical(w int, a *semiring.Arena) {
	for {
		if x.done.Load() {
			return
		}
		sid, ok := x.take(w)
		if !ok {
			x.park()
			continue
		}
		x.execSuperNode(sid, w, a)
	}
}

// take pops the highest-priority node from worker w's heap, scanning
// the other workers' heaps (stealing, most critical first) when the
// own heap is empty.
func (x *dfRun) take(w int) (int32, bool) {
	for i := 0; i < len(x.heaps); i++ {
		h := &x.heaps[(w+i)%len(x.heaps)]
		h.mu.Lock()
		if len(h.ids) > 0 {
			sid := x.heapPop(h)
			h.mu.Unlock()
			x.queued.Add(-1)
			return sid, true
		}
		h.mu.Unlock()
	}
	return 0, false
}

// park blocks until a push or shutdown. The pusher increments queued
// before signaling and park re-checks queued under the lot's mutex, so
// a push racing the empty heap scan is never lost.
func (x *dfRun) park() {
	x.parkMu.Lock()
	x.sleepers.Add(1)
	for x.queued.Load() == 0 && !x.done.Load() {
		x.parkCond.Wait()
	}
	x.sleepers.Add(-1)
	x.parkMu.Unlock()
}

func (x *dfRun) execSuperNode(sid int32, w int, a *semiring.Arena) {
	defer func() {
		if rec := recover(); rec != nil {
			s := &x.prog.supers[sid]
			n := &x.prog.micros[s.first]
			x.shutdown(fmt.Errorf("dataflow node %d (rank %d, kind %d) panicked: %v", sid, n.rank, n.kind, rec))
		}
	}()
	x.execSuper(sid, w, a)
	x.retire()
}

// complete records one satisfied dependency of a super-node; the last
// one enqueues it on worker w's queue. The atomic decrement orders
// every prior write of the dependency's producer (slot payloads, rank
// state) before the node's execution.
func (x *dfRun) complete(sid int32, w int) {
	if x.serial {
		x.pending[sid]--
		if x.pending[sid] == 0 {
			if x.critical {
				x.pushBitmap(sid)
			} else {
				x.queue = append(x.queue, sid)
			}
		}
		return
	}
	if atomic.AddInt32(&x.pending[sid], -1) != 0 {
		return
	}
	x.live.Add(1)
	if !x.critical {
		x.ready <- sid
		return
	}
	x.queued.Add(1)
	h := &x.heaps[w]
	h.mu.Lock()
	x.heapPush(h, sid)
	h.mu.Unlock()
	if x.sleepers.Load() > 0 {
		x.parkMu.Lock()
		x.parkCond.Signal()
		x.parkMu.Unlock()
	}
}

// retire finishes a super-node. Termination and stall detection are
// exact, with no timers: live counts nodes enqueued but not retired,
// and enqueues only happen from inside executing (hence unretired,
// hence live-counted) nodes, so live reaching zero before every node
// retired proves nothing can ever run again — a lowering bug, reported
// instead of hanging. The machine executor needs a sampling watchdog
// for the same job because its ranks block in ways it cannot count.
func (x *dfRun) retire() {
	r := x.retired.Add(1)
	if x.live.Add(-1) == 0 && int(r) < len(x.prog.supers) {
		x.shutdown(fmt.Errorf("dataflow executor stalled after %d of %d ops (dependency cycle in lowering)", r, len(x.prog.supers)))
		return
	}
	if int(r) == len(x.prog.supers) {
		x.shutdown(nil)
	}
}

// shutdown ends the run once: records the error (if any) and wakes
// every worker — sentinels on the fifo channel, a broadcast on the
// critical parking lot.
func (x *dfRun) shutdown(err error) {
	if !x.done.CompareAndSwap(false, true) {
		return
	}
	x.err = err
	if x.critical {
		x.parkMu.Lock()
		x.parkCond.Broadcast()
		x.parkMu.Unlock()
		return
	}
	for i := 0; i < x.workers; i++ {
		x.ready <- dfStop
	}
}

// Heap plumbing: max-heap on super-node priority. The comparison uses
// the frozen priority positions (prio desc, id asc at lowering), so
// ordering is deterministic for a fixed plan and the hot compare reads
// one dense int32 array instead of chasing prio through the supers.
func (x *dfRun) heapLess(a, b int32) bool {
	return x.prog.prioIdx[a] < x.prog.prioIdx[b]
}

func (x *dfRun) heapPush(h *dfHeap, sid int32) {
	h.ids = append(h.ids, sid)
	x.siftUp(h, len(h.ids)-1)
}

func (x *dfRun) siftUp(h *dfHeap, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !x.heapLess(h.ids[i], h.ids[p]) {
			return
		}
		h.ids[i], h.ids[p] = h.ids[p], h.ids[i]
		i = p
	}
}

func (x *dfRun) heapPop(h *dfHeap) int32 {
	top := h.ids[0]
	last := len(h.ids) - 1
	h.ids[0] = h.ids[last]
	h.ids = h.ids[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= last {
			return top
		}
		if c+1 < last && x.heapLess(h.ids[c+1], h.ids[c]) {
			c++
		}
		if !x.heapLess(h.ids[c], h.ids[i]) {
			return top
		}
		h.ids[i], h.ids[c] = h.ids[c], h.ids[i]
		i = c
	}
}

// Serial-mode priority bitmap: one bit per super-node at its frozen
// priority position, plus a one-level summary (one bit per 64-bit
// word). Push sets a bit; pop find-first-sets the summary then the
// word — the lowest set position is the highest-priority ready node.
// The hint tracks the lowest summary word that can be non-empty so pop
// does not rescan known-empty prefixes.
func (x *dfRun) pushBitmap(sid int32) {
	p := int(x.prog.prioIdx[sid])
	x.bmWords[p>>6] |= 1 << (p & 63)
	x.bmSummary[p>>12] |= 1 << ((p >> 6) & 63)
	if s := p >> 12; s < x.bmHint {
		x.bmHint = s
	}
}

func (x *dfRun) popBitmap() (int32, bool) {
	for s := x.bmHint; s < len(x.bmSummary); s++ {
		sw := x.bmSummary[s]
		if sw == 0 {
			continue
		}
		x.bmHint = s
		wi := s<<6 | bits.TrailingZeros64(sw)
		w := x.bmWords[wi]
		p := wi<<6 | bits.TrailingZeros64(w)
		w &= w - 1
		x.bmWords[wi] = w
		if w == 0 {
			x.bmSummary[s] &^= 1 << (wi & 63)
		}
		return x.prog.prioSid[p], true
	}
	x.bmHint = len(x.bmSummary)
	return 0, false
}

// recvMsg charges the i-th receive of n in program order and returns
// the payload (shared backing array, read-only — as with the machine's
// zero-copy delivery).
func (x *dfRun) recvMsg(n *dfNode, i int) []float64 {
	s := &x.slots[n.recvs[i]]
	x.led.ChargeRecv(int(n.rank), s.clock, int64(len(s.data)))
	return s.data
}

// sendMsg charges the i-th send of n, publishes the payload into the
// message slot and credits the consumer's dependency. Publishing
// happens mid-node, as soon as the machine would have sent — a relay's
// children never wait for the relay's local compute.
func (x *dfRun) sendMsg(n *dfNode, w, i int, data []float64) {
	msg := n.sends[i]
	consumer := x.prog.msgConsumer[msg]
	snap := x.led.ChargeSend(int(n.rank), int(x.prog.micros[consumer].rank), int64(len(data)))
	x.slots[msg] = dfSlot{data: data, clock: snap}
	x.complete(x.prog.superOf[consumer], w)
}

func (x *dfRun) pack(m *semiring.Matrix) []float64 {
	switch x.pl.Wire {
	case WireDense:
		return append([]float64(nil), m.V...)
	case WirePruned:
		return semiring.PackPruned(m, nil, nil, false)
	default:
		return semiring.PackMatrix(m)
	}
}

// packPruned packs a broadcast payload under the op's frozen demand
// descriptor; identical to planExec.packPruned.
func (x *dfRun) packPruned(m *semiring.Matrix, prune *PruneSpec) []float64 {
	if x.pl.Wire == WirePruned && prune != nil {
		return semiring.PackPruned(m, prune.Rows, prune.Cols, prune.ZeroDiag)
	}
	return x.pack(m)
}

func (x *dfRun) unpack(data []float64, rows, cols int) *semiring.Matrix {
	if x.pl.Wire == WireDense {
		// Copy: the payload backing array is shared by every receiver of
		// the collective (and retained in the message slot), so an
		// aliasing decode would let a block mutation corrupt siblings.
		return semiring.FromSlice(rows, cols, append([]float64(nil), data...))
	}
	return semiring.UnpackMatrix(data, rows, cols)
}

// bcastData replays one rank's role in a broadcast: the root packs its
// block (a copy — consumers share the payload), everyone else receives
// once, then all forward down the tree. Charge order — receive, sends,
// then the caller's consumer work — is the machine's.
func (x *dfRun) bcastData(n *dfNode, w int, op *BcastOp, rs *dfRankState) []float64 {
	var data []float64
	if int(n.rank) == op.Root {
		data = x.packPruned(rs.A, op.Prune)
	} else {
		data = x.recvMsg(n, 0)
	}
	for i := range n.sends {
		x.sendMsg(n, w, i, data)
	}
	return data
}

// execSuper runs every micro-node of a super-node in program order,
// then credits the rank's next super-node. Runs of R2 panel updates
// inside the super execute through the fused kernel.
func (x *dfRun) execSuper(sid int32, w int, a *semiring.Arena) {
	s := &x.prog.supers[sid]
	end := s.first + s.count
	for mi := s.first; mi < end; {
		if x.labels != nil {
			n := &x.prog.micros[mi]
			next := mi
			pprof.Do(context.Background(), x.labels[n.kind][n.level+1], func(context.Context) {
				next = x.execAt(mi, end, w, a)
			})
			mi = next
		} else {
			mi = x.execAt(mi, end, w, a)
		}
	}
	if s.next >= 0 {
		x.complete(s.next, w)
	}
}

// execAt executes the micro-node at mi — or, when mi starts a run of
// consumer R2 panel updates inside the super-node, the whole fused
// chain — and returns the index of the next unexecuted micro-node.
func (x *dfRun) execAt(mi, end int32, w int, a *semiring.Arena) int32 {
	if x.isPanelStep(mi) && mi+1 < end && x.isPanelStep(mi+1) {
		return x.execPanelChain(mi, end, w, a)
	}
	x.exec(mi, w, a)
	return mi + 1
}

// isPanelStep reports whether micro-node mi is a non-root R2 consumer:
// one receive, a panel update of the owned block, maybe relays — the
// shape PanelUpdateMultiScratch fuses.
func (x *dfRun) isPanelStep(mi int32) bool {
	n := &x.prog.micros[mi]
	if n.kind != dfR2 {
		return false
	}
	op := &x.pl.Levels[n.level].R2[n.op]
	return int(n.rank) != op.Root && contains(op.Consumers, int(n.rank))
}

// execPanelChain runs a maximal fused run of consumer R2 panel updates
// [start, j) through the fused kernel. The destination block stays hot
// across the accumulations; the hooks interleave the ledger charges at
// exactly the points the unfused nodes would have issued them — recv,
// relays and operand memory before each multiply, flops and release
// after — so the charge sequence is the per-step concatenation of the
// unfused nodes' sequences, in the same order. Operand decode happens
// up front: decoding is numeric-only (no ledger traffic), so hoisting
// it preserves bit-identity.
func (x *dfRun) execPanelChain(start, end int32, w int, a *semiring.Arena) int32 {
	j := start + 1
	for j < end && x.isPanelStep(j) {
		j++
	}
	rank := int(x.prog.micros[start].rank)
	rs := &x.ranks[rank]
	cnt := int(j - start)
	steps := make([]semiring.PanelStep, cnt)
	raw := make([][]float64, cnt)
	for i := range steps {
		n := &x.prog.micros[start+int32(i)]
		op := &x.pl.Levels[n.level].R2[n.op]
		raw[i] = x.slots[n.recvs[0]].data
		steps[i] = semiring.PanelStep{
			D:     x.unpack(raw[i], x.sizes[op.BI], x.sizes[op.BJ]),
			Right: op.Kind != opR2Left,
		}
	}
	x.kern.PanelUpdateMultiScratch(rs.A, steps, a,
		func(i int) {
			n := &x.prog.micros[start+int32(i)]
			x.led.SetSendClass(rank, comm.SendR2)
			s := &x.slots[n.recvs[0]]
			x.led.ChargeRecv(rank, s.clock, int64(len(s.data)))
			for si := range n.sends {
				x.sendMsg(n, w, si, raw[i])
			}
			x.led.AddMemory(rank, int64(len(steps[i].D.V)))
		},
		func(i int, ops int64) {
			x.led.AddFlops(rank, ops)
			x.led.AddMemory(rank, -int64(len(steps[i].D.V)))
		})
	return j
}

// exec runs one micro-node. Each case mirrors the corresponding lines
// of planExec.level; the charge sequences must stay textually parallel
// — that correspondence is the bit-identity proof obligation.
func (x *dfRun) exec(id int32, w int, a *semiring.Arena) {
	n := &x.prog.micros[id]
	rank := int(n.rank)
	rs := &x.ranks[rank]
	var lv *planLevel
	if n.level >= 0 {
		lv = &x.pl.Levels[n.level]
	}
	// Classify this node's sends for the words-by-phase breakdown,
	// matching the sticky per-phase classes planExec.level sets. Only
	// sending kinds matter; the rank's nodes are serialized by program
	// order, so the per-rank sticky class is race-free.
	switch n.kind {
	case dfR2:
		x.led.SetSendClass(rank, comm.SendR2)
	case dfR3:
		x.led.SetSendClass(rank, comm.SendR3)
	case dfR4Col, dfR4Row:
		x.led.SetSendClass(rank, comm.SendR4Panel)
	case dfReduce:
		x.led.SetSendClass(rank, comm.SendR4Reduce)
	case dfSeq:
		x.led.SetSendClass(rank, comm.SendR4Seq)
	case dfTrans:
		x.led.SetSendClass(rank, comm.SendTrans)
	}
	switch n.kind {
	case dfInit:
		x.led.SetMemory(rank, int64(len(rs.A.V)))

	case dfDiag:
		x.led.AddFlops(rank, x.kern.ClassicalFW(rs.A))

	case dfR2:
		op := &lv.R2[n.op]
		data := x.bcastData(n, w, op, rs)
		if contains(op.Consumers, rank) {
			dk := x.unpack(data, x.sizes[op.BI], x.sizes[op.BJ])
			x.led.AddMemory(rank, int64(len(dk.V)))
			if op.Kind == opR2Left {
				x.led.AddFlops(rank, x.kern.PanelUpdateLeftScratch(rs.A, dk, a))
			} else {
				x.led.AddFlops(rank, x.kern.PanelUpdateRightScratch(rs.A, dk, a))
			}
			x.led.AddMemory(rank, -int64(len(dk.V)))
		}

	case dfR3:
		op := &lv.R3[n.op]
		data := x.bcastData(n, w, op, rs)
		if contains(op.Consumers, rank) {
			m := x.unpack(data, x.sizes[op.BI], x.sizes[op.BJ])
			x.led.AddMemory(rank, int64(len(m.V)))
			if op.Kind == opR3Row {
				rs.rowPanel = m
			} else {
				rs.colPanel = m
			}
		}

	case dfR3Mul:
		if rs.rowPanel != nil && rs.colPanel != nil {
			x.led.AddFlops(rank, x.kern.MulAddInto(rs.A, rs.rowPanel, rs.colPanel))
		}
		if rs.rowPanel != nil {
			x.led.AddMemory(rank, -int64(len(rs.rowPanel.V)))
		}
		if rs.colPanel != nil {
			x.led.AddMemory(rank, -int64(len(rs.colPanel.V)))
		}
		rs.rowPanel, rs.colPanel = nil, nil

	case dfR4Col:
		op := &lv.R4Col[n.op]
		data := x.bcastData(n, w, op, rs)
		if contains(op.Consumers, rank) {
			rs.unitAik = x.unpack(data, x.sizes[op.BI], x.sizes[op.BJ])
			x.led.AddMemory(rank, int64(len(rs.unitAik.V)))
		}

	case dfR4Row:
		op := &lv.R4Row[n.op]
		data := x.bcastData(n, w, op, rs)
		if contains(op.Consumers, rank) {
			rs.unitAkj = x.unpack(data, x.sizes[op.BI], x.sizes[op.BJ])
			x.led.AddMemory(rank, int64(len(rs.unitAkj.V)))
		}

	case dfUnit:
		u := &lv.R4Units[n.op]
		rs.unit = semiring.NewMatrix(x.sizes[u.I], x.sizes[u.J])
		x.led.AddMemory(rank, int64(len(rs.unit.V)))
		x.led.AddFlops(rank, x.kern.MulAddInto(rs.unit, rs.unitAik, rs.unitAkj))

	case dfReduce:
		op := &lv.R4Reduce[n.op]
		if contains(op.Group, rank) {
			data := rs.unit.V
			for i := range n.recvs {
				semiring.MinInto(data, x.recvMsg(n, i))
			}
			for i := range n.sends {
				x.sendMsg(n, w, i, data)
			}
			if rank == op.Root {
				semiring.MinInto(rs.A.V, data)
				x.led.AddFlops(rank, int64(len(data)))
			}
		} else {
			// External root: one receive from the group's first member.
			res := x.recvMsg(n, 0)
			semiring.MinInto(rs.A.V, res)
			x.led.AddFlops(rank, int64(len(res)))
		}

	case dfR4Done:
		if rs.unit != nil {
			x.led.AddMemory(rank, -int64(len(rs.unit.V)))
		}
		if rs.unitAik != nil {
			x.led.AddMemory(rank, -int64(len(rs.unitAik.V)))
		}
		if rs.unitAkj != nil {
			x.led.AddMemory(rank, -int64(len(rs.unitAkj.V)))
		}
		rs.unit, rs.unitAik, rs.unitAkj = nil, nil, nil

	case dfSeq:
		op := &lv.R4Seq[n.op]
		si := 0
		if rank == op.AikOwner && op.Owner != op.AikOwner {
			x.sendMsg(n, w, si, x.packPruned(rs.A, op.PruneA))
			si++
		}
		if rank == op.AkjOwner && op.Owner != op.AkjOwner {
			x.sendMsg(n, w, si, x.packPruned(rs.A, op.PruneB))
		}
		if rank == op.Owner {
			ri := 0
			var aik, akj *semiring.Matrix
			var transient int64
			if op.Owner == op.AikOwner {
				aik = rs.A
			} else {
				aik = x.unpack(x.recvMsg(n, ri), x.sizes[op.BI], x.sizes[op.K])
				ri++
				transient += int64(len(aik.V))
			}
			if op.Owner == op.AkjOwner {
				akj = rs.A
			} else {
				akj = x.unpack(x.recvMsg(n, ri), x.sizes[op.K], x.sizes[op.BJ])
				transient += int64(len(akj.V))
			}
			x.led.AddMemory(rank, transient)
			x.led.AddFlops(rank, x.kern.MulAddInto(rs.A, aik, akj))
			x.led.AddMemory(rank, -transient)
		}

	case dfTrans:
		op := &lv.Trans[n.op]
		if rank == op.Src {
			x.sendMsg(n, w, 0, x.pack(rs.A))
		}
		if rank == op.Dst {
			src := x.unpack(x.recvMsg(n, 0), x.sizes[op.BI], x.sizes[op.BJ])
			rs.A.CopyFrom(src.Transpose())
		}

	case dfMark:
		x.led.Mark(rank, x.prog.levelNames[n.level])
	}
}
