package apsp

import (
	"fmt"
	"sync/atomic"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/semiring"
)

// The dataflow executor. A Plan freezes the entire communication
// schedule — every collective's group order, root and tag — so nothing
// about an Execute needs discovering at run time: the machine
// executor's p free-running goroutines, cond-var mailboxes and
// linear-scan message matching only re-derive, expensively, a partial
// order that is already known. This file lowers the per-rank step
// lists into that partial order explicitly — a static dependency graph
// whose nodes are (rank, op) participations and whose edges are each
// rank's program order plus one edge per point-to-point message hidden
// inside the collectives — and runs ready nodes on a bounded worker
// pool (semiring.Pool, GOMAXPROCS-ish workers) instead of p rank
// goroutines. Message payloads move by direct buffer handoff through
// preallocated slots; cost accounting becomes deterministic replay on
// a comm.Replay ledger, advancing each rank's clock in the rank's plan
// order as its nodes retire.
//
// The result is bit-identical to the machine executor in distances and
// in every charged cost. The argument (spelled out in DESIGN.md):
// both executors issue, per rank, the same sequence of charge
// operations in the same order — program order is enforced by the
// next-node edge, each receive is wired to the unique (src, tag)
// message the machine's matching would have picked (tags are unique
// per plan op and a rank receives at most once per (src, tag) within
// an op), and ChargeSend/ChargeRecv reproduce Ctx.Send/Ctx.Recv's
// snapshot-then-charge and merge-then-charge rules verbatim. Clocks
// are a deterministic fold over those sequences, so they agree by
// induction over plan order; the numeric kernels see the same operand
// bytes in the same order, so distances agree bit for bit.

// Node kinds. One dfNode is one rank's participation in one plan op,
// or a local glue step (init, the R3 combine, the R4 release, a phase
// mark) that the machine executor ran inline between collectives.
const (
	dfInit   uint8 = iota // SetMemory(len(A)) — each rank's first node
	dfDiag                // R1: ClassicalFW on the owned diagonal block
	dfR2                  // R2 pivot broadcast + panel update
	dfR3                  // R3 panel broadcast + capture
	dfR3Mul               // R3 combine: multiply captured panels, release
	dfR4Col               // R4 column-panel broadcast + left-operand capture
	dfR4Row               // R4 row-panel broadcast + right-operand capture
	dfUnit                // R4 unit product
	dfReduce              // R4 binomial reduce participation
	dfR4Done              // R4 release of unit and captured operands
	dfSeq                 // R4 sequential-ablation exchange
	dfTrans               // transpose send/receive
	dfMark                // per-level phase mark
)

// dfNode is one vertex of the lowered graph. recvs and sends list the
// node's message slots in charge order — the exact order the machine
// executor would have charged them on this rank.
type dfNode struct {
	rank  int32
	kind  uint8
	level int32 // index into Plan.Levels, -1 for dfInit
	op    int32 // index into the level's phase list (kind-dependent)
	next  int32 // same-rank successor in program order, -1 if last
	deps  int32 // initial dependency count: program pred + len(recvs)
	recvs []int32
	sends []int32
}

// dfProgram is the complete lowered graph: immutable once built,
// shared by every concurrent Execute of the plan.
type dfProgram struct {
	nodes       []dfNode
	msgConsumer []int32  // message slot -> consuming node
	seeds       []int32  // nodes with deps == 0 (each rank's dfInit)
	levelNames  []string // "level-1".. precomputed mark ids
	maxScratch  int      // max ScratchWords over ranks: per-worker arena size
}

// dataflow returns the plan's lowered graph, built once and cached.
func (pl *Plan) dataflow() *dfProgram {
	pl.dfOnce.Do(func() { pl.df = lowerPlan(pl) })
	return pl.df
}

// dfOpKey identifies one rank's node for one op during lowering, so
// the wiring pass can find both endpoints of every message.
type dfOpKey struct {
	level int32
	phase uint8
	op    int32
	rank  int32
}

// lowerPlan builds the dependency graph. Pass 1 emits each rank's
// nodes in the rank's program order (the machine executor's order in
// exec.go, exactly); pass 2 wires one message slot per point-to-point
// send by replaying the binomial-tree arithmetic of comm's Bcast,
// Reduce and ReduceTo; pass 3 counts dependencies.
func lowerPlan(pl *Plan) *dfProgram {
	prog := &dfProgram{}
	lookup := make(map[dfOpKey]int32)
	last := make([]int32, pl.P)
	heads := make([]int32, 0, pl.P)
	for i := range last {
		last[i] = -1
	}
	emit := func(rank int, kind uint8, level, op int32) int32 {
		id := int32(len(prog.nodes))
		prog.nodes = append(prog.nodes, dfNode{rank: int32(rank), kind: kind, level: level, op: op, next: -1})
		if last[rank] >= 0 {
			prog.nodes[last[rank]].next = id
		} else {
			heads = append(heads, id)
		}
		last[rank] = id
		return id
	}
	for li := range pl.Levels {
		prog.levelNames = append(prog.levelNames, fmt.Sprintf("level-%d", li+1))
	}

	// Pass 1: per-rank program order, mirroring planExec.run/level.
	for rank := 0; rank < pl.P; rank++ {
		if w := pl.ScratchWords(rank); w > prog.maxScratch {
			prog.maxScratch = w
		}
		emit(rank, dfInit, -1, -1)
		for li := range pl.Levels {
			lv := &pl.Levels[li]
			st := &pl.ranks[rank][li]
			l := int32(li)
			if st.Diag {
				emit(rank, dfDiag, l, -1)
			}
			for _, x := range st.R2 {
				lookup[dfOpKey{l, dfR2, x, int32(rank)}] = emit(rank, dfR2, l, x)
			}
			captures := false
			for _, x := range st.R3 {
				lookup[dfOpKey{l, dfR3, x, int32(rank)}] = emit(rank, dfR3, l, x)
				captures = captures || contains(lv.R3[x].Consumers, rank)
			}
			if captures {
				emit(rank, dfR3Mul, l, -1)
			}
			r4held := false
			for _, x := range st.R4Col {
				lookup[dfOpKey{l, dfR4Col, x, int32(rank)}] = emit(rank, dfR4Col, l, x)
				r4held = r4held || contains(lv.R4Col[x].Consumers, rank)
			}
			for _, x := range st.R4Row {
				lookup[dfOpKey{l, dfR4Row, x, int32(rank)}] = emit(rank, dfR4Row, l, x)
				r4held = r4held || contains(lv.R4Row[x].Consumers, rank)
			}
			if st.Unit >= 0 {
				emit(rank, dfUnit, l, st.Unit)
				r4held = true
			}
			for _, x := range st.Reduce {
				lookup[dfOpKey{l, dfReduce, x, int32(rank)}] = emit(rank, dfReduce, l, x)
			}
			if r4held {
				emit(rank, dfR4Done, l, -1)
			}
			for _, x := range st.Seq {
				lookup[dfOpKey{l, dfSeq, x, int32(rank)}] = emit(rank, dfSeq, l, x)
			}
			for _, x := range st.Trans {
				lookup[dfOpKey{l, dfTrans, x, int32(rank)}] = emit(rank, dfTrans, l, x)
			}
			emit(rank, dfMark, l, -1)
		}
	}

	// Pass 2: message wiring.
	newMsg := func(consumer int32) int32 {
		m := int32(len(prog.msgConsumer))
		prog.msgConsumer = append(prog.msgConsumer, consumer)
		return m
	}
	get := func(level int32, phase uint8, op int32, rank int) int32 {
		id, ok := lookup[dfOpKey{level, phase, op, int32(rank)}]
		if !ok {
			panic(fmt.Sprintf("apsp: dataflow lowering: no node for rank %d in op %d of phase %d, level %d", rank, op, phase, level+1))
		}
		return id
	}
	link := func(from, to, msg int32) {
		prog.nodes[from].sends = append(prog.nodes[from].sends, msg)
		prog.nodes[to].recvs = append(prog.nodes[to].recvs, msg)
	}
	// wireBcast replays comm.Ctx.bcast: a non-root member receives once
	// from the rank differing in its lowest relative-position bit, then
	// forwards at decreasing bit distances. Iterating every member and
	// wiring its sends in that decreasing-mask order reproduces the
	// machine's per-rank send order; each receiver has exactly one recv.
	wireBcast := func(level int32, phase uint8, ops []BcastOp) {
		for x := range ops {
			op := &ops[x]
			q := len(op.Group)
			rootPos := 0
			for i, r := range op.Group {
				if r == op.Root {
					rootPos = i
					break
				}
			}
			for pos, rank := range op.Group {
				rel := (pos - rootPos + q) % q
				node := get(level, phase, int32(x), rank)
				mask := 1
				for mask < q && rel&mask == 0 {
					mask <<= 1
				}
				for m := mask >> 1; m > 0; m >>= 1 {
					if rel+m < q {
						child := get(level, phase, int32(x), op.Group[(rel+m+rootPos)%q])
						link(node, child, newMsg(child))
					}
				}
			}
		}
	}
	for li := range pl.Levels {
		lv := &pl.Levels[li]
		l := int32(li)
		wireBcast(l, dfR2, lv.R2)
		wireBcast(l, dfR3, lv.R3)
		wireBcast(l, dfR4Col, lv.R4Col)
		wireBcast(l, dfR4Row, lv.R4Row)
		// Reduce trees, replaying comm.Ctx.ReduceTo: reduce to the root
		// if it is a member, else to group[0] which forwards one extra
		// message to the external root. Receives are wired from the
		// receiver side in increasing-mask order (the machine's charge
		// order); each non-root member's unique send is the matching
		// endpoint, appended exactly once.
		for x := range lv.R4Reduce {
			op := &lv.R4Reduce[x]
			q := len(op.Group)
			rootInGroup := contains(op.Group, op.Root)
			effRoot := op.Root
			if !rootInGroup {
				effRoot = op.Group[0]
			}
			rootPos := 0
			for i, r := range op.Group {
				if r == effRoot {
					rootPos = i
					break
				}
			}
			for pos, rank := range op.Group {
				rel := (pos - rootPos + q) % q
				node := get(l, dfReduce, int32(x), rank)
				for mask := 1; mask < q; mask <<= 1 {
					if rel&mask != 0 {
						break // this member's send is wired by its parent
					}
					if srcRel := rel | mask; srcRel < q {
						src := get(l, dfReduce, int32(x), op.Group[(srcRel+rootPos)%q])
						link(src, node, newMsg(node))
					}
				}
			}
			if !rootInGroup {
				rootNode := get(l, dfReduce, int32(x), op.Root)
				g0 := get(l, dfReduce, int32(x), op.Group[0])
				link(g0, rootNode, newMsg(rootNode))
			}
		}
		for x := range lv.R4Seq {
			op := &lv.R4Seq[x]
			owner := get(l, dfSeq, int32(x), op.Owner)
			if op.AikOwner != op.Owner {
				a := get(l, dfSeq, int32(x), op.AikOwner)
				link(a, owner, newMsg(owner)) // aik first: the owner receives TagA before TagB
			}
			if op.AkjOwner != op.Owner {
				b := get(l, dfSeq, int32(x), op.AkjOwner)
				link(b, owner, newMsg(owner))
			}
		}
		for x := range lv.Trans {
			op := &lv.Trans[x]
			src := get(l, dfTrans, int32(x), op.Src)
			dst := get(l, dfTrans, int32(x), op.Dst)
			link(src, dst, newMsg(dst))
		}
	}

	// Pass 3: dependency counts and seeds.
	for id := range prog.nodes {
		prog.nodes[id].deps = int32(len(prog.nodes[id].recvs)) + 1
	}
	for _, id := range heads {
		prog.nodes[id].deps--
	}
	for id := range prog.nodes {
		if prog.nodes[id].deps == 0 {
			prog.seeds = append(prog.seeds, int32(id))
		}
	}
	return prog
}

// dfSlot carries one message: the payload (zero-copy handoff, exactly
// like the machine's mailboxes) and the sender's pre-send clock
// snapshot for the receiver's max-merge.
type dfSlot struct {
	data  []float64
	clock comm.Cost
}

const dfStop = int32(-1) // ready-queue sentinel: worker shutdown

// dfRankState is one rank's mutable numeric state during a run: the
// owned block plus the captured panels/operands that planExec held in
// level-scoped locals. The combine/release nodes clear them, so state
// never leaks across levels. Only the rank's own nodes touch it, and
// those are serialized by the program-order edge.
type dfRankState struct {
	A                      *semiring.Matrix
	rowPanel, colPanel     *semiring.Matrix
	unit, unitAik, unitAkj *semiring.Matrix
}

// dfRun is the per-Execute runtime state of the dataflow executor.
type dfRun struct {
	pl      *Plan
	prog    *dfProgram
	kern    semiring.Kernel
	sizes   []int
	led     *comm.Replay
	ranks   []dfRankState
	slots   []dfSlot
	pending []int32 // per-node remaining deps, decremented atomically
	ready   chan int32
	workers int
	retired atomic.Int32
	live    atomic.Int32 // nodes enqueued but not yet retired
	done    atomic.Bool
	err     error // written once by the shutdown winner, read after join

	// Serial mode (workers == 1, e.g. GOMAXPROCS=1): one goroutine
	// executes everything, so the ready channel, sentinels and atomic
	// counters are pure overhead — a plain stack replaces them.
	serial bool
	queue  []int32
}

// executeDataflow is the dataflow counterpart of executeMachine.
func (pl *Plan) executeDataflow(ly *Layout, kern semiring.Kernel) (*DistResult, error) {
	prog := pl.dataflow()
	blocks, release := ly.BlocksPooled()
	pool := semiring.DefaultPool
	workers := pool.Size()
	if workers > pl.P {
		workers = pl.P
	}
	if workers < 1 {
		workers = 1
	}
	x := &dfRun{
		pl:      pl,
		prog:    prog,
		kern:    kern,
		sizes:   pl.ND.Sizes,
		led:     comm.NewReplay(pl.P),
		ranks:   make([]dfRankState, pl.P),
		slots:   make([]dfSlot, len(prog.msgConsumer)),
		pending: make([]int32, len(prog.nodes)),
		workers: workers,
		serial:  workers == 1,
	}
	for r := 0; r < pl.P; r++ {
		x.ranks[r].A = blocks[r/pl.NSup+1][r%pl.NSup+1]
	}
	for id := range prog.nodes {
		x.pending[id] = prog.nodes[id].deps
	}
	if x.serial {
		x.queue = append(make([]int32, 0, 64), prog.seeds...)
		x.runSerial(semiring.NewArena(prog.maxScratch))
	} else {
		// Capacity for every node plus every sentinel: enqueues never block.
		x.ready = make(chan int32, len(prog.nodes)+workers)
		for _, id := range prog.seeds {
			x.live.Add(1)
			x.ready <- id
		}
		// One scratch arena per worker, reused across every op the
		// worker executes — w arenas total instead of the machine
		// path's p.
		arenas := make([]*semiring.Arena, workers)
		for i := range arenas {
			arenas[i] = semiring.NewArena(prog.maxScratch)
		}
		pool.Drive(workers, func(i int) { x.drain(arenas[i]) })
	}
	if x.err != nil {
		return nil, fmt.Errorf("apsp: sparse solver failed: %w", x.err)
	}
	phases, err := x.led.PhaseCosts()
	if err != nil {
		return nil, fmt.Errorf("apsp: phase accounting failed: %w", err)
	}
	dist := ly.AssembleOriginal(blocks)
	release()
	return &DistResult{
		Dist:    dist,
		Report:  x.led.Report(),
		Layout:  ly,
		P:       pl.P,
		Phases:  phases,
		Traffic: x.led.Traffic(),
	}, nil
}

// runSerial is the single-worker loop: pop, execute, repeat. The
// dependency counts make the queue a topological traversal, so an
// empty queue before every node ran is the same lowering-cycle
// condition the concurrent path's live counter detects.
func (x *dfRun) runSerial(a *semiring.Arena) {
	defer func() {
		if rec := recover(); rec != nil {
			x.err = fmt.Errorf("dataflow op panicked: %v", rec)
		}
	}()
	done := 0
	for len(x.queue) > 0 {
		id := x.queue[len(x.queue)-1]
		x.queue = x.queue[:len(x.queue)-1]
		x.exec(id, a)
		done++
	}
	if done < len(x.prog.nodes) {
		x.err = fmt.Errorf("dataflow executor stalled after %d of %d ops (dependency cycle in lowering)", done, len(x.prog.nodes))
	}
}

// drain executes ready nodes until a shutdown sentinel arrives.
func (x *dfRun) drain(a *semiring.Arena) {
	for {
		id := <-x.ready
		if id < 0 {
			return
		}
		x.execNode(id, a)
	}
}

func (x *dfRun) execNode(id int32, a *semiring.Arena) {
	defer func() {
		if rec := recover(); rec != nil {
			n := &x.prog.nodes[id]
			x.shutdown(fmt.Errorf("dataflow op %d (rank %d, kind %d) panicked: %v", id, n.rank, n.kind, rec))
		}
	}()
	x.exec(id, a)
	x.retire()
}

// complete records one satisfied dependency of node; the last one
// enqueues it. The atomic decrement orders every prior write of the
// dependency's producer (slot payloads, rank state) before the node's
// execution.
func (x *dfRun) complete(node int32) {
	if x.serial {
		x.pending[node]--
		if x.pending[node] == 0 {
			x.queue = append(x.queue, node)
		}
		return
	}
	if atomic.AddInt32(&x.pending[node], -1) == 0 {
		x.live.Add(1)
		x.ready <- node
	}
}

// retire finishes a node. Termination and stall detection are exact,
// with no timers: live counts nodes enqueued but not retired, and
// enqueues only happen from inside executing (hence unretired, hence
// live-counted) nodes, so live reaching zero before every node retired
// proves nothing can ever run again — a lowering bug, reported instead
// of hanging. The machine executor needs a sampling watchdog for the
// same job because its ranks block in ways it cannot count.
func (x *dfRun) retire() {
	r := x.retired.Add(1)
	if x.live.Add(-1) == 0 && int(r) < len(x.prog.nodes) {
		x.shutdown(fmt.Errorf("dataflow executor stalled after %d of %d ops (dependency cycle in lowering)", r, len(x.prog.nodes)))
		return
	}
	if int(r) == len(x.prog.nodes) {
		x.shutdown(nil)
	}
}

// shutdown ends the run once: records the error (if any) and wakes
// every worker with a sentinel.
func (x *dfRun) shutdown(err error) {
	if !x.done.CompareAndSwap(false, true) {
		return
	}
	x.err = err
	for i := 0; i < x.workers; i++ {
		x.ready <- dfStop
	}
}

// recvMsg charges the i-th receive of n in program order and returns
// the payload (shared backing array, read-only — as with the machine's
// zero-copy delivery).
func (x *dfRun) recvMsg(n *dfNode, i int) []float64 {
	s := &x.slots[n.recvs[i]]
	x.led.ChargeRecv(int(n.rank), s.clock, int64(len(s.data)))
	return s.data
}

// sendMsg charges the i-th send of n, publishes the payload into the
// message slot and credits the consumer's dependency. Publishing
// happens mid-node, as soon as the machine would have sent — a relay's
// children never wait for the relay's local compute.
func (x *dfRun) sendMsg(n *dfNode, i int, data []float64) {
	msg := n.sends[i]
	consumer := x.prog.msgConsumer[msg]
	snap := x.led.ChargeSend(int(n.rank), int(x.prog.nodes[consumer].rank), int64(len(data)))
	x.slots[msg] = dfSlot{data: data, clock: snap}
	x.complete(consumer)
}

func (x *dfRun) pack(m *semiring.Matrix) []float64 {
	switch x.pl.Wire {
	case WireDense:
		return append([]float64(nil), m.V...)
	case WirePruned:
		return semiring.PackPruned(m, nil, nil, false)
	default:
		return semiring.PackMatrix(m)
	}
}

// packPruned packs a broadcast payload under the op's frozen demand
// descriptor; identical to planExec.packPruned.
func (x *dfRun) packPruned(m *semiring.Matrix, prune *PruneSpec) []float64 {
	if x.pl.Wire == WirePruned && prune != nil {
		return semiring.PackPruned(m, prune.Rows, prune.Cols, prune.ZeroDiag)
	}
	return x.pack(m)
}

func (x *dfRun) unpack(data []float64, rows, cols int) *semiring.Matrix {
	if x.pl.Wire == WireDense {
		// Copy: the payload backing array is shared by every receiver of
		// the collective (and retained in the message slot), so an
		// aliasing decode would let a block mutation corrupt siblings.
		return semiring.FromSlice(rows, cols, append([]float64(nil), data...))
	}
	return semiring.UnpackMatrix(data, rows, cols)
}

// bcastData replays one rank's role in a broadcast: the root packs its
// block (a copy — consumers share the payload), everyone else receives
// once, then all forward down the tree. Charge order — receive, sends,
// then the caller's consumer work — is the machine's.
func (x *dfRun) bcastData(n *dfNode, op *BcastOp, rs *dfRankState) []float64 {
	var data []float64
	if int(n.rank) == op.Root {
		data = x.packPruned(rs.A, op.Prune)
	} else {
		data = x.recvMsg(n, 0)
	}
	for i := range n.sends {
		x.sendMsg(n, i, data)
	}
	return data
}

// exec runs one node. Each case mirrors the corresponding lines of
// planExec.level; the charge sequences must stay textually parallel —
// that correspondence is the bit-identity proof obligation.
func (x *dfRun) exec(id int32, a *semiring.Arena) {
	n := &x.prog.nodes[id]
	rank := int(n.rank)
	rs := &x.ranks[rank]
	var lv *planLevel
	if n.level >= 0 {
		lv = &x.pl.Levels[n.level]
	}
	// Classify this node's sends for the words-by-phase breakdown,
	// matching the sticky per-phase classes planExec.level sets. Only
	// sending kinds matter; the rank's nodes are serialized by program
	// order, so the per-rank sticky class is race-free.
	switch n.kind {
	case dfR2:
		x.led.SetSendClass(rank, comm.SendR2)
	case dfR3:
		x.led.SetSendClass(rank, comm.SendR3)
	case dfR4Col, dfR4Row:
		x.led.SetSendClass(rank, comm.SendR4Panel)
	case dfReduce:
		x.led.SetSendClass(rank, comm.SendR4Reduce)
	case dfSeq:
		x.led.SetSendClass(rank, comm.SendR4Seq)
	case dfTrans:
		x.led.SetSendClass(rank, comm.SendTrans)
	}
	switch n.kind {
	case dfInit:
		x.led.SetMemory(rank, int64(len(rs.A.V)))

	case dfDiag:
		x.led.AddFlops(rank, x.kern.ClassicalFW(rs.A))

	case dfR2:
		op := &lv.R2[n.op]
		data := x.bcastData(n, op, rs)
		if contains(op.Consumers, rank) {
			dk := x.unpack(data, x.sizes[op.BI], x.sizes[op.BJ])
			x.led.AddMemory(rank, int64(len(dk.V)))
			if op.Kind == opR2Left {
				x.led.AddFlops(rank, x.kern.PanelUpdateLeftScratch(rs.A, dk, a))
			} else {
				x.led.AddFlops(rank, x.kern.PanelUpdateRightScratch(rs.A, dk, a))
			}
			x.led.AddMemory(rank, -int64(len(dk.V)))
		}

	case dfR3:
		op := &lv.R3[n.op]
		data := x.bcastData(n, op, rs)
		if contains(op.Consumers, rank) {
			m := x.unpack(data, x.sizes[op.BI], x.sizes[op.BJ])
			x.led.AddMemory(rank, int64(len(m.V)))
			if op.Kind == opR3Row {
				rs.rowPanel = m
			} else {
				rs.colPanel = m
			}
		}

	case dfR3Mul:
		if rs.rowPanel != nil && rs.colPanel != nil {
			x.led.AddFlops(rank, x.kern.MulAddInto(rs.A, rs.rowPanel, rs.colPanel))
		}
		if rs.rowPanel != nil {
			x.led.AddMemory(rank, -int64(len(rs.rowPanel.V)))
		}
		if rs.colPanel != nil {
			x.led.AddMemory(rank, -int64(len(rs.colPanel.V)))
		}
		rs.rowPanel, rs.colPanel = nil, nil

	case dfR4Col:
		op := &lv.R4Col[n.op]
		data := x.bcastData(n, op, rs)
		if contains(op.Consumers, rank) {
			rs.unitAik = x.unpack(data, x.sizes[op.BI], x.sizes[op.BJ])
			x.led.AddMemory(rank, int64(len(rs.unitAik.V)))
		}

	case dfR4Row:
		op := &lv.R4Row[n.op]
		data := x.bcastData(n, op, rs)
		if contains(op.Consumers, rank) {
			rs.unitAkj = x.unpack(data, x.sizes[op.BI], x.sizes[op.BJ])
			x.led.AddMemory(rank, int64(len(rs.unitAkj.V)))
		}

	case dfUnit:
		u := &lv.R4Units[n.op]
		rs.unit = semiring.NewMatrix(x.sizes[u.I], x.sizes[u.J])
		x.led.AddMemory(rank, int64(len(rs.unit.V)))
		x.led.AddFlops(rank, x.kern.MulAddInto(rs.unit, rs.unitAik, rs.unitAkj))

	case dfReduce:
		op := &lv.R4Reduce[n.op]
		if contains(op.Group, rank) {
			data := rs.unit.V
			for i := range n.recvs {
				semiring.MinInto(data, x.recvMsg(n, i))
			}
			for i := range n.sends {
				x.sendMsg(n, i, data)
			}
			if rank == op.Root {
				semiring.MinInto(rs.A.V, data)
				x.led.AddFlops(rank, int64(len(data)))
			}
		} else {
			// External root: one receive from the group's first member.
			res := x.recvMsg(n, 0)
			semiring.MinInto(rs.A.V, res)
			x.led.AddFlops(rank, int64(len(res)))
		}

	case dfR4Done:
		if rs.unit != nil {
			x.led.AddMemory(rank, -int64(len(rs.unit.V)))
		}
		if rs.unitAik != nil {
			x.led.AddMemory(rank, -int64(len(rs.unitAik.V)))
		}
		if rs.unitAkj != nil {
			x.led.AddMemory(rank, -int64(len(rs.unitAkj.V)))
		}
		rs.unit, rs.unitAik, rs.unitAkj = nil, nil, nil

	case dfSeq:
		op := &lv.R4Seq[n.op]
		si := 0
		if rank == op.AikOwner && op.Owner != op.AikOwner {
			x.sendMsg(n, si, x.packPruned(rs.A, op.PruneA))
			si++
		}
		if rank == op.AkjOwner && op.Owner != op.AkjOwner {
			x.sendMsg(n, si, x.packPruned(rs.A, op.PruneB))
		}
		if rank == op.Owner {
			ri := 0
			var aik, akj *semiring.Matrix
			var transient int64
			if op.Owner == op.AikOwner {
				aik = rs.A
			} else {
				aik = x.unpack(x.recvMsg(n, ri), x.sizes[op.BI], x.sizes[op.K])
				ri++
				transient += int64(len(aik.V))
			}
			if op.Owner == op.AkjOwner {
				akj = rs.A
			} else {
				akj = x.unpack(x.recvMsg(n, ri), x.sizes[op.K], x.sizes[op.BJ])
				transient += int64(len(akj.V))
			}
			x.led.AddMemory(rank, transient)
			x.led.AddFlops(rank, x.kern.MulAddInto(rs.A, aik, akj))
			x.led.AddMemory(rank, -transient)
		}

	case dfTrans:
		op := &lv.Trans[n.op]
		if rank == op.Src {
			x.sendMsg(n, 0, x.pack(rs.A))
		}
		if rank == op.Dst {
			src := x.unpack(x.recvMsg(n, 0), x.sizes[op.BI], x.sizes[op.BJ])
			rs.A.CopyFrom(src.Transpose())
		}

	case dfMark:
		x.led.Mark(rank, x.prog.levelNames[n.level])
	}
	if n.next >= 0 {
		x.complete(n.next)
	}
}
