package apsp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// identicalMatrices compares bit for bit: the kernel contract is
// stronger than EqualTol.
func identicalMatrices(a, b *semiring.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.V {
		if math.Float64bits(a.V[i]) != math.Float64bits(b.V[i]) {
			return false
		}
	}
	return true
}

// TestDistributedSolversKernelInvariant is the wiring contract: the
// kernel choice must change nothing observable about a distributed run
// — distances bit for bit, and the whole simulated cost report
// (critical path, per-rank counters, peak memory), since the flop
// clock charges identical operation counts. This is what keeps the
// experiment tables byte-identical across kernels.
func TestDistributedSolversKernelInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := graph.Grid2D(14, 14, graph.RandomWeights(rng, 1, 10))
	const p = 9

	base, err := SparseAPSPWith(g, p, SparseOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, kern := range []semiring.Kernel{semiring.KernelTiled, semiring.KernelPooled} {
		res, err := SparseAPSPWith(g, p, SparseOptions{Seed: 3, Kernel: kern})
		if err != nil {
			t.Fatalf("sparse %v: %v", kern, err)
		}
		if !identicalMatrices(res.Dist, base.Dist) {
			t.Errorf("sparse %v: distances differ from serial", kern)
		}
		if !reflect.DeepEqual(res.Report, base.Report) {
			t.Errorf("sparse %v: cost report differs from serial", kern)
		}
	}

	dcBase, err := DCAPSP(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	fwBase, err := Dist2DFW(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, kern := range []semiring.Kernel{semiring.KernelTiled, semiring.KernelPooled} {
		dc, err := DCAPSPKernel(g, 4, 2, kern)
		if err != nil {
			t.Fatalf("dc %v: %v", kern, err)
		}
		if !identicalMatrices(dc.Dist, dcBase.Dist) || !reflect.DeepEqual(dc.Report, dcBase.Report) {
			t.Errorf("dc %v: run differs from serial", kern)
		}
		fw, err := Dist2DFWKernel(g, 4, kern)
		if err != nil {
			t.Fatalf("2dfw %v: %v", kern, err)
		}
		if !identicalMatrices(fw.Dist, fwBase.Dist) || !reflect.DeepEqual(fw.Report, fwBase.Report) {
			t.Errorf("2dfw %v: run differs from serial", kern)
		}
	}
}

// TestSequentialSolversKernelInvariant covers the sequential wrappers:
// same distances bit for bit and the same operation count per kernel.
func TestSequentialSolversKernelInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.Grid2D(13, 13, graph.RandomWeights(rng, 1, 10))

	fwD, fwOps := FloydWarshall(g)
	bD, bOps := BlockedFloydWarshall(g, 32)
	sfw, err := SuperFW(g, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, kern := range []semiring.Kernel{semiring.KernelTiled, semiring.KernelPooled} {
		d, ops := FloydWarshallKernel(g, kern)
		if ops != fwOps || !identicalMatrices(d, fwD) {
			t.Errorf("FloydWarshall %v: ops=%d want %d (or distances differ)", kern, ops, fwOps)
		}
		d, ops = BlockedFloydWarshallKernel(g, 32, kern)
		if ops != bOps || !identicalMatrices(d, bD) {
			t.Errorf("BlockedFloydWarshall %v: ops=%d want %d (or distances differ)", kern, ops, bOps)
		}
		r, err := SuperFWKernel(g, 3, 7, kern)
		if err != nil {
			t.Fatalf("SuperFW %v: %v", kern, err)
		}
		if r.Ops != sfw.Ops || !identicalMatrices(r.Dist, sfw.Dist) {
			t.Errorf("SuperFW %v: ops=%d want %d (or distances differ)", kern, r.Ops, sfw.Ops)
		}
	}
}
