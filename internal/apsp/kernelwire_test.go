package apsp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// identicalMatrices compares bit for bit: the kernel contract is
// stronger than EqualTol.
func identicalMatrices(a, b *semiring.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.V {
		if math.Float64bits(a.V[i]) != math.Float64bits(b.V[i]) {
			return false
		}
	}
	return true
}

// TestDistributedSolversKernelInvariant is the wiring contract: the
// kernel choice must change nothing observable about a distributed run
// — distances bit for bit, and the whole simulated cost report
// (critical path, per-rank counters, peak memory), since the flop
// clock charges identical operation counts. This is what keeps the
// experiment tables byte-identical across kernels.
func TestDistributedSolversKernelInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := graph.Grid2D(14, 14, graph.RandomWeights(rng, 1, 10))
	const p = 9

	base, err := SparseAPSPWith(g, p, SparseOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, kern := range []semiring.Kernel{semiring.KernelTiled, semiring.KernelPooled, semiring.KernelSparse} {
		res, err := SparseAPSPWith(g, p, SparseOptions{Seed: 3, Kernel: kern})
		if err != nil {
			t.Fatalf("sparse %v: %v", kern, err)
		}
		if !identicalMatrices(res.Dist, base.Dist) {
			t.Errorf("sparse %v: distances differ from serial", kern)
		}
		if !reflect.DeepEqual(res.Report, base.Report) {
			t.Errorf("sparse %v: cost report differs from serial", kern)
		}
	}

	dcBase, err := DCAPSP(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	fwBase, err := Dist2DFW(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, kern := range []semiring.Kernel{semiring.KernelTiled, semiring.KernelPooled, semiring.KernelSparse} {
		dc, err := DCAPSPKernel(g, 4, 2, kern)
		if err != nil {
			t.Fatalf("dc %v: %v", kern, err)
		}
		if !identicalMatrices(dc.Dist, dcBase.Dist) || !reflect.DeepEqual(dc.Report, dcBase.Report) {
			t.Errorf("dc %v: run differs from serial", kern)
		}
		fw, err := Dist2DFWKernel(g, 4, kern)
		if err != nil {
			t.Fatalf("2dfw %v: %v", kern, err)
		}
		if !identicalMatrices(fw.Dist, fwBase.Dist) || !reflect.DeepEqual(fw.Report, fwBase.Report) {
			t.Errorf("2dfw %v: run differs from serial", kern)
		}
	}
}

// TestSparseAPSPMatchesClassicalFWAllKernels is the end-to-end property
// test of the plan/execute, kernel and wire layers together: for random
// graphs from several families, EVERY kernel (including KernelSparse)
// and ALL THREE wire formats, the distributed sparse solver's distances
// are bit-identical to the sequential ClassicalFW reference — and
// within a wire format, the charged cost report is identical across
// kernels and across cold (plan built this solve) vs warm (plan fetched
// from a cache) execution. Weights are small random integers: integer sums are
// exact in float64, so the distributed elimination and the sequential
// sweep fold path sums to identical bits even though they associate
// them differently.
func TestSparseAPSPMatchesClassicalFWAllKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	graphs := []struct {
		name string
		g    *graph.Graph
		p    int
	}{
		{"grid", graph.Grid2D(9, 9, integerWeights(rng, 10)), 9},
		{"gnp", graph.RandomGNP(70, 0.08, integerWeights(rng, 5), rng), 9},
		{"tree", graph.RandomTree(90, graph.UnitWeights, rng), 49},
		{"rmat", graph.RMAT(6, 3, integerWeights(rng, 4), rng), 9},
		{"star", graph.Star(60, graph.UnitWeights), 9},
	}
	for _, tc := range graphs {
		want := classicalReference(tc.g)
		for _, wire := range []WireFormat{WirePacked, WireDense, WirePruned} {
			cache := NewPlanCache()
			var base *DistResult
			for _, kern := range semiring.Kernels() {
				res, err := SparseAPSPWith(tc.g, tc.p, SparseOptions{Seed: 11, Kernel: kern, Wire: wire})
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", tc.name, wire, kern, err)
				}
				if !identicalMatrices(res.Dist, want) {
					t.Errorf("%s/%v/%v: distances differ from ClassicalFW", tc.name, wire, kern)
				}
				if base == nil {
					base = res
				} else if !reflect.DeepEqual(res.Report, base.Report) {
					t.Errorf("%s/%v/%v: cost report differs across kernels", tc.name, wire, kern)
				}
				// The cached-plan path must be indistinguishable from the
				// build-per-solve path (first iteration builds, rest hit).
				warm, err := SparseAPSPWith(tc.g, tc.p, SparseOptions{Seed: 11, Kernel: kern, Wire: wire, Plans: cache})
				if err != nil {
					t.Fatalf("%s/%v/%v (cached): %v", tc.name, wire, kern, err)
				}
				if !identicalMatrices(warm.Dist, want) || !reflect.DeepEqual(warm.Report, base.Report) {
					t.Errorf("%s/%v/%v: plan-cached solve differs from direct solve", tc.name, wire, kern)
				}
			}
			if s := cache.Stats(); s.Builds != 1 || s.Hits != int64(len(semiring.Kernels())-1) {
				t.Errorf("%s/%v: plan cache stats %+v, want 1 build / %d hits", tc.name, wire, s, len(semiring.Kernels())-1)
			}
		}
	}
}

// integerWeights returns a WeightFn drawing integer weights in [1, hi],
// which float64 represents and sums exactly.
func integerWeights(rng *rand.Rand, hi int) graph.WeightFn {
	return func(u, v int) float64 { return float64(rng.Intn(hi) + 1) }
}

// classicalReference builds the adjacency matrix and closes it with the
// serial ClassicalFW.
func classicalReference(g *graph.Graph) *semiring.Matrix {
	m := semiring.NewMatrix(g.N(), g.N())
	for v := 0; v < g.N(); v++ {
		m.Set(v, v, 0)
		for _, e := range g.Adj(v) {
			if e.W < m.At(v, e.To) {
				m.Set(v, e.To, e.W)
			}
		}
	}
	semiring.ClassicalFW(m)
	return m
}

// TestSequentialSolversKernelInvariant covers the sequential wrappers:
// same distances bit for bit and the same operation count per kernel.
func TestSequentialSolversKernelInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.Grid2D(13, 13, graph.RandomWeights(rng, 1, 10))

	fwD, fwOps := FloydWarshall(g)
	bD, bOps := BlockedFloydWarshall(g, 32)
	sfw, err := SuperFW(g, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, kern := range []semiring.Kernel{semiring.KernelTiled, semiring.KernelPooled, semiring.KernelSparse} {
		d, ops := FloydWarshallKernel(g, kern)
		if ops != fwOps || !identicalMatrices(d, fwD) {
			t.Errorf("FloydWarshall %v: ops=%d want %d (or distances differ)", kern, ops, fwOps)
		}
		d, ops = BlockedFloydWarshallKernel(g, 32, kern)
		if ops != bOps || !identicalMatrices(d, bD) {
			t.Errorf("BlockedFloydWarshall %v: ops=%d want %d (or distances differ)", kern, ops, bOps)
		}
		r, err := SuperFWKernel(g, 3, 7, kern)
		if err != nil {
			t.Fatalf("SuperFW %v: %v", kern, err)
		}
		if r.Ops != sfw.Ops || !identicalMatrices(r.Dist, sfw.Dist) {
			t.Errorf("SuperFW %v: ops=%d want %d (or distances differ)", kern, r.Ops, sfw.Ops)
		}
	}
}
