package apsp

import (
	"fmt"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// Dist2DFW runs the dense blocked Floyd–Warshall on a √p × √p grid in
// block layout: the matrix is split into √p × √p blocks, one per
// processor, and each of the √p pivot steps does a diagonal update,
// panel broadcasts along the pivot row and column, then row/column
// panel broadcasts and the min-plus outer product everywhere — the
// blocked descendant of Jenq–Sahni (ICPP'87). Bandwidth O(n²/√p·log p)
// and latency O(√p·log p) with binomial broadcasts.
//
// It accepts any perfect-square p and serves as the second dense
// baseline next to DCAPSP.
func Dist2DFW(g *graph.Graph, p int) (*DistResult, error) {
	return Dist2DFWKernel(g, p, semiring.KernelSerial)
}

// Dist2DFWKernel is Dist2DFW with an explicit min-plus kernel for each
// rank's local block arithmetic. Distances, operation counts and the
// simulated cost report are identical for every kernel.
func Dist2DFWKernel(g *graph.Graph, p int, kern semiring.Kernel) (*DistResult, error) {
	grid, err := comm.NewSquareGrid(p)
	if err != nil {
		return nil, err
	}
	s := grid.Rows
	n := g.N()
	blocks, starts := denseBlocks(g, s)
	machine := comm.NewMachine(p)
	err = machine.Run(func(ctx *comm.Ctx) {
		dist2dRank(ctx, grid, blocks, starts, kern)
	})
	if err != nil {
		return nil, fmt.Errorf("apsp: 2D FW solver failed: %w", err)
	}
	return &DistResult{
		Dist:    assembleDense(blocks, starts, n),
		Report:  machine.Report(),
		P:       p,
		Traffic: machine.Traffic(),
	}, nil
}

// denseBlocks splits the adjacency matrix into s×s blocks with
// near-equal row/column ranges starts[i]..starts[i+1].
func denseBlocks(g *graph.Graph, s int) ([][]*semiring.Matrix, []int) {
	n := g.N()
	starts := make([]int, s+1)
	for i := 0; i <= s; i++ {
		starts[i] = i * n / s
	}
	blocks := make([][]*semiring.Matrix, s)
	for i := 0; i < s; i++ {
		blocks[i] = make([]*semiring.Matrix, s)
		for j := 0; j < s; j++ {
			blocks[i][j] = semiring.NewMatrix(starts[i+1]-starts[i], starts[j+1]-starts[j])
		}
	}
	owner := func(v int) (int, int) {
		// block index by binary search over the regular split
		b := v * s / n
		for v < starts[b] {
			b--
		}
		for v >= starts[b+1] {
			b++
		}
		return b, v - starts[b]
	}
	for v := 0; v < n; v++ {
		bi, li := owner(v)
		blocks[bi][bi].Set(li, li, 0)
		for _, e := range g.Adj(v) {
			bj, lj := owner(e.To)
			if e.W < blocks[bi][bj].At(li, lj) {
				blocks[bi][bj].Set(li, lj, e.W)
			}
		}
	}
	return blocks, starts
}

func assembleDense(blocks [][]*semiring.Matrix, starts []int, n int) *semiring.Matrix {
	out := semiring.NewMatrix(n, n)
	s := len(blocks)
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			b := blocks[i][j]
			for r := 0; r < b.Rows; r++ {
				copy(out.V[(starts[i]+r)*n+starts[j]:(starts[i]+r)*n+starts[j]+b.Cols],
					b.V[r*b.Cols:(r+1)*b.Cols])
			}
		}
	}
	return out
}

func dist2dRank(ctx *comm.Ctx, grid comm.Grid, blocks [][]*semiring.Matrix, starts []int, kern semiring.Kernel) {
	s := grid.Rows
	myI, myJ := grid.Coords(ctx.Rank())
	A := blocks[myI][myJ]
	ctx.SetMemory(int64(len(A.V)))
	dims := func(b int) int { return starts[b+1] - starts[b] }
	tag := func(k, phase, x int) int { return (k*8+phase)*1024 + x }

	for k := 0; k < s; k++ {
		// Diagonal update on P_kk.
		if myI == k && myJ == k {
			ctx.AddFlops(kern.ClassicalFW(A))
		}
		// Pivot column: broadcast A(k,k) down column k, update panels.
		if myJ == k {
			var payload []float64
			if myI == k {
				payload = append([]float64(nil), A.V...)
			}
			data := ctx.Bcast(grid.ColRanks(k), grid.Rank(k, k), tag(k, 1, 0), payload)
			if myI != k {
				dk := semiring.FromSlice(dims(k), dims(k), data)
				ctx.AddFlops(kern.PanelUpdateLeft(A, dk))
			}
		}
		// Pivot row: broadcast A(k,k) along row k, update panels.
		if myI == k {
			var payload []float64
			if myJ == k {
				payload = append([]float64(nil), A.V...)
			}
			data := ctx.Bcast(grid.RowRanks(k), grid.Rank(k, k), tag(k, 2, 0), payload)
			if myJ != k {
				dk := semiring.FromSlice(dims(k), dims(k), data)
				ctx.AddFlops(kern.PanelUpdateRight(A, dk))
			}
		}
		// Row broadcasts: every P(i,k) with i ≠ k shares A(i,k) along row i.
		var rowPanel, colPanel *semiring.Matrix
		if myI != k {
			var payload []float64
			if myJ == k {
				payload = append([]float64(nil), A.V...)
			}
			data := ctx.Bcast(grid.RowRanks(myI), grid.Rank(myI, k), tag(k, 3, myI), payload)
			rowPanel = semiring.FromSlice(dims(myI), dims(k), data)
			ctx.AddMemory(int64(len(data)))
		}
		// Column broadcasts: every P(k,j) with j ≠ k shares A(k,j) down column j.
		if myJ != k {
			var payload []float64
			if myI == k {
				payload = append([]float64(nil), A.V...)
			}
			data := ctx.Bcast(grid.ColRanks(myJ), grid.Rank(k, myJ), tag(k, 4, myJ), payload)
			colPanel = semiring.FromSlice(dims(k), dims(myJ), data)
			ctx.AddMemory(int64(len(data)))
		}
		// Min-plus outer product everywhere off the pivot cross.
		if rowPanel != nil && colPanel != nil {
			ctx.AddFlops(kern.MulAddInto(A, rowPanel, colPanel))
		}
		if rowPanel != nil {
			ctx.AddMemory(-int64(len(rowPanel.V)))
		}
		if colPanel != nil {
			ctx.AddMemory(-int64(len(colPanel.V)))
		}
	}
}
