package apsp

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"sparseapsp/internal/etree"
	"sparseapsp/internal/partition"
)

// Binary Plan serialization. A Plan is a pure function of the graph
// structure and the plan-shaping options, so persisting its bytes under
// the StructureFingerprint (planstore.go) lets a restarted process skip
// the entire symbolic phase — nested dissection, eTree, fill mask,
// schedule enumeration — for every structure it has ever solved.
//
// Format (all integers signed varints, little-endian elsewhere):
//
//	magic "SAPLAN01"                          (8 bytes; version is part of the magic)
//	P, H, NSup, Wire, R4Seq, Tags
//	ND.Perm, ND.Sizes                         (length-prefixed)
//	FillMask states                           (count, then one bitset per state)
//	Levels                                    (count, then per level every op list)
//	content hash                              (32 raw bytes of Plan.Hash)
//
// The trailer is the same sha256 Plan.Hash computes over the live
// schedule: DecodePlan recomputes it from the decoded fields and
// rejects any mismatch, so a corrupted or truncated file can never
// produce a silently wrong schedule. Only the canonical fields travel;
// everything derivable (Starts/InvPerm/Super, the eTree, the per-rank
// index) is rebuilt on decode, which keeps the bytes deterministic:
// encoding a decoded plan reproduces them bit for bit.
//
// DecodePlan returns an error — never panics — on malformed input
// (fuzzed by FuzzDecodePlanMalformed). Note this is the opposite policy
// from the semiring pack codec, whose Unpack panics on malformed
// payloads: wire payloads are produced by our own executor in the same
// process, while plan files cross process lifetimes and disks.

// planMagic identifies the format and its version; bump the trailing
// digits on any incompatible change so old files decode-or-error
// instead of misparsing.
const planMagic = "SAPLAN01"

// planHashLen is the raw length of the sha256 content-hash trailer.
const planHashLen = 32

// Encode serializes the plan to its deterministic binary form.
func (p *Plan) Encode() []byte {
	b := make([]byte, 0, 1024)
	b = append(b, planMagic...)
	b = appendPlanInt(b, p.P, p.H, p.NSup, int(p.Wire), boolInt(p.R4Seq), p.Tags)
	b = appendPlanIntSlice(b, p.ND.Perm)
	b = appendPlanIntSlice(b, p.ND.Sizes)
	b = appendPlanInt(b, len(p.Fill.states))
	for _, st := range p.Fill.states {
		b = appendPlanBools(b, st)
	}
	b = appendPlanInt(b, len(p.Levels))
	for _, lv := range p.Levels {
		b = appendPlanIntSlice(b, lv.R1)
		b = appendPlanBcasts(b, lv.R2)
		b = appendPlanBcasts(b, lv.R3)
		b = appendPlanBcasts(b, lv.R4Col)
		b = appendPlanBcasts(b, lv.R4Row)
		b = appendPlanInt(b, len(lv.R4Units))
		for _, u := range lv.R4Units {
			b = appendPlanInt(b, u.Rank, u.I, u.K, u.J)
		}
		b = appendPlanInt(b, len(lv.R4Reduce))
		for _, r := range lv.R4Reduce {
			b = appendPlanIntSlice(b, r.Group)
			b = appendPlanInt(b, r.Root, r.Tag, r.BI, r.BJ)
		}
		b = appendPlanInt(b, len(lv.R4Seq))
		for _, s := range lv.R4Seq {
			b = appendPlanInt(b, s.K, s.BI, s.BJ, s.AikOwner, s.AkjOwner, s.Owner, s.TagA, s.TagB)
			b = appendPlanPrune(b, s.PruneA)
			b = appendPlanPrune(b, s.PruneB)
		}
		b = appendPlanInt(b, len(lv.Trans))
		for _, t := range lv.Trans {
			b = appendPlanInt(b, t.Src, t.Dst, t.Tag, t.BI, t.BJ)
		}
	}
	sum, err := hex.DecodeString(p.Hash())
	if err != nil || len(sum) != planHashLen {
		// Hash() always yields 64 hex chars; reaching here means memory
		// corruption, not input — fail loudly.
		panic(fmt.Sprintf("apsp: Plan.Hash produced invalid hex %q", p.Hash()))
	}
	return append(b, sum...)
}

func appendPlanInt(b []byte, vs ...int) []byte {
	for _, v := range vs {
		b = binary.AppendVarint(b, int64(v))
	}
	return b
}

func appendPlanIntSlice(b []byte, vs []int) []byte {
	b = appendPlanInt(b, len(vs))
	return appendPlanInt(b, vs...)
}

// appendPlanBools encodes a []bool as a length-prefixed bitset.
func appendPlanBools(b []byte, vs []bool) []byte {
	b = appendPlanInt(b, len(vs))
	var cur byte
	for i, v := range vs {
		if v {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			b = append(b, cur)
			cur = 0
		}
	}
	if len(vs)%8 != 0 {
		b = append(b, cur)
	}
	return b
}

func appendPlanBcasts(b []byte, ops []BcastOp) []byte {
	b = appendPlanInt(b, len(ops))
	for _, op := range ops {
		b = appendPlanIntSlice(b, op.Group)
		b = appendPlanInt(b, op.Root, op.Tag, op.BI, op.BJ, int(op.Kind))
		b = appendPlanIntSlice(b, op.Consumers)
		b = appendPlanPrune(b, op.Prune)
	}
	return b
}

// appendPlanPrune mirrors hashWriter.prune: nil specs and nil-vs-empty
// axes are all distinct on the wire, because they are distinct to the
// executor (nil axis = ship all, empty axis = ship nothing).
func appendPlanPrune(b []byte, p *PruneSpec) []byte {
	if p == nil {
		return appendPlanInt(b, -1)
	}
	b = appendPlanInt(b, boolInt(p.ZeroDiag))
	b = appendPlanInt32Axis(b, p.Rows)
	return appendPlanInt32Axis(b, p.Cols)
}

func appendPlanInt32Axis(b []byte, vs []int32) []byte {
	if vs == nil {
		return appendPlanInt(b, -2)
	}
	b = appendPlanInt(b, len(vs))
	for _, v := range vs {
		b = appendPlanInt(b, int(v))
	}
	return b
}

// planReader is a bounds-checked varint reader over the payload bytes.
// Every accessor reports malformed input through an error; nothing in
// the decode path indexes past the buffer.
type planReader struct {
	b   []byte
	off int
}

func (r *planReader) remaining() int { return len(r.b) - r.off }

func (r *planReader) int() (int, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("apsp: DecodePlan: truncated varint at offset %d", r.off)
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		// No legitimate plan field exceeds int32 range; rejecting here
		// also caps every later allocation.
		return 0, fmt.Errorf("apsp: DecodePlan: field value %d out of range at offset %d", v, r.off)
	}
	r.off += n
	return int(v), nil
}

// length reads a non-negative length and caps it against the remaining
// bytes (every element costs at least one byte), so a malformed length
// can never drive a huge allocation.
func (r *planReader) length(what string) (int, error) {
	n, err := r.int()
	if err != nil {
		return 0, err
	}
	if n < 0 || n > r.remaining() {
		return 0, fmt.Errorf("apsp: DecodePlan: %s length %d invalid with %d bytes left", what, n, r.remaining())
	}
	return n, nil
}

func (r *planReader) intSlice(what string) ([]int, error) {
	n, err := r.length(what)
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for i := range out {
		if out[i], err = r.int(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *planReader) bools(what string) ([]bool, error) {
	n, err := r.int()
	if err != nil {
		return nil, err
	}
	if n < 0 || (n+7)/8 > r.remaining() {
		return nil, fmt.Errorf("apsp: DecodePlan: %s bitset length %d invalid with %d bytes left", what, n, r.remaining())
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.b[r.off+i/8]&(1<<(i%8)) != 0
	}
	r.off += (n + 7) / 8
	return out, nil
}

// planValidator carries the decoded header fields every op reference is
// checked against before the per-rank index is built — indexRanks and
// the executors index by these values without further checks.
type planValidator struct {
	p, nsup, tags int
	sizes         []int
}

func (v *planValidator) rank(name string, r int) error {
	if r < 0 || r >= v.p {
		return fmt.Errorf("apsp: DecodePlan: %s rank %d outside [0,%d)", name, r, v.p)
	}
	return nil
}

func (v *planValidator) block(name string, b int) error {
	if b < 1 || b > v.nsup {
		return fmt.Errorf("apsp: DecodePlan: %s block %d outside [1,%d]", name, b, v.nsup)
	}
	return nil
}

func (v *planValidator) tag(name string, t int) error {
	if t < 0 || t >= v.tags {
		return fmt.Errorf("apsp: DecodePlan: %s tag %d outside [0,%d)", name, t, v.tags)
	}
	return nil
}

// prune validates one axis of a PruneSpec against the block dimension
// it indexes: ascending, in range, no duplicates — what the executor's
// pack path assumes.
func (v *planValidator) pruneAxis(name string, axis []int32, dim int) error {
	prev := int32(-1)
	for _, x := range axis {
		if x <= prev || int(x) >= dim {
			return fmt.Errorf("apsp: DecodePlan: %s prune index %d invalid for dimension %d", name, x, dim)
		}
		prev = x
	}
	return nil
}

func (v *planValidator) prune(name string, p *PruneSpec, bi, bj int) error {
	if p == nil {
		return nil
	}
	if err := v.pruneAxis(name+" rows", p.Rows, v.sizes[bi]); err != nil {
		return err
	}
	return v.pruneAxis(name+" cols", p.Cols, v.sizes[bj])
}

func (r *planReader) prune(what string) (*PruneSpec, error) {
	marker, err := r.int()
	if err != nil {
		return nil, err
	}
	switch marker {
	case -1:
		return nil, nil
	case 0, 1:
		spec := &PruneSpec{ZeroDiag: marker == 1}
		if spec.Rows, err = r.int32Axis(what + " rows"); err != nil {
			return nil, err
		}
		if spec.Cols, err = r.int32Axis(what + " cols"); err != nil {
			return nil, err
		}
		return spec, nil
	default:
		return nil, fmt.Errorf("apsp: DecodePlan: bad prune marker %d in %s", marker, what)
	}
}

func (r *planReader) int32Axis(what string) ([]int32, error) {
	n, err := r.int()
	if err != nil {
		return nil, err
	}
	if n == -2 {
		return nil, nil
	}
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("apsp: DecodePlan: %s axis length %d invalid with %d bytes left", what, n, r.remaining())
	}
	out := make([]int32, n)
	for i := range out {
		v, err := r.int()
		if err != nil {
			return nil, err
		}
		out[i] = int32(v)
	}
	return out, nil
}

func (r *planReader) bcasts(what string, v *planValidator) ([]BcastOp, error) {
	n, err := r.length(what)
	if err != nil {
		return nil, err
	}
	ops := make([]BcastOp, 0, n)
	for i := 0; i < n; i++ {
		var op BcastOp
		if op.Group, err = r.intSlice(what + " group"); err != nil {
			return nil, err
		}
		if op.Root, err = r.int(); err != nil {
			return nil, err
		}
		if op.Tag, err = r.int(); err != nil {
			return nil, err
		}
		if op.BI, err = r.int(); err != nil {
			return nil, err
		}
		if op.BJ, err = r.int(); err != nil {
			return nil, err
		}
		kind, err := r.int()
		if err != nil {
			return nil, err
		}
		if kind < 0 || kind > int(opR4Akj) {
			return nil, fmt.Errorf("apsp: DecodePlan: bad %s kind %d", what, kind)
		}
		op.Kind = uint8(kind)
		if op.Consumers, err = r.intSlice(what + " consumers"); err != nil {
			return nil, err
		}
		if op.Prune, err = r.prune(what); err != nil {
			return nil, err
		}
		for _, g := range op.Group {
			if err := v.rank(what+" group member", g); err != nil {
				return nil, err
			}
		}
		for _, c := range op.Consumers {
			if err := v.rank(what+" consumer", c); err != nil {
				return nil, err
			}
		}
		if err := firstErr(
			v.rank(what+" root", op.Root),
			v.tag(what, op.Tag),
			v.block(what+" BI", op.BI),
			v.block(what+" BJ", op.BJ),
		); err != nil {
			return nil, err
		}
		// Only after BI/BJ are known-valid may the prune axes be checked
		// against the block dimensions.
		if err := v.prune(what, op.Prune, op.BI, op.BJ); err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DecodePlan parses bytes produced by Plan.Encode, rebuilds every
// derived structure (ordering inverse, supernode table, eTree, per-rank
// index), and verifies the embedded content hash against a recompute
// over the decoded schedule. Malformed, truncated or corrupted input
// returns an error; DecodePlan never panics.
func DecodePlan(b []byte) (*Plan, error) {
	if len(b) < len(planMagic)+planHashLen {
		return nil, fmt.Errorf("apsp: DecodePlan: %d bytes is shorter than the minimal envelope", len(b))
	}
	if string(b[:len(planMagic)]) != planMagic {
		return nil, fmt.Errorf("apsp: DecodePlan: bad magic %q (want %q)", b[:len(planMagic)], planMagic)
	}
	stored := b[len(b)-planHashLen:]
	r := &planReader{b: b[len(planMagic) : len(b)-planHashLen]}

	var hdr [6]int
	for i := range hdr {
		v, err := r.int()
		if err != nil {
			return nil, err
		}
		hdr[i] = v
	}
	p, h, nsup, wire, r4seq, tags := hdr[0], hdr[1], hdr[2], hdr[3], hdr[4], hdr[5]
	if h < 1 || h > 30 || nsup != (1<<h)-1 || p != nsup*nsup {
		return nil, fmt.Errorf("apsp: DecodePlan: inconsistent header p=%d h=%d nsup=%d", p, h, nsup)
	}
	if wire < int(WirePacked) || wire > int(WirePruned) {
		return nil, fmt.Errorf("apsp: DecodePlan: unknown wire format %d", wire)
	}
	if r4seq != 0 && r4seq != 1 {
		return nil, fmt.Errorf("apsp: DecodePlan: bad R4Seq flag %d", r4seq)
	}
	if tags < 0 {
		return nil, fmt.Errorf("apsp: DecodePlan: negative tag count %d", tags)
	}

	perm, err := r.intSlice("perm")
	if err != nil {
		return nil, err
	}
	sizes, err := r.intSlice("sizes")
	if err != nil {
		return nil, err
	}
	nd, err := rebuildND(h, nsup, perm, sizes)
	if err != nil {
		return nil, err
	}

	numStates, err := r.int()
	if err != nil {
		return nil, err
	}
	if numStates != h+1 {
		return nil, fmt.Errorf("apsp: DecodePlan: %d fill states for height %d (want %d)", numStates, h, h+1)
	}
	states := make([][]bool, numStates)
	for i := range states {
		if states[i], err = r.bools("fill state"); err != nil {
			return nil, err
		}
		if len(states[i]) != (nsup+1)*(nsup+1) {
			return nil, fmt.Errorf("apsp: DecodePlan: fill state %d has %d cells (want %d)", i, len(states[i]), (nsup+1)*(nsup+1))
		}
	}

	v := &planValidator{p: p, nsup: nsup, tags: tags, sizes: sizes}
	numLevels, err := r.int()
	if err != nil {
		return nil, err
	}
	if numLevels != h {
		return nil, fmt.Errorf("apsp: DecodePlan: %d levels for height %d", numLevels, h)
	}
	levels := make([]planLevel, numLevels)
	for li := range levels {
		lv := &levels[li]
		if lv.R1, err = r.intSlice("R1"); err != nil {
			return nil, err
		}
		for _, k := range lv.R1 {
			if err := v.block("R1 pivot", k); err != nil {
				return nil, err
			}
		}
		if lv.R2, err = r.bcasts("R2", v); err != nil {
			return nil, err
		}
		if lv.R3, err = r.bcasts("R3", v); err != nil {
			return nil, err
		}
		if lv.R4Col, err = r.bcasts("R4Col", v); err != nil {
			return nil, err
		}
		if lv.R4Row, err = r.bcasts("R4Row", v); err != nil {
			return nil, err
		}
		if err := r.readUnits(lv, v); err != nil {
			return nil, err
		}
		if err := r.readReduces(lv, v); err != nil {
			return nil, err
		}
		if err := r.readSeqs(lv, v); err != nil {
			return nil, err
		}
		if err := r.readTrans(lv, v); err != nil {
			return nil, err
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("apsp: DecodePlan: %d trailing bytes after the schedule", r.remaining())
	}

	pl := &Plan{
		P: p, H: h, NSup: nsup,
		Wire:  WireFormat(wire),
		R4Seq: r4seq == 1,
		ND:    nd,
		Tree:  etree.New(h),
		Fill:  &FillMask{H: h, N: nsup, states: states},
		Tags:  tags,
	}
	pl.Levels = levels
	if got, want := pl.Hash(), hex.EncodeToString(stored); got != want {
		return nil, fmt.Errorf("apsp: DecodePlan: content hash mismatch (stored %s, recomputed %s)", want[:12], got[:12])
	}
	pl.ranks = indexRanks(pl)
	return pl, nil
}

func (r *planReader) readUnits(lv *planLevel, v *planValidator) error {
	n, err := r.length("R4Units")
	if err != nil {
		return err
	}
	lv.R4Units = make([]UnitOp, n)
	for i := range lv.R4Units {
		u := &lv.R4Units[i]
		for _, dst := range []*int{&u.Rank, &u.I, &u.K, &u.J} {
			if *dst, err = r.int(); err != nil {
				return err
			}
		}
		if err := firstErr(
			v.rank("unit", u.Rank),
			v.block("unit I", u.I),
			v.block("unit K", u.K),
			v.block("unit J", u.J),
		); err != nil {
			return err
		}
	}
	return nil
}

func (r *planReader) readReduces(lv *planLevel, v *planValidator) error {
	n, err := r.length("R4Reduce")
	if err != nil {
		return err
	}
	lv.R4Reduce = make([]ReduceOp, n)
	for i := range lv.R4Reduce {
		op := &lv.R4Reduce[i]
		if op.Group, err = r.intSlice("reduce group"); err != nil {
			return err
		}
		for _, g := range op.Group {
			if err := v.rank("reduce member", g); err != nil {
				return err
			}
		}
		for _, dst := range []*int{&op.Root, &op.Tag, &op.BI, &op.BJ} {
			if *dst, err = r.int(); err != nil {
				return err
			}
		}
		if err := firstErr(
			v.rank("reduce root", op.Root),
			v.tag("reduce", op.Tag),
			v.block("reduce BI", op.BI),
			v.block("reduce BJ", op.BJ),
		); err != nil {
			return err
		}
	}
	return nil
}

func (r *planReader) readSeqs(lv *planLevel, v *planValidator) error {
	n, err := r.length("R4Seq")
	if err != nil {
		return err
	}
	lv.R4Seq = make([]SeqOp, n)
	for i := range lv.R4Seq {
		op := &lv.R4Seq[i]
		for _, dst := range []*int{&op.K, &op.BI, &op.BJ, &op.AikOwner, &op.AkjOwner, &op.Owner, &op.TagA, &op.TagB} {
			if *dst, err = r.int(); err != nil {
				return err
			}
		}
		if op.PruneA, err = r.prune("seq pruneA"); err != nil {
			return err
		}
		if op.PruneB, err = r.prune("seq pruneB"); err != nil {
			return err
		}
		if err := firstErr(
			v.block("seq K", op.K),
			v.block("seq BI", op.BI),
			v.block("seq BJ", op.BJ),
			v.rank("seq aik owner", op.AikOwner),
			v.rank("seq akj owner", op.AkjOwner),
			v.rank("seq owner", op.Owner),
			v.tag("seq A", op.TagA),
			v.tag("seq B", op.TagB),
		); err != nil {
			return err
		}
		if err := firstErr(
			v.prune("seq pruneA", op.PruneA, op.BI, op.K),
			v.prune("seq pruneB", op.PruneB, op.K, op.BJ),
		); err != nil {
			return err
		}
	}
	return nil
}

func (r *planReader) readTrans(lv *planLevel, v *planValidator) error {
	n, err := r.length("Trans")
	if err != nil {
		return err
	}
	lv.Trans = make([]TransOp, n)
	for i := range lv.Trans {
		op := &lv.Trans[i]
		for _, dst := range []*int{&op.Src, &op.Dst, &op.Tag, &op.BI, &op.BJ} {
			if *dst, err = r.int(); err != nil {
				return err
			}
		}
		if err := firstErr(
			v.rank("trans src", op.Src),
			v.rank("trans dst", op.Dst),
			v.tag("trans", op.Tag),
			v.block("trans BI", op.BI),
			v.block("trans BJ", op.BJ),
		); err != nil {
			return err
		}
	}
	return nil
}

// rebuildND reconstructs the full nested-dissection result from its
// canonical fields. Perm and Sizes determine everything else: Starts is
// the prefix sum of Sizes, InvPerm inverts Perm, and each supernode's
// vertex list is the InvPerm range of its label (already ascending,
// because NestedDissection assigns new ids in sorted original order).
func rebuildND(h, nsup int, perm, sizes []int) (*partition.Result, error) {
	n := len(perm)
	if len(sizes) != nsup+1 {
		return nil, fmt.Errorf("apsp: DecodePlan: %d supernode sizes for %d supernodes", len(sizes), nsup)
	}
	if sizes[0] != 0 {
		return nil, fmt.Errorf("apsp: DecodePlan: sizes[0] = %d (labels are 1-based)", sizes[0])
	}
	total := 0
	for t := 1; t <= nsup; t++ {
		if sizes[t] < 0 {
			return nil, fmt.Errorf("apsp: DecodePlan: negative supernode size %d", sizes[t])
		}
		total += sizes[t]
	}
	if total != n {
		return nil, fmt.Errorf("apsp: DecodePlan: supernode sizes sum to %d, permutation covers %d vertices", total, n)
	}
	nd := &partition.Result{
		H: h, N: nsup,
		Perm:    perm,
		Sizes:   sizes,
		Starts:  make([]int, nsup+1),
		InvPerm: make([]int, n),
		Super:   make([][]int, nsup+1),
	}
	seen := make([]bool, n)
	for old, nw := range perm {
		if nw < 0 || nw >= n || seen[nw] {
			return nil, fmt.Errorf("apsp: DecodePlan: perm is not a permutation (entry %d -> %d)", old, nw)
		}
		seen[nw] = true
		nd.InvPerm[nw] = old
	}
	next := 0
	for t := 1; t <= nsup; t++ {
		nd.Starts[t] = next
		next += sizes[t]
		if sizes[t] > 0 {
			nd.Super[t] = append([]int(nil), nd.InvPerm[nd.Starts[t]:next]...)
		}
	}
	return nd, nil
}
