package apsp

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// goldenCase is one (graph family, machine size) pair of the frozen
// pre-refactor cost table. Each family builds its graph from its own
// independently seeded RNG, so adding or reordering cases cannot
// silently change another case's graph.
type goldenCase struct {
	name string
	g    *graph.Graph
	p    int
}

func goldenCases() []goldenCase {
	mk := func(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
	return []goldenCase{
		{"grid", graph.Grid2D(9, 9, integerWeights(mk(101), 10)), 9},
		{"grid49", graph.Grid2D(13, 13, integerWeights(mk(102), 10)), 49},
		{"gnp", graph.RandomGNP(70, 0.08, integerWeights(mk(103), 5), mk(203)), 9},
		{"tree", graph.RandomTree(90, graph.UnitWeights, mk(104)), 49},
		{"rmat", graph.RMAT(6, 3, integerWeights(mk(105), 4), mk(205)), 9},
		{"star", graph.Star(60, graph.UnitWeights), 9},
	}
}

// distHash is the first 16 hex chars of a sha256 over the raw Float64
// bit patterns of the distance matrix — a bit-exactness fingerprint.
func distHash(m *semiring.Matrix) string {
	h := sha256.New()
	var buf [8]byte
	for _, v := range m.V {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

type goldenRow struct {
	CritLatency   int64
	CritBandwidth int64
	CritFlops     int64
	TotalMessages int64
	TotalWords    int64
	MaxMemory     int64
	DistHash      string
}

type goldenKey struct {
	Family string
	Mode   string // wire format, or "dc" for the dense comparator
	R4     R4Strategy
}

// goldenTable was captured from the fused (pre-Plan/Execute) solver at
// the commit introducing the split. The refactor's hard invariant is
// that these numbers never move: distances bit-identical AND every
// charged cost — critical latency/bandwidth/flops, message and word
// totals, peak memory — unchanged. "dc" rows pin DCAPSP (p=4, cyclic
// factor 2) across its schedule split.
var goldenTable = map[goldenKey]goldenRow{
	{"grid", "packed", 0}:   {12, 5293, 70776, 26, 10914, 2304, "a2e3a57550113739"},
	{"grid", "packed", 1}:   {15, 6512, 73368, 24, 10752, 2223, "a2e3a57550113739"},
	{"grid", "dense", 0}:    {12, 5283, 70776, 26, 10890, 2304, "a2e3a57550113739"},
	{"grid", "dense", 1}:    {15, 6498, 73368, 24, 10728, 2223, "a2e3a57550113739"},
	{"grid", "dc", 0}:       {44, 18405, 159030, 72, 29520, 2646, "a2e3a57550113739"},
	{"grid49", "packed", 0}: {28, 13104, 118922, 222, 73693, 2856, "96e4aca675b3c7af"},
	{"grid49", "packed", 1}: {35, 15806, 115783, 210, 72657, 2856, "96e4aca675b3c7af"},
	{"grid49", "dense", 0}:  {28, 13079, 118922, 222, 74598, 2856, "96e4aca675b3c7af"},
	{"grid49", "dense", 1}:  {35, 16407, 115783, 210, 73560, 2856, "96e4aca675b3c7af"},
	{"grid49", "dc", 0}:     {44, 79301, 1343787, 72, 128520, 11094, "96e4aca675b3c7af"},
	{"gnp", "packed", 0}:    {12, 9814, 169281, 26, 15016, 3844, "60e3ad3fef80fe66"},
	{"gnp", "packed", 1}:    {15, 10394, 171903, 24, 13958, 3315, "60e3ad3fef80fe66"},
	{"gnp", "dense", 0}:     {12, 9804, 169281, 26, 14992, 3844, "60e3ad3fef80fe66"},
	{"gnp", "dense", 1}:     {15, 10379, 171903, 24, 13934, 3315, "60e3ad3fef80fe66"},
	{"gnp", "dc", 0}:        {44, 13684, 114922, 72, 22048, 1944, "60e3ad3fef80fe66"},
	{"tree", "packed", 0}:   {28, 2875, 13361, 204, 8652, 1764, "17b38d5f4c544f0b"},
	{"tree", "packed", 1}:   {33, 2806, 13317, 194, 8660, 1763, "17b38d5f4c544f0b"},
	{"tree", "dense", 0}:    {28, 7211, 13361, 222, 13602, 1764, "17b38d5f4c544f0b"},
	{"tree", "dense", 1}:    {35, 7143, 13317, 210, 13630, 1763, "17b38d5f4c544f0b"},
	{"tree", "dc", 0}:       {44, 22544, 240856, 72, 36448, 3174, "17b38d5f4c544f0b"},
	{"rmat", "packed", 0}:   {12, 5081, 73596, 26, 8486, 2116, "83accd07a3c61b64"},
	{"rmat", "packed", 1}:   {15, 5602, 74198, 24, 8094, 1920, "83accd07a3c61b64"},
	{"rmat", "dense", 0}:    {12, 5072, 73596, 26, 9472, 2116, "83accd07a3c61b64"},
	{"rmat", "dense", 1}:    {15, 6136, 74198, 24, 9080, 1920, "83accd07a3c61b64"},
	{"rmat", "dc", 0}:       {44, 11264, 92192, 72, 18432, 1536, "83accd07a3c61b64"},
	{"star", "packed", 0}:   {12, 338, 4410, 26, 742, 1520, "978ac9a795cb7eba"},
	{"star", "packed", 1}:   {15, 419, 4430, 24, 740, 1520, "978ac9a795cb7eba"},
	{"star", "dense", 0}:    {12, 3064, 4410, 26, 4248, 1520, "978ac9a795cb7eba"},
	{"star", "dense", 1}:    {15, 3142, 4430, 24, 4246, 1520, "978ac9a795cb7eba"},
	{"star", "dc", 0}:       {44, 9900, 77850, 72, 16200, 1350, "978ac9a795cb7eba"},
	// "pruned" rows were captured when the demand-pruned wire format
	// landed. DistHash is identical to the packed/dense rows above —
	// pruning elides only provably-absorbed entries — while bandwidth,
	// words and (for the sparse-aware kernels' operand scans) flops
	// drop. Message counts match packed exactly: pruning never changes
	// the schedule, only payload sizes.
	{"grid", "pruned", 0}:   {12, 2890, 60246, 26, 5882, 2304, "a2e3a57550113739"},
	{"grid", "pruned", 1}:   {15, 3327, 62838, 24, 5720, 2223, "a2e3a57550113739"},
	{"grid49", "pruned", 0}: {28, 7962, 102542, 222, 47546, 2856, "96e4aca675b3c7af"},
	{"grid49", "pruned", 1}: {35, 7992, 99403, 210, 46510, 2856, "96e4aca675b3c7af"},
	{"gnp", "pruned", 0}:    {12, 9654, 165693, 26, 12694, 3844, "60e3ad3fef80fe66"},
	{"gnp", "pruned", 1}:    {15, 8969, 168315, 24, 11636, 3315, "60e3ad3fef80fe66"},
	{"tree", "pruned", 0}:   {28, 1588, 13171, 204, 3820, 1764, "17b38d5f4c544f0b"},
	{"tree", "pruned", 1}:   {33, 1479, 13127, 194, 3750, 1763, "17b38d5f4c544f0b"},
	{"rmat", "pruned", 0}:   {12, 4685, 70012, 26, 6964, 2116, "83accd07a3c61b64"},
	{"rmat", "pruned", 1}:   {15, 4528, 70614, 24, 6572, 1920, "83accd07a3c61b64"},
	{"star", "pruned", 0}:   {12, 183, 4410, 26, 380, 1520, "978ac9a795cb7eba"},
	{"star", "pruned", 1}:   {15, 228, 4430, 24, 378, 1520, "978ac9a795cb7eba"},
}

func checkGolden(t *testing.T, key goldenKey, res *DistResult) {
	t.Helper()
	want, ok := goldenTable[key]
	if !ok {
		t.Fatalf("%v: no golden row", key)
	}
	got := goldenRow{
		CritLatency:   res.Report.Critical.Latency,
		CritBandwidth: res.Report.Critical.Bandwidth,
		CritFlops:     res.Report.Critical.Flops,
		TotalMessages: res.Report.TotalMessages,
		TotalWords:    res.Report.TotalWords,
		MaxMemory:     res.Report.MaxMemory,
		DistHash:      distHash(res.Dist),
	}
	if got != want {
		t.Errorf("%v: cost/dist drifted from the pre-refactor golden values:\n got %+v\nwant %+v", key, got, want)
	}
}

// TestSparseCostGolden pins the planned executor to the fused solver
// it replaced: identical distances (to the bit) and identical charged
// costs for five graph families × all three wire formats × both R4
// strategies — plus the DCAPSP schedule split.
func TestSparseCostGolden(t *testing.T) {
	for _, tc := range goldenCases() {
		for _, wire := range []WireFormat{WirePacked, WireDense, WirePruned} {
			for _, r4 := range []R4Strategy{R4Mapped, R4Sequential} {
				res, err := SparseAPSPWith(tc.g, tc.p, SparseOptions{Seed: 11, Wire: wire, R4Strategy: r4})
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", tc.name, wire, r4, err)
				}
				checkGolden(t, goldenKey{tc.name, wire.String(), r4}, res)
			}
		}
		res, err := DCAPSP(tc.g, 4, 2)
		if err != nil {
			t.Fatalf("%s/dc: %v", tc.name, err)
		}
		checkGolden(t, goldenKey{tc.name, "dc", 0}, res)
	}
}

// TestPlanDeterministicAcrossRanks derives the Plan independently q
// times — as q ranks of a real machine each would — and asserts all
// hashes agree, across graph families, machine sizes and wire formats.
// A single diverging group order would deadlock (or silently mis-cost)
// a real distributed run, so plan construction must be a pure function
// of the shared symbolic inputs.
func TestPlanDeterministicAcrossRanks(t *testing.T) {
	for _, tc := range goldenCases() {
		for _, wire := range []WireFormat{WirePacked, WireDense, WirePruned} {
			var want string
			for rank := 0; rank < tc.p; rank++ {
				// Each "rank" recomputes the full symbolic phase from
				// scratch, sharing nothing but the inputs.
				h, err := HeightForP(tc.p)
				if err != nil {
					t.Fatal(err)
				}
				ly, err := NewLayout(tc.g, h, 11)
				if err != nil {
					t.Fatalf("%s rank %d: %v", tc.name, rank, err)
				}
				pl, err := BuildPlan(ly, tc.p, wire, R4Mapped)
				if err != nil {
					t.Fatalf("%s rank %d: %v", tc.name, rank, err)
				}
				if rank == 0 {
					want = pl.Hash()
					continue
				}
				if got := pl.Hash(); got != want {
					t.Fatalf("%s/%v: rank %d derived plan %s, rank 0 derived %s", tc.name, wire, rank, got, want)
				}
			}
		}
	}
}

// TestPlanCacheWarmSolveSkipsSymbolicWork asserts the serving-path
// contract: the second solve of a structure hits the plan cache
// (performing no ND/eTree/fill-mask work — builds stays at 1) and
// returns byte-identical distances and cost reports; a solve on the
// same structure with DIFFERENT weights still hits, because the
// fingerprint is weights-independent.
func TestPlanCacheWarmSolveSkipsSymbolicWork(t *testing.T) {
	weights := func(seed int64) graph.WeightFn {
		rng := rand.New(rand.NewSource(seed))
		return func(u, v int) float64 { return float64(rng.Intn(9) + 1) }
	}
	g1 := graph.Grid2D(9, 9, weights(1))
	g2 := graph.Grid2D(9, 9, weights(2)) // same structure, new weights

	cache := NewPlanCache()
	opts := SparseOptions{Seed: 11, Plans: cache}

	cold, err := SparseAPSPWith(g1, 9, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Builds != 1 || s.Hits != 0 || s.Entries != 1 {
		t.Fatalf("after cold solve: %+v, want 1 build / 0 hits / 1 entry", s)
	}

	warm, err := SparseAPSPWith(g1, 9, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Builds != 1 || s.Hits != 1 {
		t.Fatalf("after warm solve: %+v, want 1 build / 1 hit (zero symbolic work)", s)
	}
	if !identicalMatrices(cold.Dist, warm.Dist) {
		t.Fatal("warm solve distances differ from cold solve")
	}
	if !reflect.DeepEqual(cold.Report, warm.Report) {
		t.Fatalf("warm solve report differs from cold:\n cold %+v\n warm %+v", cold.Report, warm.Report)
	}

	res2, err := SparseAPSPWith(g2, 9, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Builds != 1 || s.Hits != 2 {
		t.Fatalf("after same-structure new-weights solve: %+v, want 1 build / 2 hits", s)
	}
	if !identicalMatrices(res2.Dist, classicalReference(g2)) {
		t.Fatal("plan-reused solve on new weights is wrong")
	}

	// A different structure must NOT hit.
	g3 := graph.Grid2D(13, 7, weights(3))
	if _, err := SparseAPSPWith(g3, 9, opts); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Builds != 2 || s.Hits != 2 || s.Entries != 2 {
		t.Fatalf("after different-structure solve: %+v, want 2 builds / 2 hits / 2 entries", s)
	}

	// Different plan-shaping options are distinct cache keys even on
	// one structure: a dense-wire plan must never serve a packed solve.
	if _, err := SparseAPSPWith(g1, 9, SparseOptions{Seed: 11, Plans: cache, Wire: WireDense}); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Builds != 3 || s.Hits != 2 {
		t.Fatalf("after dense-wire solve: %+v, want a fresh build (3), no new hit", s)
	}
}

// TestStructureFingerprintIgnoresWeights pins the key property the
// serving path relies on: fingerprints see structure, seeds and plan
// options — never weights.
func TestStructureFingerprintIgnoresWeights(t *testing.T) {
	w := func(seed int64) graph.WeightFn {
		rng := rand.New(rand.NewSource(seed))
		return func(u, v int) float64 { return float64(rng.Intn(50) + 1) }
	}
	g1 := graph.Grid2D(5, 5, w(1))
	g2 := graph.Grid2D(5, 5, w(99))
	if StructureFingerprintOf(g1, 9, 7, WirePacked, R4Mapped) != StructureFingerprintOf(g2, 9, 7, WirePacked, R4Mapped) {
		t.Fatal("same structure, different weights: fingerprints differ")
	}
	base := StructureFingerprintOf(g1, 9, 7, WirePacked, R4Mapped)
	if StructureFingerprintOf(g1, 49, 7, WirePacked, R4Mapped) == base {
		t.Fatal("different p, same fingerprint")
	}
	if StructureFingerprintOf(g1, 9, 8, WirePacked, R4Mapped) == base {
		t.Fatal("different ND seed, same fingerprint")
	}
	if StructureFingerprintOf(g1, 9, 7, WireDense, R4Mapped) == base {
		t.Fatal("different wire format, same fingerprint")
	}
	if StructureFingerprintOf(g1, 9, 7, WirePacked, R4Sequential) == base {
		t.Fatal("different R4 strategy, same fingerprint")
	}
	if StructureFingerprintOf(graph.Grid2D(5, 6, w(1)), 9, 7, WirePacked, R4Mapped) == base {
		t.Fatal("different structure, same fingerprint")
	}
}

// TestPlanExecuteMatchesDirectSolve closes the loop between the two
// entry points: a plan built once and executed via LayoutFor must
// reproduce the plain SparseAPSPWith result exactly, for every kernel.
func TestPlanExecuteMatchesDirectSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomGNP(40, 0.15, integerWeights(rng, 6), rng)
	direct, err := SparseAPSPWith(g, 9, SparseOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ly, err := NewLayout(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := BuildPlan(ly, 9, WirePacked, R4Mapped)
	if err != nil {
		t.Fatal(err)
	}
	for _, kern := range semiring.Kernels() {
		res, err := pl.Execute(pl.LayoutFor(g), kern)
		if err != nil {
			t.Fatalf("kernel %v: %v", kern, err)
		}
		if !identicalMatrices(res.Dist, direct.Dist) {
			t.Fatalf("kernel %v: planned execute distances differ from direct solve", kern)
		}
		if !reflect.DeepEqual(res.Report, direct.Report) {
			t.Fatalf("kernel %v: planned execute report differs from direct solve", kern)
		}
	}
}
