package apsp

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"runtime/pprof"
	"testing"

	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// TestSchedulerDeterminism pins the cost-aware scheduler's replay
// guarantee: for a fixed plan and worker count, every Execute produces
// the identical observables — distances, cost report, per-level phases
// and the traffic matrix — no matter how the workers interleave. Run
// under -race in CI, so a data race in the heaps / parking lot /
// completion path surfaces here too.
func TestSchedulerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := graph.Grid2D(10, 10, integerWeights(rng, 10))
	ly, err := NewLayout(g, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := BuildPlan(ly, 9, WirePacked, R4Mapped)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		o := ExecOpts{Kernel: semiring.KernelSerial, Executor: ExecDataflow,
			Schedule: ScheduleCritical, Fuse: FuseOn, Workers: workers}
		want, err := pl.ExecuteOpts(ly, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for run := 1; run < 10; run++ {
			got, err := pl.ExecuteOpts(pl.LayoutFor(g), o)
			if err != nil {
				t.Fatalf("workers=%d run %d: %v", workers, run, err)
			}
			if !identicalMatrices(got.Dist, want.Dist) {
				t.Fatalf("workers=%d run %d: distances differ", workers, run)
			}
			if !reflect.DeepEqual(got.Report, want.Report) {
				t.Fatalf("workers=%d run %d: reports differ", workers, run)
			}
			if !reflect.DeepEqual(got.Phases, want.Phases) {
				t.Fatalf("workers=%d run %d: phase costs differ", workers, run)
			}
			if !reflect.DeepEqual(got.Traffic, want.Traffic) {
				t.Fatalf("workers=%d run %d: traffic matrices differ", workers, run)
			}
		}
	}
}

// TestFusionBitIdentity is the fusion-boundary property test: across
// graph families × wire formats × both R4 strategies, every point of
// the (schedule, fuse) ablation grid must agree with the default
// configuration on all observables. Fused panel chains interleave
// their ledger charges through the PanelUpdateMultiScratch hooks and
// coalesced relay runs preserve per-rank program order, so the charge
// sequence — and therefore every report — is invariant.
func TestFusionBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	graphs := []struct {
		name string
		g    *graph.Graph
		p    int
	}{
		{"grid", graph.Grid2D(8, 8, integerWeights(rng, 10)), 9},
		{"gnp", graph.RandomGNP(60, 0.08, integerWeights(rng, 5), rng), 9},
		{"tree", graph.RandomTree(80, graph.UnitWeights, rng), 49},
		{"rmat", graph.RMAT(6, 3, integerWeights(rng, 4), rng), 9},
		{"star", graph.Star(50, graph.UnitWeights), 9},
	}
	variants := []struct {
		sched Schedule
		fuse  Fuse
	}{
		{ScheduleCritical, FuseOff},
		{ScheduleFIFO, FuseOn},
		{ScheduleFIFO, FuseOff},
	}
	for _, tc := range graphs {
		for _, wire := range []WireFormat{WirePacked, WirePruned} {
			for _, strat := range []R4Strategy{R4Mapped, R4Sequential} {
				base := SparseOptions{Seed: 13, Wire: wire, R4Strategy: strat}
				want, err := SparseAPSPWith(tc.g, tc.p, base)
				if err != nil {
					t.Fatalf("%s/%v/r4=%d default: %v", tc.name, wire, strat, err)
				}
				for _, v := range variants {
					name := fmt.Sprintf("%s/%v/r4=%d/%v/fuse=%v", tc.name, wire, strat, v.sched, v.fuse)
					opts := base
					opts.Schedule, opts.Fuse = v.sched, v.fuse
					got, err := SparseAPSPWith(tc.g, tc.p, opts)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if !identicalMatrices(got.Dist, want.Dist) {
						t.Errorf("%s: distances differ from default schedule", name)
					}
					if !reflect.DeepEqual(got.Report, want.Report) {
						t.Errorf("%s: reports differ:\nablation %+v\ndefault  %+v", name, got.Report, want.Report)
					}
					if !reflect.DeepEqual(got.Phases, want.Phases) {
						t.Errorf("%s: phase costs differ", name)
					}
					if !reflect.DeepEqual(got.Traffic, want.Traffic) {
						t.Errorf("%s: traffic matrices differ", name)
					}
				}
			}
		}
	}
}

// TestExecWorkers checks the explicit worker-count knob: any positive
// count — including one beyond the machine size, which ExecuteOpts
// caps — yields bit-identical results, and the fused lowering
// schedules strictly fewer nodes than the 1:1 one.
func TestExecWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	g := graph.Grid2D(9, 9, integerWeights(rng, 10))
	ly, err := NewLayout(g, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := BuildPlan(ly, 9, WirePacked, R4Mapped)
	if err != nil {
		t.Fatal(err)
	}
	if on, off := pl.DataflowNodes(FuseOn), pl.DataflowNodes(FuseOff); on >= off {
		t.Errorf("DataflowNodes: fused %d >= unfused %d, fusion coalesced nothing", on, off)
	}
	var want *DistResult
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, sched := range []Schedule{ScheduleCritical, ScheduleFIFO} {
			got, err := pl.ExecuteOpts(pl.LayoutFor(g), ExecOpts{
				Kernel: semiring.KernelSerial, Executor: ExecDataflow,
				Schedule: sched, Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d %v: %v", workers, sched, err)
			}
			if want == nil {
				want = got
				continue
			}
			if !identicalMatrices(got.Dist, want.Dist) || !reflect.DeepEqual(got.Report, want.Report) {
				t.Errorf("workers=%d %v: result differs from workers=1", workers, sched)
			}
		}
	}
}

// TestOrderRCM checks the ordering knob: an Order=rcm solve must
// produce the same distances as the natural-order solve, reported in
// the input vertex order (integer weights keep the path sums
// float64-exact across orderings), and combining the knob with an
// explicit Layout — built for a different labeling — must be refused.
func TestOrderRCM(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	graphs := []struct {
		name string
		g    *graph.Graph
		p    int
	}{
		{"grid", graph.Grid2D(9, 9, integerWeights(rng, 10)), 9},
		{"tree", graph.RandomTree(90, graph.UnitWeights, rng), 49},
		{"star", graph.Star(60, graph.UnitWeights), 9},
	}
	for _, tc := range graphs {
		nat, err := SparseAPSPWith(tc.g, tc.p, SparseOptions{Seed: 7})
		if err != nil {
			t.Fatalf("%s natural: %v", tc.name, err)
		}
		rcm, err := SparseAPSPWith(tc.g, tc.p, SparseOptions{Seed: 7, Order: OrderRCM})
		if err != nil {
			t.Fatalf("%s rcm: %v", tc.name, err)
		}
		if !identicalMatrices(rcm.Dist, nat.Dist) {
			t.Errorf("%s: rcm distances differ from natural order", tc.name)
		}
	}
	g := graphs[0].g
	ly, err := NewLayout(g, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SparseAPSPWith(g, 9, SparseOptions{Seed: 7, Order: OrderRCM, Layout: ly}); err == nil {
		t.Error("Order=rcm with an explicit Layout: want an error, got nil")
	}
}

// TestProfileLabels is the pprof smoke test: with labels enabled, a
// CPU profile taken across dataflow solves must contain the op_kind
// label key, proving -cpuprofile runs attribute time per op class.
func TestProfileLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling smoke test; skipped in -short")
	}
	rng := rand.New(rand.NewSource(89))
	g := graph.Grid2D(14, 14, integerWeights(rng, 10))
	ly, err := NewLayout(g, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := BuildPlan(ly, 49, WirePacked, R4Mapped)
	if err != nil {
		t.Fatal(err)
	}
	EnableProfileLabels(true)
	defer EnableProfileLabels(false)
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cannot start CPU profile: %v", err)
	}
	// ~1s of solving so the 100 Hz sampler lands inside labeled nodes.
	for i := 0; i < 60; i++ {
		if _, err := pl.ExecuteOpts(ly, ExecOpts{Kernel: semiring.KernelSerial, Executor: ExecDataflow}); err != nil {
			pprof.StopCPUProfile()
			t.Fatal(err)
		}
	}
	pprof.StopCPUProfile()
	zr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("decompress profile: %v", err)
	}
	for _, key := range []string{"op_kind", "phase", "level"} {
		if !bytes.Contains(raw, []byte(key)) {
			t.Errorf("CPU profile lacks the %q label key", key)
		}
	}
}
