package apsp

import (
	"fmt"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// Dist1DFW is the unblocked distributed Floyd–Warshall in the lineage
// of Jenq and Sahni (ICPP'87), the paper's Section 2 example of what
// goes wrong without block structure: rows are striped over p
// processors, and each of the n pivot iterations broadcasts pivot row
// k from its owner to everyone. Latency is O(n·log p) — polynomial in
// n, which is why Table 2's contenders all use blocked layouts. Kept
// as the related-work baseline for the latency experiments.
func Dist1DFW(g *graph.Graph, p int) (*DistResult, error) {
	if p < 1 {
		return nil, fmt.Errorf("apsp: p=%d < 1", p)
	}
	n := g.N()
	starts := make([]int, p+1)
	for i := 0; i <= p; i++ {
		starts[i] = i * n / p
	}
	// Row stripes, built driver-side.
	stripes := make([]*semiring.Matrix, p)
	adj := g.AdjacencyMatrix()
	for r := 0; r < p; r++ {
		lo, hi := starts[r], starts[r+1]
		stripes[r] = semiring.FromSlice(hi-lo, n, adj[lo*n:hi*n])
	}
	ownerOf := func(k int) int {
		r := 0
		if n > 0 {
			r = k * p / n
		}
		for k < starts[r] {
			r--
		}
		for k >= starts[r+1] {
			r++
		}
		return r
	}

	machine := comm.NewMachine(p)
	group := make([]int, p)
	for i := range group {
		group[i] = i
	}
	err := machine.Run(func(ctx *comm.Ctx) {
		me := ctx.Rank()
		mine := stripes[me]
		ctx.SetMemory(int64(len(mine.V)))
		for k := 0; k < n; k++ {
			owner := ownerOf(k)
			var payload []float64
			if owner == me {
				lk := k - starts[me]
				payload = append([]float64(nil), mine.V[lk*n:(lk+1)*n]...)
			}
			var row []float64
			if p == 1 {
				row = payload
			} else {
				row = ctx.Bcast(group, owner, k, payload)
			}
			// Relax every local row through pivot k.
			var ops int64
			for i := 0; i < mine.Rows; i++ {
				dik := mine.V[i*n+k]
				irow := mine.V[i*n : (i+1)*n]
				for j, dkj := range row {
					if s := dik + dkj; s < irow[j] {
						irow[j] = s
					}
				}
				ops += int64(n)
			}
			ctx.AddFlops(ops)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("apsp: 1D FW solver failed: %w", err)
	}

	out := semiring.NewMatrix(n, n)
	for r := 0; r < p; r++ {
		copy(out.V[starts[r]*n:starts[r+1]*n], stripes[r].V)
	}
	return &DistResult{Dist: out, Report: machine.Report(), P: p, Traffic: machine.Traffic()}, nil
}
