package apsp

import (
	"fmt"
	"math"

	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// VerifyDistances checks that d is a plausible APSP distance matrix for
// g without recomputing APSP: square of the right size, zero diagonal,
// symmetric, bounded above by direct edges, closed under the triangle
// inequality, and with Inf exactly between different connected
// components. It returns the first violation found, or nil. Used by
// the examples and available to downstream users as a cheap O(n³)
// certificate (the triangle check dominates).
func VerifyDistances(g *graph.Graph, d *semiring.Matrix) error {
	n := g.N()
	if d.Rows != n || d.Cols != n {
		return fmt.Errorf("apsp: distance matrix is %dx%d for %d vertices", d.Rows, d.Cols, n)
	}
	for i := 0; i < n; i++ {
		if d.At(i, i) != 0 {
			return fmt.Errorf("apsp: d(%d,%d) = %v, want 0", i, i, d.At(i, i))
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dij, dji := d.At(i, j), d.At(j, i)
			if dij != dji && !(math.IsInf(dij, 1) && math.IsInf(dji, 1)) {
				return fmt.Errorf("apsp: asymmetric distances d(%d,%d)=%v, d(%d,%d)=%v", i, j, dij, j, i, dji)
			}
		}
	}
	// Direct edges upper-bound distances.
	for _, e := range g.Edges() {
		if d.At(e.U, e.V) > e.W+1e-9 {
			return fmt.Errorf("apsp: d(%d,%d) = %v exceeds edge weight %v", e.U, e.V, d.At(e.U, e.V), e.W)
		}
	}
	// Triangle inequality over all triples.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d.At(i, k)
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if dik+d.At(k, j) < d.At(i, j)-1e-9 {
					return fmt.Errorf("apsp: triangle violation d(%d,%d)=%v > d(%d,%d)+d(%d,%d)=%v",
						i, j, d.At(i, j), i, k, k, j, dik+d.At(k, j))
				}
			}
		}
	}
	// Reachability structure: finite iff same component.
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	for c, vs := range g.Components() {
		for _, v := range vs {
			comp[v] = c
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			finite := !math.IsInf(d.At(i, j), 1)
			if finite != (comp[i] == comp[j]) {
				return fmt.Errorf("apsp: d(%d,%d) finiteness %v contradicts component structure", i, j, finite)
			}
		}
	}
	return nil
}

// VerifyPaths certifies that res's successor structure is consistent
// with its distance matrix on g: every reachable pair yields a
// well-formed path (right endpoints, existing edges, acyclic walk)
// whose edge-weight sum equals the stored distance, and every
// unreachable pair yields no path. It is the path-level counterpart of
// VerifyDistances, used to check repaired oracles against the graphs
// they now serve. Cost is O(n² · average path length).
func VerifyPaths(g *graph.Graph, res *PathResult) error {
	n := g.N()
	if res == nil || res.n != n || res.Dist == nil || res.Dist.Rows != n || res.Dist.Cols != n {
		return fmt.Errorf("apsp: VerifyPaths: result does not cover %d vertices", n)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			duv := res.Dist.At(u, v)
			if res.next[u*n+v] == -1 {
				if !math.IsInf(duv, 1) {
					return fmt.Errorf("apsp: VerifyPaths: d(%d,%d)=%g but no successor", u, v, duv)
				}
				continue
			}
			if math.IsInf(duv, 1) {
				return fmt.Errorf("apsp: VerifyPaths: successor stored for unreachable pair (%d,%d)", u, v)
			}
			// Walk the successor chain without Path's panic-on-cycle.
			sum, cur, hops := 0.0, u, 0
			for cur != v {
				nxt := int(res.next[cur*n+v])
				if nxt < 0 {
					return fmt.Errorf("apsp: VerifyPaths: successor chain (%d,%d) breaks at %d", u, v, cur)
				}
				w, ok := g.HasEdge(cur, nxt)
				if !ok {
					return fmt.Errorf("apsp: VerifyPaths: successor step %d→%d of pair (%d,%d) is not an edge", cur, nxt, u, v)
				}
				sum += w
				cur = nxt
				if hops++; hops > n {
					return fmt.Errorf("apsp: VerifyPaths: successor chain (%d,%d) is cyclic", u, v)
				}
			}
			if !tightSum(sum, duv) {
				return fmt.Errorf("apsp: VerifyPaths: path weight %g for pair (%d,%d) does not match d=%g", sum, u, v, duv)
			}
		}
	}
	return nil
}
