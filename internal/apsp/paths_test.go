package apsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sparseapsp/internal/graph"
)

func TestDist1DFWMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for name, g := range testGraphs(rng) {
		want, _ := FloydWarshall(g)
		for _, p := range []int{1, 3, 7} {
			res, err := Dist1DFW(g, p)
			if err != nil {
				t.Errorf("%s p=%d: %v", name, p, err)
				continue
			}
			if !res.Dist.EqualTol(want, 1e-9) {
				t.Errorf("%s p=%d: Dist1DFW diverges", name, p)
			}
		}
	}
}

// The Section 2 point about Jenq–Sahni: without blocking, latency is
// Θ(n·log p) — it must grow linearly with n, unlike every blocked
// algorithm.
func TestDist1DFWLatencyGrowsWithN(t *testing.T) {
	lat := func(side int) int64 {
		g := graph.Grid2D(side, side, graph.UnitWeights)
		res, err := Dist1DFW(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.Critical.Latency
	}
	l10, l20 := lat(10), lat(20)
	// n quadruples (100 -> 400): latency should too, within slack.
	if l20 < 3*l10 {
		t.Errorf("1D FW latency grew too slowly: %d -> %d", l10, l20)
	}
	// And it must dwarf the blocked 2D variant's latency.
	g := graph.Grid2D(20, 20, graph.UnitWeights)
	blocked, err := Dist2DFW(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if l20 <= 5*blocked.Report.Critical.Latency {
		t.Errorf("1D latency %d not far above blocked %d", l20, blocked.Report.Critical.Latency)
	}
}

func TestDist1DFWRejectsBadP(t *testing.T) {
	if _, err := Dist1DFW(graph.New(3), 0); err == nil {
		t.Error("expected error for p=0")
	}
}

func TestFloydWarshallPathsSmall(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 10)
	pr := FloydWarshallPaths(g)
	path := pr.Path(0, 3)
	want := []int{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if w := PathWeight(g, path); w != 4 {
		t.Errorf("path weight = %v, want 4", w)
	}
}

func TestPathEdgeCases(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	pr := FloydWarshallPaths(g)
	if p := pr.Path(0, 0); len(p) != 1 || p[0] != 0 {
		t.Errorf("self path = %v", p)
	}
	if p := pr.Path(0, 2); p != nil {
		t.Errorf("unreachable path = %v, want nil", p)
	}
	if w := PathWeight(g, nil); !math.IsInf(w, 1) {
		t.Error("empty path weight should be Inf")
	}
	if w := PathWeight(g, []int{0, 2}); !math.IsInf(w, 1) {
		t.Error("invalid path weight should be Inf")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range query")
			}
		}()
		pr.Path(0, 5)
	}()
}

// Property: successor structures extracted from a finished distance
// matrix (any solver) reconstruct real shortest paths, matching the
// in-loop successors of FloydWarshallPaths.
func TestQuickSuccessorsFromDist(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := graph.RandomGNP(n, 3.0/float64(n), graph.RandomWeights(rng, 1, 10), rng)
		d, _ := FloydWarshall(g)
		pr, err := SuccessorsFromDist(g, d)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				dist := d.At(u, v)
				path := pr.Path(u, v)
				if math.IsInf(dist, 1) {
					if path != nil {
						return false
					}
					continue
				}
				if path[0] != u || path[len(path)-1] != v {
					return false
				}
				if math.Abs(PathWeight(g, path)-dist) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Zero-weight edges make the tight-edge graph cyclic; the BFS-tree
// extraction must still terminate and return genuine shortest paths.
func TestSuccessorsFromDistZeroWeightCycle(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(2, 0, 0)
	g.AddEdge(2, 3, 5)
	d, _ := FloydWarshall(g)
	pr, err := SuccessorsFromDist(g, d)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			path := pr.Path(u, v)
			if w := PathWeight(g, path); w != d.At(u, v) {
				t.Errorf("Path(%d,%d) = %v weight %g, want %g", u, v, path, w, d.At(u, v))
			}
		}
	}
}

func TestSuccessorsFromDistRejectsBadInput(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	if _, err := SuccessorsFromDist(nil, nil); err == nil {
		t.Error("nil graph: want error")
	}
	d, _ := FloydWarshall(g)
	if _, err := SuccessorsFromDist(graph.New(4), d); err == nil {
		t.Error("dimension mismatch: want error")
	}
	// Distances no edge sequence can explain.
	bad := d.Clone()
	bad.Set(0, 1, 0.5)
	if _, err := SuccessorsFromDist(g, bad); err == nil {
		t.Error("inconsistent distances: want error")
	}
	neg := graph.New(2)
	neg.AddEdge(0, 1, -1)
	dn, _ := FloydWarshall(neg)
	if _, err := SuccessorsFromDist(neg, dn); err == nil {
		t.Error("negative edge: want error")
	}
}

func TestPathResultMemoryBytes(t *testing.T) {
	g := graph.Grid2D(4, 4, graph.UnitWeights)
	pr := FloydWarshallPaths(g)
	n := int64(g.N())
	if got, want := pr.MemoryBytes(), n*n*8+n*n*4; got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
	if pr.N() != g.N() {
		t.Errorf("N = %d, want %d", pr.N(), g.N())
	}
}

// Property: every reconstructed path is a real path in the graph whose
// weight equals the distance matrix entry.
func TestQuickPathsAreShortest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := graph.RandomGNP(n, 3.0/float64(n), graph.RandomWeights(rng, 1, 10), rng)
		pr := FloydWarshallPaths(g)
		ref, _ := FloydWarshall(g)
		if !pr.Dist.EqualTol(ref, 1e-9) {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			u, v := rng.Intn(n), rng.Intn(n)
			path := pr.Path(u, v)
			d := pr.Dist.At(u, v)
			if math.IsInf(d, 1) {
				if path != nil {
					return false
				}
				continue
			}
			if len(path) == 0 || path[0] != u || path[len(path)-1] != v {
				return false
			}
			if math.Abs(PathWeight(g, path)-d) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
