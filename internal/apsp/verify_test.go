package apsp

import (
	"math/rand"
	"testing"

	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

func TestVerifyDistancesAcceptsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for name, g := range testGraphs(rng) {
		d, _ := FloydWarshall(g)
		if err := VerifyDistances(g, d); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestVerifyDistancesCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	g := graph.RandomGNP(20, 0.2, graph.RandomWeights(rng, 1, 9), rng)
	base, _ := FloydWarshall(g)

	corruptions := []struct {
		name string
		mut  func(d *semiring.Matrix)
	}{
		{"diagonal", func(d *semiring.Matrix) { d.Set(3, 3, 1) }},
		{"asymmetry", func(d *semiring.Matrix) { d.Set(2, 5, d.At(2, 5)+1) }},
		{"edge-bound", func(d *semiring.Matrix) {
			e := g.Edges()[0]
			d.Set(e.U, e.V, e.W+5)
			d.Set(e.V, e.U, e.W+5)
		}},
		{"fake-inf", func(d *semiring.Matrix) {
			d.Set(1, 7, semiring.Inf)
			d.Set(7, 1, semiring.Inf)
		}},
		{"too-short", func(d *semiring.Matrix) {
			// Shorter than any path can be: breaks triangle via reverse
			// direction or edge bound... use a negative entry.
			d.Set(4, 9, -1)
			d.Set(9, 4, -1)
		}},
	}
	for _, c := range corruptions {
		d := base.Clone()
		c.mut(d)
		if err := VerifyDistances(g, d); err == nil {
			t.Errorf("%s: corruption not detected", c.name)
		}
	}
	// Wrong shape.
	if err := VerifyDistances(g, semiring.NewMatrix(3, 3)); err == nil {
		t.Error("shape mismatch not detected")
	}
}
