package apsp

import (
	"fmt"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// The numeric half of 2D-SPARSE-APSP: replay a Plan against actual
// edge weights on the simulated machine. The executor makes no
// symbolic decisions — every group, root, tag, skip and unit
// assignment was frozen into the Plan — so each rank simply walks its
// precomputed step list, entering the collectives it belongs to in the
// order the fused solver would have entered them. That replay is
// bit-identical to the pre-split solver in both distances and charged
// costs (the golden cost test pins all of latency, bandwidth, flops,
// message/word totals and peak memory per graph family × wire format ×
// R4 strategy).

// LayoutFor wraps g in a Layout that reuses the plan's cached symbolic
// state. This is the warm serving path: the only per-solve work is the
// O(n + m) permutation of the weights — no nested dissection, no
// eTree, no fill mask.
func (pl *Plan) LayoutFor(g *graph.Graph) *Layout {
	return &Layout{
		G:    g,
		PG:   g.Permute(pl.ND.Perm),
		ND:   pl.ND,
		Tree: pl.Tree,
		Fill: pl.Fill,
	}
}

// Execute runs the plan against ly's weights and returns the assembled
// distances plus the machine's cost report. ly must carry the
// structure the plan was built from (same ordering, tree and mask);
// LayoutFor produces such a layout for any graph sharing the plan's
// StructureFingerprint. Safe to call concurrently on one Plan.
// Execute uses the default (dataflow) executor; ExecuteWith selects.
func (pl *Plan) Execute(ly *Layout, kern semiring.Kernel) (*DistResult, error) {
	return pl.ExecuteWith(ly, kern, ExecDataflow)
}

// ExecuteWith is Execute with an explicit executor choice. The two
// engines are interchangeable: distances, report, phases and traffic
// are bit-identical (pinned by the golden cost test and the
// executor-equality property test).
func (pl *Plan) ExecuteWith(ly *Layout, kern semiring.Kernel, ex Executor) (*DistResult, error) {
	return pl.ExecuteOpts(ly, ExecOpts{Kernel: kern, Executor: ex})
}

// ExecOpts bundles the execution-time knobs of a Plan replay. The zero
// value is the default engine: dataflow executor, serial kernel,
// critical-path schedule, fusion on, auto worker count. Schedule, Fuse
// and Workers shape only the dataflow executor's scheduling — every
// combination produces bit-identical distances and charged costs; the
// machine executor ignores them.
type ExecOpts struct {
	Kernel   semiring.Kernel
	Executor Executor
	Schedule Schedule
	Fuse     Fuse
	// Workers bounds the dataflow executor's worker pool. 0 means auto
	// (the shared pool's size, capped at p); explicit values are capped
	// at p, and the pool itself never runs more than its own size
	// concurrently.
	Workers int
}

// ExecuteOpts is Execute with the full set of execution knobs; see
// ExecOpts.
func (pl *Plan) ExecuteOpts(ly *Layout, o ExecOpts) (*DistResult, error) {
	if ly.Tree.H != pl.H || ly.ND.N != pl.NSup {
		return nil, fmt.Errorf("apsp: layout (h=%d, N=%d) does not match plan (h=%d, N=%d)",
			ly.Tree.H, ly.ND.N, pl.H, pl.NSup)
	}
	if o.Executor == ExecMachine {
		return pl.executeMachine(ly, o.Kernel)
	}
	return pl.executeDataflow(ly, o)
}

// executeMachine runs the plan on the simulated machine, one goroutine
// per rank — the reference executor.
func (pl *Plan) executeMachine(ly *Layout, kern semiring.Kernel) (*DistResult, error) {
	blocks, release := ly.BlocksPooled()
	machine := comm.NewMachine(pl.P)
	err := machine.Run(func(ctx *comm.Ctx) {
		e := &planExec{
			ctx:     ctx,
			pl:      pl,
			sizes:   pl.ND.Sizes,
			kern:    kern,
			steps:   pl.ranks[ctx.Rank()],
			scratch: semiring.NewArena(pl.ScratchWords(ctx.Rank())),
		}
		myI := ctx.Rank()/pl.NSup + 1
		myJ := ctx.Rank()%pl.NSup + 1
		e.A = blocks[myI][myJ]
		e.run()
	})
	if err != nil {
		return nil, fmt.Errorf("apsp: sparse solver failed: %w", err)
	}
	phases, err := machine.PhaseCosts()
	if err != nil {
		return nil, fmt.Errorf("apsp: phase accounting failed: %w", err)
	}
	dist := ly.AssembleOriginal(blocks)
	release()
	return &DistResult{
		Dist:    dist,
		Report:  machine.Report(),
		Layout:  ly,
		P:       pl.P,
		Phases:  phases,
		Traffic: machine.Traffic(),
	}, nil
}

// planExec is one rank's executor state: the owned block, the rank's
// step lists, and a scratch arena sized from the plan so the R2 panel
// updates allocate no per-level temporaries.
type planExec struct {
	ctx     *comm.Ctx
	pl      *Plan
	sizes   []int
	kern    semiring.Kernel
	steps   []rankLevel
	A       *semiring.Matrix
	scratch *semiring.Arena
}

// pack encodes a block body for the wire exactly as the fused solver
// did: the packed encoding in WirePacked mode (the machine charges
// bandwidth per payload word, so the packed length IS the charged
// cost), a plain copy in WireDense mode, and the demand-aware encoding
// (numeric row/column trim, no symbolic descriptor) in WirePruned
// mode. Always copies — collective receivers share the payload's
// backing array, and the executor's scratch arena must never back a
// payload for the same reason.
func (e *planExec) pack(m *semiring.Matrix) []float64 {
	switch e.pl.Wire {
	case WireDense:
		return append([]float64(nil), m.V...)
	case WirePruned:
		return semiring.PackPruned(m, nil, nil, false)
	default:
		return semiring.PackMatrix(m)
	}
}

// packPruned is pack plus the op's frozen demand descriptor: under
// WirePruned the payload ships only the rows/columns some receiver can
// use (see demand.go); the other wire modes ignore the descriptor.
func (e *planExec) packPruned(m *semiring.Matrix, prune *PruneSpec) []float64 {
	if e.pl.Wire == WirePruned && prune != nil {
		return semiring.PackPruned(m, prune.Rows, prune.Cols, prune.ZeroDiag)
	}
	return e.pack(m)
}

// unpack decodes a received payload into a rows×cols block. The result
// always owns its body — never the payload's backing array, which every
// sibling receiver of the collective shares.
func (e *planExec) unpack(data []float64, rows, cols int) *semiring.Matrix {
	if e.pl.Wire == WireDense {
		return semiring.FromSlice(rows, cols, append([]float64(nil), data...))
	}
	return semiring.UnpackMatrix(data, rows, cols)
}

func (e *planExec) run() {
	e.ctx.SetMemory(int64(len(e.A.V)))
	for li := range e.pl.Levels {
		e.level(&e.pl.Levels[li], &e.steps[li])
		e.ctx.Mark(fmt.Sprintf("level-%d", li+1))
	}
}

func (e *planExec) level(lv *planLevel, st *rankLevel) {
	rank := e.ctx.Rank()

	// ---- R_l^1: diagonal update, local. ----
	if st.Diag {
		e.ctx.AddFlops(e.kern.ClassicalFW(e.A))
	}

	// ---- R_l^2: pivot broadcasts and panel updates. ----
	e.ctx.SetSendClass(comm.SendR2)
	for _, x := range st.R2 {
		op := &lv.R2[x]
		var payload []float64
		if rank == op.Root {
			payload = e.packPruned(e.A, op.Prune) // copy: receivers share the buffer
		}
		data := e.ctx.Bcast(op.Group, op.Root, op.Tag, payload)
		if !contains(op.Consumers, rank) {
			continue
		}
		dk := e.unpack(data, e.sizes[op.BI], e.sizes[op.BJ])
		e.ctx.AddMemory(int64(len(dk.V)))
		if op.Kind == opR2Left {
			e.ctx.AddFlops(e.kern.PanelUpdateLeftScratch(e.A, dk, e.scratch))
		} else {
			e.ctx.AddFlops(e.kern.PanelUpdateRightScratch(e.A, dk, e.scratch))
		}
		e.ctx.AddMemory(-int64(len(dk.V)))
	}

	// ---- R_l^3: panel broadcasts and the one-unit update. ----
	e.ctx.SetSendClass(comm.SendR3)
	var rowPanel, colPanel *semiring.Matrix
	for _, x := range st.R3 {
		op := &lv.R3[x]
		var payload []float64
		if rank == op.Root {
			payload = e.packPruned(e.A, op.Prune)
		}
		data := e.ctx.Bcast(op.Group, op.Root, op.Tag, payload)
		if !contains(op.Consumers, rank) {
			continue
		}
		m := e.unpack(data, e.sizes[op.BI], e.sizes[op.BJ])
		e.ctx.AddMemory(int64(len(m.V)))
		if op.Kind == opR3Row {
			rowPanel = m
		} else {
			colPanel = m
		}
	}
	if rowPanel != nil && colPanel != nil {
		e.ctx.AddFlops(e.kern.MulAddInto(e.A, rowPanel, colPanel))
	}
	if rowPanel != nil {
		e.ctx.AddMemory(-int64(len(rowPanel.V)))
	}
	if colPanel != nil {
		e.ctx.AddMemory(-int64(len(colPanel.V)))
	}

	// ---- R_l^4, mapped strategy: panel broadcasts to the unit
	// processors, unit products, binomial reduces. ----
	e.ctx.SetSendClass(comm.SendR4Panel)
	var unit, unitAik, unitAkj *semiring.Matrix
	for _, x := range st.R4Col {
		op := &lv.R4Col[x]
		var payload []float64
		if rank == op.Root {
			payload = e.packPruned(e.A, op.Prune)
		}
		data := e.ctx.Bcast(op.Group, op.Root, op.Tag, payload)
		if contains(op.Consumers, rank) {
			unitAik = e.unpack(data, e.sizes[op.BI], e.sizes[op.BJ])
			e.ctx.AddMemory(int64(len(unitAik.V)))
		}
	}
	for _, x := range st.R4Row {
		op := &lv.R4Row[x]
		var payload []float64
		if rank == op.Root {
			payload = e.packPruned(e.A, op.Prune)
		}
		data := e.ctx.Bcast(op.Group, op.Root, op.Tag, payload)
		if contains(op.Consumers, rank) {
			unitAkj = e.unpack(data, e.sizes[op.BI], e.sizes[op.BJ])
			e.ctx.AddMemory(int64(len(unitAkj.V)))
		}
	}
	if st.Unit >= 0 {
		// The plan guarantees both operand broadcasts above were planned
		// with this rank as a consumer, so the operands are present.
		u := lv.R4Units[st.Unit]
		unit = semiring.NewMatrix(e.sizes[u.I], e.sizes[u.J])
		e.ctx.AddMemory(int64(len(unit.V)))
		e.ctx.AddFlops(e.kern.MulAddInto(unit, unitAik, unitAkj))
	}
	e.ctx.SetSendClass(comm.SendR4Reduce)
	for _, x := range st.Reduce {
		op := &lv.R4Reduce[x]
		var data []float64
		if contains(op.Group, rank) {
			data = unit.V
		}
		res := e.ctx.ReduceTo(op.Group, op.Root, op.Tag, data, semiring.MinInto)
		if rank == op.Root {
			semiring.MinInto(e.A.V, res)
			e.ctx.AddFlops(int64(len(res)))
		}
	}
	if unit != nil {
		e.ctx.AddMemory(-int64(len(unit.V)))
	}
	if unitAik != nil {
		e.ctx.AddMemory(-int64(len(unitAik.V)))
	}
	if unitAkj != nil {
		e.ctx.AddMemory(-int64(len(unitAkj.V)))
	}

	// ---- R_l^4, sequential ablation: panel owners send, the block
	// owner folds locally. ----
	e.ctx.SetSendClass(comm.SendR4Seq)
	for _, x := range st.Seq {
		op := &lv.R4Seq[x]
		if rank == op.AikOwner && op.Owner != op.AikOwner {
			e.ctx.Send(op.Owner, op.TagA, e.packPruned(e.A, op.PruneA))
		}
		if rank == op.AkjOwner && op.Owner != op.AkjOwner {
			e.ctx.Send(op.Owner, op.TagB, e.packPruned(e.A, op.PruneB))
		}
		if rank == op.Owner {
			var aik, akj *semiring.Matrix
			var transient int64
			if op.Owner == op.AikOwner {
				aik = e.A
			} else {
				data := e.ctx.Recv(op.AikOwner, op.TagA)
				aik = e.unpack(data, e.sizes[op.BI], e.sizes[op.K])
				transient += int64(len(aik.V))
			}
			if op.Owner == op.AkjOwner {
				akj = e.A
			} else {
				data := e.ctx.Recv(op.AkjOwner, op.TagB)
				akj = e.unpack(data, e.sizes[op.K], e.sizes[op.BJ])
				transient += int64(len(akj.V))
			}
			e.ctx.AddMemory(transient)
			e.ctx.AddFlops(e.kern.MulAddInto(e.A, aik, akj))
			e.ctx.AddMemory(-transient)
		}
	}

	// ---- Transpose sends (Algorithm 1 line 25). Never symbolically
	// pruned — the receiver's block BECOMES the payload (replace, not
	// fold) — but the pack-time numeric trim still applies. ----
	e.ctx.SetSendClass(comm.SendTrans)
	for _, x := range st.Trans {
		op := &lv.Trans[x]
		if rank == op.Src {
			e.ctx.Send(op.Dst, op.Tag, e.pack(e.A))
		}
		if rank == op.Dst {
			data := e.ctx.Recv(op.Src, op.Tag)
			src := e.unpack(data, e.sizes[op.BI], e.sizes[op.BJ])
			e.A.CopyFrom(src.Transpose())
		}
	}
}

func contains(list []int, x int) bool {
	for _, v := range list {
		if v == x {
			return true
		}
	}
	return false
}
