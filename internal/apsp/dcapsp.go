package apsp

import (
	"fmt"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// DCAPSP runs the 2D divide-and-conquer APSP of Solomonik, Buluç and
// Demmel (IPDPS'13) — the paper's dense comparator — on a simulated
// machine of p processors (p a perfect square).
//
// The distance matrix is laid out block-cyclically over the √p × √p
// grid: block (bi, bj) of size b×b lives on processor
// (bi mod √p, bj mod √p), with b ≈ n/(c·√p) for a small cyclic factor
// c. The Kleene recursion
//
//	A11 ← APSP(A11);  A12 ← A11⊗A12;  A21 ← A21⊗A11;
//	A22 ← A22 ⊕ A21⊗A12;  A22 ← APSP(A22);
//	A21 ← A22⊗A21;  A12 ← A12⊗A22;  A11 ← A11 ⊕ A12⊗A21
//
// splits block ranges in half down to single blocks (solved locally by
// ClassicalFW on the owner), and every min-plus multiplication is a
// SUMMA sweep: per panel step, the owners broadcast their A blocks
// along grid rows and B blocks down grid columns, and every processor
// folds the product into its local C blocks. Bandwidth is
// O(n²/√p·log p) and latency O(√p·log²p) with binomial broadcasts —
// the Table 2 dense column.
//
// Like the sparse solver, DCAPSP is split symbolic/numeric: the Kleene
// recursion is unrolled once into a flat dcSchedule (it depends only
// on the block count, not on weights), and each rank replays the
// schedule. The cyclic factor trades latency (grows with c) against
// load balance during the recursion (improves with c); c = 4 is the
// default used by the experiments, and BenchmarkLayoutAblation sweeps
// it.
func DCAPSP(g *graph.Graph, p int, cyclicFactor int) (*DistResult, error) {
	return DCAPSPKernel(g, p, cyclicFactor, semiring.KernelSerial)
}

// DCAPSPKernel is DCAPSP with an explicit min-plus kernel for each
// rank's local block arithmetic. Distances, operation counts and the
// simulated cost report are identical for every kernel.
func DCAPSPKernel(g *graph.Graph, p int, cyclicFactor int, kern semiring.Kernel) (*DistResult, error) {
	grid, err := comm.NewSquareGrid(p)
	if err != nil {
		return nil, err
	}
	if cyclicFactor < 1 {
		return nil, fmt.Errorf("apsp: cyclic factor %d < 1", cyclicFactor)
	}
	s := grid.Rows
	n := g.N()
	if n == 0 {
		return &DistResult{Dist: semiring.NewMatrix(0, 0), Report: comm.NewMachine(p).Report(), P: p}, nil
	}
	b := (n + cyclicFactor*s - 1) / (cyclicFactor * s)
	nb := (n + b - 1) / b

	// Build the owned blocks of every rank up front (driver side).
	blocks := make([]map[[2]int]*semiring.Matrix, p)
	for r := range blocks {
		blocks[r] = make(map[[2]int]*semiring.Matrix)
	}
	dim := func(t int) int {
		hi := (t + 1) * b
		if hi > n {
			hi = n
		}
		return hi - t*b
	}
	ownerOf := func(bi, bj int) int { return grid.Rank(bi%s, bj%s) }
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			m := semiring.NewMatrix(dim(bi), dim(bj))
			if bi == bj {
				for d := 0; d < m.Rows; d++ {
					m.Set(d, d, 0)
				}
			}
			blocks[ownerOf(bi, bj)][[2]int{bi, bj}] = m
		}
	}
	for v := 0; v < n; v++ {
		bi, li := v/b, v%b
		for _, e := range g.Adj(v) {
			bj, lj := e.To/b, e.To%b
			blk := blocks[ownerOf(bi, bj)][[2]int{bi, bj}]
			if e.W < blk.At(li, lj) {
				blk.Set(li, lj, e.W)
			}
		}
	}

	sched := buildDCSchedule(nb)
	machine := comm.NewMachine(p)
	err = machine.Run(func(ctx *comm.Ctx) {
		w := &dcWorker{
			ctx:   ctx,
			grid:  grid,
			s:     s,
			nb:    nb,
			dim:   dim,
			local: blocks[ctx.Rank()],
			kern:  kern,
		}
		w.myI, w.myJ = grid.Coords(ctx.Rank())
		var words int64
		for _, m := range w.local {
			words += int64(len(m.V))
		}
		ctx.SetMemory(words)
		w.run(sched)
	})
	if err != nil {
		return nil, fmt.Errorf("apsp: DC-APSP solver failed: %w", err)
	}

	// Reassemble.
	out := semiring.NewMatrix(n, n)
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			m := blocks[ownerOf(bi, bj)][[2]int{bi, bj}]
			for r := 0; r < m.Rows; r++ {
				copy(out.V[(bi*b+r)*n+bj*b:(bi*b+r)*n+bj*b+m.Cols], m.V[r*m.Cols:(r+1)*m.Cols])
			}
		}
	}
	return &DistResult{Dist: out, Report: machine.Report(), P: p, Traffic: machine.Traffic()}, nil
}

// dcStep is one step of the unrolled Kleene recursion: a local
// ClassicalFW on diagonal block T (Summa == false), or one SUMMA panel
// step C[ri, rj] ⊕= A[ri, T] ⊗ B[T, rj] under tag family Family.
type dcStep struct {
	Summa              bool
	T                  int
	RI0, RI1, RJ0, RJ1 int
	Family             int
}

// dcSchedule is the symbolic artifact of the dense solver: the Kleene
// recursion flattened to a step list, with every tag family
// preallocated. It depends only on the block count nb — never on
// weights or ranks — so every rank replays the same schedule and the
// communication pattern is identical to the fused recursion.
type dcSchedule struct {
	nb    int
	steps []dcStep
}

// buildDCSchedule unrolls the recursion apsp(0, nb), assigning tag
// families in the order the fused solver's per-rank tagSeq counter
// advanced (which was deterministic and identical on every rank —
// that invariant now lives in one place instead of p).
func buildDCSchedule(nb int) *dcSchedule {
	sch := &dcSchedule{nb: nb}
	family := 0
	summa := func(ri0, ri1, rk0, rk1, rj0, rj1 int) {
		for t := rk0; t < rk1; t++ {
			family++
			sch.steps = append(sch.steps, dcStep{
				Summa: true, T: t,
				RI0: ri0, RI1: ri1, RJ0: rj0, RJ1: rj1,
				Family: family,
			})
		}
	}
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo == 1 {
			sch.steps = append(sch.steps, dcStep{T: lo})
			return
		}
		mid := lo + (hi-lo)/2
		rec(lo, mid)
		summa(lo, mid, lo, mid, mid, hi) // A12 ⊕= A11 ⊗ A12
		summa(mid, hi, lo, mid, lo, mid) // A21 ⊕= A21 ⊗ A11
		summa(mid, hi, lo, mid, mid, hi) // A22 ⊕= A21 ⊗ A12
		rec(mid, hi)
		summa(mid, hi, mid, hi, lo, mid) // A21 ⊕= A22 ⊗ A21
		summa(lo, mid, mid, hi, mid, hi) // A12 ⊕= A12 ⊗ A22
		summa(lo, mid, mid, hi, lo, mid) // A11 ⊕= A12 ⊗ A21
	}
	rec(0, nb)
	return sch
}

type dcWorker struct {
	ctx      *comm.Ctx
	grid     comm.Grid
	s, nb    int
	dim      func(int) int
	local    map[[2]int]*semiring.Matrix
	myI, myJ int
	kern     semiring.Kernel // min-plus kernel for local block arithmetic
}

func (w *dcWorker) tag(family, x int) int { return family*4096 + x }

// run replays the schedule: the numeric phase of the dense solver.
func (w *dcWorker) run(sch *dcSchedule) {
	for _, st := range sch.steps {
		if !st.Summa {
			if blk, mine := w.local[[2]int{st.T, st.T}]; mine {
				w.ctx.AddFlops(w.kern.ClassicalFW(blk))
			}
			continue
		}
		w.summaStep(st)
	}
}

// summaStep folds C[ri, rj] ⊕= A[ri, t] ⊗ B[t, rj] for one panel index
// t (the Kleene steps alias ranges deliberately; idempotence of closed
// operands makes in-place folding exact).
func (w *dcWorker) summaStep(st dcStep) {
	t := st.T
	rowPanels := make(map[int][]float64)
	colPanels := make(map[int][]float64)
	// Broadcast A(bi, t) along grid row bi%s, for every block row.
	for bi := st.RI0; bi < st.RI1; bi++ {
		if bi%w.s != w.myI {
			continue
		}
		root := w.grid.Rank(bi%w.s, t%w.s)
		var payload []float64
		if root == w.ctx.Rank() {
			payload = append([]float64(nil), w.local[[2]int{bi, t}].V...)
		}
		data := w.ctx.Bcast(w.grid.RowRanks(w.myI), root, w.tag(2*st.Family, bi), payload)
		rowPanels[bi] = data
		w.ctx.AddMemory(int64(len(data)))
	}
	// Broadcast B(t, bj) down grid column bj%s.
	for bj := st.RJ0; bj < st.RJ1; bj++ {
		if bj%w.s != w.myJ {
			continue
		}
		root := w.grid.Rank(t%w.s, bj%w.s)
		var payload []float64
		if root == w.ctx.Rank() {
			payload = append([]float64(nil), w.local[[2]int{t, bj}].V...)
		}
		data := w.ctx.Bcast(w.grid.ColRanks(w.myJ), root, w.tag(2*st.Family+1, bj), payload)
		colPanels[bj] = data
		w.ctx.AddMemory(int64(len(data)))
	}
	// Local multiply-accumulate into owned C blocks.
	for bi := st.RI0; bi < st.RI1; bi++ {
		if bi%w.s != w.myI {
			continue
		}
		a := semiring.FromSlice(w.dim(bi), w.dim(t), rowPanels[bi])
		for bj := st.RJ0; bj < st.RJ1; bj++ {
			if bj%w.s != w.myJ {
				continue
			}
			bm := semiring.FromSlice(w.dim(t), w.dim(bj), colPanels[bj])
			w.ctx.AddFlops(w.kern.MulAddInto(w.local[[2]int{bi, bj}], a, bm))
		}
	}
	for _, d := range rowPanels {
		w.ctx.AddMemory(-int64(len(d)))
	}
	for _, d := range colPanels {
		w.ctx.AddMemory(-int64(len(d)))
	}
}
