package apsp

import (
	"math"
	"math/rand"
	"testing"

	"sparseapsp/internal/graph"
)

// solvePaths runs the sparse solver and extracts successors — the
// from-scratch reference the repair path must match bit for bit.
func solvePaths(t *testing.T, g *graph.Graph, p int, sopts SparseOptions) *PathResult {
	t.Helper()
	res, err := SparseAPSPWith(g, p, sopts)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	pr, err := SuccessorsFromDist(g, res.Dist)
	if err != nil {
		t.Fatalf("successors: %v", err)
	}
	return pr
}

// pickEdits draws k distinct edges and reweights them: kind "dec"
// lowers each weight by 1 (possibly to 0), "inc" raises it by 1–5,
// "mixed" alternates. Integer weights in, integer weights out, so every
// path sum stays float64-exact and bit-identity is meaningful.
func pickEdits(g *graph.Graph, rng *rand.Rand, k int, kind string) []EdgeEdit {
	edges := g.Edges()
	if k > len(edges) {
		k = len(edges)
	}
	perm := rng.Perm(len(edges))
	edits := make([]EdgeEdit, 0, k)
	for i := 0; i < k; i++ {
		e := edges[perm[i]]
		up := kind == "inc" || (kind == "mixed" && i%2 == 1)
		if up {
			edits = append(edits, EdgeEdit{U: e.U, V: e.V, W: e.W + float64(rng.Intn(5)+1)})
		} else {
			edits = append(edits, EdgeEdit{U: e.U, V: e.V, W: e.W - 1})
		}
	}
	return edits
}

// TestRepairMatchesWarmExecute is the tentpole property test: across
// graph families, both wire formats and all edit mixes, Repair's
// distances are bit-identical to a from-scratch warm solve of the
// edited graph, the repaired successor structure passes VerifyPaths,
// and the previous result is left untouched (the registry serves it
// concurrently while the swap is in flight).
func TestRepairMatchesWarmExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	graphs := []struct {
		name string
		g    *graph.Graph
		p    int
	}{
		{"grid", graph.Grid2D(9, 9, integerWeights(rng, 10)), 9},
		{"gnp", graph.RandomGNP(70, 0.08, integerWeights(rng, 5), rng), 9},
		{"tree", graph.RandomTree(90, integerWeights(rng, 7), rng), 49},
		{"rmat", graph.RMAT(6, 3, integerWeights(rng, 4), rng), 9},
		{"star", graph.Star(60, integerWeights(rng, 3)), 9},
	}
	for _, tc := range graphs {
		for _, wire := range []WireFormat{WirePacked, WireDense} {
			sopts := SparseOptions{Seed: 11, Wire: wire, Plans: NewPlanCache()}
			prev := solvePaths(t, tc.g, tc.p, sopts)
			prevDist := prev.Dist.Clone()
			for _, kind := range []string{"dec", "inc", "mixed"} {
				k := tc.g.M() / 20
				if k < 1 {
					k = 1
				}
				edits := pickEdits(tc.g, rng, k, kind)
				got, g2, st, err := RepairWithOptions(tc.g, prev, edits, tc.p, sopts, 0)
				if err != nil {
					t.Fatalf("%s/%v/%s: repair: %v", tc.name, wire, kind, err)
				}
				want := solvePaths(t, g2, tc.p, sopts)
				if !identicalMatrices(got.Dist, want.Dist) {
					t.Errorf("%s/%v/%s: repaired distances differ from warm re-solve (stats %+v)", tc.name, wire, kind, st)
				}
				if err := VerifyPaths(g2, got); err != nil {
					t.Errorf("%s/%v/%s: repaired successors invalid: %v", tc.name, wire, kind, err)
				}
				if !identicalMatrices(prev.Dist, prevDist) {
					t.Fatalf("%s/%v/%s: Repair mutated the previous result", tc.name, wire, kind)
				}
				if st.Edits == 0 || st.Edits != st.Decreases+st.Increases {
					t.Errorf("%s/%v/%s: inconsistent stats %+v", tc.name, wire, kind, st)
				}
				if kind == "dec" && st.Increases != 0 {
					t.Errorf("%s/%v/%s: decrease-only edits recorded %d increases", tc.name, wire, kind, st.Increases)
				}
			}
			// The original solve populated the plan cache; the repairs
			// must have reused it instead of rebuilding the symbolic
			// phase (the whole point of repairing in place).
			if s := sopts.Plans.Stats(); s.Builds != 1 {
				t.Errorf("%s/%v: plan cache built %d times, want 1", tc.name, wire, s.Builds)
			}
		}
	}
}

// TestRepairFallback forces the damage threshold to zero-ish so every
// repair falls back to the warm Execute, and checks the fallback is
// just as exact and flagged in the stats.
func TestRepairFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Grid2D(9, 9, integerWeights(rng, 10))
	const p = 9
	sopts := SparseOptions{Seed: 5, Plans: NewPlanCache()}
	prev := solvePaths(t, g, p, sopts)
	edits := pickEdits(g, rng, 6, "mixed")

	got, g2, st, err := RepairWithOptions(g, prev, edits, p, sopts, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FellBack {
		t.Fatalf("threshold 1e-9 did not trigger fallback (stats %+v)", st)
	}
	want := solvePaths(t, g2, p, sopts)
	if !identicalMatrices(got.Dist, want.Dist) {
		t.Error("fallback distances differ from warm re-solve")
	}
	if err := VerifyPaths(g2, got); err != nil {
		t.Errorf("fallback successors invalid: %v", err)
	}

	// Threshold >= 1 must never fall back, even for heavy edits.
	heavy := pickEdits(g, rng, g.M()/2, "mixed")
	_, _, st2, err := RepairWithOptions(g, prev, heavy, p, sopts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.FellBack {
		t.Errorf("threshold 2 fell back anyway (stats %+v)", st2)
	}
}

// TestRepairEditValidation pins the error behavior: edits must name
// existing edges with finite non-negative weights, and ApplyEdits
// shares the exact same validation (the registry fingerprints the
// edited graph before repairing, so both must agree on what's legal).
func TestRepairEditValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Grid2D(5, 5, integerWeights(rng, 10))
	const p = 9
	prev := solvePaths(t, g, p, SparseOptions{Seed: 1})

	bad := [][]EdgeEdit{
		{{U: 0, V: 24, W: 3}},                    // not an edge
		{{U: 0, V: 0, W: 3}},                     // self-loop
		{{U: -1, V: 1, W: 3}},                    // out of range
		{{U: 0, V: 25, W: 3}},                    // out of range
		{{U: 0, V: 1, W: -2}},                    // negative weight
		{{U: 0, V: 1, W: math.NaN()}},            // NaN
		{{U: 0, V: 1, W: math.Inf(1)}},           // Inf (would delete the edge)
		{{U: 0, V: 1, W: 2}, {U: 5, V: 7, W: 1}}, // second edit bad, first fine
	}
	for i, edits := range bad {
		if _, _, _, err := RepairWithOptions(g, prev, edits, p, SparseOptions{Seed: 1}, 0); err == nil {
			t.Errorf("case %d: Repair accepted invalid edits %+v", i, edits)
		}
		if _, err := ApplyEdits(g, edits); err == nil {
			t.Errorf("case %d: ApplyEdits accepted invalid edits %+v", i, edits)
		}
	}

	// Duplicate edits: the last write wins, matching ApplyEdits.
	w01, _ := g.HasEdge(0, 1)
	dup := []EdgeEdit{{U: 0, V: 1, W: w01 + 4}, {U: 1, V: 0, W: w01 + 2}}
	got, g2, st, err := RepairWithOptions(g, prev, dup, p, SparseOptions{Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g2.HasEdge(0, 1); w != w01+2 {
		t.Errorf("duplicate edits: edge {0,1} weight %g, want last write %g", w, w01+2)
	}
	if st.Edits != 1 {
		t.Errorf("duplicate edits collapsed to %d deltas, want 1", st.Edits)
	}
	want := solvePaths(t, g2, p, SparseOptions{Seed: 1})
	if !identicalMatrices(got.Dist, want.Dist) {
		t.Error("duplicate-edit repair differs from re-solve")
	}

	// No-op edits (same weight) repair to an identical, non-aliased copy.
	noop := []EdgeEdit{{U: 0, V: 1, W: w01}}
	got2, _, st2, err := RepairWithOptions(g, prev, noop, p, SparseOptions{Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Edits != 0 {
		t.Errorf("no-op edit counted as %d edits", st2.Edits)
	}
	if !identicalMatrices(got2.Dist, prev.Dist) {
		t.Error("no-op repair changed distances")
	}
	if &got2.Dist.V[0] == &prev.Dist.V[0] || &got2.next[0] == &prev.next[0] {
		t.Error("no-op repair aliased the previous result's storage")
	}
}

// TestRepairZeroWeightEdges exercises the awkward corner the tight-edge
// successor walk exists for: decreases down to weight 0 create
// zero-weight cycles in the tight-edge graph, and increases from 0 make
// previously free detours cost real weight.
func TestRepairZeroWeightEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.Grid2D(7, 7, integerWeights(rng, 3))
	const p = 9
	sopts := SparseOptions{Seed: 2, Plans: NewPlanCache()}
	prev := solvePaths(t, g, p, sopts)

	edges := g.Edges()
	var edits []EdgeEdit
	for i := 0; i < 8 && i < len(edges); i++ {
		edits = append(edits, EdgeEdit{U: edges[i].U, V: edges[i].V, W: 0})
	}
	got, g2, _, err := RepairWithOptions(g, prev, edits, p, sopts, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := solvePaths(t, g2, p, sopts)
	if !identicalMatrices(got.Dist, want.Dist) {
		t.Error("zero-weight decreases: distances differ from re-solve")
	}
	if err := VerifyPaths(g2, got); err != nil {
		t.Errorf("zero-weight decreases: %v", err)
	}

	// Now raise them back up from zero.
	var back []EdgeEdit
	for _, e := range edits {
		back = append(back, EdgeEdit{U: e.U, V: e.V, W: 5})
	}
	got2, g3, st, err := RepairWithOptions(g2, got, back, p, sopts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Increases != len(back) {
		t.Errorf("raising %d zero edges recorded %d increases", len(back), st.Increases)
	}
	want2 := solvePaths(t, g3, p, sopts)
	if !identicalMatrices(got2.Dist, want2.Dist) {
		t.Error("increases from zero: distances differ from re-solve")
	}
	if err := VerifyPaths(g3, got2); err != nil {
		t.Errorf("increases from zero: %v", err)
	}
}

// TestRepairChain applies many small edit batches sequentially, each
// repair feeding the next — the registry's actual usage pattern — and
// checks the final state never drifts from a from-scratch solve.
func TestRepairChain(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	g := graph.RandomGNP(60, 0.1, integerWeights(rng, 9), rng)
	const p = 9
	sopts := SparseOptions{Seed: 17, Plans: NewPlanCache()}
	cur := g
	prev := solvePaths(t, g, p, sopts)
	for round := 0; round < 6; round++ {
		kind := []string{"dec", "inc", "mixed"}[round%3]
		edits := pickEdits(cur, rng, 3, kind)
		next, g2, _, err := RepairWithOptions(cur, prev, edits, p, sopts, 0)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		cur, prev = g2, next
	}
	want := solvePaths(t, cur, p, sopts)
	if !identicalMatrices(prev.Dist, want.Dist) {
		t.Error("chained repairs drifted from the from-scratch solve")
	}
	if err := VerifyPaths(cur, prev); err != nil {
		t.Errorf("chained repairs: %v", err)
	}
}
