package apsp

import (
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// SuperFWResult carries the output of the sequential supernodal solver.
type SuperFWResult struct {
	Dist   *semiring.Matrix // distances in original vertex order
	Ops    int64            // semiring operations performed
	Layout *Layout          // the ordering used (separator sizes etc.)
}

// SuperFW is the sequential supernodal APSP of Sao, Kannan, Gera, Vuduc
// (PPoPP'20) as summarized in Sections 4 and 5.2 of the paper: nested
// dissection to 2^h − 1 supernodes, then bottom-up elimination of eTree
// levels where each level updates only the four regions R_l^1..R_l^4 —
// cousin blocks are skipped entirely, which is where the O(n/|S|)
// operation reduction over classical Floyd–Warshall comes from.
//
// It is also the sequential semantics of the distributed SparseAPSP:
// both run the same region schedule, so their results must agree
// exactly.
func SuperFW(g *graph.Graph, h int, seed int64) (*SuperFWResult, error) {
	return SuperFWKernel(g, h, seed, semiring.KernelSerial)
}

// SuperFWKernel is SuperFW with an explicit min-plus kernel for every
// block update. All kernels produce the same distances and the same
// operation count; only wall-clock differs.
func SuperFWKernel(g *graph.Graph, h int, seed int64, kern semiring.Kernel) (*SuperFWResult, error) {
	ly, err := NewLayout(g, h, seed)
	if err != nil {
		return nil, err
	}
	blocks := ly.Blocks()
	tr := ly.Tree
	var ops int64

	for l := 1; l <= tr.H; l++ {
		// R_l^1: diagonal updates.
		for _, k := range tr.LevelNodes(l) {
			ops += kern.ClassicalFW(blocks[k][k])
		}
		// R_l^2: panel updates.
		for _, k := range tr.LevelNodes(l) {
			dk := blocks[k][k]
			for _, i := range tr.RelatedSet(k) {
				if i == k {
					continue
				}
				ops += kern.PanelUpdateLeft(blocks[i][k], dk)
				ops += kern.PanelUpdateRight(blocks[k][i], dk)
			}
		}
		// R_l^3: single-unit min-plus outer products.
		for _, pb := range tr.R3(l) {
			ops += kern.MulAddInto(blocks[pb.I][pb.J], blocks[pb.I][pb.K], blocks[pb.K][pb.J])
		}
		// R_l^4: multi-unit blocks; compute the level(i) ≤ level(j) half
		// and mirror by symmetry, exactly as the distributed algorithm.
		for _, b := range tr.R4Lower(l) {
			for _, k := range tr.UnitsFor(l, b.I, b.J) {
				ops += kern.MulAddInto(blocks[b.I][b.J], blocks[b.I][k], blocks[k][b.J])
			}
			if b.I != b.J {
				blocks[b.J][b.I] = blocks[b.I][b.J].Transpose()
			}
		}
	}

	return &SuperFWResult{
		Dist:   ly.AssembleOriginal(blocks),
		Ops:    ops,
		Layout: ly,
	}, nil
}
