package apsp

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// PlanStore persists encoded Plans in a directory, one file per
// structure fingerprint. It is the durable half of the plan cache: a
// PlanCache attached to a store (NewPlanCacheAt) falls through to disk
// on a memory miss and installs what it decodes, so a restarted process
// serves warm solves for every structure any previous process solved —
// zero symbolic rebuilds, which the serving layer asserts as
// plan_builds=0 after a restart.
//
// Files are written atomically (temp file + rename) and verified on
// read by DecodePlan's content hash, so a torn write or bit rot
// surfaces as a decode error — treated as a miss, never as a wrong
// schedule. The store itself is stateless; concurrent readers and
// writers (even across processes) are safe because rename is atomic
// and plans for one fingerprint are deterministic, so any winner of a
// racing double-write stores identical bytes.
type PlanStore struct {
	dir string
}

// NewPlanStore opens (creating if needed) a plan directory.
func NewPlanStore(dir string) (*PlanStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("apsp: NewPlanStore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("apsp: NewPlanStore: %w", err)
	}
	return &PlanStore{dir: dir}, nil
}

// Dir returns the directory the store persists into.
func (s *PlanStore) Dir() string { return s.dir }

func (s *PlanStore) path(fp StructureFingerprint) string {
	return filepath.Join(s.dir, fp.String()+".plan")
}

// Load reads and decodes the plan stored for fp. ok is false when no
// file exists; a file that fails to decode (truncated, corrupted, or a
// foreign format) returns an error.
func (s *PlanStore) Load(fp StructureFingerprint) (pl *Plan, ok bool, err error) {
	b, err := os.ReadFile(s.path(fp))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("apsp: PlanStore.Load: %w", err)
	}
	pl, err = DecodePlan(b)
	if err != nil {
		return nil, false, fmt.Errorf("apsp: PlanStore.Load %s: %w", fp, err)
	}
	return pl, true, nil
}

// Save encodes and atomically writes the plan for fp.
func (s *PlanStore) Save(fp StructureFingerprint, pl *Plan) error {
	tmp, err := os.CreateTemp(s.dir, "."+fp.String()+".tmp*")
	if err != nil {
		return fmt.Errorf("apsp: PlanStore.Save: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(pl.Encode()); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("apsp: PlanStore.Save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("apsp: PlanStore.Save: %w", err)
	}
	if err := os.Rename(name, s.path(fp)); err != nil {
		os.Remove(name)
		return fmt.Errorf("apsp: PlanStore.Save: %w", err)
	}
	return nil
}

// Len counts the plan files currently on disk.
func (s *PlanStore) Len() (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".plan" {
			n++
		}
	}
	return n, nil
}

// NewPlanCacheAt returns a plan cache backed by a disk store at dir: a
// memory miss falls through to disk (counting a DiskHit, not a build)
// and every fresh build is persisted (a DiskWrite), so plans survive
// the process. Disk I/O or decode failures degrade to plain cache
// behavior — the solve rebuilds symbolically — and count as DiskErrors.
func NewPlanCacheAt(dir string) (*PlanCache, error) {
	st, err := NewPlanStore(dir)
	if err != nil {
		return nil, err
	}
	c := NewPlanCache()
	c.store = st
	return c, nil
}
