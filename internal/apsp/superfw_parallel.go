package apsp

import (
	"sync/atomic"

	"sparseapsp/internal/semiring"
)

// SuperFWParallel is the shared-memory parallel SuperFW — the setting
// Sao et al. (PPoPP'20) actually target. It exploits the same eTree
// independence the distributed algorithm schedules across processors:
// within one level, diagonal updates, panel updates, R_l^3 blocks and
// R_l^4 blocks touch disjoint output blocks, so each region's block
// list fans out over the persistent semiring.DefaultPool workers with
// no locking beyond the per-region join — no goroutines are spawned
// per region or per call.
//
// The result is identical to SuperFW (same schedule, same block
// arithmetic, floating-point association preserved per block); only
// wall-clock changes. Operation counts are accumulated atomically.
func SuperFWParallel(gr *Layout) (*semiring.Matrix, int64) {
	blocks := gr.Blocks()
	tr := gr.Tree
	var ops atomic.Int64

	forEach := semiring.DefaultPool.ForEach

	for l := 1; l <= tr.H; l++ {
		// R_l^1: independent diagonal blocks.
		level := tr.LevelNodes(l)
		forEach(len(level), func(i int) {
			ops.Add(semiring.ClassicalFW(blocks[level[i]][level[i]]))
		})
		// R_l^2: panel updates; (i,k) and (k,i) blocks are disjoint
		// across the whole level (each block has a unique pivot).
		type panel struct{ i, k int }
		var panels []panel
		for _, k := range level {
			for _, i := range tr.RelatedSet(k) {
				if i != k {
					panels = append(panels, panel{i: i, k: k})
				}
			}
		}
		forEach(len(panels), func(x int) {
			p := panels[x]
			dk := blocks[p.k][p.k]
			ops.Add(semiring.PanelUpdateLeft(blocks[p.i][p.k], dk))
			ops.Add(semiring.PanelUpdateRight(blocks[p.k][p.i], dk))
		})
		// R_l^3: every block appears once (unique pivot), so the list
		// fans out directly.
		r3 := tr.R3(l)
		forEach(len(r3), func(x int) {
			pb := r3[x]
			ops.Add(semiring.MulAddInto(blocks[pb.I][pb.J], blocks[pb.I][pb.K], blocks[pb.K][pb.J]))
		})
		// R_l^4: distinct (I,J) output blocks; each block's units run
		// sequentially inside its task, mirroring the reduce order.
		r4 := tr.R4Lower(l)
		forEach(len(r4), func(x int) {
			b := r4[x]
			for _, k := range tr.UnitsFor(l, b.I, b.J) {
				ops.Add(semiring.MulAddInto(blocks[b.I][b.J], blocks[b.I][k], blocks[k][b.J]))
			}
		})
		// Mirror the computed half (sequential: cheap transposes).
		for _, b := range r4 {
			if b.I != b.J {
				blocks[b.J][b.I] = blocks[b.I][b.J].Transpose()
			}
		}
	}
	return gr.AssembleOriginal(blocks), ops.Load()
}
