// Package apsp implements the all-pairs shortest-paths algorithms of
// the paper and its related work:
//
// Sequential baselines:
//   - FloydWarshall — the classical O(n³) dynamic program [Floyd 62,
//     Warshall 62], the correctness oracle for everything else.
//   - BlockedFloydWarshall — the cache-blocked variant of Section 3.3.
//   - Johnson — Dijkstra from every source [Johnson 77].
//   - SuperFW — the supernodal sparse APSP of Sao et al. (PPoPP'20):
//     nested-dissection ordering + eTree-guided elimination, skipping
//     cousin-block computation.
//
// Distributed algorithms (on the simulated machine of internal/comm):
//   - Dist1DFW — unblocked row-striped Floyd–Warshall (Jenq–Sahni
//     lineage), the Θ(n·log p)-latency strawman of Section 2.
//   - Dist2DFW — blocked Floyd–Warshall on a √p×√p grid in block
//     layout.
//   - DCAPSP — the divide-and-conquer 2D-DC-APSP of Solomonik, Buluç,
//     Demmel (IPDPS'13) on a block-cyclic layout.
//   - SparseAPSP — the paper's 2D-SPARSE-APSP (Algorithm 1), with the
//     Corollary 5.5 unit mapping or the Section 5.2.2 sequential
//     strategy (SparseOptions.R4Strategy), per-level cost breakdown,
//     and pluggable orderings (e.g. from partition.DistributedND).
//
// Extras: FloydWarshallPaths reconstructs actual shortest paths, and
// VerifyDistances certifies a distance matrix without recomputation.
package apsp

import (
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// FloydWarshall computes the APSP distance matrix of g with the
// classical algorithm. The second return value is the number of
// semiring operations performed.
func FloydWarshall(g *graph.Graph) (*semiring.Matrix, int64) {
	return FloydWarshallKernel(g, semiring.KernelSerial)
}

// FloydWarshallKernel is FloydWarshall with an explicit min-plus
// kernel. Results and operation counts are identical for every kernel.
func FloydWarshallKernel(g *graph.Graph, kern semiring.Kernel) (*semiring.Matrix, int64) {
	n := g.N()
	m := semiring.FromSlice(n, n, g.AdjacencyMatrix())
	ops := kern.ClassicalFW(m)
	return m, ops
}

// BlockedFloydWarshall computes APSP with the blocked algorithm of
// Section 3.3 using block size b.
func BlockedFloydWarshall(g *graph.Graph, b int) (*semiring.Matrix, int64) {
	return BlockedFloydWarshallKernel(g, b, semiring.KernelSerial)
}

// BlockedFloydWarshallKernel is BlockedFloydWarshall with an explicit
// min-plus kernel for the diagonal, panel and outer-product steps.
// Results and operation counts are identical for every kernel.
func BlockedFloydWarshallKernel(g *graph.Graph, b int, kern semiring.Kernel) (*semiring.Matrix, int64) {
	n := g.N()
	m := semiring.FromSlice(n, n, g.AdjacencyMatrix())
	ops := semiring.BlockedFWKernel(m, b, kern)
	return m, ops
}

// FloydWarshallFull is FloydWarshall with no empty-entry skipping: it
// always performs exactly n³ operations. The operation-count
// experiments (Lemma 6.4, SuperFW's reduction factor) use it as the
// classical-cost reference.
func FloydWarshallFull(g *graph.Graph) (*semiring.Matrix, int64) {
	n := g.N()
	m := semiring.FromSlice(n, n, g.AdjacencyMatrix())
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			mik := m.At(i, k)
			for j := 0; j < n; j++ {
				if s := mik + m.At(k, j); s < m.At(i, j) {
					m.Set(i, j, s)
				}
			}
		}
	}
	return m, int64(n) * int64(n) * int64(n)
}
