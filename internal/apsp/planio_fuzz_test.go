package apsp

import (
	"testing"

	"sparseapsp/internal/graph"
)

// FuzzDecodePlanMalformed mutates valid plan encodings (and arbitrary
// junk) and requires the decoder to return an error or a hash-verified
// plan — never panic. Note the policy difference from the semiring pack
// codec's FuzzUnpackMalformed, which accepts decode-or-PANIC: wire
// payloads never leave the process, but plan bytes cross restarts and
// disks, so the decoder must fail closed. There is deliberately no
// recover() here — any panic fails the fuzz.
func FuzzDecodePlanMalformed(f *testing.F) {
	seedPlan := func(g *graph.Graph, p int, wire WireFormat, r4 R4Strategy) {
		h, err := HeightForP(p)
		if err != nil {
			f.Fatal(err)
		}
		ly, err := NewLayout(g, h, 42)
		if err != nil {
			f.Fatal(err)
		}
		pl, err := BuildPlan(ly, p, wire, r4)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(pl.Encode())
	}
	seedPlan(graph.Grid2D(6, 6, graph.UnitWeights), 9, WirePacked, R4Mapped)
	seedPlan(graph.Grid2D(8, 8, graph.UnitWeights), 9, WirePruned, R4Mapped)
	seedPlan(graph.Star(40, graph.UnitWeights), 9, WirePruned, R4Sequential)
	f.Add([]byte{})
	f.Add([]byte(planMagic))
	f.Add([]byte("not a plan at all, definitely longer than the envelope minimum"))

	f.Fuzz(func(t *testing.T, data []byte) {
		pl, err := DecodePlan(data)
		if err == nil && pl == nil {
			t.Fatal("DecodePlan returned nil plan with nil error")
		}
		if err == nil {
			// Whatever decoded must round-trip to the same bytes: the
			// decoder may only accept canonical encodings.
			if string(pl.Encode()) != string(data) {
				t.Fatal("accepted input is not the canonical encoding of the decoded plan")
			}
		}
	})
}
