package apsp

import (
	"math"
	"math/rand"
	"testing"

	"sparseapsp/internal/graph"
)

// TestFillMaskStructure pins the symbolic phase's invariants: masks are
// symmetric at every level, grow monotonically across levels, hold the
// diagonal of every non-empty supernode, and never mark a block of an
// empty supernode.
func TestFillMaskStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	graphs := []*graph.Graph{
		graph.Grid2D(12, 12, graph.UnitWeights),
		graph.Path(150, graph.UnitWeights),
		graph.RandomTree(130, graph.UnitWeights, rng),
		graph.Star(100, graph.UnitWeights),
	}
	for gi, g := range graphs {
		ly, err := NewLayout(g, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		fm := ly.Fill
		if fm == nil {
			t.Fatal("layout has no fill mask")
		}
		n := ly.Tree.N
		for l := 1; l <= fm.H+1; l++ {
			for i := 1; i <= n; i++ {
				for j := 1; j <= n; j++ {
					if fm.At(l, i, j) != fm.At(l, j, i) {
						t.Fatalf("graph %d: mask asymmetric at l=%d (%d,%d)", gi, l, i, j)
					}
					if l > 1 && fm.At(l-1, i, j) && !fm.At(l, i, j) {
						t.Fatalf("graph %d: mask shrank at l=%d (%d,%d)", gi, l, i, j)
					}
					if (ly.ND.Sizes[i] == 0 || ly.ND.Sizes[j] == 0) && fm.At(l, i, j) {
						t.Fatalf("graph %d: empty supernode block (%d,%d) marked at l=%d", gi, i, j, l)
					}
				}
				if ly.ND.Sizes[i] > 0 && !fm.At(l, i, i) {
					t.Fatalf("graph %d: diagonal (%d,%d) unmarked at l=%d", gi, i, i, l)
				}
			}
			if p := fm.Possible(l); p < 0 || p > n*n {
				t.Fatalf("graph %d: Possible(%d) = %d out of range", gi, l, p)
			}
		}
	}
}

// TestFillMaskInitialLevelMatchesBlocks checks the base case exactly:
// At(1, i, j) must be true precisely for the blocks the initial
// distance matrix populates (edges between supernodes, diagonal zeros).
func TestFillMaskInitialLevelMatchesBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := graph.RandomGNP(80, 0.06, graph.RandomWeights(rng, 1, 9), rng)
	ly, err := NewLayout(g, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	blocks := ly.Blocks()
	for i := 1; i <= ly.Tree.N; i++ {
		for j := 1; j <= ly.Tree.N; j++ {
			hasFinite := blocks[i][j].NNZ() > 0
			if got := ly.Fill.At(1, i, j); got != hasFinite {
				t.Errorf("At(1,%d,%d) = %v, but initial block NNZ = %d",
					i, j, got, blocks[i][j].NNZ())
			}
		}
	}
}

// TestFillMaskSoundAgainstSolve is the safety property the solver's
// skipping relies on: after a full (dense-wire, nothing skipped) solve,
// every finite distance lives in a block the final mask marked as
// possibly finite. The converse need not hold — the mask is an
// overapproximation.
func TestFillMaskSoundAgainstSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	graphs := []struct {
		name string
		g    *graph.Graph
		p    int
	}{
		{"grid", graph.Grid2D(12, 12, graph.RandomWeights(rng, 1, 10)), 49},
		{"path", graph.Path(180, graph.UnitWeights), 49},
		{"tree", graph.RandomTree(160, graph.UnitWeights, rng), 49},
		{"two-cliques", disconnectedCliques(30), 9},
	}
	for _, tc := range graphs {
		res, err := SparseAPSPWith(tc.g, tc.p, SparseOptions{Seed: 13, Wire: WireDense})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		ly, fm := res.Layout, res.Layout.Fill
		for u := 0; u < tc.g.N(); u++ {
			su := ly.ND.SupernodeOf(ly.ND.Perm[u])
			for v := 0; v < tc.g.N(); v++ {
				if math.IsInf(res.Dist.At(u, v), 1) {
					continue
				}
				sv := ly.ND.SupernodeOf(ly.ND.Perm[v])
				if !fm.At(fm.H+1, su, sv) {
					t.Fatalf("%s: finite d(%d,%d) in block (%d,%d) the mask ruled out",
						tc.name, u, v, su, sv)
				}
			}
		}
	}
}

// TestFillMaskRulesOutCousinsOnPath: on a path graph the leftmost leaf
// region shares no edge with the root separator, so the mask must
// prove some related-pair blocks empty at level 1 — this is what makes
// the solver's broadcast skipping non-vacuous.
func TestFillMaskRulesOutCousinsOnPath(t *testing.T) {
	g := graph.Path(200, graph.UnitWeights)
	ly, err := NewLayout(g, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	fm := ly.Fill
	root := ly.Tree.N // bottom-up labelling: the root separator is N
	ruledOut := 0
	for i := 1; i <= ly.Tree.N; i++ {
		if ly.ND.Sizes[i] > 0 && ly.Tree.Related(i, root) && !fm.At(1, i, root) {
			ruledOut++
		}
	}
	if ruledOut == 0 {
		t.Error("path graph: no related (i, root) block ruled out at level 1")
	}
}

// disconnectedCliques builds two cliques with no path between them:
// half of all distances are Inf and whole blocks stay empty forever.
func disconnectedCliques(half int) *graph.Graph {
	g := graph.New(2 * half)
	for c := 0; c < 2; c++ {
		base := c * half
		for i := 0; i < half; i++ {
			for j := i + 1; j < half; j++ {
				g.AddEdge(base+i, base+j, 1)
			}
		}
	}
	return g
}
