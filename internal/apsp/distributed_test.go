package apsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparseapsp/internal/graph"
	"sparseapsp/internal/partition"
)

// TestSparseAPSPMatchesFloydWarshall is the end-to-end correctness
// gate for the paper's algorithm: on every workload family and every
// valid machine size, the distributed result must equal the classical
// sequential result.
func TestSparseAPSPMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for name, g := range testGraphs(rng) {
		want, _ := FloydWarshall(g)
		for _, p := range []int{1, 9, 49} {
			res, err := SparseAPSP(g, p, 5)
			if err != nil {
				t.Errorf("%s p=%d: %v", name, p, err)
				continue
			}
			if !res.Dist.EqualTol(want, 1e-9) {
				t.Errorf("%s p=%d: SparseAPSP diverges from Floyd-Warshall", name, p)
			}
		}
	}
}

func TestSparseAPSPRejectsBadP(t *testing.T) {
	g := graph.Path(5, graph.UnitWeights)
	for _, p := range []int{2, 4, 16, 25, 100} {
		if _, err := SparseAPSP(g, p, 1); err == nil {
			t.Errorf("p=%d: expected error", p)
		}
	}
}

func TestDist2DFWMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for name, g := range testGraphs(rng) {
		want, _ := FloydWarshall(g)
		for _, p := range []int{1, 4, 9, 16} {
			if g.N() == 0 && p > 1 {
				continue // zero-size blocks everywhere are legal but pointless
			}
			res, err := Dist2DFW(g, p)
			if err != nil {
				t.Errorf("%s p=%d: %v", name, p, err)
				continue
			}
			if !res.Dist.EqualTol(want, 1e-9) {
				t.Errorf("%s p=%d: Dist2DFW diverges from Floyd-Warshall", name, p)
			}
		}
	}
}

func TestDCAPSPMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for name, g := range testGraphs(rng) {
		want, _ := FloydWarshall(g)
		for _, p := range []int{1, 4, 9} {
			for _, cyc := range []int{1, 2, 4} {
				res, err := DCAPSP(g, p, cyc)
				if err != nil {
					t.Errorf("%s p=%d cyc=%d: %v", name, p, cyc, err)
					continue
				}
				if !res.Dist.EqualTol(want, 1e-9) {
					t.Errorf("%s p=%d cyc=%d: DCAPSP diverges from Floyd-Warshall", name, p, cyc)
				}
			}
		}
	}
}

// The distributed sparse solver and the sequential SuperFW run the same
// elimination schedule, so with the same seed their results must agree
// bit-for-bit modulo floating-point association, which a tight
// tolerance covers.
func TestSparseAPSPMatchesSuperFW(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g := graph.Grid2D(9, 9, graph.RandomWeights(rng, 1, 10))
	seq, err := SuperFW(g, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SparseAPSP(g, 49, 17)
	if err != nil {
		t.Fatal(err)
	}
	if !dist.Dist.EqualTol(seq.Dist, 1e-9) {
		t.Error("distributed and sequential supernodal solvers disagree")
	}
}

// Property: all three distributed solvers agree with Johnson on random
// connected graphs.
func TestQuickDistributedSolversAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(50)
		g := graph.RandomGNP(n, 3.0/float64(n), graph.RandomWeights(rng, 1, 10), rng)
		want, err := Johnson(g)
		if err != nil {
			return false
		}
		sp, err := SparseAPSP(g, 9, seed)
		if err != nil || !sp.Dist.EqualTol(want, 1e-9) {
			return false
		}
		fw, err := Dist2DFW(g, 9)
		if err != nil || !fw.Dist.EqualTol(want, 1e-9) {
			return false
		}
		dc, err := DCAPSP(g, 9, 2)
		if err != nil || !dc.Dist.EqualTol(want, 1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// The report must be populated: nonzero communication for p > 1 on a
// connected graph, and per-rank memory close to the block sizes.
func TestSparseAPSPReportPopulated(t *testing.T) {
	g := graph.Grid2D(12, 12, graph.UnitWeights)
	res, err := SparseAPSP(g, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Critical.Latency == 0 || rep.Critical.Bandwidth == 0 || rep.Critical.Flops == 0 {
		t.Errorf("empty critical path: %+v", rep.Critical)
	}
	if rep.MaxMemory == 0 {
		t.Error("no memory recorded")
	}
	if rep.TotalMessages == 0 || rep.TotalWords == 0 {
		t.Error("no traffic recorded")
	}
	if len(rep.PerRank) != 9 {
		t.Errorf("per-rank costs length %d", len(rep.PerRank))
	}
}

// Latency on a fixed machine must not depend on n (it is O(log²p)):
// doubling the grid size should leave the sparse algorithm's message
// count along the critical path unchanged.
func TestSparseAPSPLatencyIndependentOfN(t *testing.T) {
	l1 := sparseLatency(t, 10)
	l2 := sparseLatency(t, 20)
	if l1 != l2 {
		t.Errorf("latency changed with n: %d vs %d", l1, l2)
	}
}

func sparseLatency(t *testing.T, side int) int64 {
	t.Helper()
	g := graph.Grid2D(side, side, graph.UnitWeights)
	res, err := SparseAPSP(g, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	return res.Report.Critical.Latency
}

// The dense 2D FW latency must grow with √p while the sparse
// algorithm's stays polylogarithmic — the headline Table 2 row 3.
func TestLatencySeparationSparseVsDense(t *testing.T) {
	g := graph.Grid2D(24, 24, graph.UnitWeights)
	sparse9, err := SparseAPSP(g, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	sparse49, err := SparseAPSP(g, 49, 3)
	if err != nil {
		t.Fatal(err)
	}
	dense9, err := Dist2DFW(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	dense49, err := Dist2DFW(g, 49)
	if err != nil {
		t.Fatal(err)
	}
	// Dense latency grows linearly in √p (3 -> 7 is ~2.3x); sparse grows
	// like log²p (4 -> 9ish, bounded well below the dense growth at scale).
	denseGrowth := float64(dense49.Report.Critical.Latency) / float64(dense9.Report.Critical.Latency)
	sparseGrowth := float64(sparse49.Report.Critical.Latency) / float64(sparse9.Report.Critical.Latency)
	if denseGrowth < 1.5 {
		t.Errorf("dense latency growth %.2f, want ≥ 1.5 (√p scaling)", denseGrowth)
	}
	if sparse49.Report.Critical.Latency >= dense49.Report.Critical.Latency {
		t.Errorf("sparse latency %d not below dense %d at p=49",
			sparse49.Report.Critical.Latency, dense49.Report.Critical.Latency)
	}
	_ = sparseGrowth
}

// The Section 5.2.2 "trivial strategy" ablation must produce identical
// distances while paying strictly more latency (2q serialized receives
// per R_l^4 block against the mapped strategy's O(log q) reduce).
func TestR4SequentialStrategyMatchesAndCostsMore(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	g := graph.Grid2D(12, 12, graph.RandomWeights(rng, 1, 10))
	want, _ := FloydWarshall(g)
	for _, p := range []int{9, 49} {
		mapped, err := SparseAPSPWith(g, p, SparseOptions{Seed: 5, R4Strategy: R4Mapped})
		if err != nil {
			t.Fatalf("mapped p=%d: %v", p, err)
		}
		seq, err := SparseAPSPWith(g, p, SparseOptions{Seed: 5, R4Strategy: R4Sequential})
		if err != nil {
			t.Fatalf("sequential p=%d: %v", p, err)
		}
		if !mapped.Dist.EqualTol(want, 1e-9) || !seq.Dist.EqualTol(want, 1e-9) {
			t.Fatalf("p=%d: a strategy diverges from Floyd-Warshall", p)
		}
		if p >= 49 && seq.Report.Critical.Latency <= mapped.Report.Critical.Latency {
			t.Errorf("p=%d: sequential latency %d not above mapped %d",
				p, seq.Report.Critical.Latency, mapped.Report.Critical.Latency)
		}
	}
}

// Full-depth machine: p = 961 (h = 5, a 31×31 grid of ranks). Slow, so
// skipped under -short; exercises five eTree levels end to end.
func TestSparseAPSPAtP961(t *testing.T) {
	if testing.Short() {
		t.Skip("p=961 solve is slow; run without -short")
	}
	rng := rand.New(rand.NewSource(107))
	g := graph.Grid2D(32, 32, graph.RandomWeights(rng, 1, 10))
	res, err := SparseAPSP(g, 961, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Johnson(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dist.EqualTol(want, 1e-9) {
		t.Fatal("p=961 sparse solve diverges from Johnson")
	}
	if err := VerifyDistances(g, res.Dist); err != nil {
		t.Fatal(err)
	}
	// log²(961) ≈ 98: latency stays within a small constant of it.
	if lat := res.Report.Critical.Latency; lat > 4*98 {
		t.Errorf("latency %d not O(log²p)", lat)
	}
	if len(res.Phases) != 5 {
		t.Errorf("phases = %d, want 5 levels", len(res.Phases))
	}
}

// Fully distributed pipeline: the ordering comes from the distributed
// partitioner and the solve runs on the same machine size; the result
// must still be exact.
func TestSparseAPSPWithDistributedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	g := graph.Grid2D(24, 24, graph.RandomWeights(rng, 1, 10))
	nd, ndRep, err := partition.DistributedND(g, 49, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.CheckSeparation(g, nd); err != nil {
		t.Fatal(err)
	}
	res, err := SparseAPSPWith(g, 49, SparseOptions{Layout: NewLayoutFromOrdering(g, nd)})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FloydWarshall(g)
	if !res.Dist.EqualTol(want, 1e-9) {
		t.Fatal("distributed-ordering solve diverges from Floyd-Warshall")
	}
	// Preprocessing cost is subsumed by the solve at realistic n²/p
	// (Section 5.4.4; see EXPERIMENTS.md E9 for the small-size caveat
	// of the simplified distributed partitioner).
	if ndRep.Critical.Bandwidth > res.Report.Critical.Bandwidth {
		t.Errorf("preprocessing bandwidth %d exceeds solve bandwidth %d",
			ndRep.Critical.Bandwidth, res.Report.Critical.Bandwidth)
	}
}

func TestSparseAPSPRejectsMismatchedLayout(t *testing.T) {
	g := graph.Path(10, graph.UnitWeights)
	ly, err := NewLayout(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SparseAPSPWith(g, 49, SparseOptions{Layout: ly}); err == nil {
		t.Error("expected error for mismatched layout height")
	}
}
