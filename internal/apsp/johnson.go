package apsp

import (
	"container/heap"
	"fmt"

	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// Johnson computes APSP by running Dijkstra from every source — the
// theoretically faster choice for sparse graphs (Section 2), used here
// as an independent correctness oracle for the matrix-based solvers.
// For undirected graphs a negative edge is a negative cycle, so
// negative weights are rejected (the Bellman–Ford reweighting step of
// the directed algorithm has nothing it could fix).
func Johnson(g *graph.Graph) (*semiring.Matrix, error) {
	n := g.N()
	for v := 0; v < n; v++ {
		for _, e := range g.Adj(v) {
			if e.W < 0 {
				return nil, fmt.Errorf("apsp: negative edge {%d,%d} weight %g is a negative cycle in an undirected graph", v, e.To, e.W)
			}
		}
	}
	dist := semiring.NewMatrix(n, n)
	d := make([]float64, n)
	for src := 0; src < n; src++ {
		dijkstra(g, src, d)
		copy(dist.V[src*n:(src+1)*n], d)
	}
	return dist, nil
}

// dijkstra fills d with single-source distances from src using a binary
// heap; unreachable vertices get Inf.
func dijkstra(g *graph.Graph, src int, d []float64) {
	for i := range d {
		d[i] = semiring.Inf
	}
	d[src] = 0
	done := make([]bool, len(d))
	pq := &distHeap{items: []distItem{{v: src, d: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		for _, e := range g.Adj(it.v) {
			if nd := it.d + e.W; nd < d[e.To] {
				d[e.To] = nd
				heap.Push(pq, distItem{v: e.To, d: nd})
			}
		}
	}
}

type distItem struct {
	v int
	d float64
}

type distHeap struct {
	items []distItem
}

func (h *distHeap) Len() int           { return len(h.items) }
func (h *distHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *distHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x interface{}) { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
