package apsp

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// TestExecutorEquality is the dataflow executor's referee: for several
// graph families × all wire formats × both R4 strategies, the machine
// and dataflow executors must agree on every observable — distances
// bit for bit, the full cost report, the per-level phase breakdown and
// the traffic matrix. Together with TestSparseCostGolden (which pins
// the dataflow default against the golden table recorded from the
// machine executor) this makes the two engines interchangeable.
func TestExecutorEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	graphs := []struct {
		name string
		g    *graph.Graph
		p    int
	}{
		{"grid", graph.Grid2D(9, 9, integerWeights(rng, 10)), 9},
		{"gnp", graph.RandomGNP(70, 0.08, integerWeights(rng, 5), rng), 9},
		{"tree", graph.RandomTree(90, graph.UnitWeights, rng), 49},
		{"rmat", graph.RMAT(6, 3, integerWeights(rng, 4), rng), 9},
		{"star", graph.Star(60, graph.UnitWeights), 9},
	}
	for _, tc := range graphs {
		for _, wire := range []WireFormat{WirePacked, WireDense, WirePruned} {
			for _, strat := range []R4Strategy{R4Mapped, R4Sequential} {
				name := fmt.Sprintf("%s/%v/r4=%d", tc.name, wire, strat)
				mach, err := SparseAPSPWith(tc.g, tc.p, SparseOptions{
					Seed: 11, Wire: wire, R4Strategy: strat, Executor: ExecMachine})
				if err != nil {
					t.Fatalf("%s machine: %v", name, err)
				}
				flow, err := SparseAPSPWith(tc.g, tc.p, SparseOptions{
					Seed: 11, Wire: wire, R4Strategy: strat, Executor: ExecDataflow})
				if err != nil {
					t.Fatalf("%s dataflow: %v", name, err)
				}
				if !identicalMatrices(flow.Dist, mach.Dist) {
					t.Errorf("%s: distances differ between executors", name)
				}
				if !reflect.DeepEqual(flow.Report, mach.Report) {
					t.Errorf("%s: reports differ:\ndataflow %+v\nmachine  %+v", name, flow.Report, mach.Report)
				}
				if !reflect.DeepEqual(flow.Phases, mach.Phases) {
					t.Errorf("%s: phase costs differ", name)
				}
				if !reflect.DeepEqual(flow.Traffic, mach.Traffic) {
					t.Errorf("%s: traffic matrices differ", name)
				}
			}
		}
	}
}

// TestExecutorEqualityPooledKernel repeats the equality check with the
// pooled kernel, which nests pool jobs inside the dataflow drain loops
// — the configuration that would deadlock if the drains ran on the
// kernel pool's job workers instead of Pool.Drive's dedicated
// goroutines.
func TestExecutorEqualityPooledKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := graph.Grid2D(12, 12, integerWeights(rng, 10))
	mach, err := SparseAPSPWith(g, 49, SparseOptions{Seed: 5, Kernel: semiring.KernelPooled, Executor: ExecMachine})
	if err != nil {
		t.Fatal(err)
	}
	flow, err := SparseAPSPWith(g, 49, SparseOptions{Seed: 5, Kernel: semiring.KernelPooled, Executor: ExecDataflow})
	if err != nil {
		t.Fatal(err)
	}
	if !identicalMatrices(flow.Dist, mach.Dist) || !reflect.DeepEqual(flow.Report, mach.Report) {
		t.Error("pooled-kernel dataflow run differs from machine run")
	}
}

// TestConcurrentDataflowExecute runs many dataflow Executes of one Plan
// concurrently (the oracle registry's warm serving pattern) and checks
// each against a reference run. Exercised under -race in CI: the lowered
// graph is shared, all mutable state must be per-Execute.
func TestConcurrentDataflowExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := graph.Grid2D(10, 10, integerWeights(rng, 10))
	ly, err := NewLayout(g, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := BuildPlan(ly, 9, WirePacked, R4Mapped)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pl.ExecuteWith(ly, semiring.KernelSerial, ExecDataflow)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 8
	results := make([]*DistResult, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = pl.ExecuteWith(pl.LayoutFor(g), semiring.KernelSerial, ExecDataflow)
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !identicalMatrices(results[i].Dist, want.Dist) || !reflect.DeepEqual(results[i].Report, want.Report) {
			t.Errorf("run %d: concurrent execute differs from reference", i)
		}
	}
}

// TestDataflowLoweringShape sanity-checks the lowered graph: every rank
// contributes nodes, every node is reachable from the seeds (the run
// retires all of them — a cycle or orphan would trip the executor's
// stall detector instead of hanging), and the program is cached across
// calls.
func TestDataflowLoweringShape(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := graph.Grid2D(10, 10, integerWeights(rng, 10))
	ly, err := NewLayout(g, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := BuildPlan(ly, 9, WirePacked, R4Mapped)
	if err != nil {
		t.Fatal(err)
	}
	for _, fuse := range []Fuse{FuseOn, FuseOff} {
		prog := pl.dataflow(fuse)
		if prog != pl.dataflow(fuse) {
			t.Errorf("fuse=%v: dataflow() not cached: two calls returned different programs", fuse)
		}
		if len(prog.seeds) != pl.P {
			t.Errorf("fuse=%v: got %d seeds, want one head per rank (%d)", fuse, len(prog.seeds), pl.P)
		}
		perRank := make([]int, pl.P)
		for _, n := range prog.micros {
			perRank[n.rank]++
		}
		for r, c := range perRank {
			// At minimum: dfInit plus one dfMark per level.
			if c < 1+len(pl.Levels) {
				t.Errorf("fuse=%v: rank %d has %d micro-nodes, want at least %d", fuse, r, c, 1+len(pl.Levels))
			}
		}
		for m, c := range prog.msgConsumer {
			if len(prog.micros[c].recvs) == 0 {
				t.Errorf("fuse=%v: message %d points at node %d which has no recvs", fuse, m, c)
			}
		}
		// Super-node partition invariants: contiguous, same-rank,
		// program-order runs covering every micro-node exactly once.
		covered := 0
		for sid, s := range prog.supers {
			if s.count < 1 {
				t.Fatalf("fuse=%v: super %d has count %d", fuse, sid, s.count)
			}
			covered += int(s.count)
			rank := prog.micros[s.first].rank
			for m := s.first; m < s.first+s.count; m++ {
				if prog.micros[m].rank != rank {
					t.Fatalf("fuse=%v: super %d spans ranks", fuse, sid)
				}
				if prog.superOf[m] != int32(sid) {
					t.Fatalf("fuse=%v: superOf[%d] = %d, want %d", fuse, m, prog.superOf[m], sid)
				}
			}
		}
		if covered != len(prog.micros) {
			t.Errorf("fuse=%v: supers cover %d micro-nodes, want %d", fuse, covered, len(prog.micros))
		}
		if fuse == FuseOff && len(prog.supers) != len(prog.micros) {
			t.Errorf("fuse=off: %d supers for %d micro-nodes, want 1:1", len(prog.supers), len(prog.micros))
		}
		if fuse == FuseOn && len(prog.supers) >= len(prog.micros) {
			t.Errorf("fuse=on: merging coalesced nothing (%d supers, %d micro-nodes)", len(prog.supers), len(prog.micros))
		}
	}
}

// BenchmarkPlanExecute compares the two executors on a warm plan — the
// serving-path hot loop. The benchmark matrix stays at p <= 225 so the
// CI 1x smoke run finishes quickly; BENCH_exec.json (apspbench -exp
// exec) carries the p=961 numbers.
func BenchmarkPlanExecute(b *testing.B) {
	for _, bc := range []struct {
		side int
		p    int
	}{
		{20, 49},
		{30, 225},
	} {
		rng := rand.New(rand.NewSource(61))
		g := graph.Grid2D(bc.side, bc.side, integerWeights(rng, 10))
		h, err := HeightForP(bc.p)
		if err != nil {
			b.Fatal(err)
		}
		ly, err := NewLayout(g, h, 11)
		if err != nil {
			b.Fatal(err)
		}
		pl, err := BuildPlan(ly, bc.p, WirePacked, R4Mapped)
		if err != nil {
			b.Fatal(err)
		}
		for _, ex := range []Executor{ExecMachine, ExecDataflow} {
			b.Run(fmt.Sprintf("grid%d_p%d/%v", bc.side, bc.p, ex), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := pl.ExecuteWith(ly, semiring.KernelSerial, ex); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
