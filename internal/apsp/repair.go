package apsp

import (
	"errors"
	"fmt"
	"math"
	"time"

	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// Incremental reweighting: repair a solved distance matrix after a
// small set of edge-weight edits instead of replaying the whole
// numeric phase. The symbolic machinery is weights-independent, so a
// weight edit never changes the Plan — only the numeric state ages.
// This is the update-oriented APSP of Urakov & Timeryaev
// (arXiv:1308.1568):
//
//   - weight decreases only ever LOWER distances, and with non-negative
//     weights a shortest path crosses a decreased edge {u,v} at most
//     once, so ONE exact O(n²) row sweep folds each decrease in:
//     d'(x,z) = min(d(x,z), d(x,u)+w+d(v,z), d(x,v)+w+d(u,z)).
//     Decreases applied one at a time keep the matrix exact after every
//     sweep — no fixpoint iteration at all;
//   - weight increases can RAISE distances, but only for pairs whose
//     old shortest path was tight through an increased edge — and any
//     such pair's source has a tight path to an edge endpoint, so the
//     candidate ROWS are found in O(#increases · n). A scan over just
//     those rows marks the reset pairs, and each damaged row is then
//     repaired independently by a boundary Dijkstra over its reset
//     targets: the row's non-reset entries are provably final for the
//     edited graph, so they seed the frontier and only the reset
//     vertices are ever settled — O(Σ deg + |resets| log |resets|) per
//     row, independent of n.
//   - past a damage-fraction threshold — or once the relaxation probes
//     exceed a fixed multiple of n², meaning the edits rippled through
//     a large share of all pairs — the repair abandons itself and
//     falls back to a warm Plan.Execute, which is never slower than a
//     full re-solve would have been anyway.
//
// (Two coarser designs were measured first and lost: a worklist over
// the Plan's supernodal blocks loses to a warm re-solve even for
// single-edge edits — one changed column dirties whole block strips
// and full dense block products run — and a reset+recompute pass with
// an entry-level worklist pays O(n) per reset pair, which on graphs
// with many tied shortest paths, like integer-weighted grids, turns
// the tightness test's deliberate over-resetting into tens of
// milliseconds of recompute for edits that changed almost nothing.)

// EdgeEdit changes the weight of one EXISTING edge {U, V} to W. Edits
// may only reweight edges, never add or remove them — the repair
// engine reuses the plan's weights-independent symbolic structure,
// which an edge insertion or deletion would invalidate.
type EdgeEdit struct {
	U, V int
	W    float64
}

// DefaultDamageThreshold is the seeded-pair fraction past which Repair
// falls back to a warm Plan.Execute.
const DefaultDamageThreshold = 0.25

// repairProbeBudget bounds the relaxation probes at budget·n². An edit
// whose ripple exceeds that has invalidated a large share of all pairs
// and a warm re-solve is cheaper than finishing the propagation.
const repairProbeBudget = 32

// RepairOptions configures Plan.Repair.
type RepairOptions struct {
	// DamageThreshold is the fraction of the n² pairs that may be
	// seeded (changed by an edit or reset by the increase phase) before
	// Repair gives up on propagation and falls back to a warm
	// Plan.Execute. 0 means DefaultDamageThreshold; values >= 1 never
	// fall back at all (the probe budget is disabled too — useful for
	// tests that need the propagation path unconditionally).
	DamageThreshold float64
	// Kernel and Executor configure the fallback solve only; the
	// propagation itself works on scalar entries and has no kernel to
	// choose.
	Kernel   semiring.Kernel
	Executor Executor
	// Schedule, Fuse and ExecWorkers shape the fallback solve's
	// dataflow scheduling (see ExecOpts); zero values are the defaults.
	Schedule    Schedule
	Fuse        Fuse
	ExecWorkers int
}

// RepairStats describes what one Repair call did.
type RepairStats struct {
	Edits     int // edits that survived validation and dedup
	Decreases int // edits that lowered a weight
	Increases int // edits that raised a weight

	ResetPairs     int     // vertex pairs invalidated by the increase phase
	AffectedRows   int     // rows whose distances the increases may change
	ResetRows      int     // affected rows actually holding reset pairs (rebuilt)
	TotalPairs     int     // n² (the damage denominator)
	DamageFraction float64 // ResetPairs / TotalPairs

	FellBack        bool  // true when a threshold forced a warm Execute
	Relaxations     int64 // probes run (sweeps + reset scans + Dijkstra edges)
	Writes          int64 // entries the repair actually improved
	RepairedColumns int   // successor-table columns rebuilt
}

// edgeDelta is a validated, deduplicated edit with its old weight.
type edgeDelta struct {
	u, v     int
	old, new float64
}

// normalizeEdits validates edits against g and collapses duplicates
// (last edit per edge wins). No-op edits (same weight) are dropped.
func normalizeEdits(g *graph.Graph, edits []EdgeEdit) ([]edgeDelta, error) {
	n := g.N()
	order := make([][2]int, 0, len(edits))
	last := make(map[[2]int]float64, len(edits))
	for i, e := range edits {
		u, v := e.U, e.V
		if u < 0 || u >= n || v < 0 || v >= n || u == v {
			return nil, fmt.Errorf("apsp: edit %d: {%d,%d} is not an edge of a %d-vertex graph", i, e.U, e.V, n)
		}
		if u > v {
			u, v = v, u
		}
		if math.IsNaN(e.W) || math.IsInf(e.W, 0) || e.W < 0 {
			return nil, fmt.Errorf("apsp: edit %d: weight %g for edge {%d,%d} must be finite and non-negative", i, e.W, e.U, e.V)
		}
		key := [2]int{u, v}
		if _, seen := last[key]; !seen {
			order = append(order, key)
		}
		last[key] = e.W
	}
	out := make([]edgeDelta, 0, len(order))
	for _, key := range order {
		old, ok := g.HasEdge(key[0], key[1])
		if !ok {
			return nil, fmt.Errorf("apsp: edit {%d,%d}: edge does not exist (reweighting cannot change the structure)", key[0], key[1])
		}
		if w := last[key]; w != old {
			out = append(out, edgeDelta{u: key[0], v: key[1], old: old, new: w})
		}
	}
	return out, nil
}

// ApplyEdits returns a copy of g with the edits applied. It validates
// exactly as Repair does: every edit must name an existing edge and a
// finite non-negative weight. The registry uses it to compute the
// edited graph's fingerprint before the repair runs.
func ApplyEdits(g *graph.Graph, edits []EdgeEdit) (*graph.Graph, error) {
	if g == nil {
		return nil, fmt.Errorf("apsp: ApplyEdits: nil graph")
	}
	deltas, err := normalizeEdits(g, edits)
	if err != nil {
		return nil, err
	}
	out := g.Clone()
	for _, d := range deltas {
		out.SetEdge(d.u, d.v, d.new)
	}
	return out, nil
}

// Repair produces the PathResult for g with edits applied, starting
// from prev (the solved result for g) instead of re-running the
// numeric phase. prev is never mutated — in-flight queries on the old
// oracle stay valid while the registry swaps fingerprints. The
// returned graph is the edited copy the result is valid for.
//
// The repaired distances are exactly the shortest-path distances of
// the edited graph; with weights whose path sums are float64-exact
// (integers, in particular) they are bit-identical to a warm
// Plan.Execute on the edited graph, and the fallback path IS a warm
// Plan.Execute. The plan must have been built for g's structure (same
// StructureFingerprint modulo weights).
func (pl *Plan) Repair(g *graph.Graph, prev *PathResult, edits []EdgeEdit, opts RepairOptions) (*PathResult, *graph.Graph, RepairStats, error) {
	var st RepairStats
	if g == nil || prev == nil {
		return nil, nil, st, fmt.Errorf("apsp: Repair: nil graph or result")
	}
	n := g.N()
	if prev.N() != n || len(pl.ND.Perm) != n {
		return nil, nil, st, fmt.Errorf("apsp: Repair: result covers %d vertices, graph has %d (plan: %d)", prev.N(), n, len(pl.ND.Perm))
	}
	deltas, err := normalizeEdits(g, edits)
	if err != nil {
		return nil, nil, st, err
	}
	g2 := g.Clone()
	for _, d := range deltas {
		g2.SetEdge(d.u, d.v, d.new)
		st.Edits++
		if d.new < d.old {
			st.Decreases++
		} else {
			st.Increases++
		}
	}
	threshold := opts.DamageThreshold
	if threshold == 0 {
		threshold = DefaultDamageThreshold
	}
	st.TotalPairs = n * n
	if st.TotalPairs == 0 {
		st.TotalPairs = 1 // empty graphs: avoid 0/0 below
	}
	budget := int64(repairProbeBudget) * int64(st.TotalPairs)
	if threshold >= 1 {
		budget = math.MaxInt64
	}

	// Cheap pre-guard, before any O(n²) inspection: editing a large
	// fraction of the edges seeds a comparable fraction of the pairs —
	// re-solve instead.
	if m := g.M(); m > 0 && float64(len(deltas))/float64(m) > threshold {
		st.DamageFraction = 1
		return pl.repairFallback(g2, opts, &st)
	}
	if len(deltas) == 0 {
		// Nothing changed: the old result already serves the edited
		// graph. Return a shallow copy so callers can treat the output
		// as a fresh oracle either way.
		return &PathResult{Dist: prev.Dist.Clone(), n: n, next: append([]int32(nil), prev.next...)}, g2, st, nil
	}

	d := append([]float64(nil), prev.Dist.V...)

	// The phases below lean on the matrix being value-symmetric
	// (d(x,y) = d(y,x), guaranteed for an undirected graph), reading
	// d(x,u) as row u entry x so every scan walks contiguous memory.

	// Phase 1 — decreases, one exact row sweep each. A row x can only
	// improve if x's distance to an endpoint strictly improves through
	// the edge (the improving path's endpoint prefix is itself an
	// improving path), so the affected sources are found in O(n); and
	// with non-negative weights a shortest path crosses the decreased
	// edge {u,v} at most once, so for every affected pair (x,z) the new
	// distance is min(d(x,z), d(x,u)+w+d(v,z), d(x,v)+w+d(u,z)) over
	// the pre-sweep matrix. Reading partially-updated entries is
	// harmless — every candidate stays a valid walk weight ≥ the true
	// distance. Applied one edit at a time, the matrix is exactly the
	// distances of the partially-edited graph after each sweep — no
	// fixpoint iteration, no worklist.
	affected := make([]int, 0, n)
	for _, del := range deltas {
		if del.new >= del.old {
			continue
		}
		w := del.new
		rowU := d[del.u*n : (del.u+1)*n]
		rowV := d[del.v*n : (del.v+1)*n]
		affected = affected[:0]
		for x := 0; x < n; x++ {
			if rowU[x]+w < rowV[x] || rowV[x]+w < rowU[x] {
				affected = append(affected, x)
			}
		}
		st.Relaxations += int64(n) + int64(len(affected))*int64(n)
		if st.Relaxations > budget {
			return pl.repairFallback(g2, opts, &st)
		}
		for _, x := range affected {
			rowX := d[x*n : (x+1)*n]
			au := rowX[del.u] + w
			av := rowX[del.v] + w
			for z, dvz := range rowV {
				s := au + dvz
				if s2 := av + rowU[z]; s2 < s {
					s = s2
				}
				if s < rowX[z] {
					rowX[z] = s
					st.Writes++
				}
			}
		}
	}

	// Phase 2 — increases. The matrix is now exact for the graph with
	// only the decreases applied (which still carries every increased
	// edge at its OLD weight), so it is a min-plus fixpoint under which
	// the tightness tests below are meaningful.
	if st.Increases > 0 {
		if err := repairIncreases(g2, deltas, d, threshold, budget, &st); err != nil {
			if err == errRepairDamage {
				return pl.repairFallback(g2, opts, &st)
			}
			return nil, nil, st, err
		}
	}

	dist := &semiring.Matrix{Rows: n, Cols: n, V: d}

	// Successor repair: rebuild exactly the columns holding a NET
	// changed entry — one O(n²) diff against prev, which is far cheaper
	// than rebuilding every column the phases merely touched (on graphs
	// with many tied shortest paths most recomputed entries land on
	// their old value) — plus columns whose old successor chain crossed
	// an edited edge (the distance may be unchanged while the stored
	// pointer now disagrees with the new weight).
	dirtyCol := make([]bool, n)
	for x := 0; x < n; x++ {
		row := d[x*n : (x+1)*n]
		prow := prev.Dist.V[x*n : (x+1)*n]
		for z, v := range row {
			if v != prow[z] {
				dirtyCol[z] = true
			}
		}
	}
	for _, d := range deltas {
		for v := 0; v < n; v++ {
			if nu := prev.next[d.u*n+v]; nu == int32(d.v) {
				dirtyCol[v] = true
			}
			if nv := prev.next[d.v*n+v]; nv == int32(d.u) {
				dirtyCol[v] = true
			}
		}
	}
	next := append([]int32(nil), prev.next...)
	scratch := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if !dirtyCol[v] {
			continue
		}
		if err := successorColumn(g2, dist, v, next, scratch); err != nil {
			return nil, nil, st, fmt.Errorf("apsp: Repair: %w", err)
		}
		st.RepairedColumns++
	}
	return &PathResult{Dist: dist, n: n, next: next}, g2, st, nil
}

// errRepairDamage signals that the increase phase detected more damage
// (or projected more work) than its thresholds allow; the caller
// answers with repairFallback.
var errRepairDamage = errors.New("apsp: repair damage threshold exceeded")

// repairIncreases repairs d (exact for the graph carrying every
// increased edge at its OLD weight — decreases already folded in) into
// the exact distances of g2. It works in three steps:
//
//  1. Affected sources. A row x can only change if x's distance to an
//     endpoint of some increased edge is tight through that edge at
//     its old weight (a tight pair's endpoint prefix is itself tight),
//     so the candidate rows are found in O(#increases · n). Every row
//     OUTSIDE the set is provably final for g2: none of its shortest
//     paths crosses an increased edge, so raising those edges changes
//     nothing in it — and if a pair (y,x) changes, y is itself
//     affected, so skipping unaffected rows loses no entries.
//  2. Reset scan, restricted to affected rows: every pair whose
//     distance is tight through an increased edge may now be too low.
//     The tolerance deliberately over-marks ties; a spurious reset
//     just gets recomputed to its old value in step 3.
//  3. Boundary Dijkstra per damaged row. Within row a, every
//     non-reset entry is final for g2 (same argument as step 1, per
//     pair), so the reset targets S are rebuilt by a Dijkstra that
//     settles ONLY vertices of S: each b ∈ S is seeded with the best
//     step from a settled neighbour, min over {y ∉ S adjacent to b}
//     of d(a,y)+w(y,b), and edges inside S propagate the rest. Any
//     true shortest a→b path has a last vertex y outside S (possibly
//     a itself); the seed covers the y→S crossing and the in-S
//     relaxations cover the suffix, so the rebuilt values are exact.
//     Cost: O(Σ_b∈S deg(b) + |S| log |S|) per row — independent of n,
//     so rows whose resets are tie-induced false alarms cost almost
//     nothing.
//
// Rows are repaired independently (each reads only its own settled
// entries and edge weights), so the order is irrelevant. The boundary
// Dijkstra requires non-negative weights; graphs carrying a negative
// edge take the warm fallback instead (errRepairDamage), which
// handles them exactly.
func repairIncreases(g2 *graph.Graph, deltas []edgeDelta, d []float64, threshold float64, budget int64, st *RepairStats) error {
	n := g2.N()

	aff := make([]bool, n)
	affRows := make([]int, 0, n)
	for _, del := range deltas {
		if del.new <= del.old {
			continue
		}
		rowU := d[del.u*n : (del.u+1)*n]
		rowV := d[del.v*n : (del.v+1)*n]
		for x := 0; x < n; x++ {
			if aff[x] {
				continue
			}
			if tightSum(rowU[x]+del.old, rowV[x]) || tightSum(rowV[x]+del.old, rowU[x]) {
				aff[x] = true
				affRows = append(affRows, x)
			}
		}
		st.Relaxations += int64(n)
	}
	st.AffectedRows = len(affRows)
	if len(affRows) == 0 {
		return nil
	}

	for u := 0; u < n; u++ {
		for _, e := range g2.Adj(u) {
			if e.W < 0 {
				return errRepairDamage
			}
		}
	}

	st.Relaxations += int64(st.Increases) * int64(len(affRows)) * int64(n)
	if st.Relaxations > budget {
		return errRepairDamage
	}
	// Reset scan. The tightness test is tightSum inlined (exact match
	// or within 1e-9 relative) — at #increases·|affected|·n probes the
	// call overhead is the phase's hot spot.
	reset := make([]bool, n*n)
	rowResets := make([][]int32, n)
	for _, del := range deltas {
		if del.new <= del.old {
			continue
		}
		rowU := d[del.u*n : (del.u+1)*n]
		rowV := d[del.v*n : (del.v+1)*n]
		for _, a := range affRows {
			au := rowU[a] + del.old
			av := rowV[a] + del.old
			if math.IsInf(au, 1) && math.IsInf(av, 1) {
				continue
			}
			drow := d[a*n : (a+1)*n]
			rra := reset[a*n : (a+1)*n]
			for b := 0; b < n; b++ {
				if a == b || rra[b] {
					continue
				}
				dab := drow[b]
				if math.IsInf(dab, 1) {
					continue
				}
				tol := 1e-9
				if dab > 1 {
					tol *= dab
				} else if dab < -1 {
					tol *= -dab
				}
				s1 := au + rowV[b] - dab
				s2 := av + rowU[b] - dab
				if (s1 <= tol && s1 >= -tol) || (s2 <= tol && s2 >= -tol) {
					rra[b] = true
					rowResets[a] = append(rowResets[a], int32(b))
					st.ResetPairs++
				}
			}
		}
	}
	st.DamageFraction = float64(st.ResetPairs) / float64(st.TotalPairs)
	if st.DamageFraction > threshold {
		return errRepairDamage
	}

	var h pairHeap
	inS := make([]bool, n)
	dist := make([]float64, n)
	for a, S := range rowResets {
		if len(S) == 0 {
			continue
		}
		st.ResetRows++
		row := d[a*n : (a+1)*n]
		for _, b := range S {
			inS[b] = true
		}
		h.d, h.v = h.d[:0], h.v[:0]
		for _, b := range S {
			adj := g2.Adj(int(b))
			best := semiring.Inf
			for _, e := range adj {
				if !inS[e.To] {
					if c := row[e.To] + e.W; c < best {
						best = c
					}
				}
			}
			dist[b] = best
			if !math.IsInf(best, 1) {
				h.push(best, int(b))
			}
			st.Relaxations += int64(len(adj))
		}
		for len(h.d) > 0 {
			dv, v := h.pop()
			if dv > dist[v] {
				continue
			}
			adj := g2.Adj(v)
			for _, e := range adj {
				if inS[e.To] {
					if nd := dv + e.W; nd < dist[e.To] {
						dist[e.To] = nd
						h.push(nd, e.To)
					}
				}
			}
			st.Relaxations += int64(len(adj))
		}
		for _, b := range S {
			inS[b] = false
			if nv := dist[b]; nv != row[b] {
				row[b] = nv
				st.Writes++
			}
		}
		if st.Relaxations > budget {
			return errRepairDamage
		}
	}
	return nil
}

// pairHeap is a small binary min-heap of (dist, vertex) pairs with
// lazy deletion: a vertex may appear multiple times and stale entries
// are skipped on pop. Used by the boundary Dijkstra row repair.
type pairHeap struct {
	d []float64
	v []int32
}

func (h *pairHeap) push(dist float64, vtx int) {
	h.d = append(h.d, dist)
	h.v = append(h.v, int32(vtx))
	i := len(h.d) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.d[p] <= h.d[i] {
			break
		}
		h.d[p], h.d[i] = h.d[i], h.d[p]
		h.v[p], h.v[i] = h.v[i], h.v[p]
		i = p
	}
}

func (h *pairHeap) pop() (float64, int) {
	top, tv := h.d[0], h.v[0]
	last := len(h.d) - 1
	h.d[0], h.v[0] = h.d[last], h.v[last]
	h.d, h.v = h.d[:last], h.v[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < last && h.d[l] < h.d[s] {
			s = l
		}
		if r < last && h.d[r] < h.d[s] {
			s = r
		}
		if s == i {
			break
		}
		h.d[s], h.d[i] = h.d[i], h.d[s]
		h.v[s], h.v[i] = h.v[i], h.v[s]
		i = s
	}
	return top, int(tv)
}

// repairFallback is the over-threshold path: a warm Plan.Execute on
// the edited graph plus full successor extraction — exactly what a
// cache-warm re-solve through the registry would have done.
func (pl *Plan) repairFallback(g2 *graph.Graph, opts RepairOptions, st *RepairStats) (*PathResult, *graph.Graph, RepairStats, error) {
	st.FellBack = true
	res, err := pl.ExecuteOpts(pl.LayoutFor(g2), ExecOpts{
		Kernel:   opts.Kernel,
		Executor: opts.Executor,
		Schedule: opts.Schedule,
		Fuse:     opts.Fuse,
		Workers:  opts.ExecWorkers,
	})
	if err != nil {
		return nil, nil, *st, err
	}
	pr, err := SuccessorsFromDist(g2, res.Dist)
	if err != nil {
		return nil, nil, *st, err
	}
	pr.Report = res.Report
	st.RepairedColumns = g2.N()
	return pr, g2, *st, nil
}

// RepairWithOptions is the serving-layer entry point: fetch (or build
// and cache) the symbolic plan for g exactly as SparseAPSPWith would,
// then Repair prev against it. p must be a valid sparse machine size;
// the plan cache in sopts.Plans makes repeated reweights of one
// structure pay the symbolic cost once — usually zero times, since the
// original solve already populated the cache.
func RepairWithOptions(g *graph.Graph, prev *PathResult, edits []EdgeEdit, p int, sopts SparseOptions, threshold float64) (*PathResult, *graph.Graph, RepairStats, error) {
	h, err := HeightForP(p)
	if err != nil {
		return nil, nil, RepairStats{}, err
	}
	var pl *Plan
	if sopts.Plans != nil {
		fp := StructureFingerprintOf(g, p, sopts.Seed, sopts.Wire, sopts.R4Strategy)
		if cached, ok := sopts.Plans.lookup(fp); ok {
			pl = cached
		} else {
			start := time.Now()
			_, built, err := buildSymbolic(g, p, h, sopts)
			if err != nil {
				return nil, nil, RepairStats{}, err
			}
			sopts.Plans.put(fp, built, time.Since(start).Nanoseconds())
			pl = built
		}
	} else {
		_, pl, err = buildSymbolic(g, p, h, sopts)
		if err != nil {
			return nil, nil, RepairStats{}, err
		}
	}
	return pl.Repair(g, prev, edits, RepairOptions{
		DamageThreshold: threshold,
		Kernel:          sopts.Kernel,
		Executor:        sopts.Executor,
	})
}
