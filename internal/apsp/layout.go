package apsp

import (
	"fmt"
	"sync"

	"sparseapsp/internal/etree"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/partition"
	"sparseapsp/internal/semiring"
)

// Layout is the supernodal block structure of Section 5.1: a nested
// dissection of the input graph into N = 2^h − 1 supernodes, the
// matching elimination tree, and the permuted graph whose adjacency
// matrix the block distance matrix is initialized from. Block (i, j)
// is the |V_i| × |V_j| submatrix of the permuted distance matrix.
type Layout struct {
	G    *graph.Graph      // original graph
	PG   *graph.Graph      // permuted (reordered) graph
	ND   *partition.Result // the dissection: supernodes, sizes, permutation
	Tree *etree.Tree       // eTree over supernode labels 1..N
	// Fill is the symbolic fill mask: which blocks can ever hold a
	// finite entry, per eTree level. SparseAPSP uses it to skip
	// provably-empty broadcasts and multiplications.
	Fill *FillMask
}

// NewLayout runs nested dissection with h levels on g.
func NewLayout(g *graph.Graph, h int, seed int64) (*Layout, error) {
	nd, err := partition.NestedDissection(g, h, seed)
	if err != nil {
		return nil, err
	}
	return NewLayoutFromOrdering(g, nd), nil
}

// NewLayoutFromOrdering wraps an existing nested-dissection result —
// for example one computed by partition.DistributedND — as a layout
// usable by the solvers.
func NewLayoutFromOrdering(g *graph.Graph, nd *partition.Result) *Layout {
	ly := &Layout{
		G:    g,
		PG:   g.Permute(nd.Perm),
		ND:   nd,
		Tree: etree.New(nd.H),
	}
	ly.Fill = NewFillMask(ly)
	return ly
}

// blockBacking recycles the n²-word backing arrays of Blocks across
// solves. A warm serving run executes one Blocks per query; without the
// pool the allocator's zeroing and the GC's scanning of a multi-megabyte
// slice are a fixed tax on every solve.
var blockBacking sync.Pool

func getBacking(n int) []float64 {
	if v := blockBacking.Get(); v != nil {
		if s := *(v.(*[]float64)); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

// Blocks builds the initial distance-matrix blocks: blocks[i][j]
// (1-based supernode labels) holds edge weights between supernodes i
// and j, Inf elsewhere, 0 on the global diagonal. The total storage is
// exactly n² words spread over N² blocks.
func (ly *Layout) Blocks() [][]*semiring.Matrix {
	blocks, _ := ly.BlocksPooled()
	return blocks
}

// BlocksPooled is Blocks plus a release callback that hands the flat
// backing array back to an internal pool. Call release only once no
// block is referenced anymore (the executors release right after
// AssembleOriginal); callers that let blocks escape use plain Blocks.
func (ly *Layout) BlocksPooled() (blocks [][]*semiring.Matrix, release func()) {
	nSuper := ly.ND.N
	// All N² block bodies live in one flat allocation (their total is
	// exactly n² words) and the matrix headers in another: at large p
	// the per-block allocations and their GC scanning otherwise rival
	// the numeric work of a warm solve.
	n := len(ly.ND.Perm)
	flat := getBacking(n * n)
	for i := range flat {
		flat[i] = semiring.Inf
	}
	mats := make([]semiring.Matrix, nSuper*nSuper)
	blocks = make([][]*semiring.Matrix, nSuper+1)
	off, k := 0, 0
	for i := 1; i <= nSuper; i++ {
		blocks[i] = make([]*semiring.Matrix, nSuper+1)
		for j := 1; j <= nSuper; j++ {
			sz := ly.ND.Sizes[i] * ly.ND.Sizes[j]
			mats[k] = semiring.Matrix{Rows: ly.ND.Sizes[i], Cols: ly.ND.Sizes[j], V: flat[off : off+sz : off+sz]}
			blocks[i][j] = &mats[k]
			k++
			off += sz
		}
		diag := blocks[i][i]
		for d := 0; d < diag.Rows; d++ {
			diag.Set(d, d, 0)
		}
	}
	sup, loc := ly.vertexBlocks()
	for v := 0; v < ly.PG.N(); v++ {
		sv, lv := sup[v], loc[v]
		for _, e := range ly.PG.Adj(v) {
			b := blocks[sv][sup[e.To]]
			if i := int(lv)*b.Cols + int(loc[e.To]); e.W < b.V[i] {
				b.V[i] = e.W
			}
		}
	}
	return blocks, func() { blockBacking.Put(&flat) }
}

// vertexBlocks maps every permuted vertex index to its (supernode,
// offset-within-supernode) coordinates in one O(n) sweep — the bulk
// counterpart of the per-vertex SupernodeOf binary search, which
// profiles as a top cost of Blocks and AssembleOriginal at large p.
func (ly *Layout) vertexBlocks() (sup, loc []int32) {
	n := len(ly.ND.Perm)
	sup = make([]int32, n)
	loc = make([]int32, n)
	for s := 1; s <= ly.ND.N; s++ {
		start := ly.ND.Starts[s]
		for i := 0; i < ly.ND.Sizes[s]; i++ {
			sup[start+i] = int32(s)
			loc[start+i] = int32(i)
		}
	}
	return sup, loc
}

// AssembleOriginal reassembles a full distance matrix in the original
// vertex order from the block matrix.
func (ly *Layout) AssembleOriginal(blocks [][]*semiring.Matrix) *semiring.Matrix {
	n := ly.G.N()
	out := semiring.NewMatrix(n, n)
	sup, loc := ly.vertexBlocks()
	// Gather each column's block coordinates once; the inner loop is
	// then two table loads and one block access per entry.
	colSup := make([]int32, n)
	colLoc := make([]int32, n)
	for v := 0; v < n; v++ {
		pv := ly.ND.Perm[v]
		colSup[v], colLoc[v] = sup[pv], loc[pv]
	}
	for u := 0; u < n; u++ {
		pu := ly.ND.Perm[u]
		brow := blocks[sup[pu]]
		lu := int(loc[pu])
		orow := out.V[u*n : (u+1)*n]
		for v := 0; v < n; v++ {
			b := brow[colSup[v]]
			orow[v] = b.V[lu*b.Cols+int(colLoc[v])]
		}
	}
	return out
}

// HeightForP returns the eTree height for a machine of p ranks under
// the block layout (√p = 2^h − 1), or an error for invalid p.
func HeightForP(p int) (int, error) {
	s := 0
	for (s+1)*(s+1) <= p {
		s++
	}
	if s*s != p {
		return 0, fmt.Errorf("apsp: p=%d is not a perfect square", p)
	}
	return etree.HeightForGrid(s)
}

// ValidSparseP reports the processor counts ≤ max usable by the sparse
// algorithm: p = (2^h − 1)².
func ValidSparseP(max int) []int {
	var out []int
	for h := 1; ; h++ {
		s := (1 << h) - 1
		if s*s > max {
			return out
		}
		out = append(out, s*s)
	}
}
