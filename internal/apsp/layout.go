package apsp

import (
	"fmt"

	"sparseapsp/internal/etree"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/partition"
	"sparseapsp/internal/semiring"
)

// Layout is the supernodal block structure of Section 5.1: a nested
// dissection of the input graph into N = 2^h − 1 supernodes, the
// matching elimination tree, and the permuted graph whose adjacency
// matrix the block distance matrix is initialized from. Block (i, j)
// is the |V_i| × |V_j| submatrix of the permuted distance matrix.
type Layout struct {
	G    *graph.Graph      // original graph
	PG   *graph.Graph      // permuted (reordered) graph
	ND   *partition.Result // the dissection: supernodes, sizes, permutation
	Tree *etree.Tree       // eTree over supernode labels 1..N
	// Fill is the symbolic fill mask: which blocks can ever hold a
	// finite entry, per eTree level. SparseAPSP uses it to skip
	// provably-empty broadcasts and multiplications.
	Fill *FillMask
}

// NewLayout runs nested dissection with h levels on g.
func NewLayout(g *graph.Graph, h int, seed int64) (*Layout, error) {
	nd, err := partition.NestedDissection(g, h, seed)
	if err != nil {
		return nil, err
	}
	return NewLayoutFromOrdering(g, nd), nil
}

// NewLayoutFromOrdering wraps an existing nested-dissection result —
// for example one computed by partition.DistributedND — as a layout
// usable by the solvers.
func NewLayoutFromOrdering(g *graph.Graph, nd *partition.Result) *Layout {
	ly := &Layout{
		G:    g,
		PG:   g.Permute(nd.Perm),
		ND:   nd,
		Tree: etree.New(nd.H),
	}
	ly.Fill = NewFillMask(ly)
	return ly
}

// Blocks builds the initial distance-matrix blocks: blocks[i][j]
// (1-based supernode labels) holds edge weights between supernodes i
// and j, Inf elsewhere, 0 on the global diagonal. The total storage is
// exactly n² words spread over N² blocks.
func (ly *Layout) Blocks() [][]*semiring.Matrix {
	nSuper := ly.ND.N
	blocks := make([][]*semiring.Matrix, nSuper+1)
	for i := 1; i <= nSuper; i++ {
		blocks[i] = make([]*semiring.Matrix, nSuper+1)
		for j := 1; j <= nSuper; j++ {
			blocks[i][j] = semiring.NewMatrix(ly.ND.Sizes[i], ly.ND.Sizes[j])
		}
		diag := blocks[i][i]
		for d := 0; d < diag.Rows; d++ {
			diag.Set(d, d, 0)
		}
	}
	for v := 0; v < ly.PG.N(); v++ {
		sv := ly.ND.SupernodeOf(v)
		lv := v - ly.ND.Starts[sv]
		for _, e := range ly.PG.Adj(v) {
			su := ly.ND.SupernodeOf(e.To)
			lu := e.To - ly.ND.Starts[su]
			if e.W < blocks[sv][su].At(lv, lu) {
				blocks[sv][su].Set(lv, lu, e.W)
			}
		}
	}
	return blocks
}

// AssembleOriginal reassembles a full distance matrix in the original
// vertex order from the block matrix.
func (ly *Layout) AssembleOriginal(blocks [][]*semiring.Matrix) *semiring.Matrix {
	n := ly.G.N()
	out := semiring.NewMatrix(n, n)
	for u := 0; u < n; u++ {
		pu := ly.ND.Perm[u]
		su := ly.ND.SupernodeOf(pu)
		lu := pu - ly.ND.Starts[su]
		for v := 0; v < n; v++ {
			pv := ly.ND.Perm[v]
			sv := ly.ND.SupernodeOf(pv)
			lv := pv - ly.ND.Starts[sv]
			out.Set(u, v, blocks[su][sv].At(lu, lv))
		}
	}
	return out
}

// HeightForP returns the eTree height for a machine of p ranks under
// the block layout (√p = 2^h − 1), or an error for invalid p.
func HeightForP(p int) (int, error) {
	s := 0
	for (s+1)*(s+1) <= p {
		s++
	}
	if s*s != p {
		return 0, fmt.Errorf("apsp: p=%d is not a perfect square", p)
	}
	return etree.HeightForGrid(s)
}

// ValidSparseP reports the processor counts ≤ max usable by the sparse
// algorithm: p = (2^h − 1)².
func ValidSparseP(max int) []int {
	var out []int
	for h := 1; ; h++ {
		s := (1 << h) - 1
		if s*s > max {
			return out
		}
		out = append(out, s*s)
	}
}
