package apsp

import "math/bits"

// Demand-pruned communication (the "pruned" wire format). The fill
// mask of fillmask.go answers a block-granularity question — can block
// (i, j) ever hold a finite entry? — which is enough to skip whole
// broadcasts but says nothing about the entries INSIDE a block that
// ships. This file answers the finer question at BuildPlan time: for
// each planned collective, which rows/columns of the payload can be
// folded into a finite output by at least one receiver? Everything
// else decodes to Inf at every consumer, so it never needs to travel —
// the same structure-before-values exchange sparsity-aware distributed
// SpGEMM performs, here precomputed symbolically and frozen into the
// Plan so warm solves and repairs pay nothing per solve.
//
// The sweep maintains one boolean matrix per supernodal block — a
// sound overapproximation of "entry may be finite" — and replays the
// numeric schedule of exec.go on it in plan order:
//
//	R1     M(k,k) ← boolean transitive closure of M(k,k)
//	R2     M(i,k) |= M(i,k) ⊗ M(k,k);  M(k,j) |= M(k,k) ⊗ M(k,j)
//	R3     M(i,j) |= M(i,k) ⊗ M(k,j)
//	R4     M(I,J) |= M(I,K) ⊗ M(K,J)       (one term per planned unit)
//	trans  M(BJ,BI) ← M(BI,BJ)ᵀ            (replace, like CopyFrom)
//
// where ⊗ is the boolean matrix product (min-plus finiteness: the
// product entry may be finite iff some k pairs two maybe-finite
// entries). Within each phase all demands are computed BEFORE any mask
// update is applied — the phases read operands written by earlier
// phases only (R3 products target blocks with no level-l coordinate,
// R4 products target ancestor blocks, transposes write the mirror half
// that is never a same-level source), so the pre-phase masks are
// exactly the operand state every receiver multiplies at.
//
// Soundness of a prune: a payload row t is dropped only when every
// consumer's left operand has a provably all-Inf column t (and
// symmetrically for columns against right-operand rows). A dropped
// row then contributes only Inf terms to every min-plus fold at every
// receiver, and min(x, Inf) = x bit-for-bit — which is why wire=pruned
// distances are bit-identical to wire=dense (pinned by the golden and
// kernel×wire tests).

// PruneSpec is a per-op prune descriptor frozen into the Plan: the
// ascending row/column indices of the payload at least one consumer
// can use. A nil axis means "keep all" (the full descriptor); an empty
// non-nil axis means no consumer can use anything, and the payload
// collapses to the 1-word empty encoding.
//
// ZeroDiag marks pivot broadcasts (R2): exact-zero diagonal entries of
// the payload D(k,k) may be dropped at pack time, because the only
// term D[t,t] = 0 contributes to any consumer's fold A ⊕= A⊗D (or
// D⊗A) is the value the target entry already holds — see
// semiring.PackPruned. It is set on every R2 op, never elsewhere: for
// other payloads a diagonal position is an ordinary entry.
type PruneSpec struct {
	Rows, Cols []int32
	ZeroDiag   bool
}

// entryMask is a boolean rows×cols matrix stored as w words per row.
type entryMask struct {
	rows, cols, w int
	bits          []uint64
}

func newEntryMask(rows, cols int) *entryMask {
	w := (cols + 63) / 64
	return &entryMask{rows: rows, cols: cols, w: w, bits: make([]uint64, rows*w)}
}

func (m *entryMask) set(r, c int) { m.bits[r*m.w+c/64] |= 1 << (c % 64) }

func (m *entryMask) row(r int) []uint64 { return m.bits[r*m.w : (r+1)*m.w] }

func (m *entryMask) empty() bool {
	if m == nil {
		return true
	}
	for _, word := range m.bits {
		if word != 0 {
			return false
		}
	}
	return true
}

// orMul folds the boolean product a ⊗ b into m (all dimensions must
// agree: m is a.rows×b.cols, a.cols == b.rows). Neither operand may
// alias m — callers snapshot when the schedule is self-referential.
func (m *entryMask) orMul(a, b *entryMask) {
	if a == nil || b == nil {
		return
	}
	for i := 0; i < a.rows; i++ {
		arow := a.row(i)
		dst := m.row(i)
		for wi, word := range arow {
			for word != 0 {
				k := wi*64 + trailingZeros(word)
				word &= word - 1
				if k >= a.cols {
					break
				}
				brow := b.row(k)
				for x := range dst {
					dst[x] |= brow[x]
				}
			}
		}
	}
}

// closure replaces m (square) with its boolean transitive closure —
// the mask image of ClassicalFW on the diagonal block.
func (m *entryMask) closure() {
	for k := 0; k < m.rows; k++ {
		krow := m.row(k)
		kw, kb := k/64, uint64(1)<<(k%64)
		for i := 0; i < m.rows; i++ {
			irow := m.row(i)
			if irow[kw]&kb != 0 {
				for x := range irow {
					irow[x] |= krow[x]
				}
			}
		}
	}
}

// transposeOf returns mᵀ as a fresh mask.
func (m *entryMask) transposeOf() *entryMask {
	t := newEntryMask(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.row(i)
		for wi, word := range row {
			for word != 0 {
				j := wi*64 + trailingZeros(word)
				word &= word - 1
				if j < m.cols {
					t.set(j, i)
				}
			}
		}
	}
	return t
}

// orRowAnyInto sets bit r of dst (a bitset over m's rows) for every
// row of m holding at least one set bit.
func (m *entryMask) orRowAnyInto(dst []uint64) {
	if m == nil {
		return
	}
	for r := 0; r < m.rows; r++ {
		for _, word := range m.row(r) {
			if word != 0 {
				dst[r/64] |= 1 << (r % 64)
				break
			}
		}
	}
}

// orColAnyInto sets bit c of dst (a bitset over m's columns) for every
// column of m holding at least one set bit.
func (m *entryMask) orColAnyInto(dst []uint64) {
	if m == nil {
		return
	}
	for r := 0; r < m.rows; r++ {
		row := m.row(r)
		for x := range row {
			dst[x] |= row[x]
		}
	}
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// demandState is the sweep's mutable mask matrix, indexed by 1-based
// supernode labels; nil entries are provably all-Inf blocks.
type demandState struct {
	n     int
	sizes []int
	m     []*entryMask // (i-1)*n + (j-1)
}

func (d *demandState) at(i, j int) *entryMask { return d.m[(i-1)*d.n+(j-1)] }

func (d *demandState) ensure(i, j int) *entryMask {
	idx := (i-1)*d.n + (j - 1)
	if d.m[idx] == nil {
		d.m[idx] = newEntryMask(d.sizes[i], d.sizes[j])
	}
	return d.m[idx]
}

// newDemandState mirrors Layout.BlocksPooled's initial structure: the
// diagonal of every non-empty supernode plus one bit per structural
// edge of the permuted graph.
func newDemandState(ly *Layout) *demandState {
	n := ly.ND.N
	d := &demandState{n: n, sizes: ly.ND.Sizes, m: make([]*entryMask, n*n)}
	for i := 1; i <= n; i++ {
		if d.sizes[i] == 0 {
			continue
		}
		diag := d.ensure(i, i)
		for t := 0; t < d.sizes[i]; t++ {
			diag.set(t, t)
		}
	}
	sup, loc := ly.vertexBlocks()
	for v := 0; v < ly.PG.N(); v++ {
		sv, lv := int(sup[v]), int(loc[v])
		for _, e := range ly.PG.Adj(v) {
			d.ensure(sv, int(sup[e.To])).set(lv, int(loc[e.To]))
		}
	}
	return d
}

// blockOf converts a rank back to its 1-based block coordinates.
func blockOf(rank, n int) (int, int) { return rank/n + 1, rank%n + 1 }

// keepList converts a demand bitset over n indices into a PruneSpec
// axis: nil when every index is demanded (pruning saves nothing on
// this axis), else the ascending kept list (possibly empty).
func keepList(bs []uint64, n int) []int32 {
	list := make([]int32, 0, n)
	for t := 0; t < n; t++ {
		if bs[t/64]&(1<<(t%64)) != 0 {
			list = append(list, int32(t))
		}
	}
	if len(list) == n {
		return nil
	}
	return list
}

// pruneFor assembles the op descriptor; a nil return is the `full`
// descriptor (no symbolic pruning on either axis).
func pruneFor(rows, cols []uint64, nr, nc int) *PruneSpec {
	var r, c []int32
	if rows != nil {
		r = keepList(rows, nr)
	}
	if cols != nil {
		c = keepList(cols, nc)
	}
	if r == nil && c == nil {
		return nil
	}
	return &PruneSpec{Rows: r, Cols: c}
}

func bitset(n int) []uint64 { return make([]uint64, (n+63)/64) }

// attachPrunes runs the symbolic demand sweep over the plan's schedule
// and bakes a PruneSpec into every broadcast and sequential-R4 send
// whose payload some receiver provably cannot fully use. Transpose
// sends are never symbolically pruned: the receiver's block BECOMES
// the payload (replace, not fold), so every entry is demanded — they
// still benefit from the pack-time numeric trim. Reduce payloads are
// raw vectors outside the pack layer and are left untouched.
func attachPrunes(pl *Plan, ly *Layout) {
	d := newDemandState(ly)
	n := pl.NSup
	for li := range pl.Levels {
		lv := &pl.Levels[li]

		// R1: diagonal closures.
		for _, k := range lv.R1 {
			if dk := d.at(k, k); dk != nil {
				dk.closure()
			}
		}

		// R2: demands against the pre-update panels, then the panel
		// mask updates in one batch (consumer blocks are pairwise
		// distinct across the level's R2 ops).
		type r2upd struct{ i, j, k int }
		var r2upds []r2upd
		for x := range lv.R2 {
			op := &lv.R2[x]
			k := op.BI // payload is the diagonal block (k, k)
			if op.Kind == opR2Left {
				// Payload is the RIGHT operand of A(i,k) ⊕= A(i,k) ⊗ D:
				// row t of D meets column t of every consumer's A(i,k).
				rows := bitset(d.sizes[k])
				for _, r := range op.Consumers {
					i, _ := blockOf(r, n)
					d.at(i, k).orColAnyInto(rows)
					r2upds = append(r2upds, r2upd{i, k, k})
				}
				op.Prune = pruneFor(rows, nil, d.sizes[k], d.sizes[k])
			} else {
				// Payload is the LEFT operand of A(k,j) ⊕= D ⊗ A(k,j):
				// column t of D meets row t of every consumer's A(k,j).
				cols := bitset(d.sizes[k])
				for _, r := range op.Consumers {
					_, j := blockOf(r, n)
					d.at(k, j).orRowAnyInto(cols)
					r2upds = append(r2upds, r2upd{k, j, k})
				}
				op.Prune = pruneFor(nil, cols, d.sizes[k], d.sizes[k])
			}
			// Pivot payloads always allow the zero-diagonal drop (the
			// `full` descriptor becomes a non-nil spec carrying only the
			// flag). On identity pivots — diagonal supernodes with no
			// internal fill, e.g. every leaf supernode of a star — the
			// whole broadcast collapses to the 1-word empty payload.
			if op.Prune == nil {
				op.Prune = &PruneSpec{ZeroDiag: true}
			} else {
				op.Prune.ZeroDiag = true
			}
		}
		for _, u := range r2upds {
			if p := d.at(u.i, u.j); p != nil {
				// The panel is both an operand and the destination; the
				// numeric kernel reads the PRE-update panel (via its
				// scratch clone), so the sweep multiplies a snapshot.
				if u.i == u.k { // M(k,j) |= M(k,k) ⊗ M(k,j)
					p.orMul(d.at(u.k, u.k), snapshotOf(p))
				} else { // M(i,k) |= M(i,k) ⊗ M(k,k)
					p.orMul(snapshotOf(p), d.at(u.k, u.k))
				}
			}
		}

		// R3: demands from the post-R2 panels, then the one-unit
		// products (targets carry no level-l coordinate, so no R3
		// operand is written within the phase).
		type r3upd struct{ i, j, k int }
		var r3upds []r3upd
		for x := range lv.R3 {
			op := &lv.R3[x]
			if op.Kind == opR3Row {
				// Payload A(i,k) is the LEFT operand of
				// A(i,j) ⊕= A(i,k) ⊗ A(k,j): its column t meets row t
				// of the consumer's column panel A(k,j).
				i, k := op.BI, op.BJ
				cols := bitset(d.sizes[k])
				for _, r := range op.Consumers {
					_, j := blockOf(r, n)
					d.at(k, j).orRowAnyInto(cols)
					r3upds = append(r3upds, r3upd{i, j, k})
				}
				op.Prune = pruneFor(nil, cols, d.sizes[i], d.sizes[k])
			} else {
				// Payload A(k,j) is the RIGHT operand: its row t meets
				// column t of the consumer's row panel A(i,k).
				k, j := op.BI, op.BJ
				rows := bitset(d.sizes[k])
				for _, r := range op.Consumers {
					i, _ := blockOf(r, n)
					d.at(i, k).orColAnyInto(rows)
				}
				op.Prune = pruneFor(rows, nil, d.sizes[k], d.sizes[j])
			}
		}
		for _, u := range r3upds {
			a, b := d.at(u.i, u.k), d.at(u.k, u.j)
			if a != nil && b != nil && !a.empty() && !b.empty() {
				d.ensure(u.i, u.j).orMul(a, b)
			}
		}

		// R4, mapped strategy: a consumer's demand is defined by its
		// unit's OTHER operand; consumers without a planned unit never
		// multiply and demand nothing.
		unitOf := make(map[int]*UnitOp, len(lv.R4Units))
		for x := range lv.R4Units {
			unitOf[lv.R4Units[x].Rank] = &lv.R4Units[x]
		}
		for x := range lv.R4Col {
			op := &lv.R4Col[x] // payload A(i,k): left operand of unit products
			k := op.BJ
			cols := bitset(d.sizes[k])
			for _, r := range op.Consumers {
				if u := unitOf[r]; u != nil {
					d.at(u.K, u.J).orRowAnyInto(cols)
				}
			}
			op.Prune = pruneFor(nil, cols, d.sizes[op.BI], d.sizes[k])
		}
		for x := range lv.R4Row {
			op := &lv.R4Row[x] // payload A(k,j): right operand
			k := op.BI
			rows := bitset(d.sizes[k])
			for _, r := range op.Consumers {
				if u := unitOf[r]; u != nil {
					d.at(u.I, u.K).orColAnyInto(rows)
				}
			}
			op.Prune = pruneFor(rows, nil, d.sizes[k], d.sizes[op.BJ])
		}

		// R4, sequential ablation: the same products, point-to-point.
		for x := range lv.R4Seq {
			op := &lv.R4Seq[x]
			cols := bitset(d.sizes[op.K])
			d.at(op.K, op.BJ).orRowAnyInto(cols)
			op.PruneA = pruneFor(nil, cols, d.sizes[op.BI], d.sizes[op.K])
			rows := bitset(d.sizes[op.K])
			d.at(op.BI, op.K).orColAnyInto(rows)
			op.PruneB = pruneFor(rows, nil, d.sizes[op.K], d.sizes[op.BJ])
		}

		// R4 mask updates (both strategies fold the same products).
		for x := range lv.R4Units {
			u := &lv.R4Units[x]
			a, b := d.at(u.I, u.K), d.at(u.K, u.J)
			if a != nil && b != nil && !a.empty() && !b.empty() {
				d.ensure(u.I, u.J).orMul(a, b)
			}
		}
		for x := range lv.R4Seq {
			op := &lv.R4Seq[x]
			a, b := d.at(op.BI, op.K), d.at(op.K, op.BJ)
			if a != nil && b != nil && !a.empty() && !b.empty() {
				d.ensure(op.BI, op.BJ).orMul(a, b)
			}
		}

		// Transposes replace the mirror block (CopyFrom semantics).
		// Sources are lower-half blocks and destinations upper-half, so
		// no op reads another's destination; still, snapshot first.
		type transUpd struct {
			i, j int
			t    *entryMask
		}
		var tps []transUpd
		for x := range lv.Trans {
			op := &lv.Trans[x]
			if src := d.at(op.BI, op.BJ); src != nil {
				tps = append(tps, transUpd{op.BJ, op.BI, src.transposeOf()})
			}
		}
		for _, tp := range tps {
			d.m[(tp.i-1)*d.n+(tp.j-1)] = tp.t
		}
	}
}

// snapshotOf returns a deep copy of a mask.
func snapshotOf(a *entryMask) *entryMask {
	if a == nil {
		return nil
	}
	return &entryMask{rows: a.rows, cols: a.cols, w: a.w, bits: append([]uint64(nil), a.bits...)}
}
