package apsp

// Symbolic fill analysis. Block (i, j) of the supernodal distance
// matrix starts with finite entries only where the permuted graph has
// edges between supernodes i and j, and every later update is a
// min-plus product A(i,j) ⊕= A(i,k) ⊗ A(k,j) scheduled by the eTree
// regions — so which blocks can EVER hold a finite entry is decided by
// the elimination tree and the supernode adjacency alone, before any
// numeric work. FillMask runs that analysis once: a per-level boolean
// overapproximation of block finiteness, level l's updates committed
// in one batch (no R3/R4 product at level l reads a block another
// level-l product wrote a first finite entry into — their outputs
// never have a level-l coordinate — and R2 panel updates cannot turn
// an all-Inf panel finite, since P ⊕ P⊗D has no finite entries when P
// has none).
//
// SparseAPSP uses the mask to skip broadcasts whose payload is
// provably all-Inf and the multiplications fed by them; because those
// operations only move and fold semiring identities, skipping them
// leaves every distance bit-identical.

// FillMask records, per eTree level, which supernodal blocks may hold
// a finite entry. It is a sound overapproximation: At(l, i, j) ==
// false guarantees block (i, j) is all-Inf when level l starts.
type FillMask struct {
	H, N   int
	states [][]bool // states[s]: start of level s+1; states[H] is final
}

// NewFillMask runs the symbolic elimination on a layout's tree and
// supernode adjacency. NewLayoutFromOrdering attaches the result to
// Layout.Fill, so solvers normally never call this directly.
func NewFillMask(ly *Layout) *FillMask {
	tr, nd := ly.Tree, ly.ND
	n := tr.N
	stride := n + 1
	cur := make([]bool, stride*stride)
	// Initial structure: the diagonal of every non-empty supernode
	// (distance 0) plus every supernode pair joined by an edge, kept
	// symmetric (the solver mirrors the upper half by transposition).
	for i := 1; i <= n; i++ {
		if nd.Sizes[i] > 0 {
			cur[i*stride+i] = true
		}
	}
	for v := 0; v < ly.PG.N(); v++ {
		sv := nd.SupernodeOf(v)
		for _, e := range ly.PG.Adj(v) {
			su := nd.SupernodeOf(e.To)
			cur[sv*stride+su] = true
			cur[su*stride+sv] = true
		}
	}
	fm := &FillMask{H: tr.H, N: n, states: make([][]bool, 0, tr.H+1)}
	fm.states = append(fm.states, cur)
	for l := 1; l <= tr.H; l++ {
		// Level l folds A(i,k) ⊗ A(k,j) into A(i,j) for every pivot
		// k ∈ Q_l and every i, j related to k (the R2/R3/R4 update set
		// is contained in related(k) × related(k); R1 and R2 cannot
		// change block-level finiteness).
		next := append([]bool(nil), cur...)
		for _, k := range tr.LevelNodes(l) {
			if nd.Sizes[k] == 0 {
				continue
			}
			rel := tr.RelatedSet(k)
			for _, i := range rel {
				if i == k || !cur[i*stride+k] {
					continue
				}
				for _, j := range rel {
					if j != k && cur[k*stride+j] {
						next[i*stride+j] = true
					}
				}
			}
		}
		cur = next
		fm.states = append(fm.states, cur)
	}
	return fm
}

// At reports whether block (i, j) may hold a finite entry at the start
// of level l (1-based supernode labels; l = H+1 queries the state after
// the final level).
func (fm *FillMask) At(l, i, j int) bool {
	return fm.states[l-1][i*(fm.N+1)+j]
}

// Possible counts the blocks the mask cannot rule out at the start of
// level l, out of N² — the harness reports it as the symbolic analogue
// of the paper's |S|² structure term.
func (fm *FillMask) Possible(l int) int {
	count := 0
	s := fm.states[l-1]
	stride := fm.N + 1
	for i := 1; i <= fm.N; i++ {
		for j := 1; j <= fm.N; j++ {
			if s[i*stride+j] {
				count++
			}
		}
	}
	return count
}
