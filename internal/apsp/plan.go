package apsp

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/etree"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/partition"
)

// The symbolic half of 2D-SPARSE-APSP. Algorithm 1 is really two
// algorithms fused together: a symbolic one (nested dissection → eTree
// → fill mask → the per-level R_l^1..R_l^4 schedule, all decided by
// graph STRUCTURE alone) and a numeric one (the min-plus block updates
// on actual weights). A Plan is the symbolic half reified: an
// immutable, rank-independent artifact that fully enumerates the solve
// — every collective's group, root and tag, every panel update and
// computing-unit assignment, the mask-derived skip set — built once
// from (Layout, p, wire, strategy) and replayed by the Executor
// (exec.go) against any weights with the same structure. Supernodal
// sparse factorization calls these the symbolic and numeric phases;
// the serving layer exploits the split by caching Plans under a
// weights-independent StructureFingerprint so N solves on one topology
// pay the symbolic cost once.

// Kinds of broadcast payload consumption. The kind decides what a
// consumer rank does with the payload it received.
const (
	opR2Left  uint8 = iota // P(i,k): A ⊕= A ⊗ D  (pivot arrives from the column broadcast)
	opR2Right              // P(k,j): A ⊕= D ⊗ A
	opR3Row                // capture payload as the rank's R_l^3 row panel A(i,k)
	opR3Col                // capture payload as the rank's R_l^3 column panel A(k,j)
	opR4Aik                // capture payload as the unit's left operand A(i,k)
	opR4Akj                // capture payload as the unit's right operand A(k,j)
)

// BcastOp is one planned broadcast: the payload block (BI, BJ) travels
// from Root to every rank of Group (binomial tree in group order — the
// order is part of the schedule, it decides the tree shape and thus
// the charged critical path). Consumers are the member ranks that act
// on the payload according to Kind; members outside Consumers only
// relay.
type BcastOp struct {
	Group     []int
	Root      int
	Tag       int
	BI, BJ    int
	Consumers []int
	Kind      uint8
	// Prune is the symbolic demand descriptor of the payload under
	// WirePruned (nil = full, every entry demanded); see demand.go.
	Prune *PruneSpec
}

// UnitOp assigns the computing unit A(I,K) ⊗ A(K,J) of Corollary 5.5
// to Rank (= processor P_{f,g}).
type UnitOp struct {
	Rank, I, K, J int
}

// ReduceOp folds the units of block (BI, BJ) into its owner: Group are
// the unit processors (contiguous columns of one row), Root the block
// owner, which need not be a member.
type ReduceOp struct {
	Group  []int
	Root   int
	Tag    int
	BI, BJ int
}

// SeqOp is one unit of the Section 5.2.2 "trivial strategy" ablation:
// both panel owners send directly to the block owner, which folds the
// product locally.
type SeqOp struct {
	K, BI, BJ          int
	AikOwner, AkjOwner int
	Owner              int
	TagA, TagB         int
	// PruneA / PruneB are the WirePruned demand descriptors of the
	// A(BI,K) and A(K,BJ) payloads (nil = full); see demand.go.
	PruneA, PruneB *PruneSpec
}

// TransOp mirrors the computed lower half of R_l^4 to its transpose
// position (Algorithm 1 line 25): Src = owner of (BI, BJ) sends, Dst =
// owner of (BJ, BI) receives and transposes in place.
type TransOp struct {
	Src, Dst int
	Tag      int
	BI, BJ   int
}

// planLevel is the complete op schedule of one eTree level, in
// execution order: R1 diagonal pivots, R2 pivot broadcasts + panel
// updates, R3 panel broadcasts + one-unit products, then either the
// mapped R4 (panel broadcasts to unit processors, unit products,
// reduces) or the sequential ablation, and finally the transpose
// sends. Per-phase lists are globally ordered; a rank replaying only
// the ops it belongs to sees them in exactly the order the fused
// solver executed them.
type planLevel struct {
	R1       []int // supernode labels whose diagonal owner runs ClassicalFW
	R2       []BcastOp
	R3       []BcastOp
	R4Col    []BcastOp
	R4Row    []BcastOp
	R4Units  []UnitOp
	R4Reduce []ReduceOp
	R4Seq    []SeqOp
	Trans    []TransOp
}

// rankLevel is one rank's view of a planLevel: indices into the
// per-phase op lists, restricted to the ops the rank participates in.
// Precomputing these is what makes a warm Execute skip every
// membership test the fused solver re-ran per solve.
type rankLevel struct {
	Diag   bool    // run ClassicalFW on the owned diagonal block
	R2     []int32 // indices into planLevel.R2
	R3     []int32
	R4Col  []int32
	R4Row  []int32
	Unit   int32 // index into planLevel.R4Units, -1 if none
	Reduce []int32
	Seq    []int32
	Trans  []int32
}

// Plan is the immutable symbolic artifact: everything about a
// 2D-SPARSE-APSP solve that does not depend on edge weights. It holds
// the ordering (ND result), eTree and fill mask it was derived from,
// the per-level op schedule, a per-rank index of that schedule, and the
// tag space the per-plan allocator consumed. Build once with
// BuildPlan, replay any number of times with Execute; plans are safe
// for concurrent use by many solves.
type Plan struct {
	P     int
	H     int
	NSup  int // supernodes, 2^H − 1
	Wire  WireFormat
	R4Seq bool

	ND   *partition.Result
	Tree *etree.Tree
	Fill *FillMask

	Levels []planLevel
	ranks  [][]rankLevel // [rank][level-1]
	Tags   int           // tags consumed by the per-plan allocator

	hash string // lazily computed content hash
	once sync.Once

	// Lowered dataflow graphs (dataflow.go), one per fuse mode, built
	// lazily on the first dataflow Execute of each mode and shared by
	// all subsequent ones: the lowering is a pure function of the
	// symbolic schedule, so like the plan itself it is
	// weights-independent and immutable once built. Index 0 is the
	// fused/coalesced graph (the default), index 1 the 1:1 ablation
	// graph.
	dfOnce [2]sync.Once
	df     [2]*dfProgram
}

// ScratchWords returns the scratch-arena words rank needs for an
// Execute: the R2 panel updates clone the owned block, so the arena is
// sized to exactly that block.
func (p *Plan) ScratchWords(rank int) int {
	i, j := rank/p.NSup+1, rank%p.NSup+1
	return p.ND.Sizes[i] * p.ND.Sizes[j]
}

// OpCount returns the total number of planned operations (collectives,
// point-to-point exchanges, unit products and diagonal updates) — the
// size of the symbolic schedule the mask left standing.
func (p *Plan) OpCount() int {
	n := 0
	for _, lv := range p.Levels {
		n += len(lv.R1) + len(lv.R2) + len(lv.R3) + len(lv.R4Col) +
			len(lv.R4Row) + len(lv.R4Units) + len(lv.R4Reduce) + len(lv.R4Seq) + len(lv.Trans)
	}
	return n
}

// Hash returns a content hash of the full symbolic schedule (ordering,
// tree shape, fill-driven op lists, groups, roots, tags). Every rank —
// indeed every process — deriving a Plan from the same (graph
// structure, p, seed, options) must produce the same hash; the
// cross-rank determinism test pins this, because a single diverging
// group order would deadlock or silently mis-cost a real machine.
func (p *Plan) Hash() string {
	p.once.Do(func() {
		h := sha256.New()
		w := &hashWriter{h: h}
		w.ints(p.P, p.H, p.NSup, int(p.Wire), boolInt(p.R4Seq), p.Tags)
		w.intSlice(p.ND.Perm)
		w.intSlice(p.ND.Sizes)
		for _, lv := range p.Levels {
			w.intSlice(lv.R1)
			for _, op := range lv.R2 {
				w.bcast(op)
			}
			for _, op := range lv.R3 {
				w.bcast(op)
			}
			for _, op := range lv.R4Col {
				w.bcast(op)
			}
			for _, op := range lv.R4Row {
				w.bcast(op)
			}
			for _, u := range lv.R4Units {
				w.ints(u.Rank, u.I, u.K, u.J)
			}
			for _, r := range lv.R4Reduce {
				w.intSlice(r.Group)
				w.ints(r.Root, r.Tag, r.BI, r.BJ)
			}
			for _, s := range lv.R4Seq {
				w.ints(s.K, s.BI, s.BJ, s.AikOwner, s.AkjOwner, s.Owner, s.TagA, s.TagB)
				w.prune(s.PruneA)
				w.prune(s.PruneB)
			}
			for _, t := range lv.Trans {
				w.ints(t.Src, t.Dst, t.Tag, t.BI, t.BJ)
			}
		}
		p.hash = hex.EncodeToString(h.Sum(nil))
	})
	return p.hash
}

type hashWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *hashWriter) ints(vs ...int) {
	for _, v := range vs {
		binary.LittleEndian.PutUint64(w.buf[:], uint64(int64(v)))
		w.h.Write(w.buf[:])
	}
}

func (w *hashWriter) intSlice(vs []int) {
	w.ints(len(vs))
	w.ints(vs...)
}

func (w *hashWriter) bcast(op BcastOp) {
	w.intSlice(op.Group)
	w.ints(op.Root, op.Tag, op.BI, op.BJ, int(op.Kind))
	w.intSlice(op.Consumers)
	w.prune(op.Prune)
}

func (w *hashWriter) prune(p *PruneSpec) {
	if p == nil {
		w.ints(-1)
		return
	}
	w.ints(boolInt(p.ZeroDiag))
	w.int32Axis(p.Rows)
	w.int32Axis(p.Cols)
}

// int32Axis hashes one PruneSpec axis, keeping nil ("all") distinct
// from empty ("none").
func (w *hashWriter) int32Axis(vs []int32) {
	if vs == nil {
		w.ints(-2)
		return
	}
	w.ints(len(vs))
	for _, v := range vs {
		w.ints(int(v))
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// BuildPlan runs the symbolic phase: it walks the eTree schedule of
// Algorithm 1 once, consulting the fill mask exactly where the fused
// solver consulted it, and records every op. The resulting Plan
// executed against ly's weights is bit-identical — distances AND
// charged costs — to the pre-split solver (pinned by the golden cost
// test).
func BuildPlan(ly *Layout, p int, wire WireFormat, r4 R4Strategy) (*Plan, error) {
	h, err := HeightForP(p)
	if err != nil {
		return nil, err
	}
	if ly.Tree.H != h {
		return nil, fmt.Errorf("apsp: layout has tree height %d, machine p=%d needs %d", ly.Tree.H, p, h)
	}
	b := &planBuilder{
		tr:    ly.Tree,
		sizes: ly.ND.Sizes,
		mask:  ly.Fill,
		wire:  wire,
		grid:  comm.Grid{Rows: ly.Tree.N, Cols: ly.Tree.N},
	}
	pl := &Plan{
		P:     p,
		H:     h,
		NSup:  ly.Tree.N,
		Wire:  wire,
		R4Seq: r4 == R4Sequential,
		ND:    ly.ND,
		Tree:  ly.Tree,
		Fill:  ly.Fill,
	}
	for l := 1; l <= h; l++ {
		lv, err := b.level(l, pl.R4Seq)
		if err != nil {
			return nil, err
		}
		pl.Levels = append(pl.Levels, lv)
	}
	if wire == WirePruned {
		// Demand sweep (demand.go): bake the per-op prune descriptors
		// into the schedule. Purely symbolic — warm solves and repairs
		// replay the frozen descriptors at zero per-solve cost.
		attachPrunes(pl, ly)
	}
	pl.Tags = b.tags
	pl.ranks = indexRanks(pl)
	return pl, nil
}

// planBuilder carries the symbolic state of one BuildPlan run, plus
// the per-plan tag allocator: every collective and point-to-point
// exchange gets a fresh tag, so no two concurrently-active ops can
// collide regardless of tree height (the fused solver's packed
// (level, phase, x, y) encoding capped machines at h ≤ 8).
type planBuilder struct {
	tr    *etree.Tree
	sizes []int
	mask  *FillMask
	wire  WireFormat
	grid  comm.Grid
	tags  int
}

func (b *planBuilder) tag() int {
	t := b.tags
	b.tags++
	return t
}

// rank converts 1-based supernode labels to a machine rank.
func (b *planBuilder) rank(i, j int) int { return b.grid.Rank(i-1, j-1) }

func (b *planBuilder) active(k int) bool { return b.sizes[k] > 0 }

// mayFill mirrors the fused solver's skip predicate: in dense-wire
// mode nothing is skipped; in packed mode the mask's verdict is shared
// by every rank, which is what keeps skip decisions collective-safe.
func (b *planBuilder) mayFill(l, i, j int) bool {
	if b.wire == WireDense {
		return true
	}
	return b.mask.At(l, i, j)
}

func (b *planBuilder) level(l int, r4seq bool) (planLevel, error) {
	tr := b.tr
	var lv planLevel

	// R_l^1: the diagonal owners of level l run ClassicalFW locally
	// (empty pivots too — a 0×0 update charges nothing, matching the
	// fused solver).
	lv.R1 = append(lv.R1, tr.LevelNodes(l)...)

	// R_l^2: pivot broadcasts down the pivot column and row. The pivot
	// diagonal always holds distance 0, so the collective always runs;
	// panels the mask proves all-Inf skip only their (vacuous) update.
	for _, k := range tr.LevelNodes(l) {
		if !b.active(k) {
			continue
		}
		rel := tr.RelatedSet(k)
		col := BcastOp{Root: b.rank(k, k), Tag: b.tag(), BI: k, BJ: k, Kind: opR2Left}
		for _, i := range rel {
			col.Group = append(col.Group, b.rank(i, k))
			if i != k && b.mayFill(l, i, k) {
				col.Consumers = append(col.Consumers, b.rank(i, k))
			}
		}
		lv.R2 = append(lv.R2, col)
		row := BcastOp{Root: b.rank(k, k), Tag: b.tag(), BI: k, BJ: k, Kind: opR2Right}
		for _, j := range rel {
			row.Group = append(row.Group, b.rank(k, j))
			if j != k && b.mayFill(l, k, j) {
				row.Consumers = append(row.Consumers, b.rank(k, j))
			}
		}
		lv.R2 = append(lv.R2, row)
	}

	// R_l^3: row broadcasts of the column panels A(i,k) along row i,
	// column broadcasts of the row panels A(k,j) down column j, each
	// over the related set; the unique-pivot blocks capture and
	// multiply. A panel the mask proves all-Inf skips its broadcast
	// outright — by every rank, consistently.
	for _, k := range tr.LevelNodes(l) {
		if !b.active(k) {
			continue
		}
		rel := tr.RelatedSet(k)
		for _, i := range rel {
			if i == k || !b.mayFill(l, i, k) {
				continue
			}
			op := BcastOp{Root: b.rank(i, k), Tag: b.tag(), BI: i, BJ: k, Kind: opR3Row}
			for _, j := range rel {
				op.Group = append(op.Group, b.rank(i, j))
				if b.r3Pivot(l, i, j) == k {
					op.Consumers = append(op.Consumers, b.rank(i, j))
				}
			}
			lv.R3 = append(lv.R3, op)
		}
		for _, j := range rel {
			if j == k || !b.mayFill(l, k, j) {
				continue
			}
			op := BcastOp{Root: b.rank(k, j), Tag: b.tag(), BI: k, BJ: j, Kind: opR3Col}
			for _, i := range rel {
				op.Group = append(op.Group, b.rank(i, j))
				if b.r3Pivot(l, i, j) == k {
					op.Consumers = append(op.Consumers, b.rank(i, j))
				}
			}
			lv.R3 = append(lv.R3, op)
		}
	}

	// R_l^4 (absent at the root level, which has no ancestors).
	if l >= tr.H {
		return lv, nil
	}
	if r4seq {
		b.levelR4Sequential(l, &lv)
	} else {
		if err := b.levelR4Mapped(l, &lv); err != nil {
			return planLevel{}, err
		}
	}

	// Transpose sends (line 25), shared by both strategies: a block
	// the mask proves still all-Inf after this level has an equally
	// empty mirror, so both sides skip the exchange.
	for _, blk := range tr.R4Lower(l) {
		if blk.I == blk.J || b.sizes[blk.I] == 0 || b.sizes[blk.J] == 0 {
			continue
		}
		if !b.anyActiveUnit(l, blk.I) || !b.mayFill(l+1, blk.I, blk.J) {
			continue
		}
		lv.Trans = append(lv.Trans, TransOp{
			Src: b.rank(blk.I, blk.J), Dst: b.rank(blk.J, blk.I),
			Tag: b.tag(), BI: blk.I, BJ: blk.J,
		})
	}
	return lv, nil
}

// levelR4Mapped plans the paper's strategy: panel broadcasts to the
// Corollary 5.5 unit processors, one unit product per processor, and a
// binomial reduce per block.
func (b *planBuilder) levelR4Mapped(l int, lv *planLevel) error {
	tr := b.tr
	// Column-panel broadcasts (line 14): P(i,k) → the unit processors
	// needing A(i,k), which all capture it as their left operand.
	for _, k := range tr.LevelNodes(l) {
		if !b.active(k) {
			continue
		}
		for a := l + 1; a <= tr.H; a++ {
			i := tr.AncestorAtLevel(k, a)
			if !b.mayFill(l, i, k) {
				continue
			}
			op := BcastOp{Root: b.rank(i, k), Tag: b.tag(), BI: i, BJ: k, Kind: opR4Aik}
			op.Group = append(op.Group, op.Root)
			for _, u := range tr.R4BroadcastTargetsColPanel(l, i, k) {
				r := b.grid.Rank(u.F-1, u.G-1)
				if r != op.Root {
					op.Group = append(op.Group, r)
				}
				op.Consumers = append(op.Consumers, r)
			}
			lv.R4Col = append(lv.R4Col, op)
		}
	}
	// Row-panel broadcasts (line 17).
	for _, k := range tr.LevelNodes(l) {
		if !b.active(k) {
			continue
		}
		for c := l + 1; c <= tr.H; c++ {
			j := tr.AncestorAtLevel(k, c)
			if !b.mayFill(l, k, j) {
				continue
			}
			op := BcastOp{Root: b.rank(k, j), Tag: b.tag(), BI: k, BJ: j, Kind: opR4Akj}
			op.Group = append(op.Group, op.Root)
			for _, u := range tr.R4BroadcastTargetsRowPanel(l, k, j) {
				r := b.grid.Rank(u.F-1, u.G-1)
				if r != op.Root {
					op.Group = append(op.Group, r)
				}
				op.Consumers = append(op.Consumers, r)
			}
			lv.R4Row = append(lv.R4Row, op)
		}
	}
	// Unit products (line 21): a unit exists iff both its panels can be
	// finite — exactly when both broadcasts above were planned, so the
	// executor's captured operands are always present.
	seen := make(map[int]bool)
	for _, u := range tr.UnitsForLevel(l) {
		if !b.active(u.K) || !b.mayFill(l, u.I, u.K) || !b.mayFill(l, u.K, u.J) {
			continue
		}
		r := b.grid.Rank(u.F-1, u.G-1)
		if seen[r] {
			return fmt.Errorf("apsp: plan: unit processor P(%d,%d) assigned twice at level %d", u.F, u.G, l)
		}
		seen[r] = true
		lv.R4Units = append(lv.R4Units, UnitOp{Rank: r, I: u.I, K: u.K, J: u.J})
	}
	// Reduces (line 23): the units of block (i,j) live on one processor
	// row in contiguous columns.
	for _, blk := range tr.R4Lower(l) {
		row, cols := tr.UnitProcessorsFor(l, blk.I, blk.J)
		pivots := tr.UnitsFor(l, blk.I, blk.J)
		var group []int
		for x, g := range cols {
			if b.active(pivots[x]) && b.mayFill(l, blk.I, pivots[x]) && b.mayFill(l, pivots[x], blk.J) {
				group = append(group, b.grid.Rank(row-1, g-1))
			}
		}
		if len(group) == 0 {
			continue
		}
		lv.R4Reduce = append(lv.R4Reduce, ReduceOp{
			Group: group, Root: b.rank(blk.I, blk.J), Tag: b.tag(), BI: blk.I, BJ: blk.J,
		})
	}
	return nil
}

// levelR4Sequential plans the Section 5.2.2 "trivial strategy"
// ablation: the block owner receives both panels of every unit
// directly and folds locally — 2q serialized receives instead of the
// mapped O(log q).
func (b *planBuilder) levelR4Sequential(l int, lv *planLevel) {
	tr := b.tr
	for _, blk := range tr.R4Lower(l) {
		for _, k := range tr.UnitsFor(l, blk.I, blk.J) {
			if !b.active(k) || !b.mayFill(l, blk.I, k) || !b.mayFill(l, k, blk.J) {
				continue
			}
			lv.R4Seq = append(lv.R4Seq, SeqOp{
				K: k, BI: blk.I, BJ: blk.J,
				AikOwner: b.rank(blk.I, k), AkjOwner: b.rank(k, blk.J),
				Owner: b.rank(blk.I, blk.J), TagA: b.tag(), TagB: b.tag(),
			})
		}
	}
}

// r3Pivot returns the unique active pivot k ∈ Q_l for which block
// (i, j) lies in R_l^3, or 0 — the plan-time twin of the fused
// solver's region3Pivot.
func (b *planBuilder) r3Pivot(l, i, j int) int {
	tr := b.tr
	if tr.RegionOf(l, i, j) != 3 {
		return 0
	}
	lower := i
	if tr.Level(j) < tr.Level(lower) {
		lower = j
	}
	k := tr.AncestorAtLevel(lower, l)
	if !b.active(k) {
		return 0
	}
	return k
}

// anyActiveUnit reports whether block (i, ·) has at least one active
// pivot at level l (i.e. it was actually updated and needs mirroring).
func (b *planBuilder) anyActiveUnit(l, i int) bool {
	for _, k := range b.tr.DescendantsAtLevel(i, l) {
		if b.active(k) {
			return true
		}
	}
	return false
}

// indexRanks builds the per-rank schedule index: for every rank, the
// indices of the ops it participates in, phase by phase, preserving
// each phase's global order (which is exactly the per-rank execution
// order of the fused solver).
func indexRanks(p *Plan) [][]rankLevel {
	n := p.NSup
	rk := func(i, j int) int { return (i-1)*n + (j - 1) }
	ranks := make([][]rankLevel, p.P)
	for r := range ranks {
		ranks[r] = make([]rankLevel, p.H)
		for l := range ranks[r] {
			ranks[r][l].Unit = -1
		}
	}
	for li := range p.Levels {
		lv := &p.Levels[li]
		for _, k := range lv.R1 {
			ranks[rk(k, k)][li].Diag = true
		}
		for x, op := range lv.R2 {
			for _, r := range op.Group {
				ranks[r][li].R2 = append(ranks[r][li].R2, int32(x))
			}
		}
		for x, op := range lv.R3 {
			for _, r := range op.Group {
				ranks[r][li].R3 = append(ranks[r][li].R3, int32(x))
			}
		}
		for x, op := range lv.R4Col {
			for _, r := range op.Group {
				ranks[r][li].R4Col = append(ranks[r][li].R4Col, int32(x))
			}
		}
		for x, op := range lv.R4Row {
			for _, r := range op.Group {
				ranks[r][li].R4Row = append(ranks[r][li].R4Row, int32(x))
			}
		}
		for x, u := range lv.R4Units {
			ranks[u.Rank][li].Unit = int32(x)
		}
		for x, op := range lv.R4Reduce {
			member := false
			for _, r := range op.Group {
				ranks[r][li].Reduce = append(ranks[r][li].Reduce, int32(x))
				if r == op.Root {
					member = true
				}
			}
			if !member {
				ranks[op.Root][li].Reduce = append(ranks[op.Root][li].Reduce, int32(x))
			}
		}
		for x, op := range lv.R4Seq {
			seen := map[int]bool{}
			for _, r := range []int{op.AikOwner, op.AkjOwner, op.Owner} {
				if !seen[r] {
					seen[r] = true
					ranks[r][li].Seq = append(ranks[r][li].Seq, int32(x))
				}
			}
		}
		for x, op := range lv.Trans {
			ranks[op.Src][li].Trans = append(ranks[op.Src][li].Trans, int32(x))
			if op.Dst != op.Src {
				ranks[op.Dst][li].Trans = append(ranks[op.Dst][li].Trans, int32(x))
			}
		}
	}
	return ranks
}

// StructureFingerprint identifies the weights-independent structure of
// a sparse solve: it is the cache key under which Plans are reused.
// Two solves share a fingerprint iff they have the same vertex count,
// the same structural edge set (weights excluded), the same ND seed
// and machine size, and the same plan-shaping options — which, because
// nested dissection, the eTree and the fill mask are all deterministic
// functions of exactly those inputs, means they share the ordering,
// eTree and fill mask, and therefore the entire symbolic schedule.
type StructureFingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex.
func (f StructureFingerprint) String() string { return hex.EncodeToString(f[:]) }

// StructureFingerprintOf computes the plan cache key for solving g on
// p ranks with the given seed, wire format and R4 strategy. It costs
// O(m log m) — edge sorting — and touches no weights, so graphs that
// differ only in weights (the weight-update serving workload) map to
// the same Plan.
func StructureFingerprintOf(g *graph.Graph, p int, seed int64, wire WireFormat, r4 R4Strategy) StructureFingerprint {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(g.N()))
	for _, e := range g.Edges() {
		put(uint64(e.U))
		put(uint64(e.V))
	}
	put(uint64(p))
	put(uint64(seed))
	put(uint64(wire))
	put(uint64(r4))
	var f StructureFingerprint
	h.Sum(f[:0])
	return f
}

// PlanCache retains built Plans keyed by StructureFingerprint so
// repeated solves on one topology pay the symbolic cost (nested
// dissection, eTree, fill mask, schedule enumeration) exactly once. It
// is safe for concurrent use; a warm hit returns the shared immutable
// Plan with zero symbolic work. There is no eviction: a Plan is a few
// schedule tables, orders of magnitude smaller than the n² distance
// matrices the oracle registry already budgets.
//
// A cache created with NewPlanCacheAt additionally fronts a disk
// PlanStore: memory misses fall through to disk (DiskHits — still zero
// symbolic work), and fresh builds are persisted (DiskWrites), so the
// symbolic cost of a structure is paid once per fleet lifetime, not
// once per process.
type PlanCache struct {
	mu         sync.Mutex
	plans      map[StructureFingerprint]*Plan
	store      *PlanStore // nil for a memory-only cache
	builds     int64
	hits       int64
	diskHits   int64
	diskWrites int64
	diskErrors int64
	buildNanos int64
}

// NewPlanCache returns an empty plan cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{plans: make(map[StructureFingerprint]*Plan)}
}

func (c *PlanCache) lookup(fp StructureFingerprint) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pl, ok := c.plans[fp]
	if ok {
		c.hits++
		return pl, true
	}
	if c.store == nil {
		return nil, false
	}
	// Disk fallthrough, performed under the lock: it is the cold path
	// (at most once per structure per process), and holding the lock
	// keeps racing lookups from decoding the same file twice. A load
	// failure of any kind degrades to a miss — the caller rebuilds.
	pl, ok, err := c.store.Load(fp)
	if err != nil {
		c.diskErrors++
		return nil, false
	}
	if !ok {
		return nil, false
	}
	c.plans[fp] = pl
	c.diskHits++
	return pl, true
}

// Peek returns the cached plan for fp without counting a hit —
// introspection for stats/experiment code, never the solve path.
func (c *PlanCache) Peek(fp StructureFingerprint) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pl, ok := c.plans[fp]
	return pl, ok
}

// store records a freshly built plan (and the nanoseconds the symbolic
// phase took). Two racing builders of the same structure both count as
// builds; the last stored plan wins, which is harmless because builds
// are deterministic.
func (c *PlanCache) put(fp StructureFingerprint, pl *Plan, nanos int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plans[fp] = pl
	c.builds++
	c.buildNanos += nanos
	if c.store != nil {
		if err := c.store.Save(fp, pl); err != nil {
			c.diskErrors++
		} else {
			c.diskWrites++
		}
	}
}

// PlanCacheStats is a snapshot of a cache's counters. Hits counts
// solves that skipped the symbolic phase entirely; BuildNanos is the
// total wall-clock the symbolic phase has cost so far. The Disk
// counters stay zero for a memory-only cache: DiskHits are memory
// misses satisfied by decoding a persisted plan (also zero symbolic
// work — a disk hit is NOT a build), DiskWrites are fresh builds
// persisted, DiskErrors are load/save failures that degraded to
// memory-only behavior.
type PlanCacheStats struct {
	Builds     int64
	Hits       int64
	DiskHits   int64
	DiskWrites int64
	DiskErrors int64
	Entries    int
	BuildNanos int64
}

// Stats returns the cache counters at this instant.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Builds: c.builds, Hits: c.hits,
		DiskHits: c.diskHits, DiskWrites: c.diskWrites, DiskErrors: c.diskErrors,
		Entries: len(c.plans), BuildNanos: c.buildNanos,
	}
}
