package apsp

import (
	"fmt"
	"time"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// DistResult is the output of a distributed solver: the distance matrix
// reassembled in the original vertex order plus the machine's cost
// report (critical-path latency/bandwidth/flops, totals, peak memory).
type DistResult struct {
	Dist   *semiring.Matrix
	Report comm.Report
	Layout *Layout // the ordering used (sparse algorithm only, else nil)
	P      int
	// Phases carries the per-eTree-level cost breakdown of the sparse
	// solver (the L_l / B_l decomposition of Lemmas 5.6, 5.8, 5.9);
	// empty for the dense algorithms.
	Phases []comm.PhaseCost
	// Traffic is the words-sent matrix: Traffic[src][dst].
	Traffic [][]int64
}

// SparseAPSP runs the paper's 2D-SPARSE-APSP (Algorithm 1) on a
// simulated machine of p processors. p must be (2^h − 1)² so that the
// supernodal block matrix maps one block per processor (Section 5.1).
//
// Per level l = 1..h the four regions are updated in order:
//
//	R_l^1  local ClassicalFW on each diagonal pivot block;
//	R_l^2  broadcast of A(k,k) down pivot row and column, panel updates;
//	R_l^3  row/column broadcasts of the panels, one-unit updates;
//	R_l^4  panel broadcasts to the Corollary 5.5 unit processors P_{f,g},
//	       parallel unit computation, binomial reduce to the owning
//	       block, and the symmetric transpose send (Algorithm 1 line 25).
//
// The solve is split into a symbolic phase (BuildPlan: ordering, eTree,
// fill mask, and the complete op schedule above) and a numeric phase
// (Plan.Execute: the min-plus block updates against actual weights).
// Every rank follows the same deterministic global schedule, entering
// only the collectives it belongs to, so the communication pattern —
// and therefore the measured critical-path cost — is exactly the
// paper's.
func SparseAPSP(g *graph.Graph, p int, seed int64) (*DistResult, error) {
	return SparseAPSPWith(g, p, SparseOptions{Seed: seed})
}

// R4Strategy selects how the multi-unit region R_l^4 is updated.
type R4Strategy int

const (
	// R4Mapped is the paper's contribution: each computing unit runs on
	// its own processor P_{f,g} (Corollary 5.5) and results reach the
	// owning block through an O(log q)-message binomial reduce.
	R4Mapped R4Strategy = iota
	// R4Sequential is the "trivial strategy" of Section 5.2.2 (the
	// SuperLU_DIST scheme): the owning processor P_ij receives both
	// panels of every unit — 2q messages serialized at the receiver —
	// and accumulates the products locally. Exists for the ablation
	// benchmark; same results, Θ(√p)-worse latency per level.
	R4Sequential
)

// WireFormat selects how block payloads travel between ranks.
type WireFormat int

const (
	// WirePacked (the default) is the structure-aware engine: payloads
	// use the semiring packed encoding (empty marker / sparse pairs /
	// dense body, whichever is smallest), so the simulated machine is
	// charged the packed word count, and the symbolic fill mask skips
	// broadcasts whose payload is provably all-Inf together with the
	// multiplications they would feed. Distances are bit-identical to
	// WireDense — only identities are elided.
	WirePacked WireFormat = iota
	// WireDense is the legacy behavior: every payload is the raw dense
	// block body and nothing is skipped. It exists as the ablation
	// baseline for the packed-vs-dense bandwidth comparison.
	WireDense
	// WirePruned is the demand-pruned communication layer (v2): on top
	// of WirePacked's skipping, BuildPlan runs the symbolic demand
	// sweep of demand.go and every broadcast ships only the payload
	// rows/columns at least one receiver can fold into a finite output
	// (semiring.PackPruned, chosen per payload only when strictly
	// smaller than the classic encodings). Distances stay bit-identical
	// to WireDense; WirePacked is the ablation baseline for the words
	// saved by demand pruning alone.
	WirePruned
)

func (w WireFormat) String() string {
	switch w {
	case WireDense:
		return "dense"
	case WirePruned:
		return "pruned"
	default:
		return "packed"
	}
}

// ParseWireFormat maps a wire-format name ("packed", "dense",
// "pruned"; "" means packed) to its WireFormat value.
func ParseWireFormat(s string) (WireFormat, error) {
	switch s {
	case "", "packed":
		return WirePacked, nil
	case "dense":
		return WireDense, nil
	case "pruned":
		return WirePruned, nil
	default:
		return 0, fmt.Errorf("apsp: unknown wire format %q (valid: packed, dense, pruned)", s)
	}
}

// Executor selects the engine that runs a Plan's numeric phase. Both
// executors produce bit-identical distances and bit-identical cost
// reports; they differ only in how the host schedules the work.
type Executor int

const (
	// ExecDataflow (the default) lowers the plan into a static
	// dependency graph and runs ready ops on a bounded worker pool —
	// a handful of goroutines instead of one per rank, direct buffer
	// handoff instead of mailboxes, and cost accounting by
	// deterministic replay. See dataflow.go.
	ExecDataflow Executor = iota
	// ExecMachine runs the plan on the simulated machine: p rank
	// goroutines communicating through mailboxes. Kept as the
	// reference semantics the dataflow executor is checked against.
	ExecMachine
)

func (e Executor) String() string {
	if e == ExecMachine {
		return "machine"
	}
	return "dataflow"
}

// ParseExecutor maps an executor name ("dataflow", "machine"; "" means
// dataflow) to its Executor value.
func ParseExecutor(s string) (Executor, error) {
	switch s {
	case "", "dataflow":
		return ExecDataflow, nil
	case "machine":
		return ExecMachine, nil
	default:
		return 0, fmt.Errorf("apsp: unknown executor %q (valid: dataflow, machine)", s)
	}
}

// SparseOptions configures SparseAPSPWith.
type SparseOptions struct {
	Seed       int64
	R4Strategy R4Strategy
	// Executor selects the plan execution engine; see Executor. The
	// zero value is the dataflow executor.
	Executor Executor
	// Layout, when non-nil, supplies a precomputed ordering (e.g. from
	// partition.DistributedND) instead of running the sequential nested
	// dissection; its tree height must match the machine size.
	Layout *Layout
	// Kernel selects the min-plus kernel each rank uses for its local
	// block arithmetic. Every kernel yields bit-identical distances and
	// identical operation counts (so the simulated cost report does not
	// change); the default KernelSerial is usually right because each
	// rank is already its own goroutine.
	Kernel semiring.Kernel
	// Wire selects the payload encoding (and with it the mask-based
	// skipping); see WireFormat.
	Wire WireFormat
	// Plans, when non-nil, caches the symbolic Plan under the graph's
	// StructureFingerprint: a solve whose structure was seen before
	// reuses the cached ordering, eTree, fill mask and op schedule and
	// performs no symbolic work at all (only the O(n + m) weight
	// permutation). Ignored when Layout is supplied — a caller-provided
	// ordering is not necessarily reproducible from the graph alone.
	Plans *PlanCache
}

// SparseAPSPWith is SparseAPSP with explicit options. It is a thin
// wrapper over the Plan/Execute split: build (or fetch from
// opts.Plans) the symbolic plan, then execute it against g's weights.
func SparseAPSPWith(g *graph.Graph, p int, opts SparseOptions) (*DistResult, error) {
	h, err := HeightForP(p)
	if err != nil {
		return nil, err
	}
	if ly := opts.Layout; ly != nil {
		if ly.Tree.H != h {
			return nil, fmt.Errorf("apsp: supplied layout has tree height %d, machine p=%d needs %d", ly.Tree.H, p, h)
		}
		pl, err := BuildPlan(ly, p, opts.Wire, opts.R4Strategy)
		if err != nil {
			return nil, err
		}
		return pl.ExecuteWith(ly, opts.Kernel, opts.Executor)
	}
	if opts.Plans != nil {
		fp := StructureFingerprintOf(g, p, opts.Seed, opts.Wire, opts.R4Strategy)
		if pl, ok := opts.Plans.lookup(fp); ok {
			return pl.ExecuteWith(pl.LayoutFor(g), opts.Kernel, opts.Executor)
		}
		start := time.Now()
		ly, pl, err := buildSymbolic(g, p, h, opts)
		if err != nil {
			return nil, err
		}
		opts.Plans.put(fp, pl, time.Since(start).Nanoseconds())
		return pl.ExecuteWith(ly, opts.Kernel, opts.Executor)
	}
	ly, pl, err := buildSymbolic(g, p, h, opts)
	if err != nil {
		return nil, err
	}
	return pl.ExecuteWith(ly, opts.Kernel, opts.Executor)
}

// buildSymbolic runs the full symbolic phase from scratch: nested
// dissection, eTree, fill mask (NewLayout), then the op schedule
// (BuildPlan).
func buildSymbolic(g *graph.Graph, p, h int, opts SparseOptions) (*Layout, *Plan, error) {
	ly, err := NewLayout(g, h, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	pl, err := BuildPlan(ly, p, opts.Wire, opts.R4Strategy)
	if err != nil {
		return nil, nil, err
	}
	return ly, pl, nil
}
