package apsp

import (
	"fmt"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/etree"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// DistResult is the output of a distributed solver: the distance matrix
// reassembled in the original vertex order plus the machine's cost
// report (critical-path latency/bandwidth/flops, totals, peak memory).
type DistResult struct {
	Dist   *semiring.Matrix
	Report comm.Report
	Layout *Layout // the ordering used (sparse algorithm only, else nil)
	P      int
	// Phases carries the per-eTree-level cost breakdown of the sparse
	// solver (the L_l / B_l decomposition of Lemmas 5.6, 5.8, 5.9);
	// empty for the dense algorithms.
	Phases []comm.PhaseCost
	// Traffic is the words-sent matrix: Traffic[src][dst].
	Traffic [][]int64
}

// SparseAPSP runs the paper's 2D-SPARSE-APSP (Algorithm 1) on a
// simulated machine of p processors. p must be (2^h − 1)² so that the
// supernodal block matrix maps one block per processor (Section 5.1).
//
// Per level l = 1..h the four regions are updated in order:
//
//	R_l^1  local ClassicalFW on each diagonal pivot block;
//	R_l^2  broadcast of A(k,k) down pivot row and column, panel updates;
//	R_l^3  row/column broadcasts of the panels, one-unit updates;
//	R_l^4  panel broadcasts to the Corollary 5.5 unit processors P_{f,g},
//	       parallel unit computation, binomial reduce to the owning
//	       block, and the symmetric transpose send (Algorithm 1 line 25).
//
// Every rank follows the same deterministic global schedule, entering
// only the collectives it belongs to, so the communication pattern —
// and therefore the measured critical-path cost — is exactly the
// paper's.
func SparseAPSP(g *graph.Graph, p int, seed int64) (*DistResult, error) {
	return SparseAPSPWith(g, p, SparseOptions{Seed: seed})
}

// R4Strategy selects how the multi-unit region R_l^4 is updated.
type R4Strategy int

const (
	// R4Mapped is the paper's contribution: each computing unit runs on
	// its own processor P_{f,g} (Corollary 5.5) and results reach the
	// owning block through an O(log q)-message binomial reduce.
	R4Mapped R4Strategy = iota
	// R4Sequential is the "trivial strategy" of Section 5.2.2 (the
	// SuperLU_DIST scheme): the owning processor P_ij receives both
	// panels of every unit — 2q messages serialized at the receiver —
	// and accumulates the products locally. Exists for the ablation
	// benchmark; same results, Θ(√p)-worse latency per level.
	R4Sequential
)

// WireFormat selects how block payloads travel between ranks.
type WireFormat int

const (
	// WirePacked (the default) is the structure-aware engine: payloads
	// use the semiring packed encoding (empty marker / sparse pairs /
	// dense body, whichever is smallest), so the simulated machine is
	// charged the packed word count, and the symbolic fill mask skips
	// broadcasts whose payload is provably all-Inf together with the
	// multiplications they would feed. Distances are bit-identical to
	// WireDense — only identities are elided.
	WirePacked WireFormat = iota
	// WireDense is the legacy behavior: every payload is the raw dense
	// block body and nothing is skipped. It exists as the ablation
	// baseline for the packed-vs-dense bandwidth comparison.
	WireDense
)

func (w WireFormat) String() string {
	if w == WireDense {
		return "dense"
	}
	return "packed"
}

// ParseWireFormat maps a wire-format name ("packed", "dense"; "" means
// packed) to its WireFormat value.
func ParseWireFormat(s string) (WireFormat, error) {
	switch s {
	case "", "packed":
		return WirePacked, nil
	case "dense":
		return WireDense, nil
	default:
		return 0, fmt.Errorf("apsp: unknown wire format %q (valid: packed, dense)", s)
	}
}

// SparseOptions configures SparseAPSPWith.
type SparseOptions struct {
	Seed       int64
	R4Strategy R4Strategy
	// Layout, when non-nil, supplies a precomputed ordering (e.g. from
	// partition.DistributedND) instead of running the sequential nested
	// dissection; its tree height must match the machine size.
	Layout *Layout
	// Kernel selects the min-plus kernel each rank uses for its local
	// block arithmetic. Every kernel yields bit-identical distances and
	// identical operation counts (so the simulated cost report does not
	// change); the default KernelSerial is usually right because each
	// rank is already its own goroutine.
	Kernel semiring.Kernel
	// Wire selects the payload encoding (and with it the mask-based
	// skipping); see WireFormat.
	Wire WireFormat
}

// SparseAPSPWith is SparseAPSP with explicit options.
func SparseAPSPWith(g *graph.Graph, p int, opts SparseOptions) (*DistResult, error) {
	h, err := HeightForP(p)
	if err != nil {
		return nil, err
	}
	ly := opts.Layout
	if ly == nil {
		ly, err = NewLayout(g, h, opts.Seed)
		if err != nil {
			return nil, err
		}
	} else if ly.Tree.H != h {
		return nil, fmt.Errorf("apsp: supplied layout has tree height %d, machine p=%d needs %d", ly.Tree.H, p, h)
	}
	blocks := ly.Blocks()
	tr := ly.Tree
	grid := comm.Grid{Rows: tr.N, Cols: tr.N}
	machine := comm.NewMachine(p)
	err = machine.Run(func(ctx *comm.Ctx) {
		w := &sparseWorker{
			ctx:   ctx,
			grid:  grid,
			tr:    tr,
			sizes: ly.ND.Sizes,
			mask:  ly.Fill,
			wire:  opts.Wire,
			r4seq: opts.R4Strategy == R4Sequential,
			kern:  opts.Kernel,
		}
		w.myI = ctx.Rank()/tr.N + 1
		w.myJ = ctx.Rank()%tr.N + 1
		w.A = blocks[w.myI][w.myJ]
		w.run()
	})
	if err != nil {
		return nil, fmt.Errorf("apsp: sparse solver failed: %w", err)
	}
	phases, err := machine.PhaseCosts()
	if err != nil {
		return nil, fmt.Errorf("apsp: phase accounting failed: %w", err)
	}
	return &DistResult{
		Dist:    ly.AssembleOriginal(blocks),
		Report:  machine.Report(),
		Layout:  ly,
		P:       p,
		Phases:  phases,
		Traffic: machine.Traffic(),
	}, nil
}

// Tag phases; tags encode (level, phase, x, y) with x, y < 256, which
// bounds supported machines at h ≤ 8 (p ≤ 65025) — far beyond what a
// single-process simulation can hold anyway.
const (
	phR2Col = iota + 1
	phR2Row
	phR3Row
	phR3Col
	phR4ColPanel
	phR4RowPanel
	phR4Reduce
	phR4Transpose
	phR4SeqA
	phR4SeqB
)

type sparseWorker struct {
	ctx      *comm.Ctx
	grid     comm.Grid
	tr       *etree.Tree
	sizes    []int
	mask     *FillMask // symbolic fill mask (consulted in WirePacked mode)
	wire     WireFormat
	A        *semiring.Matrix
	myI, myJ int             // 1-based supernode labels of the owned block
	r4seq    bool            // use the Section 5.2.2 "trivial strategy" for R_l^4
	kern     semiring.Kernel // min-plus kernel for local block arithmetic
}

func (w *sparseWorker) tag(l, phase, x, y int) int {
	return ((l*16+phase)*256+x)*256 + y
}

// rank converts 1-based supernode labels to a machine rank.
func (w *sparseWorker) rank(i, j int) int { return w.grid.Rank(i-1, j-1) }

// active reports whether pivot supernode k has any vertices; empty
// pivots are skipped entirely (their updates are vacuous).
func (w *sparseWorker) active(k int) bool { return w.sizes[k] > 0 }

// mayFill reports whether block (i, j) can hold a finite entry at the
// start of level l. In WireDense mode it is always true (nothing is
// skipped); in WirePacked mode a false answer lets every rank skip the
// broadcast of (i, j) and the products it feeds, consistently, because
// the mask is part of the globally shared Layout. The transpose sends
// query l+1: they mirror the state a completed level leaves behind.
func (w *sparseWorker) mayFill(l, i, j int) bool {
	if w.wire == WireDense {
		return true
	}
	return w.mask.At(l, i, j)
}

// pack encodes a block body for the wire: the packed encoding in
// WirePacked mode (the simulated machine charges bandwidth per payload
// word, so the packed length IS the charged cost), a plain copy in
// WireDense mode. Always copies, because collective receivers share
// the payload's backing array.
func (w *sparseWorker) pack(m *semiring.Matrix) []float64 {
	if w.wire == WireDense {
		return append([]float64(nil), m.V...)
	}
	return semiring.PackMatrix(m)
}

// unpack decodes a received payload into a rows×cols block. Like the
// raw dense path, the result may share the payload's backing array and
// must be treated as read-only.
func (w *sparseWorker) unpack(data []float64, rows, cols int) *semiring.Matrix {
	if w.wire == WireDense {
		return semiring.FromSlice(rows, cols, data)
	}
	return semiring.UnpackMatrix(data, rows, cols)
}

func (w *sparseWorker) run() {
	w.ctx.SetMemory(int64(len(w.A.V)))
	for l := 1; l <= w.tr.H; l++ {
		w.level(l)
		w.ctx.Mark(fmt.Sprintf("level-%d", l))
	}
}

func (w *sparseWorker) level(l int) {
	tr := w.tr

	// ---- R_l^1: diagonal updates (Algorithm 1 line 4), local. ----
	if w.myI == w.myJ && tr.Level(w.myI) == l {
		w.ctx.AddFlops(w.kern.ClassicalFW(w.A))
	}

	// ---- R_l^2: pivot broadcasts and panel updates (lines 5-8). ----
	for _, k := range tr.LevelNodes(l) {
		if !w.active(k) {
			continue
		}
		related := tr.RelatedSet(k)
		// Column broadcast: P_kk -> P_ik for i related to k. The pivot
		// diagonal is never empty (it holds distance 0), so the
		// collective always runs, but a panel the mask proves all-Inf
		// skips its (vacuous) update.
		if w.myJ == k && contains(related, w.myI) {
			group := make([]int, len(related))
			for x, i := range related {
				group[x] = w.rank(i, k)
			}
			var payload []float64
			if w.myI == k {
				payload = w.pack(w.A) // copy: receivers share the buffer
			}
			data := w.ctx.Bcast(group, w.rank(k, k), w.tag(l, phR2Col, k, 0), payload)
			if w.myI != k && w.mayFill(l, w.myI, k) {
				dk := w.unpack(data, w.sizes[k], w.sizes[k])
				w.ctx.AddMemory(int64(len(dk.V)))
				w.ctx.AddFlops(w.kern.PanelUpdateLeft(w.A, dk))
				w.ctx.AddMemory(-int64(len(dk.V)))
			}
		}
		// Row broadcast: P_kk -> P_kj for j related to k.
		if w.myI == k && contains(related, w.myJ) {
			group := make([]int, len(related))
			for x, j := range related {
				group[x] = w.rank(k, j)
			}
			var payload []float64
			if w.myJ == k {
				payload = w.pack(w.A)
			}
			data := w.ctx.Bcast(group, w.rank(k, k), w.tag(l, phR2Row, k, 0), payload)
			if w.myJ != k && w.mayFill(l, k, w.myJ) {
				dk := w.unpack(data, w.sizes[k], w.sizes[k])
				w.ctx.AddMemory(int64(len(dk.V)))
				w.ctx.AddFlops(w.kern.PanelUpdateRight(w.A, dk))
				w.ctx.AddMemory(-int64(len(dk.V)))
			}
		}
	}

	// ---- R_l^3: panel broadcasts and one-unit updates (lines 9-11). ----
	// Row broadcasts of A(i,k) along row i, column broadcasts of A(k,j)
	// along column j, over the processors of the related set.
	var rowPanel, colPanel *semiring.Matrix
	for _, k := range tr.LevelNodes(l) {
		if !w.active(k) {
			continue
		}
		related := tr.RelatedSet(k)
		iAmRelatedRow := w.myI != k && contains(related, w.myI)
		iAmRelatedCol := w.myJ != k && contains(related, w.myJ)
		// Row broadcast for my row (root P(myI, k)). Skipped outright —
		// by every rank of the row, consistently — when the mask proves
		// A(myI, k) all-Inf: its product contributes nothing.
		if iAmRelatedRow && contains(related, w.myJ) && w.mayFill(l, w.myI, k) {
			group := make([]int, len(related))
			for x, j := range related {
				group[x] = w.rank(w.myI, j)
			}
			var payload []float64
			if w.myJ == k {
				payload = w.pack(w.A)
			}
			data := w.ctx.Bcast(group, w.rank(w.myI, k), w.tag(l, phR3Row, k, w.myI), payload)
			if w.region3Pivot(l) == k {
				rowPanel = w.unpack(data, w.sizes[w.myI], w.sizes[k])
				w.ctx.AddMemory(int64(len(rowPanel.V)))
			}
		}
		// Column broadcast for my column (root P(k, myJ)).
		if iAmRelatedCol && contains(related, w.myI) && w.mayFill(l, k, w.myJ) {
			group := make([]int, len(related))
			for x, i := range related {
				group[x] = w.rank(i, w.myJ)
			}
			var payload []float64
			if w.myI == k {
				payload = w.pack(w.A)
			}
			data := w.ctx.Bcast(group, w.rank(k, w.myJ), w.tag(l, phR3Col, k, w.myJ), payload)
			if w.region3Pivot(l) == k {
				colPanel = w.unpack(data, w.sizes[k], w.sizes[w.myJ])
				w.ctx.AddMemory(int64(len(colPanel.V)))
			}
		}
	}
	if rowPanel != nil && colPanel != nil {
		w.ctx.AddFlops(w.kern.MulAddInto(w.A, rowPanel, colPanel))
	}
	if rowPanel != nil {
		w.ctx.AddMemory(-int64(len(rowPanel.V)))
	}
	if colPanel != nil {
		w.ctx.AddMemory(-int64(len(colPanel.V)))
	}

	// ---- R_l^4 (lines 13-26). ----
	if w.r4seq {
		w.regionFourSequential(l)
	} else {
		w.regionFour(l)
	}
}

// regionFourSequential is the Section 5.2.2 "trivial strategy"
// ablation: for every block (i,j) ∈ R_l^4 the owner P_ij receives both
// panels of each of its q units directly from the panel owners and
// accumulates the min-plus products locally — 2q serialized receives
// instead of the O(log q) of the mapped strategy. Results are
// identical; only the communication schedule (and hence the measured
// latency) differs.
func (w *sparseWorker) regionFourSequential(l int) {
	tr := w.tr
	if l >= tr.H {
		return
	}
	for _, b := range tr.R4Lower(l) {
		pivots := tr.UnitsFor(l, b.I, b.J)
		for _, k := range pivots {
			if !w.active(k) {
				continue
			}
			// Both panel owners and the block owner agree, from the
			// shared mask, that a provably all-Inf product moves nothing.
			if !w.mayFill(l, b.I, k) || !w.mayFill(l, k, b.J) {
				continue
			}
			aikOwner := w.rank(b.I, k)
			akjOwner := w.rank(k, b.J)
			owner := w.rank(b.I, b.J)
			// Panel owners send; the block owner receives and folds.
			if w.ctx.Rank() == aikOwner && owner != aikOwner {
				w.ctx.Send(owner, w.tag(l, phR4SeqA, k, b.J), w.pack(w.A))
			}
			if w.ctx.Rank() == akjOwner && owner != akjOwner {
				w.ctx.Send(owner, w.tag(l, phR4SeqB, k, b.I), w.pack(w.A))
			}
			if w.ctx.Rank() == owner {
				var aik, akj *semiring.Matrix
				var transient int64
				if owner == aikOwner {
					aik = w.A
				} else {
					data := w.ctx.Recv(aikOwner, w.tag(l, phR4SeqA, k, b.J))
					aik = w.unpack(data, w.sizes[b.I], w.sizes[k])
					transient += int64(len(aik.V))
				}
				if owner == akjOwner {
					akj = w.A
				} else {
					data := w.ctx.Recv(akjOwner, w.tag(l, phR4SeqB, k, b.I))
					akj = w.unpack(data, w.sizes[k], w.sizes[b.J])
					transient += int64(len(akj.V))
				}
				w.ctx.AddMemory(transient)
				w.ctx.AddFlops(w.kern.MulAddInto(w.A, aik, akj))
				w.ctx.AddMemory(-transient)
			}
		}
	}
	// Transpose sends, exactly as in the mapped strategy.
	for _, b := range tr.R4Lower(l) {
		if b.I == b.J || w.sizes[b.I] == 0 || w.sizes[b.J] == 0 {
			continue
		}
		if !w.anyActiveUnit(l, b.I) || !w.mayFill(l+1, b.I, b.J) {
			continue
		}
		if w.myI == b.I && w.myJ == b.J {
			w.ctx.Send(w.rank(b.J, b.I), w.tag(l, phR4Transpose, b.I, b.J), w.pack(w.A))
		}
		if w.myI == b.J && w.myJ == b.I {
			data := w.ctx.Recv(w.rank(b.I, b.J), w.tag(l, phR4Transpose, b.I, b.J))
			src := w.unpack(data, w.sizes[b.I], w.sizes[b.J])
			w.A.CopyFrom(src.Transpose())
		}
	}
}

// region3Pivot returns the unique active pivot k ∈ Q_l for which the
// owned block lies in R_l^3, or 0 if none.
func (w *sparseWorker) region3Pivot(l int) int {
	tr := w.tr
	if tr.RegionOf(l, w.myI, w.myJ) != 3 {
		return 0
	}
	lower := w.myI
	if tr.Level(w.myJ) < tr.Level(lower) {
		lower = w.myJ
	}
	k := tr.AncestorAtLevel(lower, l)
	if !w.active(k) {
		return 0
	}
	return k
}

// regionFour runs the R_l^4 schedule: panel broadcasts to unit
// processors, unit computation, reduction to the owning blocks, and
// the symmetric transpose sends.
func (w *sparseWorker) regionFour(l int) {
	tr := w.tr
	if l >= tr.H {
		return // the root level has no ancestors, hence no R_l^4
	}

	// My unit, if I am a unit processor this level: column G determines
	// the pivot k, row F determines the (a, c) ancestor pair.
	unitI, unitK, unitJ := 0, 0, 0
	if w.myJ <= tr.LevelSize(l) {
		k := tr.LevelOffset(l) + w.myJ
		if w.active(k) {
			for a := l + 1; a <= tr.H; a++ {
				for c := a; c <= tr.H; c++ {
					if tr.Row(l, a, c) == w.myI {
						unitI = tr.AncestorAtLevel(k, a)
						unitK = k
						unitJ = tr.AncestorAtLevel(k, c)
					}
				}
			}
		}
	}

	// Column-panel broadcasts (line 14): P(i,k) -> each P_{f,g} needing
	// A(i,k), i.e. rows f(a,c) for c ∈ {a..h}.
	var unitAik, unitAkj *semiring.Matrix
	for _, k := range tr.LevelNodes(l) {
		if !w.active(k) {
			continue
		}
		for a := l + 1; a <= tr.H; a++ {
			i := tr.AncestorAtLevel(k, a)
			if !w.mayFill(l, i, k) {
				continue // provably empty panel: no rank enters the broadcast
			}
			root := w.rank(i, k)
			group := []int{root}
			mine := false
			for _, u := range tr.R4BroadcastTargetsColPanel(l, i, k) {
				r := w.grid.Rank(u.F-1, u.G-1)
				if r != root {
					group = append(group, r)
				}
				if r == w.ctx.Rank() {
					mine = true
				}
			}
			if w.ctx.Rank() != root && !mine {
				continue
			}
			var payload []float64
			if w.ctx.Rank() == root {
				payload = w.pack(w.A)
			}
			data := w.ctx.Bcast(group, root, w.tag(l, phR4ColPanel, k, a), payload)
			if mine && unitK == k && unitI == i {
				unitAik = w.unpack(data, w.sizes[i], w.sizes[k])
				w.ctx.AddMemory(int64(len(unitAik.V)))
			}
		}
	}

	// Row-panel broadcasts (line 17): P(k,j) -> rows f(a,c) for a ∈ {l+1..c}.
	for _, k := range tr.LevelNodes(l) {
		if !w.active(k) {
			continue
		}
		for c := l + 1; c <= tr.H; c++ {
			j := tr.AncestorAtLevel(k, c)
			if !w.mayFill(l, k, j) {
				continue
			}
			root := w.rank(k, j)
			group := []int{root}
			mine := false
			for _, u := range tr.R4BroadcastTargetsRowPanel(l, k, j) {
				r := w.grid.Rank(u.F-1, u.G-1)
				if r != root {
					group = append(group, r)
				}
				if r == w.ctx.Rank() {
					mine = true
				}
			}
			if w.ctx.Rank() != root && !mine {
				continue
			}
			var payload []float64
			if w.ctx.Rank() == root {
				payload = w.pack(w.A)
			}
			data := w.ctx.Bcast(group, root, w.tag(l, phR4RowPanel, k, c), payload)
			if mine && unitK == k && unitJ == j {
				unitAkj = w.unpack(data, w.sizes[k], w.sizes[j])
				w.ctx.AddMemory(int64(len(unitAkj.V)))
			}
		}
	}

	// Unit computation (line 21): U = A(i,k) ⊗ A(k,j), one unit per
	// processor by Corollary 5.5.
	var unit *semiring.Matrix
	if unitAik != nil && unitAkj != nil {
		unit = semiring.NewMatrix(w.sizes[unitI], w.sizes[unitJ])
		w.ctx.AddMemory(int64(len(unit.V)))
		w.ctx.AddFlops(w.kern.MulAddInto(unit, unitAik, unitAkj))
	}

	// Reductions (line 23): the units of block (i,j) live on one
	// processor row in contiguous columns; reduce them to P_ij.
	for _, b := range tr.R4Lower(l) {
		row, cols := tr.UnitProcessorsFor(l, b.I, b.J)
		pivots := tr.UnitsFor(l, b.I, b.J)
		var group []int
		for x, g := range cols {
			// A unit joins the reduce only if both its panels can be
			// finite — otherwise its product is provably all-Inf and its
			// panel broadcasts were skipped above (so it holds no unit).
			if w.active(pivots[x]) &&
				w.mayFill(l, b.I, pivots[x]) && w.mayFill(l, pivots[x], b.J) {
				group = append(group, w.grid.Rank(row-1, g-1))
			}
		}
		if len(group) == 0 {
			continue
		}
		root := w.rank(b.I, b.J)
		member := contains(group, w.ctx.Rank())
		if !member && w.ctx.Rank() != root {
			continue
		}
		var data []float64
		if member {
			data = unit.V
		}
		res := w.ctx.ReduceTo(group, root, w.tag(l, phR4Reduce, b.I, b.J), data, semiring.MinInto)
		if w.ctx.Rank() == root {
			semiring.MinInto(w.A.V, res)
			w.ctx.AddFlops(int64(len(res)))
		}
	}
	if unit != nil {
		w.ctx.AddMemory(-int64(len(unit.V)))
	}
	if unitAik != nil {
		w.ctx.AddMemory(-int64(len(unitAik.V)))
	}
	if unitAkj != nil {
		w.ctx.AddMemory(-int64(len(unitAkj.V)))
	}

	// Transpose sends (line 25): the level(i) > level(j) half of R_l^4
	// is the mirror of the computed half. A block the mask proves still
	// all-Inf after this level has an equally empty mirror (the mask is
	// symmetric), so both sides skip the exchange.
	for _, b := range tr.R4Lower(l) {
		if b.I == b.J || w.sizes[b.I] == 0 || w.sizes[b.J] == 0 {
			continue
		}
		if !w.anyActiveUnit(l, b.I) || !w.mayFill(l+1, b.I, b.J) {
			continue
		}
		if w.myI == b.I && w.myJ == b.J {
			w.ctx.Send(w.rank(b.J, b.I), w.tag(l, phR4Transpose, b.I, b.J), w.pack(w.A))
		}
		if w.myI == b.J && w.myJ == b.I {
			data := w.ctx.Recv(w.rank(b.I, b.J), w.tag(l, phR4Transpose, b.I, b.J))
			src := w.unpack(data, w.sizes[b.I], w.sizes[b.J])
			w.A.CopyFrom(src.Transpose())
		}
	}
}

// anyActiveUnit reports whether block (i, ·) has at least one active
// pivot at level l (i.e. it was actually updated and needs mirroring).
func (w *sparseWorker) anyActiveUnit(l, i int) bool {
	for _, k := range w.tr.DescendantsAtLevel(i, l) {
		if w.active(k) {
			return true
		}
	}
	return false
}

func contains(list []int, x int) bool {
	for _, v := range list {
		if v == x {
			return true
		}
	}
	return false
}
