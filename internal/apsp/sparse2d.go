package apsp

import (
	"fmt"
	"time"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// DistResult is the output of a distributed solver: the distance matrix
// reassembled in the original vertex order plus the machine's cost
// report (critical-path latency/bandwidth/flops, totals, peak memory).
type DistResult struct {
	Dist   *semiring.Matrix
	Report comm.Report
	Layout *Layout // the ordering used (sparse algorithm only, else nil)
	P      int
	// Phases carries the per-eTree-level cost breakdown of the sparse
	// solver (the L_l / B_l decomposition of Lemmas 5.6, 5.8, 5.9);
	// empty for the dense algorithms.
	Phases []comm.PhaseCost
	// Traffic is the words-sent matrix: Traffic[src][dst].
	Traffic [][]int64
}

// SparseAPSP runs the paper's 2D-SPARSE-APSP (Algorithm 1) on a
// simulated machine of p processors. p must be (2^h − 1)² so that the
// supernodal block matrix maps one block per processor (Section 5.1).
//
// Per level l = 1..h the four regions are updated in order:
//
//	R_l^1  local ClassicalFW on each diagonal pivot block;
//	R_l^2  broadcast of A(k,k) down pivot row and column, panel updates;
//	R_l^3  row/column broadcasts of the panels, one-unit updates;
//	R_l^4  panel broadcasts to the Corollary 5.5 unit processors P_{f,g},
//	       parallel unit computation, binomial reduce to the owning
//	       block, and the symmetric transpose send (Algorithm 1 line 25).
//
// The solve is split into a symbolic phase (BuildPlan: ordering, eTree,
// fill mask, and the complete op schedule above) and a numeric phase
// (Plan.Execute: the min-plus block updates against actual weights).
// Every rank follows the same deterministic global schedule, entering
// only the collectives it belongs to, so the communication pattern —
// and therefore the measured critical-path cost — is exactly the
// paper's.
func SparseAPSP(g *graph.Graph, p int, seed int64) (*DistResult, error) {
	return SparseAPSPWith(g, p, SparseOptions{Seed: seed})
}

// R4Strategy selects how the multi-unit region R_l^4 is updated.
type R4Strategy int

const (
	// R4Mapped is the paper's contribution: each computing unit runs on
	// its own processor P_{f,g} (Corollary 5.5) and results reach the
	// owning block through an O(log q)-message binomial reduce.
	R4Mapped R4Strategy = iota
	// R4Sequential is the "trivial strategy" of Section 5.2.2 (the
	// SuperLU_DIST scheme): the owning processor P_ij receives both
	// panels of every unit — 2q messages serialized at the receiver —
	// and accumulates the products locally. Exists for the ablation
	// benchmark; same results, Θ(√p)-worse latency per level.
	R4Sequential
)

// WireFormat selects how block payloads travel between ranks.
type WireFormat int

const (
	// WirePacked (the default) is the structure-aware engine: payloads
	// use the semiring packed encoding (empty marker / sparse pairs /
	// dense body, whichever is smallest), so the simulated machine is
	// charged the packed word count, and the symbolic fill mask skips
	// broadcasts whose payload is provably all-Inf together with the
	// multiplications they would feed. Distances are bit-identical to
	// WireDense — only identities are elided.
	WirePacked WireFormat = iota
	// WireDense is the legacy behavior: every payload is the raw dense
	// block body and nothing is skipped. It exists as the ablation
	// baseline for the packed-vs-dense bandwidth comparison.
	WireDense
	// WirePruned is the demand-pruned communication layer (v2): on top
	// of WirePacked's skipping, BuildPlan runs the symbolic demand
	// sweep of demand.go and every broadcast ships only the payload
	// rows/columns at least one receiver can fold into a finite output
	// (semiring.PackPruned, chosen per payload only when strictly
	// smaller than the classic encodings). Distances stay bit-identical
	// to WireDense; WirePacked is the ablation baseline for the words
	// saved by demand pruning alone.
	WirePruned
)

func (w WireFormat) String() string {
	switch w {
	case WireDense:
		return "dense"
	case WirePruned:
		return "pruned"
	default:
		return "packed"
	}
}

// ParseWireFormat maps a wire-format name ("packed", "dense",
// "pruned"; "" means packed) to its WireFormat value.
func ParseWireFormat(s string) (WireFormat, error) {
	switch s {
	case "", "packed":
		return WirePacked, nil
	case "dense":
		return WireDense, nil
	case "pruned":
		return WirePruned, nil
	default:
		return 0, fmt.Errorf("apsp: unknown wire format %q (valid: packed, dense, pruned)", s)
	}
}

// Executor selects the engine that runs a Plan's numeric phase. Both
// executors produce bit-identical distances and bit-identical cost
// reports; they differ only in how the host schedules the work.
type Executor int

const (
	// ExecDataflow (the default) lowers the plan into a static
	// dependency graph and runs ready ops on a bounded worker pool —
	// a handful of goroutines instead of one per rank, direct buffer
	// handoff instead of mailboxes, and cost accounting by
	// deterministic replay. See dataflow.go.
	ExecDataflow Executor = iota
	// ExecMachine runs the plan on the simulated machine: p rank
	// goroutines communicating through mailboxes. Kept as the
	// reference semantics the dataflow executor is checked against.
	ExecMachine
)

func (e Executor) String() string {
	if e == ExecMachine {
		return "machine"
	}
	return "dataflow"
}

// ParseExecutor maps an executor name ("dataflow", "machine"; "" means
// dataflow) to its Executor value.
func ParseExecutor(s string) (Executor, error) {
	switch s {
	case "", "dataflow":
		return ExecDataflow, nil
	case "machine":
		return ExecMachine, nil
	default:
		return 0, fmt.Errorf("apsp: unknown executor %q (valid: dataflow, machine)", s)
	}
}

// Schedule selects the dataflow executor's ready-queue policy. Both
// schedules produce bit-identical distances and cost reports; they
// differ only in which ready node a worker runs first.
type Schedule int

const (
	// ScheduleCritical (the default) runs the most critical ready node
	// first: lowering assigns every node its longest cost path to a
	// sink (comm.PriorityCost over the charged per-op quantities), and
	// workers drain per-worker max-heaps with stealing.
	ScheduleCritical Schedule = iota
	// ScheduleFIFO is the v1 executor's unordered buffered channel,
	// kept as the ablation baseline for the scheduler comparison (E24).
	ScheduleFIFO
)

func (s Schedule) String() string {
	if s == ScheduleFIFO {
		return "fifo"
	}
	return "critical"
}

// ParseSchedule maps a schedule name ("critical", "fifo"; "" means
// critical) to its Schedule value.
func ParseSchedule(s string) (Schedule, error) {
	switch s {
	case "", "critical":
		return ScheduleCritical, nil
	case "fifo":
		return ScheduleFIFO, nil
	default:
		return 0, fmt.Errorf("apsp: unknown schedule %q (valid: critical, fifo)", s)
	}
}

// Fuse selects whether dataflow lowering merges micro-nodes into
// super-nodes (panel-chain fusion + collective hop coalescing). Both
// modes produce bit-identical distances and cost reports; fusion only
// shrinks the scheduled graph.
type Fuse int

const (
	// FuseOn (the default) merges program-order-adjacent micro-nodes of
	// one rank whenever the merge provably cannot introduce a
	// dependency cycle, and runs R2 panel-update chains through the
	// fused semiring kernel.
	FuseOn Fuse = iota
	// FuseOff schedules the unmerged 1:1 micro-node graph — the v1
	// lowering, kept as the ablation baseline.
	FuseOff
)

func (f Fuse) String() string {
	if f == FuseOff {
		return "off"
	}
	return "on"
}

// ParseFuse maps a fuse-mode name ("on", "off"; "" means on) to its
// Fuse value.
func ParseFuse(s string) (Fuse, error) {
	switch s {
	case "", "on", "true":
		return FuseOn, nil
	case "off", "false":
		return FuseOff, nil
	default:
		return 0, fmt.Errorf("apsp: unknown fuse mode %q (valid: on, off)", s)
	}
}

// Order selects the vertex labeling the solver sees before nested
// dissection runs.
type Order int

const (
	// OrderNatural (the default) solves the graph as labeled.
	OrderNatural Order = iota
	// OrderRCM relabels the graph by Reverse Cuthill–McKee first
	// (graph.RCM), solves the permuted graph, and un-permutes the
	// distance matrix back to the caller's labeling. Distances are
	// identical to OrderNatural (RCM is a relabeling, not an
	// approximation); the separator structure — and with it block
	// sizes, words moved and kernel time — can differ, which is what
	// the E24 ablation column measures.
	OrderRCM
)

func (o Order) String() string {
	if o == OrderRCM {
		return "rcm"
	}
	return "natural"
}

// ParseOrder maps an order name ("natural", "rcm"; "" means natural)
// to its Order value.
func ParseOrder(s string) (Order, error) {
	switch s {
	case "", "natural":
		return OrderNatural, nil
	case "rcm":
		return OrderRCM, nil
	default:
		return 0, fmt.Errorf("apsp: unknown order %q (valid: natural, rcm)", s)
	}
}

// SparseOptions configures SparseAPSPWith.
type SparseOptions struct {
	Seed       int64
	R4Strategy R4Strategy
	// Executor selects the plan execution engine; see Executor. The
	// zero value is the dataflow executor.
	Executor Executor
	// Layout, when non-nil, supplies a precomputed ordering (e.g. from
	// partition.DistributedND) instead of running the sequential nested
	// dissection; its tree height must match the machine size.
	Layout *Layout
	// Kernel selects the min-plus kernel each rank uses for its local
	// block arithmetic. Every kernel yields bit-identical distances and
	// identical operation counts (so the simulated cost report does not
	// change); the default KernelSerial is usually right because each
	// rank is already its own goroutine.
	Kernel semiring.Kernel
	// Wire selects the payload encoding (and with it the mask-based
	// skipping); see WireFormat.
	Wire WireFormat
	// Plans, when non-nil, caches the symbolic Plan under the graph's
	// StructureFingerprint: a solve whose structure was seen before
	// reuses the cached ordering, eTree, fill mask and op schedule and
	// performs no symbolic work at all (only the O(n + m) weight
	// permutation). Ignored when Layout is supplied — a caller-provided
	// ordering is not necessarily reproducible from the graph alone.
	Plans *PlanCache
	// Schedule selects the dataflow executor's ready-queue policy; the
	// zero value is the critical-path schedule. See Schedule.
	Schedule Schedule
	// Fuse selects whether dataflow lowering merges micro-nodes into
	// super-nodes; the zero value is on. See Fuse.
	Fuse Fuse
	// ExecWorkers bounds the dataflow executor's worker pool; 0 means
	// auto (shared pool size, capped at p). See ExecOpts.Workers.
	ExecWorkers int
	// Order selects the vertex labeling fed to nested dissection; the
	// zero value solves the graph as labeled. OrderRCM relabels by
	// Reverse Cuthill–McKee first and un-permutes the result, so
	// distances are unchanged while separator structure (and words
	// moved) may differ. Incompatible with an explicit Layout.
	Order Order
}

// execOpts projects the execution-time knobs out of SparseOptions.
func (o SparseOptions) execOpts() ExecOpts {
	return ExecOpts{
		Kernel:   o.Kernel,
		Executor: o.Executor,
		Schedule: o.Schedule,
		Fuse:     o.Fuse,
		Workers:  o.ExecWorkers,
	}
}

// SparseAPSPWith is SparseAPSP with explicit options. It is a thin
// wrapper over the Plan/Execute split: build (or fetch from
// opts.Plans) the symbolic plan, then execute it against g's weights.
func SparseAPSPWith(g *graph.Graph, p int, opts SparseOptions) (*DistResult, error) {
	h, err := HeightForP(p)
	if err != nil {
		return nil, err
	}
	if opts.Order == OrderRCM {
		// Relabel, solve the permuted graph through the same path (the
		// plan cache keys on the permuted structure, which is exactly
		// what was solved), then map the distances back to the caller's
		// labels. The returned Layout describes the permuted graph.
		if opts.Layout != nil {
			return nil, fmt.Errorf("apsp: Order=rcm cannot be combined with an explicit Layout (the layout fixes its own ordering)")
		}
		perm := g.RCM()
		sub := opts
		sub.Order = OrderNatural
		res, err := SparseAPSPWith(g.Permute(perm), p, sub)
		if err != nil {
			return nil, err
		}
		res.Dist = unpermuteDist(res.Dist, perm)
		return res, nil
	}
	if ly := opts.Layout; ly != nil {
		if ly.Tree.H != h {
			return nil, fmt.Errorf("apsp: supplied layout has tree height %d, machine p=%d needs %d", ly.Tree.H, p, h)
		}
		pl, err := BuildPlan(ly, p, opts.Wire, opts.R4Strategy)
		if err != nil {
			return nil, err
		}
		return pl.ExecuteOpts(ly, opts.execOpts())
	}
	if opts.Plans != nil {
		fp := StructureFingerprintOf(g, p, opts.Seed, opts.Wire, opts.R4Strategy)
		if pl, ok := opts.Plans.lookup(fp); ok {
			return pl.ExecuteOpts(pl.LayoutFor(g), opts.execOpts())
		}
		start := time.Now()
		ly, pl, err := buildSymbolic(g, p, h, opts)
		if err != nil {
			return nil, err
		}
		opts.Plans.put(fp, pl, time.Since(start).Nanoseconds())
		return pl.ExecuteOpts(ly, opts.execOpts())
	}
	ly, pl, err := buildSymbolic(g, p, h, opts)
	if err != nil {
		return nil, err
	}
	return pl.ExecuteOpts(ly, opts.execOpts())
}

// buildSymbolic runs the full symbolic phase from scratch: nested
// dissection, eTree, fill mask (NewLayout), then the op schedule
// (BuildPlan).
func buildSymbolic(g *graph.Graph, p, h int, opts SparseOptions) (*Layout, *Plan, error) {
	ly, err := NewLayout(g, h, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	pl, err := BuildPlan(ly, p, opts.Wire, opts.R4Strategy)
	if err != nil {
		return nil, nil, err
	}
	return ly, pl, nil
}

// unpermuteDist maps a distance matrix computed on a permuted graph
// back to the original labeling: perm is old→new, so the distance
// between original vertices (u, v) sits at (perm[u], perm[v]).
func unpermuteDist(d *semiring.Matrix, perm []int) *semiring.Matrix {
	n := d.Rows
	out := semiring.NewMatrix(n, n)
	for u := 0; u < n; u++ {
		pu := perm[u] * n
		row := out.V[u*n : (u+1)*n]
		for v := 0; v < n; v++ {
			row[v] = d.V[pu+perm[v]]
		}
	}
	return out
}
