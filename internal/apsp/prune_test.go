package apsp

import (
	"math/rand"
	"testing"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
)

// TestPrunedWireMatchesDense is the demand-pruned wire format's safety
// contract, the communication-v2 counterpart of
// TestPackedWireMatchesDense: across graph families, both executors
// and both R4 strategies, wire=pruned distances are bit-identical to
// wire=dense — pruning elides only entries every receiver provably
// absorbs — while total words never exceed packed's and drop strictly
// on the families with exploitable structure.
func TestPrunedWireMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cases := []struct {
		name string
		g    *graph.Graph
		p    int
		// strictWin marks families where the demand sweep must beat the
		// packed baseline outright on total words.
		strictWin bool
	}{
		{"grid12", graph.Grid2D(12, 12, graph.RandomWeights(rng, 1, 10)), 49, true},
		{"path", graph.Path(240, graph.UnitWeights), 49, true},
		{"tree", graph.RandomTree(200, graph.UnitWeights, rng), 49, true},
		{"star", graph.Star(120, graph.UnitWeights), 49, true},
		{"two-cliques", disconnectedCliques(40), 9, false},
		{"gnp-dense", graph.RandomGNP(60, 0.4, graph.RandomWeights(rng, 1, 5), rng), 9, false},
	}
	for _, tc := range cases {
		for _, strat := range []R4Strategy{R4Mapped, R4Sequential} {
			dense, err := SparseAPSPWith(tc.g, tc.p, SparseOptions{Seed: 7, Wire: WireDense, R4Strategy: strat})
			if err != nil {
				t.Fatalf("%s dense: %v", tc.name, err)
			}
			packed, err := SparseAPSPWith(tc.g, tc.p, SparseOptions{Seed: 7, Wire: WirePacked, R4Strategy: strat})
			if err != nil {
				t.Fatalf("%s packed: %v", tc.name, err)
			}
			for _, ex := range []Executor{ExecDataflow, ExecMachine} {
				pruned, err := SparseAPSPWith(tc.g, tc.p, SparseOptions{Seed: 7, Wire: WirePruned, R4Strategy: strat, Executor: ex})
				if err != nil {
					t.Fatalf("%s pruned/%v: %v", tc.name, ex, err)
				}
				if !identicalMatrices(pruned.Dist, dense.Dist) {
					t.Errorf("%s r4=%d %v: pruned distances differ from dense", tc.name, strat, ex)
				}
				if pruned.Report.TotalWords > packed.Report.TotalWords {
					t.Errorf("%s r4=%d %v: pruned total words %d exceed packed %d",
						tc.name, strat, ex, pruned.Report.TotalWords, packed.Report.TotalWords)
				}
				if pruned.Report.TotalMessages != packed.Report.TotalMessages {
					t.Errorf("%s r4=%d %v: pruned message count %d differs from packed %d (pruning must not change the schedule)",
						tc.name, strat, ex, pruned.Report.TotalMessages, packed.Report.TotalMessages)
				}
				if tc.strictWin && pruned.Report.TotalWords >= packed.Report.TotalWords {
					t.Errorf("%s r4=%d %v: pruned total words %d not strictly below packed %d",
						tc.name, strat, ex, pruned.Report.TotalWords, packed.Report.TotalWords)
				}
			}
		}
	}
}

// TestWordsByClassBreakdown pins the per-phase accounting: the class
// counters partition TotalWords exactly, the classes land where the
// schedule says they must (R4Seq traffic only under R4Sequential,
// panel/reduce traffic only under R4Mapped, nothing unclassified), and
// the breakdown is part of the executor-equality contract (Report is
// DeepEqual-compared in TestExecutorEquality, WordsByClass included).
func TestWordsByClassBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := graph.Grid2D(12, 12, graph.RandomWeights(rng, 1, 10))
	for _, wire := range []WireFormat{WirePacked, WireDense, WirePruned} {
		for _, strat := range []R4Strategy{R4Mapped, R4Sequential} {
			res, err := SparseAPSPWith(g, 49, SparseOptions{Seed: 7, Wire: wire, R4Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			var sum int64
			for _, w := range res.Report.WordsByClass {
				sum += w
			}
			if sum != res.Report.TotalWords {
				t.Errorf("%v r4=%d: class words sum %d != total %d", wire, strat, sum, res.Report.TotalWords)
			}
			if w := res.Report.WordsByClass[comm.SendOther]; w != 0 {
				t.Errorf("%v r4=%d: %d words left unclassified", wire, strat, w)
			}
			mapped := res.Report.WordsByClass[comm.SendR4Panel] + res.Report.WordsByClass[comm.SendR4Reduce]
			seq := res.Report.WordsByClass[comm.SendR4Seq]
			if strat == R4Mapped && (seq != 0 || mapped == 0) {
				t.Errorf("%v mapped: r4-seq words %d (want 0), panel+reduce %d (want >0)", wire, seq, mapped)
			}
			if strat == R4Sequential && (mapped != 0 || seq == 0) {
				t.Errorf("%v sequential: panel+reduce words %d (want 0), r4-seq %d (want >0)", wire, mapped, seq)
			}
		}
	}
}
