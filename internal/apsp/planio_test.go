package apsp

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// planioWorkloads builds the standard graph families used across the
// codec tests, with integer weights so distances are FP-exact.
func planioWorkloads(n int) map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(7))
	w := func(u, v int) float64 { return float64(rng.Intn(9) + 1) }
	side := 1
	for (side+1)*(side+1) <= n {
		side++
	}
	return map[string]*graph.Graph{
		"star": graph.Star(n, w),
		"tree": graph.RandomTree(n, w, rng),
		"grid": graph.Grid2D(side, side, w),
		"path": graph.Path(n, w),
		"gnp":  graph.RandomGNP(n, 4.0/float64(n), w, rng),
	}
}

func buildTestPlan(t *testing.T, g *graph.Graph, p int, wire WireFormat, r4 R4Strategy) *Plan {
	t.Helper()
	h, err := HeightForP(p)
	if err != nil {
		t.Fatal(err)
	}
	ly, err := NewLayout(g, h, 42)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := BuildPlan(ly, p, wire, r4)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestPlanEncodeDecodeRoundTrip proves the codec is faithful across
// graph families × wire formats × R4 strategies: the decoded plan has
// the same content hash, re-encodes to identical bytes, and executes
// to bit-identical distances and cost reports.
func TestPlanEncodeDecodeRoundTrip(t *testing.T) {
	const p = 49
	for name, g := range planioWorkloads(120) {
		for _, wire := range []WireFormat{WirePacked, WireDense, WirePruned} {
			for _, r4 := range []R4Strategy{R4Mapped, R4Sequential} {
				pl := buildTestPlan(t, g, p, wire, r4)
				enc := pl.Encode()
				dec, err := DecodePlan(enc)
				if err != nil {
					t.Fatalf("%s/%s/r4=%v: decode: %v", name, wire, r4, err)
				}
				if dec.Hash() != pl.Hash() {
					t.Fatalf("%s/%s/r4=%v: hash changed across round trip", name, wire, r4)
				}
				if !bytes.Equal(dec.Encode(), enc) {
					t.Fatalf("%s/%s/r4=%v: re-encoding a decoded plan changed the bytes", name, wire, r4)
				}
				want, err := pl.Execute(pl.LayoutFor(g), semiring.KernelSerial)
				if err != nil {
					t.Fatal(err)
				}
				got, err := dec.Execute(dec.LayoutFor(g), semiring.KernelSerial)
				if err != nil {
					t.Fatalf("%s/%s/r4=%v: decoded plan failed to execute: %v", name, wire, r4, err)
				}
				if !want.Dist.Equal(got.Dist) {
					t.Fatalf("%s/%s/r4=%v: decoded plan computed different distances", name, wire, r4)
				}
				if !reflect.DeepEqual(want.Report, got.Report) {
					t.Fatalf("%s/%s/r4=%v: decoded plan charged different costs:\n  want %+v\n  got  %+v",
						name, wire, r4, want.Report, got.Report)
				}
			}
		}
	}
}

// TestDecodePlanMalformed drives the decoder over truncations and
// deterministic byte corruptions of a valid encoding: every outcome
// must be an error or a plan with the original hash — never a panic,
// never a silently different schedule.
func TestDecodePlanMalformed(t *testing.T) {
	g := graph.Grid2D(8, 8, graph.UnitWeights)
	pl := buildTestPlan(t, g, 9, WirePruned, R4Mapped)
	enc := pl.Encode()

	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := DecodePlan(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), enc...)
		for flips := 1 + rng.Intn(4); flips > 0; flips-- {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		dec, err := DecodePlan(mut)
		if err == nil && dec.Hash() != pl.Hash() {
			t.Fatalf("trial %d: corrupted plan decoded to a different schedule", trial)
		}
	}
	if _, err := DecodePlan(nil); err == nil {
		t.Fatal("nil input decoded without error")
	}
	if _, err := DecodePlan([]byte("XXPLAN99" + string(make([]byte, 64)))); err == nil {
		t.Fatal("foreign magic decoded without error")
	}
	// Trailing junk between the schedule and the hash must be rejected.
	padded := append(append([]byte(nil), enc[:len(enc)-planHashLen]...), 0xFF)
	padded = append(padded, enc[len(enc)-planHashLen:]...)
	if _, err := DecodePlan(padded); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}
}

// TestPlanStoreWarmRestart is the restart contract: a second cache on
// the same directory (a new process, as far as the cache can tell)
// serves the plan from disk with zero symbolic builds, and the plan it
// serves solves bit-identically.
func TestPlanStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	g := graph.Grid2D(12, 12, graph.UnitWeights)
	const p = 49

	cold, err := NewPlanCacheAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := SparseOptions{Seed: 42, Plans: cold}
	want, err := SparseAPSPWith(g, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Builds != 1 || st.DiskWrites != 1 || st.DiskHits != 0 {
		t.Fatalf("cold cache stats = %+v, want 1 build / 1 disk write", st)
	}

	warm, err := NewPlanCacheAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Plans = warm
	got, err := SparseAPSPWith(g, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.Builds != 0 {
		t.Fatalf("warm restart ran %d symbolic builds, want 0 (stats %+v)", st.Builds, st)
	}
	if st.DiskHits != 1 || st.DiskErrors != 0 {
		t.Fatalf("warm cache stats = %+v, want exactly 1 disk hit", st)
	}
	if !want.Dist.Equal(got.Dist) {
		t.Fatal("persisted plan solved to different distances")
	}
	if !reflect.DeepEqual(want.Report, got.Report) {
		t.Fatal("persisted plan charged different costs")
	}

	// Third solve on the warm cache: a pure memory hit, no disk I/O.
	if _, err := SparseAPSPWith(g, p, opts); err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Hits != 1 || st.DiskHits != 1 {
		t.Fatalf("second warm solve stats = %+v, want 1 memory hit on top of the disk hit", st)
	}
}

// TestPlanStoreCorruptFileDegrades: a corrupted plan file must behave
// like a miss (rebuild + DiskErrors count), not fail the solve.
func TestPlanStoreCorruptFileDegrades(t *testing.T) {
	dir := t.TempDir()
	g := graph.Grid2D(10, 10, graph.UnitWeights)
	const p = 9

	c1, err := NewPlanCacheAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SparseAPSPWith(g, p, SparseOptions{Seed: 42, Plans: c1}); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.plan"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one plan file, got %v (%v)", files, err)
	}
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewPlanCacheAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SparseAPSPWith(g, p, SparseOptions{Seed: 42, Plans: c2}); err != nil {
		t.Fatalf("solve with corrupted plan file failed: %v", err)
	}
	if st := c2.Stats(); st.Builds != 1 || st.DiskErrors != 1 {
		t.Fatalf("stats after corrupted load = %+v, want 1 build and 1 disk error", st)
	}
}
