package apsp

import (
	"math/rand"
	"testing"

	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// TestPackedWireMatchesDense is the engine's safety contract: the
// packed wire format plus mask-based skipping changes only how costs
// are counted, never a distance. Across graph families the packed run
// must be bit-identical to the dense run and never cost more on any
// communication axis.
func TestPackedWireMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cases := []struct {
		name string
		g    *graph.Graph
		p    int
		// sparseFamily marks graphs with small separators, where the
		// mask and the sparse encodings must show a strict total-words
		// win. On connected graphs most blocks eventually fill dense, so
		// the win is real but modest (1–35% in practice).
		sparseFamily bool
		// strongWin marks graphs where whole blocks stay empty for the
		// entire solve (hub-and-spoke, disconnected components): packed
		// total words must drop by at least 2x.
		strongWin bool
	}{
		{"grid12", graph.Grid2D(12, 12, graph.RandomWeights(rng, 1, 10)), 49, true, false},
		{"path", graph.Path(240, graph.UnitWeights), 49, true, false},
		{"tree", graph.RandomTree(200, graph.UnitWeights, rng), 49, true, false},
		{"star", graph.Star(120, graph.UnitWeights), 49, true, true},
		// Two disconnected cliques: the eTree schedule never ships a
		// cross-component block at all (their separators are empty), so
		// the only traffic is dense clique diagonals and packing has
		// nothing left to compress — covered here for the bit-identity
		// and no-worse-than-overhead bounds only.
		{"two-cliques", disconnectedCliques(40), 9, false, false},
		{"gnp-dense", graph.RandomGNP(60, 0.4, graph.RandomWeights(rng, 1, 5), rng), 9, false, false},
	}
	for _, tc := range cases {
		dense, err := SparseAPSPWith(tc.g, tc.p, SparseOptions{Seed: 7, Wire: WireDense})
		if err != nil {
			t.Fatalf("%s dense: %v", tc.name, err)
		}
		packed, err := SparseAPSPWith(tc.g, tc.p, SparseOptions{Seed: 7, Wire: WirePacked})
		if err != nil {
			t.Fatalf("%s packed: %v", tc.name, err)
		}
		if !identicalMatrices(packed.Dist, dense.Dist) {
			t.Errorf("%s: packed distances differ from dense", tc.name)
		}
		if packed.Report.Critical.Bandwidth > dense.Report.Critical.Bandwidth+maxPackOverhead(tc.p) {
			t.Errorf("%s: packed critical bandwidth %d exceeds dense %d",
				tc.name, packed.Report.Critical.Bandwidth, dense.Report.Critical.Bandwidth)
		}
		if packed.Report.Critical.Latency > dense.Report.Critical.Latency {
			t.Errorf("%s: packed latency %d exceeds dense %d",
				tc.name, packed.Report.Critical.Latency, dense.Report.Critical.Latency)
		}
		if tc.sparseFamily && packed.Report.TotalWords >= dense.Report.TotalWords {
			t.Errorf("%s: packed total words %d not strictly below dense %d",
				tc.name, packed.Report.TotalWords, dense.Report.TotalWords)
		}
		if tc.strongWin && packed.Report.TotalWords*2 > dense.Report.TotalWords {
			t.Errorf("%s: packed total words %d not below half of dense %d",
				tc.name, packed.Report.TotalWords, dense.Report.TotalWords)
		}
	}
}

// maxPackOverhead bounds the packed format's header cost on a critical
// path: one tag word per message, and a solve's critical path carries
// far fewer messages than p·log²p.
func maxPackOverhead(p int) int64 {
	lg := int64(1)
	for 1<<lg < p {
		lg++
	}
	return 4 * lg * lg
}

// TestEmptyPanelBroadcastCostsO1Words is the regression test for the
// payload-sizing fix: broadcasting a provably empty (all-Inf) panel
// must cost O(1) words per hop — 1 word with the packed encoding — not
// the panel's dense area. The dense run of the same program pins the
// old cost for contrast.
func TestEmptyPanelBroadcastCostsO1Words(t *testing.T) {
	const p = 8
	const rows, cols = 100, 100
	run := func(payloadOf func(*semiring.Matrix) []float64, decode func([]float64) *semiring.Matrix) comm.Report {
		machine := comm.NewMachine(p)
		if err := machine.Run(func(ctx *comm.Ctx) {
			group := make([]int, p)
			for i := range group {
				group[i] = i
			}
			var payload []float64
			if ctx.Rank() == 0 {
				payload = payloadOf(semiring.NewMatrix(rows, cols))
			}
			data := ctx.Bcast(group, 0, 1, payload)
			if got := decode(data); got.NNZ() != 0 {
				panic("empty panel decoded with finite entries")
			}
		}); err != nil {
			t.Fatal(err)
		}
		return machine.Report()
	}

	packed := run(semiring.PackMatrix,
		func(data []float64) *semiring.Matrix { return semiring.UnpackMatrix(data, rows, cols) })
	dense := run(func(m *semiring.Matrix) []float64 { return append([]float64(nil), m.V...) },
		func(data []float64) *semiring.Matrix { return semiring.FromSlice(rows, cols, data) })

	// Binomial tree over 8 ranks: 3 hops on the critical path, 1 word each.
	if packed.Critical.Bandwidth > 3 {
		t.Errorf("packed empty broadcast: critical bandwidth %d, want <= 3 words", packed.Critical.Bandwidth)
	}
	if packed.TotalWords != p-1 {
		t.Errorf("packed empty broadcast: total words %d, want %d", packed.TotalWords, p-1)
	}
	if dense.TotalWords != int64(p-1)*rows*cols {
		t.Errorf("dense empty broadcast: total words %d, want %d", dense.TotalWords, int64(p-1)*rows*cols)
	}
}

// TestSolverSkipsEmptyPanelBroadcasts checks the mask actually bites
// inside the solver: on a path graph, leaf supernodes have no edges to
// the root separator, so several R3/R4 panel broadcasts are provably
// empty and the packed run must send strictly fewer messages.
func TestSolverSkipsEmptyPanelBroadcasts(t *testing.T) {
	g := graph.Path(240, graph.UnitWeights)
	dense, err := SparseAPSPWith(g, 49, SparseOptions{Seed: 7, Wire: WireDense})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := SparseAPSPWith(g, 49, SparseOptions{Seed: 7, Wire: WirePacked})
	if err != nil {
		t.Fatal(err)
	}
	if packed.Report.TotalMessages >= dense.Report.TotalMessages {
		t.Errorf("packed run sent %d messages, dense %d: mask skipped nothing",
			packed.Report.TotalMessages, dense.Report.TotalMessages)
	}
}
