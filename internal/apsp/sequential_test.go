package apsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// testGraphs builds the standard correctness workload set.
func testGraphs(rng *rand.Rand) map[string]*graph.Graph {
	w := graph.RandomWeights(rng, 1, 10)
	return map[string]*graph.Graph{
		"empty":    graph.New(0),
		"single":   graph.New(1),
		"two-disc": graph.New(2),
		"path":     graph.Path(13, w),
		"cycle":    graph.Cycle(9, w),
		"grid":     graph.Grid2D(6, 7, w),
		"complete": graph.Complete(11, w),
		"star":     graph.Star(14, w),
		"tree":     graph.RandomTree(25, w, rng),
		"gnp":      graph.RandomGNP(30, 0.12, w, rng),
		"rmat":     graph.RMAT(5, 4, w, rng),
		"disconn":  disconnected(w),
		"unitgrid": graph.Grid2D(5, 5, graph.UnitWeights),
	}
}

func disconnected(w graph.WeightFn) *graph.Graph {
	g := graph.New(14)
	for v := 0; v+1 < 6; v++ {
		g.AddEdge(v, v+1, w(v, v+1))
	}
	for v := 7; v+1 < 13; v++ {
		g.AddEdge(v, v+1, w(v, v+1))
	}
	// vertices 6 and 13 are isolated
	return g
}

func TestFloydWarshallSmallHandComputed(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 10)
	d, ops := FloydWarshall(g)
	want := [][]float64{
		{0, 1, 3, 4},
		{1, 0, 2, 3},
		{3, 2, 0, 1},
		{4, 3, 1, 0},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if d.At(i, j) != want[i][j] {
				t.Errorf("d(%d,%d) = %v, want %v", i, j, d.At(i, j), want[i][j])
			}
		}
	}
	if ops <= 0 {
		t.Error("no operations counted")
	}
}

func TestJohnsonMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for name, g := range testGraphs(rng) {
		want, _ := FloydWarshall(g)
		got, err := Johnson(g)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !got.EqualTol(want, 1e-9) {
			t.Errorf("%s: Johnson diverges from Floyd-Warshall", name)
		}
	}
}

func TestJohnsonRejectsNegativeEdges(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, -1)
	if _, err := Johnson(g); err == nil {
		t.Error("expected error for negative undirected edge")
	}
}

func TestBlockedFloydWarshallMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := graph.RandomGNP(40, 0.1, graph.RandomWeights(rng, 1, 5), rng)
	want, _ := FloydWarshall(g)
	for _, b := range []int{1, 4, 7, 40, 64} {
		got, _ := BlockedFloydWarshall(g, b)
		// Tolerance, not equality: blocked evaluation associates the
		// floating-point additions differently than the classical loop.
		if !got.EqualTol(want, 1e-9) {
			t.Errorf("b=%d: blocked FW diverges", b)
		}
	}
}

func TestFloydWarshallFullCountsN3(t *testing.T) {
	g := graph.Path(9, graph.UnitWeights)
	d, ops := FloydWarshallFull(g)
	if ops != 9*9*9 {
		t.Errorf("ops = %d, want 729", ops)
	}
	want, _ := FloydWarshall(g)
	if !d.Equal(want) {
		t.Error("FloydWarshallFull diverges")
	}
}

func TestSuperFWMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for name, g := range testGraphs(rng) {
		want, _ := FloydWarshall(g)
		for _, h := range []int{1, 2, 3} {
			res, err := SuperFW(g, h, 7)
			if err != nil {
				t.Errorf("%s h=%d: %v", name, h, err)
				continue
			}
			if !res.Dist.EqualTol(want, 1e-9) {
				t.Errorf("%s h=%d: SuperFW diverges from Floyd-Warshall", name, h)
			}
		}
	}
}

// E12: SuperFW's operation count on a grid beats classical FW by a
// factor that grows with n/|S| (the PPoPP'20 headline).
func TestSuperFWOperationReduction(t *testing.T) {
	g := graph.Grid2D(20, 20, graph.UnitWeights)
	res, err := SuperFW(g, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, full := FloydWarshallFull(g)
	if res.Ops >= full {
		t.Errorf("SuperFW ops %d not below classical %d", res.Ops, full)
	}
	// n = 400, |S| ≈ 20: expect at least ~2x reduction at h=4 even with
	// modest separators.
	if res.Ops*2 > full {
		t.Errorf("SuperFW reduction too small: %d vs %d (%.2fx)",
			res.Ops, full, float64(full)/float64(res.Ops))
	}
}

func TestLayoutBlocksPartitionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := graph.RandomGNP(30, 0.15, graph.RandomWeights(rng, 1, 9), rng)
	ly, err := NewLayout(g, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	blocks := ly.Blocks()
	// Reassembling the untouched blocks must reproduce the adjacency
	// matrix in the original order.
	back := ly.AssembleOriginal(blocks)
	adj := semiring.FromSlice(g.N(), g.N(), g.AdjacencyMatrix())
	if !back.Equal(adj) {
		t.Fatal("Blocks/AssembleOriginal does not round-trip the adjacency matrix")
	}
	// Cousin blocks must start empty (the Figure 1 observation).
	tr := ly.Tree
	for i := 1; i <= ly.ND.N; i++ {
		for j := 1; j <= ly.ND.N; j++ {
			if i != j && !tr.Related(i, j) && !blocks[i][j].IsAllInf() {
				t.Errorf("cousin block (%d,%d) is not empty", i, j)
			}
		}
	}
	// Total block area is n².
	area := 0
	for i := 1; i <= ly.ND.N; i++ {
		for j := 1; j <= ly.ND.N; j++ {
			area += blocks[i][j].Rows * blocks[i][j].Cols
		}
	}
	if area != g.N()*g.N() {
		t.Errorf("total block area = %d, want %d", area, g.N()*g.N())
	}
}

func TestHeightForP(t *testing.T) {
	ok := map[int]int{1: 1, 9: 2, 49: 3, 225: 4, 961: 5}
	for p, want := range ok {
		h, err := HeightForP(p)
		if err != nil || h != want {
			t.Errorf("HeightForP(%d) = %d, %v", p, h, err)
		}
	}
	for _, p := range []int{2, 4, 16, 25, 100} {
		if _, err := HeightForP(p); err == nil {
			t.Errorf("HeightForP(%d) succeeded, want error", p)
		}
	}
}

func TestValidSparseP(t *testing.T) {
	got := ValidSparseP(1000)
	want := []int{1, 9, 49, 225, 961}
	if len(got) != len(want) {
		t.Fatalf("ValidSparseP = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ValidSparseP = %v, want %v", got, want)
		}
	}
}

// Property: SuperFW agrees with Johnson on random connected graphs for
// random tree heights.
func TestQuickSuperFWAgainstJohnson(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		g := graph.RandomGNP(n, 2.5/float64(n), graph.RandomWeights(rng, 1, 10), rng)
		h := 1 + rng.Intn(3)
		res, err := SuperFW(g, h, seed)
		if err != nil {
			return false
		}
		want, err := Johnson(g)
		if err != nil {
			return false
		}
		return res.Dist.EqualTol(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDisconnectedDistancesAreInf(t *testing.T) {
	g := disconnected(graph.UnitWeights)
	d, _ := FloydWarshall(g)
	if !math.IsInf(d.At(0, 7), 1) {
		t.Error("cross-component distance should be Inf")
	}
	if !math.IsInf(d.At(6, 0), 1) {
		t.Error("isolated vertex distance should be Inf")
	}
	if d.At(6, 6) != 0 {
		t.Error("self distance should be 0")
	}
}

// Property: adding an edge never increases any distance, and removing
// reachability never decreases one (monotonicity of shortest paths).
func TestQuickDistancesMonotoneUnderEdgeAddition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(25)
		g := graph.RandomGNP(n, 2.0/float64(n), graph.RandomWeights(rng, 1, 10), rng)
		before, _ := FloydWarshall(g)
		g2 := g.Clone()
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		g2.AddEdge(u, v, 1+rng.Float64()*5)
		after, _ := FloydWarshall(g2)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if after.At(i, j) > before.At(i, j)+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: scaling all edge weights by a positive constant scales all
// finite distances by the same constant.
func TestQuickDistanceScaling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		g := graph.RandomGNP(n, 3.0/float64(n), graph.RandomWeights(rng, 1, 10), rng)
		scale := 1 + rng.Float64()*4
		g2 := graph.New(n)
		for _, e := range g.Edges() {
			g2.AddEdge(e.U, e.V, e.W*scale)
		}
		d1, _ := FloydWarshall(g)
		d2, _ := FloydWarshall(g2)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, b := d1.At(i, j)*scale, d2.At(i, j)
				if math.IsInf(d1.At(i, j), 1) {
					if !math.IsInf(b, 1) {
						return false
					}
					continue
				}
				if math.Abs(a-b) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The shared-memory parallel SuperFW must match the sequential one
// exactly (identical schedule, disjoint outputs per phase).
func TestSuperFWParallelMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	for name, g := range testGraphs(rng) {
		for _, h := range []int{1, 2, 3} {
			ly, err := NewLayout(g, h, 7)
			if err != nil {
				t.Fatalf("%s h=%d: %v", name, h, err)
			}
			seq, err := SuperFW(g, h, 7)
			if err != nil {
				t.Fatalf("%s h=%d: %v", name, h, err)
			}
			par, ops := SuperFWParallel(ly)
			if !par.Equal(seq.Dist) {
				t.Errorf("%s h=%d: parallel SuperFW diverges", name, h)
			}
			if ops != seq.Ops {
				t.Errorf("%s h=%d: ops %d vs sequential %d", name, h, ops, seq.Ops)
			}
		}
	}
}
