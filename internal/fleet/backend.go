package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Backend is the router's client for one apspd shard: a bounded
// admission slot pool, a retrying HTTP client, and the health state
// the prober maintains. All fields are atomics — the hot path
// (admission + load ordering) takes no locks.
type Backend struct {
	url         string
	client      *http.Client
	maxInFlight int64
	retries     int
	backoff     time.Duration

	inFlight atomic.Int64
	healthy  atomic.Bool
	fails    atomic.Int64 // consecutive probe failures

	requests    atomic.Int64 // proxied requests attempted
	errors      atomic.Int64 // proxied requests that failed after retries
	rejections  atomic.Int64 // admissions refused (saturated)
	ejections   atomic.Int64 // healthy → unhealthy transitions
	readmits    atomic.Int64 // unhealthy → healthy transitions
	probeFails  atomic.Int64 // probe attempts that failed
	retriesUsed atomic.Int64 // extra attempts beyond the first
}

func newBackend(url string, maxInFlight int, timeout time.Duration, retries int, backoff time.Duration) *Backend {
	b := &Backend{
		url:         url,
		client:      &http.Client{Timeout: timeout},
		maxInFlight: int64(maxInFlight),
		retries:     retries,
		backoff:     backoff,
	}
	// Start healthy: the router must be able to route before the first
	// probe round completes; a dead backend is ejected within
	// FailThreshold probes (or immediately on a transport error).
	b.healthy.Store(true)
	return b
}

// URL returns the backend's base URL.
func (b *Backend) URL() string { return b.url }

// Healthy reports the prober's current verdict.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// InFlight returns the admitted-but-unfinished request count — the
// load signal the replica picker orders candidates by.
func (b *Backend) InFlight() int64 { return b.inFlight.Load() }

// tryAcquire claims an admission slot, refusing when maxInFlight are
// already admitted. This is the backpressure boundary: the router
// turns a refusal on every replica into 429 + Retry-After instead of
// queueing unbounded work in front of a saturated backend.
func (b *Backend) tryAcquire() bool {
	for {
		cur := b.inFlight.Load()
		if cur >= b.maxInFlight {
			b.rejections.Add(1)
			return false
		}
		if b.inFlight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (b *Backend) release() { b.inFlight.Add(-1) }

// markUnhealthy records an ejection (idempotent per transition).
func (b *Backend) markUnhealthy() {
	if b.healthy.CompareAndSwap(true, false) {
		b.ejections.Add(1)
	}
}

// markHealthy records a re-admission (idempotent per transition).
func (b *Backend) markHealthy() {
	b.fails.Store(0)
	if b.healthy.CompareAndSwap(false, true) {
		b.readmits.Add(1)
	}
}

// retryableStatus reports whether a response status is worth retrying:
// transient gateway/availability failures only. 4xx (including 404 and
// 429) and handler-level 500s are deterministic answers, not noise.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do performs one proxied request with up to b.retries extra attempts
// on transport errors and retryable statuses, backing off linearly
// between attempts. It returns the final status and body, or an error
// when every attempt failed at the transport layer. Callers own
// admission (tryAcquire/release); do only moves bytes.
func (b *Backend) do(ctx context.Context, method, path, contentType string, body []byte) (int, []byte, error) {
	b.requests.Add(1)
	var lastErr error
	for attempt := 0; attempt <= b.retries; attempt++ {
		if attempt > 0 {
			b.retriesUsed.Add(1)
			select {
			case <-time.After(time.Duration(attempt) * b.backoff):
			case <-ctx.Done():
				b.errors.Add(1)
				return 0, nil, ctx.Err()
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, b.url+path, bytes.NewReader(body))
		if err != nil {
			b.errors.Add(1)
			return 0, nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := b.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if retryableStatus(resp.StatusCode) && attempt < b.retries {
			lastErr = fmt.Errorf("fleet: %s %s: backend status %d", method, path, resp.StatusCode)
			continue
		}
		return resp.StatusCode, data, nil
	}
	b.errors.Add(1)
	return 0, nil, fmt.Errorf("fleet: %s %s%s failed after %d attempts: %w", method, b.url, path, b.retries+1, lastErr)
}

// probe performs one readiness check against /readyz. It returns true
// on 200 within the timeout; anything else — transport error, 503
// (draining or not ready) — is a failure.
func (b *Backend) probe(timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := b.client.Do(req)
	if err != nil {
		b.probeFails.Add(1)
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.probeFails.Add(1)
		return false
	}
	return true
}

// BackendStats is one backend's section of the router /statsz report.
type BackendStats struct {
	URL         string `json:"url"`
	Healthy     bool   `json:"healthy"`
	InFlight    int64  `json:"in_flight"`
	MaxInFlight int64  `json:"max_in_flight"`
	Requests    int64  `json:"requests"`
	Errors      int64  `json:"errors"`
	Rejections  int64  `json:"rejections"`
	Ejections   int64  `json:"ejections"`
	Readmits    int64  `json:"readmits"`
	ProbeFails  int64  `json:"probe_fails"`
	Retries     int64  `json:"retries"`
}

// Stats returns the backend counters at this instant.
func (b *Backend) Stats() BackendStats {
	return BackendStats{
		URL:         b.url,
		Healthy:     b.healthy.Load(),
		InFlight:    b.inFlight.Load(),
		MaxInFlight: b.maxInFlight,
		Requests:    b.requests.Load(),
		Errors:      b.errors.Load(),
		Rejections:  b.rejections.Load(),
		Ejections:   b.ejections.Load(),
		Readmits:    b.readmits.Load(),
		ProbeFails:  b.probeFails.Load(),
		Retries:     b.retriesUsed.Load(),
	}
}
