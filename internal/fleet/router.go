package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparseapsp/internal/graph"
	"sparseapsp/internal/oracle"
	"sparseapsp/internal/server"
)

// Config configures a Router.
type Config struct {
	// Backends are the base URLs of the apspd shards (http://host:port).
	Backends []string
	// Replicas is the replication factor R: every graph is loaded onto
	// R distinct backends and reads fan out to the least-loaded healthy
	// replica. Capped at len(Backends); default 2.
	Replicas int
	// VNodes is the virtual-node count per backend on the hash ring;
	// default DefaultVNodes.
	VNodes int
	// CachePairs bounds the hot-pair cache in (fingerprint, src, dst)
	// entries; 0 means DefaultCachePairs, negative disables caching.
	CachePairs int
	// MaxInFlight bounds admitted-but-unfinished proxied requests per
	// backend; when every replica of a graph is saturated the router
	// answers 429 + Retry-After instead of queueing. Default 256.
	MaxInFlight int
	// ProbeInterval is the /readyz health-probe period; default 500ms.
	ProbeInterval time.Duration
	// FailThreshold is the consecutive probe failures that eject a
	// backend (a transport error on live traffic ejects immediately);
	// one probe success re-admits. Default 3.
	FailThreshold int
	// Timeout bounds each proxied attempt; default 120s (loads solve
	// graphs, which dwarfs query latency).
	Timeout time.Duration
	// Retries is the extra attempts per proxied request on transport
	// errors and 502/503/504, with linear Backoff between attempts.
	// Default 2 retries, 50ms backoff.
	Retries int
	Backoff time.Duration
}

// DefaultCachePairs is the default hot-pair cache capacity.
const DefaultCachePairs = 1 << 16

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > len(c.Backends) {
		c.Replicas = len(c.Backends)
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.CachePairs == 0 {
		c.CachePairs = DefaultCachePairs
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	return c
}

// endpointCounters is the per-route traffic section of router /statsz.
type endpointCounters struct {
	requests atomic.Int64
	errors   atomic.Int64
}

// Router is the fleet coordinator: an http.Handler exposing the same
// wire protocol as a single apspd backend (load / generate / query /
// reweight / statsz / healthz / readyz) over a sharded, replicated
// fleet. Graph fingerprints are placed on the consistent-hash ring,
// writes fan out to all R replicas, reads go to the least-loaded
// healthy replica, hot pairs are served from the PairCache without any
// backend round-trip, and saturation turns into 429 + Retry-After at
// the admission boundary.
type Router struct {
	cfg     Config
	ring    *Ring
	byURL   map[string]*Backend
	all     []*Backend // ring order (sorted URLs)
	cache   *PairCache
	mux     *http.ServeMux
	started time.Time

	// placements pins fingerprints to replica sets. Fresh loads follow
	// the ring, so the map only diverges from pure hashing after a
	// /reweight: the new fingerprint inherits the replicas that hold
	// the repaired oracle (content moved nowhere — the communication-
	// avoiding choice), which the ring alone cannot know.
	placeMu    sync.Mutex
	placements map[string][]string

	endpoints map[string]*endpointCounters
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewRouter builds the router and starts one health prober per
// backend. Call Close to stop the probers.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Backends, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:        cfg,
		ring:       ring,
		byURL:      make(map[string]*Backend),
		cache:      NewPairCache(cfg.CachePairs),
		mux:        http.NewServeMux(),
		started:    time.Now(),
		placements: make(map[string][]string),
		endpoints:  make(map[string]*endpointCounters),
		stop:       make(chan struct{}),
	}
	for _, u := range ring.Backends() {
		b := newBackend(u, cfg.MaxInFlight, cfg.Timeout, cfg.Retries, cfg.Backoff)
		rt.byURL[u] = b
		rt.all = append(rt.all, b)
	}
	rt.handle("load", "POST /load", rt.handleLoad)
	rt.handle("generate", "POST /generate", rt.handleGenerate)
	rt.handle("query", "POST /query", rt.handleQuery)
	rt.handle("reweight", "POST /reweight", rt.handleReweight)
	rt.handle("statsz", "GET /statsz", rt.handleStatsz)
	rt.handle("healthz", "GET /healthz", rt.handleHealthz)
	rt.handle("readyz", "GET /readyz", rt.handleReadyz)
	for _, b := range rt.all {
		rt.wg.Add(1)
		go rt.probeLoop(b)
	}
	return rt, nil
}

// Close stops the health probers. The router keeps serving (with
// frozen health state) until its http.Server shuts down.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

// Cache exposes the hot-pair cache (nil when disabled); the load-test
// harness reads its stats.
func (rt *Router) Cache() *PairCache { return rt.cache }

// probeLoop maintains one backend's health state: FailThreshold
// consecutive /readyz failures eject it, a single success re-admits.
func (rt *Router) probeLoop(b *Backend) {
	defer rt.wg.Done()
	timeout := rt.cfg.ProbeInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
		}
		if b.probe(timeout) {
			b.markHealthy()
		} else if b.fails.Add(1) >= int64(rt.cfg.FailThreshold) {
			b.markUnhealthy()
		}
	}
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// apiError mirrors the backend server's error carrier.
type apiError struct {
	status int
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }

func badRequest(format string, args ...interface{}) error {
	return &apiError{status: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// errSaturated is the admission-control refusal: every routable
// replica is at its in-flight bound.
var errSaturated = &apiError{status: http.StatusTooManyRequests, err: fmt.Errorf("all replicas saturated; retry later")}

func (rt *Router) handle(name, pattern string, h func(w http.ResponseWriter, r *http.Request) error) {
	ep := &endpointCounters{}
	rt.endpoints[name] = ep
	rt.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		ep.requests.Add(1)
		if err := h(w, r); err != nil {
			ep.errors.Add(1)
			status := http.StatusBadGateway
			if ae, ok := err.(*apiError); ok {
				status = ae.status
			}
			w.Header().Set("Content-Type", "application/json")
			if status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		}
	})
}

// passthrough relays a backend response verbatim, preserving the
// bit-identical-to-single-process contract for proxied answers.
func passthrough(w http.ResponseWriter, status int, body []byte) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, err := w.Write(body)
	return err
}

func writeJSON(w http.ResponseWriter, v interface{}) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// replicasFor resolves a fingerprint to its replica set: the recorded
// placement when one exists (reweighted graphs stay on the backends
// that hold the repaired oracle), else the ring placement.
func (rt *Router) replicasFor(fp string) []*Backend {
	rt.placeMu.Lock()
	urls, ok := rt.placements[fp]
	rt.placeMu.Unlock()
	if !ok {
		urls = rt.ring.Replicas(fp, rt.cfg.Replicas)
	}
	out := make([]*Backend, 0, len(urls))
	for _, u := range urls {
		if b, ok := rt.byURL[u]; ok {
			out = append(out, b)
		}
	}
	return out
}

func (rt *Router) recordPlacement(fp string, replicas []*Backend) {
	urls := make([]string, len(replicas))
	for i, b := range replicas {
		urls[i] = b.URL()
	}
	rt.placeMu.Lock()
	rt.placements[fp] = urls
	rt.placeMu.Unlock()
}

func (rt *Router) dropPlacement(fp string) {
	rt.placeMu.Lock()
	delete(rt.placements, fp)
	rt.placeMu.Unlock()
}

// orderForRead sorts candidate replicas for a read: healthy before
// unhealthy (an ejected backend is a last resort, not a dead end —
// probes may simply not have re-admitted it yet), least-loaded first
// within each class.
func orderForRead(replicas []*Backend) []*Backend {
	out := make([]*Backend, len(replicas))
	copy(out, replicas)
	sort.SliceStable(out, func(i, j int) bool {
		hi, hj := out[i].Healthy(), out[j].Healthy()
		if hi != hj {
			return hi
		}
		return out[i].InFlight() < out[j].InFlight()
	})
	return out
}

// forward sends a request to the best replica: candidates are tried in
// health/load order, admission is claimed per attempt, and a transport
// failure ejects the backend and moves on to the next replica. The
// error is errSaturated when every candidate refused admission, or a
// 502 when every admitted attempt failed.
func (rt *Router) forward(ctx context.Context, replicas []*Backend, method, path, contentType string, body []byte) (int, []byte, error) {
	if len(replicas) == 0 {
		return 0, nil, &apiError{status: http.StatusServiceUnavailable, err: fmt.Errorf("no backends available")}
	}
	saturated := 0
	var lastErr error
	for _, b := range orderForRead(replicas) {
		if !b.tryAcquire() {
			saturated++
			continue
		}
		status, data, err := b.do(ctx, method, path, contentType, body)
		b.release()
		if err != nil {
			// Transport-level failure after retries: eject now rather
			// than waiting FailThreshold probe periods, and fail over
			// to the next replica.
			b.markUnhealthy()
			lastErr = err
			continue
		}
		return status, data, nil
	}
	if saturated == len(replicas) {
		return 0, nil, errSaturated
	}
	return 0, nil, &apiError{status: http.StatusBadGateway, err: fmt.Errorf("all replicas failed: %v", lastErr)}
}

// fanout sends a write to every routable replica in parallel and
// returns the first successful (2xx) response plus the success count.
// Unhealthy replicas are skipped — they will miss this write, which
// the placement map and read failover tolerate (degraded, never
// wrong). With zero successes the first definitive backend response
// (if any) is relayed so clients see the real status, not a generic
// 502.
func (rt *Router) fanout(ctx context.Context, replicas []*Backend, method, path, contentType string, body []byte) (status int, data []byte, successes int, err error) {
	type result struct {
		status int
		data   []byte
		err    error
	}
	var routable []*Backend
	for _, b := range replicas {
		if b.Healthy() {
			routable = append(routable, b)
		}
	}
	if len(routable) == 0 {
		routable = replicas // all ejected: try anyway rather than refuse
	}
	if len(routable) == 0 {
		return 0, nil, 0, &apiError{status: http.StatusServiceUnavailable, err: fmt.Errorf("no backends available")}
	}
	results := make([]result, len(routable))
	var wg sync.WaitGroup
	for i, b := range routable {
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			if !b.tryAcquire() {
				results[i] = result{err: errSaturated}
				return
			}
			defer b.release()
			st, d, err := b.do(ctx, method, path, contentType, body)
			if err != nil {
				b.markUnhealthy()
			}
			results[i] = result{status: st, data: d, err: err}
		}(i, b)
	}
	wg.Wait()
	var firstResp *result
	for i := range results {
		r := &results[i]
		if r.err != nil {
			err = r.err
			continue
		}
		if r.status >= 200 && r.status < 300 {
			successes++
			if firstResp == nil || firstResp.status >= 300 {
				firstResp = r
			}
		} else if firstResp == nil {
			firstResp = r
		}
	}
	if firstResp != nil {
		return firstResp.status, firstResp.data, successes, nil
	}
	if ae, ok := err.(*apiError); ok {
		return 0, nil, 0, ae
	}
	return 0, nil, 0, &apiError{status: http.StatusBadGateway, err: fmt.Errorf("all replicas failed: %v", err)}
}

// registerBody places a parsed graph: the fingerprint is computed
// router-side (no backend has seen the graph yet — deterministic
// placement is what lets R routers agree without coordination), the
// body is fanned out to all R replicas, and the placement is recorded.
func (rt *Router) registerBody(w http.ResponseWriter, r *http.Request, fp string, contentType string, body []byte) error {
	replicas := rt.replicasFor(fp)
	status, data, successes, err := rt.fanout(r.Context(), replicas, http.MethodPost, r.URL.Path, contentType, body)
	if err != nil {
		return err
	}
	if successes > 0 {
		rt.recordPlacement(fp, replicas)
	}
	return passthrough(w, status, data)
}

func (rt *Router) handleLoad(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, server.MaxBodyBytes))
	if err != nil {
		return badRequest("reading body: %v", err)
	}
	g, err := server.ParseGraphBody(body)
	if err != nil {
		return badRequest("%v", err)
	}
	return rt.registerBody(w, r, oracle.FingerprintOf(g).String(), r.Header.Get("Content-Type"), body)
}

func (rt *Router) handleGenerate(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, server.MaxBodyBytes))
	if err != nil {
		return badRequest("reading body: %v", err)
	}
	var req server.GenerateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return badRequest("bad JSON: %v", err)
	}
	if req.N <= 0 {
		return badRequest("generate needs n > 0, got %d", req.N)
	}
	// Generating router-side costs O(n + m) — noise next to the solve —
	// and yields the fingerprint that decides placement.
	g, err := graph.NamedGenerator(req.Kind, req.N, req.Seed)
	if err != nil {
		return badRequest("%v", err)
	}
	return rt.registerBody(w, r, oracle.FingerprintOf(g).String(), "application/json", body)
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, server.MaxBodyBytes))
	if err != nil {
		return badRequest("reading body: %v", err)
	}
	var req server.QueryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return badRequest("bad JSON: %v", err)
	}
	if len(req.Pairs) == 0 {
		return badRequest("query needs at least one [u, v] pair")
	}
	if _, err := oracle.ParseFingerprint(req.Graph); err != nil {
		return badRequest("%v", err)
	}
	replicas := rt.replicasFor(req.Graph)

	// Path queries bypass the pair cache (it holds distances only).
	if rt.cache == nil || req.Paths {
		status, data, err := rt.forward(r.Context(), replicas, http.MethodPost, "/query", "application/json", body)
		if err != nil {
			return err
		}
		return passthrough(w, status, data)
	}

	// Distance-only: serve what the hot-pair cache holds and fetch
	// only the missing pairs. The generation is snapshotted before the
	// backend read so a concurrent reweight invalidation discards the
	// fill (see PairCache).
	gen := rt.cache.Gen(req.Graph)
	dists := make([]float64, len(req.Pairs))
	var missIdx []int
	for i, p := range req.Pairs {
		if d, ok := rt.cache.Get(req.Graph, p[0], p[1]); ok {
			dists[i] = d
		} else {
			missIdx = append(missIdx, i)
		}
	}
	if len(missIdx) > 0 {
		sub := server.QueryRequest{Graph: req.Graph, Pairs: make([][2]int, len(missIdx))}
		for j, i := range missIdx {
			sub.Pairs[j] = req.Pairs[i]
		}
		subBody, err := json.Marshal(sub)
		if err != nil {
			return err
		}
		status, data, err := rt.forward(r.Context(), replicas, http.MethodPost, "/query", "application/json", subBody)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			// The backend's verdict (404 unknown graph, 400 bad pair)
			// wins over any partial cache content.
			return passthrough(w, status, data)
		}
		var subResp server.QueryResponse
		if err := json.Unmarshal(data, &subResp); err != nil || len(subResp.Dists) != len(missIdx) {
			return &apiError{status: http.StatusBadGateway, err: fmt.Errorf("malformed backend query response")}
		}
		for j, i := range missIdx {
			dists[i] = subResp.Dists[j]
			rt.cache.Put(req.Graph, gen, req.Pairs[i][0], req.Pairs[i][1], subResp.Dists[j])
		}
	}
	return writeJSON(w, server.QueryResponse{Dists: dists})
}

func (rt *Router) handleReweight(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, server.MaxBodyBytes))
	if err != nil {
		return badRequest("reading body: %v", err)
	}
	var req server.ReweightRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return badRequest("bad JSON: %v", err)
	}
	if len(req.Edits) == 0 {
		return badRequest("reweight needs at least one [u, v, w] edit")
	}
	if _, err := oracle.ParseFingerprint(req.Graph); err != nil {
		return badRequest("%v", err)
	}
	replicas := rt.replicasFor(req.Graph)
	// The fan-out must complete on every routable replica before the
	// cache invalidation: invalidating while a replica still serves the
	// old fingerprint would let a fresh query re-fill old-fingerprint
	// entries that then outlive the swap.
	status, data, successes, err := rt.fanout(r.Context(), replicas, http.MethodPost, "/reweight", "application/json", body)
	if err != nil {
		return err
	}
	if successes == 0 || status != http.StatusOK {
		return passthrough(w, status, data)
	}
	var resp server.ReweightResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return &apiError{status: http.StatusBadGateway, err: fmt.Errorf("malformed backend reweight response")}
	}
	// The repaired oracle lives where the old one did — content moved
	// nowhere, so the new fingerprint inherits the old placement
	// rather than rehashing onto backends that never saw the graph.
	rt.recordPlacement(resp.Graph, replicas)
	rt.dropPlacement(req.Graph)
	// The swap is live on the backends: retire the old fingerprint's
	// cached pairs and fence out any in-flight pre-swap fills.
	rt.cache.Invalidate(req.Graph)
	return passthrough(w, status, data)
}

// RouterStatsz is the router's /statsz report: fleet-aggregated
// registry counters, per-backend health and traffic, hot-pair cache
// counters and per-endpoint router traffic.
type RouterStatsz struct {
	Mode          string  `json:"mode"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Replicas      int     `json:"replicas"`
	VNodes        int     `json:"vnodes"`
	Graphs        int     `json:"graphs"` // placements recorded by this router

	// Aggregate sums the registry sections of every reachable backend;
	// Unreachable lists the backends whose /statsz fetch failed.
	Aggregate   server.RegistrySnapshot            `json:"aggregate"`
	Registries  map[string]server.RegistrySnapshot `json:"registries"`
	Unreachable []string                           `json:"unreachable,omitempty"`

	Backends []BackendStats `json:"backends"`

	Cache        PairCacheStats              `json:"cache"`
	CacheHitRate float64                     `json:"cache_hit_rate"`
	Endpoints    map[string]EndpointCounters `json:"endpoints"`
}

// EndpointCounters is the JSON form of one router endpoint's traffic.
type EndpointCounters struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
}

// addRegistry accumulates b into a (entries, counters and latencies
// all sum; the budget sums too, as fleet capacity).
func addRegistry(a *server.RegistrySnapshot, b server.RegistrySnapshot) {
	a.Solves += b.Solves
	a.SolvesInFlight += b.SolvesInFlight
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Evictions += b.Evictions
	a.Demotions += b.Demotions
	a.Promotions += b.Promotions
	a.Entries += b.Entries
	a.Bytes += b.Bytes
	a.BudgetBytes += b.BudgetBytes
	a.CompressedEntries += b.CompressedEntries
	a.CompressedBytes += b.CompressedBytes
	a.CompressedBudgetBytes += b.CompressedBudgetBytes
	a.SolveMs += b.SolveMs
	a.QueriesServed += b.QueriesServed
	a.QueriesInFlight += b.QueriesInFlight
	a.QueryMs += b.QueryMs
	a.Reweights += b.Reweights
	a.RepairFallbacks += b.RepairFallbacks
	a.RepairMs += b.RepairMs
	a.PlanBuilds += b.PlanBuilds
	a.PlanHits += b.PlanHits
	a.PlanEntries += b.PlanEntries
	a.PlanBuildMs += b.PlanBuildMs
	a.PlanDiskHits += b.PlanDiskHits
	a.PlanDiskWrites += b.PlanDiskWrites
	a.PlanDiskErrors += b.PlanDiskErrors
	a.WordsMoved += b.WordsMoved
	for phase, w := range b.WordsByPhase {
		if a.WordsByPhase == nil {
			a.WordsByPhase = make(map[string]int64, len(b.WordsByPhase))
		}
		a.WordsByPhase[phase] += w
	}
}

func (rt *Router) handleStatsz(w http.ResponseWriter, r *http.Request) error {
	type fetched struct {
		url string
		st  server.StatszResponse
		err error
	}
	results := make([]fetched, len(rt.all))
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i, b := range rt.all {
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			results[i].url = b.URL()
			status, data, err := b.do(ctx, http.MethodGet, "/statsz", "", nil)
			if err != nil {
				results[i].err = err
				return
			}
			if status != http.StatusOK {
				results[i].err = fmt.Errorf("status %d", status)
				return
			}
			results[i].err = json.Unmarshal(data, &results[i].st)
		}(i, b)
	}
	wg.Wait()

	rt.placeMu.Lock()
	graphs := len(rt.placements)
	rt.placeMu.Unlock()

	resp := RouterStatsz{
		Mode:          "router",
		UptimeSeconds: time.Since(rt.started).Seconds(),
		Replicas:      rt.cfg.Replicas,
		VNodes:        rt.cfg.VNodes,
		Graphs:        graphs,
		Registries:    make(map[string]server.RegistrySnapshot, len(results)),
		Endpoints:     make(map[string]EndpointCounters, len(rt.endpoints)),
	}
	for _, f := range results {
		if f.err != nil {
			resp.Unreachable = append(resp.Unreachable, f.url)
			continue
		}
		resp.Registries[f.url] = f.st.Registry
		addRegistry(&resp.Aggregate, f.st.Registry)
	}
	for _, b := range rt.all {
		resp.Backends = append(resp.Backends, b.Stats())
	}
	resp.Cache = rt.cache.Stats()
	resp.CacheHitRate = resp.Cache.HitRate()
	for name, ep := range rt.endpoints {
		resp.Endpoints[name] = EndpointCounters{Requests: ep.requests.Load(), Errors: ep.errors.Load()}
	}
	return writeJSON(w, resp)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	return writeJSON(w, map[string]string{"status": "ok", "mode": "router"})
}

// handleReadyz: the router is ready while at least one backend is
// routable.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) error {
	healthy := 0
	for _, b := range rt.all {
		if b.Healthy() {
			healthy++
		}
	}
	if healthy == 0 {
		return &apiError{status: http.StatusServiceUnavailable,
			err: fmt.Errorf("0/%d backends healthy", len(rt.all))}
	}
	return writeJSON(w, map[string]string{
		"status":   "ready",
		"backends": fmt.Sprintf("%d/%d healthy", healthy, len(rt.all)),
	})
}

// String describes the fleet topology for logs.
func (rt *Router) String() string {
	return fmt.Sprintf("router over %d backends (R=%d, vnodes=%d, cache=%d pairs): %s",
		len(rt.all), rt.cfg.Replicas, rt.cfg.VNodes, rt.cfg.CachePairs,
		strings.Join(rt.ring.Backends(), ", "))
}
