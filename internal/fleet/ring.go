// Package fleet scales the single-process apspd oracle to a sharded,
// replicated backend fleet behind one router. It is the serving-side
// analogue of the paper's communication-avoiding block placement: graph
// fingerprints are consistent-hash-sharded across backends so each
// solved matrix lives on (and is only ever moved to) the replicas that
// serve it, hot (source, target) pairs are answered from a router-level
// cache without touching any backend, and admission control bounds the
// in-flight work each backend can be asked to absorb.
//
// The pieces:
//
//   - Ring: deterministic consistent hashing with virtual nodes
//     (placement survives router restarts, adding a shard moves ~1/N
//     of the keys);
//   - PairCache: the hot-pair LRU with generation-based invalidation
//     (Reweight's fingerprint swap can never serve a stale distance);
//   - Backend: one shard's client — bounded in-flight admission,
//     retry/backoff, health probing with ejection and re-admission;
//   - Router: the HTTP front-end gluing them together.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring over backend names with virtual
// nodes. Placement is a pure function of the backend list and vnode
// count — no RNG, no map-iteration order, no process identity — so two
// routers (or one router across restarts) place every fingerprint
// identically, and adding a shard moves only the keys whose arc the
// new shard's vnodes capture (~1/N of them), not a full reshuffle.
type Ring struct {
	backends []string // deduped, sorted
	vnodes   int
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	backend int // index into backends
}

// DefaultVNodes is the default virtual-node count per backend: enough
// to keep the max/mean load ratio small without making ring
// construction or lookup noticeable.
const DefaultVNodes = 128

// hash64 is the ring's hash: the first 8 bytes of sha256, so placement
// is stable across processes, platforms and Go versions (maphash and
// friends are seeded per-process, which would break determinism).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.LittleEndian.Uint64(sum[:8])
}

// NewRing builds a ring over the given backend names. Duplicates are
// collapsed; order does not matter. vnodes <= 0 means DefaultVNodes.
func NewRing(backends []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(backends))
	var uniq []string
	for _, b := range backends {
		if b == "" {
			return nil, fmt.Errorf("fleet: empty backend name")
		}
		if !seen[b] {
			seen[b] = true
			uniq = append(uniq, b)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one backend")
	}
	sort.Strings(uniq)
	r := &Ring{backends: uniq, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for bi, b := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Sprintf("%s#%d", b, v)),
				backend: bi,
			})
		}
	}
	// Ties broken by backend name so the order is total and identical
	// in every process.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.backends[r.points[i].backend] < r.backends[r.points[j].backend]
	})
	return r, nil
}

// Backends returns the deduped, sorted backend names.
func (r *Ring) Backends() []string {
	out := make([]string, len(r.backends))
	copy(out, r.backends)
	return out
}

// VNodes returns the virtual-node count per backend.
func (r *Ring) VNodes() int { return r.vnodes }

// Replicas returns the n distinct backends responsible for key, in
// ring order starting from the key's position: the first entry is the
// primary, the rest are the replicas a replication factor R > 1 fans
// writes out to. n is capped at the backend count.
func (r *Ring) Replicas(key string, n int) []string {
	if n > len(r.backends) {
		n = len(r.backends)
	}
	if n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.backend] {
			taken[p.backend] = true
			out = append(out, r.backends[p.backend])
		}
	}
	return out
}

// Primary returns the first backend responsible for key.
func (r *Ring) Primary(key string) string { return r.Replicas(key, 1)[0] }
