package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sparseapsp"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/oracle"
	"sparseapsp/internal/server"
)

// newBackendServer spins one in-process apspd shard.
func newBackendServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg := sparseapsp.NewOracleRegistry(sparseapsp.Options{Algorithm: sparseapsp.SeqFW}, 0)
	ts := httptest.NewServer(server.New(reg))
	t.Cleanup(ts.Close)
	return ts
}

// newFleet spins n backends plus a router in front of them. cfg's
// Backends field is filled in; zero-value fields take the defaults.
func newFleet(t *testing.T, n int, cfg Config) (*httptest.Server, *Router, []*httptest.Server) {
	t.Helper()
	backends := make([]*httptest.Server, n)
	for i := range backends {
		backends[i] = newBackendServer(t)
		cfg.Backends = append(cfg.Backends, backends[i].URL)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	return front, rt, backends
}

// post returns the raw status and body so tests can assert
// bit-identity, not just semantic equality.
func post(t *testing.T, url, path string, body interface{}) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// tryPost is post without t.Fatal, safe to call from test goroutines.
func tryPost(url, path string, body interface{}) (int, []byte, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

func get(t *testing.T, url, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func generate(t *testing.T, url, kind string, n int, seed int64) server.GraphInfo {
	t.Helper()
	status, data := post(t, url, "/generate", server.GenerateRequest{Kind: kind, N: n, Seed: seed})
	if status != http.StatusOK {
		t.Fatalf("generate: status %d: %s", status, data)
	}
	var info server.GraphInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

func allPairs(n int) [][2]int {
	var pairs [][2]int
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	return pairs
}

// The acceptance criterion of the fleet subsystem: a query answered
// through the router is byte-for-byte the answer a single direct apspd
// process gives — whether proxied, cache-assembled, or mixed.
func TestRouterBitIdenticalToDirect(t *testing.T) {
	front, rt, _ := newFleet(t, 3, Config{Replicas: 2, ProbeInterval: time.Hour})
	direct := newBackendServer(t)

	const kind, n, seed = "grid", 36, 7
	infoR := generate(t, front.URL, kind, n, seed)
	infoD := generate(t, direct.URL, kind, n, seed)
	if infoR.Graph != infoD.Graph {
		t.Fatalf("fingerprints diverge: router %s direct %s", infoR.Graph, infoD.Graph)
	}

	pairs := allPairs(infoR.N)
	req := server.QueryRequest{Graph: infoR.Graph, Pairs: pairs}
	// Three passes: the first is all-miss (backend fills), the rest are
	// cache-assembled — every one must match the direct answer.
	_, want := post(t, direct.URL, "/query", req)
	for pass := 0; pass < 3; pass++ {
		status, got := post(t, front.URL, "/query", req)
		if status != http.StatusOK {
			t.Fatalf("pass %d: status %d: %s", pass, status, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pass %d: router answer diverges from direct:\nrouter: %s\ndirect: %s", pass, got, want)
		}
	}
	if st := rt.Cache().Stats(); st.Hits == 0 {
		t.Fatalf("repeat passes produced no cache hits: %+v", st)
	}

	// Path queries bypass the cache and must proxy bit-identically too.
	reqP := server.QueryRequest{Graph: infoR.Graph, Pairs: pairs[:8], Paths: true}
	_, wantP := post(t, direct.URL, "/query", reqP)
	status, gotP := post(t, front.URL, "/query", reqP)
	if status != http.StatusOK || !bytes.Equal(gotP, wantP) {
		t.Fatalf("path query diverges (status %d):\nrouter: %s\ndirect: %s", status, gotP, wantP)
	}
}

// Reweight through the router: the new fingerprint answers exactly
// like a direct reweighted process, the old fingerprint 404s, and the
// hot-pair cache never serves a pre-swap distance — including under
// concurrent query load (run with -race).
func TestRouterReweightInvalidatesCache(t *testing.T) {
	front, rt, _ := newFleet(t, 2, Config{Replicas: 2, ProbeInterval: time.Hour})
	direct := newBackendServer(t)

	const kind, n, seed = "grid", 25, 3
	info := generate(t, front.URL, kind, n, seed)
	generate(t, direct.URL, kind, n, seed)

	// Warm the cache on every pair.
	pairs := allPairs(info.N)
	warm := server.QueryRequest{Graph: info.Graph, Pairs: pairs}
	if status, data := post(t, front.URL, "/query", warm); status != http.StatusOK {
		t.Fatalf("warm query: %d %s", status, data)
	}

	// Edits double the weight of a few existing edges. The same graph
	// is regenerated locally so the edits reference real edges.
	g, err := graph.NamedGenerator(kind, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	var edits [][3]float64
	for i, e := range g.Edges() {
		if i >= 5 {
			break
		}
		edits = append(edits, [3]float64{float64(e.U), float64(e.V), e.W * 2})
	}

	// Concurrent queriers hammer the pre-swap fingerprint while the
	// reweight lands. Every 200 they see must be internally consistent
	// for that fingerprint (content-addressed keys make wrong values
	// impossible; this asserts it): compare against the direct
	// backend's pre-swap answer. 404 after the swap is the other legal
	// outcome.
	_, preWant := post(t, direct.URL, "/query", warm)
	stopQueriers := make(chan struct{})
	var qwg sync.WaitGroup
	for w := 0; w < 4; w++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for {
				select {
				case <-stopQueriers:
					return
				default:
				}
				status, data, err := tryPost(front.URL, "/query", warm)
				if err != nil {
					t.Errorf("querier: %v", err)
					return
				}
				switch status {
				case http.StatusOK:
					if !bytes.Equal(data, preWant) {
						t.Errorf("pre-swap fingerprint served a non-pre-swap answer:\n%s", data)
						return
					}
				case http.StatusNotFound:
					// Swap landed; the old fingerprint is gone.
				default:
					t.Errorf("unexpected query status %d: %s", status, data)
					return
				}
			}
		}()
	}

	rwReq := server.ReweightRequest{Graph: info.Graph, Edits: edits}
	status, rwBody := post(t, front.URL, "/reweight", rwReq)
	close(stopQueriers)
	qwg.Wait()
	if status != http.StatusOK {
		t.Fatalf("reweight: %d %s", status, rwBody)
	}
	var rw server.ReweightResponse
	if err := json.Unmarshal(rwBody, &rw); err != nil {
		t.Fatal(err)
	}
	if rw.Graph == info.Graph {
		t.Fatal("reweight did not change the fingerprint")
	}

	// After the swap: old fingerprint 404s through the router (both
	// the cache and every backend must refuse it)...
	if status, data := post(t, front.URL, "/query", warm); status != http.StatusNotFound {
		t.Fatalf("old fingerprint still answers after reweight: %d %s", status, data)
	}
	// ...and the new fingerprint answers bit-identically to a direct
	// process that applied the same reweight — twice, so the second
	// pass is served from cache fills made after the swap.
	if status, data := post(t, direct.URL, "/reweight", rwReq); status != http.StatusOK {
		t.Fatalf("direct reweight: %d %s", status, data)
	}
	newReq := server.QueryRequest{Graph: rw.Graph, Pairs: pairs}
	_, want := post(t, direct.URL, "/query", newReq)
	for pass := 0; pass < 2; pass++ {
		status, got := post(t, front.URL, "/query", newReq)
		if status != http.StatusOK || !bytes.Equal(got, want) {
			t.Fatalf("pass %d: post-reweight answer diverges (status %d):\nrouter: %s\ndirect: %s",
				pass, status, got, want)
		}
	}
	if st := rt.Cache().Stats(); st.Invalidations == 0 {
		t.Fatalf("reweight did not invalidate the cache: %+v", st)
	}
}

// Killing one backend must not lose replicated graphs: reads fail over
// to the surviving replica, the dead backend is ejected, and the
// router stays ready.
func TestRouterBackendFailover(t *testing.T) {
	front, rt, backends := newFleet(t, 2, Config{Replicas: 2, ProbeInterval: time.Hour,
		Retries: -1 /* no retries: fail over immediately */})

	info := generate(t, front.URL, "grid", 16, 1)
	pairs := allPairs(info.N)
	req := server.QueryRequest{Graph: info.Graph, Pairs: pairs}
	_, want := post(t, front.URL, "/query", req)

	// Kill the replica the router will try FIRST (placement order is
	// preserved by the load-ordered picker when all else is equal), so
	// the query is guaranteed to trip over the corpse and fail over.
	rt.placeMu.Lock()
	first := rt.placements[info.Graph][0]
	rt.placeMu.Unlock()
	for _, ts := range backends {
		if ts.URL == first {
			ts.Close()
		}
	}

	// With R=2 every graph lives on both backends, so the query must
	// still answer — identically. Invalidate the cache first to force
	// real backend reads.
	rt.Cache().Invalidate(info.Graph)
	gotStatus, got := post(t, front.URL, "/query", req)
	if gotStatus != http.StatusOK {
		t.Fatalf("query after backend death: %d %s", gotStatus, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("failover answer diverges:\nbefore: %s\nafter:  %s", want, got)
	}

	// The dead backend was ejected on its transport error.
	ejected := false
	for _, b := range rt.all {
		if !b.Healthy() {
			ejected = true
		}
	}
	if !ejected {
		t.Fatal("no backend was ejected after transport failure")
	}
	if status, _ := get(t, front.URL, "/readyz"); status != http.StatusOK {
		t.Fatalf("router not ready with one surviving backend: %d", status)
	}
}

// When every backend is gone the router reports not-ready and queries
// fail with 502, not hangs.
func TestRouterAllBackendsDown(t *testing.T) {
	front, _, backends := newFleet(t, 1, Config{ProbeInterval: time.Hour, Retries: -1})
	info := generate(t, front.URL, "path", 8, 1)
	backends[0].Close()

	status, data := post(t, front.URL, "/query",
		server.QueryRequest{Graph: info.Graph, Pairs: [][2]int{{0, 1}}, Paths: true})
	if status != http.StatusBadGateway {
		t.Fatalf("query with dead fleet: %d %s", status, data)
	}
	if status, _ := get(t, front.URL, "/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead fleet: %d", status)
	}
	if status, _ := get(t, front.URL, "/healthz"); status != http.StatusOK {
		t.Fatalf("healthz must stay 200 (liveness, not readiness): %d", status)
	}
}

// Admission control: when every replica of a graph is at its in-flight
// bound the router answers 429 + Retry-After instead of queueing.
func TestRouterAdmission429(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" || r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		<-release // hold the router's admission slot
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"dists":[0]}`)
	}))
	defer slow.Close()

	rt, err := NewRouter(Config{Backends: []string{slow.URL}, MaxInFlight: 1,
		ProbeInterval: time.Hour, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt)
	defer front.Close()

	fp := oracle.FingerprintOf(graph.New(1)).String()
	req, _ := json.Marshal(server.QueryRequest{Graph: fp, Pairs: [][2]int{{0, 0}}, Paths: true})

	// First query occupies the only slot...
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		http.Post(front.URL+"/query", "application/json", bytes.NewReader(req))
	}()
	// ...wait until it is admitted...
	deadline := time.Now().Add(5 * time.Second)
	for rt.all[0].InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first query was never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	// ...so the second is refused with backpressure semantics.
	resp, err := http.Post(front.URL+"/query", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated fleet answered %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	once.Do(func() { close(release) })
	<-firstDone
}

// /statsz aggregates the fleet: per-backend registries, their sum, the
// cache and the ring topology.
func TestRouterStatszAggregates(t *testing.T) {
	front, _, _ := newFleet(t, 2, Config{Replicas: 1, ProbeInterval: time.Hour})

	// Two graphs so that (very likely) both shards see work; R=1 keeps
	// each on exactly one shard.
	var infos []server.GraphInfo
	for seed := int64(1); seed <= 4; seed++ {
		infos = append(infos, generate(t, front.URL, "path", 12, seed))
	}
	for _, info := range infos {
		post(t, front.URL, "/query", server.QueryRequest{Graph: info.Graph, Pairs: [][2]int{{0, 5}}})
	}

	status, data := get(t, front.URL, "/statsz")
	if status != http.StatusOK {
		t.Fatalf("statsz: %d %s", status, data)
	}
	var st RouterStatsz
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "router" || len(st.Backends) != 2 || len(st.Registries) != 2 {
		t.Fatalf("statsz topology wrong: %+v", st)
	}
	if st.Aggregate.Solves != 4 {
		t.Fatalf("aggregate solves = %d, want 4 (one per generated graph)", st.Aggregate.Solves)
	}
	var sum int64
	for _, reg := range st.Registries {
		sum += reg.Solves
	}
	if sum != st.Aggregate.Solves {
		t.Fatalf("aggregate (%d) != sum of per-backend (%d)", st.Aggregate.Solves, sum)
	}
	if st.Graphs != 4 {
		t.Fatalf("router tracks %d placements, want 4", st.Graphs)
	}
	if st.Endpoints["generate"].Requests != 4 {
		t.Fatalf("endpoint counters wrong: %+v", st.Endpoints)
	}
}

// Placement is deterministic and replicated: the router records R
// distinct replicas per fingerprint, agreeing with the ring.
func TestRouterPlacementFollowsRing(t *testing.T) {
	_, rt, _ := newFleet(t, 3, Config{Replicas: 2, ProbeInterval: time.Hour})
	front := httptest.NewServer(rt)
	defer front.Close()

	info := generate(t, front.URL, "grid", 16, 9)
	rt.placeMu.Lock()
	placed := rt.placements[info.Graph]
	rt.placeMu.Unlock()
	want := rt.ring.Replicas(info.Graph, 2)
	if len(placed) != 2 || placed[0] != want[0] || placed[1] != want[1] {
		t.Fatalf("placement %v diverges from ring %v", placed, want)
	}
	// Both replicas actually hold the graph: ask each directly.
	for _, u := range placed {
		status, data := post(t, u, "/query",
			server.QueryRequest{Graph: info.Graph, Pairs: [][2]int{{0, 1}}})
		if status != http.StatusOK {
			t.Fatalf("replica %s does not hold %s: %d %s", u, info.Graph, status, data)
		}
	}
}
