package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real keys: hex-ish fingerprint strings.
		keys[i] = fmt.Sprintf("sha256:%032x", i*2654435761)
	}
	return keys
}

// Determinism: two rings built from the same backends — in different
// input order, with duplicates — place every key identically. This is
// the property that lets placement survive router restarts.
func TestRingDeterministicAcrossRestarts(t *testing.T) {
	a, err := NewRing([]string{"http://b1:80", "http://b2:80", "http://b3:80"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://b3:80", "http://b1:80", "http://b2:80", "http://b1:80"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Backends(), b.Backends()) {
		t.Fatalf("backend sets differ: %v vs %v", a.Backends(), b.Backends())
	}
	for _, k := range ringKeys(2000) {
		ra, rb := a.Replicas(k, 2), b.Replicas(k, 2)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("key %s: placements differ: %v vs %v", k, ra, rb)
		}
	}
}

// Minimal movement: adding one backend to an N-shard ring must move at
// most ~2/N of the primaries (theoretical expectation 1/(N+1); the 2/N
// bound leaves room for hash variance), and every key that moved must
// have moved TO the new backend — consistent hashing never shuffles
// keys between old shards.
func TestRingAddShardMovesFewKeys(t *testing.T) {
	const n = 8
	var backends []string
	for i := 0; i < n; i++ {
		backends = append(backends, fmt.Sprintf("http://shard%d:80", i))
	}
	before, err := NewRing(backends, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(append(backends, "http://shard-new:80"), DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys(5000)
	moved := 0
	for _, k := range keys {
		pb, pa := before.Primary(k), after.Primary(k)
		if pb == pa {
			continue
		}
		moved++
		if pa != "http://shard-new:80" {
			t.Fatalf("key %s moved between existing shards: %s -> %s", k, pb, pa)
		}
	}
	if limit := 2 * len(keys) / n; moved > limit {
		t.Fatalf("adding 1 shard to %d moved %d/%d keys, want <= %d", n, moved, len(keys), limit)
	}
	if moved == 0 {
		t.Fatal("adding a shard moved no keys; ring is not spreading load")
	}
}

// Replica sets contain n distinct backends, the primary first, and cap
// at the backend count.
func TestRingReplicaSetsDistinct(t *testing.T) {
	r, err := NewRing([]string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(500) {
		reps := r.Replicas(k, 3)
		if len(reps) != 3 {
			t.Fatalf("key %s: got %d replicas, want 3", k, len(reps))
		}
		seen := map[string]bool{}
		for _, b := range reps {
			if seen[b] {
				t.Fatalf("key %s: duplicate replica %s in %v", k, b, reps)
			}
			seen[b] = true
		}
		if reps[0] != r.Primary(k) {
			t.Fatalf("key %s: Replicas[0]=%s != Primary=%s", k, reps[0], r.Primary(k))
		}
	}
	if got := r.Replicas("k", 99); len(got) != 4 {
		t.Fatalf("over-asking replicas: got %d, want backend count 4", len(got))
	}
}

// Balance sanity: with vnodes on, no backend owns a wildly
// disproportionate share of primaries.
func TestRingRoughBalance(t *testing.T) {
	r, err := NewRing([]string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := ringKeys(8000)
	for _, k := range keys {
		counts[r.Primary(k)]++
	}
	mean := len(keys) / 4
	for b, c := range counts {
		if c < mean/3 || c > 3*mean {
			t.Fatalf("backend %s owns %d/%d primaries (mean %d): too imbalanced", b, c, len(keys), mean)
		}
	}
}

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty backend list accepted")
	}
	if _, err := NewRing([]string{"http://a:1", ""}, 8); err == nil {
		t.Fatal("empty backend name accepted")
	}
}
