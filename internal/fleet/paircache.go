package fleet

import (
	"container/list"
	"sync"
)

// PairCache is the router's hot-pair result cache: an LRU over
// (fingerprint, source, target) → distance, sized in pairs. Most road
// and social traffic concentrates on a tiny pair set, so answering the
// head of that distribution at the router avoids a backend round-trip
// entirely — the serving-side version of "move only the bytes a
// consumer can actually use".
//
// Correctness rests on two properties:
//
//   - Fingerprints are content hashes, so a cached distance can never
//     be numerically wrong for its fingerprint; the only staleness
//     hazard is liveness — serving a fingerprint the backends already
//     404 after Reweight's atomic swap.
//   - Invalidate closes that hazard with a per-fingerprint generation:
//     it bumps the generation and drops the fingerprint's entries in
//     one critical section, and every fill must present the generation
//     it observed *before* its backend read (Gen). A fill that raced a
//     swap carries a stale generation and is discarded, so once
//     Invalidate returns, no pre-swap read can ever re-populate the
//     fingerprint — the "no stale pair is ever served" contract the
//     -race tests pin down.
//
// All methods are safe for concurrent use. A nil *PairCache is a valid
// always-miss cache, so callers can disable caching by configuration
// without branching at every call site.
type PairCache struct {
	mu   sync.Mutex
	cap  int
	lru  *list.List             // of *pairEntry; front = most recent
	byFP map[string]*pairBucket // fingerprint → generation + entries

	hits          int64
	misses        int64
	stalePuts     int64
	evictions     int64
	invalidations int64
}

type pairBucket struct {
	gen     uint64
	entries map[pairKey]*list.Element
}

type pairKey struct{ u, v int }

type pairEntry struct {
	fp   string
	key  pairKey
	dist float64
}

// NewPairCache returns a cache holding at most capacity pairs;
// capacity <= 0 returns nil (caching disabled — nil is a safe
// always-miss receiver).
func NewPairCache(capacity int) *PairCache {
	if capacity <= 0 {
		return nil
	}
	return &PairCache{
		cap:  capacity,
		lru:  list.New(),
		byFP: make(map[string]*pairBucket),
	}
}

// Gen returns the fingerprint's current invalidation generation. A
// filler must call Gen before issuing its backend read and pass the
// value to Put: the pair (generation, backend answer) is what makes
// the fill safe against a concurrent Invalidate.
func (c *PairCache) Gen(fp string) uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.byFP[fp]; ok {
		return b.gen
	}
	return 0
}

// Get returns the cached distance for (fp, u, v) and refreshes its LRU
// position.
func (c *PairCache) Get(fp string, u, v int) (float64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.byFP[fp]
	if !ok {
		c.misses++
		return 0, false
	}
	el, ok := b.entries[pairKey{u, v}]
	if !ok {
		c.misses++
		return 0, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*pairEntry).dist, true
}

// Put inserts a distance filled from a backend read that observed
// generation gen (see Gen). A stale generation — an Invalidate ran
// between the Gen call and now — discards the fill.
func (c *PairCache) Put(fp string, gen uint64, u, v int, dist float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.byFP[fp]
	if !ok {
		if gen != 0 {
			c.stalePuts++
			return
		}
		b = &pairBucket{entries: make(map[pairKey]*list.Element)}
		c.byFP[fp] = b
	}
	if b.gen != gen {
		c.stalePuts++
		return
	}
	k := pairKey{u, v}
	if el, ok := b.entries[k]; ok {
		el.Value.(*pairEntry).dist = dist
		c.lru.MoveToFront(el)
		return
	}
	b.entries[k] = c.lru.PushFront(&pairEntry{fp: fp, key: k, dist: dist})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		e := back.Value.(*pairEntry)
		c.lru.Remove(back)
		c.removeEntryLocked(e)
		c.evictions++
	}
}

// removeEntryLocked drops e from its bucket, retiring the bucket when
// it holds no entries and no invalidation history (generation 0
// buckets carry no information).
func (c *PairCache) removeEntryLocked(e *pairEntry) {
	b, ok := c.byFP[e.fp]
	if !ok {
		return
	}
	delete(b.entries, e.key)
	if len(b.entries) == 0 && b.gen == 0 {
		delete(c.byFP, e.fp)
	}
}

// Invalidate atomically retires a fingerprint: its entries are dropped
// and its generation bumped in one critical section, so in-flight
// fills that read the backend before the swap can never land (their
// Put carries the old generation). Called by the router the moment a
// /reweight response confirms the backends swapped fingerprints.
func (c *PairCache) Invalidate(fp string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.byFP[fp]
	if !ok {
		// Never cached, but the generation bump must still be recorded
		// so a fill racing this call is rejected.
		c.byFP[fp] = &pairBucket{gen: 1, entries: make(map[pairKey]*list.Element)}
		c.invalidations++
		return
	}
	for _, el := range b.entries {
		c.lru.Remove(el)
	}
	b.entries = make(map[pairKey]*list.Element)
	b.gen++
	c.invalidations++
}

// PairCacheStats is a snapshot of the cache counters.
type PairCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	StalePuts     int64 `json:"stale_puts"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Capacity      int   `json:"capacity"`
}

// HitRate returns hits / (hits + misses), 0 with no traffic.
func (s PairCacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats returns the cache counters at this instant. A nil cache
// reports zeroes.
func (c *PairCache) Stats() PairCacheStats {
	if c == nil {
		return PairCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return PairCacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		StalePuts:     c.stalePuts,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.lru.Len(),
		Capacity:      c.cap,
	}
}
