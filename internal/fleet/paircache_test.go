package fleet

import (
	"fmt"
	"sync"
	"testing"
)

func TestPairCacheHitMissEvict(t *testing.T) {
	c := NewPairCache(3)
	if _, ok := c.Get("fpA", 0, 1); ok {
		t.Fatal("hit on empty cache")
	}
	gen := c.Gen("fpA")
	c.Put("fpA", gen, 0, 1, 1.5)
	c.Put("fpA", gen, 0, 2, 2.5)
	c.Put("fpB", c.Gen("fpB"), 0, 1, 9.0)
	if d, ok := c.Get("fpA", 0, 1); !ok || d != 1.5 {
		t.Fatalf("Get(fpA,0,1) = %v,%v want 1.5,true", d, ok)
	}
	// Cache is full; (fpA,0,2) is now the LRU entry. One more Put
	// evicts it.
	c.Put("fpB", c.Gen("fpB"), 3, 4, 4.0)
	if _, ok := c.Get("fpA", 0, 2); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if d, ok := c.Get("fpA", 0, 1); !ok || d != 1.5 {
		t.Fatal("recently-used entry was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Capacity != 3 {
		t.Fatalf("stats = %+v, want 1 eviction, 3 entries, cap 3", st)
	}
}

// The generation fence: a Put whose Gen was snapshotted before an
// Invalidate must be discarded — this is what makes a backend read
// racing a reweight swap harmless.
func TestPairCacheStaleGenerationRejected(t *testing.T) {
	c := NewPairCache(16)
	gen := c.Gen("fp") // filler snapshots generation...
	c.Invalidate("fp") // ...swap lands...
	c.Put("fp", gen, 0, 1, 3.0)
	if _, ok := c.Get("fp", 0, 1); ok {
		t.Fatal("stale-generation fill landed after Invalidate")
	}
	if st := c.Stats(); st.StalePuts != 1 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v, want 1 stale put, 1 invalidation", st)
	}
	// A fill that observed the post-swap generation lands fine.
	c.Put("fp", c.Gen("fp"), 0, 1, 4.0)
	if d, ok := c.Get("fp", 0, 1); !ok || d != 4.0 {
		t.Fatalf("fresh-generation fill lost: %v %v", d, ok)
	}
}

func TestPairCacheInvalidateDropsOnlyThatFingerprint(t *testing.T) {
	c := NewPairCache(16)
	c.Put("keep", c.Gen("keep"), 1, 2, 1.0)
	c.Put("drop", c.Gen("drop"), 1, 2, 2.0)
	c.Put("drop", c.Gen("drop"), 3, 4, 3.0)
	c.Invalidate("drop")
	if _, ok := c.Get("drop", 1, 2); ok {
		t.Fatal("invalidated entry served")
	}
	if _, ok := c.Get("drop", 3, 4); ok {
		t.Fatal("invalidated entry served")
	}
	if d, ok := c.Get("keep", 1, 2); !ok || d != 1.0 {
		t.Fatal("unrelated fingerprint was invalidated")
	}
}

// A nil cache (capacity <= 0) is a valid always-miss receiver.
func TestPairCacheNilReceiver(t *testing.T) {
	c := NewPairCache(0)
	if c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	c.Put("fp", c.Gen("fp"), 0, 1, 1.0)
	if _, ok := c.Get("fp", 0, 1); ok {
		t.Fatal("nil cache returned a hit")
	}
	c.Invalidate("fp")
	if st := c.Stats(); st != (PairCacheStats{}) {
		t.Fatalf("nil cache stats = %+v, want zeroes", st)
	}
}

// Concurrent fills, reads and invalidations under -race; the invariant
// checked at the end is that no fingerprint that was invalidated last
// still holds entries filled with a pre-invalidation generation.
func TestPairCacheConcurrent(t *testing.T) {
	c := NewPairCache(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fp := fmt.Sprintf("fp%d", w%4)
			for i := 0; i < 500; i++ {
				switch i % 7 {
				case 6:
					c.Invalidate(fp)
				case 5:
					c.Stats()
				default:
					gen := c.Gen(fp)
					c.Get(fp, i%16, (i+1)%16)
					c.Put(fp, gen, i%16, (i+1)%16, float64(i))
				}
			}
		}(w)
	}
	wg.Wait()
	// Final sweep: after a last invalidation nothing may be served.
	for w := 0; w < 4; w++ {
		fp := fmt.Sprintf("fp%d", w)
		c.Invalidate(fp)
		for u := 0; u < 16; u++ {
			for v := 0; v < 16; v++ {
				if _, ok := c.Get(fp, u, v); ok {
					t.Fatalf("%s (%d,%d) served after invalidation", fp, u, v)
				}
			}
		}
	}
}
