package comm

import (
	"testing"
	"time"
)

func TestSendRecvDeliversPayload(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
				t.Errorf("rank 1 got %v, want [1 2 3]", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingIsFIFOPerSourceAndTag(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(c *Ctx) {
		switch c.Rank() {
		case 0:
			c.Send(1, 1, []float64{10})
			c.Send(1, 2, []float64{20})
			c.Send(1, 1, []float64{11})
		case 1:
			// Receive out of send order across tags, in order within a tag.
			if got := c.Recv(0, 2); got[0] != 20 {
				t.Errorf("tag 2: got %v, want [20]", got)
			}
			if got := c.Recv(0, 1); got[0] != 10 {
				t.Errorf("tag 1 first: got %v, want [10]", got)
			}
			if got := c.Recv(0, 1); got[0] != 11 {
				t.Errorf("tag 1 second: got %v, want [11]", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A chain of k sequential messages has critical-path latency k (each
// hop's receive extends the chain by one message).
func TestCriticalPathChainLatency(t *testing.T) {
	const p = 8
	m := NewMachine(p)
	err := m.Run(func(c *Ctx) {
		r := c.Rank()
		if r > 0 {
			c.Recv(r-1, 0)
		}
		if r < p-1 {
			c.Send(r+1, 0, []float64{1})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	got := m.CriticalPath().Latency
	if got != p-1 {
		t.Errorf("chain critical latency = %d, want %d", got, p-1)
	}
}

// Messages between disjoint pairs at the same time are counted once
// (assumption 3: independent links).
func TestCriticalPathParallelPairsCountOnce(t *testing.T) {
	const pairs = 16
	m := NewMachine(2 * pairs)
	err := m.Run(func(c *Ctx) {
		r := c.Rank()
		if r%2 == 0 {
			c.Send(r+1, 0, []float64{1, 2})
		} else {
			c.Recv(r-1, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cp := m.CriticalPath()
	if cp.Latency != 1 {
		t.Errorf("parallel pairs critical latency = %d, want 1", cp.Latency)
	}
	if cp.Bandwidth != 2 {
		t.Errorf("parallel pairs critical bandwidth = %d, want 2", cp.Bandwidth)
	}
}

// A single rank sending k messages serializes them (assumption 2).
func TestCriticalPathSenderSerializes(t *testing.T) {
	const p = 9
	m := NewMachine(p)
	err := m.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			for dst := 1; dst < p; dst++ {
				c.Send(dst, 0, []float64{1})
			}
		} else {
			c.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CriticalPath().Latency; got != p-1 {
		t.Errorf("fan-out critical latency = %d, want %d", got, p-1)
	}
}

// A single rank receiving k messages serializes them too.
func TestCriticalPathReceiverSerializes(t *testing.T) {
	const p = 9
	m := NewMachine(p)
	err := m.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			for src := 1; src < p; src++ {
				c.Recv(src, 0)
			}
		} else {
			c.Send(0, 0, []float64{1})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CriticalPath().Latency; got != p-1 {
		t.Errorf("fan-in critical latency = %d, want %d", got, p-1)
	}
}

func TestFlopsPropagateThroughMessages(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			c.AddFlops(100)
			c.Send(1, 0, []float64{1})
		} else {
			c.Recv(0, 0)
			c.AddFlops(50)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CriticalPath().Flops; got != 150 {
		t.Errorf("critical flops = %d, want 150 (dependent work adds up)", got)
	}
}

func TestIndependentFlopsDoNotAddUp(t *testing.T) {
	m := NewMachine(4)
	err := m.Run(func(c *Ctx) {
		c.AddFlops(int64(10 * (c.Rank() + 1)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CriticalPath().Flops; got != 40 {
		t.Errorf("critical flops = %d, want 40 (max over independent ranks)", got)
	}
}

func TestMemoryPeakTracking(t *testing.T) {
	m := NewMachine(3)
	err := m.Run(func(c *Ctx) {
		c.SetMemory(int64(100 * (c.Rank() + 1)))
		c.AddMemory(-50)
		c.AddMemory(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	if rep.MaxMemory != 300 {
		t.Errorf("max memory = %d, want 300", rep.MaxMemory)
	}
	if rep.PeakWords[0] != 100 {
		t.Errorf("rank 0 peak = %d, want 100", rep.PeakWords[0])
	}
}

func TestRunReportsPanics(t *testing.T) {
	m := NewMachine(1)
	err := m.Run(func(c *Ctx) {
		panic("boom")
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestRunReportsUnreceivedMessages(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1})
		}
	})
	if err == nil {
		t.Fatal("expected error for unreceived message")
	}
}

func TestResetClearsState(t *testing.T) {
	m := NewMachine(2)
	if err := m.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2, 3})
		} else {
			c.Recv(0, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	cp := m.CriticalPath()
	if cp.Latency != 0 || cp.Bandwidth != 0 || cp.Flops != 0 {
		t.Errorf("after reset critical path = %v, want zero", cp)
	}
}

// TestResetClearsWatchCounters is the regression test for the Reset
// bug where the taken/blocked watch counters survived a reset: the
// watchdog samples those counters to detect progress, so stale values
// from a previous run skew its deadlock verdicts on the next one.
func TestResetClearsWatchCounters(t *testing.T) {
	m := NewMachine(2)
	if err := m.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2, 3})
		} else {
			c.Recv(0, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.ws.taken.Load(); got == 0 {
		t.Fatal("test program should have taken at least one message")
	}
	m.Reset()
	if got := m.ws.taken.Load(); got != 0 {
		t.Errorf("after reset taken = %d, want 0", got)
	}
	if got := m.ws.blocked.Load(); got != 0 {
		t.Errorf("after reset blocked = %d, want 0", got)
	}
	if got := m.ws.delivered.Load(); got != 0 {
		t.Errorf("after reset delivered = %d, want 0", got)
	}
	if got := m.ws.finished.Load(); got != 0 {
		t.Errorf("after reset finished = %d, want 0", got)
	}
	if m.ws.poisoned.Load() {
		t.Error("after reset poisoned = true, want false")
	}
	// The reused machine must still run (and its watchdog must still
	// tolerate) a message-heavy program.
	if err := m.Run(func(c *Ctx) {
		for i := 0; i < 50; i++ {
			if c.Rank() == 0 {
				c.Send(1, i, []float64{float64(i)})
			} else {
				c.Recv(0, i)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalCountersAggregate(t *testing.T) {
	m := NewMachine(3)
	if err := m.Run(func(c *Ctx) {
		switch c.Rank() {
		case 0:
			c.Send(1, 0, []float64{1, 2})
			c.Send(2, 0, []float64{3})
		case 1:
			c.Recv(0, 0)
		case 2:
			c.Recv(0, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	if rep.TotalMessages != 2 {
		t.Errorf("total messages = %d, want 2", rep.TotalMessages)
	}
	if rep.TotalWords != 3 {
		t.Errorf("total words = %d, want 3", rep.TotalWords)
	}
}

func TestGridRoundTrip(t *testing.T) {
	g, err := NewSquareGrid(49)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 7 || g.Cols != 7 {
		t.Fatalf("grid = %dx%d, want 7x7", g.Rows, g.Cols)
	}
	for r := 0; r < 49; r++ {
		i, j := g.Coords(r)
		if g.Rank(i, j) != r {
			t.Errorf("coords/rank mismatch at %d", r)
		}
	}
	if _, err := NewSquareGrid(10); err == nil {
		t.Error("expected error for non-square p")
	}
	row := g.RowRanks(2)
	if len(row) != 7 || row[0] != 14 || row[6] != 20 {
		t.Errorf("row 2 ranks = %v", row)
	}
	col := g.ColRanks(3)
	if len(col) != 7 || col[0] != 3 || col[6] != 45 {
		t.Errorf("col 3 ranks = %v", col)
	}
}

func TestCostHelpers(t *testing.T) {
	a := Cost{Latency: 1, Bandwidth: 5, Flops: 10}
	b := Cost{Latency: 3, Bandwidth: 2, Flops: 10}
	mx := Max(a, b)
	if mx != (Cost{Latency: 3, Bandwidth: 5, Flops: 10}) {
		t.Errorf("Max = %v", mx)
	}
	sum := Add(a, b)
	if sum != (Cost{Latency: 4, Bandwidth: 7, Flops: 20}) {
		t.Errorf("Add = %v", sum)
	}
}

// A deliberate deadlock (everyone receives, nobody sends) must be
// detected by the watchdog and surfaced as an error, not a hang.
func TestDeadlockDetected(t *testing.T) {
	m := NewMachine(3)
	done := make(chan error, 1)
	go func() {
		done <- m.Run(func(c *Ctx) {
			c.Recv((c.Rank()+1)%3, 99)
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("deadlocked run returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog did not fire within 10s")
	}
}

// A slow-but-progressing program must NOT be killed by the watchdog.
func TestWatchdogToleratesSlowProgress(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(c *Ctx) {
		for round := 0; round < 3; round++ {
			if c.Rank() == 0 {
				time.Sleep(30 * time.Millisecond)
				c.Send(1, round, []float64{1})
			} else {
				c.Recv(0, round)
			}
		}
	})
	if err != nil {
		t.Fatalf("watchdog killed a live run: %v", err)
	}
}

// Mismatched collectives (one rank broadcasts to a group another rank
// never joins) are a classic SPMD bug; the watchdog must catch it.
func TestDeadlockMismatchedCollective(t *testing.T) {
	m := NewMachine(4)
	err := m.Run(func(c *Ctx) {
		if c.Rank() < 2 {
			c.Bcast([]int{0, 1, 2}, 0, 5, []float64{1}) // rank 2 never shows up
		}
	})
	if err == nil {
		t.Fatal("mismatched collective not detected")
	}
}

func TestTrafficMatrix(t *testing.T) {
	m := NewMachine(3)
	if err := m.Run(func(c *Ctx) {
		switch c.Rank() {
		case 0:
			c.Send(1, 0, []float64{1, 2})
			c.Send(2, 0, []float64{3, 4, 5})
		case 1:
			c.Recv(0, 0)
			c.Send(2, 1, []float64{6})
		case 2:
			c.Recv(0, 0)
			c.Recv(1, 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	tr := m.Traffic()
	if tr[0][1] != 2 || tr[0][2] != 3 || tr[1][2] != 1 {
		t.Errorf("traffic = %v", tr)
	}
	if tr[2][0] != 0 || tr[1][0] != 0 {
		t.Error("phantom traffic recorded")
	}
}

// Critical-path sanity: the critical path dominates every rank's own
// local cost and is dominated by the aggregate totals.
func TestCriticalPathSandwich(t *testing.T) {
	m := NewMachine(6)
	if err := m.Run(func(c *Ctx) {
		r := c.Rank()
		c.AddFlops(int64(r * 5))
		if r > 0 {
			c.Recv(r-1, 0)
		}
		if r < 5 {
			c.Send(r+1, 0, make([]float64, r+1))
		}
	}); err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	for r, c := range rep.PerRank {
		if rep.Critical.Flops < rep.LocalFlops[r] {
			t.Errorf("critical flops %d below rank %d local %d", rep.Critical.Flops, r, rep.LocalFlops[r])
		}
		_ = c
	}
	if rep.Critical.Bandwidth > rep.TotalWords*2 {
		t.Errorf("critical bandwidth %d above send+recv total %d", rep.Critical.Bandwidth, rep.TotalWords*2)
	}
	if rep.Critical.Latency > rep.TotalMessages*2 {
		t.Errorf("critical latency %d above message total %d", rep.Critical.Latency, rep.TotalMessages*2)
	}
}
