package comm

import (
	"math"
	"testing"
)

func runBcast(t *testing.T, q, rootIdx, words int,
	bcast func(c *Ctx, group []int, root, tag int, data []float64) []float64) *Machine {
	t.Helper()
	m := NewMachine(q)
	group := make([]int, q)
	for i := range group {
		group[i] = i
	}
	root := group[rootIdx]
	err := m.Run(func(c *Ctx) {
		var payload []float64
		if c.Rank() == root {
			payload = make([]float64, words)
			for i := range payload {
				payload[i] = float64(i) + 0.5
			}
		}
		got := bcast(c, group, root, 100, payload)
		if len(got) != words {
			t.Errorf("q=%d rank %d: got %d words, want %d", q, c.Rank(), len(got), words)
			return
		}
		for i, v := range got {
			if v != float64(i)+0.5 {
				t.Errorf("q=%d rank %d: word %d = %v", q, c.Rank(), i, v)
				return
			}
		}
	})
	if err != nil {
		t.Fatalf("q=%d: %v", q, err)
	}
	return m
}

func TestBcastLinearDelivers(t *testing.T) {
	for _, q := range []int{1, 2, 3, 5, 8, 13} {
		m := runBcast(t, q, q/2, 17, func(c *Ctx, g []int, r, tag int, d []float64) []float64 {
			return c.BcastLinear(g, r, tag, d)
		})
		// Root-serialized: critical latency is exactly q-1.
		if got := m.CriticalPath().Latency; got != int64(q-1) {
			t.Errorf("q=%d: linear bcast latency %d, want %d", q, got, q-1)
		}
	}
}

func TestBcastScagDelivers(t *testing.T) {
	for _, q := range []int{1, 2, 3, 4, 5, 7, 8, 11, 16} {
		for _, words := range []int{0, 1, 5, 64, 100} {
			runBcast(t, q, 0, words, func(c *Ctx, g []int, r, tag int, d []float64) []float64 {
				return c.BcastScag(g, r, tag, d)
			})
		}
	}
}

func TestBcastScagNonZeroRoot(t *testing.T) {
	for _, q := range []int{3, 5, 8} {
		for rootIdx := 0; rootIdx < q; rootIdx++ {
			runBcast(t, q, rootIdx, 37, func(c *Ctx, g []int, r, tag int, d []float64) []float64 {
				return c.BcastScag(g, r, tag, d)
			})
		}
	}
}

// The whole point of scatter-allgather: per-rank bandwidth stays O(w)
// — a constant multiple of the payload, independent of q — while the
// binomial tree pays O(w log q).
func TestBcastScagBandwidthOptimal(t *testing.T) {
	const words = 4096
	measure := func(q int, scag bool) Cost {
		m := runBcast(t, q, 0, words, func(c *Ctx, g []int, r, tag int, d []float64) []float64 {
			if scag {
				return c.BcastScag(g, r, tag, d)
			}
			return c.Bcast(g, r, tag, d)
		})
		return m.CriticalPath()
	}
	for _, q := range []int{8, 16, 64} {
		tree := measure(q, false)
		scag := measure(q, true)
		// Scag stays within a constant multiple of w at every q...
		if scag.Bandwidth > 4*words {
			t.Errorf("q=%d: scag bandwidth %d exceeds 4w = %d", q, scag.Bandwidth, 4*words)
		}
		// ...while binomial grows with log q, overtaking it.
		wantTree := int64(words) * int64(math.Ceil(math.Log2(float64(q))))
		if tree.Bandwidth < wantTree {
			t.Errorf("q=%d: binomial bandwidth %d below w·log q = %d", q, tree.Bandwidth, wantTree)
		}
		if q >= 16 && scag.Bandwidth >= tree.Bandwidth {
			t.Errorf("q=%d: scag bandwidth %d not below binomial %d", q, scag.Bandwidth, tree.Bandwidth)
		}
		// Latency stays logarithmic: far below the linear bcast's q-1.
		// (Each hop costs 2 in this model — send plus receive — so the
		// comparison is meaningful once q clears small constants.)
		if q >= 32 && scag.Latency >= int64(q-1) {
			t.Errorf("q=%d: scag latency %d not below linear %d", q, scag.Latency, q-1)
		}
		if scag.Latency > 4*int64(math.Ceil(math.Log2(float64(q))))+4 {
			t.Errorf("q=%d: scag latency %d not logarithmic", q, scag.Latency)
		}
	}
}
