package comm

import "testing"

func benchGroup(q int) []int {
	g := make([]int, q)
	for i := range g {
		g[i] = i
	}
	return g
}

func BenchmarkPointToPoint(b *testing.B) {
	for _, words := range []int{1, 1024, 65536} {
		b.Run("w="+itoaB(words), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := NewMachine(2)
				payload := make([]float64, words)
				if err := m.Run(func(c *Ctx) {
					if c.Rank() == 0 {
						c.Send(1, 0, payload)
					} else {
						c.Recv(0, 0)
					}
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBcastBinomial(b *testing.B) {
	for _, q := range []int{8, 64} {
		b.Run("q="+itoaB(q), func(b *testing.B) {
			group := benchGroup(q)
			payload := make([]float64, 4096)
			for i := 0; i < b.N; i++ {
				m := NewMachine(q)
				if err := m.Run(func(c *Ctx) {
					var d []float64
					if c.Rank() == 0 {
						d = payload
					}
					c.Bcast(group, 0, 0, d)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReduceBinomial(b *testing.B) {
	const q = 64
	group := benchGroup(q)
	for i := 0; i < b.N; i++ {
		m := NewMachine(q)
		if err := m.Run(func(c *Ctx) {
			data := make([]float64, 1024)
			c.Reduce(group, 0, 0, data, func(acc, in []float64) {
				for j := range acc {
					if in[j] < acc[j] {
						acc[j] = in[j]
					}
				}
			})
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoaB(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
