package comm

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Deadlock detection: a run is deadlocked when every rank is either
// finished or blocked in Recv and at least one is blocked — no send can
// ever arrive. The watchdog samples that condition and, when it holds
// across consecutive samples with no deliveries in between, poisons the
// mailboxes; blocked ranks wake up, panic with a description of what
// they were waiting for, and Run surfaces the panics as errors instead
// of hanging the test suite forever.

type watchState struct {
	blocked   atomic.Int32
	finished  atomic.Int32
	delivered atomic.Int64
	taken     atomic.Int64
	poisoned  atomic.Bool
}

// poisonError is carried by the panic raised in a poisoned Recv.
type poisonError struct {
	rank, src, tag int
}

func (e poisonError) Error() string {
	return fmt.Sprintf("deadlock: rank %d blocked receiving (src=%d, tag=%d) while every rank was blocked or finished", e.rank, e.src, e.tag)
}

// watch runs until stop is closed, checking for the all-blocked state.
// Poisoning happens only after (a) a sustained window in which every
// rank is blocked or finished and neither deliveries nor successful
// receives made progress, and (b) an exact check under the mailbox
// locks confirming no blocked rank has a matching pending message —
// which rules out the benign race where a message has been delivered
// but its receiver has not been scheduled yet.
func (m *Machine) watch(stop <-chan struct{}) {
	var lastDelivered, lastTaken int64 = -1, -1
	strikes := 0
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			blocked := m.ws.blocked.Load()
			finished := m.ws.finished.Load()
			delivered := m.ws.delivered.Load()
			taken := m.ws.taken.Load()
			stalled := blocked > 0 && int(blocked+finished) == m.p &&
				delivered == lastDelivered && taken == lastTaken
			lastDelivered, lastTaken = delivered, taken
			if !stalled {
				strikes = 0
				continue
			}
			strikes++
			if strikes < 20 {
				continue
			}
			if m.anySatisfiableWait() {
				strikes = 0
				continue
			}
			m.ws.poisoned.Store(true)
			for _, mb := range m.boxes {
				mb.cond.Broadcast()
			}
			return
		}
	}
}

// anySatisfiableWait reports whether some blocked rank already has a
// matching message pending (it just has not been scheduled to pick it
// up yet).
func (m *Machine) anySatisfiableWait() bool {
	for _, mb := range m.boxes {
		mb.mu.Lock()
		if mb.waiting {
			for _, msg := range mb.pending {
				if msg.src == mb.waitSrc && msg.tag == mb.waitTag {
					mb.mu.Unlock()
					return true
				}
			}
		}
		mb.mu.Unlock()
	}
	return false
}
