// Package comm implements a simulated distributed-memory machine in the
// model of Section 3.1 of Zhu, Hua, Jin (ICPP 2021): p homogeneous
// processors, a dedicated link between every pair, and per-processor
// communication costs counted along the critical path as defined by
// Yang and Miller (ICDCS 1988).
//
// Each rank runs as a goroutine. Point-to-point messages are matched by
// (source, tag) in FIFO order, like MPI. Collectives (broadcast, reduce,
// all-reduce, gather, barrier) are built from point-to-point sends using
// binomial trees, so their measured costs are exactly the O(log q)
// message / O(w log q) word costs the paper's analysis assumes.
//
// Cost accounting: every rank carries a cost clock (latency, bandwidth,
// flops). A send snapshots the sender's clock into the message and then
// charges the sender (1 message, w words). A receive first takes the
// element-wise max of the local clock and the message's clock, then
// charges the receiver (1 message, w words). The maximum clock over all
// ranks after the program finishes is the critical-path cost: two
// messages exchanged simultaneously between separate pairs of processors
// are counted once, while messages serialized through a single sender or
// receiver accumulate, matching assumptions (2) and (3) of the model.
package comm

import "fmt"

// Cost is a critical-path cost clock. Latency counts messages, Bandwidth
// counts words (one word = one float64 distance entry), and Flops counts
// semiring operations (one ⊕ plus one ⊗ counts as one operation).
type Cost struct {
	Latency   int64
	Bandwidth int64
	Flops     int64
}

// maxInPlace sets c to the element-wise maximum of c and o. Element-wise
// maximum over happens-before chains yields, for each component, the
// largest accumulation along any dependency path, which is the
// critical-path count for that component.
func (c *Cost) maxInPlace(o Cost) {
	if o.Latency > c.Latency {
		c.Latency = o.Latency
	}
	if o.Bandwidth > c.Bandwidth {
		c.Bandwidth = o.Bandwidth
	}
	if o.Flops > c.Flops {
		c.Flops = o.Flops
	}
}

// addMessage charges one message of w words.
func (c *Cost) addMessage(w int64) {
	c.Latency++
	c.Bandwidth += w
}

// Max returns the element-wise maximum of a and b.
func Max(a, b Cost) Cost {
	a.maxInPlace(b)
	return a
}

// Add returns the element-wise sum of a and b.
func Add(a, b Cost) Cost {
	return Cost{
		Latency:   a.Latency + b.Latency,
		Bandwidth: a.Bandwidth + b.Bandwidth,
		Flops:     a.Flops + b.Flops,
	}
}

func (c Cost) String() string {
	return fmt.Sprintf("latency=%d bandwidth=%d flops=%d", c.Latency, c.Bandwidth, c.Flops)
}
