package comm

import "fmt"

// Ctx is one rank's handle to the machine, valid only inside the
// function passed to Machine.Run and only on that rank's goroutine.
type Ctx struct {
	machine *Machine
	rank    int
}

// Rank returns this rank's id in [0, P).
func (c *Ctx) Rank() int { return c.rank }

// P returns the machine size.
func (c *Ctx) P() int { return c.machine.p }

func (c *Ctx) state() *rankState { return &c.machine.states[c.rank] }

// Send transmits data to rank dst with the given tag. The slice is
// handed over to the receiver; the caller must not modify it afterwards
// (receivers get the same backing array, mirroring zero-copy transfer;
// copy before sending if the local buffer will be reused).
//
// Cost: the sender is charged one message of len(data) words, after the
// message captured the sender's pre-send clock, so a rank issuing k
// sends serializes them (assumption 2 of the model).
func (c *Ctx) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.machine.p {
		panic(fmt.Sprintf("comm: send to invalid rank %d (p=%d)", dst, c.machine.p))
	}
	if dst == c.rank {
		panic("comm: self-send is not allowed; keep the data local instead")
	}
	st := c.state()
	msg := message{src: c.rank, tag: tag, data: data, clock: st.clock}
	st.clock.addMessage(int64(len(data)))
	st.sentMsgs++
	st.sentWords += int64(len(data))
	st.sentByClass[st.sendClass] += int64(len(data))
	st.addSent(dst, int64(len(data)))
	c.machine.boxes[dst].put(&c.machine.ws, msg)
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. The receiver's clock is advanced to the
// element-wise max with the sender's pre-send clock and then charged one
// message of the payload's size, so a rank receiving k messages
// serializes them.
func (c *Ctx) Recv(src, tag int) []float64 {
	if src < 0 || src >= c.machine.p {
		panic(fmt.Sprintf("comm: recv from invalid rank %d (p=%d)", src, c.machine.p))
	}
	if src == c.rank {
		panic("comm: self-recv is not allowed")
	}
	msg := c.machine.boxes[c.rank].take(&c.machine.ws, c.rank, src, tag)
	st := c.state()
	st.clock.maxInPlace(msg.clock)
	st.clock.addMessage(int64(len(msg.data)))
	st.recvdMsgs++
	st.recvdWords += int64(len(msg.data))
	return msg.data
}

// AddFlops charges n semiring operations to this rank's clock and its
// local work counter.
func (c *Ctx) AddFlops(n int64) {
	st := c.state()
	st.clock.Flops += n
	st.localFlops += n
}

// SetMemory registers the rank's current resident data size in words
// and updates the peak. Algorithms call it once after allocating their
// local blocks (and again if they grow).
func (c *Ctx) SetMemory(words int64) {
	st := c.state()
	st.memWords = words
	if words > st.peakWords {
		st.peakWords = words
	}
}

// AddMemory adjusts the registered resident size by delta words.
func (c *Ctx) AddMemory(delta int64) {
	st := c.state()
	st.memWords += delta
	if st.memWords > st.peakWords {
		st.peakWords = st.memWords
	}
}

// Clock returns the rank's current cost clock.
func (c *Ctx) Clock() Cost { return c.state().clock }
