package comm

// Replay is a cost ledger for deterministic replay executors: the same
// per-rank clocks, counters and phase marks a Machine run maintains,
// but advanced by explicit charge calls instead of by p rank
// goroutines exchanging real messages. A dataflow executor that knows
// the complete communication schedule in advance (every send's source,
// destination and payload size, and every receive's matching send)
// replays each rank's charge sequence in the rank's program order and
// obtains clocks bit-identical to a Machine executing the same
// program — see the charging rules on Ctx.Send and Ctx.Recv, which
// ChargeSend and ChargeRecv reproduce verbatim.
//
// Concurrency contract: Replay itself takes no locks. Distinct ranks'
// charges may be issued from different goroutines as long as (a) each
// rank's charges are issued in that rank's program order, (b) no two
// goroutines charge the same rank concurrently, and (c) every
// ChargeSend happens-before the ChargeRecv consuming its returned
// snapshot. A dataflow executor gets all three for free from its
// dependency edges. The read-side aggregators (Report, CriticalPath,
// PhaseCosts, Traffic) must only be called after all charges have been
// issued and their goroutines joined.
type Replay struct {
	p      int
	states []rankState
}

// NewReplay returns a ledger for p ranks with all clocks at zero.
func NewReplay(p int) *Replay {
	return &Replay{p: p, states: make([]rankState, p)}
}

// P returns the number of ranks.
func (r *Replay) P() int { return r.p }

// ChargeSend charges src for sending words payload words to dst and
// returns the clock snapshot the message carries — the sender's clock
// BEFORE the send was charged, exactly as Ctx.Send records it. The
// caller passes the snapshot to the matching ChargeRecv.
func (r *Replay) ChargeSend(src, dst int, words int64) Cost {
	st := &r.states[src]
	snap := st.clock
	st.clock.addMessage(words)
	st.sentMsgs++
	st.sentWords += words
	st.sentByClass[st.sendClass] += words
	st.addSent(dst, words)
	return snap
}

// ChargeRecv charges rank for receiving a words-word message carrying
// the sender snapshot: max-merge first, then one message of words
// words, exactly as Ctx.Recv. Receive order matters — max-then-add is
// not commutative across receives — so the caller must issue a rank's
// ChargeRecv calls in the rank's program order.
func (r *Replay) ChargeRecv(rank int, sender Cost, words int64) {
	st := &r.states[rank]
	st.clock.maxInPlace(sender)
	st.clock.addMessage(words)
	st.recvdMsgs++
	st.recvdWords += words
}

// AddFlops charges n semiring operations to rank, as Ctx.AddFlops.
func (r *Replay) AddFlops(rank int, n int64) {
	st := &r.states[rank]
	st.clock.Flops += n
	st.localFlops += n
}

// SetMemory registers rank's current resident words, as Ctx.SetMemory.
func (r *Replay) SetMemory(rank int, words int64) {
	st := &r.states[rank]
	st.memWords = words
	if words > st.peakWords {
		st.peakWords = words
	}
}

// AddMemory adjusts rank's resident words by delta, as Ctx.AddMemory.
func (r *Replay) AddMemory(rank int, delta int64) {
	st := &r.states[rank]
	st.memWords += delta
	if st.memWords > st.peakWords {
		st.peakWords = st.memWords
	}
}

// Mark records a phase boundary labelled id on rank, as Ctx.Mark.
func (r *Replay) Mark(rank int, id string) {
	st := &r.states[rank]
	st.marks = append(st.marks, markEntry{id: id, clock: st.clock})
}

// Clock returns rank's current cost clock.
func (r *Replay) Clock(rank int) Cost { return r.states[rank].clock }

// CriticalPath returns the element-wise maximum clock over all ranks.
func (r *Replay) CriticalPath() Cost { return criticalPathOf(r.states) }

// Report returns the cost summary of everything charged so far,
// through the same aggregation code as Machine.Report.
func (r *Replay) Report() Report { return buildReport(r.p, r.states) }

// PhaseCosts aggregates the recorded marks, as Machine.PhaseCosts.
func (r *Replay) PhaseCosts() ([]PhaseCost, error) { return phaseCostsOf(r.p, r.states) }

// Traffic returns the words-sent matrix, as Machine.Traffic.
func (r *Replay) Traffic() [][]int64 { return trafficOf(r.p, r.states) }
