package comm

import "fmt"

// Grid is a logical 2D processor grid laid over the machine's ranks in
// row-major order. Both the dense baselines and the sparse algorithm of
// the paper place block (i, j) of the distance matrix on processor
// P_ij = rank i*Cols + j.
type Grid struct {
	Rows, Cols int
}

// NewSquareGrid returns the √p × √p grid for a machine of p ranks, or
// an error if p is not a perfect square.
func NewSquareGrid(p int) (Grid, error) {
	s := isqrt(p)
	if s*s != p {
		return Grid{}, fmt.Errorf("comm: p=%d is not a perfect square", p)
	}
	return Grid{Rows: s, Cols: s}, nil
}

// isqrt returns ⌊√n⌋ for n ≥ 0.
func isqrt(n int) int {
	if n < 0 {
		panic("comm: isqrt of negative number")
	}
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

// Rank returns the rank of grid position (i, j), 0-based.
func (g Grid) Rank(i, j int) int {
	if i < 0 || i >= g.Rows || j < 0 || j >= g.Cols {
		panic(fmt.Sprintf("comm: grid position (%d,%d) outside %dx%d", i, j, g.Rows, g.Cols))
	}
	return i*g.Cols + j
}

// Coords returns the grid position of rank.
func (g Grid) Coords(rank int) (i, j int) {
	if rank < 0 || rank >= g.Rows*g.Cols {
		panic(fmt.Sprintf("comm: rank %d outside %dx%d grid", rank, g.Rows, g.Cols))
	}
	return rank / g.Cols, rank % g.Cols
}

// RowRanks returns the ranks of row i in column order.
func (g Grid) RowRanks(i int) []int {
	out := make([]int, g.Cols)
	for j := range out {
		out[j] = g.Rank(i, j)
	}
	return out
}

// ColRanks returns the ranks of column j in row order.
func (g Grid) ColRanks(j int) []int {
	out := make([]int, g.Rows)
	for i := range out {
		out[i] = g.Rank(i, j)
	}
	return out
}

// AllRanks returns all ranks of the grid in row-major order.
func (g Grid) AllRanks() []int {
	out := make([]int, g.Rows*g.Cols)
	for i := range out {
		out[i] = i
	}
	return out
}
