package comm

import "fmt"

// Phase marks let an algorithm attribute costs to its phases (the
// sparse solver marks each eTree level, reproducing the per-level
// L_l / B_l decomposition of Lemmas 5.6, 5.8 and 5.9).
//
// Every rank must record the same sequence of mark ids. The cost of a
// phase is the maximum over ranks of the rank's clock advance during
// the phase. Because clocks max-merge across messages, a phase's cost
// can include waiting inherited from an earlier phase; the sum over
// phases therefore upper-bounds (and in practice closely tracks) the
// end-to-end critical path.

type markEntry struct {
	id    string
	clock Cost
}

// Mark records a phase boundary labelled id on this rank.
func (c *Ctx) Mark(id string) {
	st := c.state()
	st.marks = append(st.marks, markEntry{id: id, clock: st.clock})
}

// PhaseCost is the aggregated cost of one phase across all ranks.
type PhaseCost struct {
	ID string
	// Critical is the phase's contribution to the end-to-end critical
	// path: the component-wise difference between the global maximum
	// clock at the phase's end and at its start. Critical values sum
	// exactly to the run's CriticalPath, so this is the per-level
	// L_l / B_l decomposition of the paper's Lemmas 5.6/5.8/5.9.
	Critical Cost
	// MaxAdvance is the maximum per-rank clock advance during the
	// phase. It can exceed Critical when a rank inherits earlier
	// phases' waiting through a received message.
	MaxAdvance Cost
}

// PhaseCosts aggregates the marks of a finished run. The k-th phase
// spans from the (k−1)-th mark (or the start) to the k-th mark. It
// returns an error if ranks recorded diverging mark sequences.
func (m *Machine) PhaseCosts() ([]PhaseCost, error) { return phaseCostsOf(m.p, m.states) }

// phaseCostsOf is the shared implementation behind Machine.PhaseCosts
// and Replay.PhaseCosts.
func phaseCostsOf(p int, states []rankState) ([]PhaseCost, error) {
	if p == 0 {
		return nil, nil
	}
	ref := states[0].marks
	for r := 1; r < p; r++ {
		marks := states[r].marks
		if len(marks) != len(ref) {
			return nil, fmt.Errorf("comm: rank %d recorded %d marks, rank 0 recorded %d", r, len(marks), len(ref))
		}
		for i := range marks {
			if marks[i].id != ref[i].id {
				return nil, fmt.Errorf("comm: rank %d mark %d is %q, rank 0 has %q", r, i, marks[i].id, ref[i].id)
			}
		}
	}
	out := make([]PhaseCost, len(ref))
	for i := range ref {
		out[i].ID = ref[i].id
	}
	// Per-rank advances.
	for r := 0; r < p; r++ {
		prev := Cost{}
		for i, mk := range states[r].marks {
			delta := Cost{
				Latency:   mk.clock.Latency - prev.Latency,
				Bandwidth: mk.clock.Bandwidth - prev.Bandwidth,
				Flops:     mk.clock.Flops - prev.Flops,
			}
			out[i].MaxAdvance.maxInPlace(delta)
			prev = mk.clock
		}
	}
	// Global-max boundary deltas.
	prevGlobal := Cost{}
	for i := range ref {
		var global Cost
		for r := 0; r < p; r++ {
			global.maxInPlace(states[r].marks[i].clock)
		}
		out[i].Critical = Cost{
			Latency:   global.Latency - prevGlobal.Latency,
			Bandwidth: global.Bandwidth - prevGlobal.Bandwidth,
			Flops:     global.Flops - prevGlobal.Flops,
		}
		prevGlobal = global
	}
	return out, nil
}
