package comm

import (
	"fmt"
	"sync"
)

// message is a point-to-point message in flight.
type message struct {
	src   int
	tag   int
	data  []float64
	clock Cost // sender's clock snapshot taken before the send was charged
}

// mailbox holds the pending messages of one rank. Senders append under
// the lock; the owning rank removes the first entry matching a
// (source, tag) pair, blocking on the condition variable while none
// matches.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	// Set while the owning rank is blocked inside take, so the
	// watchdog can verify the wait is genuinely unsatisfiable.
	waiting          bool
	waitSrc, waitTag int
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(ws *watchState, m message) {
	mb.mu.Lock()
	mb.pending = append(mb.pending, m)
	// Wake the owner only when it is blocked waiting for exactly this
	// (src, tag): each mailbox has a single receiver, so a non-matching
	// message cannot satisfy its wait, and an unconditional Broadcast
	// just forces a spurious rescan of the pending list. The watchdog's
	// poison wakeup still uses Broadcast.
	notify := mb.waiting && mb.waitSrc == m.src && mb.waitTag == m.tag
	mb.mu.Unlock()
	ws.delivered.Add(1)
	if notify {
		mb.cond.Signal()
	}
}

// take removes and returns the first pending message from src with tag,
// blocking until one arrives. If the machine's watchdog poisons the run
// (deadlock detected), take panics with a poisonError describing the
// blocked receive.
func (mb *mailbox) take(ws *watchState, rank, src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if ws.poisoned.Load() {
			panic(poisonError{rank: rank, src: src, tag: tag})
		}
		for i, m := range mb.pending {
			if m.src == src && m.tag == tag {
				mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
				ws.taken.Add(1)
				return m
			}
		}
		mb.waiting = true
		mb.waitSrc, mb.waitTag = src, tag
		ws.blocked.Add(1)
		mb.cond.Wait()
		ws.blocked.Add(-1)
		mb.waiting = false
	}
}

// rankState is the per-rank bookkeeping touched only by the rank's own
// goroutine (except after Run returns, when the machine reads it).
type rankState struct {
	clock      Cost
	sentMsgs   int64
	sentWords  int64
	memWords   int64 // currently registered resident words
	peakWords  int64 // maximum ever registered
	recvdMsgs  int64
	recvdWords int64
	localFlops int64       // flops performed by this rank itself (no max-merge)
	sentTo     []dstWords  // words sent per destination rank (compact pairs)
	marks      []markEntry // phase boundaries recorded by Ctx.Mark

	sendClass   SendClass             // phase label charged by subsequent sends
	sentByClass [NumSendClasses]int64 // words sent per phase class
}

// dstWords is one (destination, words) entry of a rank's traffic row.
// A rank talks to O(log p) distinct peers (its collective-tree
// neighbours), so the row is kept as a short scanned list instead of a
// dense p-word slice — at p ≈ 10³ the dense rows cost several MB of
// zeroed allocation per run and dominate the executor's GC load.
type dstWords struct {
	dst   int32
	words int64
}

// addSent accumulates words into the rank's traffic row. Consecutive
// sends usually target the same peer (tree fan-out runs), so the scan
// starts from the most recent entry.
func (st *rankState) addSent(dst int, words int64) {
	for i := len(st.sentTo) - 1; i >= 0; i-- {
		if st.sentTo[i].dst == int32(dst) {
			st.sentTo[i].words += words
			return
		}
	}
	st.sentTo = append(st.sentTo, dstWords{dst: int32(dst), words: words})
}

// Machine is a simulated distributed-memory machine with p ranks.
// Create one with NewMachine, execute an SPMD program with Run, then
// read costs with Report or CriticalPath. A Machine may be reused for
// several consecutive Run calls; costs accumulate across them (use
// Reset to clear).
type Machine struct {
	p      int
	boxes  []*mailbox
	states []rankState
	ws     watchState
}

// NewMachine returns a machine with p ranks. p must be positive.
func NewMachine(p int) *Machine {
	if p <= 0 {
		panic(fmt.Sprintf("comm: machine size must be positive, got %d", p))
	}
	m := &Machine{
		p:      p,
		boxes:  make([]*mailbox, p),
		states: make([]rankState, p),
	}
	for i := range m.boxes {
		m.boxes[i] = newMailbox()
	}
	return m
}

// P returns the number of ranks.
func (m *Machine) P() int { return m.p }

// Reset clears all cost clocks, counters and pending messages so the
// machine can run an independent program.
func (m *Machine) Reset() {
	// Every watchState counter must go back to zero: a leftover
	// taken/blocked count from the previous run would skew the
	// watchdog's progress sampling and can delay or trigger spurious
	// deadlock verdicts on the next Run.
	m.ws.poisoned.Store(false)
	m.ws.delivered.Store(0)
	m.ws.taken.Store(0)
	m.ws.blocked.Store(0)
	m.ws.finished.Store(0)
	for i := range m.states {
		m.states[i] = rankState{}
		mb := m.boxes[i]
		mb.mu.Lock()
		mb.pending = nil
		mb.waiting = false
		mb.waitSrc, mb.waitTag = 0, 0
		mb.mu.Unlock()
	}
}

// Run executes fn once per rank, each in its own goroutine, and waits
// for all of them. A panic in any rank is recovered and returned as an
// error naming the rank. A deadlock — every rank finished or blocked in
// Recv with messages that can never arrive — is detected by a watchdog
// and also returned as an error instead of hanging. A machine whose Run
// returned an error must not be reused.
func (m *Machine) Run(fn func(ctx *Ctx)) error {
	var wg sync.WaitGroup
	errs := make([]error, m.p)
	stop := make(chan struct{})
	go m.watch(stop)
	for r := 0; r < m.p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer m.ws.finished.Add(1)
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("comm: rank %d panicked: %v", rank, rec)
				}
			}()
			fn(&Ctx{machine: m, rank: rank})
		}(r)
	}
	wg.Wait()
	close(stop)
	m.ws.finished.Store(0)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for r, mb := range m.boxes {
		mb.mu.Lock()
		n := len(mb.pending)
		mb.mu.Unlock()
		if n != 0 {
			return fmt.Errorf("comm: rank %d finished with %d unreceived messages", r, n)
		}
	}
	return nil
}

// CriticalPath returns the element-wise maximum cost clock over all
// ranks: the critical-path latency, bandwidth and flops of everything
// executed so far.
func (m *Machine) CriticalPath() Cost { return criticalPathOf(m.states) }

func criticalPathOf(states []rankState) Cost {
	var c Cost
	for i := range states {
		c.maxInPlace(states[i].clock)
	}
	return c
}

// Report summarizes a finished run.
type Report struct {
	P             int
	Critical      Cost                  // critical-path cost (the quantities Table 2 bounds)
	TotalMessages int64                 // aggregate messages sent by all ranks
	TotalWords    int64                 // aggregate words sent by all ranks
	MaxMemory     int64                 // maximum per-rank peak resident words
	PerRank       []Cost                // each rank's final clock
	PeakWords     []int64               // each rank's peak registered memory
	LocalFlops    []int64               // each rank's own computation (no clock merging)
	LocalSent     []int64               // each rank's own sent words
	WordsByClass  [NumSendClasses]int64 // aggregate words sent per phase class (indexed by SendClass)
}

// Report returns the cost summary of everything executed so far.
func (m *Machine) Report() Report { return buildReport(m.p, m.states) }

// buildReport summarizes a slice of per-rank states. Shared by Machine
// and Replay so the two executors produce reports through identical
// aggregation code.
func buildReport(p int, states []rankState) Report {
	rep := Report{
		P:          p,
		PerRank:    make([]Cost, p),
		PeakWords:  make([]int64, p),
		LocalFlops: make([]int64, p),
		LocalSent:  make([]int64, p),
	}
	for i := range states {
		st := &states[i]
		rep.Critical.maxInPlace(st.clock)
		rep.TotalMessages += st.sentMsgs
		rep.TotalWords += st.sentWords
		if st.peakWords > rep.MaxMemory {
			rep.MaxMemory = st.peakWords
		}
		rep.PerRank[i] = st.clock
		rep.PeakWords[i] = st.peakWords
		rep.LocalFlops[i] = st.localFlops
		rep.LocalSent[i] = st.sentWords
		for c := 0; c < NumSendClasses; c++ {
			rep.WordsByClass[c] += st.sentByClass[c]
		}
	}
	return rep
}

// Traffic returns the words-sent matrix: Traffic()[src][dst] is the
// total payload volume src sent to dst. Useful for inspecting the
// communication structure (the sparse algorithm's matrix mirrors the
// eTree: pivot rows/columns and the unit-processor rows light up).
func (m *Machine) Traffic() [][]int64 { return trafficOf(m.p, m.states) }

func trafficOf(p int, states []rankState) [][]int64 {
	// One backing array for the whole p×p matrix: at large p the row
	// headers and per-row zeroing otherwise dominate the call.
	out := make([][]int64, p)
	flat := make([]int64, p*p)
	for r := range out {
		out[r] = flat[r*p : (r+1)*p : (r+1)*p]
		for _, e := range states[r].sentTo {
			out[r][e.dst] = e.words
		}
	}
	return out
}

func (r Report) String() string {
	return fmt.Sprintf("p=%d critical{%v} totalMsgs=%d totalWords=%d maxMemWords=%d",
		r.P, r.Critical, r.TotalMessages, r.TotalWords, r.MaxMemory)
}
