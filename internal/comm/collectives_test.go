package comm

import (
	"math"
	"testing"
)

func vecMin(acc, in []float64) {
	for i := range acc {
		if in[i] < acc[i] {
			acc[i] = in[i]
		}
	}
}

func vecSum(acc, in []float64) {
	for i := range acc {
		acc[i] += in[i]
	}
}

func TestBcastDeliversToAllGroupSizes(t *testing.T) {
	for q := 1; q <= 17; q++ {
		m := NewMachine(q + 2) // group is a strict subset of ranks
		group := make([]int, q)
		for i := range group {
			group[i] = i + 1
		}
		root := group[q/3]
		err := m.Run(func(c *Ctx) {
			r := c.Rank()
			if r == 0 || r == q+1 {
				return // not in group
			}
			var payload []float64
			if r == root {
				payload = []float64{42, 43, 44}
			}
			got := c.Bcast(group, root, 5, payload)
			if len(got) != 3 || got[0] != 42 || got[2] != 44 {
				t.Errorf("q=%d rank %d: bcast got %v", q, r, got)
			}
		})
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
	}
}

// Binomial broadcast over q ranks costs O(log q) critical-path latency.
func TestBcastLatencyIsLogarithmic(t *testing.T) {
	for _, q := range []int{2, 4, 8, 16, 32, 64} {
		m := NewMachine(q)
		group := make([]int, q)
		for i := range group {
			group[i] = i
		}
		err := m.Run(func(c *Ctx) {
			c.Bcast(group, 0, 0, []float64{1})
		})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(math.Ceil(math.Log2(float64(q))))
		if got := m.CriticalPath().Latency; got != want {
			t.Errorf("q=%d: bcast latency = %d, want log2(q) = %d", q, got, want)
		}
	}
}

func TestReduceCombinesAllContributions(t *testing.T) {
	for q := 1; q <= 13; q++ {
		m := NewMachine(q)
		group := make([]int, q)
		for i := range group {
			group[i] = i
		}
		root := q - 1
		err := m.Run(func(c *Ctx) {
			data := []float64{float64(c.Rank()), 1}
			res := c.Reduce(group, root, 0, data, vecSum)
			if c.Rank() == root {
				wantSum := float64(q*(q-1)) / 2
				if res[0] != wantSum || res[1] != float64(q) {
					t.Errorf("q=%d: reduce got %v, want [%v %v]", q, res, wantSum, q)
				}
			} else if res != nil {
				t.Errorf("q=%d rank %d: non-root got non-nil reduce result", q, c.Rank())
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestReduceMinMatchesSemiring(t *testing.T) {
	const q = 7
	m := NewMachine(q)
	group := []int{0, 1, 2, 3, 4, 5, 6}
	err := m.Run(func(c *Ctx) {
		data := []float64{float64(10 - c.Rank()), float64(c.Rank())}
		res := c.Reduce(group, 0, 0, data, vecMin)
		if c.Rank() == 0 {
			if res[0] != 4 || res[1] != 0 {
				t.Errorf("min-reduce got %v, want [4 0]", res)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceToExternalRoot(t *testing.T) {
	m := NewMachine(5)
	group := []int{1, 2, 3}
	const root = 4
	err := m.Run(func(c *Ctx) {
		switch c.Rank() {
		case 0:
			return
		case root:
			res := c.ReduceTo(group, root, 0, nil, vecSum)
			if res[0] != 6 {
				t.Errorf("external root got %v, want [6]", res)
			}
		default:
			c.ReduceTo(group, root, 0, []float64{float64(c.Rank())}, vecSum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceToInternalRootFallsBackToReduce(t *testing.T) {
	m := NewMachine(3)
	group := []int{0, 1, 2}
	err := m.Run(func(c *Ctx) {
		res := c.ReduceTo(group, 1, 0, []float64{1}, vecSum)
		if c.Rank() == 1 && res[0] != 3 {
			t.Errorf("internal-root ReduceTo got %v, want [3]", res)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	const q = 6
	m := NewMachine(q)
	group := []int{0, 1, 2, 3, 4, 5}
	err := m.Run(func(c *Ctx) {
		res := c.Allreduce(group, 0, []float64{float64(c.Rank())}, vecSum)
		if res[0] != 15 {
			t.Errorf("rank %d allreduce got %v, want [15]", c.Rank(), res)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierCompletes(t *testing.T) {
	const q = 9
	m := NewMachine(q)
	group := make([]int, q)
	for i := range group {
		group[i] = i
	}
	err := m.Run(func(c *Ctx) {
		for round := 0; round < 3; round++ {
			c.Barrier(group, 100+round)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bw := m.CriticalPath().Bandwidth; bw != 0 {
		t.Errorf("barrier moved %d words, want 0", bw)
	}
}

func TestGatherVariableLengths(t *testing.T) {
	const q = 5
	m := NewMachine(q)
	group := []int{0, 1, 2, 3, 4}
	err := m.Run(func(c *Ctx) {
		data := make([]float64, c.Rank()) // rank r contributes r words
		for i := range data {
			data[i] = float64(c.Rank()*10 + i)
		}
		parts := c.Gather(group, 2, 0, data)
		if c.Rank() == 2 {
			for p := 0; p < q; p++ {
				if len(parts[p]) != p {
					t.Errorf("part %d has len %d, want %d", p, len(parts[p]), p)
					continue
				}
				for i, v := range parts[p] {
					if v != float64(p*10+i) {
						t.Errorf("part %d[%d] = %v", p, i, v)
					}
				}
			}
		} else if parts != nil {
			t.Errorf("non-root rank %d got non-nil gather", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	const q = 4
	m := NewMachine(q)
	group := []int{0, 1, 2, 3}
	err := m.Run(func(c *Ctx) {
		parts := c.Allgather(group, 0, []float64{float64(c.Rank() * 100)})
		for p := 0; p < q; p++ {
			if len(parts[p]) != 1 || parts[p][0] != float64(p*100) {
				t.Errorf("rank %d: part %d = %v", c.Rank(), p, parts[p])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupPosPanicsForNonMember(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-member rank")
		}
	}()
	groupPos([]int{1, 2, 3}, 7)
}
