package comm

// Alternative broadcast algorithms for the collectives ablation. The
// default Bcast is a binomial tree — O(log q) messages, O(w log q)
// words per rank — matching the cost model used throughout the paper's
// Section 5.4 analysis. The alternatives trade differently:
//
//   - BcastLinear: the root sends to every member directly. O(q)
//     messages serialized at the root, O(w) words per receiver. The
//     strawman.
//   - BcastScag: binomial scatter followed by a Bruck all-gather
//     (the van de Geijn large-message scheme). O(log q) messages and
//     O(w) words per rank — bandwidth-optimal, which is how dense
//     algorithms reach the log-free O(n²/√p) bandwidth of Table 2.

// BcastLinear broadcasts by direct sends from the root.
func (c *Ctx) BcastLinear(group []int, root, tag int, data []float64) []float64 {
	q := len(group)
	if q == 0 {
		panic("comm: broadcast over empty group")
	}
	groupPos(group, c.rank) // membership check
	if c.rank == root {
		for _, r := range group {
			if r != root {
				c.Send(r, tag, data)
			}
		}
		return data
	}
	return c.Recv(root, tag)
}

// BcastScag broadcasts with a binomial scatter of q near-equal
// segments followed by a Bruck all-gather. Zero-length payloads fall
// back to the binomial tree (there is nothing to split).
func (c *Ctx) BcastScag(group []int, root, tag int, data []float64) []float64 {
	q := len(group)
	if q == 0 {
		panic("comm: broadcast over empty group")
	}
	pos := groupPos(group, c.rank)
	rootPos := groupPos(group, root)
	if q == 1 {
		return data
	}
	// The payload length must be known by every rank to slice segments;
	// ship it in a tiny header ahead of the scatter (root-only cost
	// O(log q) words total). Zero-length payloads just use the tree.
	var w int
	if c.rank == root {
		w = len(data)
	}
	hdr := c.Bcast(group, root, tag, []float64{float64(w)})
	w = int(hdr[0])
	if w == 0 {
		return nil
	}
	off := func(i int) int { return i * w / q }
	rel := func(p int) int { return (p - rootPos + q) % q }
	abs := func(r int) int { return group[(r+rootPos)%q] }

	// Binomial scatter: the holder of relative range [lo, lo+span)
	// keeps the lower half and sends the upper half to lo+span/2...
	// Standard MPICH: relative rank r receives the segment range
	// [r, r+extent(r)) where extent halves down the tree.
	myRel := rel(pos)
	segs := make([][]float64, q) // by relative segment index
	segRange := func(relLo, relHi int) (int, int) {
		// segment s of relative rank r holds data[off(absSeg(s))...]; we
		// keep segments indexed by relative position to make the ranges
		// contiguous, mapping back to absolute offsets at the end.
		return relLo, relHi
	}
	_ = segRange
	if c.rank == root {
		for s := 0; s < q; s++ {
			a := (s + rootPos) % q
			segs[s] = data[off(a):off(a+1)]
		}
	}
	// Determine my subtree extent: largest power of two ≤ q - myRel,
	// following the binomial scatter recursion from the root.
	// Receive phase.
	mask := 1
	for mask < q {
		if myRel&mask != 0 {
			src := abs(myRel - mask)
			bundle := c.Recv(src, tag+1)
			for i := 0; i < len(bundle); {
				s := int(bundle[i])
				n := int(bundle[i+1])
				segs[s] = bundle[i+2 : i+2+n : i+2+n]
				i += 2 + n
			}
			break
		}
		mask <<= 1
	}
	// Send phase: forward the upper halves of my current range.
	mask >>= 1
	for mask > 0 {
		if myRel+mask < q {
			lo := myRel + mask
			hi := myRel + 2*mask
			if hi > q {
				hi = q
			}
			var bundle []float64
			for s := lo; s < hi; s++ {
				bundle = append(bundle, float64(s), float64(len(segs[s])))
				bundle = append(bundle, segs[s]...)
				segs[s] = nil
			}
			c.Send(abs(lo), tag+1, bundle)
		}
		mask >>= 1
	}

	// Bruck all-gather over relative positions: at step 2^s, send all
	// held segments to (myRel - 2^s) and receive from (myRel + 2^s).
	for step := 1; step < q; step <<= 1 {
		dst := abs((myRel - step + q) % q)
		src := abs((myRel + step) % q)
		var bundle []float64
		for s := 0; s < q; s++ {
			if segs[s] != nil {
				bundle = append(bundle, float64(s), float64(len(segs[s])))
				bundle = append(bundle, segs[s]...)
			}
		}
		if dst != c.rank {
			c.Send(dst, tag+2, bundle)
			in := c.Recv(src, tag+2)
			for i := 0; i < len(in); {
				s := int(in[i])
				n := int(in[i+1])
				if segs[s] == nil {
					segs[s] = in[i+2 : i+2+n : i+2+n]
				}
				i += 2 + n
			}
		}
	}

	// Reassemble in absolute order.
	out := make([]float64, w)
	for s := 0; s < q; s++ {
		a := (s + rootPos) % q
		copy(out[off(a):off(a+1)], segs[s])
	}
	return out
}
