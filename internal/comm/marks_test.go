package comm

import "testing"

func TestPhaseCostsAggregate(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2, 3})
		} else {
			c.Recv(0, 0)
		}
		c.Mark("phase-a")
		c.AddFlops(int64(10 * (c.Rank() + 1)))
		c.Mark("phase-b")
	})
	if err != nil {
		t.Fatal(err)
	}
	phases, err := m.PhaseCosts()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(phases))
	}
	if phases[0].ID != "phase-a" || phases[1].ID != "phase-b" {
		t.Errorf("phase ids = %v, %v", phases[0].ID, phases[1].ID)
	}
	if phases[0].Critical.Latency != 1 || phases[0].Critical.Bandwidth != 3 {
		t.Errorf("phase-a cost = %+v, want latency 1 bandwidth 3", phases[0].Critical)
	}
	if phases[1].Critical.Flops != 20 {
		t.Errorf("phase-b flops = %d, want 20 (max over ranks)", phases[1].Critical.Flops)
	}
	if phases[1].Critical.Latency != 0 {
		t.Errorf("phase-b latency = %d, want 0", phases[1].Critical.Latency)
	}
	if phases[0].MaxAdvance.Latency != 1 {
		t.Errorf("phase-a max advance = %+v", phases[0].MaxAdvance)
	}
}

func TestPhaseCostsRejectDivergentMarks(t *testing.T) {
	m := NewMachine(2)
	if err := m.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			c.Mark("a")
		} else {
			c.Mark("b")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PhaseCosts(); err == nil {
		t.Error("expected error for diverging mark ids")
	}

	m2 := NewMachine(2)
	if err := m2.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			c.Mark("a")
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.PhaseCosts(); err == nil {
		t.Error("expected error for diverging mark counts")
	}
}

func TestPhaseCostsEmpty(t *testing.T) {
	m := NewMachine(3)
	if err := m.Run(func(c *Ctx) {}); err != nil {
		t.Fatal(err)
	}
	phases, err := m.PhaseCosts()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 0 {
		t.Errorf("phases = %v, want none", phases)
	}
}
