package comm

import (
	"strings"
	"testing"
)

// TestManyRankCollectivesDenseTags stresses the fused collectives on a
// 32-rank machine with the densest caller tag sequence the contract
// allows: consecutive integers, one per collective, exactly how the
// distributed partitioner hands out tags. The hidden second phase of
// Allreduce/Allgather/Barrier runs on ^tag, so adjacent caller tags
// must never interfere no matter how the ranks' entries stagger.
func TestManyRankCollectivesDenseTags(t *testing.T) {
	const q = 32
	const rounds = 8
	m := NewMachine(q)
	group := make([]int, q)
	for i := range group {
		group[i] = i
	}
	wantSum := float64(q*(q-1)) / 2
	err := m.Run(func(c *Ctx) {
		tag := 0
		next := func() int { tag++; return tag - 1 }
		for r := 0; r < rounds; r++ {
			// Stagger entry: rank pairs ping-pong a varying number of
			// point-to-point messages before each round, so ranks reach
			// the collectives at genuinely different times and p2p
			// traffic on a high tag coexists with the collective tags.
			partner := c.Rank() ^ 1
			for i := 0; i < (c.Rank()/2)%5; i++ {
				if c.Rank()%2 == 0 {
					c.Send(partner, 1<<20, []float64{0})
					c.Recv(partner, 1<<20)
				} else {
					c.Send(partner, 1<<20, c.Recv(partner, 1<<20))
				}
			}
			parts := c.Allgather(group, next(), []float64{float64(c.Rank()*rounds + r)})
			for p := range parts {
				if len(parts[p]) != 1 || parts[p][0] != float64(p*rounds+r) {
					t.Errorf("round %d rank %d: allgather part %d = %v", r, c.Rank(), p, parts[p])
				}
			}
			res := c.Allreduce(group, next(), []float64{float64(c.Rank())}, vecSum)
			if res[0] != wantSum {
				t.Errorf("round %d rank %d: allreduce = %v, want %v", r, c.Rank(), res[0], wantSum)
			}
			c.Barrier(group, next())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllreducePhaseTagIsReservedNotAdjacent pins the exact failure the
// reserved tag space prevents: a caller legitimately uses tag+1 for its
// own point-to-point message, sent before the collective. If the
// Allreduce broadcast phase ran on tag+1, the slow member's hidden
// receive from the root would match the earlier point-to-point payload
// and the collective would silently return garbage. With the ^tag
// scheme the message waits untouched until the explicit Recv.
func TestAllreducePhaseTagIsReservedNotAdjacent(t *testing.T) {
	const q = 4
	const tag = 10
	m := NewMachine(q)
	group := []int{0, 1, 2, 3}
	err := m.Run(func(c *Ctx) {
		if c.Rank() == 0 {
			// Root of both the reduce and the hidden broadcast tree.
			for _, dst := range []int{1, 2, 3} {
				c.Send(dst, tag+1, []float64{999})
			}
		}
		res := c.Allreduce(group, tag, []float64{1}, vecSum)
		if res[0] != q {
			t.Errorf("rank %d: allreduce = %v, want %d", c.Rank(), res[0], q)
		}
		if c.Rank() != 0 {
			if got := c.Recv(0, tag+1); got[0] != 999 {
				t.Errorf("rank %d: p2p payload = %v, want 999", c.Rank(), got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllgatherResultsAreCallerOwned locks in the copy-out fix: the
// broadcast phase hands every member the same backing array, so before
// the fix one rank writing to its result slices corrupted every other
// rank's view (and raced). Now each returned slice is freshly
// allocated.
func TestAllgatherResultsAreCallerOwned(t *testing.T) {
	const q = 8
	m := NewMachine(q)
	group := make([]int, q)
	for i := range group {
		group[i] = i
	}
	err := m.Run(func(c *Ctx) {
		parts := c.Allgather(group, 0, []float64{float64(100 + c.Rank())})
		// Rank 0 clobbers everything it received...
		if c.Rank() == 0 {
			for p := range parts {
				parts[p][0] = -1
			}
		}
		c.Barrier(group, 1)
		// ...and every other rank must still see the pristine values.
		if c.Rank() != 0 {
			for p := range parts {
				if parts[p][0] != float64(100+p) {
					t.Errorf("rank %d: part %d = %v after rank 0's writes, want %d",
						c.Rank(), p, parts[p][0], 100+p)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGatherResultsAreCallerOwned: the root's slices must not share a
// backing array with each other (a write through one part must never
// reach a neighboring part, which subslicing one bundle cannot
// guarantee against appends or sloppy callers).
func TestGatherResultsAreCallerOwned(t *testing.T) {
	const q = 6
	m := NewMachine(q)
	group := make([]int, q)
	for i := range group {
		group[i] = i
	}
	err := m.Run(func(c *Ctx) {
		data := []float64{float64(c.Rank()), float64(c.Rank())}
		parts := c.Gather(group, 0, 0, data)
		if c.Rank() != 0 {
			return
		}
		for p := range parts {
			grown := append(parts[p], -7) // must not spill into part p+1
			_ = grown
		}
		for p := range parts {
			if parts[p][0] != float64(p) || parts[p][1] != float64(p) {
				t.Errorf("part %d = %v, want [%d %d]", p, parts[p], p, p)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectivesRejectReservedTags: the negative tag space belongs to
// the implementation, so handing a negative tag to any public
// collective is an immediate, descriptive panic instead of a silent
// collision with some fused collective's hidden phase.
func TestCollectivesRejectReservedTags(t *testing.T) {
	calls := []struct {
		name string
		call func(c *Ctx)
	}{
		{"Bcast", func(c *Ctx) { c.Bcast([]int{0}, 0, -1, []float64{1}) }},
		{"Reduce", func(c *Ctx) { c.Reduce([]int{0}, 0, -1, []float64{1}, vecSum) }},
		{"ReduceTo", func(c *Ctx) { c.ReduceTo([]int{0}, 0, -1, []float64{1}, vecSum) }},
		{"Allreduce", func(c *Ctx) { c.Allreduce([]int{0}, -1, []float64{1}, vecSum) }},
		{"Barrier", func(c *Ctx) { c.Barrier([]int{0}, -1) }},
		{"Gather", func(c *Ctx) { c.Gather([]int{0}, 0, -1, []float64{1}) }},
		{"Allgather", func(c *Ctx) { c.Allgather([]int{0}, -1, []float64{1}) }},
	}
	for _, tc := range calls {
		m := NewMachine(1)
		err := m.Run(func(c *Ctx) { tc.call(c) })
		if err == nil || !strings.Contains(err.Error(), "reserved") {
			t.Errorf("%s with tag -1: err = %v, want reserved-tag panic", tc.name, err)
		}
	}
}

// TestAllgatherSubsetGroupsConcurrently runs disjoint-group collectives
// with identical tags at the same time — legal because no rank pair
// appears in both — on top of the reserved-phase scheme.
func TestAllgatherSubsetGroupsConcurrently(t *testing.T) {
	const q = 16
	m := NewMachine(q)
	err := m.Run(func(c *Ctx) {
		half := c.Rank() / (q / 2)
		group := make([]int, q/2)
		for i := range group {
			group[i] = half*(q/2) + i
		}
		for round := 0; round < 4; round++ {
			parts := c.Allgather(group, round, []float64{float64(c.Rank())})
			for i, g := range group {
				if parts[i][0] != float64(g) {
					t.Errorf("rank %d round %d: part %d = %v, want %d", c.Rank(), round, i, parts[i], g)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
