package comm

import (
	"reflect"
	"testing"
)

// TestReplayMatchesMachineCharges replays a small program's charge
// sequence on a Replay ledger and checks every observable — report,
// critical path, phases, traffic — against the Machine executing the
// same program. The program exercises the order-sensitive part of the
// model: max-merge-then-add across two receives with different sender
// clocks, where swapping the receive order changes the result.
func TestReplayMatchesMachineCharges(t *testing.T) {
	m := NewMachine(3)
	if err := m.Run(func(c *Ctx) {
		switch c.Rank() {
		case 0:
			c.AddFlops(10)
			c.SetMemory(100)
			c.Send(2, 0, []float64{1, 2})
			c.Mark("a")
			c.AddMemory(-40)
			c.Mark("b")
		case 1:
			c.SetMemory(5)
			c.Send(2, 1, []float64{3})
			c.Mark("a")
			c.Mark("b")
		case 2:
			c.SetMemory(7)
			c.Recv(0, 0) // sender clock {0,0,10}: merge before charging
			c.Recv(1, 1) // sender clock {0,0,0}
			c.AddFlops(4)
			c.Mark("a")
			c.Send(0, 2, []float64{9})
			c.Mark("b")
		}
		if c.Rank() == 0 {
			c.Recv(2, 2)
		}
	}); err != nil {
		t.Fatal(err)
	}

	r := NewReplay(3)
	// Rank 0 prefix.
	r.AddFlops(0, 10)
	r.SetMemory(0, 100)
	snap02 := r.ChargeSend(0, 2, 2)
	r.Mark(0, "a")
	r.AddMemory(0, -40)
	r.Mark(0, "b")
	// Rank 1.
	r.SetMemory(1, 5)
	snap12 := r.ChargeSend(1, 2, 1)
	r.Mark(1, "a")
	r.Mark(1, "b")
	// Rank 2, receives in the machine's order.
	r.SetMemory(2, 7)
	r.ChargeRecv(2, snap02, 2)
	r.ChargeRecv(2, snap12, 1)
	r.AddFlops(2, 4)
	r.Mark(2, "a")
	snap20 := r.ChargeSend(2, 0, 1)
	r.Mark(2, "b")
	// Rank 0 suffix.
	r.ChargeRecv(0, snap20, 1)

	if got, want := r.Report(), m.Report(); !reflect.DeepEqual(got, want) {
		t.Errorf("replay report = %+v, machine report = %+v", got, want)
	}
	if got, want := r.CriticalPath(), m.CriticalPath(); got != want {
		t.Errorf("replay critical path = %v, machine = %v", got, want)
	}
	if !reflect.DeepEqual(r.Traffic(), m.Traffic()) {
		t.Errorf("replay traffic = %v, machine = %v", r.Traffic(), m.Traffic())
	}
	rp, err := r.PhaseCosts()
	if err != nil {
		t.Fatal(err)
	}
	mp, err := m.PhaseCosts()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rp, mp) {
		t.Errorf("replay phases = %+v, machine phases = %+v", rp, mp)
	}
}

// TestReplayRecvOrderMatters pins the property that makes replay order
// load-bearing: two receives whose order is swapped yield a different
// clock, so a dataflow executor must charge receives in the machine's
// per-rank program order, not in arrival order.
func TestReplayRecvOrderMatters(t *testing.T) {
	a := NewReplay(3)
	a.ChargeRecv(2, Cost{Latency: 10}, 2)
	a.ChargeRecv(2, Cost{}, 1)
	b := NewReplay(3)
	b.ChargeRecv(2, Cost{}, 1)
	b.ChargeRecv(2, Cost{Latency: 10}, 2)
	if a.Clock(2) == b.Clock(2) {
		t.Fatalf("swapped receive order produced identical clocks %v; the counterexample should distinguish them", a.Clock(2))
	}
}
