package comm

import "fmt"

// Collectives are implemented with binomial trees over an explicit group
// of ranks, so a collective over q ranks costs O(log q) latency along
// the critical path and O(w log q) bandwidth for a w-word payload —
// exactly the per-operation costs assumed throughout Section 5.4 of the
// paper. Every member of the group must call the collective with the
// same group slice (same order), the same root and the same tag.
//
// Tags: one collective consumes a single non-negative tag. Two
// collectives may share a tag only if no pair of ranks exchanges
// messages in both at the same time; the simplest safe discipline, used
// by all algorithms in this repository, is a distinct tag per
// (phase, object) pair. Fused collectives (Allreduce, Allgather,
// Barrier) internally run two phases; the second phase uses ^tag, so
// the negative tag space is reserved for the implementation — callers
// may use every tag ≥ 0 freely, including consecutive ones, without
// colliding with a fused collective's hidden phase. (Using tag+1
// instead would break exactly that: algorithms handing out densely
// packed tag sequences — as the distributed partitioner does — would
// race their own next collective.)

// checkTag rejects caller tags in the reserved (negative) space.
func checkTag(tag int) {
	if tag < 0 {
		panic(fmt.Sprintf("comm: collective tag %d is negative; tags < 0 are reserved for internal collective phases", tag))
	}
}

// groupPos returns the index of rank within group, or panics: calling a
// collective while not a member is always a programming error.
func groupPos(group []int, rank int) int {
	for i, r := range group {
		if r == rank {
			return i
		}
	}
	panic(fmt.Sprintf("comm: rank %d is not a member of group %v", rank, group))
}

// Bcast broadcasts data from root to every rank of group using a
// binomial tree. On root, data is the payload to send; elsewhere data is
// ignored (pass nil). Every caller receives the payload as the return
// value. Receivers share the payload's backing array and must treat it
// as read-only, or copy it.
func (c *Ctx) Bcast(group []int, root, tag int, data []float64) []float64 {
	checkTag(tag)
	return c.bcast(group, root, tag, data)
}

// bcast is Bcast without the tag check, so the fused collectives can
// run their second phase on the reserved ^tag.
func (c *Ctx) bcast(group []int, root, tag int, data []float64) []float64 {
	q := len(group)
	if q == 0 {
		panic("comm: broadcast over empty group")
	}
	pos := groupPos(group, c.rank)
	rootPos := groupPos(group, root)
	rel := (pos - rootPos + q) % q

	// Receive phase: a non-root rank receives exactly once, from the
	// rank that differs in its lowest set bit.
	mask := 1
	for mask < q {
		if rel&mask != 0 {
			srcRel := rel - mask
			src := group[(srcRel+rootPos)%q]
			data = c.Recv(src, tag)
			break
		}
		mask <<= 1
	}
	// Send phase: forward to ranks at decreasing bit distances.
	mask >>= 1
	for mask > 0 {
		if rel+mask < q {
			dst := group[(rel+mask+rootPos)%q]
			c.Send(dst, tag, data)
		}
		mask >>= 1
	}
	return data
}

// Reduce combines the data contributed by every member of group with op
// and delivers the result to root. op(acc, in) must fold in into acc in
// place; contributions have equal length. The caller's data slice may be
// used as the accumulator and modified. Root receives the reduced slice
// as the return value; other ranks receive nil.
func (c *Ctx) Reduce(group []int, root, tag int, data []float64, op func(acc, in []float64)) []float64 {
	checkTag(tag)
	q := len(group)
	if q == 0 {
		panic("comm: reduce over empty group")
	}
	pos := groupPos(group, c.rank)
	rootPos := groupPos(group, root)
	rel := (pos - rootPos + q) % q

	for mask := 1; mask < q; mask <<= 1 {
		if rel&mask != 0 {
			dstRel := rel - mask
			dst := group[(dstRel+rootPos)%q]
			c.Send(dst, tag, data)
			return nil
		}
		srcRel := rel | mask
		if srcRel < q {
			src := group[(srcRel+rootPos)%q]
			in := c.Recv(src, tag)
			op(data, in)
		}
	}
	return data
}

// ReduceTo reduces the members' contributions to an arbitrary root that
// need not belong to the group. Members call it with their data; the
// root calls it too (with nil data if it is not a member and therefore
// contributes nothing). The reduced slice is returned at root, nil
// elsewhere. When the root is outside the group the result travels one
// extra message from the group's first member.
func (c *Ctx) ReduceTo(group []int, root, tag int, data []float64, op func(acc, in []float64)) []float64 {
	checkTag(tag)
	inGroup := false
	for _, r := range group {
		if r == c.rank {
			inGroup = true
			break
		}
	}
	rootInGroup := false
	for _, r := range group {
		if r == root {
			rootInGroup = true
			break
		}
	}
	if rootInGroup {
		if !inGroup {
			if c.rank != root {
				panic("comm: ReduceTo caller is neither a member nor the root")
			}
			// Root is listed in the group, so it must have called the
			// member path; reaching here means the caller lied.
			panic("comm: ReduceTo root must call as a group member")
		}
		return c.Reduce(group, root, tag, data, op)
	}
	if inGroup {
		res := c.Reduce(group, group[0], tag, data, op)
		if c.rank == group[0] {
			c.Send(root, tag, res)
		}
		return nil
	}
	if c.rank != root {
		panic("comm: ReduceTo caller is neither a member nor the root")
	}
	return c.Recv(group[0], tag)
}

// Allreduce combines every member's data with op and returns the result
// on all members (reduce to the first member, then broadcast back). The
// broadcast phase runs on the reserved tag ^tag, so the reduce messages
// of a slow member can never be matched by another member's broadcast
// receive — the two phases were previously distinguishable only by
// timing luck, which broke under dense caller tag sequences. Like
// Bcast, the returned slice may share its backing array across
// members; treat it as read-only or copy it.
func (c *Ctx) Allreduce(group []int, tag int, data []float64, op func(acc, in []float64)) []float64 {
	checkTag(tag)
	res := c.Reduce(group, group[0], tag, data, op)
	return c.bcast(group, group[0], ^tag, res)
}

// Barrier blocks until every member of group has reached it,
// implemented as a zero-word all-reduce (latency O(log q), bandwidth 0).
func (c *Ctx) Barrier(group []int, tag int) {
	c.Allreduce(group, tag, nil, func(acc, in []float64) {})
}

// Gather collects each member's (variable-length) contribution at root.
// Root receives a slice indexed by group position; other ranks receive
// nil. Every returned slice is freshly allocated and owned by the
// caller. Implemented as a binomial tree with per-contribution headers,
// so latency is O(log q) while bandwidth at the root is the total
// payload.
func (c *Ctx) Gather(group []int, root, tag int, data []float64) [][]float64 {
	checkTag(tag)
	q := len(group)
	pos := groupPos(group, c.rank)
	rootPos := groupPos(group, root)
	rel := (pos - rootPos + q) % q

	// bundle: repeated [position, length, payload...]
	bundle := make([]float64, 0, len(data)+2)
	bundle = append(bundle, float64(pos), float64(len(data)))
	bundle = append(bundle, data...)

	for mask := 1; mask < q; mask <<= 1 {
		if rel&mask != 0 {
			dstRel := rel - mask
			dst := group[(dstRel+rootPos)%q]
			c.Send(dst, tag, bundle)
			return nil
		}
		srcRel := rel | mask
		if srcRel < q {
			src := group[(srcRel+rootPos)%q]
			in := c.Recv(src, tag)
			bundle = append(bundle, in...)
		}
	}

	return unpackBundle(bundle, q)
}

// Allgather collects every member's contribution on every member
// (gather at the first member, then a broadcast of the bundle on the
// reserved tag ^tag — see Allreduce for why the phases cannot share a
// tag). Every returned slice is freshly allocated and owned by the
// caller: the broadcast delivers one shared backing array to all
// ranks, so returning subslices of it would let one rank's writes
// corrupt every other rank's view.
func (c *Ctx) Allgather(group []int, tag int, data []float64) [][]float64 {
	checkTag(tag)
	q := len(group)
	parts := c.Gather(group, group[0], tag, data)
	var bundle []float64
	if c.rank == group[0] {
		for p, d := range parts {
			bundle = append(bundle, float64(p), float64(len(d)))
			bundle = append(bundle, d...)
		}
	}
	bundle = c.bcast(group, group[0], ^tag, bundle)
	return unpackBundle(bundle, q)
}

// unpackBundle splits a [position, length, payload...]* bundle into
// per-position copies. Copying is load-bearing: bundles arrive through
// zero-copy sends and broadcasts, so subslices would alias buffers
// shared with other ranks.
func unpackBundle(bundle []float64, q int) [][]float64 {
	out := make([][]float64, q)
	for i := 0; i < len(bundle); {
		p := int(bundle[i])
		n := int(bundle[i+1])
		out[p] = append([]float64(nil), bundle[i+2:i+2+n]...)
		i += 2 + n
	}
	return out
}
