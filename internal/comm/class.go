package comm

// SendClass labels which algorithm phase a send belongs to, for the
// per-phase words-moved breakdown in Report. Ranks carry a current
// class (set with Ctx.SetSendClass / Replay.SetSendClass); every send
// charges its words to the rank's class at the moment of the send, so
// relay hops inside a collective are attributed to the phase whose
// collective is running. The class affects accounting only — clocks,
// matching and critical-path costs are untouched.
type SendClass uint8

const (
	// SendOther is the default class: anything a program did not label.
	SendOther SendClass = iota
	// SendR2 is the diagonal-block broadcasts of region R2.
	SendR2
	// SendR3 is the row/column panel broadcasts of region R3.
	SendR3
	// SendR4Panel is the panel broadcasts to unit processors in R4.
	SendR4Panel
	// SendR4Reduce is the binomial reduction of unit products in R4.
	SendR4Reduce
	// SendR4Seq is the point-to-point panel sends of the sequential-R4
	// ablation strategy.
	SendR4Seq
	// SendTrans is the symmetry transposes (Algorithm 1, line 25).
	SendTrans

	// NumSendClasses is the number of distinct classes; sized for the
	// fixed WordsByClass array in Report.
	NumSendClasses = int(SendTrans) + 1
)

// sendClassNames indexes the short human-readable phase labels.
var sendClassNames = [NumSendClasses]string{
	"other", "r2", "r3", "r4-panel", "r4-reduce", "r4-seq", "trans",
}

// String returns the class's short phase label.
func (s SendClass) String() string {
	if int(s) < NumSendClasses {
		return sendClassNames[s]
	}
	return "invalid"
}

// SetSendClass sets the phase class charged by this rank's subsequent
// sends. Purely an accounting label; costs and matching are unaffected.
func (c *Ctx) SetSendClass(class SendClass) {
	c.state().sendClass = class
}

// SetSendClass sets the phase class charged by rank's subsequent
// ChargeSend calls, as Ctx.SetSendClass. Same concurrency contract as
// the charge calls: issue it in the rank's program order.
func (r *Replay) SetSendClass(rank int, class SendClass) {
	r.states[rank].sendClass = class
}
