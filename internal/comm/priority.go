package comm

// Scalar cost model for list scheduling. The dataflow executor orders
// ready nodes by critical-path priority: the longest cost path from
// the node to any sink of the lowered graph, computed at lowering time
// by a reverse topological sweep. The per-node weight comes from the
// same deterministic quantities this package charges — message count,
// payload words and kernel operation count — collapsed into a single
// comparable int64. The collapse mirrors the α-β-γ shape of the Cost
// vector: one message hop is worth PriorityHopCost word-equivalents,
// words and flops count one each. Priorities only order execution;
// they never feed back into charged costs, so any deterministic weight
// is semantically safe — this one just makes "most critical first"
// track the ledger's own critical path.

// PriorityHopCost is the scheduling weight of one message hop relative
// to moving one word (the α/β ratio of the priority model). The exact
// value only shifts tie-breaks between latency-bound relay chains and
// bandwidth/compute-bound updates; 64 keeps log-depth collective
// spines ahead of similarly-sized local arithmetic.
const PriorityHopCost = 64

// PriorityCost folds a node's charged quantities into its scheduling
// weight.
func PriorityCost(messages, words, flops int64) int64 {
	return messages*PriorityHopCost + words + flops
}
