package semiring

import "fmt"

// Kernel selects a min-plus compute kernel implementation. Every
// kernel produces bit-identical matrices and identical operation
// counts — the choice affects wall-clock only, never the flop clock or
// any simulated communication, so experiment tables are byte-identical
// across kernels. Callers pick explicitly:
//
//	KernelSerial  the reference i-k-j loop (default; the simulated
//	              ranks use it because each rank is already a goroutine)
//	KernelTiled   cache-blocked panels with a register-blocked inner
//	              kernel, tile sizes from a one-time autotune
//	KernelPooled  the tiled kernel fanned out over the persistent
//	              DefaultPool worker set
//	KernelSparse  CSR index over the finite entries of A, falling back
//	              to the tiled kernel above SparseDensityThreshold
type Kernel int

const (
	KernelSerial Kernel = iota
	KernelTiled
	KernelPooled
	KernelSparse
)

// Kernels lists every selectable kernel, in parse-name order.
func Kernels() []Kernel {
	return []Kernel{KernelSerial, KernelTiled, KernelPooled, KernelSparse}
}

func (k Kernel) String() string {
	switch k {
	case KernelSerial:
		return "serial"
	case KernelTiled:
		return "tiled"
	case KernelPooled:
		return "pooled"
	case KernelSparse:
		return "sparse"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// ParseKernel maps a kernel name ("serial", "tiled", "pooled",
// "sparse"; "" means serial) to its Kernel value.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "serial":
		return KernelSerial, nil
	case "tiled":
		return KernelTiled, nil
	case "pooled":
		return KernelPooled, nil
	case "sparse":
		return KernelSparse, nil
	default:
		return 0, fmt.Errorf("semiring: unknown kernel %q (valid: serial, tiled, pooled, sparse)", s)
	}
}

// MulAddInto computes C = C ⊕ A ⊗ B with the selected kernel.
func (k Kernel) MulAddInto(c, a, b *Matrix) int64 {
	switch k {
	case KernelTiled:
		return MulAddIntoTiled(c, a, b)
	case KernelPooled:
		return MulAddIntoPooled(c, a, b)
	case KernelSparse:
		return MulAddIntoSparse(c, a, b)
	default:
		return MulAddInto(c, a, b)
	}
}

// PanelUpdateLeft computes P = P ⊕ P ⊗ D with the selected kernel.
func (k Kernel) PanelUpdateLeft(p, d *Matrix) int64 {
	tmp := p.Clone()
	return k.MulAddInto(p, tmp, d)
}

// PanelUpdateRight computes P = P ⊕ D ⊗ P with the selected kernel.
func (k Kernel) PanelUpdateRight(p, d *Matrix) int64 {
	tmp := p.Clone()
	return k.MulAddInto(p, d, tmp)
}

// PanelUpdateLeftScratch is PanelUpdateLeft with the snapshot of P
// taken into a's scratch space instead of a fresh allocation. Flops
// and results are bit-identical to PanelUpdateLeft.
func (k Kernel) PanelUpdateLeftScratch(p, d *Matrix, a *Arena) int64 {
	tmp := FromSlice(p.Rows, p.Cols, a.Scratch(len(p.V)))
	copy(tmp.V, p.V)
	return k.MulAddInto(p, tmp, d)
}

// PanelUpdateRightScratch is PanelUpdateRight with an arena-backed
// snapshot; see PanelUpdateLeftScratch.
func (k Kernel) PanelUpdateRightScratch(p, d *Matrix, a *Arena) int64 {
	tmp := FromSlice(p.Rows, p.Cols, a.Scratch(len(p.V)))
	copy(tmp.V, p.V)
	return k.MulAddInto(p, d, tmp)
}

// ClassicalFW runs the Floyd–Warshall update with the selected kernel.
// The pivot loop is inherently sequential, so KernelTiled and
// KernelSparse fall back to the serial loop (the pivot row already
// streams cache-friendly, and the matrix mutates every pivot step so a
// CSR index would be stale immediately); KernelPooled parallelizes each
// pivot step's independent row updates.
func (k Kernel) ClassicalFW(m *Matrix) int64 {
	if k == KernelPooled {
		return classicalFWPooled(DefaultPool, m)
	}
	return ClassicalFW(m)
}

// BlockedFW runs the blocked Floyd–Warshall with block size b, using
// the selected kernel for the diagonal, panel and outer-product steps.
func (k Kernel) BlockedFW(m *Matrix, b int) int64 {
	return BlockedFWKernel(m, b, k)
}

// PanelStep is one link of a fused panel-update chain: the broadcast
// operand D and which side it multiplies on. Right=false applies
// P ⊕= P ⊗ D (PanelUpdateLeftScratch), Right=true applies P ⊕= D ⊗ P
// (PanelUpdateRightScratch).
type PanelStep struct {
	D     *Matrix
	Right bool
}

// PanelUpdateMultiScratch applies a chain of panel updates to the
// resident block p, keeping p hot across all accumulations: one fused
// node loads the destination once and runs k accumulates instead of k
// separate nodes each paying a full scheduler round-trip and
// write-back. Step i is bit-identical to the corresponding single
// PanelUpdateLeft/RightScratch call — each step snapshots p into the
// arena before multiplying, so the min-plus accumulation order over
// the same block is exactly plan order.
//
// The optional hooks let the caller interleave its accounting with the
// arithmetic at the same points the unfused nodes would have:
// before(i) runs ahead of step i's multiply (receive/send/memory
// charges), after(i, ops) runs right after it with the step's
// operation count (flops/memory-release charges). Either may be nil.
// Returns the total operation count.
func (k Kernel) PanelUpdateMultiScratch(p *Matrix, steps []PanelStep, a *Arena, before func(i int), after func(i int, ops int64)) int64 {
	var total int64
	for i := range steps {
		if before != nil {
			before(i)
		}
		tmp := FromSlice(p.Rows, p.Cols, a.Scratch(len(p.V)))
		copy(tmp.V, p.V)
		var ops int64
		if steps[i].Right {
			ops = k.MulAddInto(p, steps[i].D, tmp)
		} else {
			ops = k.MulAddInto(p, tmp, steps[i].D)
		}
		if after != nil {
			after(i, ops)
		}
		total += ops
	}
	return total
}
