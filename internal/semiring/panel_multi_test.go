package semiring

import (
	"math/rand"
	"testing"
)

// TestPanelUpdateMultiScratch pins the fused panel chain's contract:
// for every kernel, applying a chain of left/right panel updates
// through PanelUpdateMultiScratch is bit-identical to the equivalent
// sequence of single PanelUpdateLeft/RightScratch calls, with the same
// per-step operation counts, and the hooks fire in step order around
// each multiply.
func TestPanelUpdateMultiScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, kern := range []Kernel{KernelSerial, KernelTiled, KernelPooled, KernelSparse} {
		for trial := 0; trial < 20; trial++ {
			n := rng.Intn(24) + 1
			chain := rng.Intn(5) + 1
			p1 := randKernelMatrix(n, n, 0.4, rng)
			p2 := p1.Clone()
			steps := make([]PanelStep, chain)
			for i := range steps {
				steps[i] = PanelStep{D: randKernelMatrix(n, n, 0.4, rng), Right: rng.Intn(2) == 0}
			}

			// Reference: the unfused sequence.
			refArena := NewArena(n * n)
			refOps := make([]int64, chain)
			for i, s := range steps {
				if s.Right {
					refOps[i] = kern.PanelUpdateRightScratch(p1, s.D, refArena)
				} else {
					refOps[i] = kern.PanelUpdateLeftScratch(p1, s.D, refArena)
				}
			}

			// Fused: one chain call, hooks recording their firing order.
			var events []int
			arena := NewArena(n * n)
			var total int64
			got := kern.PanelUpdateMultiScratch(p2, steps, arena,
				func(i int) { events = append(events, i) },
				func(i int, ops int64) {
					if ops != refOps[i] {
						t.Fatalf("kernel %v chain %d step %d: ops %d, unfused %d", kern, chain, i, ops, refOps[i])
					}
					total += ops
				})

			if !bitIdentical(p1, p2) {
				t.Fatalf("kernel %v chain %d: fused result differs from unfused sequence", kern, chain)
			}
			if got != total {
				t.Fatalf("kernel %v: returned total %d, hook sum %d", kern, got, total)
			}
			if len(events) != chain {
				t.Fatalf("kernel %v: before hook fired %d times, want %d", kern, len(events), chain)
			}
			for i, e := range events {
				if e != i {
					t.Fatalf("kernel %v: before hook order %v", kern, events)
				}
			}
		}
	}
	// Nil hooks must be accepted (the executor passes them when it has
	// nothing to interleave).
	p := randKernelMatrix(8, 8, 0.3, rng)
	d := randKernelMatrix(8, 8, 0.3, rng)
	KernelSerial.PanelUpdateMultiScratch(p, []PanelStep{{D: d}}, NewArena(64), nil, nil)
}
