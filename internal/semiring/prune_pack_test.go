package semiring

import (
	"math"
	"math/rand"
	"testing"
)

// demandLists builds ascending keep-lists by dropping each index with
// the given probability; nil (the `full` descriptor) when drop == 0.
func demandLists(n int, drop float64, rng *rand.Rand) []int32 {
	if drop == 0 {
		return nil
	}
	var keep []int32
	for i := 0; i < n; i++ {
		if rng.Float64() >= drop {
			keep = append(keep, int32(i))
		}
	}
	if keep == nil {
		keep = []int32{} // empty demand is distinct from nil (full)
	}
	return keep
}

// inList reports whether i is demanded under a keep-list (nil = all).
func inList(list []int32, i int) bool {
	if list == nil {
		return true
	}
	for _, v := range list {
		if int(v) == i {
			return true
		}
	}
	return false
}

// TestPackPrunedRoundtrip is the pruned encoding's value contract:
// inside the demanded rectangle every entry round-trips bit for bit;
// outside it everything decodes to Inf; with full demand the round
// trip is total; and the payload never exceeds the classic Pack
// length for the same block.
func TestPackPrunedRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		m := randKernelMatrix(rng.Intn(16), rng.Intn(16), rng.Float64(), rng)
		drop := []float64{0, 0.3, 0.7, 1}[rng.Intn(4)]
		rows := demandLists(m.Rows, drop, rng)
		cols := demandLists(m.Cols, drop, rng)
		payload := PackPruned(m, rows, cols, false)
		if classic := PackedLen(m.V); len(payload) > classic {
			t.Fatalf("trial %d: pruned payload %d words exceeds classic %d", trial, len(payload), classic)
		}
		got := UnpackPruned(payload, m.Rows, m.Cols)
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				if inList(rows, r) && inList(cols, c) {
					if math.Float64bits(got.At(r, c)) != math.Float64bits(m.At(r, c)) {
						t.Fatalf("trial %d: demanded (%d,%d) = %g, want %g", trial, r, c, got.At(r, c), m.At(r, c))
					}
				} else if !math.IsInf(got.At(r, c), 1) && !math.IsInf(m.At(r, c), 1) {
					// A pruned entry may still ride inside the kept
					// rectangle (then it round-trips) — but if it decodes
					// finite it must be the true value.
					if math.Float64bits(got.At(r, c)) != math.Float64bits(m.At(r, c)) {
						t.Fatalf("trial %d: pruned (%d,%d) decoded to %g, not Inf or %g", trial, r, c, got.At(r, c), m.At(r, c))
					}
				}
			}
		}
	}
}

// TestPackPrunedChoosesPrunedEncoding pins the case the format exists
// for: a block whose demanded rectangle is much smaller than its
// numeric support must ship as packPruned and beat the classic
// encodings.
func TestPackPrunedChoosesPrunedEncoding(t *testing.T) {
	m := NewMatrix(20, 20)
	m.Fill(1) // dense body: classic = 1 + 400, sparse never chosen
	rows := []int32{3, 7}
	payload := PackPruned(m, rows, nil, false)
	want := 3 + 2 + 20 + 2*20 // tag+dims, row list, col list, body
	if payload[0] != packPruned || len(payload) != want {
		t.Fatalf("payload tag %g, %d words, want tag %d, %d words", payload[0], len(payload), packPruned, want)
	}
	got := UnpackPruned(payload, 20, 20)
	for r := 0; r < 20; r++ {
		for c := 0; c < 20; c++ {
			want := Inf
			if r == 3 || r == 7 {
				want = 1
			}
			if got.At(r, c) != want {
				t.Fatalf("(%d,%d) = %g, want %g", r, c, got.At(r, c), want)
			}
		}
	}
	// Empty demand on either axis collapses to the 1-word empty marker.
	if p := PackPruned(m, []int32{}, nil, false); len(p) != 1 || p[0] != packEmpty {
		t.Fatalf("empty row demand: %v, want [%d]", p, packEmpty)
	}
	// When the classic encoding is at least as small, it wins: a sparse
	// block under full demand ships exactly as Pack would.
	s := NewMatrix(20, 20)
	s.Set(4, 9, 2.5)
	if p := PackPruned(s, nil, nil, false); len(p) != len(Pack(s.V)) || p[0] != packSparse {
		t.Fatalf("sparse block: %d words tag %g, want the classic sparse encoding", len(p), p[0])
	}
}

// TestPackPrunedZeroDiag pins the pivot-payload rule: with
// dropZeroDiag, exact-zero diagonal entries stop counting toward the
// keep decision — an identity block (zero diagonal, Inf elsewhere)
// ships as the 1-word empty marker — while nonzero or off-diagonal
// entries always survive.
func TestPackPrunedZeroDiag(t *testing.T) {
	id := NewMatrix(12, 12)
	for i := 0; i < 12; i++ {
		id.Set(i, i, 0)
	}
	if p := PackPruned(id, nil, nil, true); len(p) != 1 || p[0] != packEmpty {
		t.Fatalf("identity pivot: %d words tag %g, want the empty marker", len(p), p[0])
	}
	// Same block without the flag keeps every row.
	if p := PackPruned(id, nil, nil, false); len(p) != len(Pack(id.V)) {
		t.Fatalf("identity without flag: %d words, want classic %d", len(p), len(Pack(id.V)))
	}
	// A nonzero diagonal entry is a real path weight and must ship.
	nz := NewMatrix(12, 12)
	for i := 0; i < 12; i++ {
		nz.Set(i, i, 0)
	}
	nz.Set(5, 5, -2)
	got := UnpackPruned(PackPruned(nz, nil, nil, true), 12, 12)
	if got.At(5, 5) != -2 {
		t.Fatalf("nonzero diagonal decoded to %g, want -2", got.At(5, 5))
	}
	// An off-diagonal zero is likewise untouchable.
	off := NewMatrix(12, 12)
	off.Set(2, 9, 0)
	got = UnpackPruned(PackPruned(off, nil, nil, true), 12, 12)
	if got.At(2, 9) != 0 {
		t.Fatalf("off-diagonal zero decoded to %g, want 0", got.At(2, 9))
	}
}

// TestUnpackNeverAliasesPayload is the regression test for the dense
// decode aliasing hazard: the simulated collectives hand every
// receiver the same payload backing array, so a decode that aliased it
// would let one receiver's block mutation corrupt its siblings.
// Mutating the decoded body must leave the payload untouched, for
// every encoding.
func TestUnpackNeverAliasesPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		m := randKernelMatrix(4, 5, []float64{0, 0.5, 1}[rng.Intn(3)], rng)
		for _, payload := range [][]float64{
			PackMatrix(m),
			PackPruned(m, []int32{0, 2}, nil, false),
		} {
			orig := append([]float64(nil), payload...)
			got := UnpackMatrix(payload, 4, 5)
			got.Fill(-99)
			for i := range payload {
				if math.Float64bits(payload[i]) != math.Float64bits(orig[i]) {
					t.Fatalf("trial %d: payload word %d corrupted by decoded-block mutation", trial, i)
				}
			}
		}
	}
	// The packDense arm is the historical hazard: hit it explicitly.
	dense := NewMatrix(3, 3)
	dense.Fill(7)
	payload := PackMatrix(dense)
	if payload[0] != packDense {
		t.Fatalf("expected a dense payload, got tag %g", payload[0])
	}
	body := Unpack(payload, 9)
	body[0] = -1
	if payload[1] != 7 {
		t.Fatal("Unpack aliased the dense payload body")
	}
	m := UnpackMatrix(payload, 3, 3)
	m.Set(0, 0, -1)
	if payload[1] != 7 {
		t.Fatal("UnpackMatrix aliased the dense payload body")
	}
}

// TestUnpackPrunedRejectsMalformed extends Unpack's panic policy to
// the pruned layout: truncated headers, wrong body lengths and
// out-of-range indices all panic instead of decoding garbage.
func TestUnpackPrunedRejectsMalformed(t *testing.T) {
	for _, bad := range [][]float64{
		{packPruned},                         // no dims
		{packPruned, 1},                      // truncated header
		{packPruned, 1, 1, 0},                // missing body
		{packPruned, 1, 1, 0, 0, 1, 9},       // trailing words
		{packPruned, 1, 1, 7, 0, 1},          // row index out of range for 4x4
		{packPruned, 1, 1, 0, 7, 1},          // col index out of range
		{packPruned, -1, 2, 0},               // negative dims
		{packPruned, 2, 1, 0, 1, 0, 1, 2, 3}, // body longer than nr*nc
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("UnpackPruned(%v, 4, 4): expected panic", bad)
				}
			}()
			UnpackPruned(bad, 4, 4)
		}()
	}
	// Unpack (body-only API) cannot decode a pruned payload at all.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Unpack of a pruned payload: expected panic")
			}
		}()
		Unpack([]float64{packPruned, 1, 1, 0, 0, 5}, 16)
	}()
}
