package semiring

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzMatrix reinterprets the fuzzer's bytes as a rows×cols block of
// float64 bit patterns. NaNs are mapped to +Inf — min-plus weights are
// NaN-free by construction (min(x, NaN) has no useful semantics) — but
// ±Inf, negative zero, denormals and every finite pattern stay.
func fuzzMatrix(data []byte, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.V {
		if len(data) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			if !math.IsNaN(v) {
				m.V[i] = v
			}
		}
	}
	return m
}

// fuzzKeep derives an ascending keep-list over n indices from a
// bitmask byte stream; a zero mask byte means nil (full demand).
func fuzzKeep(mask []byte, n int) []int32 {
	if len(mask) == 0 || (len(mask) > 0 && mask[0] == 0) {
		return nil
	}
	keep := []int32{}
	for i := 0; i < n; i++ {
		b := mask[i%len(mask)]
		if b&(1<<(i%8)) != 0 {
			keep = append(keep, int32(i))
		}
	}
	return keep
}

// FuzzPackRoundTrip drives every encoder/decoder pair — Pack/Unpack,
// PackMatrix/UnpackMatrix and PackPruned/UnpackPruned with fuzzed
// demand lists and the zero-diag flag — and checks the wire contracts:
// demanded entries round-trip bit for bit, undemanded entries decode
// to Inf or their true value, pruned payloads never beat-miss the
// classic length, and no decode aliases its payload.
func FuzzPackRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0), []byte{}, true)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1), uint8(1), []byte{0}, false)
	inf := make([]byte, 8)
	binary.LittleEndian.PutUint64(inf, math.Float64bits(math.Inf(1)))
	ninf := make([]byte, 8)
	binary.LittleEndian.PutUint64(ninf, math.Float64bits(math.Inf(-1)))
	zero := make([]byte, 8)
	f.Add(append(append([]byte{}, inf...), ninf...), uint8(2), uint8(1), []byte{0xff}, true)
	// A 3x3 identity-ish block: zero diagonal, Inf elsewhere.
	var id []byte
	for i := 0; i < 9; i++ {
		if i%4 == 0 {
			id = append(id, zero...)
		} else {
			id = append(id, inf...)
		}
	}
	f.Add(id, uint8(3), uint8(3), []byte{0x0f, 0xf0}, true)

	f.Fuzz(func(t *testing.T, data []byte, rows, cols uint8, mask []byte, zeroDiag bool) {
		r, c := int(rows%24), int(cols%24)
		m := fuzzMatrix(data, r, c)

		// Classic encodings.
		payload := Pack(m.V)
		orig := append([]float64(nil), payload...)
		body := Unpack(payload, r*c)
		for i := range m.V {
			if math.Float64bits(body[i]) != math.Float64bits(m.V[i]) {
				t.Fatalf("Pack/Unpack differs at %d: %x vs %x", i, math.Float64bits(body[i]), math.Float64bits(m.V[i]))
			}
		}
		got := UnpackMatrix(payload, r, c)
		if !bitIdentical(m, got) {
			t.Fatal("PackMatrix/UnpackMatrix roundtrip differs")
		}
		got.Fill(-1)
		if len(body) > 0 {
			body[0] = -1
		}
		for i := range payload {
			if math.Float64bits(payload[i]) != math.Float64bits(orig[i]) {
				t.Fatalf("decode aliased the payload (word %d)", i)
			}
		}

		// Pruned encoding under fuzzed demand.
		keepR := fuzzKeep(mask, r)
		var keepC []int32
		if len(mask) > 1 {
			keepC = fuzzKeep(mask[1:], c)
		}
		pp := PackPruned(m, keepR, keepC, zeroDiag)
		if classic := PackedLen(m.V); len(pp) > classic {
			t.Fatalf("pruned payload %d words exceeds classic %d", len(pp), classic)
		}
		pm := UnpackPruned(pp, r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				want, dec := m.At(i, j), pm.At(i, j)
				demanded := inList(keepR, i) && inList(keepC, j)
				droppable := zeroDiag && i == j && want == 0
				switch {
				case demanded && !droppable:
					if math.Float64bits(dec) != math.Float64bits(want) {
						t.Fatalf("demanded (%d,%d): %x vs %x", i, j, math.Float64bits(dec), math.Float64bits(want))
					}
				case !math.IsInf(dec, 1):
					// Undemanded (or droppable) entries may ride along
					// inside the kept rectangle, but then only with their
					// true value.
					if math.Float64bits(dec) != math.Float64bits(want) {
						t.Fatalf("pruned (%d,%d) decoded to %x, want Inf or %x", i, j, math.Float64bits(dec), math.Float64bits(want))
					}
				}
			}
		}
	})
}

// FuzzUnpackMalformed throws arbitrary payloads at the decoders. The
// contract: decode cleanly or panic — a malformed payload must never
// be silently decoded into a block of the wrong shape. The recover
// turns the expected panics into passes so the fuzzer only reports
// genuinely unexpected failures (e.g. out-of-range slice arithmetic
// reaching the runtime in an uncontrolled way is still a panic, which
// is the documented policy).
func FuzzUnpackMalformed(f *testing.F) {
	f.Add([]byte{}, uint8(4), uint8(4))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0x10, 0x40}, uint8(4), uint8(4)) // [4.0] = unknown tag
	pruned := PackPruned(func() *Matrix { m := NewMatrix(4, 4); m.Fill(1); return m }(), []int32{1}, nil, false)
	var prunedBytes []byte
	for _, v := range pruned {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		prunedBytes = append(prunedBytes, b[:]...)
	}
	f.Add(prunedBytes, uint8(4), uint8(4))
	f.Add(prunedBytes[:16], uint8(4), uint8(4)) // truncated pruned header

	f.Fuzz(func(t *testing.T, data []byte, rows, cols uint8) {
		r, c := int(rows%24), int(cols%24)
		payload := make([]float64, 0, len(data)/8)
		for len(data) >= 8 {
			payload = append(payload, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
		}
		decode := func(fn func()) {
			defer func() { _ = recover() }()
			fn()
		}
		decode(func() {
			m := UnpackMatrix(payload, r, c)
			if m.Rows != r || m.Cols != c {
				t.Fatalf("decode produced %dx%d for a %dx%d request", m.Rows, m.Cols, r, c)
			}
		})
		decode(func() {
			if v := Unpack(payload, r*c); len(v) != r*c {
				t.Fatalf("Unpack produced %d words for n=%d", len(v), r*c)
			}
		})
	})
}
