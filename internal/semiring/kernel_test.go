package semiring

import (
	"math"
	"math/rand"
	"testing"
)

// randKernelMatrix builds an r×c matrix with the given Inf density;
// finite entries are small nonnegative floats like edge weights.
func randKernelMatrix(r, c int, infFrac float64, rng *rand.Rand) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.V {
		if rng.Float64() >= infFrac {
			m.V[i] = rng.Float64() * 16
		}
	}
	return m
}

// bitIdentical reports whether two matrices match bit for bit (stricter
// than Equal: distinguishes -0 from +0 and compares NaN payloads).
func bitIdentical(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.V {
		if math.Float64bits(a.V[i]) != math.Float64bits(b.V[i]) {
			return false
		}
	}
	return true
}

// TestKernelsMatchSerial is the contract of the kernel layer: tiled and
// pooled MulAddInto produce bit-identical output and identical
// operation counts to the serial reference, across random shapes,
// Inf-padded rows and degenerate (0-row / 0-col) matrices.
func TestKernelsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{0, 0, 0}, {0, 5, 3}, {5, 0, 3}, {5, 3, 0}, {1, 1, 1},
	}
	for trial := 0; trial < 40; trial++ {
		shapes = append(shapes, [3]int{rng.Intn(70), rng.Intn(70), rng.Intn(70)})
	}
	// Force small tiles so tile boundaries land inside the test shapes,
	// then restore the autotune for other tests.
	SetTileSizes(8, 16)
	defer SetTileSizes(0, 0)
	for _, sh := range shapes {
		r, k, c := sh[0], sh[1], sh[2]
		for _, infFrac := range []float64{0, 0.3, 1} {
			a := randKernelMatrix(r, k, infFrac, rng)
			b := randKernelMatrix(k, c, infFrac, rng)
			// Inf-pad a few whole rows of A: the serial kernel's
			// empty-row skip must be reproduced op-for-op.
			for i := 0; i < r; i++ {
				if rng.Intn(4) == 0 {
					for j := 0; j < k; j++ {
						a.Set(i, j, Inf)
					}
				}
			}
			cInit := randKernelMatrix(r, c, 0.5, rng)
			want := cInit.Clone()
			wantOps := MulAddInto(want, a, b)
			for _, kern := range []Kernel{KernelTiled, KernelPooled, KernelSparse} {
				got := cInit.Clone()
				gotOps := kern.MulAddInto(got, a, b)
				if gotOps != wantOps {
					t.Fatalf("%v kernel %dx%dx%d infFrac=%g: ops=%d, serial=%d",
						kern, r, k, c, infFrac, gotOps, wantOps)
				}
				if !bitIdentical(got, want) {
					t.Fatalf("%v kernel %dx%dx%d infFrac=%g: result differs from serial",
						kern, r, k, c, infFrac)
				}
			}
		}
	}
}

// TestKernelClassicalFWMatchesSerial locks the pooled Floyd–Warshall
// (per-pivot row fan-out) to the serial reference, including above the
// size threshold where the pool actually engages.
func TestKernelClassicalFWMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 17, 64, 200} {
		m := randKernelMatrix(n, n, 0.6, rng)
		want := m.Clone()
		wantOps := ClassicalFW(want)
		for _, kern := range []Kernel{KernelTiled, KernelPooled, KernelSparse} {
			got := m.Clone()
			gotOps := kern.ClassicalFW(got)
			if gotOps != wantOps {
				t.Fatalf("%v ClassicalFW n=%d: ops=%d, serial=%d", kern, n, gotOps, wantOps)
			}
			if !bitIdentical(got, want) {
				t.Fatalf("%v ClassicalFW n=%d: result differs from serial", kern, n)
			}
		}
	}
}

// TestKernelBlockedFWMatchesSerial checks the full blocked algorithm
// under every kernel, across block sizes that do and don't divide n.
func TestKernelBlockedFWMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 75
	m := randKernelMatrix(n, n, 0.7, rng)
	for i := 0; i < n; i++ {
		m.Set(i, i, 0)
	}
	want := m.Clone()
	wantOps := BlockedFW(want, 16)
	for _, kern := range []Kernel{KernelTiled, KernelPooled, KernelSparse} {
		for _, b := range []int{16, 25, 80} {
			got := m.Clone()
			ref := m.Clone()
			refOps := BlockedFW(ref, b)
			gotOps := BlockedFWKernel(got, b, kern)
			if gotOps != refOps {
				t.Fatalf("%v BlockedFW b=%d: ops=%d, serial=%d", kern, b, gotOps, refOps)
			}
			if !bitIdentical(got, ref) {
				t.Fatalf("%v BlockedFW b=%d: result differs from serial", kern, b)
			}
		}
	}
	// All block sizes close to the same distances (up to FP association).
	got := m.Clone()
	BlockedFWKernel(got, 25, KernelPooled)
	if !got.EqualTol(want, 1e-9) {
		_ = wantOps
		t.Fatal("BlockedFW closures differ across block sizes")
	}
}

// TestPanelUpdatesMatchSerial covers the kernel panel-update wrappers.
func TestPanelUpdatesMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pL := randKernelMatrix(40, 13, 0.4, rng) // column panel: r×k
	pR := randKernelMatrix(13, 40, 0.4, rng) // row panel: k×c
	d := randKernelMatrix(13, 13, 0.4, rng)
	ClassicalFW(d)
	wantL := pL.Clone()
	wantLOps := PanelUpdateLeft(wantL, d)
	wantR := pR.Clone()
	wantROps := PanelUpdateRight(wantR, d)
	for _, kern := range []Kernel{KernelTiled, KernelPooled, KernelSparse} {
		gotL := pL.Clone()
		if ops := kern.PanelUpdateLeft(gotL, d); ops != wantLOps || !bitIdentical(gotL, wantL) {
			t.Fatalf("%v PanelUpdateLeft mismatch (ops=%d want %d)", kern, ops, wantLOps)
		}
		gotR := pR.Clone()
		if ops := kern.PanelUpdateRight(gotR, d); ops != wantROps || !bitIdentical(gotR, wantR) {
			t.Fatalf("%v PanelUpdateRight mismatch (ops=%d want %d)", kern, ops, wantROps)
		}
	}
}

func TestParseKernel(t *testing.T) {
	for _, k := range Kernels() {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKernel(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := ParseKernel(""); err != nil || k != KernelSerial {
		t.Fatalf("ParseKernel(\"\") = %v, %v; want serial", k, err)
	}
	if _, err := ParseKernel("simd"); err == nil {
		t.Fatal("ParseKernel(\"simd\"): expected error")
	}
}

func TestSetTileSizesValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetTileSizes(8, 0): expected panic")
		}
		SetTileSizes(0, 0)
	}()
	SetTileSizes(8, 0)
}

// TestPoolForEachCoversAllIndices exercises the pool under nesting (a
// pooled call inside a pooled call must not deadlock) and checks every
// index runs exactly once.
func TestPoolForEachCoversAllIndices(t *testing.T) {
	p := NewPool(3)
	outer := make([]int32, 50)
	p.ForEach(len(outer), func(i int) {
		inner := make([]int32, 20)
		p.ForEach(len(inner), func(j int) { inner[j]++ })
		for j, v := range inner {
			if v != 1 {
				t.Errorf("nested index %d ran %d times", j, v)
			}
		}
		outer[i]++
	})
	for i, v := range outer {
		if v != 1 {
			t.Errorf("index %d ran %d times", i, v)
		}
	}
}

func TestMulAddIntoParallelPoolMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randKernelMatrix(61, 33, 0.3, rng)
	b := randKernelMatrix(33, 47, 0.3, rng)
	c1 := randKernelMatrix(61, 47, 0.5, rng)
	c2 := c1.Clone()
	ops1 := MulAddInto(c1, a, b)
	ops2 := MulAddIntoParallel(c2, a, b)
	if ops1 != ops2 || !bitIdentical(c1, c2) {
		t.Fatalf("MulAddIntoParallel diverges from serial (ops %d vs %d)", ops2, ops1)
	}
}
