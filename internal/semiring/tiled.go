package semiring

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Cache-blocked min-plus multiply. The naive i-k-j MulAddInto streams
// the whole of B once per row of A — Θ(r·k·c) words of B traffic — so
// for matrices past the last-level cache it is memory bound. The tiled
// kernel iterates (k-tile, j-tile) panels of B in the outer loops and
// all rows of A in the inner loop, keeping a tileK×tileJ panel of B hot
// in cache across every row; the inner kernel is register blocked by
// fusing four pivot rows per pass so each C element is loaded and
// stored once per quad instead of once per pivot.
//
// The semantics are exactly MulAddInto's: for every output column the
// pivots are visited in ascending k order (the j-tile loop nests inside
// the k-tile loop), each candidate a(i,k)+b(k,j) is formed identically,
// and the Inf-row skip applies per (i,k) element — so results are
// bit-identical and the returned operation count is equal for every
// input (TestKernelsMatchSerial locks this in).

// Deterministic fallback tile sizes, used when the one-time autotune is
// disabled or cannot measure (e.g. a clock of insufficient resolution):
// a 64×256 float64 panel is 128 KiB — comfortably inside a typical L2.
const (
	fallbackTileK = 64
	fallbackTileJ = 256
)

var (
	tileMu       sync.Mutex
	tileK, tileJ int  // 0 until chosen
	tileForced   bool // SetTileSizes pins the sizes, skipping autotune
)

// SetTileSizes pins the tiled kernel's tile sizes, bypassing the
// autotune — used by benchmarks sweeping block sizes and by tests that
// need determinism. SetTileSizes(0, 0) unpins, so the next TileSizes
// call re-runs the autotune.
func SetTileSizes(tk, tj int) {
	if (tk <= 0) != (tj <= 0) {
		panic(fmt.Sprintf("semiring: SetTileSizes(%d, %d): both sizes must be positive, or both zero to reset", tk, tj))
	}
	tileMu.Lock()
	defer tileMu.Unlock()
	if tk <= 0 {
		tileK, tileJ, tileForced = 0, 0, false
		return
	}
	tileK, tileJ, tileForced = tk, tj, true
}

// TileSizes returns the (k, j) tile sizes the tiled kernel uses. The
// first call runs a small one-time autotune (a few candidate shapes
// timed on a synthetic multiply, ~tens of milliseconds); if the
// measurements are unusable the deterministic fallback 64×256 is kept.
func TileSizes() (int, int) {
	tileMu.Lock()
	defer tileMu.Unlock()
	if tileK == 0 {
		tileK, tileJ = autotuneTiles()
	}
	return tileK, tileJ
}

// autotuneTiles times each candidate tile shape on a fixed synthetic
// workload and keeps the fastest. Candidates all fit plausible L2
// sizes; the workload is big enough to leave L1 but small enough that
// the whole tune stays in the tens of milliseconds.
func autotuneTiles() (int, int) {
	candidates := [][2]int{
		{32, 256}, {64, 256}, {64, 512}, {128, 512}, {256, 1024},
	}
	const n = 192
	a, b := autotuneMatrix(n, 1), autotuneMatrix(n, 2)
	c := NewMatrix(n, n)
	bestK, bestJ := fallbackTileK, fallbackTileJ
	best := time.Duration(math.MaxInt64)
	for _, cand := range candidates {
		c.Fill(Inf)
		start := time.Now()
		mulAddTiledRows(c, a, b, 0, n, cand[0], cand[1])
		elapsed := time.Since(start)
		if elapsed <= 0 {
			// Clock too coarse to rank candidates: keep the fallback.
			return fallbackTileK, fallbackTileJ
		}
		if elapsed < best {
			best, bestK, bestJ = elapsed, cand[0], cand[1]
		}
	}
	return bestK, bestJ
}

// autotuneMatrix builds a deterministic dense-ish matrix (no RNG so the
// tune adds no dependency on math/rand state).
func autotuneMatrix(n int, salt uint64) *Matrix {
	m := NewMatrix(n, n)
	x := salt*2654435761 + 1
	for i := range m.V {
		x = x*6364136223846793005 + 1442695040888963407
		if x%8 != 0 { // ~12% Inf, like a partially filled distance block
			m.V[i] = float64(x%1024) / 64
		}
	}
	return m
}

// MulAddIntoTiled computes C = C ⊕ A ⊗ B with the cache-blocked kernel.
// Results and the returned operation count are identical to MulAddInto.
func MulAddIntoTiled(c, a, b *Matrix) int64 {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("semiring: mul dims %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	tk, tj := TileSizes()
	return mulAddTiledRows(c, a, b, 0, a.Rows, tk, tj)
}

// mulAddTiledRows runs the tiled update on rows [r0, r1) of A and C.
// Row ranges are independent, so the pooled kernel calls it per band.
func mulAddTiledRows(c, a, b *Matrix, r0, r1, tk, tj int) int64 {
	kk, jj := a.Cols, b.Cols
	if r1 <= r0 || kk == 0 || jj == 0 {
		return 0
	}
	var ops int64
	piv := make([]int, 0, tk) // finite pivots of the current (i, k-tile)
	for k0 := 0; k0 < kk; k0 += tk {
		k1 := min(kk, k0+tk)
		for j0 := 0; j0 < jj; j0 += tj {
			j1 := min(jj, j0+tj)
			w := int64(j1 - j0)
			for i := r0; i < r1; i++ {
				arow := a.V[i*kk : (i+1)*kk]
				crow := c.V[i*jj+j0 : i*jj+j1]
				// Collect the finite pivots of this k-tile, then fuse
				// them four at a time so crow is read and written once
				// per quad instead of once per pivot. Pivots stay in
				// ascending k order, preserving serial tie-breaking.
				piv = piv[:0]
				for k := k0; k < k1; k++ {
					if !math.IsInf(arow[k], 1) {
						piv = append(piv, k)
					}
				}
				x := 0
				for ; x+4 <= len(piv); x += 4 {
					ka, kb, kc, kd := piv[x], piv[x+1], piv[x+2], piv[x+3]
					minPlusRow4(crow,
						arow[ka], b.V[ka*jj+j0:ka*jj+j1],
						arow[kb], b.V[kb*jj+j0:kb*jj+j1],
						arow[kc], b.V[kc*jj+j0:kc*jj+j1],
						arow[kd], b.V[kd*jj+j0:kd*jj+j1])
				}
				for ; x < len(piv); x++ {
					k := piv[x]
					minPlusRow(crow, arow[k], b.V[k*jj+j0:k*jj+j1])
				}
				ops += int64(len(piv)) * w
			}
		}
	}
	return ops
}

// minPlusRow folds crow[j] = crow[j] ⊕ (aik ⊗ brow[j]).
func minPlusRow(crow []float64, aik float64, brow []float64) {
	for j, bkj := range brow {
		if s := aik + bkj; s < crow[j] {
			crow[j] = s
		}
	}
}

// minPlusRow4 folds four pivot rows in one pass over crow. Candidates
// are applied in argument order, matching the serial ascending-k order.
func minPlusRow4(crow []float64, a1 float64, b1 []float64, a2 float64, b2 []float64,
	a3 float64, b3 []float64, a4 float64, b4 []float64) {
	_ = b1[len(crow)-1] // hoist bounds checks out of the loop
	_ = b2[len(crow)-1]
	_ = b3[len(crow)-1]
	_ = b4[len(crow)-1]
	for j := range crow {
		v := crow[j]
		if s := a1 + b1[j]; s < v {
			v = s
		}
		if s := a2 + b2[j]; s < v {
			v = s
		}
		if s := a3 + b3[j]; s < v {
			v = s
		}
		if s := a4 + b4[j]; s < v {
			v = s
		}
		crow[j] = v
	}
}
