package semiring

import (
	"fmt"
	"math"
)

// Packed block wire format.
//
// The distributed solvers broadcast supernodal blocks between ranks,
// and the simulated machine charges bandwidth per payload word — so
// the encoding of a block IS its wire cost. A dense n²-word payload
// for an all-Inf block is exactly the waste the paper's |S|² bandwidth
// term says a sparse-aware implementation avoids. Pack chooses, per
// block, the smallest of three encodings:
//
//	[packEmpty]                           1 word: every entry is Inf
//	[packDense, v0, v1, ...]              1 + n words: raw row-major body
//	[packSparse, nnz, i0, v0, i1, v1, ..] 2 + 2·nnz words: flat index +
//	                                      value pairs, ascending index
//
// The tag and indices are stored as float64 — the simulated machine
// moves words, not bytes, and flat indices below 2^53 are exact. The
// receiver knows the block's dimensions from the shared Layout, so
// they are never on the wire.
const (
	packEmpty  = 0
	packDense  = 1
	packSparse = 2
)

// PackedLen returns the wire length Pack would produce for v without
// materializing the payload.
func PackedLen(v []float64) int {
	nnz := 0
	for _, x := range v {
		if !math.IsInf(x, 1) {
			nnz++
		}
	}
	return packedLenFor(len(v), nnz)
}

func packedLenFor(n, nnz int) int {
	if nnz == 0 {
		return 1
	}
	if sparse := 2 + 2*nnz; sparse < 1+n {
		return sparse
	}
	return 1 + n
}

// Pack encodes v (the row-major body of a block) in the smallest of
// the three wire encodings. The result never aliases v.
func Pack(v []float64) []float64 {
	nnz := 0
	for _, x := range v {
		if !math.IsInf(x, 1) {
			nnz++
		}
	}
	if nnz == 0 {
		return []float64{packEmpty}
	}
	if 2+2*nnz < 1+len(v) {
		out := make([]float64, 2, 2+2*nnz)
		out[0], out[1] = packSparse, float64(nnz)
		for i, x := range v {
			if !math.IsInf(x, 1) {
				out = append(out, float64(i), x)
			}
		}
		return out
	}
	out := make([]float64, 1+len(v))
	out[0] = packDense
	copy(out[1:], v)
	return out
}

// Unpack decodes a Pack payload back to a length-n row-major body.
// For the dense encoding the returned slice aliases payload (matching
// the zero-copy semantics of the simulated collectives, whose receivers
// must treat broadcast data as read-only); the empty and sparse
// encodings allocate.
func Unpack(payload []float64, n int) []float64 {
	if len(payload) == 0 {
		panic("semiring: Unpack of empty payload")
	}
	switch payload[0] {
	case packEmpty:
		if len(payload) != 1 {
			panic(fmt.Sprintf("semiring: empty encoding with %d words", len(payload)))
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = Inf
		}
		return v
	case packDense:
		if len(payload) != 1+n {
			panic(fmt.Sprintf("semiring: dense encoding %d words for n=%d", len(payload), n))
		}
		return payload[1:]
	case packSparse:
		if len(payload) < 2 {
			panic("semiring: truncated sparse encoding")
		}
		nnz := int(payload[1])
		if len(payload) != 2+2*nnz {
			panic(fmt.Sprintf("semiring: sparse encoding %d words for nnz=%d", len(payload), nnz))
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = Inf
		}
		for t := 0; t < nnz; t++ {
			idx := int(payload[2+2*t])
			if idx < 0 || idx >= n {
				panic(fmt.Sprintf("semiring: sparse index %d out of range [0,%d)", idx, n))
			}
			v[idx] = payload[3+2*t]
		}
		return v
	default:
		panic(fmt.Sprintf("semiring: unknown pack tag %g", payload[0]))
	}
}

// PackMatrix encodes m's body for the wire.
func PackMatrix(m *Matrix) []float64 { return Pack(m.V) }

// UnpackMatrix decodes a PackMatrix payload into a rows×cols matrix.
// Like Unpack, the dense encoding shares the payload's backing array.
func UnpackMatrix(payload []float64, rows, cols int) *Matrix {
	return FromSlice(rows, cols, Unpack(payload, rows*cols))
}
