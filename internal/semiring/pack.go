package semiring

import (
	"fmt"
	"math"
)

// Packed block wire format.
//
// The distributed solvers broadcast supernodal blocks between ranks,
// and the simulated machine charges bandwidth per payload word — so
// the encoding of a block IS its wire cost. A dense n²-word payload
// for an all-Inf block is exactly the waste the paper's |S|² bandwidth
// term says a sparse-aware implementation avoids. Pack chooses, per
// block, the smallest of three encodings:
//
//	[packEmpty]                           1 word: every entry is Inf
//	[packDense, v0, v1, ...]              1 + n words: raw row-major body
//	[packSparse, nnz, i0, v0, i1, v1, ..] 2 + 2·nnz words: flat index +
//	                                      value pairs, ascending index
//
// PackPruned adds a fourth, demand-aware encoding (the "pruned" wire
// format of the communication-v2 layer):
//
//	[packPruned, nr, nc, r0..r(nr-1), c0..c(nc-1), body]
//	                                      3 + nr + nc + nr·nc words: the
//	                                      kept-rows × kept-cols submatrix,
//	                                      row-major, preceded by the
//	                                      ascending row and column index
//	                                      lists
//
// Entries outside the kept rectangle decode to Inf: the sender only
// ships rows/columns some receiver can fold into a finite output (the
// plan's symbolic demand), further trimmed to the rows/columns that are
// numerically non-empty. PackPruned picks whichever of the four
// encodings is smallest, so "pruned" payloads are never larger than
// "packed" ones for the same demand.
//
// The tag and indices are stored as float64 — the simulated machine
// moves words, not bytes, and flat indices below 2^53 are exact. The
// receiver knows the block's dimensions from the shared Layout, so
// they are never on the wire.
const (
	packEmpty  = 0
	packDense  = 1
	packSparse = 2
	packPruned = 3
)

// PackedLen returns the wire length Pack would produce for v without
// materializing the payload.
func PackedLen(v []float64) int {
	nnz := 0
	for _, x := range v {
		if !math.IsInf(x, 1) {
			nnz++
		}
	}
	return packedLenFor(len(v), nnz)
}

func packedLenFor(n, nnz int) int {
	if nnz == 0 {
		return 1
	}
	if sparse := 2 + 2*nnz; sparse < 1+n {
		return sparse
	}
	return 1 + n
}

// Pack encodes v (the row-major body of a block) in the smallest of
// the three wire encodings. The result never aliases v.
func Pack(v []float64) []float64 {
	nnz := 0
	for _, x := range v {
		if !math.IsInf(x, 1) {
			nnz++
		}
	}
	if nnz == 0 {
		return []float64{packEmpty}
	}
	if 2+2*nnz < 1+len(v) {
		out := make([]float64, 2, 2+2*nnz)
		out[0], out[1] = packSparse, float64(nnz)
		for i, x := range v {
			if !math.IsInf(x, 1) {
				out = append(out, float64(i), x)
			}
		}
		return out
	}
	out := make([]float64, 1+len(v))
	out[0] = packDense
	copy(out[1:], v)
	return out
}

// Unpack decodes a Pack payload back to a length-n row-major body. The
// returned slice is always freshly allocated and never aliases payload:
// the simulated collectives hand every receiver the same backing array,
// so an aliasing decode would let one receiver's block mutation
// silently corrupt any retained payload buffer (and every sibling
// receiver). Pruned payloads carry their own shape and cannot be
// decoded by Unpack; use UnpackPruned / UnpackMatrix.
func Unpack(payload []float64, n int) []float64 {
	if len(payload) == 0 {
		panic("semiring: Unpack of empty payload")
	}
	switch payload[0] {
	case packEmpty:
		if len(payload) != 1 {
			panic(fmt.Sprintf("semiring: empty encoding with %d words", len(payload)))
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = Inf
		}
		return v
	case packDense:
		if len(payload) != 1+n {
			panic(fmt.Sprintf("semiring: dense encoding %d words for n=%d", len(payload), n))
		}
		return append([]float64(nil), payload[1:]...)
	case packPruned:
		panic("semiring: pruned payload needs its block shape; use UnpackPruned")
	case packSparse:
		if len(payload) < 2 {
			panic("semiring: truncated sparse encoding")
		}
		nnz := int(payload[1])
		if len(payload) != 2+2*nnz {
			panic(fmt.Sprintf("semiring: sparse encoding %d words for nnz=%d", len(payload), nnz))
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = Inf
		}
		for t := 0; t < nnz; t++ {
			idx := int(payload[2+2*t])
			if idx < 0 || idx >= n {
				panic(fmt.Sprintf("semiring: sparse index %d out of range [0,%d)", idx, n))
			}
			v[idx] = payload[3+2*t]
		}
		return v
	default:
		panic(fmt.Sprintf("semiring: unknown pack tag %g", payload[0]))
	}
}

// PackMatrix encodes m's body for the wire.
func PackMatrix(m *Matrix) []float64 { return Pack(m.V) }

// UnpackMatrix decodes a PackMatrix or PackPruned payload into a
// rows×cols matrix. Like Unpack, the result owns its body and never
// aliases payload.
func UnpackMatrix(payload []float64, rows, cols int) *Matrix {
	if len(payload) > 0 && payload[0] == packPruned {
		return unpackPrunedBody(payload, rows, cols)
	}
	return FromSlice(rows, cols, Unpack(payload, rows*cols))
}

// PackPruned encodes m for a receiver set whose symbolic demand is the
// given row and column keep-lists (ascending; nil means "all rows" /
// "all columns" — the `full` descriptor). Demanded rows/columns that
// are numerically all-Inf inside the demanded rectangle are trimmed
// too, then the smallest of the four encodings is chosen, so the
// result is never larger than Pack(m.V). Entries outside the kept
// rectangle decode to Inf — callers must only prune rows/columns that
// provably fold to Inf at every receiver.
//
// dropZeroDiag additionally treats exact-zero diagonal entries as
// absent for the keep decision. It is sound only for pivot payloads
// D(k,k) consumed as A ⊕= A⊗D or A ⊕= D⊗A: the term a zero diagonal
// entry contributes to output entry (i,t) is A[i,t]+0 — the value the
// ⊕= fold already holds — so min(x,x) = x keeps the result
// bit-identical whether or not the entry ships. A dropped entry that
// still falls inside the kept rectangle ships anyway (with its true
// value), which is equally exact.
func PackPruned(m *Matrix, rows, cols []int32, dropZeroDiag bool) []float64 {
	keepR, keepC := prunedKeep(m, rows, cols, dropZeroDiag)
	if len(keepR) == 0 || len(keepC) == 0 {
		return []float64{packEmpty}
	}
	prunedLen := 3 + len(keepR) + len(keepC) + len(keepR)*len(keepC)
	if classic := PackedLen(m.V); classic <= prunedLen {
		return Pack(m.V)
	}
	out := make([]float64, 0, prunedLen)
	out = append(out, packPruned, float64(len(keepR)), float64(len(keepC)))
	for _, r := range keepR {
		out = append(out, float64(r))
	}
	for _, c := range keepC {
		out = append(out, float64(c))
	}
	for _, r := range keepR {
		row := m.V[int(r)*m.Cols : int(r)*m.Cols+m.Cols]
		for _, c := range keepC {
			out = append(out, row[c])
		}
	}
	return out
}

// prunedKeep intersects the demand keep-lists with the numerically
// non-empty rows/columns of m: a demanded row survives if it holds a
// finite entry in some demanded column, and a demanded column survives
// if it holds a finite entry in some surviving row. With dropZeroDiag,
// an exact-zero diagonal entry does not count as finite (see
// PackPruned).
func prunedKeep(m *Matrix, rows, cols []int32, dropZeroDiag bool) (keepR, keepC []int32) {
	demandC := cols
	if demandC == nil {
		demandC = make([]int32, m.Cols)
		for c := range demandC {
			demandC[c] = int32(c)
		}
	}
	colAny := make([]bool, m.Cols)
	scanRow := func(r int32) bool {
		row := m.V[int(r)*m.Cols : int(r)*m.Cols+m.Cols]
		any := false
		for _, c := range demandC {
			if math.IsInf(row[c], 1) {
				continue
			}
			if dropZeroDiag && int(c) == int(r) && row[c] == 0 {
				continue
			}
			any = true
			colAny[c] = true
		}
		return any
	}
	if rows == nil {
		for r := 0; r < m.Rows; r++ {
			if scanRow(int32(r)) {
				keepR = append(keepR, int32(r))
			}
		}
	} else {
		for _, r := range rows {
			if scanRow(r) {
				keepR = append(keepR, r)
			}
		}
	}
	for _, c := range demandC {
		if colAny[c] {
			keepC = append(keepC, c)
		}
	}
	return keepR, keepC
}

// UnpackPruned decodes any block payload — the three Pack encodings or
// the pruned one — into a rows×cols matrix that owns its body. Entries
// outside a pruned payload's kept rectangle come back as Inf.
func UnpackPruned(payload []float64, rows, cols int) *Matrix {
	return UnpackMatrix(payload, rows, cols)
}

// unpackPrunedBody decodes the packPruned layout; malformed payloads
// panic, mirroring Unpack's policy.
func unpackPrunedBody(payload []float64, rows, cols int) *Matrix {
	if len(payload) < 3 {
		panic("semiring: truncated pruned encoding")
	}
	nr, nc := int(payload[1]), int(payload[2])
	if nr < 0 || nc < 0 || len(payload) != 3+nr+nc+nr*nc {
		panic(fmt.Sprintf("semiring: pruned encoding %d words for nr=%d nc=%d", len(payload), nr, nc))
	}
	m := NewMatrix(rows, cols)
	rowIdx := payload[3 : 3+nr]
	colIdx := payload[3+nr : 3+nr+nc]
	body := payload[3+nr+nc:]
	for i, rf := range rowIdx {
		r := int(rf)
		if r < 0 || r >= rows {
			panic(fmt.Sprintf("semiring: pruned row index %d out of range [0,%d)", r, rows))
		}
		for j, cf := range colIdx {
			c := int(cf)
			if c < 0 || c >= cols {
				panic(fmt.Sprintf("semiring: pruned col index %d out of range [0,%d)", c, cols))
			}
			m.V[r*cols+c] = body[i*nc+j]
		}
	}
	return m
}
