// Package semiring implements dense matrix operations over the tropical
// (min, +) semiring of Section 3.3: x ⊕ y = min(x, y) and x ⊗ y = x + y,
// with +∞ as the additive identity. These are the ClassicalFW and
// blocked kernels that both the sequential baselines and the local
// per-block work of the distributed algorithms are built from.
package semiring

import (
	"fmt"
	"math"
)

// Inf is the additive identity of the min-plus semiring (no path).
var Inf = math.Inf(1)

// Matrix is a dense row-major matrix over the min-plus semiring.
// Zero-dimension matrices are valid and all operations treat them as
// empty (supernodes produced by nested dissection may be empty).
type Matrix struct {
	Rows, Cols int
	V          []float64
}

// NewMatrix returns a Rows×Cols matrix filled with Inf.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("semiring: negative dimensions %dx%d", rows, cols))
	}
	v := make([]float64, rows*cols)
	for i := range v {
		v[i] = Inf
	}
	return &Matrix{Rows: rows, Cols: cols, V: v}
}

// FromSlice wraps data (row-major, length rows*cols) as a matrix without
// copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("semiring: data length %d for %dx%d matrix", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, V: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.V[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.V[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, V: append([]float64(nil), m.V...)}
}

// CopyFrom overwrites m with src; dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("semiring: copy %dx%d into %dx%d", src.Rows, src.Cols, m.Rows, m.Cols))
	}
	copy(m.V, src.V)
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.V {
		m.V[i] = v
	}
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := &Matrix{Rows: m.Cols, Cols: m.Rows, V: make([]float64, len(m.V))}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.V[j*t.Cols+i] = m.V[i*m.Cols+j]
		}
	}
	return t
}

// Equal reports whether m and o have the same shape and identical
// entries (Inf compares equal to Inf).
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.V {
		if v != o.V[i] && !(math.IsInf(v, 1) && math.IsInf(o.V[i], 1)) {
			return false
		}
	}
	return true
}

// EqualTol reports whether m and o match within absolute tolerance tol
// (Inf must match exactly).
func (m *Matrix) EqualTol(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.V {
		w := o.V[i]
		if math.IsInf(v, 1) || math.IsInf(w, 1) {
			if math.IsInf(v, 1) != math.IsInf(w, 1) {
				return false
			}
			continue
		}
		if math.Abs(v-w) > tol {
			return false
		}
	}
	return true
}

// NNZ counts the finite entries of m — the structural nonzeros of the
// min-plus semiring, where Inf is the additive identity.
func (m *Matrix) NNZ() int {
	nnz := 0
	for _, v := range m.V {
		if !math.IsInf(v, 1) {
			nnz++
		}
	}
	return nnz
}

// Density is NNZ divided by the matrix area; an empty (0-dimension)
// matrix has density 0. The packed wire encoder and the sparse kernel's
// fallback threshold both key off this value.
func (m *Matrix) Density() float64 {
	if len(m.V) == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(len(m.V))
}

// IsAllInf reports whether every entry is Inf — the "empty block"
// predicate of Section 4.1 whose computations can be skipped. It sits
// on the broadcast skip path, so it short-circuits on the first finite
// entry instead of counting all of them like NNZ.
func (m *Matrix) IsAllInf() bool {
	for _, v := range m.V {
		if !math.IsInf(v, 1) {
			return false
		}
	}
	return true
}

// MinInto folds src into dst element-wise: dst = dst ⊕ src. It is the
// reduction operator passed to comm collectives.
func MinInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("semiring: MinInto length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		if v < dst[i] {
			dst[i] = v
		}
	}
}

// EWiseMinInto performs m = m ⊕ o element-wise; shapes must match.
func (m *Matrix) EWiseMinInto(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("semiring: ewise-min %dx%d with %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	MinInto(m.V, o.V)
}

func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			v := m.At(i, j)
			if math.IsInf(v, 1) {
				s += "."
			} else {
				s += fmt.Sprintf("%g", v)
			}
		}
		s += "\n"
	}
	return s
}
