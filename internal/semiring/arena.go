package semiring

// Arena is a per-rank scratch buffer for kernel temporaries. The
// sparse executor sizes one from its Plan (the R2 panel updates need
// exactly one owned-block-sized temporary), so a numeric execute
// allocates no per-level scratch. An Arena is single-owner state: it
// must never back data that escapes the rank — the simulated machine
// hands payloads to receivers zero-copy, so anything sent on the wire
// has to stay on the heap.
type Arena struct {
	buf []float64
}

// NewArena returns an arena holding words scratch words.
func NewArena(words int) *Arena {
	return &Arena{buf: make([]float64, words)}
}

// Scratch returns an n-word scratch slice. The contents are
// unspecified; callers overwrite before reading. A nil arena, or a
// request beyond the arena's capacity, falls back to a fresh heap
// allocation so undersized plans degrade to the old per-call behavior
// instead of failing.
func (a *Arena) Scratch(n int) []float64 {
	if a == nil || n > len(a.buf) {
		return make([]float64, n)
	}
	return a.buf[:n]
}
