package semiring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMulAdd is the obvious triple loop, used as the oracle.
func naiveMulAdd(c, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			best := c.At(i, j)
			for k := 0; k < a.Cols; k++ {
				if s := a.At(i, k) + b.At(k, j); s < best {
					best = s
				}
			}
			c.Set(i, j, best)
		}
	}
}

func randomMatrix(rows, cols int, infFrac float64, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.V {
		if rng.Float64() >= infFrac {
			m.V[i] = math.Floor(rng.Float64()*20) - 2 // include negatives
		}
	}
	return m
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if !m.IsAllInf() {
		t.Error("new matrix should be all Inf")
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Error("Set/At mismatch")
	}
	if m.IsAllInf() {
		t.Error("matrix with an entry is not all Inf")
	}
	c := m.Clone()
	c.Set(0, 0, 1)
	if !math.IsInf(m.At(0, 0), 1) {
		t.Error("clone mutation leaked")
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 5 {
		t.Error("transpose wrong")
	}
}

func TestZeroDimensionMatrices(t *testing.T) {
	a := NewMatrix(0, 5)
	b := NewMatrix(5, 0)
	c := NewMatrix(0, 0)
	if ops := MulAddInto(c, a, b); ops != 0 {
		t.Errorf("empty mul ops = %d", ops)
	}
	d := NewMatrix(0, 0)
	if ops := ClassicalFW(d); ops != 0 {
		t.Errorf("empty FW ops = %d", ops)
	}
	e := NewMatrix(3, 0)
	f := NewMatrix(0, 4)
	g := NewMatrix(3, 4)
	before := g.Clone()
	MulAddInto(g, e, f)
	if !g.Equal(before) {
		t.Error("mul with empty inner dimension changed C")
	}
}

func TestMulAddIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		r, k, c := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomMatrix(r, k, 0.3, rng)
		b := randomMatrix(k, c, 0.3, rng)
		c1 := randomMatrix(r, c, 0.5, rng)
		c2 := c1.Clone()
		MulAddInto(c1, a, b)
		naiveMulAdd(c2, a, b)
		if !c1.Equal(c2) {
			t.Fatalf("trial %d: MulAddInto diverges from naive\n%v\nvs\n%v", trial, c1, c2)
		}
	}
}

func TestMulAddIntoFullMatchesSkipping(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(8, 9, 0.5, rng)
	b := randomMatrix(9, 7, 0.5, rng)
	c1 := randomMatrix(8, 7, 0.5, rng)
	c2 := c1.Clone()
	opsSkip := MulAddInto(c1, a, b)
	opsFull := MulAddIntoFull(c2, a, b)
	if !c1.Equal(c2) {
		t.Fatal("full and skipping kernels disagree")
	}
	if opsFull != 8*9*7 {
		t.Errorf("full ops = %d, want %d", opsFull, 8*9*7)
	}
	if opsSkip > opsFull {
		t.Errorf("skipping ops %d exceed full ops %d", opsSkip, opsFull)
	}
}

func TestMulAddIntoParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomMatrix(64, 48, 0.2, rng)
	b := randomMatrix(48, 56, 0.2, rng)
	c1 := randomMatrix(64, 56, 0.8, rng)
	c2 := c1.Clone()
	ops1 := MulAddInto(c1, a, b)
	ops2 := MulAddIntoParallel(c2, a, b)
	if !c1.Equal(c2) {
		t.Fatal("parallel kernel diverges from serial")
	}
	if ops1 != ops2 {
		t.Errorf("ops: serial %d, parallel %d", ops1, ops2)
	}
}

func TestClassicalFWOnTriangle(t *testing.T) {
	// 3-cycle with a shortcut: 0-1 (1), 1-2 (1), 0-2 (5).
	m := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, 0)
	}
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 2, 1)
	m.Set(2, 1, 1)
	m.Set(0, 2, 5)
	m.Set(2, 0, 5)
	ClassicalFW(m)
	if m.At(0, 2) != 2 || m.At(2, 0) != 2 {
		t.Errorf("d(0,2) = %v, want 2", m.At(0, 2))
	}
}

func TestClassicalFWHandlesNegativeEdges(t *testing.T) {
	// The kernel works on arbitrary (also asymmetric) matrices; negative
	// weights are allowed as long as no negative cycle exists. (In an
	// undirected graph any negative edge is a negative cycle, so the
	// asymmetric case is the only meaningful one.)
	// 0 →(-2)→ 1 →(3)→ 2, direct 0→2 is 4; shortest is 1.
	m := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, 0)
	}
	m.Set(0, 1, -2)
	m.Set(1, 2, 3)
	m.Set(0, 2, 4)
	ClassicalFW(m)
	if m.At(0, 2) != 1 {
		t.Errorf("d(0,2) = %v, want 1", m.At(0, 2))
	}
	if v := m.At(2, 0); !math.IsInf(v, 1) {
		t.Errorf("d(2,0) = %v, want Inf", v)
	}
}

func TestClassicalFWClampsDiagonal(t *testing.T) {
	m := NewMatrix(2, 2) // all Inf including diagonal
	m.Set(0, 1, 3)
	m.Set(1, 0, 3)
	ClassicalFW(m)
	if m.At(0, 0) != 0 || m.At(1, 1) != 0 {
		t.Error("diagonal not clamped to 0")
	}
	if m.At(0, 1) != 3 {
		t.Errorf("d(0,1) = %v", m.At(0, 1))
	}
}

// Property: BlockedFW equals ClassicalFW for every block size.
func TestBlockedFWMatchesClassical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(25)
		m := randomSymmetricDistance(n, rng)
		want := m.Clone()
		ClassicalFW(want)
		for _, b := range []int{1, 2, 3, 5, 7, n, n + 3} {
			got := m.Clone()
			BlockedFW(got, b)
			if !got.Equal(want) {
				t.Fatalf("n=%d b=%d: BlockedFW diverges from ClassicalFW", n, b)
			}
		}
	}
}

// randomSymmetricDistance builds a symmetric matrix with zero diagonal,
// positive weights and some Inf entries — a valid distance-matrix input.
func randomSymmetricDistance(n int, rng *rand.Rand) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 0)
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.4 {
				w := 1 + math.Floor(rng.Float64()*9)
				m.Set(i, j, w)
				m.Set(j, i, w)
			}
		}
	}
	return m
}

// Property: FW output is idempotent (already closed) and satisfies the
// triangle inequality d(i,j) ≤ d(i,k) + d(k,j).
func TestQuickFWClosureProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		m := randomSymmetricDistance(n, rng)
		ClassicalFW(m)
		again := m.Clone()
		ClassicalFW(again)
		if !again.Equal(m) {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if m.At(i, k)+m.At(k, j) < m.At(i, j) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: FW is invariant under the pivot order — the fact the
// elimination-tree scheduling of the paper relies on. We check it by
// comparing FW on the matrix and FW on a symmetric permutation of it.
func TestQuickFWPermutationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		m := randomSymmetricDistance(n, rng)
		perm := rng.Perm(n)
		pm := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				pm.Set(perm[i], perm[j], m.At(i, j))
			}
		}
		ClassicalFW(m)
		ClassicalFW(pm)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, b := m.At(i, j), pm.At(perm[i], perm[j])
				if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPanelUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := randomSymmetricDistance(6, rng)
	ClassicalFW(d)
	p := randomMatrix(4, 6, 0.3, rng)
	want := p.Clone()
	naiveMulAdd(want, p.Clone(), d)
	got := p.Clone()
	PanelUpdateLeft(got, d)
	if !got.Equal(want) {
		t.Error("PanelUpdateLeft diverges from naive P ⊕ P⊗D")
	}
	q := randomMatrix(6, 4, 0.3, rng)
	wantQ := q.Clone()
	naiveMulAdd(wantQ, d, q.Clone())
	gotQ := q.Clone()
	PanelUpdateRight(gotQ, d)
	if !gotQ.Equal(wantQ) {
		t.Error("PanelUpdateRight diverges from naive P ⊕ D⊗P")
	}
}

func TestMinInto(t *testing.T) {
	dst := []float64{3, 1, Inf}
	MinInto(dst, []float64{2, 5, 4})
	if dst[0] != 2 || dst[1] != 1 || dst[2] != 4 {
		t.Errorf("MinInto = %v", dst)
	}
}

func TestEWiseMinInto(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 5, Inf, 0})
	b := FromSlice(2, 2, []float64{2, 3, 7, -1})
	a.EWiseMinInto(b)
	want := FromSlice(2, 2, []float64{1, 3, 7, -1})
	if !a.Equal(want) {
		t.Errorf("EWiseMinInto = %v", a.V)
	}
}

func TestDimensionPanics(t *testing.T) {
	cases := []func(){
		func() { MulAddInto(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(4, 2)) },
		func() { ClassicalFW(NewMatrix(2, 3)) },
		func() { BlockedFW(NewMatrix(3, 3), 0) },
		func() { FromSlice(2, 2, []float64{1}) },
		func() { NewMatrix(2, 2).CopyFrom(NewMatrix(3, 3)) },
		func() { MinInto([]float64{1}, []float64{1, 2}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestStringRendersInfAsDot(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Set(0, 0, 3)
	if s := m.String(); s != "3 .\n" {
		t.Errorf("String() = %q", s)
	}
}

// Property: MulAddInto never increases any entry of C (min-plus
// accumulation is monotone non-increasing).
func TestQuickMulAddMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a := randomMatrix(r, k, 0.3, rng)
		b := randomMatrix(k, c, 0.3, rng)
		before := randomMatrix(r, c, 0.4, rng)
		after := before.Clone()
		MulAddInto(after, a, b)
		for i := range after.V {
			if after.V[i] > before.V[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: min-plus multiplication is associative on closed operands'
// results: (A⊗B)⊗C == A⊗(B⊗C) starting from all-Inf accumulators.
func TestQuickMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomMatrix(n, n, 0.3, rng)
		b := randomMatrix(n, n, 0.3, rng)
		c := randomMatrix(n, n, 0.3, rng)
		ab := NewMatrix(n, n)
		MulAddInto(ab, a, b)
		abc1 := NewMatrix(n, n)
		MulAddInto(abc1, ab, c)
		bc := NewMatrix(n, n)
		MulAddInto(bc, b, c)
		abc2 := NewMatrix(n, n)
		MulAddInto(abc2, a, bc)
		return abc1.EqualTol(abc2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulAddIntoParallelBranches(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	// Single-row matrix exercises the serial fallback.
	a1 := randomMatrix(1, 6, 0.2, rng)
	b1 := randomMatrix(6, 4, 0.2, rng)
	c1 := NewMatrix(1, 4)
	c2 := c1.Clone()
	MulAddIntoParallel(c1, a1, b1)
	MulAddInto(c2, a1, b1)
	if !c1.Equal(c2) {
		t.Error("single-row parallel fallback diverges")
	}
	// Dimension mismatch panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected dimension panic in parallel multiply")
			}
		}()
		MulAddIntoParallel(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(4, 2))
	}()
}

func TestMatrixFillAndCopy(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Fill(7)
	for _, v := range m.V {
		if v != 7 {
			t.Fatalf("Fill left %v", v)
		}
	}
	src := NewMatrix(2, 3)
	src.Fill(3)
	m.CopyFrom(src)
	if m.At(1, 2) != 3 {
		t.Error("CopyFrom failed")
	}
}

func TestEqualVariants(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, Inf, 3})
	b := FromSlice(1, 3, []float64{1, Inf, 3})
	if !a.Equal(b) || !a.EqualTol(b, 0) {
		t.Error("identical matrices reported unequal")
	}
	c := FromSlice(1, 3, []float64{1, Inf, 3.0000001})
	if a.Equal(c) {
		t.Error("Equal ignored difference")
	}
	if !a.EqualTol(c, 1e-3) {
		t.Error("EqualTol rejected within-tolerance difference")
	}
	d := FromSlice(1, 3, []float64{1, 2, 3})
	if a.EqualTol(d, 1e9) {
		t.Error("EqualTol accepted Inf vs finite mismatch")
	}
	e := FromSlice(3, 1, []float64{1, Inf, 3})
	if a.Equal(e) || a.EqualTol(e, 1) {
		t.Error("shape mismatch reported equal")
	}
}

func TestNewMatrixRejectsNegativeDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative dimensions")
		}
	}()
	NewMatrix(-1, 2)
}

func TestEWiseMinIntoShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for shape mismatch")
		}
	}()
	NewMatrix(2, 2).EWiseMinInto(NewMatrix(2, 3))
}
