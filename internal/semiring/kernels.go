package semiring

import (
	"fmt"
	"math"
)

// Every kernel returns the number of semiring operations it performed
// (one ⊕ plus one ⊗ per inner-loop step), so callers can charge the
// simulated machine's flop clock and the experiments can verify the
// F = Ω(n²|S|) operation-count bound of Lemma 6.4.

// MulAddInto computes C = C ⊕ A ⊗ B. A is r×k, B is k×c, C is r×c.
// The i-k-j loop order keeps the B row access sequential for cache
// friendliness, and rows of A that are entirely Inf are skipped (the
// empty-block saving of Section 4.1 at element granularity).
func MulAddInto(c, a, b *Matrix) int64 {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("semiring: mul dims %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	var ops int64
	for i := 0; i < a.Rows; i++ {
		arow := a.V[i*a.Cols : (i+1)*a.Cols]
		crow := c.V[i*c.Cols : (i+1)*c.Cols]
		for k, aik := range arow {
			if math.IsInf(aik, 1) {
				continue
			}
			brow := b.V[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range brow {
				if s := aik + bkj; s < crow[j] {
					crow[j] = s
				}
			}
			ops += int64(len(brow))
		}
	}
	return ops
}

// MulAddIntoFull is MulAddInto without the Inf-row skip; it always
// performs r·k·c operations. The operation-count experiments use it to
// measure the classical (non-avoiding) cost.
func MulAddIntoFull(c, a, b *Matrix) int64 {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("semiring: mul dims %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.V[i*a.Cols : (i+1)*a.Cols]
		crow := c.V[i*c.Cols : (i+1)*c.Cols]
		for k, aik := range arow {
			brow := b.V[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range brow {
				if s := aik + bkj; s < crow[j] {
					crow[j] = s
				}
			}
		}
	}
	return int64(a.Rows) * int64(a.Cols) * int64(b.Cols)
}

// MulAddIntoParallel is MulAddInto with the row loop split over the
// persistent DefaultPool workers. Distinct bands write disjoint row
// blocks of C, so no synchronization beyond the final join is needed.
// Use it for large sequential baselines; the simulated-machine
// algorithms use the serial kernel because each rank is already a
// goroutine. MulAddIntoPooled additionally tiles each band.
func MulAddIntoParallel(c, a, b *Matrix) int64 {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("semiring: mul dims %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	workers := DefaultPool.Size()
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 {
		return MulAddInto(c, a, b)
	}
	ops := make([]int64, workers)
	DefaultPool.ForEach(workers, func(w int) {
		lo := w * a.Rows / workers
		hi := (w + 1) * a.Rows / workers
		sub := &Matrix{Rows: hi - lo, Cols: a.Cols, V: a.V[lo*a.Cols : hi*a.Cols]}
		csub := &Matrix{Rows: hi - lo, Cols: c.Cols, V: c.V[lo*c.Cols : hi*c.Cols]}
		ops[w] = MulAddInto(csub, sub, b)
	})
	var total int64
	for _, o := range ops {
		total += o
	}
	return total
}

// ClassicalFW runs the classical Floyd–Warshall update on the square
// matrix m in place: m_ij = m_ij ⊕ m_ik ⊗ m_kj for all k, i, j. The
// diagonal is clamped to ⊕0 first so that a block whose diagonal was
// never initialized still behaves as a distance matrix.
func ClassicalFW(m *Matrix) int64 {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("semiring: ClassicalFW on %dx%d matrix", m.Rows, m.Cols))
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		if m.V[i*n+i] > 0 {
			m.V[i*n+i] = 0
		}
	}
	var ops int64
	for k := 0; k < n; k++ {
		krow := m.V[k*n : (k+1)*n]
		for i := 0; i < n; i++ {
			mik := m.V[i*n+k]
			if math.IsInf(mik, 1) {
				continue
			}
			irow := m.V[i*n : (i+1)*n]
			for j, mkj := range krow {
				if s := mik + mkj; s < irow[j] {
					irow[j] = s
				}
			}
			ops += int64(n)
		}
	}
	return ops
}

// PanelUpdateLeft computes P = P ⊕ P ⊗ D for a column panel P (r×k) and
// diagonal block D (k×k): the A(i,k) ← A(i,k) ⊕ A(i,k)⊗A(k,k) step of
// the blocked algorithm. D must already be transitively closed
// (ClassicalFW applied), which makes a single pass sufficient.
func PanelUpdateLeft(p, d *Matrix) int64 {
	tmp := p.Clone()
	return MulAddInto(p, tmp, d)
}

// PanelUpdateRight computes P = P ⊕ D ⊗ P for a row panel P (k×c) and a
// transitively closed diagonal block D (k×k).
func PanelUpdateRight(p, d *Matrix) int64 {
	tmp := p.Clone()
	return MulAddInto(p, d, tmp)
}

// BlockedFW runs the blocked Floyd–Warshall algorithm of Section 3.3 on
// the square matrix m in place with block size b: for each block pivot
// k — diagonal update, panel updates, then the min-plus outer product.
// It is the shared-memory reference the distributed algorithms are
// validated against.
func BlockedFW(m *Matrix, b int) int64 {
	return BlockedFWKernel(m, b, KernelSerial)
}

// BlockedFWKernel is BlockedFW with an explicit kernel choice for the
// diagonal, panel and outer-product steps. Results and operation
// counts are identical for every kernel.
func BlockedFWKernel(m *Matrix, b int, kern Kernel) int64 {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("semiring: BlockedFW on %dx%d matrix", m.Rows, m.Cols))
	}
	if b <= 0 {
		panic("semiring: BlockedFW block size must be positive")
	}
	n := m.Rows
	nb := (n + b - 1) / b
	var ops int64
	// view extracts block (bi, bj) as a copy.
	view := func(bi, bj int) *Matrix {
		r0, r1 := bi*b, min(n, (bi+1)*b)
		c0, c1 := bj*b, min(n, (bj+1)*b)
		blk := NewMatrix(r1-r0, c1-c0)
		for r := r0; r < r1; r++ {
			copy(blk.V[(r-r0)*blk.Cols:(r-r0+1)*blk.Cols], m.V[r*n+c0:r*n+c1])
		}
		return blk
	}
	store := func(bi, bj int, blk *Matrix) {
		r0 := bi * b
		c0 := bj * b
		for r := 0; r < blk.Rows; r++ {
			copy(m.V[(r0+r)*n+c0:(r0+r)*n+c0+blk.Cols], blk.V[r*blk.Cols:(r+1)*blk.Cols])
		}
	}
	for k := 0; k < nb; k++ {
		dk := view(k, k)
		ops += kern.ClassicalFW(dk)
		store(k, k, dk)
		panelsCol := make([]*Matrix, nb)
		panelsRow := make([]*Matrix, nb)
		for i := 0; i < nb; i++ {
			if i == k {
				continue
			}
			pc := view(i, k)
			ops += kern.PanelUpdateLeft(pc, dk)
			store(i, k, pc)
			panelsCol[i] = pc
			pr := view(k, i)
			ops += kern.PanelUpdateRight(pr, dk)
			store(k, i, pr)
			panelsRow[i] = pr
		}
		for i := 0; i < nb; i++ {
			if i == k {
				continue
			}
			// The sparse kernel builds the column panel's CSR index once
			// and reuses it across all nb-1 outer products of block row i.
			var ixc *SparseIndex
			if kern == KernelSparse {
				ixc = IndexIfSparse(panelsCol[i])
			}
			for j := 0; j < nb; j++ {
				if j == k {
					continue
				}
				blk := view(i, j)
				if ixc != nil {
					ops += ixc.MulAddInto(blk, panelsRow[j])
				} else {
					ops += kern.MulAddInto(blk, panelsCol[i], panelsRow[j])
				}
				store(i, j, blk)
			}
		}
	}
	return ops
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
