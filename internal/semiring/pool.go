package semiring

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent set of worker goroutines for the parallel
// kernels. The previous MulAddIntoParallel spawned fresh goroutines on
// every call, which costs a scheduler round-trip per worker per
// multiply — measurable when the solvers issue thousands of small
// block multiplies. A Pool starts its workers once, lazily, and hands
// them closures over a buffered channel.
//
// Submission never blocks and never deadlocks: if every worker is busy
// (including when pool calls nest, as in SuperFWParallel running pooled
// block kernels), the caller simply executes the work itself — the pool
// degrades to the serial kernel instead of queueing behind itself.
type Pool struct {
	size int
	once sync.Once
	jobs chan func()
}

// NewPool returns a pool with the given number of workers; size <= 0
// means runtime.GOMAXPROCS(0) at first use. Workers start lazily on
// the first ForEach, so constructing a Pool is free.
func NewPool(size int) *Pool { return &Pool{size: size} }

// DefaultPool is the package-wide pool used by MulAddIntoPooled,
// MulAddIntoParallel and the pooled Kernel methods.
var DefaultPool = NewPool(0)

func (p *Pool) start() {
	p.once.Do(func() {
		if p.size <= 0 {
			p.size = runtime.GOMAXPROCS(0)
		}
		p.jobs = make(chan func(), p.size)
		for w := 0; w < p.size; w++ {
			go func() {
				for job := range p.jobs {
					job()
				}
			}()
		}
	})
}

// Size returns the number of workers the pool runs (resolving the
// GOMAXPROCS default if needed).
func (p *Pool) Size() int {
	p.start()
	return p.size
}

// ForEach runs f(i) for every i in [0, n) across the pool's workers
// plus the calling goroutine, with dynamic (work-stealing) scheduling.
// It returns when every index has been processed. f must be safe to
// call concurrently for distinct indices.
func (p *Pool) ForEach(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		f(0)
		return
	}
	p.start()
	var next atomic.Int64
	loop := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			f(i)
		}
	}
	helpers := p.size
	if helpers > n-1 {
		helpers = n - 1 // the caller always covers at least one index
	}
	var wg sync.WaitGroup
	for w := 0; w < helpers; w++ {
		wg.Add(1)
		job := func() {
			loop()
			wg.Done()
		}
		select {
		case p.jobs <- job:
		default:
			wg.Done() // pool saturated: the caller absorbs the work
		}
	}
	loop()
	wg.Wait()
}

// Drive runs worker(i) for every i in [0, n), at most Size() at a
// time, on dedicated goroutines plus the caller — never on the pool's
// job workers. It exists for long-lived worker loops (the dataflow
// plan executor's drain loops block waiting for ready ops): a job
// worker blocked inside such a loop could not pick up the nested
// kernel jobs the loop itself submits through the pooled kernels,
// which would wedge the pool when every job worker is so occupied.
// Drive returns when every worker call has returned.
func (p *Pool) Drive(n int, worker func(i int)) {
	if n <= 0 {
		return
	}
	limit := p.Size()
	if limit > n {
		limit = n
	}
	var next atomic.Int64
	loop := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			worker(i)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < limit-1; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			loop()
		}()
	}
	loop()
	wg.Wait()
}

// MulAddInto computes C = C ⊕ A ⊗ B with the tiled kernel fanned out
// over the pool in contiguous row bands. Distinct bands write disjoint
// rows of C, so no synchronization beyond the final join is needed;
// results and the operation count are identical to MulAddInto.
func (p *Pool) MulAddInto(c, a, b *Matrix) int64 {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("semiring: mul dims %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	tk, tj := TileSizes()
	rows := a.Rows
	// Two bands per worker balances uneven Inf density without
	// shrinking bands below the tile reuse sweet spot.
	bands := 2 * p.Size()
	if bands > rows {
		bands = rows
	}
	if bands <= 1 {
		return mulAddTiledRows(c, a, b, 0, rows, tk, tj)
	}
	ops := make([]int64, bands)
	p.ForEach(bands, func(t int) {
		lo, hi := t*rows/bands, (t+1)*rows/bands
		ops[t] = mulAddTiledRows(c, a, b, lo, hi, tk, tj)
	})
	var total int64
	for _, o := range ops {
		total += o
	}
	return total
}

// MulAddIntoPooled is MulAddInto on the DefaultPool: tiled panels, row
// bands across the persistent workers. Identical results and operation
// count to the serial kernel.
func MulAddIntoPooled(c, a, b *Matrix) int64 {
	return DefaultPool.MulAddInto(c, a, b)
}

// classicalFWPooled is ClassicalFW with each pivot step's row updates
// fanned out over the pool. The k loop is inherently sequential (step
// k reads the pivot row produced by step k−1), but within one step the
// row updates are independent — except for pivot row k itself, whose
// self-update can rewrite the data other rows are reading when the
// clamped diagonal is negative (a negative cycle through k). In that
// case the serial order (rows < k, then row k, then rows > k) is
// reproduced exactly; otherwise the self-update is a read-only no-op
// and every row runs concurrently. Results and operation counts are
// identical to ClassicalFW for all inputs.
func classicalFWPooled(p *Pool, m *Matrix) int64 {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("semiring: ClassicalFW on %dx%d matrix", m.Rows, m.Cols))
	}
	n := m.Rows
	// Below this the per-pivot joins cost more than the row work.
	if n < 192 {
		return ClassicalFW(m)
	}
	for i := 0; i < n; i++ {
		if m.V[i*n+i] > 0 {
			m.V[i*n+i] = 0
		}
	}
	bands := 2 * p.Size()
	if bands > n {
		bands = n
	}
	partial := make([]int64, bands)
	var ops int64
	rowRange := func(k, lo, hi int) int64 {
		krow := m.V[k*n : (k+1)*n]
		var o int64
		for i := lo; i < hi; i++ {
			mik := m.V[i*n+k]
			if math.IsInf(mik, 1) {
				continue
			}
			minPlusRow(m.V[i*n:(i+1)*n], mik, krow)
			o += int64(n)
		}
		return o
	}
	for k := 0; k < n; k++ {
		if m.V[k*n+k] < 0 {
			// Negative diagonal: replay the serial order around row k.
			ops += rowRange(k, 0, k)
			ops += rowRange(k, k, k+1)
			ops += rowRange(k, k+1, n)
			continue
		}
		p.ForEach(bands, func(t int) {
			partial[t] = rowRange(k, t*n/bands, (t+1)*n/bands)
		})
		for t := range partial {
			ops += partial[t]
		}
	}
	return ops
}
