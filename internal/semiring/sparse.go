package semiring

import (
	"fmt"
	"math"
)

// CSR-style min-plus multiply. The serial kernel already skips Inf
// pivots, but it rescans the full row of A to find them, and the tiled
// kernel rescans every (k-tile, j-tile) pass — on a low-density panel
// almost all of that scanning is wasted. MulAddIntoSparse builds a
// compact index of the finite entries of A once, then streams only
// those, fusing four pivots per pass over C like the tiled kernel's
// register blocking. Above SparseDensityThreshold the index buys
// nothing over cache blocking, so it falls back to the tiled kernel.
//
// The semantics are exactly MulAddInto's: pivots are visited in
// ascending k order per row, each candidate a(i,k)+b(k,j) is formed
// identically, and the operation count charges len(brow) per finite
// pivot — so results are bit-identical and cost reports are unchanged
// (the kernel-invariance tests lock this in).

// SparseDensityThreshold is the finite-entry density of A above which
// MulAddIntoSparse hands the multiply to the tiled kernel. At half
// full, the index roughly matches the dense row in size and the tiled
// kernel's B-panel reuse wins; below it, skipping the Inf scan and the
// per-tile rescans dominates.
const SparseDensityThreshold = 0.5

// SparseIndex is a CSR view of the finite entries of a matrix: row i's
// pivots are Col/Val[RowPtr[i]:RowPtr[i+1]], ascending in column. Build
// it once per panel and reuse it across every multiply that panel
// participates in (BlockedFWKernel reuses one index across all nb-1
// outer products of a block row).
type SparseIndex struct {
	Rows, Cols int
	RowPtr     []int
	Col        []int
	Val        []float64
}

// IndexMatrix builds the CSR index of a's finite entries.
func IndexMatrix(a *Matrix) *SparseIndex {
	ix := &SparseIndex{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int, a.Rows+1)}
	nnz := a.NNZ()
	ix.Col = make([]int, 0, nnz)
	ix.Val = make([]float64, 0, nnz)
	for i := 0; i < a.Rows; i++ {
		for k, v := range a.V[i*a.Cols : (i+1)*a.Cols] {
			if !math.IsInf(v, 1) {
				ix.Col = append(ix.Col, k)
				ix.Val = append(ix.Val, v)
			}
		}
		ix.RowPtr[i+1] = len(ix.Col)
	}
	return ix
}

// IndexIfSparse returns a's CSR index when its density is below
// SparseDensityThreshold, else nil (use the tiled kernel instead).
func IndexIfSparse(a *Matrix) *SparseIndex {
	if len(a.V) == 0 {
		return IndexMatrix(a)
	}
	if float64(a.NNZ())/float64(len(a.V)) >= SparseDensityThreshold {
		return nil
	}
	return IndexMatrix(a)
}

// NNZ returns the number of indexed finite entries.
func (ix *SparseIndex) NNZ() int { return len(ix.Col) }

// MulAddInto computes C = C ⊕ A ⊗ B where A is the indexed matrix.
// Results and the returned operation count are identical to
// MulAddInto(c, a, b).
func (ix *SparseIndex) MulAddInto(c, b *Matrix) int64 {
	if ix.Cols != b.Rows || c.Rows != ix.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("semiring: mul dims %dx%d * %dx%d -> %dx%d",
			ix.Rows, ix.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	jj := b.Cols
	if jj == 0 {
		return 0
	}
	var ops int64
	for i := 0; i < ix.Rows; i++ {
		lo, hi := ix.RowPtr[i], ix.RowPtr[i+1]
		if lo == hi {
			continue
		}
		crow := c.V[i*jj : (i+1)*jj]
		// Fuse four pivots per pass over crow, in ascending k order,
		// exactly like the tiled kernel's register blocking.
		t := lo
		for ; t+4 <= hi; t += 4 {
			ka, kb, kc, kd := ix.Col[t], ix.Col[t+1], ix.Col[t+2], ix.Col[t+3]
			minPlusRow4(crow,
				ix.Val[t], b.V[ka*jj:ka*jj+jj],
				ix.Val[t+1], b.V[kb*jj:kb*jj+jj],
				ix.Val[t+2], b.V[kc*jj:kc*jj+jj],
				ix.Val[t+3], b.V[kd*jj:kd*jj+jj])
		}
		for ; t < hi; t++ {
			k := ix.Col[t]
			minPlusRow(crow, ix.Val[t], b.V[k*jj:k*jj+jj])
		}
		ops += int64(hi-lo) * int64(jj)
	}
	return ops
}

// MulAddIntoSparse computes C = C ⊕ A ⊗ B via a CSR index of A when A
// is below SparseDensityThreshold, falling back to the tiled kernel on
// dense inputs. Results and operation counts match MulAddInto exactly.
func MulAddIntoSparse(c, a, b *Matrix) int64 {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("semiring: mul dims %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	if ix := IndexIfSparse(a); ix != nil {
		return ix.MulAddInto(c, b)
	}
	return MulAddIntoTiled(c, a, b)
}
