package semiring

import (
	"math/rand"
	"testing"
)

func benchMatrix(n int, rng *rand.Rand) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 0)
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < 0.5 {
				m.Set(i, j, rng.Float64()*10)
			}
		}
	}
	return m
}

func BenchmarkMulAddInto(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := benchMatrix(n, rng)
			bm := benchMatrix(n, rng)
			c := NewMatrix(n, n)
			b.SetBytes(int64(n) * int64(n) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulAddInto(c, a, bm)
			}
		})
	}
}

func BenchmarkMulAddIntoParallel(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(1))
	a := benchMatrix(n, rng)
	bm := benchMatrix(n, rng)
	c := NewMatrix(n, n)
	b.SetBytes(int64(n) * int64(n) * 8)
	for i := 0; i < b.N; i++ {
		MulAddIntoParallel(c, a, bm)
	}
}

func BenchmarkClassicalFW(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			src := benchMatrix(n, rng)
			work := NewMatrix(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work.CopyFrom(src)
				ClassicalFW(work)
			}
		})
	}
}

func BenchmarkBlockedFW(b *testing.B) {
	const n = 256
	for _, blk := range []int{32, 64, 128} {
		b.Run("b="+itoa(blk), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			src := benchMatrix(n, rng)
			work := NewMatrix(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work.CopyFrom(src)
				BlockedFW(work, blk)
			}
		})
	}
}

// BenchmarkMinPlusKernels is the kernel-layer headline: serial vs
// tiled vs pooled min-plus multiply on square matrices up to
// 1024×1024, plus a tile-size sweep for the tiled kernel. Operation
// counts are asserted identical across kernels on every iteration, so
// the benchmark doubles as a large-shape regression check.
func BenchmarkMinPlusKernels(b *testing.B) {
	for _, n := range []int{256, 1024} {
		rng := rand.New(rand.NewSource(5))
		a := benchMatrix(n, rng)
		bm := benchMatrix(n, rng)
		c := NewMatrix(n, n)
		want := MulAddInto(c.Clone(), a, bm)
		kernels := []struct {
			name string
			f    func(c, a, b *Matrix) int64
		}{
			{"serial", MulAddInto},
			{"tiled", MulAddIntoTiled},
			{"pooled", MulAddIntoPooled},
			{"sparse", MulAddIntoSparse},
		}
		for _, k := range kernels {
			b.Run(k.name+"/n="+itoa(n), func(b *testing.B) {
				b.SetBytes(8 * int64(n) * int64(n))
				for i := 0; i < b.N; i++ {
					if ops := k.f(c, a, bm); ops != want {
						b.Fatalf("%s ops=%d, serial=%d", k.name, ops, want)
					}
				}
			})
		}
	}
}

// BenchmarkMinPlusLowDensity is the sparse kernel's headline: tiled vs
// CSR min-plus on panels whose A operand is mostly Inf — the regime of
// early-level supernodal blocks, where the CSR index skips the Inf
// scanning the dense kernels repeat per tile. Operation counts are
// asserted identical, so the benchmark doubles as a regression check.
func BenchmarkMinPlusLowDensity(b *testing.B) {
	const n = 512
	for _, density := range []float64{0.01, 0.05, 0.25} {
		rng := rand.New(rand.NewSource(7))
		a := NewMatrix(n, n)
		for i := range a.V {
			if rng.Float64() < density {
				a.V[i] = rng.Float64() * 10
			}
		}
		bm := benchMatrix(n, rng)
		c := NewMatrix(n, n)
		want := MulAddInto(c.Clone(), a, bm)
		kernels := []struct {
			name string
			f    func(c, a, b *Matrix) int64
		}{
			{"tiled", MulAddIntoTiled},
			{"sparse", MulAddIntoSparse},
		}
		for _, k := range kernels {
			b.Run(k.name+"/d="+itoa(int(density*100)), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if ops := k.f(c, a, bm); ops != want {
						b.Fatalf("%s ops=%d, serial=%d", k.name, ops, want)
					}
				}
			})
		}
	}
}

// BenchmarkPack measures the packed wire encoder on the three block
// shapes it distinguishes: all-Inf (1 word), low-density (index+value
// pairs) and full (dense body).
func BenchmarkPack(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(8))
	blocks := map[string]*Matrix{
		"empty":  NewMatrix(n, n),
		"sparse": NewMatrix(n, n),
		"dense":  benchMatrix(n, rng),
	}
	for i := range blocks["sparse"].V {
		if rng.Float64() < 0.02 {
			blocks["sparse"].V[i] = rng.Float64() * 10
		}
	}
	for _, name := range []string{"empty", "sparse", "dense"} {
		m := blocks[name]
		b.Run(name, func(b *testing.B) {
			b.SetBytes(8 * int64(n) * int64(n))
			for i := 0; i < b.N; i++ {
				payload := PackMatrix(m)
				if got := UnpackMatrix(payload, n, n); got.Rows != n {
					b.Fatal("bad roundtrip")
				}
			}
		})
	}
}

// BenchmarkMinPlusTileSizes sweeps the tiled kernel's (k, j) tile shape
// on a 1024×1024 multiply — the data behind the autotune's candidates.
func BenchmarkMinPlusTileSizes(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewSource(6))
	a := benchMatrix(n, rng)
	bm := benchMatrix(n, rng)
	c := NewMatrix(n, n)
	for _, tile := range [][2]int{{32, 256}, {64, 256}, {64, 512}, {128, 512}, {256, 1024}} {
		b.Run("tk="+itoa(tile[0])+"/tj="+itoa(tile[1]), func(b *testing.B) {
			SetTileSizes(tile[0], tile[1])
			defer SetTileSizes(0, 0)
			for i := 0; i < b.N; i++ {
				MulAddIntoTiled(c, a, bm)
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
