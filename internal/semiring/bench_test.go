package semiring

import (
	"math/rand"
	"testing"
)

func benchMatrix(n int, rng *rand.Rand) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 0)
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < 0.5 {
				m.Set(i, j, rng.Float64()*10)
			}
		}
	}
	return m
}

func BenchmarkMulAddInto(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := benchMatrix(n, rng)
			bm := benchMatrix(n, rng)
			c := NewMatrix(n, n)
			b.SetBytes(int64(n) * int64(n) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulAddInto(c, a, bm)
			}
		})
	}
}

func BenchmarkMulAddIntoParallel(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(1))
	a := benchMatrix(n, rng)
	bm := benchMatrix(n, rng)
	c := NewMatrix(n, n)
	b.SetBytes(int64(n) * int64(n) * 8)
	for i := 0; i < b.N; i++ {
		MulAddIntoParallel(c, a, bm)
	}
}

func BenchmarkClassicalFW(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			src := benchMatrix(n, rng)
			work := NewMatrix(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work.CopyFrom(src)
				ClassicalFW(work)
			}
		})
	}
}

func BenchmarkBlockedFW(b *testing.B) {
	const n = 256
	for _, blk := range []int{32, 64, 128} {
		b.Run("b="+itoa(blk), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			src := benchMatrix(n, rng)
			work := NewMatrix(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work.CopyFrom(src)
				BlockedFW(work, blk)
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
