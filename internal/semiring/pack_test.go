package semiring

import (
	"math"
	"math/rand"
	"testing"
)

func TestNNZAndDensity(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.NNZ() != 0 || m.Density() != 0 || !m.IsAllInf() {
		t.Fatalf("fresh matrix: NNZ=%d density=%g allInf=%v", m.NNZ(), m.Density(), m.IsAllInf())
	}
	m.Set(0, 0, 0)
	m.Set(2, 3, 1.5)
	m.Set(1, 2, math.Inf(-1)) // -Inf is a finite path weight, not the identity
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if got, want := m.Density(), 3.0/12; got != want {
		t.Fatalf("Density = %g, want %g", got, want)
	}
	if m.IsAllInf() {
		t.Fatal("IsAllInf on a matrix with finite entries")
	}
	empty := NewMatrix(0, 7)
	if empty.NNZ() != 0 || empty.Density() != 0 {
		t.Fatalf("0x7 matrix: NNZ=%d density=%g", empty.NNZ(), empty.Density())
	}
}

// TestPackEmptyIsO1Words is the wire-format half of the "empty panels
// cost O(1) words" guarantee: an all-Inf block of any size encodes to
// a single word.
func TestPackEmptyIsO1Words(t *testing.T) {
	for _, n := range []int{0, 1, 64, 100 * 100} {
		p := Pack(make100Inf(n))
		if len(p) != 1 {
			t.Fatalf("Pack(all-Inf, n=%d) = %d words, want 1", n, len(p))
		}
		v := Unpack(p, n)
		for i, x := range v {
			if !math.IsInf(x, 1) {
				t.Fatalf("n=%d: Unpack[%d] = %g, want +Inf", n, i, x)
			}
		}
	}
}

func make100Inf(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = Inf
	}
	return v
}

// TestPackChoosesSmallestEncoding pins the encoding selection: sparse
// pairs when 2+2·nnz beats 1+n, dense otherwise, and PackedLen always
// agrees with len(Pack(v)).
func TestPackChoosesSmallestEncoding(t *testing.T) {
	n := 100
	v := make100Inf(n)
	v[17] = 3.5
	v[80] = 0
	if p := Pack(v); len(p) != 2+2*2 || p[0] != packSparse {
		t.Fatalf("nnz=2: got %d words, tag %g", len(p), p[0])
	}
	for i := range v {
		v[i] = float64(i)
	}
	if p := Pack(v); len(p) != 1+n || p[0] != packDense {
		t.Fatalf("full: got %d words, tag %g", len(p), p[0])
	}
	// Exactly at the break-even point (2+2·nnz == 1+n is impossible for
	// even n; check the neighbourhood).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(90)
		v := make100Inf(n)
		for i := range v {
			if rng.Float64() < rng.Float64() {
				v[i] = rng.Float64()
			}
		}
		p := Pack(v)
		if got := PackedLen(v); got != len(p) {
			t.Fatalf("PackedLen=%d, len(Pack)=%d", got, len(p))
		}
		nnz := 0
		for _, x := range v {
			if !math.IsInf(x, 1) {
				nnz++
			}
		}
		want := 1
		if nnz > 0 {
			want = 1 + n
			if s := 2 + 2*nnz; s < want {
				want = s
			}
		}
		if len(p) != want {
			t.Fatalf("n=%d nnz=%d: %d words, want %d", n, nnz, len(p), want)
		}
		got := Unpack(p, n)
		for i := range v {
			if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
				t.Fatalf("roundtrip differs at %d: %g vs %g", i, got[i], v[i])
			}
		}
	}
}

func TestPackMatrixRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		m := randKernelMatrix(rng.Intn(20), rng.Intn(20), rng.Float64(), rng)
		got := UnpackMatrix(PackMatrix(m), m.Rows, m.Cols)
		if !bitIdentical(m, got) {
			t.Fatalf("trial %d: roundtrip differs for %dx%d", trial, m.Rows, m.Cols)
		}
	}
}

func TestUnpackRejectsMalformed(t *testing.T) {
	for _, bad := range [][]float64{
		{},                    // no tag
		{packEmpty, 1},        // trailing words after empty
		{packDense, 1, 2},     // wrong dense length for n=4
		{packSparse, 2, 0, 1}, // truncated pairs
		{packSparse, 1, 9, 1}, // index out of range for n=4
		{7},                   // unknown tag
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Unpack(%v, 4): expected panic", bad)
				}
			}()
			Unpack(bad, 4)
		}()
	}
}

// TestSparseIndexMulMatchesSerial locks the CSR kernel to the serial
// reference: bit-identical results and identical operation counts, with
// and without the index-reuse entry point, across densities that land
// on both sides of the fallback threshold.
func TestSparseIndexMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := [][3]int{{0, 0, 0}, {1, 1, 1}, {5, 0, 3}, {33, 17, 29}, {64, 64, 64}}
	for _, sh := range shapes {
		r, k, c := sh[0], sh[1], sh[2]
		for _, infFrac := range []float64{0, 0.2, 0.6, 0.95, 1} {
			a := randKernelMatrix(r, k, infFrac, rng)
			b := randKernelMatrix(k, c, infFrac, rng)
			cInit := randKernelMatrix(r, c, 0.5, rng)
			want := cInit.Clone()
			wantOps := MulAddInto(want, a, b)

			got := cInit.Clone()
			if ops := MulAddIntoSparse(got, a, b); ops != wantOps || !bitIdentical(got, want) {
				t.Fatalf("MulAddIntoSparse %v infFrac=%g: ops=%d want %d", sh, infFrac, ops, wantOps)
			}
			ix := IndexMatrix(a)
			if ix.NNZ() != a.NNZ() {
				t.Fatalf("index NNZ=%d, matrix NNZ=%d", ix.NNZ(), a.NNZ())
			}
			got2 := cInit.Clone()
			if ops := ix.MulAddInto(got2, b); ops != wantOps || !bitIdentical(got2, want) {
				t.Fatalf("SparseIndex.MulAddInto %v infFrac=%g: ops=%d want %d", sh, infFrac, ops, wantOps)
			}
		}
	}
}

func TestIndexIfSparseThreshold(t *testing.T) {
	dense := NewMatrix(8, 8)
	dense.Fill(1)
	if IndexIfSparse(dense) != nil {
		t.Fatal("full matrix should not be indexed")
	}
	sparse := NewMatrix(8, 8)
	sparse.Set(3, 4, 1)
	if IndexIfSparse(sparse) == nil {
		t.Fatal("near-empty matrix should be indexed")
	}
	if IndexIfSparse(NewMatrix(0, 5)) == nil {
		t.Fatal("0-row matrix should be indexed (trivially sparse)")
	}
}
