// Package bounds provides the closed-form asymptotic cost formulas of
// the paper — the upper bounds of Section 5.4, the lower bounds of
// Section 6, and the reduction factors of Sections 1 and 5.5 — so the
// experiments can plot measured costs against the curves of Table 2.
//
// Every function returns the formula with constant 1 (asymptotics have
// no constants); callers compare *shapes* — ratios across machine or
// problem sizes — never absolute values.
package bounds

import "math"

// log2 returns log₂(x) clamped below at 1, the usual convention that
// keeps O(log p) factors meaningful at p values where log p < 1.
func log2(x float64) float64 {
	l := math.Log2(x)
	if l < 1 {
		return 1
	}
	return l
}

// SparseMemory is the per-process memory of 2D-SPARSE-APSP
// (Section 5.4.1): O(n²/p + |S|²) words.
func SparseMemory(n, p, s int) float64 {
	return float64(n)*float64(n)/float64(p) + float64(s)*float64(s)
}

// SparseBandwidthUpper is the bandwidth cost of 2D-SPARSE-APSP
// (Theorem 5.10): O(n²·log²p/p + |S|²·log²p).
func SparseBandwidthUpper(n, p, s int) float64 {
	l2 := log2(float64(p))
	return float64(n)*float64(n)*l2*l2/float64(p) + float64(s)*float64(s)*l2*l2
}

// SparseLatencyUpper is the latency cost of 2D-SPARSE-APSP
// (Theorem 5.7): O(log²p).
func SparseLatencyUpper(p int) float64 {
	l := log2(float64(p))
	return l * l
}

// DenseMemory is the per-process memory of 2D-DC-APSP: O(n²/p).
func DenseMemory(n, p int) float64 {
	return float64(n) * float64(n) / float64(p)
}

// DenseBandwidthUpper is the bandwidth cost of 2D-DC-APSP: O(n²/√p).
func DenseBandwidthUpper(n, p int) float64 {
	return float64(n) * float64(n) / math.Sqrt(float64(p))
}

// DenseLatencyUpper is the latency cost of 2D-DC-APSP: O(√p·log²p).
func DenseLatencyUpper(p int) float64 {
	l := log2(float64(p))
	return math.Sqrt(float64(p)) * l * l
}

// MemoryLower is the per-process memory lower bound Ω(n²/p) (Table 2).
func MemoryLower(n, p int) float64 {
	return float64(n) * float64(n) / float64(p)
}

// BandwidthLowerSparse is the sparse-graph bandwidth lower bound of
// Theorem 6.5: Ω(n²/p + |S|²).
func BandwidthLowerSparse(n, p, s int) float64 {
	return float64(n)*float64(n)/float64(p) + float64(s)*float64(s)
}

// LatencyLowerSparse is the sparse-graph latency lower bound of
// Theorem 6.5: Ω(log²p).
func LatencyLowerSparse(p int) float64 {
	l := log2(float64(p))
	return l * l
}

// BandwidthLowerDense is the dense-graph bandwidth lower bound
// Ω(n²/√p) [Ballard et al.].
func BandwidthLowerDense(n, p int) float64 {
	return float64(n) * float64(n) / math.Sqrt(float64(p))
}

// LatencyLowerDense is the dense-graph latency lower bound Ω(√p).
func LatencyLowerDense(p int) float64 {
	return math.Sqrt(float64(p))
}

// OperationsLower is the sparse APSP operation-count lower bound of
// Lemma 6.4: Ω(n²·|S|).
func OperationsLower(n, s int) float64 {
	return float64(n) * float64(n) * float64(s)
}

// LatencyReductionFactor is the paper's claimed latency advantage of
// the sparse algorithm over 2D-DC-APSP (Section 5.5): O(√p/log p)
// (the abstract's O(√p) up to the log factor the discussion keeps).
func LatencyReductionFactor(p int) float64 {
	return math.Sqrt(float64(p)) / log2(float64(p))
}

// BandwidthReductionFactor is the claimed bandwidth advantage
// (Section 5.5): O(min(√p/log²p, n²/(|S|²·√p·log³p))).
func BandwidthReductionFactor(n, p, s int) float64 {
	l := log2(float64(p))
	sq := math.Sqrt(float64(p))
	a := sq / (l * l)
	b := float64(n) * float64(n) / (float64(s) * float64(s) * sq * l * l * l)
	return math.Min(a, b)
}

// SeparatorBandwidth is the cost of computing all separators
// (Section 5.4.4): O(n·log²p/√p) — subsumed by the APSP cost.
func SeparatorBandwidth(n, p int) float64 {
	l := log2(float64(p))
	return float64(n) * l * l / math.Sqrt(float64(p))
}

// SeparatorLatency is the latency of computing all separators:
// O(log²p).
func SeparatorLatency(p int) float64 {
	l := log2(float64(p))
	return l * l
}
