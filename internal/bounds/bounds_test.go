package bounds

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpecificValues(t *testing.T) {
	// p = 16: log²p = 16, √p = 4.
	if got := SparseLatencyUpper(16); got != 16 {
		t.Errorf("SparseLatencyUpper(16) = %v, want 16", got)
	}
	if got := DenseLatencyUpper(16); got != 64 {
		t.Errorf("DenseLatencyUpper(16) = %v, want 64", got)
	}
	if got := LatencyLowerDense(16); got != 4 {
		t.Errorf("LatencyLowerDense(16) = %v, want 4", got)
	}
	if got := SparseMemory(100, 4, 10); got != 2600 {
		t.Errorf("SparseMemory = %v, want 2600", got)
	}
	if got := BandwidthLowerSparse(100, 4, 10); got != 2600 {
		t.Errorf("BandwidthLowerSparse = %v, want 2600", got)
	}
	if got := OperationsLower(10, 3); got != 300 {
		t.Errorf("OperationsLower = %v, want 300", got)
	}
}

func TestLogClampAtSmallP(t *testing.T) {
	// p = 1 and p = 2 must not zero out the polylog factors.
	if got := SparseLatencyUpper(1); got != 1 {
		t.Errorf("SparseLatencyUpper(1) = %v, want 1", got)
	}
	if got := SparseBandwidthUpper(10, 1, 2); got <= 0 {
		t.Errorf("SparseBandwidthUpper(·, 1, ·) = %v, want > 0", got)
	}
}

// Upper bounds dominate the matching lower bounds (the near-optimality
// statement of the abstract).
func TestUppersDominateLowers(t *testing.T) {
	f := func(seedN, seedP, seedS uint8) bool {
		n := 10 + int(seedN)*10
		ps := []int{1, 9, 49, 225, 961}
		p := ps[int(seedP)%len(ps)]
		s := 1 + int(seedS)%(n/2)
		if SparseBandwidthUpper(n, p, s) < BandwidthLowerSparse(n, p, s) {
			return false
		}
		if SparseLatencyUpper(p) < LatencyLowerSparse(p) {
			return false
		}
		if DenseBandwidthUpper(n, p) < BandwidthLowerDense(n, p) {
			return false
		}
		if DenseLatencyUpper(p) < LatencyLowerDense(p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The sparse algorithm's predicted advantage grows with p for
// small-separator graphs (Section 5.5), and the bandwidth advantage
// collapses when |S| approaches n/√p.
func TestReductionFactorShapes(t *testing.T) {
	if LatencyReductionFactor(961) <= LatencyReductionFactor(49) {
		t.Error("latency reduction should grow with p")
	}
	n := 10000
	small := BandwidthReductionFactor(n, 225, 100)  // |S| = √n
	large := BandwidthReductionFactor(n, 225, 3000) // |S| huge
	if small <= large {
		t.Errorf("bandwidth advantage should shrink with |S|: %v vs %v", small, large)
	}
	if large >= 1 {
		t.Errorf("with a huge separator the claimed advantage %v should vanish", large)
	}
}

// The separator-computation cost must be subsumed by the APSP cost
// (the Section 5.4.4 claim) for any reasonable n, p.
func TestSeparatorCostSubsumed(t *testing.T) {
	for _, p := range []int{9, 49, 225} {
		for _, n := range []int{1000, 10000} {
			s := int(math.Sqrt(float64(n)))
			if SeparatorBandwidth(n, p) > SparseBandwidthUpper(n, p, s) {
				t.Errorf("n=%d p=%d: separator bandwidth exceeds APSP bandwidth", n, p)
			}
			if SeparatorLatency(p) > SparseLatencyUpper(p) {
				t.Errorf("n=%d p=%d: separator latency exceeds APSP latency", n, p)
			}
		}
	}
}

// Scaling sanity: sparse bandwidth falls ~linearly in p at fixed n,|S|;
// dense falls only as √p — the gap Table 2 reports.
func TestBandwidthScalingGap(t *testing.T) {
	n, s := 4096, 64
	sparseRatio := SparseBandwidthUpper(n, 49, s) / SparseBandwidthUpper(n, 961, s)
	denseRatio := DenseBandwidthUpper(n, 49) / DenseBandwidthUpper(n, 961)
	if sparseRatio <= denseRatio {
		t.Errorf("sparse bandwidth should scale better: sparse %.2f, dense %.2f", sparseRatio, denseRatio)
	}
}
