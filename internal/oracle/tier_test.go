package oracle

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// succSolve mirrors the production registry solver: distances from the
// classical loop, successors rebuilt by apsp.SuccessorsFromDist — the
// same deterministic reconstruction promotion runs, so a promoted
// oracle must answer path queries bit-identically too.
func succSolve(g *graph.Graph) (*apsp.PathResult, error) {
	return apsp.SuccessorsFromDist(g, apsp.FloydWarshallPaths(g).Dist)
}

// tierWorkloads builds the five standard graph families with small
// integer weights, so every distance is a small integer and the codec
// must land in the u16 tier.
func tierWorkloads(n int) map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(11))
	w := func(u, v int) float64 { return float64(rng.Intn(9) + 1) }
	side := 1
	for (side+1)*(side+1) <= n {
		side++
	}
	return map[string]*graph.Graph{
		"star": graph.Star(n, w),
		"tree": graph.RandomTree(n, w, rng),
		"grid": graph.Grid2D(side, side, w),
		"path": graph.Path(n, w),
		"gnp":  graph.RandomGNP(n, 4.0/float64(n), w, rng),
	}
}

func distOf(vals []float64, n int) *semiring.Matrix {
	return semiring.FromSlice(n, n, vals)
}

// TestCompressDistKinds pins the representation chosen for each value
// shape and proves bit-exact round trips through every tier kind.
func TestCompressDistKinds(t *testing.T) {
	inf := semiring.Inf
	cases := []struct {
		name string
		vals []float64
		kind string
	}{
		{"integer distances", []float64{0, 3, 7, inf}, "u16"},
		{"uniform fractional scale", []float64{0, 0.25, 1.5, inf}, "u16"},
		{"wide integers", []float64{0, 70000, 1e9, inf}, "u32"},
		// 2.5/1.5 is not an integer, so quantization fails; both values
		// survive a float32 round trip.
		{"f32-exact reals", []float64{0, 1.5, 2.5, inf}, "f32"},
		// 3·0.1 != 0.3 in float64 (and 0.1 is not float32-exact), so
		// nothing short of raw bits is lossless.
		{"f64-only reals", []float64{0, 0.1, 0.3, inf}, "f64"},
	}
	for _, tc := range cases {
		d := distOf(tc.vals, 2)
		blob := CompressDist(d)
		kind, n, err := CompressedInfo(blob)
		if err != nil {
			t.Fatalf("%s: CompressedInfo: %v", tc.name, err)
		}
		if kind != tc.kind || n != 2 {
			t.Errorf("%s: compressed as %s/n=%d, want %s/n=2", tc.name, kind, n, tc.kind)
		}
		got, err := DecompressDist(blob)
		if err != nil {
			t.Fatalf("%s: decompress: %v", tc.name, err)
		}
		for i, v := range tc.vals {
			if math.Float64bits(got.V[i]) != math.Float64bits(v) {
				t.Errorf("%s: value %d decoded to %v, want %v bit-exactly", tc.name, i, got.V[i], v)
			}
		}
	}
}

// TestCompressDistGraphFamilies runs the codec over real solved
// distance matrices: integer-weight graphs must land in u16 (the ≥4x
// retention claim needs ≤ 3 bytes/pair) and decode bit-identically.
func TestCompressDistGraphFamilies(t *testing.T) {
	for name, g := range tierWorkloads(40) {
		res, err := succSolve(g)
		if err != nil {
			t.Fatal(err)
		}
		blob := CompressDist(res.Dist)
		kind, _, err := CompressedInfo(blob)
		if err != nil {
			t.Fatal(err)
		}
		if kind != "u16" {
			t.Errorf("%s: integer-weight distances compressed as %s, want u16", name, kind)
		}
		got, err := DecompressDist(blob)
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		for i, v := range res.Dist.V {
			if math.Float64bits(got.V[i]) != math.Float64bits(v) {
				t.Fatalf("%s: value %d decoded to %v, want %v bit-exactly", name, i, got.V[i], v)
			}
		}
		if ratio := float64(res.MemoryBytes()) / float64(len(blob)); ratio < 4 {
			t.Errorf("%s: compression ratio %.2f vs hot tier, want >= 4", name, ratio)
		}
	}
}

// TestDecompressMalformed drives the tier decoder over truncations and
// header corruptions: decode-or-error, never panic (the registry fails
// closed on a bad blob by re-solving).
func TestDecompressMalformed(t *testing.T) {
	blob := CompressDist(distOf([]float64{0, 2, 5, semiring.Inf}, 2))
	for cut := 0; cut < len(blob); cut++ {
		if _, err := DecompressDist(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
	if _, err := DecompressDist(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), blob...)
		for flips := 1 + rng.Intn(4); flips > 0; flips-- {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		m, err := DecompressDist(mut) // must not panic; errors are fine
		if err == nil && (m == nil || m.Rows != m.Cols) {
			t.Fatalf("trial %d: decode returned malformed matrix", trial)
		}
	}
}

// TestRegistryTierTransitions is the demote→promote→query contract
// across the five graph families: with a hot tier that fits one oracle,
// every older entry is demoted, every re-access promotes, and both
// distance and path queries stay bit-identical throughout — with zero
// re-solves.
func TestRegistryTierTransitions(t *testing.T) {
	const n = 40
	gs := tierWorkloads(n)
	names := make([]string, 0, len(gs))
	for name := range gs {
		names = append(names, name)
	}
	sort.Strings(names)

	var solves atomic.Int64
	r := NewRegistry(Config{
		Solve: func(g *graph.Graph) (*apsp.PathResult, error) {
			solves.Add(1)
			return succSolve(g)
		},
		MemoryBudget:     12*n*n + 1, // exactly one 40-vertex oracle
		CompressedBudget: 1 << 20,
	})

	want := map[string]*apsp.PathResult{}
	for _, name := range names {
		res, err := succSolve(gs[name])
		if err != nil {
			t.Fatal(err)
		}
		want[name] = res
		if _, err := r.Get(gs[name]); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Demotions != int64(len(names)-1) || st.Evictions != 0 {
		t.Fatalf("stats after fill = %+v, want %d demotions and no drops", st, len(names)-1)
	}
	if st.CompressedEntries != len(names)-1 {
		t.Fatalf("stats after fill = %+v, want %d compressed entries", st, len(names)-1)
	}

	for round := 0; round < 2; round++ {
		for _, name := range names {
			g, ref := gs[name], want[name]
			o, err := r.Get(g)
			if err != nil {
				t.Fatalf("round %d %s: %v", round, name, err)
			}
			for u := 0; u < g.N(); u++ {
				for v := 0; v < g.N(); v++ {
					d, err := o.Dist(u, v)
					if err != nil {
						t.Fatal(err)
					}
					if math.Float64bits(d) != math.Float64bits(ref.Dist.At(u, v)) {
						t.Fatalf("round %d %s: Dist(%d,%d) = %v, want %v bit-exactly",
							round, name, u, v, d, ref.Dist.At(u, v))
					}
				}
			}
			rng := rand.New(rand.NewSource(int64(round*100 + len(name))))
			for q := 0; q < 50; q++ {
				u, v := rng.Intn(g.N()), rng.Intn(g.N())
				path, err := o.Path(u, v)
				if err != nil {
					t.Fatal(err)
				}
				if wantPath := ref.Path(u, v); !reflect.DeepEqual(path, wantPath) {
					t.Fatalf("round %d %s: Path(%d,%d) = %v, want %v", round, name, u, v, path, wantPath)
				}
			}
		}
	}
	if got := solves.Load(); got != int64(len(names)) {
		t.Errorf("solver ran %d times, want %d (promotion must never re-solve)", got, len(names))
	}
	if st := r.Stats(); st.Promotions == 0 {
		t.Errorf("stats = %+v, want promotions after re-access", st)
	}
}

// TestRegistryReweightInvalidatesBothTiers: Reweight of a *demoted*
// entry must promote it, repair it, and leave the old fingerprint in
// neither tier — a stale compressed blob serving the old weights would
// be a correctness bug, not a memory bug.
func TestRegistryReweightInvalidatesBothTiers(t *testing.T) {
	g1, g2 := intGraph(21, 40), intGraph(22, 40)
	r := NewRegistry(Config{
		Solve:            fwSolve,
		Repair:           testRepairer(),
		MemoryBudget:     12*40*40 + 1,
		CompressedBudget: 1 << 20,
	})
	fp1 := FingerprintOf(g1)
	if _, err := r.Get(g1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(g2); err != nil { // displaces g1 into the compressed tier
		t.Fatal(err)
	}
	if st := r.Stats(); st.Demotions != 1 || st.CompressedEntries != 1 {
		t.Fatalf("stats = %+v, want g1 demoted", st)
	}

	edges := g1.Edges()
	edits := []apsp.EdgeEdit{{U: edges[0].U, V: edges[0].V, W: edges[0].W + 5}}
	newFp, o2, _, err := r.Reweight(fp1, edits)
	if err != nil {
		t.Fatal(err)
	}
	if r.Has(fp1) {
		t.Error("old fingerprint still cached after Reweight of a demoted entry")
	}
	if !r.Has(newFp) {
		t.Error("new fingerprint not cached after Reweight")
	}

	g1edited, err := apsp.ApplyEdits(g1, edits)
	if err != nil {
		t.Fatal(err)
	}
	ref := apsp.FloydWarshallPaths(g1edited)
	for u := 0; u < g1.N(); u++ {
		for v := 0; v < g1.N(); v++ {
			d, err := o2.Dist(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if !sameBits(d, ref.Dist.At(u, v)) {
				t.Fatalf("repaired Dist(%d,%d) = %v, want %v", u, v, d, ref.Dist.At(u, v))
			}
		}
	}

	// The registry-wide accounting must still balance: bytes in each
	// tier are consistent with the entries actually present.
	st := r.Stats()
	if st.CompressedEntries == 0 && st.CompressedBytes != 0 {
		t.Errorf("stats = %+v: compressed bytes with no compressed entries", st)
	}
}

// TestRegistryConcurrentTierChurn hammers a registry whose hot tier
// fits one oracle with concurrent Gets and queries across six graphs:
// demotions and promotions race with reads, distances must stay
// bit-identical, and — because the compressed tier holds everything —
// each graph must be solved exactly once. Run under -race in CI.
func TestRegistryConcurrentTierChurn(t *testing.T) {
	const graphs, workers, iters, n = 6, 16, 25, 24
	var solves atomic.Int64
	r := NewRegistry(Config{
		Solve:            countingSolver(&solves, 0),
		MemoryBudget:     12*n*n + 1,
		CompressedBudget: 1 << 20,
	})
	gs := make([]*graph.Graph, graphs)
	want := make([]*apsp.PathResult, graphs)
	for i := range gs {
		gs[i] = testGraph(int64(300+i), n)
		want[i] = apsp.FloydWarshallPaths(gs[i])
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for it := 0; it < iters; it++ {
				i := rng.Intn(graphs)
				o, err := r.Get(gs[i])
				if err != nil {
					errs <- err
					return
				}
				u, v := rng.Intn(n), rng.Intn(n)
				d, err := o.Dist(u, v)
				if err != nil {
					errs <- err
					return
				}
				if !sameBits(d, want[i].Dist.At(u, v)) {
					errs <- fmt.Errorf("graph %d: Dist(%d,%d) = %v, want %v", i, u, v, d, want[i].Dist.At(u, v))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := solves.Load(); got != graphs {
		t.Errorf("solver ran %d times for %d graphs, want one each (tier churn must not drop entries)", got, graphs)
	}
	st := r.Stats()
	if st.Demotions == 0 || st.Promotions == 0 {
		t.Errorf("stats = %+v, want both demotions and promotions under churn", st)
	}
	if st.Evictions != 0 {
		t.Errorf("stats = %+v, want no full drops with a roomy compressed tier", st)
	}
}
