package oracle

import (
	"fmt"
	"sync/atomic"
	"time"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// SolveFunc runs a full APSP solve with path reconstruction. The root
// package supplies one that routes through the public Solve options
// (kernel, algorithm, machine size); tests inject instrumented ones.
type SolveFunc func(g *graph.Graph) (*apsp.PathResult, error)

// queryCounters tracks query traffic; the zero value is ready to use.
type queryCounters struct {
	inFlight   atomic.Int64
	served     atomic.Int64
	queryNanos atomic.Int64
}

// Oracle holds one solved graph and answers distance and path queries
// from the retained matrix and successor structure. All query methods
// are safe for concurrent use; batches fan out over a semiring.Pool.
type Oracle struct {
	res  *apsp.PathResult
	pool *semiring.Pool
	// graph is the graph the result was solved for. Oracles built
	// through New (and so through a Registry) retain it; the registry's
	// Reweight path needs it to apply edge edits. Never mutated.
	graph *graph.Graph

	counters queryCounters
	// shared, when set, receives every update counters gets. A registry
	// installs its own block here before publishing the oracle, so its
	// cumulative totals survive the oracle's eviction and keep counting
	// queries that were in flight when it was evicted.
	shared *queryCounters
}

// New solves g once with solve and wraps the result in an Oracle.
// A nil pool means the package-wide semiring.DefaultPool.
func New(g *graph.Graph, solve SolveFunc, pool *semiring.Pool) (*Oracle, error) {
	if g == nil {
		return nil, fmt.Errorf("oracle: nil graph")
	}
	if solve == nil {
		return nil, fmt.Errorf("oracle: nil solve function")
	}
	res, err := solve(g)
	if err != nil {
		return nil, err
	}
	o := FromResult(res, pool)
	o.graph = g
	return o, nil
}

// FromResult wraps an already-solved PathResult in an Oracle without
// re-solving. A nil pool means semiring.DefaultPool.
func FromResult(res *apsp.PathResult, pool *semiring.Pool) *Oracle {
	if pool == nil {
		pool = semiring.DefaultPool
	}
	return &Oracle{res: res, pool: pool}
}

// N returns the number of vertices; valid query endpoints are [0, N).
func (o *Oracle) N() int { return o.res.N() }

// Graph returns the graph the oracle was solved for, or nil for an
// oracle wrapped directly around a bare PathResult. Callers must not
// modify it.
func (o *Oracle) Graph() *graph.Graph { return o.graph }

// MemoryBytes estimates the retained size of the solved result.
func (o *Oracle) MemoryBytes() int64 { return o.res.MemoryBytes() }

// track opens a query window for the stats counters and returns the
// closer that records it as served. queries is the number of
// point-queries the call answers (batch calls count every pair).
func (o *Oracle) track(queries int) func() {
	o.counters.inFlight.Add(1)
	if o.shared != nil {
		o.shared.inFlight.Add(1)
	}
	start := time.Now()
	return func() {
		nanos := time.Since(start).Nanoseconds()
		o.counters.queryNanos.Add(nanos)
		o.counters.served.Add(int64(queries))
		o.counters.inFlight.Add(-1)
		if o.shared != nil {
			o.shared.queryNanos.Add(nanos)
			o.shared.served.Add(int64(queries))
			o.shared.inFlight.Add(-1)
		}
	}
}

func (o *Oracle) check(u, v int) error {
	if n := o.res.N(); u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("oracle: query (%d,%d) outside [0,%d)", u, v, n)
	}
	return nil
}

// Dist returns the shortest-path weight from u to v (Inf when
// unreachable).
func (o *Oracle) Dist(u, v int) (float64, error) {
	if err := o.check(u, v); err != nil {
		return semiring.Inf, err
	}
	defer o.track(1)()
	return o.res.Dist.At(u, v), nil
}

// Path returns the vertices of a shortest u→v path inclusive of both
// endpoints, nil when v is unreachable from u.
func (o *Oracle) Path(u, v int) ([]int, error) {
	if err := o.check(u, v); err != nil {
		return nil, err
	}
	defer o.track(1)()
	return o.res.Path(u, v), nil
}

// BatchDist answers many distance queries at once, fanned out over the
// worker pool. The result is index-aligned with pairs. Every pair is
// validated before any work starts.
func (o *Oracle) BatchDist(pairs [][2]int) ([]float64, error) {
	if err := o.checkBatch(pairs); err != nil {
		return nil, err
	}
	defer o.track(len(pairs))()
	out := make([]float64, len(pairs))
	o.pool.ForEach(len(pairs), func(i int) {
		out[i] = o.res.Dist.At(pairs[i][0], pairs[i][1])
	})
	return out, nil
}

// BatchPath answers many path queries at once, fanned out over the
// worker pool. Unreachable pairs get a nil path.
func (o *Oracle) BatchPath(pairs [][2]int) ([][]int, error) {
	if err := o.checkBatch(pairs); err != nil {
		return nil, err
	}
	defer o.track(len(pairs))()
	out := make([][]int, len(pairs))
	o.pool.ForEach(len(pairs), func(i int) {
		out[i] = o.res.Path(pairs[i][0], pairs[i][1])
	})
	return out, nil
}

func (o *Oracle) checkBatch(pairs [][2]int) error {
	for i, p := range pairs {
		if err := o.check(p[0], p[1]); err != nil {
			return fmt.Errorf("pair %d: %w", i, err)
		}
	}
	return nil
}

// QueryStats is a snapshot of one oracle's query counters.
type QueryStats struct {
	Served     int64 // point-queries answered (batch pairs count individually)
	InFlight   int64 // query calls currently executing
	QueryNanos int64 // total wall-clock spent inside query calls
}

// QueryStats returns the oracle's counters at this instant.
func (o *Oracle) QueryStats() QueryStats {
	return QueryStats{
		Served:     o.counters.served.Load(),
		InFlight:   o.counters.inFlight.Load(),
		QueryNanos: o.counters.queryNanos.Load(),
	}
}
