package oracle

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/graph"
)

// intGraph builds a connected random graph with small integer weights,
// so path sums are float64-exact and repaired results can be compared
// bit for bit against a from-scratch Floyd–Warshall.
func intGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v, float64(rng.Intn(9)+1))
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, float64(rng.Intn(9)+1))
		}
	}
	return g
}

// testRepairer routes repairs through the real engine on a 9-rank
// block layout with a shared plan cache, like the root package wiring.
func testRepairer() RepairFunc {
	plans := apsp.NewPlanCache()
	return func(g *graph.Graph, prev *apsp.PathResult, edits []apsp.EdgeEdit) (*apsp.PathResult, *graph.Graph, apsp.RepairStats, error) {
		return apsp.RepairWithOptions(g, prev, edits, 9, apsp.SparseOptions{Seed: 1, Plans: plans}, 0)
	}
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestRegistryReweightSwapsFingerprint is the end-to-end registry
// contract: Reweight installs an exact repaired oracle under the edited
// graph's fingerprint, the old fingerprint stops serving atomically,
// and the byte accounting survives the swap.
func TestRegistryReweightSwapsFingerprint(t *testing.T) {
	r := NewRegistry(Config{Solve: fwSolve, Repair: testRepairer()})
	g := intGraph(5, 40)
	fp := FingerprintOf(g)
	if _, err := r.Get(g); err != nil {
		t.Fatal(err)
	}

	edges := g.Edges()
	edits := []apsp.EdgeEdit{
		{U: edges[0].U, V: edges[0].V, W: edges[0].W + 3},
		{U: edges[1].U, V: edges[1].V, W: edges[1].W + 2},
		{U: edges[2].U, V: edges[2].V, W: 0},
	}
	newFp, o, st, err := r.Reweight(fp, edits)
	if err != nil {
		t.Fatal(err)
	}
	if newFp == fp {
		t.Fatal("reweight with real edits kept the old fingerprint")
	}
	if st.Edits != 3 {
		t.Errorf("stats %+v, want 3 edits", st)
	}

	// Old fingerprint must be gone; new one must serve.
	if _, ok, _ := r.Lookup(fp); ok {
		t.Error("old fingerprint still serves after reweight")
	}
	o2, ok, err := r.Lookup(newFp)
	if !ok || err != nil {
		t.Fatalf("new fingerprint not served: ok=%v err=%v", ok, err)
	}
	if o2 != o {
		t.Error("Lookup returned a different oracle than Reweight")
	}

	// The repaired distances are bit-identical to a from-scratch solve
	// of the edited graph (integer weights keep sums exact).
	g2, err := apsp.ApplyEdits(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintOf(g2) != newFp {
		t.Error("reweight fingerprint disagrees with ApplyEdits")
	}
	want := apsp.FloydWarshallPaths(g2)
	for u := 0; u < g2.N(); u++ {
		for v := 0; v < g2.N(); v++ {
			got, err := o.Dist(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if !sameBits(got, want.Dist.At(u, v)) {
				t.Fatalf("Dist(%d,%d) = %g, want %g", u, v, got, want.Dist.At(u, v))
			}
		}
	}
	if err := apsp.VerifyPaths(g2, want); err != nil {
		t.Fatal(err)
	}

	stats := r.Stats()
	if stats.Reweights != 1 {
		t.Errorf("Reweights = %d, want 1", stats.Reweights)
	}
	if stats.Entries != 1 {
		t.Errorf("Entries = %d after swap, want 1", stats.Entries)
	}
	if stats.Bytes != o.MemoryBytes() {
		t.Errorf("Bytes = %d after swap, want %d (old oracle not released)", stats.Bytes, o.MemoryBytes())
	}

	// No-op reweight: same weights, same fingerprint, same oracle.
	fp3, o3, _, err := r.Reweight(newFp, []apsp.EdgeEdit{{U: edits[0].U, V: edits[0].V, W: edits[0].W}})
	if err != nil {
		t.Fatal(err)
	}
	if fp3 != newFp || o3 != o {
		t.Error("no-op reweight did not return the existing oracle")
	}
}

// TestRegistryReweightErrors pins the failure modes: unknown
// fingerprints, invalid edits (which must leave the old oracle
// serving), and a registry wired without a repair function.
func TestRegistryReweightErrors(t *testing.T) {
	r := NewRegistry(Config{Solve: fwSolve, Repair: testRepairer()})
	g := intGraph(9, 30)
	fp := FingerprintOf(g)

	if _, _, _, err := r.Reweight(fp, nil); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("reweight of unknown graph: err = %v, want ErrUnknownGraph", err)
	}
	if _, err := r.Get(g); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := r.Reweight(fp, []apsp.EdgeEdit{{U: 0, V: 0, W: 1}}); err == nil {
		t.Error("reweight with a self-loop edit did not error")
	}
	if _, _, _, err := r.Reweight(fp, []apsp.EdgeEdit{{U: g.Edges()[0].U, V: g.Edges()[0].V, W: -1}}); err == nil {
		t.Error("reweight with a negative weight did not error")
	}
	if _, ok, _ := r.Lookup(fp); !ok {
		t.Error("failed reweight displaced the old oracle")
	}

	bare := NewRegistry(Config{Solve: fwSolve})
	if _, err := bare.Get(g); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := bare.Reweight(fp, nil); err == nil {
		t.Error("registry without a repair function accepted Reweight")
	}
}

// TestRegistryFailedWaitsAreNotHits is the stats regression test: Get
// and Lookup calls that coalesce onto a solve must record the OUTCOME —
// waiting out a failed solve is not a cache hit. Before the fix the hit
// was counted (and the LRU touched) before the wait, so a failing graph
// hammered by concurrent clients reported an arbitrarily high hit rate
// while serving nothing but errors. Run under -race in CI.
func TestRegistryFailedWaitsAreNotHits(t *testing.T) {
	boom := fmt.Errorf("boom")
	var calls atomic.Int64
	r := NewRegistry(Config{Solve: func(g *graph.Graph) (*apsp.PathResult, error) {
		calls.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the coalescing window
		return nil, boom
	}})
	g := testGraph(3, 20)
	fp := FingerprintOf(g)

	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				if _, err := r.Get(g); !errors.Is(err, boom) {
					t.Errorf("Get: err = %v, want boom", err)
				}
			} else {
				_, ok, err := r.Lookup(fp)
				// Lookups racing ahead of the first Get legitimately
				// miss; ones that found the in-flight entry must
				// surface the solve error.
				if ok && !errors.Is(err, boom) {
					t.Errorf("Lookup: ok with err = %v, want boom", err)
				}
			}
		}(w)
	}
	wg.Wait()

	st := r.Stats()
	if st.Hits != 0 {
		t.Errorf("Hits = %d after nothing but failed solves, want 0", st.Hits)
	}
	if st.Misses != workers {
		t.Errorf("Misses = %d, want %d (every caller)", st.Misses, workers)
	}
	if st.Entries != 0 {
		t.Errorf("Entries = %d, failed solves must not be cached", st.Entries)
	}

	// Sanity on the flip side: successful waits DO count as hits.
	ok := NewRegistry(Config{Solve: countingSolver(&atomic.Int64{}, 5*time.Millisecond)})
	var wg2 sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			if _, err := ok.Get(g); err != nil {
				t.Error(err)
			}
		}()
	}
	wg2.Wait()
	if st := ok.Stats(); st.Hits != 7 || st.Misses != 1 {
		t.Errorf("successful coalesce: hits=%d misses=%d, want 7/1", st.Hits, st.Misses)
	}
}

// TestRegistryReweightConcurrent hammers one registry with concurrent
// reweights toward the same edited graph plus queries on whatever is
// currently cached. Concurrent reweights must coalesce (at most one
// repair runs), every returned oracle must serve exact distances for
// its graph, and the cache must end in a consistent single-entry
// state. Run under -race in CI.
func TestRegistryReweightConcurrent(t *testing.T) {
	r := NewRegistry(Config{Solve: fwSolve, Repair: testRepairer()})
	g := intGraph(11, 36)
	fp := FingerprintOf(g)
	if _, err := r.Get(g); err != nil {
		t.Fatal(err)
	}
	e0 := g.Edges()[0]
	edits := []apsp.EdgeEdit{{U: e0.U, V: e0.V, W: e0.W + 5}}
	g2, err := apsp.ApplyEdits(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	want := apsp.FloydWarshallPaths(g2)
	newFp := FingerprintOf(g2)

	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			switch w % 3 {
			case 0: // reweight old → new
				gotFp, o, _, err := r.Reweight(fp, edits)
				if errors.Is(err, ErrUnknownGraph) {
					return // another reweight already removed fp
				}
				if err != nil {
					t.Errorf("reweight: %v", err)
					return
				}
				if gotFp != newFp {
					t.Errorf("reweight produced fp %s, want %s", gotFp, newFp)
					return
				}
				if d, err := o.Dist(0, g.N()-1); err != nil || !sameBits(d, want.Dist.At(0, g.N()-1)) {
					t.Errorf("reweighted oracle Dist = %v (err %v), want %v", d, err, want.Dist.At(0, g.N()-1))
				}
			case 1: // query whichever fingerprint still serves
				if o, ok, err := r.Lookup(fp); ok && err == nil {
					if _, err := o.Dist(1, 2); err != nil {
						t.Errorf("old oracle query: %v", err)
					}
				}
			default:
				if o, ok, err := r.Lookup(newFp); ok && err == nil {
					if d, err := o.Dist(0, g.N()-1); err != nil || !sameBits(d, want.Dist.At(0, g.N()-1)) {
						t.Errorf("new oracle Dist = %v (err %v)", d, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if _, ok, _ := r.Lookup(fp); ok {
		t.Error("old fingerprint still serves after concurrent reweights")
	}
	o, ok, err := r.Lookup(newFp)
	if !ok || err != nil {
		t.Fatalf("new fingerprint not served: ok=%v err=%v", ok, err)
	}
	for u := 0; u < g2.N(); u += 7 {
		for v := 0; v < g2.N(); v += 5 {
			if d, _ := o.Dist(u, v); !sameBits(d, want.Dist.At(u, v)) {
				t.Fatalf("final oracle Dist(%d,%d) = %g, want %g", u, v, d, want.Dist.At(u, v))
			}
		}
	}
	st := r.Stats()
	if st.Entries != 1 {
		t.Errorf("Entries = %d after converged reweights, want 1", st.Entries)
	}
	if st.Reweights < 1 {
		t.Errorf("Reweights = %d, want >= 1", st.Reweights)
	}
	if st.Bytes != o.MemoryBytes() {
		t.Errorf("Bytes = %d, want %d", st.Bytes, o.MemoryBytes())
	}
}
