package oracle

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/graph"
)

// countingSolver wraps fwSolve with an invocation counter and an
// optional delay that widens the coalescing window.
func countingSolver(count *atomic.Int64, delay time.Duration) SolveFunc {
	return func(g *graph.Graph) (*apsp.PathResult, error) {
		count.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		return apsp.FloydWarshallPaths(g), nil
	}
}

// TestRegistryCoalescesConcurrentSolves hammers one registry with many
// goroutines asking for the same unsolved graphs and asserts exactly
// one solve ran per fingerprint. Run under -race in CI.
func TestRegistryCoalescesConcurrentSolves(t *testing.T) {
	var solves atomic.Int64
	r := NewRegistry(Config{Solve: countingSolver(&solves, 5*time.Millisecond)})

	const graphs, workers = 3, 32
	gs := make([]*graph.Graph, graphs)
	for i := range gs {
		gs[i] = testGraph(int64(100+i), 30)
	}
	want := make([]*apsp.PathResult, graphs)
	for i, g := range gs {
		want[i] = apsp.FloydWarshallPaths(g)
	}

	var wg sync.WaitGroup
	errs := make(chan error, graphs*workers)
	for w := 0; w < workers; w++ {
		for i := range gs {
			wg.Add(1)
			go func(w, i int) {
				defer wg.Done()
				o, err := r.Get(gs[i])
				if err != nil {
					errs <- err
					return
				}
				rng := rand.New(rand.NewSource(int64(w*graphs + i)))
				u, v := rng.Intn(gs[i].N()), rng.Intn(gs[i].N())
				d, err := o.Dist(u, v)
				if err != nil {
					errs <- err
					return
				}
				if ref := want[i].Dist.At(u, v); d != ref {
					errs <- fmt.Errorf("graph %d: Dist(%d,%d) = %g, want %g", i, u, v, d, ref)
				}
			}(w, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := solves.Load(); got != graphs {
		t.Errorf("solver ran %d times for %d distinct graphs, want exactly one each", got, graphs)
	}
	st := r.Stats()
	if st.Solves != graphs || st.Misses != graphs {
		t.Errorf("stats solves=%d misses=%d, want %d each", st.Solves, st.Misses, graphs)
	}
	if st.Hits != graphs*workers-graphs {
		t.Errorf("stats hits=%d, want %d", st.Hits, graphs*workers-graphs)
	}
	if st.QueriesServed != graphs*workers {
		t.Errorf("stats queries served=%d, want %d", st.QueriesServed, graphs*workers)
	}
}

// TestRegistryLRUEviction checks both the budget invariant and the
// eviction order: the least recently *used* entry goes first.
func TestRegistryLRUEviction(t *testing.T) {
	var solves atomic.Int64
	gs := []*graph.Graph{testGraph(1, 24), testGraph(2, 24), testGraph(3, 24)}
	one, err := New(gs[0], fwSolve, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits exactly two solved oracles of this size.
	budget := 2 * one.MemoryBytes()
	r := NewRegistry(Config{Solve: countingSolver(&solves, 0), MemoryBudget: budget})

	fpA, fpB, fpC := FingerprintOf(gs[0]), FingerprintOf(gs[1]), FingerprintOf(gs[2])
	if _, err := r.Get(gs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(gs[1]); err != nil {
		t.Fatal(err)
	}
	// Touch A so B becomes least recently used.
	if _, err := r.Get(gs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(gs[2]); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.Lookup(fpB); ok {
		t.Error("B should have been evicted (least recently used)")
	}
	if _, ok, _ := r.Lookup(fpA); !ok {
		t.Error("A was evicted despite being recently used")
	}
	if _, ok, _ := r.Lookup(fpC); !ok {
		t.Error("C (newest) was evicted")
	}
	st := r.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > budget {
		t.Errorf("retained %d bytes over budget %d", st.Bytes, budget)
	}
	// Re-solving B counts as a fresh miss + solve.
	if _, err := r.Get(gs[1]); err != nil {
		t.Fatal(err)
	}
	if got := solves.Load(); got != 4 {
		t.Errorf("solves = %d, want 4 (three graphs + one re-solve)", got)
	}
}

// TestRegistryBudgetUnderConcurrentChurn drives many goroutines over
// more graphs than the budget holds and asserts the retained bytes
// never exceed the budget once settled. Run under -race in CI.
func TestRegistryBudgetUnderConcurrentChurn(t *testing.T) {
	var solves atomic.Int64
	gs := make([]*graph.Graph, 6)
	for i := range gs {
		gs[i] = testGraph(int64(200+i), 20)
	}
	one, err := New(gs[0], fwSolve, nil)
	if err != nil {
		t.Fatal(err)
	}
	budget := 3 * one.MemoryBytes()
	r := NewRegistry(Config{Solve: countingSolver(&solves, time.Millisecond), MemoryBudget: budget})

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for iter := 0; iter < 20; iter++ {
				g := gs[rng.Intn(len(gs))]
				o, err := r.Get(g)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := o.Dist(0, g.N()-1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := r.Stats()
	if st.Bytes > budget {
		t.Errorf("retained %d bytes over budget %d", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Error("expected evictions with 6 graphs and a 3-oracle budget")
	}
	if st.Solves != solves.Load() {
		t.Errorf("stats solves=%d, counter=%d", st.Solves, solves.Load())
	}
	if st.QueriesServed != 16*20 {
		t.Errorf("queries served=%d, want %d (evicted counts must be folded in)", st.QueriesServed, 16*20)
	}
}

func TestRegistryFailedSolveNotCachedAndRetried(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	r := NewRegistry(Config{Solve: func(g *graph.Graph) (*apsp.PathResult, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return apsp.FloydWarshallPaths(g), nil
	}})
	g := testGraph(9, 15)
	if _, err := r.Get(g); !errors.Is(err, boom) {
		t.Fatalf("first Get: err = %v, want boom", err)
	}
	if r.Len() != 0 {
		t.Fatalf("failed solve left %d cached entries", r.Len())
	}
	if _, err := r.Get(g); err != nil {
		t.Fatalf("retry after failed solve: %v", err)
	}
	if calls.Load() != 2 {
		t.Errorf("solver calls = %d, want 2", calls.Load())
	}
}

func TestRegistryLookupUnknown(t *testing.T) {
	r := NewRegistry(Config{Solve: fwSolve})
	if _, ok, _ := r.Lookup(FingerprintOf(testGraph(1, 8))); ok {
		t.Error("Lookup of never-loaded graph reported ok")
	}
	if _, err := r.Get(nil); err == nil {
		t.Error("Get(nil) should error")
	}
	if _, err := NewRegistry(Config{}).Get(testGraph(1, 8)); err == nil {
		t.Error("registry without solver should error")
	}
}

// TestRegistrySingleOracleOverBudget: one oracle larger than the whole
// budget used to sit pinned at the LRU front forever (the eviction loop
// only looked past the front entry), permanently blowing the budget.
// The fix demotes it: with no compressed tier it is dropped with an
// Evictions count; the Get that solved it is still served its result.
func TestRegistrySingleOracleOverBudget(t *testing.T) {
	var solves atomic.Int64
	r := NewRegistry(Config{Solve: countingSolver(&solves, 0), MemoryBudget: 1})
	a := testGraph(1, 16)
	o, err := r.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Dist(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.Lookup(FingerprintOf(a)); ok {
		t.Error("over-budget oracle stayed pinned in the hot tier")
	}
	st := r.Stats()
	if st.Evictions != 1 || st.Bytes != 0 {
		t.Errorf("stats = %+v, want 1 eviction and 0 retained bytes", st)
	}
	// The next Get re-solves — nothing was cached.
	if _, err := r.Get(a); err != nil {
		t.Fatal(err)
	}
	if got := solves.Load(); got != 2 {
		t.Errorf("solver ran %d times, want 2 (dropped oracle must re-solve)", got)
	}
}

// TestRegistryOversizedEntryDemoted is the tiered half of the
// oversized-pin regression: with a compressed tier configured, the
// over-budget oracle is demoted rather than dropped, keeps serving
// bit-identical answers through promotion, and never re-solves.
func TestRegistryOversizedEntryDemoted(t *testing.T) {
	var solves atomic.Int64
	r := NewRegistry(Config{
		Solve:            countingSolver(&solves, 0),
		MemoryBudget:     1,
		CompressedBudget: 64 << 20,
	})
	a := testGraph(1, 16)
	want := apsp.FloydWarshallPaths(a)
	if _, err := r.Get(a); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Demotions != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want the oversized oracle demoted, not dropped", st)
	}
	if st.CompressedEntries != 1 || st.CompressedBytes == 0 {
		t.Fatalf("stats = %+v, want 1 compressed entry", st)
	}
	// Every access promotes (and, still oversized, re-demotes) — served
	// bit-identically with zero extra solves.
	for round := 0; round < 3; round++ {
		o, ok, err := r.Lookup(FingerprintOf(a))
		if err != nil || !ok {
			t.Fatalf("round %d: lookup = (%v, %v)", round, ok, err)
		}
		for u := 0; u < a.N(); u++ {
			for v := 0; v < a.N(); v++ {
				d, err := o.Dist(u, v)
				if err != nil {
					t.Fatal(err)
				}
				if ref := want.Dist.At(u, v); d != ref {
					t.Fatalf("round %d: Dist(%d,%d) = %g, want %g", round, u, v, d, ref)
				}
			}
		}
	}
	if got := solves.Load(); got != 1 {
		t.Errorf("solver ran %d times, want 1 (demoted oracle must promote, not re-solve)", got)
	}
	if st := r.Stats(); st.Promotions != 3 || st.Demotions != 4 {
		t.Errorf("stats = %+v, want 3 promotions and 4 demotions", st)
	}
}

// TestRegistryQuiesceWaitsForInFlightSolves is the drain regression
// test: a graceful shutdown must wait for solves coalesced inside the
// registry, not just for open HTTP connections — a solve whose
// originating client disconnected still runs, and Quiesce is what the
// drain path blocks on until it completes.
func TestRegistryQuiesceWaitsForInFlightSolves(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var solveDone atomic.Bool
	r := NewRegistry(Config{Solve: func(g *graph.Graph) (*apsp.PathResult, error) {
		close(started)
		<-release // the solve outlives its originating request
		solveDone.Store(true)
		return apsp.FloydWarshallPaths(g), nil
	}})

	// Idle registry: Quiesce returns immediately.
	if err := r.Quiesce(context.Background()); err != nil {
		t.Fatalf("Quiesce on idle registry: %v", err)
	}

	g := testGraph(1, 20)
	getDone := make(chan struct{})
	go func() {
		defer close(getDone)
		if _, err := r.Get(g); err != nil {
			t.Error(err)
		}
	}()
	<-started
	if n := r.ActiveSolves(); n != 1 {
		t.Fatalf("ActiveSolves = %d during solve, want 1", n)
	}

	// A bounded Quiesce while the solve hangs must time out, not
	// return success.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	err := r.Quiesce(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Quiesce during hung solve = %v, want deadline exceeded", err)
	}

	// Release the solve: Quiesce must now return only after the solve
	// finished (solveDone observed true strictly before Quiesce ends).
	quiesced := make(chan error, 1)
	go func() {
		quiesced <- r.Quiesce(context.Background())
	}()
	close(release)
	if err := <-quiesced; err != nil {
		t.Fatalf("Quiesce after release: %v", err)
	}
	if !solveDone.Load() {
		t.Fatal("Quiesce returned before the in-flight solve completed")
	}
	<-getDone
	if n := r.ActiveSolves(); n != 0 {
		t.Fatalf("ActiveSolves = %d after drain, want 0", n)
	}
	if st := r.Stats(); st.SolvesInFlight != 0 || st.Solves != 1 {
		t.Fatalf("stats after drain: %+v", st)
	}
	// Has is a side-effect-free membership probe.
	missesBefore := r.Stats().Misses
	if !r.Has(FingerprintOf(g)) {
		t.Error("Has(solved graph) = false")
	}
	if r.Has(Fingerprint{1}) {
		t.Error("Has(unknown) = true")
	}
	if got := r.Stats().Misses; got != missesBefore {
		t.Errorf("Has changed miss counter: %d -> %d", missesBefore, got)
	}
}
