// Package oracle is the serving layer of the repository: it turns the
// one-shot APSP solvers into long-lived distance oracles that answer
// point, path and batch queries, and a registry that caches solved
// oracles by graph fingerprint with singleflight solve coalescing and
// LRU eviction under a memory budget. cmd/apspd exposes it over HTTP;
// the root package re-exports it as NewOracle / NewOracleRegistry.
package oracle

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"sparseapsp/internal/graph"
)

// Fingerprint identifies a graph by content: vertex count plus the
// sorted edge list with exact weight bits. Two graphs share a
// fingerprint iff they have identical vertex sets and edge weights, so
// it is a safe cache key for solved distance matrices.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex — the wire format
// cmd/apspd hands to clients as the graph id.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// ParseFingerprint decodes the hex form produced by String.
func ParseFingerprint(s string) (Fingerprint, error) {
	var f Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(f) {
		return f, fmt.Errorf("oracle: %q is not a graph fingerprint (%d hex chars)", s, 2*len(f))
	}
	copy(f[:], b)
	return f, nil
}

// FingerprintOf computes the content fingerprint of g in O(m log m).
func FingerprintOf(g *graph.Graph) Fingerprint {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(g.N()))
	for _, e := range g.Edges() {
		put(uint64(e.U))
		put(uint64(e.V))
		put(math.Float64bits(e.W))
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}
