package oracle

import (
	"math"
	"math/rand"
	"testing"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/graph"
)

// fwSolve is the reference solver the tests build oracles with.
func fwSolve(g *graph.Graph) (*apsp.PathResult, error) {
	return apsp.FloydWarshallPaths(g), nil
}

func testGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.RandomGNP(n, 3.0/float64(n), graph.RandomWeights(rng, 1, 10), rng)
}

func TestOracleMatchesFloydWarshallPaths(t *testing.T) {
	g := testGraph(7, 40)
	o, err := New(g, fwSolve, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := apsp.FloydWarshallPaths(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			d, err := o.Dist(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if ref := want.Dist.At(u, v); d != ref && !(math.IsInf(d, 1) && math.IsInf(ref, 1)) {
				t.Fatalf("Dist(%d,%d) = %g, want %g", u, v, d, ref)
			}
			path, err := o.Path(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsInf(d, 1) {
				if path != nil {
					t.Fatalf("Path(%d,%d) = %v for unreachable pair", u, v, path)
				}
				continue
			}
			if len(path) == 0 || path[0] != u || path[len(path)-1] != v {
				t.Fatalf("Path(%d,%d) = %v: bad endpoints", u, v, path)
			}
			if w := apsp.PathWeight(g, path); math.Abs(w-d) > 1e-9 {
				t.Fatalf("Path(%d,%d) weight %g, want %g", u, v, w, d)
			}
		}
	}
}

func TestOracleBatchMatchesPointQueries(t *testing.T) {
	g := testGraph(11, 50)
	o, err := New(g, fwSolve, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pairs := make([][2]int, 500)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(g.N()), rng.Intn(g.N())}
	}
	dists, err := o.BatchDist(pairs)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := o.BatchPath(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		d, _ := o.Dist(p[0], p[1])
		if dists[i] != d && !(math.IsInf(dists[i], 1) && math.IsInf(d, 1)) {
			t.Fatalf("batch dist %d = %g, want %g", i, dists[i], d)
		}
		if !math.IsInf(d, 1) {
			if w := apsp.PathWeight(g, paths[i]); math.Abs(w-d) > 1e-9 {
				t.Fatalf("batch path %d weight %g, want %g", i, w, d)
			}
		} else if paths[i] != nil {
			t.Fatalf("batch path %d = %v for unreachable pair", i, paths[i])
		}
	}
}

func TestOracleRejectsBadQueries(t *testing.T) {
	o, err := New(testGraph(5, 10), fwSolve, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Dist(-1, 0); err == nil {
		t.Error("Dist(-1,0): want error")
	}
	if _, err := o.Path(0, 10); err == nil {
		t.Error("Path(0,10): want error")
	}
	if _, err := o.BatchDist([][2]int{{0, 1}, {3, 99}}); err == nil {
		t.Error("BatchDist with bad pair: want error")
	}
	if _, err := o.BatchPath([][2]int{{99, 0}}); err == nil {
		t.Error("BatchPath with bad pair: want error")
	}
	if _, err := New(nil, fwSolve, nil); err == nil {
		t.Error("New(nil graph): want error")
	}
	if _, err := New(testGraph(5, 10), nil, nil); err == nil {
		t.Error("New(nil solve): want error")
	}
}

func TestOracleQueryStats(t *testing.T) {
	o, err := New(testGraph(5, 10), fwSolve, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Dist(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := o.BatchDist([][2]int{{0, 1}, {1, 2}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	qs := o.QueryStats()
	if qs.Served != 4 {
		t.Errorf("Served = %d, want 4 (1 point + 3 batch)", qs.Served)
	}
	if qs.InFlight != 0 {
		t.Errorf("InFlight = %d, want 0", qs.InFlight)
	}
}

func TestFingerprintDistinguishesGraphs(t *testing.T) {
	a := testGraph(1, 20)
	b := testGraph(2, 20)
	if FingerprintOf(a) == FingerprintOf(b) {
		t.Error("different graphs share a fingerprint")
	}
	if FingerprintOf(a) != FingerprintOf(a.Clone()) {
		t.Error("clone changed the fingerprint")
	}
	// Weight changes must change the fingerprint too.
	c := a.Clone()
	e := c.Adj(0)[0]
	d := a.Clone()
	d.AddEdge(0, e.To, e.W/2) // AddEdge keeps the min weight
	if FingerprintOf(a) == FingerprintOf(d) {
		t.Error("weight change kept the fingerprint")
	}
	fp := FingerprintOf(a)
	back, err := ParseFingerprint(fp.String())
	if err != nil || back != fp {
		t.Errorf("ParseFingerprint(String) round-trip failed: %v", err)
	}
	if _, err := ParseFingerprint("zz"); err == nil {
		t.Error("ParseFingerprint accepted junk")
	}
}
