package oracle

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/semiring"
)

// RepairFunc incrementally repairs a solved result after edge-weight
// edits, returning the repaired result, the edited graph it is valid
// for, and what the repair did. The root package supplies one that
// routes through apsp.RepairWithOptions with the registry's own plan
// cache.
type RepairFunc func(g *graph.Graph, prev *apsp.PathResult, edits []apsp.EdgeEdit) (*apsp.PathResult, *graph.Graph, apsp.RepairStats, error)

// ErrUnknownGraph is returned by Reweight when the fingerprint names no
// cached oracle (never loaded, or already evicted).
var ErrUnknownGraph = fmt.Errorf("oracle: unknown graph fingerprint")

// Config configures a Registry.
type Config struct {
	// Solve runs the underlying APSP solver; required.
	Solve SolveFunc
	// Repair, when non-nil, enables Registry.Reweight: small weight
	// edits are repaired from the cached result instead of re-solved.
	Repair RepairFunc
	// MemoryBudget bounds the total MemoryBytes of hot-tier oracles;
	// <= 0 means unlimited. Exceeding it demotes least-recently-used
	// oracles into the compressed tier (or drops them when that tier is
	// disabled). An oracle larger than the whole budget is demoted
	// immediately rather than pinned — it is still served, promoted on
	// demand, and re-demoted afterward.
	MemoryBudget int64
	// CompressedBudget bounds the bytes of the compressed (demoted)
	// tier: quantized distance blobs that promote back to full oracles
	// on access, bit-identically (see tier.go). <= 0 disables the tier,
	// restoring plain drop-on-eviction.
	CompressedBudget int64
	// Pool is the worker pool batch queries fan out over; nil means
	// semiring.DefaultPool.
	Pool *semiring.Pool
	// Plans, when non-nil, is the sparse solver's symbolic plan cache.
	// The registry itself never touches it — the Solve closure is
	// expected to pass the same cache into SparseOptions.Plans — but
	// registering it here surfaces its counters through Stats (and so
	// through apspd /statsz). Weight-update workloads re-solving one
	// topology show up as plan hits with zero new symbolic work.
	Plans *apsp.PlanCache
}

// Registry caches solved oracles keyed by graph fingerprint. Concurrent
// Get calls for the same unsolved graph are coalesced singleflight-style
// into exactly one solve; everything else waits on its completion.
// Solved oracles are retained in LRU order under Config.MemoryBudget.
type Registry struct {
	cfg Config

	mu      sync.Mutex
	entries map[Fingerprint]*entry
	lru     *list.List // front = most recently used; hot entries only
	bytes   int64      // sum of MemoryBytes over hot entries
	clru    *list.List // compressed tier, front = most recently demoted/used
	cbytes  int64      // sum of blob bytes over compressed entries

	solves          int64
	hits            int64
	misses          int64
	evictions       int64
	demotions       int64
	promotions      int64
	solveNanos      int64
	reweights       int64
	repairNanos     int64
	repairFallbacks int64
	// Simulated communication totals across every solve (and repair
	// fallback) this registry ever ran, cumulative like the query
	// counters: the serving-layer view of the words the wire format
	// actually moved, per schedule phase.
	wordsMoved   int64
	wordsByClass [comm.NumSendClasses]int64
	// activeSolves counts solves and repairs executing right now —
	// work the registry owns even after the HTTP request (or caller)
	// that triggered it has gone away, because coalesced waiters and
	// the cache entry still depend on its completion. Quiesce waits on
	// it; idle is closed-and-replaced each time it drops to zero.
	activeSolves int
	idle         chan struct{}
	// queries is shared with every oracle this registry creates, so the
	// totals stay cumulative across evictions and keep counting queries
	// that were in flight when their oracle was evicted.
	queries queryCounters
}

type entry struct {
	fp     Fingerprint
	ready  chan struct{} // closed when the solve finishes
	oracle *Oracle       // hot tier; nil while solving, demoted, or failed
	err    error
	elem   *list.Element // hot LRU element; nil unless oracle != nil

	// Compressed-tier state. A demoted entry keeps only the quantized
	// distance blob and the graph (to rebuild successors on promotion);
	// promoting is non-nil while one goroutine decodes the blob off the
	// lock, and is closed when the hot oracle is installed (or the
	// promotion fails) so coalesced waiters can re-check.
	comp      *compEntry
	celem     *list.Element
	promoting chan struct{}
}

// compEntry is the demoted form of a solved oracle: the lossless
// compressed distance blob plus the graph the successor structure is
// deterministically rebuilt from at promotion time.
type compEntry struct {
	blob  []byte
	graph *graph.Graph
}

// errEntryDropped reports that an entry vanished from both tiers
// between a map lookup and the tier access — the caller treats it as a
// cache miss.
var errEntryDropped = fmt.Errorf("oracle: cached entry was evicted")

// NewRegistry returns an empty registry.
func NewRegistry(cfg Config) *Registry {
	return &Registry{
		cfg:     cfg,
		entries: make(map[Fingerprint]*entry),
		lru:     list.New(),
		clru:    list.New(),
	}
}

// Get returns the oracle for g, solving it first if no oracle with g's
// fingerprint is cached. If another goroutine is already solving the
// same graph, Get waits for that solve instead of starting a second
// one. A failed solve is not cached: the next Get retries.
func (r *Registry) Get(g *graph.Graph) (*Oracle, error) {
	if g == nil {
		return nil, fmt.Errorf("oracle: nil graph")
	}
	if r.cfg.Solve == nil {
		return nil, fmt.Errorf("oracle: registry has no solve function")
	}
	fp := FingerprintOf(g)

	r.mu.Lock()
	for {
		e, ok := r.entries[fp]
		if !ok {
			break
		}
		r.mu.Unlock()
		r.recordWait(e)
		if e.err != nil {
			return nil, e.err
		}
		o, err := r.ensureHot(e)
		if !errors.Is(err, errEntryDropped) {
			return o, err
		}
		// The entry was dropped from both tiers between the map lookup
		// and the tier access; treat it as a miss and retry — either a
		// new entry appeared or this Get owns the re-solve.
		r.mu.Lock()
	}
	r.misses++
	e := &entry{fp: fp, ready: make(chan struct{})}
	r.entries[fp] = e
	r.beginSolveLocked()
	r.mu.Unlock()

	start := time.Now()
	o, err := New(g, r.cfg.Solve, r.cfg.Pool)
	elapsed := time.Since(start).Nanoseconds()

	r.mu.Lock()
	r.solves++
	r.solveNanos += elapsed
	r.endSolveLocked()
	if err == nil {
		r.addWordsLocked(o.res.Report)
	}
	if err != nil {
		e.err = err
		delete(r.entries, fp) // allow a retry; current waiters get err
	} else {
		o.shared = &r.queries // install before any Get returns the oracle
		e.oracle = o
		e.elem = r.lru.PushFront(e)
		r.bytes += o.MemoryBytes()
		r.evictLocked()
	}
	r.mu.Unlock()
	close(e.ready)
	return o, err
}

// Lookup returns the cached oracle for an already-registered
// fingerprint, waiting out an in-flight solve. ok is false when the
// fingerprint has never been loaded (or was evicted); err carries the
// solve failure when ok is true but no oracle exists.
func (r *Registry) Lookup(fp Fingerprint) (o *Oracle, ok bool, err error) {
	r.mu.Lock()
	e, found := r.entries[fp]
	if !found {
		r.misses++
		r.mu.Unlock()
		return nil, false, nil
	}
	r.mu.Unlock()
	r.recordWait(e)
	if e.err != nil {
		return nil, true, e.err
	}
	o, err = r.ensureHot(e)
	if errors.Is(err, errEntryDropped) {
		// Dropped while we waited: indistinguishable from an eviction
		// that happened before the Lookup.
		return nil, false, nil
	}
	return o, true, err
}

// recordWait waits out an entry's solve and then records the outcome:
// only a successful solve counts as a hit (and refreshes the LRU
// position); waiting on a solve that fails is a miss — the entry is
// already gone from the map and the next Get will retry it. Counting
// before the wait would register failed solves as cache hits and touch
// the LRU for an entry that never becomes evictable.
func (r *Registry) recordWait(e *entry) {
	<-e.ready
	r.mu.Lock()
	if e.err == nil {
		r.hits++
		r.touchLocked(e)
	} else {
		r.misses++
	}
	r.mu.Unlock()
}

// Reweight applies edge-weight edits to the cached oracle for fp and
// installs the repaired oracle under the edited graph's fingerprint,
// atomically replacing the old entry — after Reweight returns, fp no
// longer serves and newFp does, with no window in which stale distances
// answer queries under the new fingerprint. The repair itself runs
// outside the registry lock (queries on the old oracle proceed
// throughout) and falls back to a warm re-solve internally when the
// edit damage is too large; either way the result is exact for the
// edited graph.
//
// Edits may only reweight existing edges (see apsp.EdgeEdit). If the
// edits are a no-op (every weight unchanged), the old oracle is
// returned under its old fingerprint. Concurrent Reweights toward the
// same edited graph coalesce like Gets do.
func (r *Registry) Reweight(fp Fingerprint, edits []apsp.EdgeEdit) (Fingerprint, *Oracle, apsp.RepairStats, error) {
	var zero apsp.RepairStats
	if r.cfg.Repair == nil {
		return fp, nil, zero, fmt.Errorf("oracle: registry has no repair function")
	}
	r.mu.Lock()
	e, found := r.entries[fp]
	r.mu.Unlock()
	if !found {
		return fp, nil, zero, fmt.Errorf("%w: %s", ErrUnknownGraph, fp)
	}
	r.recordWait(e)
	if e.err != nil {
		return fp, nil, zero, e.err
	}
	// A demoted entry must be promoted first: the repair needs the full
	// solved result, and the swap below must invalidate both tiers.
	old, err := r.ensureHot(e)
	if errors.Is(err, errEntryDropped) {
		return fp, nil, zero, fmt.Errorf("%w: %s", ErrUnknownGraph, fp)
	}
	if err != nil {
		return fp, nil, zero, err
	}
	g := old.Graph()
	if g == nil {
		return fp, nil, zero, fmt.Errorf("oracle: cached oracle for %s retains no graph", fp)
	}

	// Fingerprint the edited graph first: it decides the new cache key,
	// validates the edits, and detects no-ops before any numeric work.
	g2, err := apsp.ApplyEdits(g, edits)
	if err != nil {
		return fp, nil, zero, err
	}
	newFp := FingerprintOf(g2)
	if newFp == fp {
		return fp, old, zero, nil
	}

	r.mu.Lock()
	if e2, ok := r.entries[newFp]; ok {
		// The edited graph is already cached or being produced (a
		// concurrent Reweight or a direct Get). Reuse it; the old entry
		// still must stop serving.
		r.removeLocked(e)
		r.mu.Unlock()
		r.recordWait(e2)
		if e2.err != nil {
			return newFp, nil, zero, e2.err
		}
		o2, err := r.ensureHot(e2)
		if errors.Is(err, errEntryDropped) {
			return newFp, nil, zero, fmt.Errorf("%w: %s", ErrUnknownGraph, newFp)
		}
		return newFp, o2, zero, err
	}
	e2 := &entry{fp: newFp, ready: make(chan struct{})}
	r.entries[newFp] = e2
	r.beginSolveLocked()
	r.mu.Unlock()

	start := time.Now()
	res, g2, st, err := r.cfg.Repair(g, old.res, edits)
	elapsed := time.Since(start).Nanoseconds()

	var o2 *Oracle
	r.mu.Lock()
	r.reweights++
	r.repairNanos += elapsed
	r.endSolveLocked()
	if st.FellBack {
		r.repairFallbacks++
	}
	if err != nil {
		e2.err = err
		delete(r.entries, newFp)
	} else {
		r.addWordsLocked(res.Report)
		o2 = FromResult(res, r.cfg.Pool)
		o2.graph = g2
		o2.shared = &r.queries
		e2.oracle = o2
		e2.elem = r.lru.PushFront(e2)
		r.bytes += o2.MemoryBytes()
		// The swap: the new entry is live, so the old fingerprint stops
		// serving in the same critical section.
		r.removeLocked(e)
		r.evictLocked()
	}
	r.mu.Unlock()
	close(e2.ready)
	return newFp, o2, st, err
}

// beginSolveLocked / endSolveLocked bracket a solve or repair for the
// quiescence tracking. endSolveLocked wakes every Quiesce waiter when
// the last in-flight solve finishes.
func (r *Registry) beginSolveLocked() { r.activeSolves++ }

func (r *Registry) endSolveLocked() {
	r.activeSolves--
	if r.activeSolves == 0 && r.idle != nil {
		close(r.idle)
		r.idle = nil
	}
}

// ActiveSolves returns the number of solves and repairs executing right
// now. Nonzero means shutting the process down would abandon work that
// coalesced waiters (possibly on other connections) depend on.
func (r *Registry) ActiveSolves() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.activeSolves
}

// Quiesce blocks until no solve or repair is in flight, or until ctx is
// done. It is the registry half of a graceful drain: http.Server's
// Shutdown only waits for open connections, but a solve started by a
// since-disconnected client keeps running inside the registry — exiting
// before it finishes would waste the work and strand coalesced waiters.
// Quiesce does not prevent new solves from starting; stop routing new
// traffic first (Server.BeginDrain).
func (r *Registry) Quiesce(ctx context.Context) error {
	for {
		r.mu.Lock()
		if r.activeSolves == 0 {
			r.mu.Unlock()
			return nil
		}
		if r.idle == nil {
			r.idle = make(chan struct{})
		}
		ch := r.idle
		r.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Has reports whether fp names a cached (solved or solving) entry,
// without touching the hit/miss counters or the LRU order — the cheap
// membership probe the fleet router uses for placement checks.
func (r *Registry) Has(fp Fingerprint) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.entries[fp]
	return ok
}

// removeLocked drops a solved entry from the map and from BOTH tiers
// without touching the eviction counter (Reweight's swap is not an
// eviction). Safe to call on an entry that was already evicted or
// replaced.
func (r *Registry) removeLocked(e *entry) {
	if cur, ok := r.entries[e.fp]; ok && cur == e {
		delete(r.entries, e.fp)
	}
	if e.elem != nil {
		r.lru.Remove(e.elem)
		e.elem = nil
		r.bytes -= e.oracle.MemoryBytes()
	}
	if e.celem != nil {
		r.clru.Remove(e.celem)
		e.celem = nil
		r.cbytes -= int64(len(e.comp.blob))
		e.comp = nil
	}
}

// touchLocked moves a solved entry to the LRU front; in-flight entries
// have no list element yet and are touched on insertion instead.
func (r *Registry) touchLocked(e *entry) {
	if e.elem != nil {
		r.lru.MoveToFront(e.elem)
	}
}

// evictLocked demotes least-recently-used hot oracles until the hot
// bytes fit the budget. The front entry (the one just solved or
// touched) is kept while anything older can make room — but if the
// front entry ALONE exceeds the whole budget it is demoted too, fixing
// the oversized-entry pin: before the tiered rewrite such an oracle sat
// at the LRU front forever (the Len() > 1 guard protected it and
// nothing could ever push it out), permanently blowing the budget. Now
// it lives in the compressed tier (or is dropped with an Evictions
// count when that tier is off) and is promoted per access.
func (r *Registry) evictLocked() {
	if r.cfg.MemoryBudget <= 0 {
		return
	}
	for r.bytes > r.cfg.MemoryBudget && r.lru.Len() > 1 {
		r.demoteLocked(r.lru.Back().Value.(*entry))
	}
	if r.bytes > r.cfg.MemoryBudget && r.lru.Len() == 1 {
		// Only the front entry is left, so r.bytes is its size alone:
		// it is larger than the entire budget.
		r.demoteLocked(r.lru.Front().Value.(*entry))
	}
}

// demoteLocked moves a hot entry to the compressed tier: the distance
// matrix is re-encoded losslessly (tier.go) and the successor structure
// is discarded — promotion rebuilds it bit-identically from the graph.
// With the compressed tier disabled (or for an oracle that retains no
// graph, which a registry never produces) the entry is dropped instead,
// counted as an eviction.
func (r *Registry) demoteLocked(e *entry) {
	o := e.oracle
	r.lru.Remove(e.elem)
	e.elem = nil
	e.oracle = nil
	r.bytes -= o.MemoryBytes()
	g := o.Graph()
	if r.cfg.CompressedBudget <= 0 || g == nil {
		if cur, ok := r.entries[e.fp]; ok && cur == e {
			delete(r.entries, e.fp)
		}
		r.evictions++
		return
	}
	blob := CompressDist(o.res.Dist)
	e.comp = &compEntry{blob: blob, graph: g}
	e.celem = r.clru.PushFront(e)
	r.cbytes += int64(len(blob))
	r.demotions++
	r.evictCompressedLocked()
}

// evictCompressedLocked drops least-recently-used compressed blobs
// until the tier fits its budget. Entries mid-promotion are skipped —
// their blob is being decoded off the lock and the promotion will move
// them out of this tier itself.
func (r *Registry) evictCompressedLocked() {
	for r.cbytes > r.cfg.CompressedBudget {
		el := r.clru.Back()
		for el != nil && el.Value.(*entry).promoting != nil {
			el = el.Prev()
		}
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		r.clru.Remove(el)
		e.celem = nil
		r.cbytes -= int64(len(e.comp.blob))
		e.comp = nil
		if cur, ok := r.entries[e.fp]; ok && cur == e {
			delete(r.entries, e.fp)
		}
		r.evictions++
	}
}

// ensureHot returns a hot oracle for a successfully solved entry,
// promoting it from the compressed tier when it was demoted. Callers
// must have waited out e.ready and checked e.err first. Concurrent
// promotions of the same entry coalesce: one goroutine decodes the blob
// and rebuilds successors off the lock, the rest wait on e.promoting
// and re-check. Returns errEntryDropped when the entry no longer exists
// in either tier.
func (r *Registry) ensureHot(e *entry) (*Oracle, error) {
	for {
		r.mu.Lock()
		if e.oracle != nil {
			o := e.oracle
			r.touchLocked(e)
			r.mu.Unlock()
			return o, nil
		}
		if ch := e.promoting; ch != nil {
			r.mu.Unlock()
			<-ch
			continue
		}
		if e.comp == nil {
			r.mu.Unlock()
			return nil, errEntryDropped
		}
		ch := make(chan struct{})
		e.promoting = ch
		comp := e.comp
		r.mu.Unlock()

		o, err := promote(comp, r.cfg.Pool)

		r.mu.Lock()
		e.promoting = nil
		if err != nil {
			// The in-memory blob failed to decode — fail closed: drop
			// the entry so the next Get re-solves from scratch.
			r.removeLocked(e)
			r.evictions++
			r.mu.Unlock()
			close(ch)
			return nil, err
		}
		o.shared = &r.queries
		r.promotions++
		if cur, ok := r.entries[e.fp]; !ok || cur != e {
			// The entry was swapped out (Reweight) while we promoted:
			// serve the result but do not re-install it in any tier.
			r.mu.Unlock()
			close(ch)
			return o, nil
		}
		if e.celem != nil {
			r.clru.Remove(e.celem)
			e.celem = nil
			r.cbytes -= int64(len(e.comp.blob))
		}
		e.comp = nil
		e.oracle = o
		e.elem = r.lru.PushFront(e)
		r.bytes += o.MemoryBytes()
		r.evictLocked()
		r.mu.Unlock()
		close(ch)
		return o, nil
	}
}

// promote rebuilds a hot oracle from a compressed-tier entry: decode
// the quantized distances (bit-identical by the codec's losslessness
// guarantee) and rebuild the successor structure deterministically from
// the retained graph — the same apsp.SuccessorsFromDist the production
// solve path runs, so the promoted oracle answers every distance AND
// path query bit-identically to the one that was demoted.
func promote(c *compEntry, pool *semiring.Pool) (*Oracle, error) {
	d, err := DecompressDist(c.blob)
	if err != nil {
		return nil, fmt.Errorf("oracle: promote: %w", err)
	}
	res, err := apsp.SuccessorsFromDist(c.graph, d)
	if err != nil {
		return nil, fmt.Errorf("oracle: promote: %w", err)
	}
	o := FromResult(res, pool)
	o.graph = c.graph
	return o, nil
}

// Len returns the number of cached (solved or solving) entries.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Fingerprints lists the cached fingerprints in LRU order, most
// recently used first (solved entries only).
func (r *Registry) Fingerprints() []Fingerprint {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Fingerprint, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).fp)
	}
	return out
}

// Stats is a snapshot of the registry's counters. Query counters are
// cumulative across evictions: every oracle the registry ever created
// feeds the same totals, including queries still in flight on an
// already-evicted oracle.
type Stats struct {
	Solves int64 // solves actually run (coalesced requests share one)
	// SolvesInFlight counts solves and repairs executing right now —
	// the work Quiesce waits for during a drain, and a load signal the
	// fleet router reads per backend.
	SolvesInFlight int64
	Hits           int64 // Get/Lookup calls satisfied by an existing entry
	Misses         int64 // Get calls that triggered a solve + unknown Lookups
	Evictions      int64 // oracles dropped entirely (from either tier)

	// Tier-transition counters: a demotion re-encodes a hot oracle into
	// the compressed tier, a promotion decodes it back on access. Both
	// are zero when Config.CompressedBudget is off.
	Demotions  int64
	Promotions int64

	Entries     int   // cached entries, including in-flight solves and compressed
	Bytes       int64 // retained bytes of hot-tier oracles
	BudgetBytes int64 // configured hot budget (0 = unlimited)

	// Compressed-tier occupancy: entries currently demoted, their total
	// blob bytes, and the configured budget (0 = tier disabled).
	CompressedEntries     int
	CompressedBytes       int64
	CompressedBudgetBytes int64

	SolveNanos      int64 // total wall-clock spent solving
	QueriesServed   int64 // point-queries answered across all oracles
	QueriesInFlight int64 // query calls executing right now
	QueryNanos      int64 // total wall-clock spent inside query calls

	// Reweight counters. RepairFallbacks counts reweights whose edit
	// damage exceeded the repair threshold and ran a warm re-solve
	// instead; RepairNanos is total wall-clock inside the repair
	// function (both paths).
	Reweights       int64
	RepairFallbacks int64
	RepairNanos     int64

	// Plan-cache counters (all zero when no plan cache is configured).
	// PlanHits counts solves that reused a cached symbolic plan and so
	// performed zero ordering/eTree/fill-mask work; PlanBuildNanos is
	// the total wall-clock the symbolic phase has cost.
	PlanBuilds     int64
	PlanHits       int64
	PlanEntries    int
	PlanBuildNanos int64
	// Plan-store counters (zero without a disk-backed plan cache). A
	// disk hit is a plan served from the persistent store with zero
	// symbolic work — the warm-restart path; it is NOT a build.
	PlanDiskHits   int64
	PlanDiskWrites int64
	PlanDiskErrors int64

	// Simulated communication totals over every solve and repair
	// fallback: WordsMoved is the all-rank words-sent sum, and
	// WordsByPhase splits it by schedule phase (keys are the
	// comm.SendClass names: "r2", "r3", "r4-panel", "r4-reduce",
	// "r4-seq", "trans"; zero classes are omitted). Both stay zero for
	// solvers that run no simulated machine.
	WordsMoved   int64
	WordsByPhase map[string]int64
}

// addWordsLocked folds one solve's cost report into the cumulative
// communication totals. Callers hold r.mu.
func (r *Registry) addWordsLocked(rep comm.Report) {
	r.wordsMoved += rep.TotalWords
	for c, w := range rep.WordsByClass {
		r.wordsByClass[c] += w
	}
}

// Stats returns the registry counters at this instant.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		Solves:         r.solves,
		SolvesInFlight: int64(r.activeSolves),

		Hits:        r.hits,
		Misses:      r.misses,
		Evictions:   r.evictions,
		Demotions:   r.demotions,
		Promotions:  r.promotions,
		Entries:     len(r.entries),
		Bytes:       r.bytes,
		BudgetBytes: r.cfg.MemoryBudget,

		CompressedEntries:     r.clru.Len(),
		CompressedBytes:       r.cbytes,
		CompressedBudgetBytes: r.cfg.CompressedBudget,

		SolveNanos: r.solveNanos,

		Reweights:       r.reweights,
		RepairFallbacks: r.repairFallbacks,
		RepairNanos:     r.repairNanos,

		WordsMoved: r.wordsMoved,
	}
	for c, w := range r.wordsByClass {
		if w != 0 {
			if s.WordsByPhase == nil {
				s.WordsByPhase = make(map[string]int64, comm.NumSendClasses)
			}
			s.WordsByPhase[comm.SendClass(c).String()] = w
		}
	}
	s.QueriesServed = r.queries.served.Load()
	s.QueriesInFlight = r.queries.inFlight.Load()
	s.QueryNanos = r.queries.queryNanos.Load()
	if r.cfg.Plans != nil {
		ps := r.cfg.Plans.Stats()
		s.PlanBuilds = ps.Builds
		s.PlanHits = ps.Hits
		s.PlanEntries = ps.Entries
		s.PlanBuildNanos = ps.BuildNanos
		s.PlanDiskHits = ps.DiskHits
		s.PlanDiskWrites = ps.DiskWrites
		s.PlanDiskErrors = ps.DiskErrors
	}
	return s
}
