package oracle

import (
	"encoding/binary"
	"fmt"
	"math"

	"sparseapsp/internal/semiring"
)

// Compressed-tier distance codec.
//
// A demoted oracle keeps only its distance matrix, re-encoded into the
// smallest representation that is provably lossless for the values at
// hand. The kinds, tried in order at compress time:
//
//	u16  quantized: v = k·scale with k ∈ [0, 0xFFFE], Inf → 0xFFFF
//	u32  quantized: v = k·scale with k ∈ [0, 0xFFFFFFFE], Inf → 0xFFFFFFFF
//	f32  each value survives a float32 round trip bit-exactly
//	f64  raw bits — always applicable
//
// Quantization is accepted only after verifying, per value, that
// float64(k)·scale reproduces the original bit pattern exactly, so the
// tier is ALWAYS bit-lossless: integer-weight graphs (whose distances
// are small integers) land in u16 at 2 bytes/pair, and anything that
// cannot be represented exactly falls through to f32 or raw f64. A
// promoted oracle therefore answers queries bit-identically to the one
// that was demoted.
//
// Like the plan codec (and unlike the semiring pack codec's
// decode-or-panic), DecompressDist must fail closed on malformed bytes:
// return an error, never panic — the registry treats a decode failure
// as a dropped entry and re-solves.

// tierMagic identifies a compressed-tier blob; the trailing digits are
// the format version.
const tierMagic = "SAPSPT01"

// tierHeaderLen is magic(8) + kind(1) + reserved(3) + n(4) + scale(8).
const tierHeaderLen = 24

const (
	tierU16 = uint8(iota)
	tierU32
	tierF32
	tierF64
)

const (
	tierInfU16 = uint16(0xFFFF)
	tierInfU32 = uint32(0xFFFFFFFF)
)

// tierKindName maps a kind byte to its display name (for stats and the
// E23 harness tables).
func tierKindName(kind uint8) string {
	switch kind {
	case tierU16:
		return "u16"
	case tierU32:
		return "u32"
	case tierF32:
		return "f32"
	default:
		return "f64"
	}
}

// quantScale picks the candidate scales for integer quantization: 1
// first (integer-weight graphs), then the smallest positive finite
// value (uniform fractional grids like 0.5-weighted meshes).
func quantScales(v []float64) []float64 {
	minPos := math.Inf(1)
	for _, x := range v {
		if x > 0 && !math.IsInf(x, 1) && x < minPos {
			minPos = x
		}
	}
	scales := []float64{1}
	if !math.IsInf(minPos, 1) && minPos != 1 {
		scales = append(scales, minPos)
	}
	return scales
}

// quantizable reports whether every finite value in v is exactly
// k·scale for an integer k in [0, maxK] — verified bit-for-bit, so a
// positive answer guarantees lossless decode.
func quantizable(v []float64, scale float64, maxK float64) bool {
	for _, x := range v {
		if math.IsInf(x, 1) {
			continue
		}
		k := math.Round(x / scale)
		if !(k >= 0 && k <= maxK) {
			return false
		}
		if math.Float64bits(k*scale) != math.Float64bits(x) {
			return false
		}
	}
	return true
}

// f32able reports whether every value in v survives a float32 round
// trip bit-exactly (+Inf does; NaN and out-of-range magnitudes do not).
func f32able(v []float64) bool {
	for _, x := range v {
		if math.Float64bits(float64(float32(x))) != math.Float64bits(x) {
			return false
		}
	}
	return true
}

func tierHeader(kind uint8, n int, scale float64) []byte {
	b := make([]byte, 0, tierHeaderLen)
	b = append(b, tierMagic...)
	b = append(b, kind, 0, 0, 0)
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(scale))
	return b
}

// CompressDist encodes a square distance matrix into the smallest
// lossless tier representation. It never fails: the fallback chain ends
// at raw float64 bits.
func CompressDist(d *semiring.Matrix) []byte {
	if d == nil || d.Rows != d.Cols {
		panic("oracle: CompressDist needs a square distance matrix")
	}
	n, v := d.Rows, d.V
	for _, scale := range quantScales(v) {
		if quantizable(v, scale, float64(tierInfU16)-1) {
			b := append(tierHeader(tierU16, n, scale), make([]byte, 0, 2*len(v))...)
			for _, x := range v {
				k := tierInfU16
				if !math.IsInf(x, 1) {
					k = uint16(math.Round(x / scale))
				}
				b = binary.LittleEndian.AppendUint16(b, k)
			}
			return b
		}
		if quantizable(v, scale, float64(tierInfU32)-1) {
			b := append(tierHeader(tierU32, n, scale), make([]byte, 0, 4*len(v))...)
			for _, x := range v {
				k := tierInfU32
				if !math.IsInf(x, 1) {
					k = uint32(math.Round(x / scale))
				}
				b = binary.LittleEndian.AppendUint32(b, k)
			}
			return b
		}
	}
	if f32able(v) {
		b := append(tierHeader(tierF32, n, 1), make([]byte, 0, 4*len(v))...)
		for _, x := range v {
			b = binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(x)))
		}
		return b
	}
	b := append(tierHeader(tierF64, n, 1), make([]byte, 0, 8*len(v))...)
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

// DecompressDist decodes a CompressDist blob back into the original
// distance matrix, bit-identical to what was compressed. Malformed
// input yields an error, never a panic.
func DecompressDist(blob []byte) (*semiring.Matrix, error) {
	kind, n, scale, payload, err := tierSplit(blob)
	if err != nil {
		return nil, err
	}
	v := make([]float64, n*n)
	switch kind {
	case tierU16:
		for i := range v {
			k := binary.LittleEndian.Uint16(payload[2*i:])
			if k == tierInfU16 {
				v[i] = semiring.Inf
			} else {
				v[i] = float64(k) * scale
			}
		}
	case tierU32:
		for i := range v {
			k := binary.LittleEndian.Uint32(payload[4*i:])
			if k == tierInfU32 {
				v[i] = semiring.Inf
			} else {
				v[i] = float64(k) * scale
			}
		}
	case tierF32:
		for i := range v {
			v[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:])))
		}
	default: // tierF64, validated by tierSplit
		for i := range v {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
	}
	return semiring.FromSlice(n, n, v), nil
}

// CompressedInfo reports a blob's representation kind ("u16", "u32",
// "f32", "f64") and matrix dimension without decoding the payload — the
// cheap probe the stats and E23 harness use.
func CompressedInfo(blob []byte) (kind string, n int, err error) {
	k, n, _, _, err := tierSplit(blob)
	if err != nil {
		return "", 0, err
	}
	return tierKindName(k), n, nil
}

// tierSplit validates the envelope and returns kind, n, scale and the
// payload slice. Every length is checked before any payload access.
func tierSplit(blob []byte) (kind uint8, n int, scale float64, payload []byte, err error) {
	if len(blob) < tierHeaderLen {
		return 0, 0, 0, nil, fmt.Errorf("oracle: compressed blob too short (%d bytes)", len(blob))
	}
	if string(blob[:len(tierMagic)]) != tierMagic {
		return 0, 0, 0, nil, fmt.Errorf("oracle: bad compressed-tier magic")
	}
	kind = blob[8]
	if kind > tierF64 {
		return 0, 0, 0, nil, fmt.Errorf("oracle: unknown tier kind %d", kind)
	}
	if blob[9] != 0 || blob[10] != 0 || blob[11] != 0 {
		return 0, 0, 0, nil, fmt.Errorf("oracle: nonzero reserved bytes in tier header")
	}
	un := binary.LittleEndian.Uint32(blob[12:])
	if un > 1<<20 {
		return 0, 0, 0, nil, fmt.Errorf("oracle: implausible tier dimension %d", un)
	}
	n = int(un)
	scale = math.Float64frombits(binary.LittleEndian.Uint64(blob[16:]))
	switch kind {
	case tierU16, tierU32:
		if !(scale > 0) || math.IsInf(scale, 1) {
			return 0, 0, 0, nil, fmt.Errorf("oracle: invalid quantization scale %v", scale)
		}
	default:
		if math.Float64bits(scale) != math.Float64bits(1) {
			return 0, 0, 0, nil, fmt.Errorf("oracle: float tier blob carries scale %v, want 1", scale)
		}
	}
	elem := map[uint8]int{tierU16: 2, tierU32: 4, tierF32: 4, tierF64: 8}[kind]
	want := uint64(n) * uint64(n) * uint64(elem)
	payload = blob[tierHeaderLen:]
	if uint64(len(payload)) != want {
		return 0, 0, 0, nil, fmt.Errorf("oracle: tier payload is %d bytes, want %d for n=%d kind %s",
			len(payload), want, n, tierKindName(kind))
	}
	return kind, n, scale, payload, nil
}
