package oracle

import (
	"testing"

	"sparseapsp/internal/semiring"
)

// FuzzDecompressMalformed mutates valid compressed-tier blobs (one per
// representation kind) and arbitrary junk, requiring the decoder to
// return an error or a well-formed square matrix — never panic. Like
// the plan codec (and unlike the semiring pack codec's
// decode-or-panic), tier blobs outlive the solve that produced them, so
// the decoder must fail closed. No recover() here — a panic fails.
func FuzzDecompressMalformed(f *testing.F) {
	inf := semiring.Inf
	seed := func(vals []float64, n int) {
		f.Add(CompressDist(semiring.FromSlice(n, n, vals)))
	}
	seed([]float64{0, 3, 7, inf}, 2)                       // u16
	seed([]float64{0, 70000, 1e9, inf}, 2)                 // u32
	seed([]float64{0, 1.5, 2.5, inf}, 2)                   // f32
	seed([]float64{0, 0.1, 0.3, inf}, 2)                   // f64
	seed([]float64{0, 0.25, 1.5, inf, 0.5, 0, 2, 0, 0}, 3) // u16, scale 0.25
	f.Add([]byte{})
	f.Add([]byte(tierMagic))
	f.Add([]byte("definitely not a compressed distance blob, but long enough"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecompressDist(data)
		if err != nil {
			return
		}
		if m == nil || m.Rows != m.Cols || len(m.V) != m.Rows*m.Cols {
			t.Fatalf("accepted blob decoded to malformed matrix %+v", m)
		}
		if _, n, err := CompressedInfo(data); err != nil || n != m.Rows {
			t.Fatalf("CompressedInfo disagrees with DecompressDist: n=%d err=%v vs rows=%d", n, err, m.Rows)
		}
	})
}
