// Package server is the apspd HTTP front-end over an oracle registry,
// factored out of cmd/apspd so the fleet router, the load-test harness
// and the tests can all spin up real backends in-process. cmd/apspd
// wraps it in a net/http.Server; internal/fleet proxies to it.
//
// The package also owns the wire protocol: the request/response JSON
// types of every endpoint live here and are imported by the router, so
// a single definition decides what travels between router and backends.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/oracle"
)

// MaxBodyBytes bounds request bodies (graphs arrive inline).
const MaxBodyBytes = 64 << 20

// endpointStats counts one endpoint's traffic.
type endpointStats struct {
	Requests   atomic.Int64
	Errors     atomic.Int64
	InFlight   atomic.Int64
	TotalNanos atomic.Int64
	MaxNanos   atomic.Int64
}

// EndpointSnapshot is the per-endpoint section of /statsz.
type EndpointSnapshot struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	InFlight int64   `json:"in_flight"`
	TotalMs  float64 `json:"total_ms"`
	MaxMs    float64 `json:"max_ms"`
}

func (e *endpointStats) snapshot() EndpointSnapshot {
	return EndpointSnapshot{
		Requests: e.Requests.Load(),
		Errors:   e.Errors.Load(),
		InFlight: e.InFlight.Load(),
		TotalMs:  float64(e.TotalNanos.Load()) / 1e6,
		MaxMs:    float64(e.MaxNanos.Load()) / 1e6,
	}
}

// Server is the apspd HTTP handler over an oracle registry.
//
// Liveness and readiness are split: /healthz answers 200 for the whole
// process lifetime (the probe for "restart me"), while /readyz answers
// 200 only while the server wants traffic — it goes 503 the moment
// BeginDrain is called, so a router health-probing /readyz stops
// routing to a draining backend before its listener closes.
type Server struct {
	reg       *oracle.Registry
	mux       *http.ServeMux
	started   time.Time
	endpoints map[string]*endpointStats
	ready     atomic.Bool
	draining  atomic.Bool
}

// New wires the handlers. The registry owns solving and caching; the
// server only parses requests and keeps per-endpoint counters. The
// server reports ready as soon as New returns with a non-nil registry.
func New(reg *oracle.Registry) *Server {
	s := &Server{
		reg:       reg,
		mux:       http.NewServeMux(),
		started:   time.Now(),
		endpoints: make(map[string]*endpointStats),
	}
	s.handle("load", "POST /load", s.handleLoad)
	s.handle("generate", "POST /generate", s.handleGenerate)
	s.handle("query", "POST /query", s.handleQuery)
	s.handle("reweight", "POST /reweight", s.handleReweight)
	s.handle("statsz", "GET /statsz", s.handleStatsz)
	s.handle("healthz", "GET /healthz", s.handleHealthz)
	s.handle("readyz", "GET /readyz", s.handleReadyz)
	s.ready.Store(reg != nil)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetReady overrides the readiness state; New already marks the server
// ready, so this mainly serves embedders that construct the server
// before its registry is usable.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// BeginDrain flips /readyz to 503 without touching /healthz: health
// probes stop sending new traffic while in-flight requests (and the
// registry solves they coalesced into) finish. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// apiError carries an HTTP status through the handler return path.
type apiError struct {
	status int
	err    error
}

func (e *apiError) Error() string { return e.err.Error() }

func badRequest(format string, args ...interface{}) error {
	return &apiError{status: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// handle registers a counted handler: requests, errors, in-flight and
// latency are tracked per endpoint and reported by /statsz.
func (s *Server) handle(name, pattern string, h func(w http.ResponseWriter, r *http.Request) error) {
	st := &endpointStats{}
	s.endpoints[name] = st
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		st.Requests.Add(1)
		st.InFlight.Add(1)
		start := time.Now()
		err := h(w, r)
		nanos := time.Since(start).Nanoseconds()
		st.TotalNanos.Add(nanos)
		for {
			max := st.MaxNanos.Load()
			if nanos <= max || st.MaxNanos.CompareAndSwap(max, nanos) {
				break
			}
		}
		st.InFlight.Add(-1)
		if err != nil {
			st.Errors.Add(1)
			status := http.StatusInternalServerError
			var ae *apiError
			if errors.As(err, &ae) {
				status = ae.status
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		}
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// GraphInfo is the response of /load and /generate: the id to query by
// plus basic shape info.
type GraphInfo struct {
	Graph string `json:"graph"`
	N     int    `json:"n"`
	M     int    `json:"m"`
}

// registry returns the oracle registry, or a 503 error for a server
// constructed before its registry exists (see SetReady).
func (s *Server) registry() (*oracle.Registry, error) {
	if s.reg == nil {
		return nil, &apiError{status: http.StatusServiceUnavailable, err: errors.New("registry not initialized")}
	}
	return s.reg, nil
}

// register solves g through the registry (coalesced with any
// concurrent load of the same graph) and returns its id.
func (s *Server) register(w http.ResponseWriter, g *graph.Graph) error {
	if _, err := s.registry(); err != nil {
		return err
	}
	if _, err := s.reg.Get(g); err != nil {
		return badRequest("solve failed: %v", err)
	}
	return writeJSON(w, GraphInfo{Graph: oracle.FingerprintOf(g).String(), N: g.N(), M: g.M()})
}

// LoadRequest is the JSON form of /load; the endpoint also accepts the
// plain-text edge-list format of internal/graph (n header + "u v w"
// lines) when the body does not start with '{'.
type LoadRequest struct {
	N     int          `json:"n"`
	Edges [][3]float64 `json:"edges"` // [u, v, w] triples
}

// ParseGraphBody decodes a /load body — JSON {n, edges} or edge-list
// text — into a graph. The router uses it too: computing the graph
// fingerprint locally is what lets it place a load deterministically
// before any backend has seen the graph.
func ParseGraphBody(body []byte) (*graph.Graph, error) {
	trimmed := strings.TrimSpace(string(body))
	if trimmed == "" {
		return nil, fmt.Errorf("empty body: want JSON {n, edges} or edge-list text")
	}
	if strings.HasPrefix(trimmed, "{") {
		var req LoadRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("bad JSON: %v", err)
		}
		if req.N < 0 {
			return nil, fmt.Errorf("negative vertex count %d", req.N)
		}
		g := graph.New(req.N)
		for i, e := range req.Edges {
			u, v := int(e[0]), int(e[1])
			if float64(u) != e[0] || float64(v) != e[1] || u < 0 || u >= req.N || v < 0 || v >= req.N {
				return nil, fmt.Errorf("edge %d: endpoints (%g,%g) outside [0,%d)", i, e[0], e[1], req.N)
			}
			g.AddEdge(u, v, e[2])
		}
		return g, nil
	}
	g, err := graph.Read(strings.NewReader(trimmed))
	if err != nil {
		return nil, fmt.Errorf("bad edge list: %v", err)
	}
	return g, nil
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBodyBytes))
	if err != nil {
		return badRequest("reading body: %v", err)
	}
	g, err := ParseGraphBody(body)
	if err != nil {
		return badRequest("%v", err)
	}
	return s.register(w, g)
}

// GenerateRequest builds one of the named workload families of
// internal/graph (grid, grid3d, path, cycle, tree, gnp, rmat, rgg, ...).
type GenerateRequest struct {
	Kind string `json:"kind"`
	N    int    `json:"n"`
	Seed int64  `json:"seed"`
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) error {
	var req GenerateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, MaxBodyBytes)).Decode(&req); err != nil {
		return badRequest("bad JSON: %v", err)
	}
	if req.N <= 0 {
		return badRequest("generate needs n > 0, got %d", req.N)
	}
	g, err := graph.NamedGenerator(req.Kind, req.N, req.Seed)
	if err != nil {
		return badRequest("%v", err)
	}
	return s.register(w, g)
}

// QueryRequest asks for distances (and optionally full paths) for a
// batch of (source, target) pairs on a loaded graph.
type QueryRequest struct {
	Graph string   `json:"graph"`
	Pairs [][2]int `json:"pairs"`
	Paths bool     `json:"paths"`
}

// QueryResponse answers a /query batch, index-aligned with the request
// pairs. Unreachable distances are encoded as -1 (JSON has no Inf).
type QueryResponse struct {
	Dists []float64 `json:"dists"`
	Paths [][]int   `json:"paths,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) error {
	var req QueryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, MaxBodyBytes)).Decode(&req); err != nil {
		return badRequest("bad JSON: %v", err)
	}
	if len(req.Pairs) == 0 {
		return badRequest("query needs at least one [u, v] pair")
	}
	fp, err := oracle.ParseFingerprint(req.Graph)
	if err != nil {
		return badRequest("%v", err)
	}
	reg, err := s.registry()
	if err != nil {
		return err
	}
	o, ok, err := reg.Lookup(fp)
	if !ok {
		return &apiError{status: http.StatusNotFound,
			err: fmt.Errorf("unknown graph %s: load or generate it first", req.Graph)}
	}
	if err != nil {
		return badRequest("solve failed: %v", err)
	}
	dists, err := o.BatchDist(req.Pairs)
	if err != nil {
		return badRequest("%v", err)
	}
	resp := QueryResponse{Dists: make([]float64, len(dists))}
	for i, d := range dists {
		if math.IsInf(d, 1) {
			resp.Dists[i] = -1
		} else {
			resp.Dists[i] = d
		}
	}
	if req.Paths {
		if resp.Paths, err = o.BatchPath(req.Pairs); err != nil {
			return badRequest("%v", err)
		}
	}
	return writeJSON(w, resp)
}

// ReweightRequest changes the weights of existing edges of a loaded
// graph. Edits are [u, v, w] triples like /load's edges; every edge
// must already exist (reweighting never changes the structure). The
// repaired oracle is installed under the edited graph's fingerprint and
// the old fingerprint stops serving.
type ReweightRequest struct {
	Graph string       `json:"graph"`
	Edits [][3]float64 `json:"edits"`
}

// ReweightResponse reports the new fingerprint to query by plus the
// repair statistics.
type ReweightResponse struct {
	Graph string `json:"graph"`
	N     int    `json:"n"`
	M     int    `json:"m"`

	Edits          int     `json:"edits"`
	Decreases      int     `json:"decreases"`
	Increases      int     `json:"increases"`
	ResetPairs     int     `json:"reset_pairs"`
	AffectedRows   int     `json:"affected_rows"`
	TotalPairs     int     `json:"total_pairs"`
	DamageFraction float64 `json:"damage_fraction"`
	FellBack       bool    `json:"fell_back"`
}

func (s *Server) handleReweight(w http.ResponseWriter, r *http.Request) error {
	var req ReweightRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, MaxBodyBytes)).Decode(&req); err != nil {
		return badRequest("bad JSON: %v", err)
	}
	if len(req.Edits) == 0 {
		return badRequest("reweight needs at least one [u, v, w] edit")
	}
	fp, err := oracle.ParseFingerprint(req.Graph)
	if err != nil {
		return badRequest("%v", err)
	}
	edits := make([]apsp.EdgeEdit, len(req.Edits))
	for i, e := range req.Edits {
		u, v := int(e[0]), int(e[1])
		if float64(u) != e[0] || float64(v) != e[1] {
			return badRequest("edit %d: endpoints (%g,%g) are not integers", i, e[0], e[1])
		}
		edits[i] = apsp.EdgeEdit{U: u, V: v, W: e[2]}
	}
	reg, err := s.registry()
	if err != nil {
		return err
	}
	newFp, o, st, err := reg.Reweight(fp, edits)
	if errors.Is(err, oracle.ErrUnknownGraph) {
		return &apiError{status: http.StatusNotFound,
			err: fmt.Errorf("unknown graph %s: load or generate it first", req.Graph)}
	}
	if err != nil {
		return badRequest("reweight failed: %v", err)
	}
	g := o.Graph()
	return writeJSON(w, ReweightResponse{
		Graph:          newFp.String(),
		N:              g.N(),
		M:              g.M(),
		Edits:          st.Edits,
		Decreases:      st.Decreases,
		Increases:      st.Increases,
		ResetPairs:     st.ResetPairs,
		AffectedRows:   st.AffectedRows,
		TotalPairs:     st.TotalPairs,
		DamageFraction: st.DamageFraction,
		FellBack:       st.FellBack,
	})
}

// StatszResponse is the /statsz report: registry counters plus the
// per-endpoint traffic counters. The fleet router fans this out across
// its backends and sums the registry sections.
type StatszResponse struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Registry      RegistrySnapshot            `json:"registry"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
}

// RegistrySnapshot is the registry section of /statsz.
type RegistrySnapshot struct {
	Solves int64 `json:"solves"`
	// SolvesInFlight counts solves (and repairs) executing right now —
	// including ones whose originating HTTP client has gone away but
	// whose coalesced waiters are still pending. The drain path waits
	// on this through Registry.Quiesce, and the router surfaces it as
	// backend load.
	SolvesInFlight int64 `json:"solves_in_flight"`
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	Evictions      int64 `json:"evictions"`
	Entries        int   `json:"entries"`
	Bytes          int64 `json:"bytes"`
	BudgetBytes    int64 `json:"budget_bytes"`
	// Tiered-memory counters: demotions re-encode an LRU-evicted
	// oracle into the compressed tier (losslessly quantized distances),
	// promotions decode one back on access; compressed_* describe that
	// tier's occupancy. All zero when the tier is disabled.
	Demotions             int64 `json:"demotions"`
	Promotions            int64 `json:"promotions"`
	CompressedEntries     int   `json:"compressed_entries"`
	CompressedBytes       int64 `json:"compressed_bytes"`
	CompressedBudgetBytes int64 `json:"compressed_budget_bytes"`

	SolveMs         float64 `json:"solve_ms"`
	QueriesServed   int64   `json:"queries_served"`
	QueriesInFlight int64   `json:"queries_in_flight"`
	QueryMs         float64 `json:"query_ms"`
	// Reweight counters: repair_fallbacks counts reweights whose edit
	// damage forced a warm re-solve instead of an incremental repair.
	Reweights       int64   `json:"reweights"`
	RepairFallbacks int64   `json:"repair_fallbacks"`
	RepairMs        float64 `json:"repair_ms"`
	// Symbolic plan-cache counters of the sparse solver: plan_hits are
	// solves that reused a cached plan (zero ordering/eTree/fill-mask
	// work). All zero when the registry's solver runs without a cache.
	PlanBuilds  int64   `json:"plan_builds"`
	PlanHits    int64   `json:"plan_hits"`
	PlanEntries int     `json:"plan_entries"`
	PlanBuildMs float64 `json:"plan_build_ms"`
	// Persistent plan-store counters: a disk hit is a plan served from
	// the on-disk store with zero symbolic work — the warm-restart
	// path. All zero without a -plan-dir.
	PlanDiskHits   int64 `json:"plan_disk_hits"`
	PlanDiskWrites int64 `json:"plan_disk_writes"`
	PlanDiskErrors int64 `json:"plan_disk_errors"`
	// Simulated communication totals of every solve and repair
	// fallback the registry ran: words_moved is the all-rank sum,
	// words_by_phase splits it by schedule phase (r2, r3, r4-panel,
	// r4-reduce, r4-seq, trans) — the serving-layer view of what the
	// configured wire format costs.
	WordsMoved   int64            `json:"words_moved"`
	WordsByPhase map[string]int64 `json:"words_by_phase,omitempty"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) error {
	reg, err := s.registry()
	if err != nil {
		return err
	}
	st := reg.Stats()
	resp := StatszResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Registry: RegistrySnapshot{
			Solves:         st.Solves,
			SolvesInFlight: st.SolvesInFlight,
			Hits:           st.Hits,
			Misses:         st.Misses,
			Evictions:      st.Evictions,
			Entries:        st.Entries,
			Bytes:          st.Bytes,
			BudgetBytes:    st.BudgetBytes,

			Demotions:             st.Demotions,
			Promotions:            st.Promotions,
			CompressedEntries:     st.CompressedEntries,
			CompressedBytes:       st.CompressedBytes,
			CompressedBudgetBytes: st.CompressedBudgetBytes,

			SolveMs:         float64(st.SolveNanos) / 1e6,
			QueriesServed:   st.QueriesServed,
			QueriesInFlight: st.QueriesInFlight,
			QueryMs:         float64(st.QueryNanos) / 1e6,
			Reweights:       st.Reweights,
			RepairFallbacks: st.RepairFallbacks,
			RepairMs:        float64(st.RepairNanos) / 1e6,
			PlanBuilds:      st.PlanBuilds,
			PlanHits:        st.PlanHits,
			PlanEntries:     st.PlanEntries,
			PlanBuildMs:     float64(st.PlanBuildNanos) / 1e6,
			PlanDiskHits:    st.PlanDiskHits,
			PlanDiskWrites:  st.PlanDiskWrites,
			PlanDiskErrors:  st.PlanDiskErrors,
			WordsMoved:      st.WordsMoved,
			WordsByPhase:    st.WordsByPhase,
		},
		Endpoints: make(map[string]EndpointSnapshot, len(s.endpoints)),
	}
	for name, ep := range s.endpoints {
		resp.Endpoints[name] = ep.snapshot()
	}
	return writeJSON(w, resp)
}

// handleHealthz is the liveness probe: 200 for the whole process
// lifetime, draining included. Use /readyz to decide routability.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	return writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 503 before the registry is
// installed and from BeginDrain onward, 200 in between. The fleet
// router probes this endpoint, so a draining backend stops receiving
// new queries while it finishes in-flight work.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) error {
	switch {
	case s.draining.Load():
		return &apiError{status: http.StatusServiceUnavailable, err: errors.New("draining")}
	case !s.ready.Load():
		return &apiError{status: http.StatusServiceUnavailable, err: errors.New("not ready")}
	}
	return writeJSON(w, map[string]string{"status": "ready"})
}
