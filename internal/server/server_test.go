package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sparseapsp"
	"sparseapsp/internal/apsp"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/oracle"
)

func newTestServer(t *testing.T, budget int64) (*httptest.Server, *Server) {
	t.Helper()
	reg := sparseapsp.NewOracleRegistry(sparseapsp.Options{Algorithm: sparseapsp.SeqFW}, budget)
	s := New(reg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s
}

func postJSON(t *testing.T, url string, body interface{}, out interface{}) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp
}

func getStats(t *testing.T, base string) StatszResponse {
	t.Helper()
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServerEndToEnd: generate a grid, query distances and paths, and
// check every answer against FloydWarshallPaths ground truth.
func TestServerEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, 0)

	var info GraphInfo
	resp := postJSON(t, ts.URL+"/generate", GenerateRequest{Kind: "grid", N: 49, Seed: 7}, &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/generate status %d", resp.StatusCode)
	}
	if info.N != 49 {
		t.Fatalf("generated n = %d, want 49", info.N)
	}

	// Ground truth from the same deterministic generator.
	g, err := graph.NamedGenerator("grid", 49, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := oracle.FingerprintOf(g).String(); got != info.Graph {
		t.Fatalf("server fingerprint %s, local %s", info.Graph, got)
	}
	want := apsp.FloydWarshallPaths(g)

	pairs := [][2]int{{0, 48}, {6, 42}, {0, 0}, {13, 27}}
	var qr QueryResponse
	resp = postJSON(t, ts.URL+"/query", QueryRequest{Graph: info.Graph, Pairs: pairs, Paths: true}, &qr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query status %d", resp.StatusCode)
	}
	for i, p := range pairs {
		ref := want.Dist.At(p[0], p[1])
		if math.Abs(qr.Dists[i]-ref) > 1e-9 {
			t.Errorf("dist %v = %g, want %g", p, qr.Dists[i], ref)
		}
		path := qr.Paths[i]
		if len(path) == 0 || path[0] != p[0] || path[len(path)-1] != p[1] {
			t.Errorf("path %v = %v: bad endpoints", p, path)
		}
		if w := apsp.PathWeight(g, path); math.Abs(w-ref) > 1e-9 {
			t.Errorf("path %v weight %g, want %g", p, w, ref)
		}
	}

	st := getStats(t, ts.URL)
	if st.Registry.Solves != 1 {
		t.Errorf("solves = %d, want 1", st.Registry.Solves)
	}
	if st.Registry.QueriesServed != int64(len(pairs))*2 { // BatchDist + BatchPath
		t.Errorf("queries served = %d, want %d", st.Registry.QueriesServed, len(pairs)*2)
	}
	if st.Endpoints["query"].Requests != 1 || st.Endpoints["generate"].Requests != 1 {
		t.Errorf("endpoint counters = %+v", st.Endpoints)
	}
}

// TestServerCoalescesConcurrentLoads: N concurrent loads of the same
// unsolved graph must trigger exactly one solve.
func TestServerCoalescesConcurrentLoads(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	g := graph.Grid2D(6, 6, graph.UnitWeights)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()

	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/load", "text/plain", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				data, _ := io.ReadAll(resp.Body)
				errs <- fmt.Errorf("/load status %d: %s", resp.StatusCode, data)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := getStats(t, ts.URL)
	if st.Registry.Solves != 1 {
		t.Errorf("solves = %d after %d concurrent loads of one graph, want 1", st.Registry.Solves, n)
	}
	if st.Endpoints["load"].Requests != n {
		t.Errorf("load requests = %d, want %d", st.Endpoints["load"].Requests, n)
	}
}

func TestServerLoadJSONAndUnreachable(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	var info GraphInfo
	resp := postJSON(t, ts.URL+"/load",
		LoadRequest{N: 4, Edges: [][3]float64{{0, 1, 2.5}, {1, 2, 1}}}, &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/load status %d", resp.StatusCode)
	}
	if info.N != 4 || info.M != 2 {
		t.Fatalf("info = %+v", info)
	}
	var qr QueryResponse
	postJSON(t, ts.URL+"/query",
		QueryRequest{Graph: info.Graph, Pairs: [][2]int{{0, 2}, {0, 3}}, Paths: true}, &qr)
	if qr.Dists[0] != 3.5 {
		t.Errorf("dist(0,2) = %g, want 3.5", qr.Dists[0])
	}
	if qr.Dists[1] != -1 {
		t.Errorf("unreachable dist = %g, want -1", qr.Dists[1])
	}
	if qr.Paths[1] != nil {
		t.Errorf("unreachable path = %v, want null", qr.Paths[1])
	}
}

func TestServerErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	cases := []struct {
		name   string
		status int
		do     func() *http.Response
	}{
		{"query unknown graph", http.StatusNotFound, func() *http.Response {
			return postJSON(t, ts.URL+"/query",
				QueryRequest{Graph: strings.Repeat("ab", 32), Pairs: [][2]int{{0, 1}}}, nil)
		}},
		{"query bad fingerprint", http.StatusBadRequest, func() *http.Response {
			return postJSON(t, ts.URL+"/query", QueryRequest{Graph: "zz", Pairs: [][2]int{{0, 1}}}, nil)
		}},
		{"query no pairs", http.StatusBadRequest, func() *http.Response {
			return postJSON(t, ts.URL+"/query", QueryRequest{Graph: strings.Repeat("ab", 32)}, nil)
		}},
		{"generate bad kind", http.StatusBadRequest, func() *http.Response {
			return postJSON(t, ts.URL+"/generate", GenerateRequest{Kind: "nope", N: 9}, nil)
		}},
		{"generate zero n", http.StatusBadRequest, func() *http.Response {
			return postJSON(t, ts.URL+"/generate", GenerateRequest{Kind: "grid"}, nil)
		}},
		{"load garbage", http.StatusBadRequest, func() *http.Response {
			resp, err := http.Post(ts.URL+"/load", "text/plain", strings.NewReader("what is this"))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp
		}},
		{"load bad edge", http.StatusBadRequest, func() *http.Response {
			return postJSON(t, ts.URL+"/load", LoadRequest{N: 2, Edges: [][3]float64{{0, 5, 1}}}, nil)
		}},
	}
	for _, c := range cases {
		if resp := c.do(); resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
	st := getStats(t, ts.URL)
	if st.Endpoints["query"].Errors != 3 {
		t.Errorf("query errors = %d, want 3", st.Endpoints["query"].Errors)
	}
}

// TestServerQueryOutOfRangePair exercises the batch validator through
// the HTTP layer.
func TestServerQueryOutOfRangePair(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	var info GraphInfo
	postJSON(t, ts.URL+"/generate", GenerateRequest{Kind: "grid", N: 16, Seed: 1}, &info)
	resp := postJSON(t, ts.URL+"/query",
		QueryRequest{Graph: info.Graph, Pairs: [][2]int{{0, 999}}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range pair: status %d, want 400", resp.StatusCode)
	}
}

// TestServerEviction: a tiny budget forces the registry to drop the
// least recently used graph, visible through /statsz.
func TestServerEviction(t *testing.T) {
	// One 16-vertex FW result is 16*16*(8+4) = 3072 bytes; fit two.
	ts, _ := newTestServer(t, 2*3072)
	var a, b, c GraphInfo
	postJSON(t, ts.URL+"/generate", GenerateRequest{Kind: "grid", N: 16, Seed: 1}, &a)
	postJSON(t, ts.URL+"/generate", GenerateRequest{Kind: "grid", N: 16, Seed: 2}, &b)
	postJSON(t, ts.URL+"/generate", GenerateRequest{Kind: "grid", N: 16, Seed: 3}, &c)
	st := getStats(t, ts.URL)
	if st.Registry.Evictions != 1 || st.Registry.Entries != 2 {
		t.Errorf("evictions=%d entries=%d, want 1 and 2", st.Registry.Evictions, st.Registry.Entries)
	}
	if st.Registry.Bytes > 2*3072 {
		t.Errorf("retained %d bytes over budget", st.Registry.Bytes)
	}
	// The oldest graph must 404 now; the newer ones still answer.
	if resp := postJSON(t, ts.URL+"/query", QueryRequest{Graph: a.Graph, Pairs: [][2]int{{0, 1}}}, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted graph: status %d, want 404", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/query", QueryRequest{Graph: c.Graph, Pairs: [][2]int{{0, 1}}}, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("fresh graph: status %d, want 200", resp.StatusCode)
	}
}

func TestServerHealthz(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", resp.StatusCode)
	}
}

// TestServerReadyzDrain pins the liveness/readiness split: /readyz
// mirrors the drain state while /healthz stays 200 throughout, so a
// router health-probing /readyz stops routing to a draining backend
// that is still alive and still finishing in-flight work.
func TestServerReadyzDrain(t *testing.T) {
	ts, s := newTestServer(t, 0)
	status := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain: status %d, want 200", got)
	}
	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain: status %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz during drain: status %d, want 200 (liveness is not readiness)", got)
	}
	// A draining server still answers queries: drain refuses new
	// routing, not in-flight or direct traffic.
	var info GraphInfo
	if resp := postJSON(t, ts.URL+"/generate", GenerateRequest{Kind: "grid", N: 9, Seed: 1}, &info); resp.StatusCode != http.StatusOK {
		t.Errorf("/generate during drain: status %d, want 200", resp.StatusCode)
	}
}

// TestServerNotReadyWithoutRegistry: a server constructed before its
// registry exists reports not-ready until SetReady flips it.
func TestServerNotReadyWithoutRegistry(t *testing.T) {
	s := New(nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with nil registry: status %d, want 503", resp.StatusCode)
	}
	s.SetReady(true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after SetReady: status %d, want 200", resp.StatusCode)
	}
}

// TestServerReweight is the live-reweighting e2e: load a graph, repair
// it through POST /reweight, and check that the new fingerprint serves
// exact distances for the edited graph while the old fingerprint 404s —
// the atomic-swap contract, observed through the HTTP surface.
func TestServerReweight(t *testing.T) {
	ts, _ := newTestServer(t, 0)

	var info GraphInfo
	if resp := postJSON(t, ts.URL+"/generate", GenerateRequest{Kind: "grid", N: 49, Seed: 7}, &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("/generate status %d", resp.StatusCode)
	}
	g, err := graph.NamedGenerator("grid", 49, 7)
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	edits := [][3]float64{
		{float64(edges[0].U), float64(edges[0].V), edges[0].W + 4},
		{float64(edges[1].U), float64(edges[1].V), 0},
	}

	var rw ReweightResponse
	if resp := postJSON(t, ts.URL+"/reweight", ReweightRequest{Graph: info.Graph, Edits: edits}, &rw); resp.StatusCode != http.StatusOK {
		t.Fatalf("/reweight status %d", resp.StatusCode)
	}
	if rw.Graph == info.Graph {
		t.Fatal("reweight returned the old fingerprint")
	}
	if rw.Edits != 2 || rw.Increases != 1 || rw.Decreases != 1 {
		t.Errorf("reweight stats %+v, want 2 edits (1 inc, 1 dec)", rw)
	}

	// Old id is gone; new id serves the edited graph's distances.
	if resp := postJSON(t, ts.URL+"/query", QueryRequest{Graph: info.Graph, Pairs: [][2]int{{0, 1}}}, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("old fingerprint: status %d, want 404", resp.StatusCode)
	}
	g2, err := apsp.ApplyEdits(g, []apsp.EdgeEdit{
		{U: edges[0].U, V: edges[0].V, W: edges[0].W + 4},
		{U: edges[1].U, V: edges[1].V, W: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := oracle.FingerprintOf(g2).String(); got != rw.Graph {
		t.Fatalf("server reweight fingerprint %s, local %s", rw.Graph, got)
	}
	want := apsp.FloydWarshallPaths(g2)
	pairs := [][2]int{{0, 48}, {edges[0].U, edges[0].V}, {6, 42}}
	var qr QueryResponse
	if resp := postJSON(t, ts.URL+"/query", QueryRequest{Graph: rw.Graph, Pairs: pairs, Paths: true}, &qr); resp.StatusCode != http.StatusOK {
		t.Fatalf("/query on new fingerprint: status %d", resp.StatusCode)
	}
	for i, p := range pairs {
		if ref := want.Dist.At(p[0], p[1]); math.Abs(qr.Dists[i]-ref) > 1e-9 {
			t.Errorf("dist %v = %g, want %g", p, qr.Dists[i], ref)
		}
		if w := apsp.PathWeight(g2, qr.Paths[i]); math.Abs(w-want.Dist.At(p[0], p[1])) > 1e-9 {
			t.Errorf("path %v weight %g, want %g", p, w, want.Dist.At(p[0], p[1]))
		}
	}

	// Error paths: unknown graph 404s, structural edits 400.
	if resp := postJSON(t, ts.URL+"/reweight", ReweightRequest{Graph: info.Graph, Edits: edits}, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("reweight of swapped-out fingerprint: status %d, want 404", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/reweight", ReweightRequest{Graph: rw.Graph, Edits: [][3]float64{{0, 48, 1}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("reweight adding an edge: status %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/reweight", ReweightRequest{Graph: rw.Graph}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("reweight with no edits: status %d, want 400", resp.StatusCode)
	}

	st := getStats(t, ts.URL)
	if st.Registry.Reweights != 1 {
		t.Errorf("registry reweights = %d, want 1", st.Registry.Reweights)
	}
	if st.Registry.Entries != 1 {
		t.Errorf("registry entries = %d after swap, want 1", st.Registry.Entries)
	}
	if st.Endpoints["reweight"].Requests != 4 || st.Endpoints["reweight"].Errors != 3 {
		t.Errorf("reweight endpoint counters %+v, want 4 requests / 3 errors", st.Endpoints["reweight"])
	}
}
