package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text edge-list format:
//
//	# comment
//	n <vertices>
//	<u> <v> <weight>
//	...
//
// Vertices are 0-based. The weight field is optional and defaults to 1.

// Write serializes the graph in edge-list format.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.n); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a graph in edge-list format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "n" {
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate n header", line)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: n header missing vertex count", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", line, fields[1])
			}
			g = New(n)
			continue
		}
		if g == nil {
			return nil, fmt.Errorf("graph: line %d: edge before n header", line)
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v [w]', got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", line, fields[1])
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q", line, fields[2])
			}
		}
		if u < 0 || u >= g.n || v < 0 || v >= g.n {
			return nil, fmt.Errorf("graph: line %d: edge {%d,%d} outside [0,%d)", line, u, v, g.n)
		}
		g.AddEdge(u, v, w)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing n header")
	}
	return g, nil
}
