package graph

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2.5)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 2, 99) // self-loop ignored
	if g.N() != 4 {
		t.Errorf("N = %d, want 4", g.N())
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	if w, ok := g.HasEdge(1, 0); !ok || w != 2.5 {
		t.Errorf("edge {1,0}: w=%v ok=%v", w, ok)
	}
	if _, ok := g.HasEdge(0, 3); ok {
		t.Error("unexpected edge {0,3}")
	}
}

func TestAddEdgeParallelKeepsMinimum(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 5)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 0, 7)
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
	if w, _ := g.HasEdge(0, 1); w != 3 {
		t.Errorf("weight = %v, want 3", w)
	}
	if w, _ := g.HasEdge(1, 0); w != 3 {
		t.Errorf("reverse weight = %v, want 3", w)
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomGNP(30, 0.2, RandomWeights(rng, 1, 5), rng)
	perm := rng.Perm(30)
	inv := make([]int, 30)
	for i, p := range perm {
		inv[p] = i
	}
	back := g.Permute(perm).Permute(inv)
	if back.M() != g.M() {
		t.Fatalf("round-trip edge count %d, want %d", back.M(), g.M())
	}
	for _, e := range g.Edges() {
		if w, ok := back.HasEdge(e.U, e.V); !ok || w != e.W {
			t.Errorf("edge {%d,%d}: got w=%v ok=%v, want %v", e.U, e.V, w, ok, e.W)
		}
	}
}

func TestPermutePreservesAdjacency(t *testing.T) {
	g := Path(5, UnitWeights)
	// reverse order
	perm := []int{4, 3, 2, 1, 0}
	h := g.Permute(perm)
	for v := 0; v+1 < 5; v++ {
		if _, ok := h.HasEdge(perm[v], perm[v+1]); !ok {
			t.Errorf("missing edge {%d,%d} after permute", perm[v], perm[v+1])
		}
	}
}

func TestPermuteRejectsNonPermutation(t *testing.T) {
	g := New(3)
	for _, perm := range [][]int{{0, 1}, {0, 0, 1}, {0, 1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("perm %v: expected panic", perm)
				}
			}()
			g.Permute(perm)
		}()
	}
}

func TestSubgraphInduces(t *testing.T) {
	g := Grid2D(3, 3, UnitWeights)
	sub := g.Subgraph([]int{0, 1, 3, 4}) // top-left 2x2 block
	if sub.N() != 4 {
		t.Fatalf("sub N = %d", sub.N())
	}
	if sub.M() != 4 {
		t.Errorf("sub M = %d, want 4 (a 2x2 grid square)", sub.M())
	}
}

func TestAdjacencyMatrix(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	a := g.AdjacencyMatrix()
	if a[0*3+0] != 0 || a[1*3+1] != 0 || a[2*3+2] != 0 {
		t.Error("diagonal should be 0")
	}
	if a[0*3+1] != 2 || a[1*3+0] != 2 {
		t.Error("edge weight missing")
	}
	if !math.IsInf(a[0*3+2], 1) {
		t.Error("absent edge should be Inf")
	}
}

func TestGrid2DStructure(t *testing.T) {
	g := Grid2D(4, 5, UnitWeights)
	if g.N() != 20 {
		t.Errorf("N = %d", g.N())
	}
	// edges: horizontal 4*(5-1) + vertical (4-1)*5 = 16 + 15
	if g.M() != 31 {
		t.Errorf("M = %d, want 31", g.M())
	}
	if !g.Connected() {
		t.Error("grid should be connected")
	}
}

func TestGrid3DStructure(t *testing.T) {
	g := Grid3D(2, 3, 4, UnitWeights)
	if g.N() != 24 {
		t.Errorf("N = %d", g.N())
	}
	want := 1*3*4 + 2*2*4 + 2*3*3 // x-, y-, z-direction edges
	if g.M() != want {
		t.Errorf("M = %d, want %d", g.M(), want)
	}
}

func TestGeneratorsConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := map[string]*Graph{
		"path":        Path(17, UnitWeights),
		"cycle":       Cycle(10, UnitWeights),
		"complete":    Complete(9, UnitWeights),
		"star":        Star(12, UnitWeights),
		"tree":        RandomTree(40, UnitWeights, rng),
		"gnp":         RandomGNP(50, 0.05, UnitWeights, rng),
		"rmat":        RMAT(6, 4, UnitWeights, rng),
		"caterpillar": Caterpillar(5, 3, UnitWeights),
	}
	for name, g := range cases {
		if !g.Connected() {
			t.Errorf("%s: not connected", name)
		}
	}
}

func TestCompleteEdgeCount(t *testing.T) {
	g := Complete(10, UnitWeights)
	if g.M() != 45 {
		t.Errorf("K10 has %d edges, want 45", g.M())
	}
}

func TestFigure1GraphMatchesPaper(t *testing.T) {
	g := Figure1Graph()
	if g.N() != 7 {
		t.Fatalf("N = %d", g.N())
	}
	// No edge between V1 = {0,1,2} and V2 = {3,4,5}.
	for u := 0; u <= 2; u++ {
		for v := 3; v <= 5; v++ {
			if _, ok := g.HasEdge(u, v); ok {
				t.Errorf("unexpected V1-V2 edge {%d,%d}", u, v)
			}
		}
	}
	if !g.Connected() {
		t.Error("Figure 1 graph should be connected through the separator")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 2 || len(comps[1]) != 3 || len(comps[2]) != 1 {
		t.Errorf("component sizes = %d,%d,%d", len(comps[0]), len(comps[1]), len(comps[2]))
	}
}

func TestBFSOrderAndDepth(t *testing.T) {
	g := Path(5, UnitWeights)
	depths := make([]int, 5)
	order := g.BFS(0, func(v, d int) { depths[v] = d })
	if len(order) != 5 || order[0] != 0 {
		t.Fatalf("order = %v", order)
	}
	for v := 0; v < 5; v++ {
		if depths[v] != v {
			t.Errorf("depth[%d] = %d, want %d", v, depths[v], v)
		}
	}
}

func TestPseudoPeripheralOnPath(t *testing.T) {
	g := Path(9, UnitWeights)
	pp := g.PseudoPeripheral(4)
	if pp != 0 && pp != 8 {
		t.Errorf("pseudo-peripheral of path midpoint = %d, want an endpoint", pp)
	}
}

func TestIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomGNP(25, 0.15, RandomWeights(rng, 1, 9), rng)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round-trip n=%d m=%d, want n=%d m=%d", back.N(), back.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if w, ok := back.HasEdge(e.U, e.V); !ok || w != e.W {
			t.Errorf("edge {%d,%d}: w=%v ok=%v, want %v", e.U, e.V, w, ok, e.W)
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	bad := []string{
		"0 1 2\n",           // edge before header
		"n -3\n",            // negative count
		"n 2\n0\n",          // short edge line
		"n 2\n0 5 1\n",      // vertex out of range
		"n 2\nn 3\n",        // duplicate header
		"n 2\na b 1\n",      // non-numeric vertex
		"n 2\n0 1 weight\n", // non-numeric weight
		"n\n",               // header missing count (fuzzer-found)
		"",                  // empty
	}
	for _, s := range bad {
		if _, err := Read(bytes.NewReader([]byte(s))); err == nil {
			t.Errorf("Read(%q) succeeded, want error", s)
		}
	}
}

func TestReadDefaultsWeightAndSkipsComments(t *testing.T) {
	in := "# a comment\nn 3\n\n0 1\n1 2 4.5\n"
	g, err := Read(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.HasEdge(0, 1); w != 1 {
		t.Errorf("default weight = %v, want 1", w)
	}
	if w, _ := g.HasEdge(1, 2); w != 4.5 {
		t.Errorf("weight = %v, want 4.5", w)
	}
}

func TestNamedGenerators(t *testing.T) {
	names := []string{"grid", "grid3d", "path", "cycle", "tree", "gnp", "gnp-dense", "rmat", "complete", "star", "rgg"}
	for _, name := range names {
		g, err := NamedGenerator(name, 64, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if g.N() == 0 || !g.Connected() {
			t.Errorf("%s: n=%d connected=%v", name, g.N(), g.Connected())
		}
	}
	if _, err := NamedGenerator("bogus", 10, 1); err == nil {
		t.Error("expected error for unknown generator")
	}
}

// Property: Permute preserves the multiset of edge weights and all
// degrees (up to relabeling).
func TestQuickPermutePreservesStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := RandomGNP(n, 0.2, RandomWeights(rng, 1, 5), rng)
		perm := rng.Perm(n)
		h := g.Permute(perm)
		if h.M() != g.M() {
			return false
		}
		for v := 0; v < n; v++ {
			if h.Degree(perm[v]) != g.Degree(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Clone is deep — mutating the clone leaves the original alone.
func TestCloneIsDeep(t *testing.T) {
	g := Path(4, UnitWeights)
	c := g.Clone()
	c.AddEdge(0, 3, 9)
	if _, ok := g.HasEdge(0, 3); ok {
		t.Error("clone mutation leaked into original")
	}
	if c.M() != g.M()+1 {
		t.Errorf("clone M = %d, want %d", c.M(), g.M()+1)
	}
}

func BenchmarkGrid2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Grid2D(64, 64, UnitWeights)
	}
}

func BenchmarkAdjacencyMatrix(b *testing.B) {
	g := Grid2D(32, 32, UnitWeights)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AdjacencyMatrix()
	}
}

func BenchmarkPermute(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := Grid2D(32, 32, UnitWeights)
	perm := rng.Perm(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Permute(perm)
	}
}

func TestRandomGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := RandomGeometric(300, 0.12, rng)
	if g.N() != 300 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.Connected() {
		t.Error("RGG should be connected (path fallback)")
	}
	// Edge weights are Euclidean distances in the unit square.
	for _, e := range g.Edges() {
		if e.W <= 0 || e.W > 1.5 {
			t.Fatalf("edge {%d,%d} weight %v outside (0, √2]", e.U, e.V, e.W)
		}
	}
	// Average degree is bounded: geometric graphs at radius c/√n have
	// Θ(1) expected degree.
	if g.M() > 300*12 {
		t.Errorf("M = %d, unexpectedly dense", g.M())
	}
}
