package graph

import "sort"

// RCM returns the Reverse Cuthill–McKee ordering of g as an old→new
// permutation suitable for Permute: a breadth-first sweep from a
// pseudo-peripheral vertex, visiting each frontier's neighbors in
// ascending (degree, id) order, then reversed. RCM clusters each
// vertex's neighbors into a narrow index band, which tightens the
// supernodes nested dissection carves and — for the serving layer —
// makes solved distance blocks more structured before the compressed
// tier re-encodes them. The ordering is deterministic: the same graph
// always yields the same permutation.
//
// Disconnected graphs are handled per component, components taken in
// order of their smallest vertex.
func (g *Graph) RCM() []int {
	n := g.n
	order := make([]int, 0, n) // Cuthill–McKee visit order, pre-reversal
	visited := make([]bool, n)
	for _, comp := range g.Components() {
		start := g.PseudoPeripheral(comp[0])
		visited[start] = true
		queue := make([]int, 1, len(comp))
		queue[0] = start
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			order = append(order, u)
			mark := len(queue)
			for _, e := range g.adj[u] {
				if !visited[e.To] {
					visited[e.To] = true
					queue = append(queue, e.To)
				}
			}
			next := queue[mark:]
			sort.Slice(next, func(a, b int) bool {
				da, db := len(g.adj[next[a]]), len(g.adj[next[b]])
				if da != db {
					return da < db
				}
				return next[a] < next[b]
			})
		}
	}
	perm := make([]int, n)
	for i, v := range order {
		perm[v] = n - 1 - i
	}
	return perm
}
