package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the two parsers: they must never panic and, when
// they accept an input, the resulting graph must satisfy basic
// invariants and round-trip through the writer.

func FuzzRead(f *testing.F) {
	f.Add("n 3\n0 1 2.5\n1 2 1\n")
	f.Add("# comment\nn 1\n")
	f.Add("n 0\n")
	f.Add("n 5\n0 4\n")
	f.Add("n") // regression: bare header once indexed out of range
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		checkParsedGraph(t, g)
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatalf("write failed on accepted graph: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round-trip re-read failed: %v", err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round-trip changed shape: %d/%d -> %d/%d", g.N(), g.M(), back.N(), back.M())
		}
	})
}

func FuzzReadMETIS(f *testing.F) {
	f.Add("3 2\n2 3\n1\n1\n")
	f.Add("2 1 1\n2 4.5\n1 4.5\n")
	f.Add("0 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadMETIS(strings.NewReader(input))
		if err != nil {
			return
		}
		checkParsedGraph(t, g)
	})
}

// checkParsedGraph verifies adjacency symmetry and bounds.
func checkParsedGraph(t *testing.T, g *Graph) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		for _, e := range g.Adj(v) {
			if e.To < 0 || e.To >= g.N() || e.To == v {
				t.Fatalf("bad half-edge %d -> %d", v, e.To)
			}
			if w, ok := g.HasEdge(e.To, v); !ok || w != e.W {
				t.Fatalf("asymmetric edge {%d,%d}", v, e.To)
			}
		}
	}
}
