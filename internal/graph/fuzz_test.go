package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the two parsers: they must never panic and, when
// they accept an input, the resulting graph must satisfy basic
// invariants and round-trip through the writer.

func FuzzRead(f *testing.F) {
	f.Add("n 3\n0 1 2.5\n1 2 1\n")
	f.Add("# comment\nn 1\n")
	f.Add("n 0\n")
	f.Add("n 5\n0 4\n")
	f.Add("n") // regression: bare header once indexed out of range
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		checkParsedGraph(t, g)
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatalf("write failed on accepted graph: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round-trip re-read failed: %v", err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round-trip changed shape: %d/%d -> %d/%d", g.N(), g.M(), back.N(), back.M())
		}
	})
}

func FuzzReadMETIS(f *testing.F) {
	f.Add("3 2\n2 3\n1\n1\n")
	f.Add("2 1 1\n2 4.5\n1 4.5\n")
	f.Add("0 0\n")
	f.Add("1 0\n\n")               // isolated vertex = blank vertex line
	f.Add("2 1 1\n2 NaN\n1 NaN\n") // non-finite weights must be rejected
	f.Add("1 1\n1 1\n")            // self-loop must be rejected, not miscounted
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadMETIS(strings.NewReader(input))
		if err != nil {
			return
		}
		checkParsedGraph(t, g)
		// Every accepted graph must survive Write→Read unchanged: the
		// writer emits one line per vertex (blank for isolated ones) and
		// %g weights, all of which the reader must take back verbatim.
		var buf bytes.Buffer
		if err := g.WriteMETIS(&buf); err != nil {
			t.Fatalf("WriteMETIS failed on accepted graph: %v", err)
		}
		back, err := ReadMETIS(&buf)
		if err != nil {
			t.Fatalf("round-trip re-read failed: %v", err)
		}
		if !sameGraph(g, back) {
			t.Fatalf("METIS round-trip changed the graph")
		}
	})
}

// FuzzMETISRoundTrip drives the round-trip from the graph side: build
// an arbitrary valid graph from fuzzed bytes, write it, read it back,
// compare edge-exactly. This is the direction that caught the
// isolated-vertex bug (the reader used to skip the writer's blank
// vertex lines, shifting every later adjacency list by one vertex).
func FuzzMETISRoundTrip(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 3})
	f.Add(uint8(5), []byte{})           // all isolated
	f.Add(uint8(4), []byte{0, 1, 0, 1}) // duplicate edges collapse
	f.Add(uint8(7), []byte{1, 2, 200, 9, 0, 6})
	f.Fuzz(func(t *testing.T, n uint8, pairs []byte) {
		nv := int(n%32) + 1
		g := New(nv)
		for i := 0; i+1 < len(pairs); i += 2 {
			u, v := int(pairs[i])%nv, int(pairs[i+1])%nv
			if u != v {
				// Weight from the byte stream, kept finite and varied
				// (including fractional values %g must preserve).
				g.AddEdge(u, v, float64(pairs[i])/4)
			}
		}
		var buf bytes.Buffer
		if err := g.WriteMETIS(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadMETIS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written graph %q: %v", buf.String(), err)
		}
		checkParsedGraph(t, back)
		if !sameGraph(g, back) {
			t.Fatalf("round-trip changed the graph:\n%s", buf.String())
		}
	})
}

// sameGraph compares two graphs edge-exactly (same vertex count, same
// undirected edge set, identical weights).
func sameGraph(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

// checkParsedGraph verifies adjacency symmetry and bounds.
func checkParsedGraph(t *testing.T, g *Graph) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		for _, e := range g.Adj(v) {
			if e.To < 0 || e.To >= g.N() || e.To == v {
				t.Fatalf("bad half-edge %d -> %d", v, e.To)
			}
			if w, ok := g.HasEdge(e.To, v); !ok || w != e.W {
				t.Fatalf("asymmetric edge {%d,%d}", v, e.To)
			}
		}
	}
}
