package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// bandwidth returns max |perm-index distance| over edges of g after
// applying perm (identity when perm is nil).
func bandwidth(g *Graph, perm []int) int {
	id := func(v int) int {
		if perm == nil {
			return v
		}
		return perm[v]
	}
	max := 0
	for _, e := range g.Edges() {
		d := id(e.U) - id(e.V)
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// TestRCMPermutationRoundTrip is the property test: RCM must return a
// valid permutation, be deterministic, and permuting by it then by its
// inverse must reproduce the original graph exactly — edges, weights,
// adjacency order and all.
func TestRCMPermutationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := func(u, v int) float64 { return float64(rng.Intn(9) + 1) }
	disconnected := New(9)
	disconnected.AddEdge(0, 1, 2)
	disconnected.AddEdge(1, 2, 3)
	disconnected.AddEdge(4, 5, 1)
	disconnected.AddEdge(6, 7, 4)
	cases := map[string]*Graph{
		"star":         Star(40, w),
		"tree":         RandomTree(40, w, rng),
		"grid":         Grid2D(8, 8, w),
		"path":         Path(40, w),
		"gnp":          RandomGNP(40, 0.1, w, rng),
		"disconnected": disconnected,
		"empty":        New(0),
		"singleton":    New(1),
	}
	for name, g := range cases {
		perm := g.RCM()
		if len(perm) != g.N() {
			t.Fatalf("%s: perm has length %d for %d vertices", name, len(perm), g.N())
		}
		seen := make([]bool, g.N())
		for _, p := range perm {
			if p < 0 || p >= g.N() || seen[p] {
				t.Fatalf("%s: RCM is not a permutation: %v", name, perm)
			}
			seen[p] = true
		}
		if again := g.RCM(); !reflect.DeepEqual(perm, again) {
			t.Fatalf("%s: RCM is not deterministic: %v vs %v", name, perm, again)
		}
		if g.N() == 0 {
			continue
		}
		inv := make([]int, g.N())
		for v, p := range perm {
			inv[p] = v
		}
		// Compare via Edges(): Permute materializes empty adjacency
		// slices where New leaves nil, so struct equality is too strict.
		back := g.Permute(perm).Permute(inv)
		if back.N() != g.N() || back.M() != g.M() || !reflect.DeepEqual(back.Edges(), g.Edges()) {
			t.Fatalf("%s: permute(RCM) then permute(inverse) did not round-trip", name)
		}
		// Every original edge must exist under the relabeling, same weight.
		pg := g.Permute(perm)
		for _, e := range g.Edges() {
			if w2, ok := pg.HasEdge(perm[e.U], perm[e.V]); !ok || w2 != e.W {
				t.Fatalf("%s: edge {%d,%d} w=%v lost under RCM relabeling", name, e.U, e.V, e.W)
			}
		}
	}
}

// TestRCMReducesGridBandwidth pins the classic property that motivates
// the ordering: on a 2D grid labeled row-major-with-shuffle, RCM must
// bring the adjacency bandwidth well below the shuffled labeling's.
func TestRCMReducesGridBandwidth(t *testing.T) {
	g := Grid2D(12, 12, UnitWeights)
	rng := rand.New(rand.NewSource(5))
	shuffle := rng.Perm(g.N())
	shuffled := g.Permute(shuffle)
	before := bandwidth(shuffled, nil)
	after := bandwidth(shuffled, shuffled.RCM())
	if after*2 > before {
		t.Fatalf("RCM bandwidth %d is not well below shuffled bandwidth %d", after, before)
	}
}
