package graph

// BFS visits all vertices reachable from src in breadth-first order and
// returns the visit order. visit, if non-nil, is called with (vertex,
// depth) on first discovery.
func (g *Graph) BFS(src int, visit func(v, depth int)) []int {
	seen := make([]bool, g.n)
	order := make([]int, 0, g.n)
	queue := []int{src}
	depth := make([]int, g.n)
	seen[src] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		if visit != nil {
			visit(v, depth[v])
		}
		for _, e := range g.adj[v] {
			if !seen[e.To] {
				seen[e.To] = true
				depth[e.To] = depth[v] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return order
}

// Components returns the connected components as vertex lists, in order
// of their smallest vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		var comp []int
		stack := []int{v}
		seen[v] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, e := range g.adj[u] {
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// Connected reports whether the graph is connected (true for n ≤ 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	return len(g.BFS(0, nil)) == g.n
}

// PseudoPeripheral returns a vertex of approximately maximal
// eccentricity within src's component, found by repeated BFS — the
// standard starting point for graph-growing bisection.
func (g *Graph) PseudoPeripheral(src int) int {
	last := src
	lastDepth := -1
	for iter := 0; iter < 8; iter++ {
		far, farDepth := last, 0
		g.BFS(last, func(v, d int) {
			if d > farDepth {
				far, farDepth = v, d
			}
		})
		if farDepth <= lastDepth {
			return last
		}
		last, lastDepth = far, farDepth
	}
	return last
}
