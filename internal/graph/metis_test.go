package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMETISRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomGNP(40, 0.1, RandomWeights(rng, 1, 9), rng)
	var buf bytes.Buffer
	if err := g.WriteMETIS(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round-trip n=%d m=%d, want n=%d m=%d", back.N(), back.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if w, ok := back.HasEdge(e.U, e.V); !ok || w != e.W {
			t.Errorf("edge {%d,%d}: w=%v ok=%v, want %v", e.U, e.V, w, ok, e.W)
		}
	}
}

func TestMETISUnweighted(t *testing.T) {
	in := "% a comment\n4 3\n2 3\n1\n1 4\n3\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if w, ok := g.HasEdge(0, 1); !ok || w != 1 {
		t.Errorf("edge {0,1} w=%v ok=%v", w, ok)
	}
	if _, ok := g.HasEdge(2, 3); !ok {
		t.Error("missing edge {2,3}")
	}
}

func TestMETISWeighted(t *testing.T) {
	in := "3 2 1\n2 5.5\n1 5.5 3 2\n2 2\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.HasEdge(0, 1); w != 5.5 {
		t.Errorf("weight = %v, want 5.5", w)
	}
	if w, _ := g.HasEdge(1, 2); w != 2 {
		t.Errorf("weight = %v, want 2", w)
	}
}

func TestMETISRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                  // no header
		"x 3\n",             // bad n
		"3 x\n",             // bad m
		"2 1 11\n2\n1\n",    // vertex weights unsupported
		"2 1\n5\n1\n",       // neighbour out of range
		"2 1 1\n2\n1 1\n",   // odd token count for weighted
		"2 1 1\n2 w\n1 w\n", // bad weight
		"3 1\n2\n1\n",       // missing vertex line
		"2 5\n2\n1\n",       // edge count mismatch
		"2 1 1\n2 1\n1 x\n", // bad weight second line
	}
	for _, s := range bad {
		if _, err := ReadMETIS(strings.NewReader(s)); err == nil {
			t.Errorf("ReadMETIS(%q) succeeded, want error", s)
		}
	}
}

func TestMETISEmptyGraph(t *testing.T) {
	g, err := ReadMETIS(strings.NewReader("0 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 {
		t.Errorf("n = %d", g.N())
	}
}
