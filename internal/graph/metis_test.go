package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMETISRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomGNP(40, 0.1, RandomWeights(rng, 1, 9), rng)
	var buf bytes.Buffer
	if err := g.WriteMETIS(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round-trip n=%d m=%d, want n=%d m=%d", back.N(), back.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if w, ok := back.HasEdge(e.U, e.V); !ok || w != e.W {
			t.Errorf("edge {%d,%d}: w=%v ok=%v, want %v", e.U, e.V, w, ok, e.W)
		}
	}
}

func TestMETISUnweighted(t *testing.T) {
	in := "% a comment\n4 3\n2 3\n1\n1 4\n3\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if w, ok := g.HasEdge(0, 1); !ok || w != 1 {
		t.Errorf("edge {0,1} w=%v ok=%v", w, ok)
	}
	if _, ok := g.HasEdge(2, 3); !ok {
		t.Error("missing edge {2,3}")
	}
}

func TestMETISWeighted(t *testing.T) {
	in := "3 2 1\n2 5.5\n1 5.5 3 2\n2 2\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.HasEdge(0, 1); w != 5.5 {
		t.Errorf("weight = %v, want 5.5", w)
	}
	if w, _ := g.HasEdge(1, 2); w != 2 {
		t.Errorf("weight = %v, want 2", w)
	}
}

func TestMETISRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                  // no header
		"x 3\n",             // bad n
		"3 x\n",             // bad m
		"2 1 11\n2\n1\n",    // vertex weights unsupported
		"2 1\n5\n1\n",       // neighbour out of range
		"2 1 1\n2\n1 1\n",   // odd token count for weighted
		"2 1 1\n2 w\n1 w\n", // bad weight
		"3 1\n2\n1\n",       // missing vertex line
		"2 5\n2\n1\n",       // edge count mismatch
		"2 1 1\n2 1\n1 x\n", // bad weight second line
	}
	for _, s := range bad {
		if _, err := ReadMETIS(strings.NewReader(s)); err == nil {
			t.Errorf("ReadMETIS(%q) succeeded, want error", s)
		}
	}
}

func TestMETISEmptyGraph(t *testing.T) {
	g, err := ReadMETIS(strings.NewReader("0 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 {
		t.Errorf("n = %d", g.N())
	}
}

// TestMETISIsolatedVertices: WriteMETIS emits a blank line for a vertex
// with no neighbours, and ReadMETIS must consume it as that vertex's
// (empty) adjacency list — not skip it and misalign the whole section.
func TestMETISIsolatedVertices(t *testing.T) {
	g := New(5)
	g.AddEdge(1, 3, 2.5)
	g.AddEdge(3, 4, 1) // vertices 0 and 2 stay isolated
	var buf bytes.Buffer
	if err := g.WriteMETIS(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMETIS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-reading %q: %v", buf.String(), err)
	}
	if back.N() != 5 || back.M() != 2 {
		t.Fatalf("round-trip n=%d m=%d, want 5/2", back.N(), back.M())
	}
	if w, ok := back.HasEdge(1, 3); !ok || w != 2.5 {
		t.Errorf("edge {1,3} w=%v ok=%v, want 2.5 — vertex section misaligned", w, ok)
	}
	if back.Degree(0) != 0 || back.Degree(2) != 0 {
		t.Error("isolated vertices grew edges")
	}

	// Hand-written file: blank line = isolated vertex, comments still
	// skipped anywhere, blank lines before the header ignored.
	in := "\n% leading comment\n3 1 1\n\n% interleaved comment\n3 7\n2 7\n"
	h, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.Degree(0) != 0 {
		t.Error("blank vertex line not treated as isolated vertex")
	}
	if w, ok := h.HasEdge(1, 2); !ok || w != 7 {
		t.Errorf("edge {1,2} w=%v ok=%v, want 7", w, ok)
	}
}

// TestMETISRejectsSelfLoopsAndNonFiniteWeights: both used to slip
// through — self-loops were dropped silently (surfacing later as a
// baffling edge-count mismatch) and NaN/Inf weights parsed fine only to
// poison every distance they touched.
func TestMETISRejectsSelfLoopsAndNonFiniteWeights(t *testing.T) {
	bad := []string{
		"2 2\n1 2\n1\n",           // self-loop on vertex 1
		"1 1\n1\n",                // pure self-loop
		"2 1 1\n2 NaN\n1 NaN\n",   // NaN weight
		"2 1 1\n2 Inf\n1 Inf\n",   // +Inf weight
		"2 1 1\n2 -Inf\n1 -Inf\n", // -Inf weight
	}
	for _, s := range bad {
		if _, err := ReadMETIS(strings.NewReader(s)); err == nil {
			t.Errorf("ReadMETIS(%q) succeeded, want error", s)
		}
	}
	// Negative finite weights stay legal (the graph type permits them
	// as long as no negative cycle exists).
	g, err := ReadMETIS(strings.NewReader("2 1 1\n2 -3\n1 -3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.HasEdge(0, 1); w != -3 {
		t.Errorf("negative weight = %v, want -3", w)
	}
}
