package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// METIS graph-file format support, so real-world inputs prepared for
// the partitioner ecosystem the paper cites (Metis [17]) can be fed
// straight into the solvers. The format:
//
//	% comment
//	<n> <m> [fmt]      header; fmt 1 = edge weights present
//	<v> [w] <v> [w]... one line per vertex, 1-based neighbour ids
//
// Only the 0 (unweighted) and 1 (edge-weighted) fmt codes are
// supported; vertex weights (fmt 10/11) are rejected explicitly.

// WriteMETIS serializes the graph in METIS format with edge weights.
func (g *Graph) WriteMETIS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d 1\n", g.n, g.m); err != nil {
		return err
	}
	for v := 0; v < g.n; v++ {
		for i, e := range g.adj[v] {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d %g", e.To+1, e.W); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMETIS parses a METIS graph file. Asymmetric weight declarations
// are collapsed to the minimum, matching AddEdge semantics.
//
// Comment lines (leading '%') may appear anywhere. Blank lines before
// the header are skipped, but within the vertex section a blank line IS
// a vertex line — the empty adjacency list of an isolated vertex,
// exactly what WriteMETIS emits — so Write→Read round-trips graphs with
// isolated vertices. Self-loops and non-finite weights are rejected
// explicitly (the solvers define neither).
func ReadMETIS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	line := 0
	// scanLine returns the next non-comment line, blank lines included.
	scanLine := func() (string, bool) {
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if strings.HasPrefix(text, "%") {
				continue
			}
			return text, true
		}
		return "", false
	}
	header, ok := scanLine()
	for ok && header == "" {
		header, ok = scanLine()
	}
	if !ok {
		return nil, fmt.Errorf("graph: metis: missing header")
	}
	fields := strings.Fields(header)
	if len(fields) < 2 {
		return nil, fmt.Errorf("graph: metis line %d: header needs n and m", line)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("graph: metis line %d: bad vertex count %q", line, fields[0])
	}
	m, err := strconv.Atoi(fields[1])
	if err != nil || m < 0 {
		return nil, fmt.Errorf("graph: metis line %d: bad edge count %q", line, fields[1])
	}
	weighted := false
	if len(fields) >= 3 {
		switch fields[2] {
		case "0", "00", "000":
			// unweighted
		case "1", "01", "001":
			weighted = true
		default:
			return nil, fmt.Errorf("graph: metis line %d: unsupported fmt %q (vertex weights not supported)", line, fields[2])
		}
	}
	g := New(n)
	for v := 0; v < n; v++ {
		text, ok := scanLine()
		if !ok {
			return nil, fmt.Errorf("graph: metis: expected %d vertex lines, got %d", n, v)
		}
		parts := strings.Fields(text) // empty for an isolated vertex
		step := 1
		if weighted {
			step = 2
		}
		if len(parts)%step != 0 {
			return nil, fmt.Errorf("graph: metis line %d: odd token count for weighted vertex", line)
		}
		for i := 0; i < len(parts); i += step {
			u, err := strconv.Atoi(parts[i])
			if err != nil || u < 1 || u > n {
				return nil, fmt.Errorf("graph: metis line %d: bad neighbour %q", line, parts[i])
			}
			if u-1 == v {
				// AddEdge would drop it silently and the edge-count
				// check below would then fail with a misleading message.
				return nil, fmt.Errorf("graph: metis line %d: self-loop on vertex %d not supported", line, u)
			}
			w := 1.0
			if weighted {
				w, err = strconv.ParseFloat(parts[i+1], 64)
				if err != nil || math.IsNaN(w) || math.IsInf(w, 0) {
					return nil, fmt.Errorf("graph: metis line %d: bad weight %q (must be finite)", line, parts[i+1])
				}
			}
			g.AddEdge(v, u-1, w)
		}
	}
	if g.m != m {
		return nil, fmt.Errorf("graph: metis: header declares %d edges, file has %d", m, g.m)
	}
	return g, sc.Err()
}
