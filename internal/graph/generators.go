package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Generators for the workload families used by the experiments. Grid
// graphs are the canonical "small separator" family (|S| = Θ(√n) for a
// 2D grid), random G(n,p) graphs have large separators, and the
// remaining families exercise edge cases of the ordering and the eTree
// machinery.

// WeightFn produces the weight of edge {u, v}.
type WeightFn func(u, v int) float64

// UnitWeights gives every edge weight 1.
func UnitWeights(u, v int) float64 { return 1 }

// RandomWeights returns a WeightFn drawing uniform weights in [lo, hi).
func RandomWeights(rng *rand.Rand, lo, hi float64) WeightFn {
	return func(u, v int) float64 { return lo + rng.Float64()*(hi-lo) }
}

// Grid2D returns the rows×cols 4-neighbour mesh. Its minimal balanced
// vertex separator is one grid line, |S| = Θ(√n), the paper's sweet
// spot for the sparse algorithm.
func Grid2D(rows, cols int, w WeightFn) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1), w(id(r, c), id(r, c+1)))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c), w(id(r, c), id(r+1, c)))
			}
		}
	}
	return g
}

// Grid3D returns the x×y×z 6-neighbour mesh (|S| = Θ(n^{2/3})).
func Grid3D(x, y, z int, w WeightFn) *Graph {
	g := New(x * y * z)
	id := func(i, j, k int) int { return (i*y+j)*z + k }
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				if i+1 < x {
					g.AddEdge(id(i, j, k), id(i+1, j, k), w(id(i, j, k), id(i+1, j, k)))
				}
				if j+1 < y {
					g.AddEdge(id(i, j, k), id(i, j+1, k), w(id(i, j, k), id(i, j+1, k)))
				}
				if k+1 < z {
					g.AddEdge(id(i, j, k), id(i, j, k+1), w(id(i, j, k), id(i, j, k+1)))
				}
			}
		}
	}
	return g
}

// Path returns the n-vertex path graph.
func Path(n int, w WeightFn) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1, w(v, v+1))
	}
	return g
}

// Cycle returns the n-vertex cycle.
func Cycle(n int, w WeightFn) *Graph {
	g := Path(n, w)
	if n > 2 {
		g.AddEdge(n-1, 0, w(n-1, 0))
	}
	return g
}

// Complete returns K_n, the worst case for the sparse algorithm
// (|S| = Θ(n)).
func Complete(n int, w WeightFn) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v, w(u, v))
		}
	}
	return g
}

// RandomGNP returns an Erdős–Rényi G(n, prob) graph, made connected by
// threading a random spanning path through all vertices first.
func RandomGNP(n int, prob float64, w WeightFn, rng *rand.Rand) *Graph {
	g := New(n)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(perm[i], perm[i+1], w(perm[i], perm[i+1]))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < prob {
				g.AddEdge(u, v, w(u, v))
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labelled tree (random attachment).
func RandomTree(n int, w WeightFn, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		g.AddEdge(u, v, w(u, v))
	}
	return g
}

// RMAT returns an R-MAT power-law graph with 2^scale vertices and
// roughly edgeFactor·2^scale edges, connected via a spanning path. The
// standard (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) parameters are used.
func RMAT(scale, edgeFactor int, w WeightFn, rng *rand.Rand) *Graph {
	n := 1 << scale
	g := New(n)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(perm[i], perm[i+1], w(perm[i], perm[i+1]))
	}
	const a, b, c = 0.57, 0.19, 0.19
	for e := 0; e < edgeFactor*n; e++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// stay in top-left quadrant
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			g.AddEdge(u, v, w(u, v))
		}
	}
	return g
}

// Star returns the n-vertex star with center 0 (separator of size 1).
func Star(n int, w WeightFn) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v, w(0, v))
	}
	return g
}

// Caterpillar returns a path of spine vertices, each with legs pendant
// vertices attached — a tree stressing unbalanced degree distributions.
func Caterpillar(spine, legs int, w WeightFn) *Graph {
	g := New(spine * (1 + legs))
	for s := 0; s+1 < spine; s++ {
		g.AddEdge(s, s+1, w(s, s+1))
	}
	next := spine
	for s := 0; s < spine; s++ {
		for l := 0; l < legs; l++ {
			g.AddEdge(s, next, w(s, next))
			next++
		}
	}
	return g
}

// Figure1Graph returns the 7-vertex example of Figure 1a in the paper:
// after nested dissection it splits into V1, V2 of size 3 and a
// singleton separator. Vertices are labelled as in the figure's
// *reordered* form (1..7 → 0..6 here): {0,1,2} = V1, {3,4,5} = V2,
// {6} = S, with V1 and V2 internally connected and both attached to S,
// but no V1–V2 edge.
func Figure1Graph() *Graph {
	g := New(7)
	// V1 internal edges
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	// V2 internal edges
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(3, 5, 1)
	// separator attachments
	g.AddEdge(2, 6, 1)
	g.AddEdge(5, 6, 1)
	return g
}

// NamedGenerator builds one of the standard experiment workloads by
// name; the harness and cmd/apspbench use it so workloads are
// selectable from the command line.
func NamedGenerator(name string, n int, seed int64) (*Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	w := RandomWeights(rng, 1, 10)
	switch name {
	case "grid":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return Grid2D(side, side, w), nil
	case "grid3d":
		side := 1
		for (side+1)*(side+1)*(side+1) <= n {
			side++
		}
		return Grid3D(side, side, side, w), nil
	case "path":
		return Path(n, w), nil
	case "cycle":
		return Cycle(n, w), nil
	case "tree":
		return RandomTree(n, w, rng), nil
	case "gnp":
		return RandomGNP(n, 4.0/float64(n), w, rng), nil
	case "gnp-dense":
		return RandomGNP(n, 0.3, w, rng), nil
	case "rmat":
		scale := 0
		for 1<<(scale+1) <= n {
			scale++
		}
		return RMAT(scale, 8, w, rng), nil
	case "complete":
		return Complete(n, w), nil
	case "star":
		return Star(n, w), nil
	case "rgg":
		return RandomGeometric(n, 1.8/math.Sqrt(float64(n)), rng), nil
	default:
		return nil, fmt.Errorf("graph: unknown generator %q", name)
	}
}

// RandomGeometric returns a unit-square random geometric graph: n
// points placed uniformly, edges between pairs within distance radius,
// weights equal to the Euclidean distance. Connectivity is ensured by
// threading a path through the points sorted by x-coordinate. RGGs are
// the standard road-network proxy with |S| = Θ(√n) separators.
func RandomGeometric(n int, radius float64, rng *rand.Rand) *Graph {
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{x: rng.Float64(), y: rng.Float64()}
	}
	g := New(n)
	// Grid bucketing keeps edge generation near O(n) for small radii.
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	bucket := make(map[[2]int][]int)
	cellOf := func(p pt) [2]int {
		cx, cy := int(p.x*float64(cells)), int(p.y*float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for i, p := range pts {
		bucket[cellOf(p)] = append(bucket[cellOf(p)], i)
	}
	dist := func(a, b pt) float64 {
		dx, dy := a.x-b.x, a.y-b.y
		return math.Sqrt(dx*dx + dy*dy)
	}
	for i, p := range pts {
		c := cellOf(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range bucket[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= i {
						continue
					}
					if d := dist(p, pts[j]); d <= radius {
						g.AddEdge(i, j, d)
					}
				}
			}
		}
	}
	// Connect stragglers along the x-sorted order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pts[order[a]].x < pts[order[b]].x })
	for i := 0; i+1 < n; i++ {
		a, b := order[i], order[i+1]
		if _, ok := g.HasEdge(a, b); !ok {
			g.AddEdge(a, b, dist(pts[a], pts[b]))
		}
	}
	return g
}
