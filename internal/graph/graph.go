// Package graph provides the weighted undirected graphs the APSP
// algorithms operate on (Section 3.2 of the paper): n vertices, edge
// weights that may be negative as long as no negative cycle exists, and
// absent edges treated as +∞.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Inf is the weight of an absent edge.
var Inf = math.Inf(1)

// Edge is a half-edge: the endpoint and the weight.
type Edge struct {
	To int
	W  float64
}

// Graph is a weighted undirected graph in adjacency-list form. Vertices
// are 0-based. Parallel edges are collapsed to the minimum weight when
// built through AddEdge.
type Graph struct {
	n   int
	m   int // number of undirected edges
	adj [][]Edge
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Adj returns the adjacency list of vertex v. The slice is owned by the
// graph; callers must not modify it.
func (g *Graph) Adj(v int) []Edge { return g.adj[v] }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// HasEdge reports whether the undirected edge {u, v} exists and returns
// its weight (Inf when absent).
func (g *Graph) HasEdge(u, v int) (float64, bool) {
	for _, e := range g.adj[u] {
		if e.To == v {
			return e.W, true
		}
	}
	return Inf, false
}

// AddEdge inserts the undirected edge {u, v} with weight w. Self-loops
// are ignored (the distance matrix diagonal is always 0). If the edge
// already exists, the smaller weight wins.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} outside [0,%d)", u, v, g.n))
	}
	if u == v {
		return
	}
	if g.relaxHalf(u, v, w) {
		g.relaxHalf(v, u, w)
		return
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, W: w})
	g.adj[v] = append(g.adj[v], Edge{To: u, W: w})
	g.m++
}

// SetEdge overwrites the weight of the existing undirected edge {u, v}
// (both half-edges), reporting whether the edge was found. Unlike
// AddEdge it can raise a weight, but it never changes the edge
// structure — the contract the incremental reweighting path relies on.
func (g *Graph) SetEdge(u, v int, w float64) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	if !g.setHalf(u, v, w) {
		return false
	}
	g.setHalf(v, u, w)
	return true
}

func (g *Graph) setHalf(u, v int, w float64) bool {
	for i := range g.adj[u] {
		if g.adj[u][i].To == v {
			g.adj[u][i].W = w
			return true
		}
	}
	return false
}

// relaxHalf lowers the weight of the existing half-edge u→v to w if it
// exists, reporting whether it was found.
func (g *Graph) relaxHalf(u, v int, w float64) bool {
	for i := range g.adj[u] {
		if g.adj[u][i].To == v {
			if w < g.adj[u][i].W {
				g.adj[u][i].W = w
			}
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for v := range g.adj {
		c.adj[v] = append([]Edge(nil), g.adj[v]...)
	}
	return c
}

// Permute returns the graph with vertices renumbered so that old vertex
// v becomes perm[v]. perm must be a permutation of [0, n).
func (g *Graph) Permute(perm []int) *Graph {
	if len(perm) != g.n {
		panic(fmt.Sprintf("graph: permutation length %d for %d vertices", len(perm), g.n))
	}
	seen := make([]bool, g.n)
	for _, p := range perm {
		if p < 0 || p >= g.n || seen[p] {
			panic("graph: perm is not a permutation")
		}
		seen[p] = true
	}
	out := New(g.n)
	out.m = g.m
	for v := range g.adj {
		nv := perm[v]
		out.adj[nv] = make([]Edge, len(g.adj[v]))
		for i, e := range g.adj[v] {
			out.adj[nv][i] = Edge{To: perm[e.To], W: e.W}
		}
	}
	return out
}

// Subgraph returns the induced subgraph on vertices, along with the
// original index of each new vertex (new index i corresponds to
// vertices[i]).
func (g *Graph) Subgraph(vertices []int) *Graph {
	idx := make(map[int]int, len(vertices))
	for i, v := range vertices {
		idx[v] = i
	}
	out := New(len(vertices))
	for i, v := range vertices {
		for _, e := range g.adj[v] {
			if j, ok := idx[e.To]; ok && j > i {
				out.AddEdge(i, j, e.W)
			}
		}
	}
	return out
}

// Edges returns all undirected edges as (u, v, w) with u < v, sorted.
type EdgeTriple struct {
	U, V int
	W    float64
}

// Edges lists the undirected edges with U < V, sorted lexicographically.
func (g *Graph) Edges() []EdgeTriple {
	out := make([]EdgeTriple, 0, g.m)
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if u < e.To {
				out = append(out, EdgeTriple{U: u, V: e.To, W: e.W})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// AdjacencyMatrix returns the dense n×n adjacency matrix in row-major
// order: 0 on the diagonal, edge weights where edges exist, Inf
// elsewhere — the distance-matrix initial state of Section 3.2.
func (g *Graph) AdjacencyMatrix() []float64 {
	a := make([]float64, g.n*g.n)
	for i := range a {
		a[i] = Inf
	}
	for v := 0; v < g.n; v++ {
		a[v*g.n+v] = 0
		for _, e := range g.adj[v] {
			if e.W < a[v*g.n+e.To] {
				a[v*g.n+e.To] = e.W
			}
		}
	}
	return a
}
