// Package sparseapsp is a reproduction of "Communication Avoiding
// All-Pairs Shortest Paths Algorithm for Sparse Graphs" (Zhu, Hua, Jin;
// ICPP 2021). It provides:
//
//   - weighted undirected graphs and generators (grids, random graphs,
//     R-MAT, trees, ...);
//   - sequential APSP solvers: classical and blocked Floyd–Warshall,
//     Johnson's algorithm, and the supernodal SuperFW;
//   - distributed APSP solvers executing on a simulated
//     distributed-memory machine with critical-path cost accounting:
//     the paper's 2D-SPARSE-APSP, the dense 2D-DC-APSP comparator, and
//     a blocked 2D Floyd–Warshall;
//   - the nested-dissection / elimination-tree preprocessing pipeline
//     the paper builds on, implemented from scratch;
//   - the asymptotic cost formulas of Table 2 for comparing measured
//     communication against the paper's bounds.
//
// Quick start:
//
//	g := sparseapsp.Grid2D(32, 32, sparseapsp.UnitWeights)
//	res, err := sparseapsp.Solve(g, sparseapsp.Options{P: 49})
//	if err != nil { ... }
//	fmt.Println(res.Dist.At(0, g.N()-1), res.Report.Critical)
package sparseapsp

import (
	"fmt"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/comm"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/oracle"
	"sparseapsp/internal/partition"
	"sparseapsp/internal/semiring"
)

// Re-exported core types. They are aliases, so values flow freely
// between the public API and the internal packages.
type (
	// Graph is a weighted undirected graph (Section 3.2 of the paper).
	Graph = graph.Graph
	// Matrix is a dense min-plus matrix; distances use +Inf for
	// "unreachable".
	Matrix = semiring.Matrix
	// Cost is a critical-path cost vector (latency = messages,
	// bandwidth = words, flops = semiring operations).
	Cost = comm.Cost
	// Report is a full cost report of a simulated run.
	Report = comm.Report
	// WeightFn produces edge weights for the generators.
	WeightFn = graph.WeightFn
)

// Inf is the distance of unreachable pairs.
var Inf = semiring.Inf

// Kernel selects the min-plus compute kernel the solvers use for their
// local block arithmetic. Every kernel produces bit-identical distances
// and identical operation counts — the choice affects wall-clock only,
// never the simulated communication costs.
type Kernel = semiring.Kernel

const (
	// KernelSerial is the reference i-k-j loop (the default).
	KernelSerial = semiring.KernelSerial
	// KernelTiled is the cache-blocked kernel with autotuned tile sizes.
	KernelTiled = semiring.KernelTiled
	// KernelPooled is the tiled kernel fanned out over a persistent
	// worker pool.
	KernelPooled = semiring.KernelPooled
	// KernelSparse indexes the finite entries of the left operand
	// CSR-style, falling back to the tiled kernel on dense panels.
	KernelSparse = semiring.KernelSparse
)

// ParseKernel maps a kernel name ("serial", "tiled", "pooled",
// "sparse"; "" means serial) to its Kernel value.
var ParseKernel = semiring.ParseKernel

// NewGraph returns an empty graph with n vertices; add edges with
// AddEdge.
func NewGraph(n int) *Graph { return graph.New(n) }

// ReadGraph parses the text edge-list format (see internal/graph).
var ReadGraph = graph.Read

// Generators for the standard workload families.
var (
	UnitWeights   = graph.UnitWeights
	RandomWeights = graph.RandomWeights
	Grid2D        = graph.Grid2D
	Grid3D        = graph.Grid3D
	Path          = graph.Path
	Cycle         = graph.Cycle
	Complete      = graph.Complete
	RandomGNP     = graph.RandomGNP
	RandomTree    = graph.RandomTree
	RMAT          = graph.RMAT
	Star          = graph.Star
)

// Algorithm selects an APSP solver.
type Algorithm string

const (
	// Auto picks SparseAPSP when P is a valid sparse machine size
	// ((2^h−1)²), DCAPSP for other P > 1, and SuperFW for P ≤ 1.
	Auto Algorithm = "auto"
	// Sparse2D is the paper's distributed 2D-SPARSE-APSP.
	Sparse2D Algorithm = "sparse2d"
	// DenseDC is the distributed 2D-DC-APSP of Solomonik et al.
	DenseDC Algorithm = "dc"
	// Dense2DFW is the distributed blocked 2D Floyd–Warshall.
	Dense2DFW Algorithm = "2dfw"
	// Dense1DFW is the unblocked row-striped Floyd–Warshall
	// (Jenq–Sahni lineage) with Θ(n·log p) latency — the related-work
	// baseline showing why blocked layouts matter.
	Dense1DFW Algorithm = "1dfw"
	// SeqFW is the sequential classical Floyd–Warshall.
	SeqFW Algorithm = "fw"
	// SeqBlockedFW is the sequential blocked Floyd–Warshall.
	SeqBlockedFW Algorithm = "blockedfw"
	// SeqSuperFW is the sequential supernodal solver of Sao et al.
	SeqSuperFW Algorithm = "superfw"
	// SeqSuperFWParallel is SuperFW with eTree-level shared-memory
	// parallelism (goroutine pool over independent blocks).
	SeqSuperFWParallel Algorithm = "superfw-par"
	// SeqJohnson is Dijkstra from every source.
	SeqJohnson Algorithm = "johnson"
)

// Options configures Solve.
type Options struct {
	// P is the simulated machine size for the distributed algorithms
	// (ignored by the sequential ones). The sparse algorithm requires
	// P ∈ {1, 9, 49, 225, 961, ...} = (2^h−1)²; see ValidProcessorCounts.
	P int
	// Algorithm picks the solver; default Auto.
	Algorithm Algorithm
	// Seed makes the randomized nested-dissection deterministic.
	Seed int64
	// TreeHeight is the eTree height for SeqSuperFW (default 3). The
	// distributed sparse algorithm derives it from P instead.
	TreeHeight int
	// CyclicFactor is the block-cyclic factor of DenseDC (default 4).
	CyclicFactor int
	// BlockSize is the block size for SeqBlockedFW (default 64).
	BlockSize int
	// Kernel selects the min-plus compute kernel (KernelSerial,
	// KernelTiled, KernelPooled or KernelSparse). All kernels give bit-identical
	// results and operation counts; the default serial kernel is usually
	// right for the distributed solvers, whose ranks already run
	// concurrently.
	Kernel Kernel
	// Wire selects the sparse solver's payload encoding: WirePacked
	// (default — packed payloads plus symbolic-fill skipping of
	// provably empty broadcasts), WireDense (raw dense payloads,
	// nothing skipped; the ablation baseline), or WirePruned (packed
	// plus the symbolic demand sweep: each broadcast ships only the
	// payload rows/columns some receiver can fold into a finite
	// output). Distances are bit-identical in all three; only measured
	// costs differ.
	Wire WireFormat
	// Executor selects the sparse solver's plan execution engine:
	// ExecDataflow (default — the lowered dependency graph on a
	// bounded worker pool) or ExecMachine (the simulated machine, one
	// goroutine per rank). Distances and cost reports are
	// bit-identical either way; only host wall-clock differs.
	Executor Executor
	// Schedule selects the dataflow executor's scheduling policy:
	// ScheduleCritical (default — critical-path priorities on per-worker
	// heaps with work stealing) or ScheduleFIFO (the unordered ready
	// queue; the ablation baseline). Distances and cost reports are
	// bit-identical either way; only host wall-clock differs. Ignored by
	// ExecMachine.
	Schedule Schedule
	// Fuse toggles the dataflow executor's node fusion: FuseOn (default
	// — consecutive panel-update steps run as one fused kernel call and
	// rank-local relay chains coalesce into single scheduler nodes) or
	// FuseOff (one scheduler node per plan op; the ablation baseline).
	// Bit-identical results either way. Ignored by ExecMachine.
	Fuse Fuse
	// ExecWorkers fixes the dataflow executor's worker count; 0 (the
	// default) sizes it automatically from the host. Ignored by
	// ExecMachine.
	ExecWorkers int
	// Order selects the vertex ordering applied before the sparse
	// solve: OrderNatural (default — solve in input order) or OrderRCM
	// (relabel by reverse Cuthill–McKee first, solve the permuted graph,
	// and report distances back in the input order). RCM narrows the
	// bandwidth the nested dissection sees, which can shrink separators
	// and therefore kernel time and traffic on mesh-like graphs.
	Order Order
	// Plans, when non-nil, caches the sparse solver's symbolic plans
	// (ordering + eTree + fill mask + full op schedule) under a
	// weights-independent StructureFingerprint: repeated solves on one
	// graph structure — the serving and weight-update workloads — pay
	// the symbolic cost once. Ignored by the non-sparse algorithms.
	Plans *PlanCache
}

// PlanCache caches the sparse solver's symbolic plans across solves;
// see Options.Plans and internal/apsp.PlanCache.
type PlanCache = apsp.PlanCache

// NewPlanCache returns an empty plan cache to share across solves.
func NewPlanCache() *PlanCache { return apsp.NewPlanCache() }

// NewPlanCacheAt returns a plan cache backed by a persistent on-disk
// store in dir (created if missing): every newly built plan is written
// as a hash-verified binary file keyed by structure fingerprint, and a
// cache miss falls through to disk before rebuilding — so a process
// restarted over the same directory serves warm solves with zero
// symbolic work (Stats().DiskHits counts them; Builds stays 0).
// Corrupted or truncated files degrade to a rebuild, never an error.
func NewPlanCacheAt(dir string) (*PlanCache, error) { return apsp.NewPlanCacheAt(dir) }

// PlanCacheStats is a snapshot of a plan cache's counters.
type PlanCacheStats = apsp.PlanCacheStats

// StructureFingerprint identifies the weights-independent structure of
// a sparse solve — the plan cache key; see Options.Plans.
type StructureFingerprint = apsp.StructureFingerprint

// WireFormat selects the sparse solver's payload encoding; see
// Options.Wire.
type WireFormat = apsp.WireFormat

const (
	// WirePacked ships each block in the smallest of the empty /
	// sparse-pairs / dense encodings and skips provably empty
	// broadcasts (the default).
	WirePacked = apsp.WirePacked
	// WireDense ships raw dense payloads and skips nothing.
	WireDense = apsp.WireDense
	// WirePruned adds the symbolic demand sweep on top of WirePacked:
	// plans carry per-op prune descriptors and broadcasts ship only
	// the demanded rows/columns, never more words than WirePacked.
	WirePruned = apsp.WirePruned
)

// Executor selects the sparse solver's plan execution engine; see
// Options.Executor.
type Executor = apsp.Executor

const (
	// ExecDataflow runs frozen plans as a static dependency graph on a
	// bounded worker pool (the default).
	ExecDataflow = apsp.ExecDataflow
	// ExecMachine runs plans on the simulated machine, one goroutine
	// per rank — the reference executor.
	ExecMachine = apsp.ExecMachine
)

// ParseExecutor maps an executor name ("dataflow", "machine"; "" means
// dataflow) to its Executor value.
var ParseExecutor = apsp.ParseExecutor

// Schedule selects the dataflow executor's scheduling policy; see
// Options.Schedule.
type Schedule = apsp.Schedule

const (
	// ScheduleCritical orders ready nodes by critical-path priority on
	// per-worker heaps with work stealing (the default).
	ScheduleCritical = apsp.ScheduleCritical
	// ScheduleFIFO uses the unordered ready queue — the ablation
	// baseline.
	ScheduleFIFO = apsp.ScheduleFIFO
)

// ParseSchedule maps a schedule name ("critical", "fifo"; "" means
// critical) to its Schedule value.
var ParseSchedule = apsp.ParseSchedule

// Fuse toggles the dataflow executor's node fusion; see Options.Fuse.
type Fuse = apsp.Fuse

const (
	// FuseOn fuses panel chains and coalesces rank-local relay runs
	// (the default).
	FuseOn = apsp.FuseOn
	// FuseOff schedules one node per plan op — the ablation baseline.
	FuseOff = apsp.FuseOff
)

// ParseFuse maps a fusion setting ("on", "off", "true", "false"; ""
// means on) to its Fuse value.
var ParseFuse = apsp.ParseFuse

// Order selects the vertex ordering applied before the sparse solve;
// see Options.Order.
type Order = apsp.Order

const (
	// OrderNatural solves in the input vertex order (the default).
	OrderNatural = apsp.OrderNatural
	// OrderRCM relabels by reverse Cuthill–McKee before solving and
	// maps distances back to the input order.
	OrderRCM = apsp.OrderRCM
)

// ParseOrder maps an ordering name ("natural", "rcm"; "" means
// natural) to its Order value.
var ParseOrder = apsp.ParseOrder

// EnableProfileLabels toggles runtime/pprof labels (op_kind, phase,
// level) around the dataflow executor's node execution, so a CPU
// profile attributes time per op class. Off by default: the labels
// cost a few percent of wall-clock, so enable them only while
// profiling.
var EnableProfileLabels = apsp.EnableProfileLabels

// Result is a Solve outcome.
type Result struct {
	// Dist is the distance matrix in the input vertex order:
	// Dist.At(u, v) is the shortest-path weight, Inf if unreachable.
	Dist *Matrix
	// Algorithm is the solver that actually ran.
	Algorithm Algorithm
	// Report carries the simulated communication costs (distributed
	// solvers only; zero-valued otherwise).
	Report Report
	// Ops is the semiring operation count (sequential solvers only).
	Ops int64
	// SeparatorSize is |S|, the top-level separator (solvers that
	// compute a nested dissection only).
	SeparatorSize int
}

// ValidProcessorCounts lists the machine sizes usable by the sparse
// algorithm up to max: p = (2^h − 1)².
var ValidProcessorCounts = apsp.ValidSparseP

// Solve computes all-pairs shortest paths for g.
func Solve(g *Graph, opts Options) (*Result, error) {
	if opts.Algorithm == "" {
		opts.Algorithm = Auto
	}
	if opts.TreeHeight == 0 {
		opts.TreeHeight = 3
	}
	if opts.CyclicFactor == 0 {
		opts.CyclicFactor = 4
	}
	if opts.BlockSize == 0 {
		opts.BlockSize = 64
	}
	alg := opts.Algorithm
	if alg == Auto {
		switch {
		case opts.P <= 1:
			alg = SeqSuperFW
		default:
			if _, err := apsp.HeightForP(opts.P); err == nil {
				alg = Sparse2D
			} else {
				alg = DenseDC
			}
		}
	}
	switch alg {
	case Sparse2D:
		if _, err := apsp.HeightForP(opts.P); err != nil {
			return nil, invalidSparsePError(opts.P)
		}
		r, err := apsp.SparseAPSPWith(g, opts.P, apsp.SparseOptions{Seed: opts.Seed, Kernel: opts.Kernel, Wire: opts.Wire, Executor: opts.Executor, Schedule: opts.Schedule, Fuse: opts.Fuse, ExecWorkers: opts.ExecWorkers, Order: opts.Order, Plans: opts.Plans})
		if err != nil {
			return nil, err
		}
		return &Result{Dist: r.Dist, Algorithm: alg, Report: r.Report,
			SeparatorSize: r.Layout.ND.SeparatorSize()}, nil
	case DenseDC:
		r, err := apsp.DCAPSPKernel(g, opts.P, opts.CyclicFactor, opts.Kernel)
		if err != nil {
			return nil, err
		}
		return &Result{Dist: r.Dist, Algorithm: alg, Report: r.Report}, nil
	case Dense2DFW:
		r, err := apsp.Dist2DFWKernel(g, opts.P, opts.Kernel)
		if err != nil {
			return nil, err
		}
		return &Result{Dist: r.Dist, Algorithm: alg, Report: r.Report}, nil
	case Dense1DFW:
		r, err := apsp.Dist1DFW(g, opts.P)
		if err != nil {
			return nil, err
		}
		return &Result{Dist: r.Dist, Algorithm: alg, Report: r.Report}, nil
	case SeqFW:
		d, ops := apsp.FloydWarshallKernel(g, opts.Kernel)
		return &Result{Dist: d, Algorithm: alg, Ops: ops}, nil
	case SeqBlockedFW:
		d, ops := apsp.BlockedFloydWarshallKernel(g, opts.BlockSize, opts.Kernel)
		return &Result{Dist: d, Algorithm: alg, Ops: ops}, nil
	case SeqSuperFW:
		r, err := apsp.SuperFWKernel(g, opts.TreeHeight, opts.Seed, opts.Kernel)
		if err != nil {
			return nil, err
		}
		return &Result{Dist: r.Dist, Algorithm: alg, Ops: r.Ops,
			SeparatorSize: r.Layout.ND.SeparatorSize()}, nil
	case SeqSuperFWParallel:
		ly, err := apsp.NewLayout(g, opts.TreeHeight, opts.Seed)
		if err != nil {
			return nil, err
		}
		d, ops := apsp.SuperFWParallel(ly)
		return &Result{Dist: d, Algorithm: alg, Ops: ops,
			SeparatorSize: ly.ND.SeparatorSize()}, nil
	case SeqJohnson:
		d, err := apsp.Johnson(g)
		if err != nil {
			return nil, err
		}
		return &Result{Dist: d, Algorithm: alg}, nil
	default:
		return nil, fmt.Errorf("sparseapsp: unknown algorithm %q", alg)
	}
}

// invalidSparsePError explains which machine sizes the sparse
// algorithm accepts and points at the valid sizes nearest to p.
func invalidSparsePError(p int) error {
	limit := 4 * p
	if limit < 961 {
		limit = 961
	}
	valid := apsp.ValidSparseP(limit)
	below, above := valid[0], valid[len(valid)-1]
	for _, v := range valid {
		if v < p {
			below = v
		} else {
			above = v
			break
		}
	}
	if below == above {
		return fmt.Errorf("sparseapsp: P=%d is not a valid sparse machine size: 2D-SPARSE-APSP needs p = (2^h-1)^2, i.e. one of 1, 9, 49, 225, 961, ...; nearest valid size is %d", p, above)
	}
	return fmt.Errorf("sparseapsp: P=%d is not a valid sparse machine size: 2D-SPARSE-APSP needs p = (2^h-1)^2, i.e. one of 1, 9, 49, 225, 961, ...; nearest valid sizes are %d and %d", p, below, above)
}

// SeparatorSize computes |S| for g: the size of the top-level vertex
// separator found by one bisection round — the parameter the paper's
// bounds are stated in.
func SeparatorSize(g *Graph, seed int64) (int, error) {
	nd, err := partition.NestedDissection(g, 2, seed)
	if err != nil {
		return 0, err
	}
	return nd.SeparatorSize(), nil
}

// PathResult carries distances plus successor structure for extracting
// actual shortest paths (see SolveWithPaths).
type PathResult = apsp.PathResult

// SolveWithPathsOptions computes APSP with path reconstruction using
// the solver, machine size and kernel selected by opts — any Solve
// configuration works, including the distributed SparseAPSP. The
// successor structure is extracted from the finished distance matrix
// (see internal/apsp.SuccessorsFromDist), so Path(u, v) queries run in
// time proportional to the path length regardless of the solver.
//
// Unlike the legacy SolveWithPaths it validates its input: a nil graph
// or a negative edge weight (a negative cycle in an undirected graph,
// the same policy Solve applies through Johnson) returns an error
// instead of panicking.
func SolveWithPathsOptions(g *Graph, opts Options) (*PathResult, error) {
	if g == nil {
		return nil, fmt.Errorf("sparseapsp: SolveWithPaths: nil graph")
	}
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Adj(u) {
			if e.W < 0 {
				return nil, fmt.Errorf("sparseapsp: SolveWithPaths: negative edge {%d,%d} weight %g is a negative cycle in an undirected graph", u, e.To, e.W)
			}
		}
	}
	res, err := Solve(g, opts)
	if err != nil {
		return nil, err
	}
	pr, err := apsp.SuccessorsFromDist(g, res.Dist)
	if err != nil {
		return nil, err
	}
	pr.Report = res.Report
	return pr, nil
}

// SolveWithPaths computes APSP with path reconstruction: the returned
// result answers Path(u, v) queries in time proportional to the path
// length. Sequential (classical Floyd–Warshall with successors). It is
// a thin wrapper around SolveWithPathsOptions; use that variant to
// pick a solver/kernel and to get errors instead of panics.
func SolveWithPaths(g *Graph) *PathResult {
	return apsp.FloydWarshallPaths(g)
}

// PathWeight sums the edge weights of path in g, returning Inf for an
// empty or invalid (edge-missing) path — useful for verifying returned
// paths against the distance matrix.
var PathWeight = apsp.PathWeight

// Oracle is a solved graph serving concurrent Dist / Path / BatchDist /
// BatchPath queries from the retained distance matrix and successor
// structure (see internal/oracle).
type Oracle = oracle.Oracle

// OracleRegistry caches oracles by graph fingerprint with singleflight
// solve coalescing and LRU eviction under a memory budget.
type OracleRegistry = oracle.Registry

// OracleStats is a snapshot of a registry's counters.
type OracleStats = oracle.Stats

// GraphFingerprint computes the content fingerprint used as the oracle
// cache key (and as the graph id of cmd/apspd).
func GraphFingerprint(g *Graph) oracle.Fingerprint { return oracle.FingerprintOf(g) }

// EdgeEdit names one existing edge and its new weight, for the
// incremental reweighting path (OracleRegistry.Reweight and
// apsp.Repair). Edits may only change weights, never the structure.
type EdgeEdit = apsp.EdgeEdit

// RepairStats describes what one incremental repair did: edit mix,
// dirtied block counts, damage fraction, and whether the repair fell
// back to a warm re-solve.
type RepairStats = apsp.RepairStats

// oracleSolver adapts Solve + successor extraction to the oracle
// package's solver interface.
func oracleSolver(opts Options) oracle.SolveFunc {
	return func(g *Graph) (*PathResult, error) {
		return SolveWithPathsOptions(g, opts)
	}
}

// repairP picks the sparse machine size the repair engine stages its
// block matrix on: the configured P when it is a valid sparse size (so
// repairs share the plan cache with the solves), else the 49-rank
// default layout.
func repairP(opts Options) int {
	if _, err := apsp.HeightForP(opts.P); err == nil && opts.P > 1 {
		return opts.P
	}
	return 49
}

// oracleRepairer adapts apsp.RepairWithOptions to the oracle package's
// repair interface, sharing opts.Plans so a reweight of a structure the
// registry has already solved performs no symbolic work.
func oracleRepairer(opts Options) oracle.RepairFunc {
	p := repairP(opts)
	sopts := apsp.SparseOptions{Seed: opts.Seed, Kernel: opts.Kernel, Wire: opts.Wire, Executor: opts.Executor, Schedule: opts.Schedule, Fuse: opts.Fuse, ExecWorkers: opts.ExecWorkers, Order: opts.Order, Plans: opts.Plans}
	return func(g *Graph, prev *PathResult, edits []EdgeEdit) (*PathResult, *Graph, RepairStats, error) {
		return apsp.RepairWithOptions(g, prev, edits, p, sopts, 0)
	}
}

// NewOracle solves g once with the configuration in opts and returns a
// distance oracle over the result.
func NewOracle(g *Graph, opts Options) (*Oracle, error) {
	return oracle.New(g, oracleSolver(opts), nil)
}

// NewOracleRegistry returns an oracle cache that solves graphs on
// demand with the configuration in opts, retaining at most budgetBytes
// of solved results (<= 0 means unlimited). Unless opts already
// carries a PlanCache, the registry gets its own shared one, so every
// sparse solve it runs reuses symbolic plans across graphs with the
// same structure; the cache's counters surface through Registry.Stats.
func NewOracleRegistry(opts Options, budgetBytes int64) *OracleRegistry {
	return NewTieredOracleRegistry(opts, budgetBytes, 0)
}

// NewTieredOracleRegistry is NewOracleRegistry with a compressed second
// tier: when the hot tier overflows hotBytes, least-recently-used
// oracles are demoted into losslessly quantized distance blobs (2
// bytes/pair for integer-weight graphs instead of the hot tier's 12)
// bounded by compressedBytes, and promoted back bit-identically on
// access instead of being re-solved. compressedBytes <= 0 disables the
// tier, restoring plain drop-on-eviction.
func NewTieredOracleRegistry(opts Options, hotBytes, compressedBytes int64) *OracleRegistry {
	if opts.Plans == nil {
		opts.Plans = NewPlanCache()
	}
	return oracle.NewRegistry(oracle.Config{
		Solve:            oracleSolver(opts),
		Repair:           oracleRepairer(opts),
		MemoryBudget:     hotBytes,
		CompressedBudget: compressedBytes,
		Plans:            opts.Plans,
	})
}

// VerifyDistances cheaply certifies that d looks like a correct APSP
// distance matrix for g (zero diagonal, symmetry, edge bounds,
// triangle inequality, reachability structure). It does not recompute
// APSP; see internal/apsp.VerifyDistances for the exact checks.
func VerifyDistances(g *Graph, d *Matrix) error {
	return apsp.VerifyDistances(g, d)
}

// VerifyPaths certifies that a PathResult's successor structure is
// consistent with its distances on g: every reachable pair walks to a
// real path of matching weight, every unreachable pair has none. The
// path-level counterpart of VerifyDistances; see
// internal/apsp.VerifyPaths.
func VerifyPaths(g *Graph, res *PathResult) error {
	return apsp.VerifyPaths(g, res)
}
