package sparseapsp_test

import (
	"fmt"

	"sparseapsp"
)

// The basic workflow: build a graph, solve, read distances.
func ExampleSolve() {
	g := sparseapsp.NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 10)

	res, err := sparseapsp.Solve(g, sparseapsp.Options{Algorithm: sparseapsp.SeqFW})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Dist.At(0, 3))
	// Output: 4
}

// Distributed solve on a simulated 9-processor machine: the paper's
// sparse algorithm is picked automatically and the cost report carries
// the simulated communication.
func ExampleSolve_distributed() {
	g := sparseapsp.Grid2D(8, 8, sparseapsp.UnitWeights)
	res, err := sparseapsp.Solve(g, sparseapsp.Options{P: 9, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Algorithm)
	fmt.Println(res.Dist.At(0, 63)) // corner to corner of the 8x8 grid
	fmt.Println(res.Report.Critical.Latency > 0)
	// Output:
	// sparse2d
	// 14
	// true
}

// Shortest paths, not just distances.
func ExampleSolveWithPaths() {
	g := sparseapsp.NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 10)

	pr := sparseapsp.SolveWithPaths(g)
	fmt.Println(pr.Path(0, 3))
	// Output: [0 1 2 3]
}

// Machine sizes usable by the sparse algorithm.
func ExampleValidProcessorCounts() {
	fmt.Println(sparseapsp.ValidProcessorCounts(300))
	// Output: [1 9 49 225]
}

// Distance matrices can be cheaply certified.
func ExampleVerifyDistances() {
	g := sparseapsp.Cycle(5, sparseapsp.UnitWeights)
	res, _ := sparseapsp.Solve(g, sparseapsp.Options{Algorithm: sparseapsp.SeqJohnson})
	fmt.Println(sparseapsp.VerifyDistances(g, res.Dist))
	// Output: <nil>
}
