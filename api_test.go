package sparseapsp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSolveAutoSelection(t *testing.T) {
	g := Grid2D(6, 6, UnitWeights)
	cases := []struct {
		p    int
		want Algorithm
	}{
		{0, SeqSuperFW},
		{1, SeqSuperFW},
		{9, Sparse2D},
		{49, Sparse2D},
		{16, DenseDC}, // square but not (2^h-1)²
	}
	for _, c := range cases {
		res, err := Solve(g, Options{P: c.p})
		if err != nil {
			t.Errorf("p=%d: %v", c.p, err)
			continue
		}
		if res.Algorithm != c.want {
			t.Errorf("p=%d: picked %s, want %s", c.p, res.Algorithm, c.want)
		}
	}
}

func TestSolveAllAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomGNP(40, 0.1, RandomWeights(rng, 1, 10), rng)
	ref, err := Solve(g, Options{Algorithm: SeqFW})
	if err != nil {
		t.Fatal(err)
	}
	algs := []struct {
		a Algorithm
		p int
	}{
		{SeqBlockedFW, 0}, {SeqSuperFW, 0}, {SeqSuperFWParallel, 0}, {SeqJohnson, 0},
		{Sparse2D, 9}, {DenseDC, 9}, {Dense2DFW, 9}, {Dense1DFW, 9},
	}
	for _, c := range algs {
		res, err := Solve(g, Options{Algorithm: c.a, P: c.p})
		if err != nil {
			t.Errorf("%s: %v", c.a, err)
			continue
		}
		if !res.Dist.EqualTol(ref.Dist, 1e-9) {
			t.Errorf("%s: diverges from classical FW", c.a)
		}
	}
}

func TestSolveRejectsInvalidSparseP(t *testing.T) {
	g := Grid2D(8, 8, UnitWeights)
	cases := []struct {
		p    int
		want []string
	}{
		// Between two valid sizes: name both neighbors.
		{50, []string{
			"P=50 is not a valid sparse machine size",
			"p = (2^h-1)^2",
			"1, 9, 49, 225, 961",
			"nearest valid sizes are 49 and 225",
		}},
		// Below the smallest nontrivial size.
		{2, []string{
			"P=2 is not a valid sparse machine size",
			"nearest valid sizes are 1 and 9",
		}},
		// Just past a valid size.
		{226, []string{"nearest valid sizes are 225 and 961"}},
	}
	for _, c := range cases {
		_, err := Solve(g, Options{Algorithm: Sparse2D, P: c.p})
		if err == nil {
			t.Errorf("P=%d: expected an error", c.p)
			continue
		}
		for _, frag := range c.want {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("P=%d: error %q missing %q", c.p, err, frag)
			}
		}
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	if _, err := Solve(NewGraph(2), Options{Algorithm: "nope"}); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestSolveSparseReportsSeparator(t *testing.T) {
	g := Grid2D(12, 12, UnitWeights)
	res, err := Solve(g, Options{P: 9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SeparatorSize <= 0 || res.SeparatorSize > 36 {
		t.Errorf("separator size = %d", res.SeparatorSize)
	}
	if res.Report.Critical.Bandwidth == 0 {
		t.Error("no communication recorded")
	}
}

func TestPublicGraphAPI(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 2)
	res, err := Solve(g, Options{Algorithm: SeqJohnson})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist.At(0, 2) != 4 {
		t.Errorf("d(0,2) = %v, want 4", res.Dist.At(0, 2))
	}
	if !math.IsInf(Inf, 1) {
		t.Error("Inf is not +infinity")
	}
}

func TestValidProcessorCountsExported(t *testing.T) {
	got := ValidProcessorCounts(250)
	if len(got) != 4 || got[3] != 225 {
		t.Errorf("ValidProcessorCounts(250) = %v", got)
	}
}

func TestSeparatorSizeGrid(t *testing.T) {
	s, err := SeparatorSize(Grid2D(16, 16, UnitWeights), 1)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || s > 32 {
		t.Errorf("grid separator = %d, want Θ(16)", s)
	}
}

func TestSolveWithPathsOptionsAcrossSolvers(t *testing.T) {
	g := Grid2D(7, 7, UnitWeights)
	want := SolveWithPaths(g)
	for _, opts := range []Options{
		{Algorithm: SeqFW},
		{Algorithm: SeqBlockedFW, BlockSize: 8},
		{Algorithm: SeqSuperFW},
		{Algorithm: Sparse2D, P: 9},
		{Algorithm: SeqFW, Kernel: KernelTiled},
		{Algorithm: SeqFW, Kernel: KernelPooled},
	} {
		pr, err := SolveWithPathsOptions(g, opts)
		if err != nil {
			t.Errorf("%s: %v", opts.Algorithm, err)
			continue
		}
		if !pr.Dist.EqualTol(want.Dist, 1e-9) {
			t.Errorf("%s: distances diverge from FloydWarshallPaths", opts.Algorithm)
			continue
		}
		for _, q := range [][2]int{{0, 48}, {6, 42}, {3, 3}, {48, 0}} {
			path := pr.Path(q[0], q[1])
			if len(path) == 0 || path[0] != q[0] || path[len(path)-1] != q[1] {
				t.Errorf("%s: Path(%d,%d) = %v: bad endpoints", opts.Algorithm, q[0], q[1], path)
				continue
			}
			if got, ref := PathWeight(g, path), want.Dist.At(q[0], q[1]); math.Abs(got-ref) > 1e-9 {
				t.Errorf("%s: Path(%d,%d) weight %g, want %g", opts.Algorithm, q[0], q[1], got, ref)
			}
		}
	}
}

func TestSolveWithPathsOptionsValidates(t *testing.T) {
	if _, err := SolveWithPathsOptions(nil, Options{}); err == nil {
		t.Error("nil graph: want error")
	}
	neg := NewGraph(2)
	neg.AddEdge(0, 1, -3)
	if _, err := SolveWithPathsOptions(neg, Options{}); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative edge: err = %v, want negative-cycle error", err)
	}
	g := Grid2D(4, 4, UnitWeights)
	if _, err := SolveWithPathsOptions(g, Options{Algorithm: Sparse2D, P: 16}); err == nil {
		t.Error("invalid sparse P: want error")
	}
	if _, err := SolveWithPathsOptions(g, Options{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm: want error")
	}
}

func TestNewOracleServesQueries(t *testing.T) {
	g := Grid2D(6, 6, UnitWeights)
	o, err := NewOracle(g, Options{Algorithm: SeqBlockedFW, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := SolveWithPaths(g)
	d, err := o.Dist(0, 35)
	if err != nil {
		t.Fatal(err)
	}
	if ref := want.Dist.At(0, 35); d != ref {
		t.Errorf("Dist(0,35) = %g, want %g", d, ref)
	}
	paths, err := o.BatchPath([][2]int{{0, 35}, {5, 30}})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range [][2]int{{0, 35}, {5, 30}} {
		if w := PathWeight(g, paths[i]); w != want.Dist.At(q[0], q[1]) {
			t.Errorf("batch path %d weight %g, want %g", i, w, want.Dist.At(q[0], q[1]))
		}
	}
}

func TestNewOracleRegistryCoalescesAndCounts(t *testing.T) {
	g := Grid2D(5, 5, UnitWeights)
	reg := NewOracleRegistry(Options{Algorithm: SeqFW}, 0)
	if _, err := reg.Get(g); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get(g.Clone()); err != nil { // same fingerprint
		t.Fatal(err)
	}
	st := reg.Stats()
	if st.Solves != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 solve, 1 hit, 1 miss", st)
	}
	if fp := GraphFingerprint(g); fp != GraphFingerprint(g.Clone()) {
		t.Error("clone changed the fingerprint")
	}
	// Sequential solvers move no wire traffic.
	if st.WordsMoved != 0 {
		t.Errorf("SeqFW registry moved %d words, want 0", st.WordsMoved)
	}
}

// TestOracleRegistryAccountsWordsMoved: a registry backed by the
// distributed sparse solver must surface the solve's wire traffic in
// Stats, with the per-phase breakdown partitioning the total.
func TestOracleRegistryAccountsWordsMoved(t *testing.T) {
	g := Grid2D(6, 6, UnitWeights)
	reg := NewOracleRegistry(Options{P: 9}, 0)
	if _, err := reg.Get(g); err != nil {
		t.Fatal(err)
	}
	st := reg.Stats()
	if st.WordsMoved <= 0 {
		t.Fatalf("distributed solve reported %d words moved, want > 0", st.WordsMoved)
	}
	var sum int64
	for _, w := range st.WordsByPhase {
		sum += w
	}
	if sum != st.WordsMoved {
		t.Errorf("per-phase words sum %d != total %d", sum, st.WordsMoved)
	}
}
