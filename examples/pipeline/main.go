// Pipeline: the fully distributed workflow — the ordering itself is
// computed by the distributed multilevel partitioner (the Section 5.4.4
// preprocessing step), then the paper's 2D-SPARSE-APSP consumes it on
// the same machine size. Both stages report their simulated
// communication costs, demonstrating the §5.4.4 claim that
// preprocessing is subsumed by the solve.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sparseapsp/internal/apsp"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/partition"
)

func main() {
	const p = 49 // 7×7 grid of processors, eTree height 3
	rng := rand.New(rand.NewSource(5))
	g := graph.Grid2D(24, 24, graph.RandomWeights(rng, 1, 10))
	fmt.Printf("workload: 24x24 grid, n=%d m=%d, machine p=%d\n\n", g.N(), g.M(), p)

	// Stage 1: distributed nested dissection on the simulated machine.
	h, err := apsp.HeightForP(p)
	if err != nil {
		log.Fatal(err)
	}
	nd, prep, err := partition.DistributedND(g, p, h, 5)
	if err != nil {
		log.Fatal(err)
	}
	if err := partition.CheckSeparation(g, nd); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocessing (distributed ND): |S|=%d, latency=%d msgs, bandwidth=%d words\n",
		nd.SeparatorSize(), prep.Critical.Latency, prep.Critical.Bandwidth)

	// Stage 2: the paper's solver, using that ordering.
	res, err := apsp.SparseAPSPWith(g, p, apsp.SparseOptions{
		Layout: apsp.NewLayoutFromOrdering(g, nd),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solve (2D-SPARSE-APSP):         latency=%d msgs, bandwidth=%d words\n",
		res.Report.Critical.Latency, res.Report.Critical.Bandwidth)

	// Sanity: exact against a sequential oracle.
	want, err := apsp.Johnson(g)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Dist.EqualTol(want, 1e-9) {
		log.Fatal("distributed pipeline diverges from Johnson's algorithm")
	}
	fmt.Println("\ndistances verified against Johnson's algorithm")

	fmt.Printf("\npreprocessing/solve bandwidth ratio: %.3f (must be ≪ 1, §5.4.4)\n",
		float64(prep.Critical.Bandwidth)/float64(res.Report.Critical.Bandwidth))

	// Per-level decomposition of the solve (Lemmas 5.6/5.8/5.9).
	fmt.Println("\nper-eTree-level solve costs:")
	for _, ph := range res.Phases {
		fmt.Printf("  %-8s latency=%3d  bandwidth=%7d  flops=%d\n",
			ph.ID, ph.Critical.Latency, ph.Critical.Bandwidth, ph.Critical.Flops)
	}
}
