// Roadgrid: the paper's motivating workload — a road-network-like 2D
// grid, whose minimal vertex separator is one grid line (|S| = Θ(√n)).
// We solve APSP with the sparse algorithm and the dense 2D-DC-APSP
// comparator across machine sizes and watch the communication gap
// open up exactly as Table 2 predicts: latency O(log²p) vs
// O(√p·log²p), bandwidth ~n²/p vs ~n²/√p.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sparseapsp"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const side = 24 // 576 intersections
	g := sparseapsp.Grid2D(side, side, sparseapsp.RandomWeights(rng, 1, 10))
	fmt.Printf("road grid: %dx%d, n=%d, m=%d\n\n", side, side, g.N(), g.M())

	fmt.Printf("%6s  %22s  %22s  %10s\n", "p", "sparse (msgs / words)", "dense DC (msgs / words)", "dc/sparse B")
	for _, p := range sparseapsp.ValidProcessorCounts(256) {
		if p == 1 {
			continue
		}
		sp, err := sparseapsp.Solve(g, sparseapsp.Options{P: p, Algorithm: sparseapsp.Sparse2D, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		dc, err := sparseapsp.Solve(g, sparseapsp.Options{P: p, Algorithm: sparseapsp.DenseDC, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		// Sanity: both must produce identical distances.
		if !sp.Dist.EqualTol(dc.Dist, 1e-9) {
			log.Fatal("solvers disagree!")
		}
		fmt.Printf("%6d  %10d / %9d  %10d / %9d  %10.2f\n", p,
			sp.Report.Critical.Latency, sp.Report.Critical.Bandwidth,
			dc.Report.Critical.Latency, dc.Report.Critical.Bandwidth,
			float64(dc.Report.Critical.Bandwidth)/float64(sp.Report.Critical.Bandwidth))
	}
	fmt.Println("\nsparse latency stays flat while dense latency grows with √p;")
	fmt.Println("the bandwidth ratio grows with p — the paper's communication-avoiding claim.")
}
