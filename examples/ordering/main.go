// Ordering: walk the preprocessing pipeline of Section 4 on the
// paper's own Figure 1 example — nested dissection, the reordered
// adjacency matrix with empty cousin blocks, and the elimination trees
// of Figure 2 — using the internal packages directly.
package main

import (
	"fmt"
	"log"

	"sparseapsp/internal/etree"
	"sparseapsp/internal/graph"
	"sparseapsp/internal/partition"
)

func main() {
	g := graph.Figure1Graph()
	fmt.Printf("Figure 1 example graph: n=%d, m=%d\n\n", g.N(), g.M())

	nd, err := partition.NestedDissection(g, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	for lbl := 1; lbl <= nd.N; lbl++ {
		role := "side"
		if lbl == nd.N {
			role = "separator"
		}
		fmt.Printf("supernode %d (%s): vertices %v\n", lbl, role, nd.Super[lbl])
	}

	pg := g.Permute(nd.Perm)
	fmt.Println("\nreordered adjacency matrix (o = finite, . = +inf), Fig. 1d:")
	for i := 0; i < pg.N(); i++ {
		for j := 0; j < pg.N(); j++ {
			switch {
			case i == j:
				fmt.Print(" o")
			default:
				if _, ok := pg.HasEdge(i, j); ok {
					fmt.Print(" o")
				} else {
					fmt.Print(" .")
				}
			}
		}
		fmt.Println()
	}
	if err := partition.CheckSeparation(g, nd); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nA(1,2) and A(2,1) are empty: the V1×V2 blocks carry no edges.")

	// Figure 2: the 2-level eTree and the 3-level eTree from recursing.
	fmt.Println("\nFigure 2a — 2-level eTree:")
	printTree(etree.New(2))
	fmt.Println("\nFigure 2b — 3-level eTree (recursive dissection of V1 and V2):")
	printTree(etree.New(3))

	tr := etree.New(3)
	k := tr.LevelNodes(2)[0]
	fmt.Printf("\nfor supernode %d: ancestors %v, descendants %v, cousins %v\n",
		k, tr.Ancestors(k), tr.Descendants(k), tr.Cousins(k))
}

func printTree(tr *etree.Tree) {
	for l := tr.H; l >= 1; l-- {
		fmt.Printf("  level %d:", l)
		for _, k := range tr.LevelNodes(l) {
			if l == tr.H {
				fmt.Printf("  %d(root)", k)
			} else {
				fmt.Printf("  %d(parent %d)", k, tr.Parent(k))
			}
		}
		fmt.Println()
	}
}
