// Commcost: reproduce the paper's headline reduction factors on one
// machine size. Section 5.5 claims the sparse algorithm lowers the
// latency of 2D-DC-APSP by O(√p/log p) and the bandwidth by
// O(min(√p/log²p, n²/(|S|²√p·log³p))). We measure both factors and
// print them next to the formulas.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sparseapsp"
)

func main() {
	const p = 49
	rng := rand.New(rand.NewSource(3))
	for _, side := range []int{16, 24, 32} {
		g := sparseapsp.Grid2D(side, side, sparseapsp.RandomWeights(rng, 1, 10))
		n := g.N()

		sp, err := sparseapsp.Solve(g, sparseapsp.Options{P: p, Algorithm: sparseapsp.Sparse2D, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		dc, err := sparseapsp.Solve(g, sparseapsp.Options{P: p, Algorithm: sparseapsp.DenseDC, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}

		s := float64(sp.SeparatorSize)
		logp := math.Log2(p)
		sqrtp := math.Sqrt(p)
		predictedL := sqrtp / logp
		predictedB := math.Min(sqrtp/(logp*logp),
			float64(n)*float64(n)/(s*s*sqrtp*logp*logp*logp))

		measuredL := float64(dc.Report.Critical.Latency) / float64(sp.Report.Critical.Latency)
		measuredB := float64(dc.Report.Critical.Bandwidth) / float64(sp.Report.Critical.Bandwidth)

		fmt.Printf("n=%4d |S|=%2d p=%d:\n", n, sp.SeparatorSize, p)
		fmt.Printf("  latency reduction:   measured %5.2fx   predicted O(√p/log p)=%.2f\n",
			measuredL, predictedL)
		fmt.Printf("  bandwidth reduction: measured %5.2fx   predicted O(min(...))=%.2f\n\n",
			measuredB, predictedB)
	}
	fmt.Println("asymptotic predictions carry no constants; what should match is the trend")
	fmt.Println("(both measured factors grow as the graph gets larger relative to its separator).")
}
