// Example oracle: use the distance-oracle layer as an embedded library
// — the same serving core behind cmd/apspd, without the HTTP front-end.
//
// It builds a road-style grid, solves it once through an oracle
// registry, answers a batch of point and path queries from the retained
// result, and shows the cache counters: a second request for the same
// graph is a hit, not a second solve.
package main

import (
	"fmt"
	"log"

	"sparseapsp"
)

func main() {
	// A 20×20 road grid: 400 intersections, unit-length segments.
	g := sparseapsp.Grid2D(20, 20, sparseapsp.UnitWeights)

	// The registry solves on first request and caches by content
	// fingerprint under a 64 MiB budget.
	reg := sparseapsp.NewOracleRegistry(
		sparseapsp.Options{Algorithm: sparseapsp.SeqSuperFW, Kernel: sparseapsp.KernelTiled},
		64<<20)

	o, err := reg.Get(g)
	if err != nil {
		log.Fatal(err)
	}

	// A batch of routing queries, fanned out over the worker pool.
	pairs := [][2]int{
		{0, 399},  // corner to corner
		{0, 19},   // along the top edge
		{190, 29}, // mid-grid hop
	}
	dists, err := o.BatchDist(pairs)
	if err != nil {
		log.Fatal(err)
	}
	paths, err := o.BatchPath(pairs)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range pairs {
		fmt.Printf("dist(%d, %d) = %g  (path: %d hops, weight %g)\n",
			p[0], p[1], dists[i], len(paths[i])-1, sparseapsp.PathWeight(g, paths[i]))
	}

	// Asking again for the same graph (any graph with the same content)
	// is a cache hit: no second solve runs.
	if _, err := reg.Get(g.Clone()); err != nil {
		log.Fatal(err)
	}
	st := reg.Stats()
	fmt.Printf("cache: %d solve(s), %d hit(s), %d miss(es), %d oracle(s), %d queries served\n",
		st.Solves, st.Hits, st.Misses, st.Entries, st.QueriesServed)
	fmt.Printf("fingerprint: %s\n", sparseapsp.GraphFingerprint(g))
}
