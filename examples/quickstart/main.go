// Quickstart: build a small weighted graph, solve APSP with the
// paper's distributed sparse algorithm on a simulated 9-processor
// machine, and read distances and communication costs.
package main

import (
	"fmt"
	"log"

	"sparseapsp"
)

func main() {
	// A small road network: two clusters of towns joined by one bridge
	// (the bridge endpoints are exactly the kind of small vertex
	// separator the algorithm exploits).
	g := sparseapsp.NewGraph(8)
	// west cluster
	g.AddEdge(0, 1, 4)
	g.AddEdge(0, 2, 2)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 5)
	g.AddEdge(2, 3, 8)
	// bridge
	g.AddEdge(3, 4, 10)
	// east cluster
	g.AddEdge(4, 5, 2)
	g.AddEdge(4, 6, 3)
	g.AddEdge(5, 6, 1)
	g.AddEdge(5, 7, 7)
	g.AddEdge(6, 7, 2)

	res, err := sparseapsp.Solve(g, sparseapsp.Options{P: 9, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("algorithm: %s, separator size: %d\n", res.Algorithm, res.SeparatorSize)
	fmt.Printf("d(0,7) = %g (west end to east end)\n", res.Dist.At(0, 7))
	fmt.Printf("d(2,5) = %g\n", res.Dist.At(2, 5))

	fmt.Println("\nfull distance matrix:")
	fmt.Print(res.Dist.String())

	rep := res.Report
	fmt.Printf("simulated communication: %d messages and %d words along the critical path\n",
		rep.Critical.Latency, rep.Critical.Bandwidth)
}
